#!/bin/bash
# Sequential driver for the remaining bench groups (each prints to its
# own file; cat together at the end).
set -u
run() {
  local name=$1; shift
  echo "===== $name =====" 
  "$@"
  echo
}
{
  run bench_regret env MECSC_TOPOLOGIES=3 ./build/bench/bench_regret
  run bench_ablation_gamma env MECSC_TOPOLOGIES=3 MECSC_SLOTS=100 ./build/bench/bench_ablation_gamma
} > results/groupD.txt 2>&1
echo "D done"
{
  run bench_ablation_epsilon env MECSC_TOPOLOGIES=3 MECSC_SLOTS=120 ./build/bench/bench_ablation_epsilon
  run bench_ablation_ucb env MECSC_TOPOLOGIES=3 MECSC_SLOTS=120 ./build/bench/bench_ablation_ucb
} > results/groupE.txt 2>&1
echo "E done"
{
  run bench_predictors env MECSC_TOPOLOGIES=3 ./build/bench/bench_predictors
  run bench_lp_vs_flow ./build/bench/bench_lp_vs_flow
  run bench_ablation_instantiation env MECSC_TOPOLOGIES=3 MECSC_SLOTS=100 ./build/bench/bench_ablation_instantiation
} > results/groupF.txt 2>&1
echo "F done"
{
  run bench_ablation_mobility env MECSC_TOPOLOGIES=3 MECSC_SLOTS=100 ./build/bench/bench_ablation_mobility
  run bench_ablation_rnn env MECSC_TOPOLOGIES=3 MECSC_GAN_STEPS=400 ./build/bench/bench_ablation_rnn
} > results/groupG.txt 2>&1
echo "G done"
