// Tests for demand-class aggregation (DESIGN.md §11): class
// construction invariants, the exactness of the aggregated objective,
// de-aggregating rounding, mode resolution, and the end-to-end OL_GD
// paths (flow, exact LP, parallel replications, fault churn) with
// aggregation forced on.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <memory>
#include <set>
#include <utility>
#include <vector>

#include "algorithms/ol_gd.h"
#include "common/error.h"
#include "common/rng.h"
#include "core/aggregation.h"
#include "core/assignment.h"
#include "core/fractional_solver.h"
#include "core/lp_formulation.h"
#include "core/problem.h"
#include "core/rounding.h"
#include "fault/fault_plan.h"
#include "net/generators.h"
#include "sim/replication.h"
#include "sim/scenario.h"
#include "sim/simulator.h"
#include "workload/trace.h"

namespace mecsc::core {
namespace {

struct Instance {
  std::unique_ptr<net::Topology> topo;
  workload::Workload workload;
  std::unique_ptr<CachingProblem> problem;
  std::vector<double> demands;
  std::vector<double> theta;
};

Instance make_instance(std::uint64_t seed, std::size_t stations,
                       std::size_t requests, std::size_t services = 4) {
  Instance inst;
  common::Rng rng(seed);
  net::GtItmParams gp;
  gp.num_stations = stations;
  inst.topo = std::make_unique<net::Topology>(net::generate_gtitm_like(gp, rng));
  workload::WorkloadParams wp;
  wp.num_requests = requests;
  wp.num_services = services;
  inst.workload = workload::make_workload(*inst.topo, wp, rng, false);
  ProblemOptions opts;
  inst.problem = std::make_unique<CachingProblem>(
      inst.topo.get(), inst.workload.services, inst.workload.requests, opts, rng);
  for (const auto& r : inst.workload.requests) inst.demands.push_back(r.basic_demand);
  // The raw workload is not capacity-derated the way sim::Scenario
  // derates it; scale demands to half the network capacity so the flow
  // solves used below are feasible (resource demand is linear in ρ).
  double total_demand_mhz = 0.0, total_cap_mhz = 0.0;
  for (double d : inst.demands) total_demand_mhz += inst.problem->resource_demand_mhz(d);
  for (std::size_t i = 0; i < stations; ++i) {
    total_cap_mhz += inst.problem->station_capacity_mhz(i);
    inst.theta.push_back(inst.topo->station(i).mean_unit_delay_ms);
  }
  if (total_demand_mhz > 0.5 * total_cap_mhz) {
    const double scale = 0.5 * total_cap_mhz / total_demand_mhz;
    for (double& d : inst.demands) d *= scale;
  }
  return inst;
}

/// Expands a class-level fractional solution to per-request rows
/// (x_l := x_{class(l)}), keeping the class-level y.
FractionalSolution expand(const FractionalSolution& cls,
                          const DemandClassing& classing) {
  FractionalSolution out;
  out.y = cls.y;
  out.objective = cls.objective;
  out.x.reserve(classing.num_requests());
  for (std::size_t l = 0; l < classing.num_requests(); ++l) {
    out.x.push_back(cls.x[classing.class_of_request()[l]]);
  }
  return out;
}

// ---------------------------------------------------------------------
// Mode resolution.
// ---------------------------------------------------------------------

TEST(AggregateMode, ExplicitSettingsWinOverEnvironment) {
  setenv("MECSC_AGGREGATE", "on", 1);
  EXPECT_EQ(resolve_aggregate_mode(AggregateMode::kOff), AggregateMode::kOff);
  EXPECT_EQ(resolve_aggregate_mode(AggregateMode::kAuto), AggregateMode::kAuto);
  EXPECT_EQ(resolve_aggregate_mode(AggregateMode::kOn), AggregateMode::kOn);
  unsetenv("MECSC_AGGREGATE");
}

TEST(AggregateMode, EnvParsesAllValuesAndDefaultsOff) {
  unsetenv("MECSC_AGGREGATE");
  EXPECT_EQ(resolve_aggregate_mode(AggregateMode::kEnv), AggregateMode::kOff);
  setenv("MECSC_AGGREGATE", "off", 1);
  EXPECT_EQ(resolve_aggregate_mode(AggregateMode::kEnv), AggregateMode::kOff);
  setenv("MECSC_AGGREGATE", "auto", 1);
  EXPECT_EQ(resolve_aggregate_mode(AggregateMode::kEnv), AggregateMode::kAuto);
  setenv("MECSC_AGGREGATE", "on", 1);
  EXPECT_EQ(resolve_aggregate_mode(AggregateMode::kEnv), AggregateMode::kOn);
  setenv("MECSC_AGGREGATE", "bogus", 1);
  EXPECT_EQ(resolve_aggregate_mode(AggregateMode::kEnv), AggregateMode::kOff);
  unsetenv("MECSC_AGGREGATE");
}

// ---------------------------------------------------------------------
// Class construction.
// ---------------------------------------------------------------------

TEST(DemandClassing, PartitionsRequestsAndSumsAreExact) {
  Instance inst = make_instance(11, 12, 60);
  DemandClassing classing;
  classing.build(*inst.problem, inst.demands, AggregationOptions{});
  ASSERT_EQ(classing.num_requests(), 60u);
  ASSERT_GE(classing.num_classes(), 1u);
  ASSERT_LE(classing.num_classes(), 60u);

  // Round-trip: every request maps to a class of its own service and
  // home station, and the class sums are exactly the member sums.
  std::vector<double> rho_sum(classing.num_classes(), 0.0);
  std::vector<double> tx_rho_sum(classing.num_classes(), 0.0);
  std::vector<std::size_t> count(classing.num_classes(), 0);
  for (std::size_t l = 0; l < classing.num_requests(); ++l) {
    std::uint32_t c = classing.class_of_request()[l];
    ASSERT_LT(c, classing.num_classes());
    const DemandClass& cls = classing.classes()[c];
    EXPECT_EQ(cls.service, inst.problem->requests()[l].service_id);
    EXPECT_EQ(cls.home_station, inst.problem->requests()[l].home_station);
    rho_sum[c] += inst.demands[l];
    tx_rho_sum[c] += inst.demands[l] * inst.problem->tx_unit_ms(l);
    ++count[c];
  }
  for (std::size_t c = 0; c < classing.num_classes(); ++c) {
    EXPECT_NEAR(classing.classes()[c].rho_sum, rho_sum[c],
                1e-12 * (1.0 + rho_sum[c]));
    EXPECT_NEAR(classing.classes()[c].tx_rho_sum, tx_rho_sum[c],
                1e-12 * (1.0 + tx_rho_sum[c]));
    EXPECT_EQ(classing.classes()[c].count, count[c]);
    EXPECT_GT(count[c], 0u);
  }
}

TEST(DemandClassing, EqualDemandsCollapseToOneClassPerServiceHomePair) {
  Instance inst = make_instance(12, 10, 80);
  std::vector<double> flat(inst.demands.size(), 7.5);
  DemandClassing classing;
  classing.build(*inst.problem, flat, AggregationOptions{});
  std::set<std::pair<std::uint32_t, std::uint32_t>> pairs;
  for (const auto& r : inst.problem->requests()) {
    pairs.insert({r.service_id, static_cast<std::uint32_t>(r.home_station)});
  }
  EXPECT_EQ(classing.num_classes(), pairs.size());
  EXPECT_NEAR(classing.compression_ratio(),
              80.0 / static_cast<double>(pairs.size()), 1e-12);
}

TEST(DemandClassing, ZeroDemandRequestsShareTheZeroBucket) {
  Instance inst = make_instance(13, 8, 20, 1);
  std::vector<double> zeros(inst.demands.size(), 0.0);
  DemandClassing classing;
  classing.build(*inst.problem, zeros, AggregationOptions{});
  // One service, all-zero demands: exactly one class per home station.
  std::set<std::size_t> homes;
  for (const auto& r : inst.problem->requests()) homes.insert(r.home_station);
  EXPECT_EQ(classing.num_classes(), homes.size());
}

TEST(DemandClassing, SameBucketIffDemandsWithinRatio) {
  Instance inst = make_instance(14, 6, 4, 1);
  // Force all requests to one home so only the bucket differentiates.
  // (Requests are value types; rebuild the problem with patched homes.)
  for (auto& r : inst.workload.requests) r.home_station = 0;
  common::Rng rng(14);
  CachingProblem problem(inst.topo.get(), inst.workload.services,
                         inst.workload.requests, ProblemOptions{}, rng);
  AggregationOptions o;
  o.bucket_ratio = 2.0;
  DemandClassing classing;
  // 1.0 and 1.9 share floor(log2) = 0; 4.1 lands in bucket 2; 1e6 far out.
  classing.build(problem, {1.0, 1.9, 4.1, 1e6}, o);
  const auto& of = classing.class_of_request();
  EXPECT_EQ(of[0], of[1]);
  EXPECT_NE(of[0], of[2]);
  EXPECT_NE(of[2], of[3]);
  EXPECT_EQ(classing.num_classes(), 3u);
}

// Pinned by the comment on demand_bucket() in aggregation.cpp: a demand
// sitting exactly on a bucket edge ρ = ratio^j must land in bucket j on
// every libm/FMA configuration (the raw log-quotient floors to j or j−1
// depending on ulp noise; the ilogb fast path and the epsilon nudge make
// the choice deterministic).
TEST(AggregationTest, BucketEdgesArePlatformStable) {
  Instance inst = make_instance(16, 6, 6, 1);
  // One home, one service: only the bucket differentiates classes.
  for (auto& r : inst.workload.requests) r.home_station = 0;
  common::Rng rng(16);
  CachingProblem problem(inst.topo.get(), inst.workload.services,
                         inst.workload.requests, ProblemOptions{}, rng);
  DemandClassing classing;
  auto bucket_of = [&](std::size_t l) {
    return classing.classes()[classing.class_of_request()[l]].bucket;
  };

  // Ratio 2.0 — the IEEE-754 exponent path: powers of two are exact
  // bucket edges and open their own bucket, never the one below.
  AggregationOptions o;
  o.bucket_ratio = 2.0;
  classing.build(problem, {0.25, 0.5, 1.0, 2.0, 4.0, 1024.0}, o);
  EXPECT_EQ(bucket_of(0), -2);
  EXPECT_EQ(bucket_of(1), -1);
  EXPECT_EQ(bucket_of(2), 0);
  EXPECT_EQ(bucket_of(3), 1);
  EXPECT_EQ(bucket_of(4), 2);
  EXPECT_EQ(bucket_of(5), 10);

  // A non-2 ratio — the nudged log-quotient path: exact edges floor up,
  // near-edge demands just below stay down.
  o.bucket_ratio = 3.0;
  classing.build(problem, {1.0, 3.0, 8.9999, 9.0, 27.0, 10.0}, o);
  EXPECT_EQ(bucket_of(0), 0);
  EXPECT_EQ(bucket_of(1), 1);
  EXPECT_EQ(bucket_of(2), 1);  // just below the 3^2 edge
  EXPECT_EQ(bucket_of(3), 2);  // exactly on the 3^2 edge
  EXPECT_EQ(bucket_of(4), 3);  // exactly on the 3^3 edge
  EXPECT_EQ(bucket_of(5), 2);  // interior of bucket 2

  // Sweep computed edges ratio^j across ratios and exponents: std::pow's
  // ulp noise must never drop an edge demand into bucket j−1.
  for (double ratio : {1.5, 2.0, 3.0, 10.0}) {
    o.bucket_ratio = ratio;
    for (int j = -3; j <= 3; ++j) {
      std::vector<double> demands(6, 1.0);
      demands[0] = std::pow(ratio, j);
      classing.build(problem, demands, o);
      EXPECT_EQ(bucket_of(0), j) << "ratio " << ratio << ", edge " << j;
    }
  }
}

TEST(DemandClassing, RejectsBadInputs) {
  Instance inst = make_instance(15, 6, 10);
  DemandClassing classing;
  AggregationOptions bad;
  bad.bucket_ratio = 1.0;
  EXPECT_THROW(classing.build(*inst.problem, inst.demands, bad),
               common::InvalidArgument);
  std::vector<double> short_demands(5, 1.0);
  EXPECT_THROW(classing.build(*inst.problem, short_demands, AggregationOptions{}),
               common::InvalidArgument);
}

// ---------------------------------------------------------------------
// Aggregated solve: exactness of the class-level objective.
// ---------------------------------------------------------------------

TEST(SolveClasses, ClassRowsSumToOneAndExpandExactly) {
  Instance inst = make_instance(21, 12, 90);
  DemandClassing classing;
  classing.build(*inst.problem, inst.demands, AggregationOptions{});
  ASSERT_LT(classing.num_classes(), 90u);  // something actually aggregated

  FractionalSolver solver(*inst.problem);
  FractionalSolution cls = solver.solve_classes(classing, inst.theta);
  ASSERT_EQ(cls.x.size(), classing.num_classes());
  for (const auto& row : cls.x) {
    double sum = 0.0;
    for (double v : row) sum += v;
    EXPECT_NEAR(sum, 1.0, 1e-6);
  }

  // The class cost coefficients are exact member sums, so evaluating
  // the Eq. 3 objective on the uniformly expanded per-request solution
  // must reproduce the solver-reported class objective (FP noise only).
  FractionalSolution per_request = expand(cls, classing);
  double expanded_obj =
      solver.objective(per_request, inst.demands, inst.theta);
  EXPECT_NEAR(expanded_obj, cls.objective, 1e-7 * (1.0 + cls.objective));
}

TEST(SolveClasses, ObjectiveIsCloseToPerRequestSolve) {
  Instance inst = make_instance(22, 12, 90);
  DemandClassing classing;
  classing.build(*inst.problem, inst.demands, AggregationOptions{});
  FractionalSolver solver(*inst.problem);
  double flat = solver.solve(inst.demands, inst.theta).objective;
  double agg = solver.solve_classes(classing, inst.theta).objective;
  // Aggregation restricts the LP (members share one row), so the class
  // optimum cannot genuinely beat per-request; both paths share the
  // same amortization heuristic, so allow slack both ways.
  EXPECT_GE(agg, flat * 0.98);
  EXPECT_LE(agg, flat * 1.25);
}

TEST(SolveClasses, DegradedPathAcceptsClassesUnderCapacityShortfall) {
  Instance inst = make_instance(23, 6, 40);
  // Blow demands up past total capacity; with a report the class solve
  // must degrade gracefully instead of throwing, and keep Σx = 1.
  std::vector<double> heavy(inst.demands);
  for (double& d : heavy) d *= 1e4;
  DemandClassing classing;
  classing.build(*inst.problem, heavy, AggregationOptions{});
  FractionalSolver solver(*inst.problem);
  EXPECT_THROW(solver.solve_classes(classing, inst.theta), common::Infeasible);
  SolveReport report;
  FractionalSolution cls = solver.solve_classes(classing, inst.theta, &report);
  EXPECT_TRUE(report.degraded);
  EXPECT_GT(report.unrouted_mhz, 0.0);
  for (const auto& row : cls.x) {
    double sum = 0.0;
    for (double v : row) sum += v;
    EXPECT_NEAR(sum, 1.0, 1e-6);
  }
}

// ---------------------------------------------------------------------
// De-aggregating rounding.
// ---------------------------------------------------------------------

TEST(RoundAggregated, ProducesValidFeasibleAssignment) {
  Instance inst = make_instance(31, 12, 90);
  DemandClassing classing;
  classing.build(*inst.problem, inst.demands, AggregationOptions{});
  FractionalSolver solver(*inst.problem);
  FractionalSolution cls = solver.solve_classes(classing, inst.theta);

  RoundingOptions ropt;
  ropt.epsilon = 0.0;  // pure exploit: repair must yield feasibility
  common::Rng rng(31);
  Assignment a = round_assignment_aggregated(*inst.problem, cls, classing,
                                             inst.demands, inst.theta, ropt, rng);
  ASSERT_EQ(a.station_of_request.size(), 90u);
  for (std::size_t l = 0; l < a.station_of_request.size(); ++l) {
    EXPECT_LT(a.station_of_request[l], inst.problem->num_stations());
  }
  EXPECT_EQ(a.cached, derive_cached(*inst.problem, a.station_of_request));
  EXPECT_DOUBLE_EQ(capacity_violation(*inst.problem, a, inst.demands), 0.0);
}

TEST(RoundAggregated, MembersSampleIndependentlyFromTheClassRow) {
  Instance inst = make_instance(32, 10, 120);
  std::vector<double> flat(inst.demands.size(), 2.0);
  DemandClassing classing;
  classing.build(*inst.problem, flat, AggregationOptions{});
  FractionalSolver solver(*inst.problem);
  FractionalSolution cls = solver.solve_classes(classing, inst.theta);

  // With a fractional class row split across stations, independent
  // per-member sampling means members of one class do not all land on
  // one station (overwhelmingly likely across 120 requests and many
  // draws); a class-level (one-draw-per-class) rounding would.
  RoundingOptions ropt;
  ropt.epsilon = 0.25;
  common::Rng rng(32);
  std::size_t split_classes = 0;
  for (int rep = 0; rep < 8 && split_classes == 0; ++rep) {
    Assignment a = round_assignment_aggregated(
        *inst.problem, cls, classing, flat, inst.theta, ropt, rng);
    std::vector<std::set<std::size_t>> stations_of_class(classing.num_classes());
    for (std::size_t l = 0; l < flat.size(); ++l) {
      stations_of_class[classing.class_of_request()[l]].insert(
          a.station_of_request[l]);
    }
    for (std::size_t c = 0; c < classing.num_classes(); ++c) {
      if (classing.classes()[c].count > 1 && stations_of_class[c].size() > 1) {
        ++split_classes;
      }
    }
  }
  EXPECT_GT(split_classes, 0u);
}

TEST(RoundAggregated, RejectsMismatchedInputs) {
  Instance inst = make_instance(33, 8, 30);
  DemandClassing classing;
  classing.build(*inst.problem, inst.demands, AggregationOptions{});
  FractionalSolver solver(*inst.problem);
  FractionalSolution cls = solver.solve_classes(classing, inst.theta);
  cls.x.pop_back();  // wrong class count
  RoundingOptions ropt;
  common::Rng rng(33);
  EXPECT_THROW(round_assignment_aggregated(*inst.problem, cls, classing,
                                           inst.demands, inst.theta, ropt, rng),
               common::InvalidArgument);
}

}  // namespace
}  // namespace mecsc::core

// ---------------------------------------------------------------------
// End-to-end: OL_GD with aggregation forced on.
// ---------------------------------------------------------------------

namespace mecsc {
namespace {

sim::ScenarioParams agg_params(std::uint64_t seed) {
  sim::ScenarioParams p;
  p.num_stations = 15;
  p.horizon = 12;
  p.workload.num_requests = 40;
  p.workload.num_services = 4;
  p.history_horizon = 30;
  p.seed = seed;
  return p;
}

sim::RunResult run_olgd(sim::Scenario& s, core::AggregateMode mode,
                        bool exact_lp = false) {
  algorithms::OlOptions opt;
  opt.theta_prior = s.theta_prior();
  opt.aggregate = mode;
  opt.use_exact_lp = exact_lp;
  auto algo = algorithms::make_ol_gd(s.problem(), s.demands(), opt,
                                     s.algorithm_seed(0));
  return s.simulator().run(*algo);
}

TEST(OlGdAggregated, FlowPathRunsWithDelayCloseToPerRequest) {
  sim::Scenario s(agg_params(41));
  sim::RunResult flat = run_olgd(s, core::AggregateMode::kOff);
  sim::RunResult agg = run_olgd(s, core::AggregateMode::kOn);
  ASSERT_EQ(agg.slots.size(), 12u);
  for (const auto& rec : agg.slots) EXPECT_TRUE(std::isfinite(rec.avg_delay_ms));
  EXPECT_GT(agg.mean_delay_ms(), 0.0);
  // Same candidate/exploration machinery on expanded rows: the realised
  // delay stays in the per-request ballpark even on a tiny instance.
  EXPECT_NEAR(agg.mean_delay_ms(), flat.mean_delay_ms(),
              0.15 * flat.mean_delay_ms());
}

TEST(OlGdAggregated, ExactLpPathAcceptsClasses) {
  sim::Scenario s(agg_params(42));
  sim::RunResult agg = run_olgd(s, core::AggregateMode::kOn, /*exact_lp=*/true);
  ASSERT_EQ(agg.slots.size(), 12u);
  for (const auto& rec : agg.slots) {
    EXPECT_TRUE(std::isfinite(rec.avg_delay_ms));
    EXPECT_GT(rec.avg_delay_ms, 0.0);
  }
}

TEST(OlGdAggregated, AutoModeUsesThresholds) {
  sim::Scenario s(agg_params(43));
  algorithms::OlOptions opt;
  opt.theta_prior = s.theta_prior();
  opt.aggregate = core::AggregateMode::kAuto;
  opt.aggregation.auto_threshold = 1;  // 40 requests >= 1: aggregates
  auto algo = algorithms::make_ol_gd(s.problem(), s.demands(), opt,
                                     s.algorithm_seed(0));
  (void)s.simulator().run(*algo);
  auto* ol = dynamic_cast<algorithms::OnlineCachingAlgorithm*>(algo.get());
  ASSERT_NE(ol, nullptr);
  EXPECT_GT(ol->last_num_classes(), 0u);
  EXPECT_LT(ol->last_num_classes(), 40u);

  opt.aggregation.auto_threshold = 1000;  // 40 < 1000: per-request path
  auto algo2 = algorithms::make_ol_gd(s.problem(), s.demands(), opt,
                                      s.algorithm_seed(0));
  (void)s.simulator().run(*algo2);
  auto* ol2 = dynamic_cast<algorithms::OnlineCachingAlgorithm*>(algo2.get());
  ASSERT_NE(ol2, nullptr);
  EXPECT_EQ(ol2->last_num_classes(), 0u);
}

TEST(OlGdAggregated, ParallelReplicationsBitwiseIdenticalWithAggregationOn) {
  auto run_reps = [](const char* workers) {
    setenv("MECSC_WORKERS", workers, 1);
    std::vector<double> delays;
    sim::run_replications(
        4,
        [&](std::size_t rep) {
          sim::Scenario s(agg_params(3000 + rep));
          algorithms::OlOptions opt;
          opt.theta_prior = s.theta_prior();
          opt.aggregate = core::AggregateMode::kOn;
          auto algo = algorithms::make_ol_gd(s.problem(), s.demands(), opt,
                                             s.algorithm_seed(0));
          return s.simulator().run(*algo).mean_delay_ms();
        },
        [&](std::size_t, double& d) { delays.push_back(d); });
    unsetenv("MECSC_WORKERS");
    return delays;
  };
  auto seq = run_reps("1");
  auto par = run_reps("8");
  ASSERT_EQ(seq.size(), 4u);
  ASSERT_EQ(par.size(), 4u);
  for (std::size_t i = 0; i < seq.size(); ++i) {
    EXPECT_EQ(seq[i], par[i]) << "rep " << i << " diverged under parallelism";
  }
}

TEST(OlGdAggregated, SurvivesFaultChurn) {
  sim::ScenarioParams p = agg_params(44);
  p.horizon = 40;
  p.fault.mode = fault::FaultMode::kChurn;
  p.fault.macro = {40.0, 3.0};
  p.fault.micro = {20.0, 4.0};
  p.fault.femto = {10.0, 5.0};
  sim::Scenario s(p);
  ASSERT_NE(s.fault_injector(), nullptr);
  EXPECT_GT(s.fault_injector()->plan().total_outage_slots(), 0u);
  sim::RunResult r = run_olgd(s, core::AggregateMode::kOn);
  ASSERT_EQ(r.slots.size(), 40u);
  for (const auto& rec : r.slots) EXPECT_TRUE(std::isfinite(rec.avg_delay_ms));
  // Effective capacities restored after the run.
  for (std::size_t i = 0; i < s.problem().num_stations(); ++i) {
    EXPECT_DOUBLE_EQ(s.problem().station_capacity_mhz(i),
                     s.topology().station(i).capacity_mhz);
  }
}

}  // namespace
}  // namespace mecsc
