// End-to-end tests of the mecsc_serve daemon binary: boot-to-exit runs,
// the --verify replay gate, graceful SIGINT/SIGTERM shutdown (drained
// slot, sealed trace, exit 0), and the stdin/stdout JSON query loop.
// The binary path comes from the MECSC_SERVE_BIN compile definition
// ($<TARGET_FILE:mecsc_serve_daemon>).
#include <gtest/gtest.h>

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include "serve/trace_io.h"

namespace {

std::string daemon_bin() { return MECSC_SERVE_BIN; }

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "mecsc_daemon_" + name;
}

int run_command(const std::string& command) {
  const int status = std::system(command.c_str());
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

std::string read_file(const std::string& path) {
  std::string out;
  FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return out;
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out.append(buf, n);
  std::fclose(f);
  return out;
}

TEST(ServeDaemon, PacedRunSealsTraceAndDumpsPrometheus) {
  const std::string trace = temp_path("run.trace");
  const std::string prom = temp_path("run.prom");
  const std::string cmd = daemon_bin() +
                          " --stations 15 --requests 40 --services 4"
                          " --slots 6 --seed 9 --paced --trace-out " +
                          trace + " --prom-out " + prom + " 2>/dev/null";
  ASSERT_EQ(run_command(cmd), 0);

  std::size_t slots = 0;
  EXPECT_TRUE(mecsc::serve::trace_well_formed(trace, &slots));
  EXPECT_EQ(slots, 6u);

  const std::string exposition = read_file(prom);
  EXPECT_NE(exposition.find("serve_slots"), std::string::npos);
  EXPECT_NE(exposition.find("serve_ingest_rate_rps"), std::string::npos);
  EXPECT_NE(exposition.find("serve_queue_depth"), std::string::npos);
  EXPECT_NE(exposition.find("serve_slot_deadline_margin_ms"), std::string::npos);
  EXPECT_NE(exposition.find("serve_shed_fraction"), std::string::npos);
  EXPECT_NE(exposition.find("serve_decide_ms"), std::string::npos);

  // The recorded trace replays bit-for-bit through --verify.
  EXPECT_EQ(run_command(daemon_bin() + " --verify " + trace + " 2>/dev/null"),
            0);
  std::remove(trace.c_str());
  std::remove(prom.c_str());
}

TEST(ServeDaemon, VerifyRejectsMissingTrace) {
  EXPECT_NE(run_command(daemon_bin() + " --verify " + temp_path("absent.trace") +
                        " 2>/dev/null"),
            0);
}

// The graceful-shutdown satellite: a SIGTERM mid-run drains the slot in
// flight, seals the trace (footer present) and exits 0.
TEST(ServeDaemon, SigtermDrainsSealsTraceExitsZero) {
  const std::string trace = temp_path("sigterm.trace");
  const pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Long wall-clock run the parent will interrupt.
    execl(daemon_bin().c_str(), "mecsc_serve", "--stations", "12", "--requests",
          "30", "--services", "3", "--slots", "100000", "--slot-ms", "20",
          "--seed", "5", "--trace-out", trace.c_str(), (char*)nullptr);
    _exit(127);
  }
  // Let it commit a few slots before interrupting.
  std::this_thread::sleep_for(std::chrono::milliseconds(600));
  ASSERT_EQ(kill(pid, SIGTERM), 0);
  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);

  std::size_t slots = 0;
  EXPECT_TRUE(mecsc::serve::trace_well_formed(trace, &slots));
  EXPECT_GE(slots, 1u);
  EXPECT_LT(slots, 100000u);
  // The partial trace still replays bit-for-bit.
  EXPECT_EQ(run_command(daemon_bin() + " --verify " + trace + " 2>/dev/null"),
            0);
  std::remove(trace.c_str());
}

TEST(ServeDaemon, AnswersQueriesOverStdinStdout) {
  const std::string out_path = temp_path("queries.out");
  // Feed the queries after a short delay so the pipeline has committed
  // slots to answer from; stdout carries only the JSON responses.
  const std::string cmd =
      "( sleep 0.4; printf '{\"q\":\"stats\"}\\n{\"q\":\"request\",\"id\":2}\\n"
      "{\"q\":\"service\",\"id\":0}\\n' ) | " +
      daemon_bin() +
      " --stations 12 --requests 30 --services 3 --slots 40 --slot-ms 30"
      " --seed 3 --queries > " +
      out_path + " 2>/dev/null";
  ASSERT_EQ(run_command(cmd), 0);
  const std::string out = read_file(out_path);
  EXPECT_NE(out.find("\"q\":\"stats\""), std::string::npos) << out;
  EXPECT_NE(out.find("\"q\":\"request\""), std::string::npos) << out;
  EXPECT_NE(out.find("\"station\":"), std::string::npos) << out;
  EXPECT_NE(out.find("\"q\":\"service\""), std::string::npos) << out;
  EXPECT_EQ(out.find("error"), std::string::npos) << out;
  std::remove(out_path.c_str());
}

TEST(ServeDaemon, RejectsUnknownFlags) {
  EXPECT_EQ(run_command(daemon_bin() + " --no-such-flag 2>/dev/null"), 2);
}

}  // namespace
