// Tests for the workload substrate: bursty demand models, workload
// generation, and the NYC-hotspot-like trace.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "common/stats.h"
#include "net/generators.h"
#include "workload/demand_model.h"
#include "workload/mobility.h"
#include "workload/trace.h"

namespace mecsc::workload {
namespace {

net::Topology test_topology(std::uint64_t seed = 3, std::size_t n = 40) {
  common::Rng rng(seed);
  net::GtItmParams p;
  p.num_stations = n;
  return net::generate_gtitm_like(p, rng);
}

TEST(ConstantDemand, AlwaysZero) {
  ConstantDemand d;
  common::Rng rng(1);
  for (std::size_t t = 0; t < 100; ++t) EXPECT_DOUBLE_EQ(d.sample(t, rng), 0.0);
}

TEST(OnOffBurstDemand, NonNegativeAndCapped) {
  OnOffBurstDemand d(0.3, 0.3, 5.0, 1.5, 20.0);
  common::Rng rng(2);
  for (std::size_t t = 0; t < 5000; ++t) {
    double v = d.sample(t, rng);
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 20.0);
  }
}

TEST(OnOffBurstDemand, StationaryOnFractionApproximate) {
  OnOffBurstDemand d(0.2, 0.4, 5.0, 1.5, 50.0);
  EXPECT_NEAR(d.stationary_on(), 1.0 / 3.0, 1e-12);
  common::Rng rng(3);
  int on_slots = 0;
  const int n = 60000;
  for (int t = 0; t < n; ++t) {
    if (d.sample(static_cast<std::size_t>(t), rng) > 0.0) ++on_slots;
  }
  EXPECT_NEAR(static_cast<double>(on_slots) / n, 1.0 / 3.0, 0.02);
}

TEST(OnOffBurstDemand, BurstinessIsCorrelated) {
  // ON runs should be longer than i.i.d. coin flips would produce:
  // expected run length = 1/p_off.
  OnOffBurstDemand d(0.05, 0.2, 5.0, 1.5, 50.0);
  common::Rng rng(5);
  std::vector<bool> on;
  for (int t = 0; t < 50000; ++t) on.push_back(d.sample(t, rng) > 0.0);
  double runs = 0.0;
  double on_total = 0.0;
  for (std::size_t i = 0; i < on.size(); ++i) {
    if (on[i]) {
      ++on_total;
      if (i == 0 || !on[i - 1]) ++runs;
    }
  }
  ASSERT_GT(runs, 0.0);
  EXPECT_NEAR(on_total / runs, 5.0, 1.0);  // 1/p_off = 5 slots per burst
}

TEST(DiurnalDemand, PeriodicPeaksWithoutNoise) {
  DiurnalDemand d(10.0, 24.0, 0.0, 0.0);
  common::Rng rng(7);
  // sin peaks at t = 6 (quarter period), troughs at t = 18.
  double peak = d.sample(6, rng);
  double trough = d.sample(18, rng);
  EXPECT_NEAR(peak, 10.0, 1e-9);
  EXPECT_NEAR(trough, 0.0, 1e-9);
  // Periodicity.
  EXPECT_NEAR(d.sample(6, rng), d.sample(30, rng), 1e-9);
}

TEST(DiurnalDemand, NoiseNeverMakesItNegative) {
  DiurnalDemand d(2.0, 24.0, 0.0, 5.0);
  common::Rng rng(9);
  for (std::size_t t = 0; t < 2000; ++t) EXPECT_GE(d.sample(t, rng), 0.0);
}

TEST(EventSchedule, MultiplierBoundsAndCount) {
  common::Rng rng(11);
  EventSchedule s(4, 200, 0.2, 3, 2.5, rng);
  EXPECT_GT(s.num_events(), 0u);
  bool any_boost = false;
  for (std::size_t c = 0; c < 4; ++c) {
    for (std::size_t t = 0; t < 200; ++t) {
      double m = s.multiplier(c, t);
      EXPECT_TRUE(m == 1.0 || m == 2.5);
      if (m > 1.0) any_boost = true;
    }
  }
  EXPECT_TRUE(any_boost);
}

TEST(EventSchedule, EventsLastTheirDuration) {
  common::Rng rng(13);
  EventSchedule s(1, 400, 0.05, 4, 3.0, rng);
  // Count maximal boosted runs; each must span >= 1 and <= horizon slots,
  // and mean run length should be close to the duration (events can
  // overlap, elongating runs).
  std::size_t runs = 0;
  std::size_t boosted = 0;
  for (std::size_t t = 0; t < 400; ++t) {
    bool b = s.multiplier(0, t) > 1.0;
    if (b) {
      ++boosted;
      if (t == 0 || s.multiplier(0, t - 1) == 1.0) ++runs;
    }
  }
  ASSERT_GT(runs, 0u);
  EXPECT_GE(static_cast<double>(boosted) / static_cast<double>(runs), 3.9);
}

TEST(EventSchedule, NoEventsAtZeroProbability) {
  common::Rng rng(15);
  EventSchedule s(3, 100, 0.0, 3, 2.0, rng);
  EXPECT_EQ(s.num_events(), 0u);
}

TEST(DemandMatrix, AccessorsAndBounds) {
  DemandMatrix m(3, 5);
  m.set(1, 2, 7.5);
  EXPECT_DOUBLE_EQ(m.at(1, 2), 7.5);
  EXPECT_THROW(m.at(3, 0), std::exception);
  EXPECT_THROW(m.set(0, 5, 1.0), std::exception);
  EXPECT_THROW(m.set(0, 0, -1.0), std::exception);
  auto col = m.slot(2);
  ASSERT_EQ(col.size(), 3u);
  EXPECT_DOUBLE_EQ(col[1], 7.5);
  auto row = m.series(1);
  ASSERT_EQ(row.size(), 5u);
  EXPECT_DOUBLE_EQ(row[2], 7.5);
  EXPECT_DOUBLE_EQ(m.max_value(), 7.5);
}

TEST(MakeWorkload, GivenDemandRegimeIsConstant) {
  net::Topology topo = test_topology();
  common::Rng rng(17);
  WorkloadParams p;
  p.num_requests = 25;
  p.num_services = 5;
  Workload w = make_workload(topo, p, rng, /*bursty=*/false);
  ASSERT_EQ(w.requests.size(), 25u);
  ASSERT_EQ(w.processes.size(), 25u);
  ASSERT_EQ(w.services.size(), 5u);
  common::Rng drng(19);
  DemandMatrix m = realize_demands(w.requests, w.processes, 20, drng);
  for (std::size_t l = 0; l < 25; ++l) {
    for (std::size_t t = 0; t < 20; ++t) {
      EXPECT_DOUBLE_EQ(m.at(l, t), w.requests[l].basic_demand);
    }
  }
}

TEST(MakeWorkload, BurstyDemandsExceedBasicSometimes) {
  net::Topology topo = test_topology();
  common::Rng rng(21);
  WorkloadParams p;
  p.num_requests = 30;
  p.horizon = 150;
  Workload w = make_workload(topo, p, rng, /*bursty=*/true);
  common::Rng drng(23);
  DemandMatrix m = realize_demands(w.requests, w.processes, 150, drng);
  std::size_t above_basic = 0;
  for (std::size_t l = 0; l < 30; ++l) {
    for (std::size_t t = 0; t < 150; ++t) {
      EXPECT_GE(m.at(l, t), w.requests[l].basic_demand - 1e-9);
      if (m.at(l, t) > w.requests[l].basic_demand + 1e-9) ++above_basic;
    }
  }
  EXPECT_GT(above_basic, 100u);  // bursts actually happen
}

TEST(MakeWorkload, RequestAttributesValid) {
  net::Topology topo = test_topology();
  common::Rng rng(25);
  WorkloadParams p;
  p.num_requests = 40;
  p.num_services = 6;
  p.num_clusters = 5;
  Workload w = make_workload(topo, p, rng, true);
  for (const auto& r : w.requests) {
    EXPECT_LT(r.service_id, 6u);
    EXPECT_LT(r.location_cluster, 5u);
    EXPECT_LT(r.home_station, topo.num_stations());
    EXPECT_GE(r.basic_demand, p.basic_demand_lo);
    EXPECT_LE(r.basic_demand, p.basic_demand_hi);
  }
  for (const auto& s : w.services) {
    EXPECT_GE(s.base_instantiation_ms, p.service_inst_lo_ms);
    EXPECT_LE(s.base_instantiation_ms, p.service_inst_hi_ms);
    EXPECT_FALSE(s.name.empty());
  }
}

TEST(MakeWorkload, HomeStationIsNearest) {
  net::Topology topo = test_topology();
  common::Rng rng(27);
  WorkloadParams p;
  p.num_requests = 20;
  Workload w = make_workload(topo, p, rng, false);
  for (const auto& r : w.requests) {
    const auto& home = topo.station(r.home_station);
    double dx = r.x_m - home.x_m;
    double dy = r.y_m - home.y_m;
    double home_dist = std::sqrt(dx * dx + dy * dy);
    // If home doesn't cover the user, nothing nearer may either.
    if (home_dist > home.radius_m) {
      for (const auto& bs : topo.stations()) {
        double bx = r.x_m - bs.x_m;
        double by = r.y_m - bs.y_m;
        double d = std::sqrt(bx * bx + by * by);
        EXPECT_GE(d + 1e-9, std::min(home_dist, d));  // trivially true guard
        EXPECT_FALSE(d <= bs.radius_m && d < home_dist - 1e-9)
            << "a nearer covering station exists";
      }
    }
  }
}

TEST(Trace, OneHotEncoding) {
  Trace t({TraceRow{0, 1, 0, 5.0}}, 3, 10);
  auto v = t.one_hot(1);
  ASSERT_EQ(v.size(), 3u);
  EXPECT_DOUBLE_EQ(v[0], 0.0);
  EXPECT_DOUBLE_EQ(v[1], 1.0);
  EXPECT_DOUBLE_EQ(v[2], 0.0);
  EXPECT_THROW(t.one_hot(3), std::exception);
}

TEST(Trace, ClusterSeriesAveragesRows) {
  std::vector<TraceRow> rows{
      {0, 0, 0, 4.0}, {1, 0, 0, 6.0},  // slot 0, cluster 0: mean 5
      {0, 0, 2, 9.0},                  // slot 2
      {2, 1, 1, 3.0},                  // other cluster
  };
  Trace t(std::move(rows), 2, 4);
  auto s = t.cluster_series(0);
  ASSERT_EQ(s.size(), 4u);
  EXPECT_DOUBLE_EQ(s[0], 5.0);
  EXPECT_DOUBLE_EQ(s[1], 5.0);  // unobserved slot: forward-filled
  EXPECT_DOUBLE_EQ(s[2], 9.0);
  EXPECT_DOUBLE_EQ(s[3], 9.0);  // trailing gap: forward-filled
  // Cluster 1 observed only at slot 1: leading gap backfilled.
  auto s1 = t.cluster_series(1);
  EXPECT_DOUBLE_EQ(s1[0], 3.0);
  EXPECT_DOUBLE_EQ(s1[1], 3.0);
  auto u = t.user_series(0);
  EXPECT_DOUBLE_EQ(u[0], 4.0);
  EXPECT_DOUBLE_EQ(u[2], 9.0);
}

TEST(Trace, ValidatesRows) {
  EXPECT_THROW(Trace({TraceRow{0, 5, 0, 1.0}}, 2, 10), std::exception);
  EXPECT_THROW(Trace({TraceRow{0, 0, 12, 1.0}}, 2, 10), std::exception);
}

TEST(Trace, FromDemandsSamplingFraction) {
  net::Topology topo = test_topology();
  common::Rng rng(29);
  WorkloadParams p;
  p.num_requests = 20;
  Workload w = make_workload(topo, p, rng, false);
  common::Rng drng(31);
  DemandMatrix m = realize_demands(w.requests, w.processes, 50, drng);
  common::Rng trng(33);
  Trace full = Trace::from_demands(w.requests, m, p.num_clusters, 1.0, trng);
  EXPECT_EQ(full.rows().size(), 20u * 50u);
  common::Rng trng2(35);
  Trace sampled = Trace::from_demands(w.requests, m, p.num_clusters, 0.3, trng2);
  double frac = static_cast<double>(sampled.rows().size()) / (20.0 * 50.0);
  EXPECT_NEAR(frac, 0.3, 0.06);
}

TEST(Trace, FromDemandsNeverEmpty) {
  net::Topology topo = test_topology();
  common::Rng rng(37);
  WorkloadParams p;
  p.num_requests = 1;
  Workload w = make_workload(topo, p, rng, false);
  common::Rng drng(39);
  DemandMatrix m = realize_demands(w.requests, w.processes, 1, drng);
  common::Rng trng(41);
  Trace t = Trace::from_demands(w.requests, m, p.num_clusters, 1e-9, trng);
  EXPECT_GE(t.rows().size(), 1u);
}

TEST(Mobility, RejectsBadParameters) {
  EXPECT_THROW(MobilityModel(MobilityParams{}, {}), std::exception);
  MobilityParams bad;
  bad.relocate_probability = 1.5;
  EXPECT_THROW(MobilityModel(bad, {{0.0, 0.0}}), std::exception);
}

TEST(Mobility, ZeroRatesKeepUsersAlmostStill) {
  net::Topology topo = test_topology();
  common::Rng rng(61);
  WorkloadParams p;
  p.num_requests = 10;
  Workload w = make_workload(topo, p, rng, false);
  MobilityParams mp;
  mp.relocate_probability = 0.0;
  mp.wander_sigma_m = 0.0;
  MobilityModel m(mp, w.cluster_centers);
  auto before = w.requests;
  common::Rng mrng(63);
  m.step(w.requests, topo, mrng);
  for (std::size_t l = 0; l < before.size(); ++l) {
    EXPECT_DOUBLE_EQ(w.requests[l].x_m, before[l].x_m);
    EXPECT_EQ(w.requests[l].location_cluster, before[l].location_cluster);
    EXPECT_EQ(w.requests[l].home_station, before[l].home_station);
  }
}

TEST(Mobility, RelocationChangesClusterAndNeverSelf) {
  net::Topology topo = test_topology();
  common::Rng rng(65);
  WorkloadParams p;
  p.num_requests = 30;
  p.num_clusters = 4;
  Workload w = make_workload(topo, p, rng, false);
  MobilityParams mp;
  mp.relocate_probability = 1.0;  // everyone relocates every slot
  MobilityModel m(mp, w.cluster_centers);
  common::Rng mrng(67);
  for (int step = 0; step < 5; ++step) {
    auto before = w.requests;
    m.step(w.requests, topo, mrng);
    for (std::size_t l = 0; l < before.size(); ++l) {
      EXPECT_NE(w.requests[l].location_cluster, before[l].location_cluster);
      EXPECT_LT(w.requests[l].location_cluster, 4u);
      EXPECT_LT(w.requests[l].home_station, topo.num_stations());
    }
  }
}

TEST(Mobility, UnrollIsReplayable) {
  net::Topology topo = test_topology();
  common::Rng rng(69);
  WorkloadParams p;
  p.num_requests = 8;
  Workload w = make_workload(topo, p, rng, false);
  MobilityModel m(MobilityParams{}, w.cluster_centers);
  common::Rng r1(71);
  common::Rng r2(71);
  auto a = m.unroll(w.requests, topo, 10, r1);
  auto b = m.unroll(w.requests, topo, 10, r2);
  ASSERT_EQ(a.size(), 10u);
  for (std::size_t t = 0; t < 10; ++t) {
    for (std::size_t l = 0; l < 8; ++l) {
      EXPECT_DOUBLE_EQ(a[t][l].x_m, b[t][l].x_m);
      EXPECT_EQ(a[t][l].home_station, b[t][l].home_station);
    }
  }
  // Slot 0 is the initial state.
  for (std::size_t l = 0; l < 8; ++l) {
    EXPECT_DOUBLE_EQ(a[0][l].x_m, w.requests[l].x_m);
  }
}

TEST(Mobility, HomeStationFollowsPosition) {
  net::Topology topo = test_topology();
  common::Rng rng(73);
  WorkloadParams p;
  p.num_requests = 20;
  p.num_clusters = 5;
  Workload w = make_workload(topo, p, rng, false);
  MobilityParams mp;
  mp.relocate_probability = 0.5;
  MobilityModel m(mp, w.cluster_centers);
  common::Rng mrng(75);
  m.step(w.requests, topo, mrng);
  for (const auto& u : w.requests) {
    EXPECT_EQ(u.home_station, nearest_home_station(topo, u.x_m, u.y_m));
  }
}

TEST(TraceCsv, RoundTrip) {
  std::vector<TraceRow> rows{
      {0, 0, 0, 4.5}, {1, 1, 2, 6.25}, {2, 0, 3, 0.0},
  };
  Trace t(rows, 2, 5);
  std::string csv = t.to_csv();
  Trace back = Trace::from_csv(csv, 2, 5);
  ASSERT_EQ(back.rows().size(), 3u);
  EXPECT_EQ(back.rows()[1].user, 1u);
  EXPECT_EQ(back.rows()[1].cluster, 1u);
  EXPECT_EQ(back.rows()[1].slot, 2u);
  EXPECT_DOUBLE_EQ(back.rows()[1].demand, 6.25);
  EXPECT_EQ(back.num_clusters(), 2u);
  EXPECT_EQ(back.horizon(), 5u);
}

TEST(TraceCsv, InfersDimensions) {
  Trace t = Trace::from_csv("user,cluster,slot,demand\n0,3,7,1.5\n");
  EXPECT_EQ(t.num_clusters(), 4u);
  EXPECT_EQ(t.horizon(), 8u);
}

TEST(TraceCsv, AcceptsHeaderlessInput) {
  Trace t = Trace::from_csv("1,0,0,2.0\n2,1,1,3.0\n");
  EXPECT_EQ(t.rows().size(), 2u);
}

TEST(TraceCsv, RejectsMalformedInput) {
  EXPECT_THROW(Trace::from_csv(""), std::exception);
  EXPECT_THROW(Trace::from_csv("user,cluster,slot,demand\n"), std::exception);
  EXPECT_THROW(Trace::from_csv("a,b,c,d\n"), std::exception);
  EXPECT_THROW(Trace::from_csv("0,0,0\n"), std::exception);
  EXPECT_THROW(Trace::from_csv("0,0,0,-5.0\n"), std::exception);
}

TEST(TraceCsv, SurvivesSampledScenarioTrace) {
  net::Topology topo = test_topology();
  common::Rng rng(51);
  WorkloadParams p;
  p.num_requests = 10;
  Workload w = make_workload(topo, p, rng, true);
  common::Rng drng(53);
  DemandMatrix m = realize_demands(w.requests, w.processes, 30, drng);
  common::Rng trng(55);
  Trace t = Trace::from_demands(w.requests, m, p.num_clusters, 0.5, trng);
  Trace back = Trace::from_csv(t.to_csv(), t.num_clusters(), t.horizon());
  ASSERT_EQ(back.rows().size(), t.rows().size());
  // Gap-filled series must agree (CSV preserves observations).
  for (std::size_t c = 0; c < t.num_clusters(); ++c) {
    auto a = t.cluster_series(c);
    auto b = back.cluster_series(c);
    for (std::size_t s = 0; s < a.size(); ++s) EXPECT_NEAR(a[s], b[s], 1e-5);
  }
}

}  // namespace
}  // namespace mecsc::workload
