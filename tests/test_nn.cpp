// Tests for the neural-network substrate: matrix ops, reverse-mode
// autodiff (finite-difference gradient checks on every op), layers and
// optimizers.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "common/rng.h"
#include "nn/autodiff.h"
#include "nn/layers.h"
#include "nn/matrix.h"
#include "nn/optimizer.h"

namespace mecsc::nn {
namespace {

TEST(Matrix, ConstructionAndAccess) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m.at(1, 2), 1.5);
  m.at(0, 1) = 7.0;
  EXPECT_DOUBLE_EQ(m.at(0, 1), 7.0);
  EXPECT_THROW(m.at(2, 0), std::exception);
  EXPECT_THROW(Matrix(2, 2, std::vector<double>{1.0}), std::exception);
}

TEST(Matrix, MatmulKnownValues) {
  Matrix a(2, 3, {1, 2, 3, 4, 5, 6});
  Matrix b(3, 2, {7, 8, 9, 10, 11, 12});
  Matrix c = matmul(a, b);
  EXPECT_DOUBLE_EQ(c.at(0, 0), 58.0);
  EXPECT_DOUBLE_EQ(c.at(0, 1), 64.0);
  EXPECT_DOUBLE_EQ(c.at(1, 0), 139.0);
  EXPECT_DOUBLE_EQ(c.at(1, 1), 154.0);
  EXPECT_THROW(matmul(a, a), std::exception);
}

TEST(Matrix, TransposeRoundTrip) {
  common::Rng rng(1);
  Matrix m = Matrix::randn(3, 5, rng);
  Matrix t = m.transposed().transposed();
  for (std::size_t i = 0; i < m.size(); ++i) EXPECT_DOUBLE_EQ(m[i], t[i]);
}

TEST(Matrix, ElementwiseOps) {
  Matrix a(1, 3, {1, 2, 3});
  Matrix b(1, 3, {4, 5, 6});
  EXPECT_DOUBLE_EQ(add(a, b)[2], 9.0);
  EXPECT_DOUBLE_EQ(sub(b, a)[0], 3.0);
  EXPECT_DOUBLE_EQ(hadamard(a, b)[1], 10.0);
  EXPECT_DOUBLE_EQ(scale(a, 2.0)[2], 6.0);
}

TEST(Matrix, ConcatAndSlice) {
  Matrix a(2, 2, {1, 2, 3, 4});
  Matrix b(2, 1, {9, 8});
  Matrix c = concat_cols(a, b);
  EXPECT_EQ(c.cols(), 3u);
  EXPECT_DOUBLE_EQ(c.at(0, 2), 9.0);
  Matrix s = slice_cols(c, 1, 3);
  EXPECT_DOUBLE_EQ(s.at(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(s.at(1, 1), 8.0);
}

TEST(Matrix, SoftmaxRowsSumToOne) {
  Matrix m(2, 4, {1, 2, 3, 4, -1, 0, 1, 100});
  Matrix p = softmax_rows(m);
  for (std::size_t r = 0; r < 2; ++r) {
    double s = 0.0;
    for (std::size_t j = 0; j < 4; ++j) s += p.at(r, j);
    EXPECT_NEAR(s, 1.0, 1e-12);
  }
  EXPECT_NEAR(p.at(1, 3), 1.0, 1e-9);  // large logit dominates, no overflow
}

TEST(Matrix, XavierWithinLimit) {
  common::Rng rng(2);
  Matrix m = Matrix::xavier(10, 20, rng);
  double limit = std::sqrt(6.0 / 30.0);
  for (std::size_t i = 0; i < m.size(); ++i) {
    EXPECT_LE(std::abs(m[i]), limit);
  }
}

// ---------------------------------------------------------------------
// Gradient checking machinery: compare autodiff gradients of a scalar
// loss against central finite differences for every parameter entry.
// ---------------------------------------------------------------------

void check_gradients(const std::vector<Var>& params,
                     const std::function<Var()>& build_loss,
                     double tol = 1e-5) {
  Var loss = build_loss();
  for (const auto& p : params) p->zero_grad();
  backward(loss);
  std::vector<Matrix> analytic;
  for (const auto& p : params) {
    analytic.push_back(p->grad.empty()
                           ? Matrix(p->value.rows(), p->value.cols())
                           : p->grad);
  }
  const double h = 1e-6;
  for (std::size_t pi = 0; pi < params.size(); ++pi) {
    auto& p = params[pi];
    for (std::size_t i = 0; i < p->value.size(); ++i) {
      double orig = p->value[i];
      p->value[i] = orig + h;
      double up = build_loss()->value[0];
      p->value[i] = orig - h;
      double down = build_loss()->value[0];
      p->value[i] = orig;
      double numeric = (up - down) / (2.0 * h);
      EXPECT_NEAR(analytic[pi][i], numeric, tol)
          << "param " << pi << " entry " << i;
    }
  }
}

TEST(Autodiff, MatmulGradients) {
  common::Rng rng(3);
  Var a = parameter(Matrix::randn(2, 3, rng));
  Var b = parameter(Matrix::randn(3, 2, rng));
  check_gradients({a, b}, [&] { return op_mean_all(op_matmul(a, b)); });
}

TEST(Autodiff, AddSubHadamardGradients) {
  common::Rng rng(4);
  Var a = parameter(Matrix::randn(2, 2, rng));
  Var b = parameter(Matrix::randn(2, 2, rng));
  check_gradients({a, b}, [&] {
    return op_mean_all(op_hadamard(op_add(a, b), op_sub(a, b)));
  });
}

TEST(Autodiff, AddRowGradients) {
  common::Rng rng(5);
  Var a = parameter(Matrix::randn(3, 4, rng));
  Var bias = parameter(Matrix::randn(1, 4, rng));
  check_gradients({a, bias}, [&] { return op_mean_all(op_add_row(a, bias)); });
}

TEST(Autodiff, ActivationGradients) {
  common::Rng rng(6);
  Var a = parameter(Matrix::randn(2, 3, rng));
  check_gradients({a}, [&] { return op_mean_all(op_sigmoid(a)); });
  check_gradients({a}, [&] { return op_mean_all(op_tanh(a)); });
  check_gradients({a}, [&] { return op_mean_all(op_scale(a, 2.5)); });
}

TEST(Autodiff, ReluGradientAwayFromKink) {
  Var a = parameter(Matrix(1, 4, {-2.0, -0.5, 0.5, 2.0}));
  check_gradients({a}, [&] { return op_mean_all(op_relu(a)); });
}

TEST(Autodiff, ConcatSliceGradients) {
  common::Rng rng(7);
  Var a = parameter(Matrix::randn(2, 3, rng));
  Var b = parameter(Matrix::randn(2, 2, rng));
  check_gradients({a, b}, [&] {
    Var c = op_concat_cols(a, b);
    return op_mean_all(op_slice_cols(c, 1, 4));
  });
}

TEST(Autodiff, MseGradients) {
  common::Rng rng(8);
  Var pred = parameter(Matrix::randn(3, 2, rng));
  Var target = constant(Matrix::randn(3, 2, rng));
  check_gradients({pred}, [&] { return loss_mse(pred, target); });
}

TEST(Autodiff, BceGradients) {
  common::Rng rng(9);
  Var logits = parameter(Matrix::randn(4, 2, rng));
  Matrix t(4, 2);
  for (std::size_t i = 0; i < t.size(); ++i) t[i] = (i % 2 == 0) ? 1.0 : 0.0;
  Var target = constant(t);
  check_gradients({logits}, [&] { return loss_bce_with_logits(logits, target); });
}

TEST(Autodiff, SoftmaxCrossEntropyGradients) {
  common::Rng rng(10);
  Var logits = parameter(Matrix::randn(3, 4, rng));
  Matrix t(3, 4);
  t.at(0, 1) = 1.0;
  t.at(1, 3) = 1.0;
  t.at(2, 0) = 1.0;
  Var target = constant(t);
  check_gradients({logits},
                  [&] { return loss_softmax_cross_entropy(logits, target); });
}

TEST(Autodiff, LinearLayerGradients) {
  common::Rng rng(11);
  Linear layer(3, 2, rng);
  Var x = constant(Matrix::randn(4, 3, rng));
  check_gradients(layer.parameters(),
                  [&] { return op_mean_all(op_tanh(layer.forward(x))); });
}

TEST(Autodiff, LstmCellGradients) {
  common::Rng rng(12);
  LSTMCell cell(2, 3, rng);
  Var x1 = constant(Matrix::randn(2, 2, rng));
  Var x2 = constant(Matrix::randn(2, 2, rng));
  check_gradients(cell.parameters(), [&] {
    auto s = cell.initial_state(2);
    s = cell.step(x1, s);
    s = cell.step(x2, s);
    return op_mean_all(s.h);
  }, 2e-5);
}

TEST(Autodiff, BiLstmGradients) {
  common::Rng rng(13);
  BiLSTM rnn(2, 2, rng);
  std::vector<Var> seq;
  for (int t = 0; t < 3; ++t) seq.push_back(constant(Matrix::randn(1, 2, rng)));
  check_gradients(rnn.parameters(), [&] {
    auto out = rnn.forward(seq);
    Var acc = op_mean_all(out[0]);
    for (std::size_t t = 1; t < out.size(); ++t) {
      acc = op_add(acc, op_mean_all(out[t]));
    }
    return op_scale(acc, 1.0 / 3.0);
  }, 2e-5);
}

TEST(Autodiff, ReusedNodeAccumulatesGradient) {
  // loss = mean(a ⊙ a): d/da = 2a/n — exercises gradient accumulation
  // when one node has two consumers.
  Var a = parameter(Matrix(1, 2, {3.0, -1.0}));
  Var loss = op_mean_all(op_hadamard(a, a));
  backward(loss);
  EXPECT_NEAR(a->grad[0], 3.0, 1e-9);   // 2*3/2
  EXPECT_NEAR(a->grad[1], -1.0, 1e-9);  // 2*(-1)/2
}

TEST(Autodiff, BackwardRequiresScalar) {
  Var a = parameter(Matrix(2, 2, 1.0));
  EXPECT_THROW(backward(a), std::exception);
}

TEST(Autodiff, ConstantsGetNoGradient) {
  Var a = constant(Matrix(1, 2, {1.0, 2.0}));
  Var b = parameter(Matrix(1, 2, {1.0, 2.0}));
  Var loss = op_mean_all(op_hadamard(a, b));
  backward(loss);
  EXPECT_TRUE(a->grad.empty());
  EXPECT_FALSE(b->grad.empty());
}

TEST(Autodiff, GruCellGradients) {
  common::Rng rng(20);
  GRUCell cell(2, 3, rng);
  Var x1 = constant(Matrix::randn(2, 2, rng));
  Var x2 = constant(Matrix::randn(2, 2, rng));
  check_gradients(cell.parameters(), [&] {
    Var h = cell.initial_state(2);
    h = cell.step(x1, h);
    h = cell.step(x2, h);
    return op_mean_all(h);
  }, 2e-5);
}

TEST(Autodiff, BiGruGradients) {
  common::Rng rng(21);
  BiGRU rnn(2, 2, rng);
  std::vector<Var> seq;
  for (int t = 0; t < 3; ++t) seq.push_back(constant(Matrix::randn(1, 2, rng)));
  check_gradients(rnn.parameters(), [&] {
    auto out = rnn.forward(seq);
    Var acc = op_mean_all(out[0]);
    for (std::size_t t = 1; t < out.size(); ++t) {
      acc = op_add(acc, op_mean_all(out[t]));
    }
    return op_scale(acc, 1.0 / 3.0);
  }, 2e-5);
}

TEST(Gru, OutputShapesAndRange) {
  common::Rng rng(22);
  GRU rnn(3, 5, rng);
  std::vector<Var> seq;
  for (int t = 0; t < 4; ++t) seq.push_back(constant(Matrix::randn(2, 3, rng)));
  auto out = rnn.forward(seq);
  ASSERT_EQ(out.size(), 4u);
  for (const auto& h : out) {
    EXPECT_EQ(h->value.rows(), 2u);
    EXPECT_EQ(h->value.cols(), 5u);
    // GRU state is a convex mix of tanh outputs: stays in (-1, 1).
    for (std::size_t i = 0; i < h->value.size(); ++i) {
      EXPECT_GT(h->value[i], -1.0);
      EXPECT_LT(h->value[i], 1.0);
    }
  }
}

TEST(BiRnn, FactoryProducesBothKinds) {
  common::Rng rng(23);
  auto lstm = make_birnn(RnnKind::kLstm, 2, 4, rng);
  auto gru = make_birnn(RnnKind::kGru, 2, 4, rng);
  EXPECT_EQ(lstm->output_size(), 8u);
  EXPECT_EQ(gru->output_size(), 8u);
  // GRU has 3 gate blocks vs LSTM's 4: strictly fewer parameters.
  EXPECT_LT(gru->parameter_count(), lstm->parameter_count());
  std::vector<Var> seq{constant(Matrix::randn(1, 2, rng)),
                       constant(Matrix::randn(1, 2, rng))};
  EXPECT_EQ(lstm->forward(seq).size(), 2u);
  EXPECT_EQ(gru->forward(seq).size(), 2u);
}

TEST(Gru, LearnsToEchoSign) {
  common::Rng rng(24);
  GRU rnn(1, 6, rng);
  Linear head(6, 1, rng);
  std::vector<Var> params = rnn.parameters();
  for (const auto& p : head.parameters()) params.push_back(p);
  Adam opt(params, 0.02);
  common::Rng data_rng(25);
  double final_loss = 1e9;
  for (int step = 0; step < 300; ++step) {
    std::vector<Var> xs;
    Matrix targets(1, 8);
    for (int t = 0; t < 8; ++t) {
      double v = data_rng.uniform(-1.0, 1.0);
      xs.push_back(constant(Matrix(1, 1, v)));
      targets[t] = v > 0.0 ? 1.0 : 0.0;
    }
    auto hs = rnn.forward(xs);
    Var logits = head.forward(hs[0]);
    for (std::size_t t = 1; t < hs.size(); ++t) {
      logits = op_concat_cols(logits, head.forward(hs[t]));
    }
    Var loss = loss_bce_with_logits(logits, constant(targets));
    opt.zero_grad();
    backward(loss);
    opt.clip_grad_norm(5.0);
    opt.step();
    final_loss = loss->value[0];
  }
  EXPECT_LT(final_loss, 0.25);
}

TEST(Module, ParameterCounts) {
  common::Rng rng(14);
  Linear lin(3, 4, rng);
  EXPECT_EQ(lin.parameter_count(), 3u * 4u + 4u);
  LSTMCell cell(2, 5, rng);
  EXPECT_EQ(cell.parameter_count(), (2u + 5u) * 20u + 20u);
  BiLSTM bi(2, 5, rng);
  EXPECT_EQ(bi.parameter_count(), 2u * ((2u + 5u) * 20u + 20u));
}

TEST(Optimizer, SgdConvergesOnQuadratic) {
  // min (w - 3)^2 via MSE against the constant 3.
  Var w = parameter(Matrix(1, 1, 0.0));
  Sgd opt({w}, 0.1);
  for (int i = 0; i < 200; ++i) {
    opt.zero_grad();
    Var loss = loss_mse(w, constant(Matrix(1, 1, 3.0)));
    backward(loss);
    opt.step();
  }
  EXPECT_NEAR(w->value[0], 3.0, 1e-4);
}

TEST(Optimizer, AdamConvergesOnQuadratic) {
  Var w = parameter(Matrix(1, 2, {-4.0, 10.0}));
  Adam opt({w}, 0.05);
  Var target = constant(Matrix(1, 2, {1.0, -2.0}));
  for (int i = 0; i < 2000; ++i) {
    opt.zero_grad();
    backward(loss_mse(w, target));
    opt.step();
  }
  EXPECT_NEAR(w->value[0], 1.0, 1e-3);
  EXPECT_NEAR(w->value[1], -2.0, 1e-3);
}

TEST(Optimizer, GradClipBoundsNorm) {
  Var w = parameter(Matrix(1, 2, {0.0, 0.0}));
  w->accumulate(Matrix(1, 2, {30.0, 40.0}));  // norm 50
  Adam opt({w}, 0.1);
  opt.clip_grad_norm(5.0);
  double norm = std::sqrt(w->grad[0] * w->grad[0] + w->grad[1] * w->grad[1]);
  EXPECT_NEAR(norm, 5.0, 1e-9);
  EXPECT_NEAR(w->grad[0] / w->grad[1], 0.75, 1e-9);  // direction preserved
}

TEST(Optimizer, RejectsNonParameterInputs) {
  Var c = constant(Matrix(1, 1, 0.0));
  EXPECT_THROW(Sgd({c}, 0.1), std::exception);
}

TEST(Lstm, LearnsToEchoSign) {
  // Tiny sanity: an LSTM + linear head can learn y_t = 1 if x_t > 0.
  common::Rng rng(15);
  LSTM rnn(1, 6, rng);
  Linear head(6, 1, rng);
  std::vector<Var> params = rnn.parameters();
  for (const auto& p : head.parameters()) params.push_back(p);
  Adam opt(params, 0.02);

  common::Rng data_rng(16);
  double final_loss = 1e9;
  for (int step = 0; step < 300; ++step) {
    std::vector<Var> xs;
    Matrix targets(1, 8);
    std::vector<Matrix> inputs;
    for (int t = 0; t < 8; ++t) {
      double v = data_rng.uniform(-1.0, 1.0);
      inputs.push_back(Matrix(1, 1, v));
      targets[t] = v > 0.0 ? 1.0 : 0.0;
    }
    for (const auto& m : inputs) xs.push_back(constant(m));
    auto hs = rnn.forward(xs);
    // Stack per-step logits into one 1×8 row.
    Var logits = head.forward(hs[0]);
    for (std::size_t t = 1; t < hs.size(); ++t) {
      logits = op_concat_cols(logits, head.forward(hs[t]));
    }
    Var loss = loss_bce_with_logits(logits, constant(targets));
    opt.zero_grad();
    backward(loss);
    opt.clip_grad_norm(5.0);
    opt.step();
    final_loss = loss->value[0];
  }
  EXPECT_LT(final_loss, 0.25);  // well below log(2) ≈ 0.693 chance level
}

}  // namespace
}  // namespace mecsc::nn
