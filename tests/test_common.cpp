// Tests for the common substrate: RNG, statistics, tables.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <set>

#include "common/env.h"
#include "common/env_catalog.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/stopwatch.h"
#include "common/table.h"

namespace mecsc::common {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform() == b.uniform()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(Rng, SplitIsIndependentOfChildUsage) {
  Rng a(7);
  Rng b(7);
  Rng child_a = a.split();
  Rng child_b = b.split();
  // Consuming child_a heavily must not change the parent's stream.
  for (int i = 0; i < 1000; ++i) child_a.uniform();
  (void)child_b;
  for (int i = 0; i < 50; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
  }
}

TEST(Rng, UniformIntInRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    auto v = rng.uniform_int(-5, 9);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 9);
  }
}

TEST(Rng, UniformIntCoversAllValues) {
  Rng rng(3);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.uniform_int(0, 9));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
    EXPECT_FALSE(rng.bernoulli(-0.3));
    EXPECT_TRUE(rng.bernoulli(1.7));
  }
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(11);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, ParetoRespectsScale) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GE(rng.pareto(2.0, 1.5), 2.0);
  }
}

TEST(Rng, ParetoMeanMatchesTheory) {
  // E[Pareto(x_m, alpha)] = alpha*x_m/(alpha-1) for alpha > 1.
  Rng rng(17);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.pareto(1.0, 3.0);
  EXPECT_NEAR(sum / n, 1.5, 0.05);
}

TEST(Rng, WeightedIndexRespectsWeights) {
  Rng rng(19);
  std::vector<double> w{0.0, 1.0, 3.0};
  std::vector<int> counts(3, 0);
  const int n = 40000;
  for (int i = 0; i < n; ++i) ++counts[rng.weighted_index(w)];
  EXPECT_EQ(counts[0], 0);
  EXPECT_NEAR(static_cast<double>(counts[1]) / n, 0.25, 0.02);
  EXPECT_NEAR(static_cast<double>(counts[2]) / n, 0.75, 0.02);
}

TEST(Rng, WeightedIndexAllZeroFallsBackToUniform) {
  Rng rng(23);
  std::vector<double> w{0.0, 0.0, 0.0, 0.0};
  std::set<std::size_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.weighted_index(w));
  EXPECT_EQ(seen.size(), 4u);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(29);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, KnownValues) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, SampleVarianceUsesNMinusOne) {
  RunningStats s;
  s.add(1.0);
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.variance(), 1.0);
  EXPECT_DOUBLE_EQ(s.sample_variance(), 2.0);
}

class RunningStatsMergeTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RunningStatsMergeTest, MergeEqualsSequential) {
  Rng rng(GetParam());
  RunningStats whole;
  RunningStats a;
  RunningStats b;
  for (int i = 0; i < 500; ++i) {
    double x = rng.normal(3.0, 2.0);
    whole.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_NEAR(a.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), whole.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), whole.min());
  EXPECT_DOUBLE_EQ(a.max(), whole.max());
}

INSTANTIATE_TEST_SUITE_P(Seeds, RunningStatsMergeTest,
                         ::testing::Values(1, 2, 3, 10, 99, 12345));

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a;
  a.add(5.0);
  RunningStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_DOUBLE_EQ(empty.mean(), 5.0);
}

TEST(Histogram, BasicBinning) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(9.5);
  h.add(5.0);
  EXPECT_EQ(h.bin_count(0), 1u);
  EXPECT_EQ(h.bin_count(9), 1u);
  EXPECT_EQ(h.bin_count(5), 1u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, OutOfRangeClamps) {
  Histogram h(0.0, 1.0, 4);
  h.add(-5.0);
  h.add(99.0);
  EXPECT_EQ(h.bin_count(0), 1u);
  EXPECT_EQ(h.bin_count(3), 1u);
}

TEST(Histogram, QuantileApproximatesUniform) {
  Histogram h(0.0, 1.0, 100);
  Rng rng(31);
  for (int i = 0; i < 100000; ++i) h.add(rng.uniform());
  EXPECT_NEAR(h.quantile(0.5), 0.5, 0.03);
  EXPECT_NEAR(h.quantile(0.9), 0.9, 0.03);
}

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(1.0, 1.0, 10), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(StatsHelpers, MeanOf) {
  EXPECT_DOUBLE_EQ(mean_of({}), 0.0);
  EXPECT_DOUBLE_EQ(mean_of({1.0, 2.0, 3.0}), 2.0);
}

TEST(StatsHelpers, QuantileOf) {
  std::vector<double> v{3.0, 1.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(quantile_of(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile_of(v, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(quantile_of(v, 0.5), 2.5);
  EXPECT_THROW(quantile_of({}, 0.5), std::invalid_argument);
}

TEST(Stopwatch, MeasuresNonNegativeMonotonicTime) {
  Stopwatch w;
  double t1 = w.elapsed_seconds();
  double t2 = w.elapsed_seconds();
  EXPECT_GE(t1, 0.0);
  EXPECT_GE(t2, t1);
  w.restart();
  EXPECT_GE(w.elapsed_ms(), 0.0);
}

TEST(Table, RendersAlignedRows) {
  Table t({"alg", "delay"});
  t.add_row({"OL_GD", "41.2"});
  t.add_row_values({1.0, 2.5}, 1);
  std::string s = t.to_string();
  EXPECT_NE(s.find("OL_GD"), std::string::npos);
  EXPECT_NE(s.find("41.2"), std::string::npos);
  EXPECT_NE(s.find("2.5"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
  EXPECT_EQ(t.cols(), 2u);
}

TEST(Table, CsvEscapesCommas) {
  Table t({"a"});
  t.add_row({"x,y"});
  EXPECT_NE(t.to_csv().find("\"x,y\""), std::string::npos);
}

TEST(Table, RejectsArityMismatch) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::exception);
}

TEST(EnvSize, UnsetAndEmptyYieldNullopt) {
  ::unsetenv("MECSC_TEST_ENV");
  EXPECT_FALSE(env_size_strict("MECSC_TEST_ENV").has_value());
  EXPECT_EQ(env_size_or("MECSC_TEST_ENV", 7u), 7u);
  ::setenv("MECSC_TEST_ENV", "", 1);
  EXPECT_FALSE(env_size_strict("MECSC_TEST_ENV").has_value());
  ::unsetenv("MECSC_TEST_ENV");
}

TEST(EnvSize, ParsesPlainIntegers) {
  ::setenv("MECSC_TEST_ENV", "42", 1);
  auto v = env_size_strict("MECSC_TEST_ENV");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 42u);
  EXPECT_EQ(env_size_or("MECSC_TEST_ENV", 7u), 42u);
  ::unsetenv("MECSC_TEST_ENV");
}

TEST(EnvSize, ExplicitZeroIsZeroNotFallback) {
  ::setenv("MECSC_TEST_ENV", "0", 1);
  auto v = env_size_strict("MECSC_TEST_ENV");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 0u);
  EXPECT_EQ(env_size_or("MECSC_TEST_ENV", 7u), 0u);
  ::unsetenv("MECSC_TEST_ENV");
}

TEST(EnvSize, RejectsTrailingGarbageAndNonNumeric) {
  ::setenv("MECSC_TEST_ENV", "10abc", 1);
  EXPECT_FALSE(env_size_strict("MECSC_TEST_ENV").has_value());
  EXPECT_EQ(env_size_or("MECSC_TEST_ENV", 7u), 7u);  // fallback, not 10
  ::setenv("MECSC_TEST_ENV", "abc", 1);
  EXPECT_FALSE(env_size_strict("MECSC_TEST_ENV").has_value());
  ::setenv("MECSC_TEST_ENV", "1.5", 1);
  EXPECT_FALSE(env_size_strict("MECSC_TEST_ENV").has_value());
  ::unsetenv("MECSC_TEST_ENV");
}

TEST(EnvCatalog, CoversKnownVariablesSortedAndUnique) {
  const auto& vars = env_catalog();
  ASSERT_GE(vars.size(), 5u);
  std::set<std::string> names;
  std::string prev;
  for (const auto& v : vars) {
    std::string name = v.name;
    EXPECT_EQ(name.rfind("MECSC_", 0), 0u) << name;
    EXPECT_GT(name, prev) << "catalogue must stay sorted by name";
    prev = name;
    names.insert(name);
    EXPECT_NE(std::string(v.type), "");
    EXPECT_NE(std::string(v.default_value), "");
    EXPECT_NE(std::string(v.effect), "");
  }
  EXPECT_EQ(names.size(), vars.size());
  EXPECT_TRUE(names.count("MECSC_AGGREGATE"));
  EXPECT_TRUE(names.count("MECSC_WORKERS"));
  EXPECT_TRUE(names.count("MECSC_TELEMETRY"));
}

TEST(EnvCatalog, TableListsEveryVariable) {
  std::string table = env_catalog_table();
  for (const auto& v : env_catalog()) {
    EXPECT_NE(table.find(v.name), std::string::npos) << v.name;
  }
}

TEST(Fmt, FixedPrecision) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(2.0, 0), "2");
}

}  // namespace
}  // namespace mecsc::common
