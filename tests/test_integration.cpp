// End-to-end integration tests: the paper's qualitative claims on small
// instances — OL_GD beats the passive baselines, regret grows
// sublinearly, and the full OL_GAN pipeline runs.
#include <gtest/gtest.h>

#include <memory>

#include "algorithms/baselines.h"
#include "algorithms/ol_gd.h"
#include "common/stats.h"
#include "predict/gan_predictor.h"
#include "sim/scenario.h"

namespace mecsc {
namespace {

TEST(Integration, OlGdOutperformsBaselinesOnAverage) {
  // Averaged over several topologies (the paper averages over 80), the
  // online learner should beat the passive baselines on steady-state
  // delay. Small sizes keep CI time sane; the bench reproduces the
  // full-size figure.
  common::RunningStats ol, greedy, pri;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    sim::ScenarioParams p;
    p.num_stations = 25;
    p.horizon = 60;
    p.workload.num_requests = 30;
    p.seed = seed;
    sim::Scenario s(p);
    algorithms::OlOptions opt;
    opt.theta_prior = s.theta_prior();
    auto a_ol = algorithms::make_ol_gd(s.problem(), s.demands(), opt,
                                       s.algorithm_seed(0));
    auto a_gr = algorithms::make_greedy_gd(s.problem(), s.demands(), s.historical_delay_estimates());
    auto a_pr = algorithms::make_pri_gd(s.problem(), s.demands(), s.historical_delay_estimates());
    ol.add(s.simulator().run(*a_ol).tail_mean_delay_ms(30));
    greedy.add(s.simulator().run(*a_gr).tail_mean_delay_ms(30));
    pri.add(s.simulator().run(*a_pr).tail_mean_delay_ms(30));
  }
  EXPECT_LT(ol.mean(), greedy.mean());
  EXPECT_LT(ol.mean(), pri.mean());
}

TEST(Integration, RegretGrowsSublinearly) {
  sim::ScenarioParams p;
  p.num_stations = 15;
  p.horizon = 80;
  p.workload.num_requests = 15;
  p.track_regret = true;
  p.seed = 3;
  sim::Scenario s(p);
  algorithms::OlOptions opt;
  opt.theta_prior = s.theta_prior();
  opt.epsilon = core::EpsilonSchedule::decay(0.9);
  auto algo = algorithms::make_ol_gd(s.problem(), s.demands(), opt,
                                     s.algorithm_seed(0));
  sim::RunResult r = s.simulator().run(*algo);
  ASSERT_EQ(r.cumulative_regret.size(), 80u);
  // Average per-slot regret in the second half below the first half.
  double first = r.cumulative_regret[39] / 40.0;
  double second = (r.cumulative_regret[79] - r.cumulative_regret[39]) / 40.0;
  EXPECT_LT(second, first);
}

TEST(Integration, RegretBelowTheorem1BoundAtDefaults) {
  sim::ScenarioParams p;
  p.num_stations = 12;
  p.horizon = 50;
  p.workload.num_requests = 12;
  p.track_regret = true;
  p.seed = 5;
  sim::Scenario s(p);
  algorithms::OlOptions opt;
  opt.theta_prior = s.theta_prior();
  auto algo = algorithms::make_ol_gd(s.problem(), s.demands(), opt,
                                     s.algorithm_seed(0));
  sim::RunResult r = s.simulator().run(*algo);
  double sigma = core::theory::lemma1_sigma(
      s.problem().num_requests(), s.d_max(), s.d_min(),
      s.problem().instantiation_delay_spread(), 0.25);
  double bound = core::theory::theorem1_bound(sigma, 50, 0.5);
  EXPECT_LT(r.cumulative_regret.back(), bound);
}

TEST(Integration, FullOlGanPipeline) {
  sim::ScenarioParams p;
  p.num_stations = 15;
  p.horizon = 10;
  p.bursty = true;
  p.workload.num_requests = 15;
  p.workload.num_clusters = 4;
  p.history_horizon = 50;
  p.seed = 7;
  sim::Scenario s(p);

  predict::GanPredictorOptions gopt;
  gopt.gan.noise_dim = 4;
  gopt.gan.hidden = 8;
  gopt.gan.seq_len = 8;
  gopt.gan.batch_size = 6;
  gopt.gan.num_codes = 4;
  gopt.train_steps = 30;
  auto predictor = std::make_unique<predict::GanDemandPredictor>(
      s.workload().requests, s.trace(), gopt, 11);

  algorithms::OlOptions opt;
  opt.theta_prior = s.theta_prior();
  auto ol_gan = algorithms::make_ol_with_predictor("OL_GAN", s.problem(),
                                                   std::move(predictor), opt,
                                                   s.algorithm_seed(0));
  auto ol_reg = algorithms::make_ol_reg(s.problem(), 3, opt, s.algorithm_seed(1));

  sim::RunResult rg = s.simulator().run(*ol_gan);
  sim::RunResult rr = s.simulator().run(*ol_reg);
  EXPECT_EQ(rg.slots.size(), 10u);
  EXPECT_EQ(rr.slots.size(), 10u);
  EXPECT_GT(rg.mean_delay_ms(), 0.0);
  EXPECT_GT(rr.mean_delay_ms(), 0.0);
  // The paper's Fig. 6(b): the GAN variant costs noticeably more compute.
  EXPECT_GT(rg.total_decision_time_ms(), rr.total_decision_time_ms());
}

TEST(Integration, As1755ScenarioEndToEnd) {
  sim::ScenarioParams p;
  p.net = sim::ScenarioParams::NetKind::kAs1755;
  p.num_stations = 50;
  p.horizon = 20;
  p.workload.num_requests = 25;
  p.seed = 9;
  sim::Scenario s(p);
  algorithms::OlOptions opt;
  opt.theta_prior = s.theta_prior();
  auto algo = algorithms::make_ol_gd(s.problem(), s.demands(), opt,
                                     s.algorithm_seed(0));
  sim::RunResult r = s.simulator().run(*algo);
  EXPECT_EQ(r.slots.size(), 20u);
  for (const auto& rec : r.slots) EXPECT_NEAR(rec.capacity_violation_mhz, 0.0, 1e-6);
}

}  // namespace
}  // namespace mecsc
