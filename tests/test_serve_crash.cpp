// Crash-tolerance tests of the mecsc::serve subsystem (DESIGN.md "Crash
// tolerance & recovery"): checkpoint roundtrip and corruption handling,
// the SIGKILL + --resume twin-trace bit-identity contract, torn-tail
// salvage, a deterministic mutation fuzz over the trace parser (every
// byte flip must yield a typed error — never a crash, hang, or
// unbounded allocation), fault-churn trace replay, the bounded
// submit-retry counters, and the daemon's exit-code contract
// (0 ok, 2 usage, 3 corrupt trace, 4 resume mismatch).
//
// Binary paths come from the MECSC_SERVE_BIN / MECSC_TRACE_BIN compile
// definitions.
#include <gtest/gtest.h>

#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include "common/error.h"
#include "serve/checkpoint.h"
#include "serve/replay.h"
#include "serve/service.h"
#include "serve/trace_io.h"

namespace {

using mecsc::serve::Checkpoint;
using mecsc::serve::inspect_trace;
using mecsc::serve::kSlotFlagFaults;
using mecsc::serve::read_checkpoint;
using mecsc::serve::ReplayOptions;
using mecsc::serve::ReplayResult;
using mecsc::serve::replay_trace;
using mecsc::serve::ServeOptions;
using mecsc::serve::SlotService;
using mecsc::serve::SlotTraceRecord;
using mecsc::serve::TraceConfig;
using mecsc::serve::TraceInspection;
using mecsc::serve::TraceReader;
using mecsc::serve::trace_well_formed;
using mecsc::serve::write_checkpoint;

std::string daemon_bin() { return MECSC_SERVE_BIN; }
std::string trace_bin() { return MECSC_TRACE_BIN; }

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "mecsc_crash_" + name;
}

int run_command(const std::string& command) {
  const int status = std::system(command.c_str());
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

std::vector<SlotTraceRecord> read_records(const std::string& path,
                                          bool* sealed = nullptr) {
  TraceReader reader(path);
  std::vector<SlotTraceRecord> records;
  SlotTraceRecord rec;
  while (reader.next(rec)) records.push_back(rec);
  if (sealed != nullptr) *sealed = reader.saw_footer();
  return records;
}

/// Twin-trace equality: every recorded field except decide_ms, which is
/// wall-clock timing and legitimately differs between the two runs.
void expect_same_records_modulo_timing(const std::string& path_a,
                                       const std::string& path_b) {
  bool sealed_a = false;
  bool sealed_b = false;
  const std::vector<SlotTraceRecord> a = read_records(path_a, &sealed_a);
  const std::vector<SlotTraceRecord> b = read_records(path_b, &sealed_b);
  EXPECT_TRUE(sealed_a);
  EXPECT_TRUE(sealed_b);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t t = 0; t < a.size(); ++t) {
    SCOPED_TRACE("slot " + std::to_string(t));
    EXPECT_EQ(a[t].slot, b[t].slot);
    EXPECT_EQ(a[t].demands, b[t].demands);
    EXPECT_EQ(a[t].unit_delays, b[t].unit_delays);
    EXPECT_EQ(a[t].station_of_request, b[t].station_of_request);
    EXPECT_EQ(a[t].cached_bits, b[t].cached_bits);
    EXPECT_EQ(a[t].ingested, b[t].ingested);
    EXPECT_EQ(a[t].shed, b[t].shed);
    EXPECT_EQ(a[t].shed_penalty_ms, b[t].shed_penalty_ms);
    EXPECT_EQ(a[t].avg_delay_ms, b[t].avg_delay_ms);
    EXPECT_EQ(a[t].flags, b[t].flags);
    EXPECT_EQ(a[t].station_up, b[t].station_up);
    EXPECT_EQ(a[t].feedback_lost, b[t].feedback_lost);
    EXPECT_EQ(a[t].effective_capacity_mhz, b[t].effective_capacity_mhz);
    EXPECT_EQ(a[t].outage_penalty_factor, b[t].outage_penalty_factor);
    EXPECT_EQ(a[t].fault_shed_requests, b[t].fault_shed_requests);
    EXPECT_EQ(a[t].fault_shed_penalty_ms, b[t].fault_shed_penalty_ms);
  }
}

TEST(Checkpoint, RoundtripsEveryField) {
  const std::string path = temp_path("roundtrip.ckpt");
  Checkpoint ckpt;
  ckpt.config.seed = 42;
  ckpt.config.num_stations = 7;
  ckpt.config.num_requests = 19;
  ckpt.config.faults = 1;
  ckpt.config.solver = 3;  // lagrangian (format v3 recipe field)
  ckpt.slot = 14;
  ckpt.trace_records = 15;
  ckpt.trace_offset = 12345;
  ckpt.ingested = 900;
  ckpt.shed = 3;
  ckpt.ingest_retries = 11;
  ckpt.ingest_gave_up = 2;
  ckpt.algo.bandit_theta = {0.5, 1.25, -3.0};
  ckpt.algo.bandit_plays = {4, 0, 9};
  ckpt.algo.bandit_total_plays = 13;
  ckpt.algo.rng_stream = "1234 5678 42";
  ckpt.algo.lag_warm.lambda = {0.0, 0.125, 9.5};  // format v2 dual state
  ckpt.algo.lag_warm.step_scale = 0.75;
  ckpt.engine.has_decision = true;
  ckpt.engine.decision.station_of_request = {0, 2, 1};
  ckpt.engine.decision.cached = {{true, false}, {false, true}};
  ckpt.engine.prev_cached = {{false, true}, {true, true}};

  write_checkpoint(path, ckpt);
  const Checkpoint back = read_checkpoint(path);
  EXPECT_TRUE(mecsc::serve::same_trace_config(ckpt.config, back.config));
  EXPECT_EQ(back.slot, 14u);
  EXPECT_EQ(back.trace_records, 15u);
  EXPECT_EQ(back.trace_offset, 12345u);
  EXPECT_EQ(back.ingested, 900u);
  EXPECT_EQ(back.shed, 3u);
  EXPECT_EQ(back.ingest_retries, 11u);
  EXPECT_EQ(back.ingest_gave_up, 2u);
  EXPECT_EQ(back.algo.bandit_theta, ckpt.algo.bandit_theta);
  EXPECT_EQ(back.algo.bandit_plays, ckpt.algo.bandit_plays);
  EXPECT_EQ(back.algo.bandit_total_plays, 13u);
  EXPECT_EQ(back.algo.rng_stream, "1234 5678 42");
  EXPECT_EQ(back.config.solver, 3);
  EXPECT_EQ(back.algo.lag_warm.lambda, ckpt.algo.lag_warm.lambda);
  EXPECT_EQ(back.algo.lag_warm.step_scale, ckpt.algo.lag_warm.step_scale);
  EXPECT_TRUE(back.engine.has_decision);
  EXPECT_EQ(back.engine.decision.station_of_request,
            ckpt.engine.decision.station_of_request);
  EXPECT_EQ(back.engine.decision.cached, ckpt.engine.decision.cached);
  EXPECT_EQ(back.engine.prev_cached, ckpt.engine.prev_cached);
  std::remove(path.c_str());
}

TEST(Checkpoint, EveryByteFlipIsATypedError) {
  const std::string path = temp_path("fuzz.ckpt");
  const std::string mutant = temp_path("fuzz_mutant.ckpt");
  Checkpoint ckpt;
  ckpt.slot = 3;
  ckpt.algo.bandit_theta = {1.0, 2.0};
  ckpt.algo.bandit_plays = {1, 2};
  ckpt.algo.rng_stream = "99 100";
  ckpt.engine.has_decision = true;
  ckpt.engine.decision.station_of_request = {1};
  ckpt.engine.decision.cached = {{true}};
  write_checkpoint(path, ckpt);

  const std::string bytes = read_file(path);
  ASSERT_FALSE(bytes.empty());
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    std::string corrupted = bytes;
    corrupted[i] = static_cast<char>(corrupted[i] ^ 0xFF);
    write_file(mutant, corrupted);
    // Checksummed end to end: any flip must surface as the typed error,
    // never as a crash, UB, or a silently-wrong checkpoint.
    EXPECT_THROW(read_checkpoint(mutant), mecsc::common::InvalidArgument)
        << "byte " << i;
  }
  // Truncations too (including an empty file).
  for (std::size_t keep = 0; keep < bytes.size(); keep += 7) {
    write_file(mutant, bytes.substr(0, keep));
    EXPECT_THROW(read_checkpoint(mutant), mecsc::common::InvalidArgument)
        << "truncated to " << keep;
  }
  std::remove(path.c_str());
  std::remove(mutant.c_str());
}

// The tentpole acceptance test: SIGKILL the daemon mid-run, --resume,
// and the completed trace must carry the exact decisions, snapshots,
// and objectives of a twin run that was never killed.
TEST(CrashResume, SigkillThenResumeMatchesUninterruptedTwin) {
  const std::string trace_a = temp_path("twin_a.trace");
  const std::string trace_b = temp_path("twin_b.trace");
  const std::string args =
      " --stations 18 --requests 50 --services 5 --slots 24 --seed 11"
      " --paced --checkpoint-every 5";

  // Twin A: uninterrupted reference run.
  ASSERT_EQ(run_command(daemon_bin() + args + " --trace-out " + trace_a +
                        " 2>/dev/null"),
            0);

  // Twin B: slowed paced slots so the SIGKILL lands mid-run, after at
  // least one checkpoint (polled below) but far from the end.
  const pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    execl(daemon_bin().c_str(), "mecsc_serve", "--stations", "18",
          "--requests", "50", "--services", "5", "--slots", "24", "--seed",
          "11", "--paced", "--paced-min-ms", "50", "--checkpoint-every", "5",
          "--trace-out", trace_b.c_str(), (char*)nullptr);
    _exit(127);
  }
  const std::string ckpt_b = trace_b + ".ckpt";
  for (int i = 0; i < 2000; ++i) {
    std::ifstream probe(ckpt_b, std::ios::binary);
    if (probe.good()) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(120));
  ASSERT_EQ(kill(pid, SIGKILL), 0);
  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status));  // the kill landed mid-run

  // The torn trace is not sealed, but its checksum-valid prefix holds.
  EXPECT_FALSE(trace_well_formed(trace_b));

  // Resume: restore the checkpoint, truncate the torn tail, finish.
  ASSERT_EQ(run_command(daemon_bin() + args + " --trace-out " + trace_b +
                        " --resume 2>/dev/null"),
            0);

  // Both traces replay bit-for-bit, and agree on every recorded field
  // except the wall-clock decide timing.
  EXPECT_EQ(run_command(daemon_bin() + " --verify " + trace_a + " 2>/dev/null"),
            0);
  EXPECT_EQ(run_command(daemon_bin() + " --verify " + trace_b + " 2>/dev/null"),
            0);
  expect_same_records_modulo_timing(trace_a, trace_b);

  std::remove(trace_a.c_str());
  std::remove(trace_b.c_str());
  std::remove(ckpt_b.c_str());
  std::remove((trace_a + ".ckpt").c_str());
}

// The same twin contract under MECSC_SOLVER=lagrangian: the dual warm
// state (λ, step scale) rides in the checkpoint (format v2), so the
// resumed run's subgradient ascent restarts from the exact prices the
// killed run carried — any drift would surface as a record mismatch.
TEST(CrashResume, SigkillThenResumeBitIdenticalUnderLagrangianTier) {
  setenv("MECSC_SOLVER", "lagrangian", 1);
  const std::string trace_a = temp_path("lag_twin_a.trace");
  const std::string trace_b = temp_path("lag_twin_b.trace");
  const std::string args =
      " --stations 14 --requests 40 --services 4 --slots 20 --seed 17"
      " --paced --checkpoint-every 4";

  ASSERT_EQ(run_command(daemon_bin() + args + " --trace-out " + trace_a +
                        " 2>/dev/null"),
            0);

  const pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Inherits MECSC_SOLVER=lagrangian from the setenv above.
    execl(daemon_bin().c_str(), "mecsc_serve", "--stations", "14",
          "--requests", "40", "--services", "4", "--slots", "20", "--seed",
          "17", "--paced", "--paced-min-ms", "50", "--checkpoint-every", "4",
          "--trace-out", trace_b.c_str(), (char*)nullptr);
    _exit(127);
  }
  const std::string ckpt_b = trace_b + ".ckpt";
  for (int i = 0; i < 2000; ++i) {
    std::ifstream probe(ckpt_b, std::ios::binary);
    if (probe.good()) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(120));
  ASSERT_EQ(kill(pid, SIGKILL), 0);
  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status));

  ASSERT_EQ(run_command(daemon_bin() + args + " --trace-out " + trace_b +
                        " --resume 2>/dev/null"),
            0);

  // Replay pins the recorded tier from the trace recipe (format v3), so
  // --verify exercises the Lagrangian path regardless of the env.
  EXPECT_EQ(run_command(daemon_bin() + " --verify " + trace_a + " 2>/dev/null"),
            0);
  EXPECT_EQ(run_command(daemon_bin() + " --verify " + trace_b + " 2>/dev/null"),
            0);
  expect_same_records_modulo_timing(trace_a, trace_b);

  unsetenv("MECSC_SOLVER");
  std::remove(trace_a.c_str());
  std::remove(trace_b.c_str());
  std::remove(ckpt_b.c_str());
  std::remove((trace_a + ".ckpt").c_str());
}

TEST(CrashResume, MismatchedRecipeIsExitCode4) {
  const std::string trace = temp_path("mismatch.trace");
  ASSERT_EQ(run_command(daemon_bin() +
                        " --stations 12 --requests 30 --services 3 --slots 8"
                        " --seed 2 --paced --checkpoint-every 4 --trace-out " +
                        trace + " 2>/dev/null"),
            0);
  // Same trace, different scenario recipe: the checkpoint must be
  // rejected with the dedicated exit code, not silently diverge.
  EXPECT_EQ(run_command(daemon_bin() +
                        " --stations 13 --requests 30 --services 3 --slots 8"
                        " --seed 2 --paced --checkpoint-every 4 --resume"
                        " --trace-out " +
                        trace + " 2>/dev/null"),
            4);
  std::remove(trace.c_str());
  std::remove((trace + ".ckpt").c_str());
}

TEST(Salvage, TornTailTruncatesAtLastValidRecord) {
  const std::string trace = temp_path("salvage.trace");
  const std::string torn = temp_path("salvage_torn.trace");
  ASSERT_EQ(run_command(daemon_bin() +
                        " --stations 14 --requests 36 --services 4 --slots 10"
                        " --seed 6 --paced --trace-out " +
                        trace + " 2>/dev/null"),
            0);
  const std::string bytes = read_file(trace);
  ASSERT_GT(bytes.size(), 400u);
  // Cut mid-record: drop the footer and tear the last record's payload.
  write_file(torn, bytes.substr(0, bytes.size() - 400));

  const TraceInspection whole = inspect_trace(trace);
  const TraceInspection insp = inspect_trace(torn);
  EXPECT_TRUE(whole.sealed);
  EXPECT_FALSE(insp.sealed);
  EXPECT_LT(insp.salvage_records, whole.salvage_records);
  EXPECT_GT(insp.salvage_records, 0u);
  EXPECT_FALSE(insp.tail_error.empty());
  EXPECT_LE(insp.salvage_offset, insp.file_bytes);

  // Plain verify refuses the torn trace with the corrupt-trace exit
  // code; salvage mode replays the intact prefix and reports the loss.
  EXPECT_EQ(run_command(daemon_bin() + " --verify " + torn + " 2>/dev/null"),
            3);
  EXPECT_EQ(run_command(daemon_bin() + " --verify " + torn +
                        " --salvage 2>/dev/null"),
            0);
  ReplayOptions salvage;
  salvage.salvage = true;
  const ReplayResult result = replay_trace(torn, salvage);
  EXPECT_TRUE(result.bit_identical);
  EXPECT_TRUE(result.salvaged);
  EXPECT_EQ(result.slots_compared, insp.salvage_records);
  EXPECT_GT(result.lost_bytes, 0u);

  // The inspector mirrors the split: sealed trace exit 0, torn exit 3.
  EXPECT_EQ(run_command(trace_bin() + " " + trace + " >/dev/null 2>&1"), 0);
  EXPECT_EQ(run_command(trace_bin() + " " + torn + " >/dev/null 2>&1"), 3);
  EXPECT_EQ(run_command(trace_bin() + " >/dev/null 2>&1"), 2);

  std::remove(trace.c_str());
  std::remove(torn.c_str());
}

// Deterministic mutation fuzz over the trace parser: flip every byte of
// a sealed trace and require a typed outcome from the inspection paths
// (damage report or common::InvalidArgument), never a crash, hang, or
// unbounded allocation. Runs under the sanitizer CI leg, which is what
// turns "no crash" into "no UB".
TEST(TraceFuzz, EveryByteFlipYieldsTypedErrorNeverUB) {
  const std::string trace = temp_path("fuzz.trace");
  const std::string mutant = temp_path("fuzz_mutant.trace");
  ASSERT_EQ(run_command(daemon_bin() +
                        " --stations 8 --requests 16 --services 3 --slots 3"
                        " --seed 4 --paced --trace-out " +
                        trace + " 2>/dev/null"),
            0);
  const std::string bytes = read_file(trace);
  ASSERT_FALSE(bytes.empty());
  const TraceInspection clean = inspect_trace(trace);
  ASSERT_TRUE(clean.sealed);
  ASSERT_FALSE(clean.records.empty());
  const std::uint64_t records_start = clean.records.front().offset;

  for (std::size_t i = 0; i < bytes.size(); ++i) {
    std::string corrupted = bytes;
    corrupted[i] = static_cast<char>(corrupted[i] ^ 0xFF);
    write_file(mutant, corrupted);
    try {
      const TraceInspection insp = inspect_trace(mutant);
      // Reachable records are bounded by what the file can hold.
      EXPECT_LE(insp.salvage_offset, insp.file_bytes) << "byte " << i;
    } catch (const mecsc::common::InvalidArgument&) {
      // Unreadable header — the typed refusal.
    }
    try {
      std::size_t slots = 0;
      (void)trace_well_formed(mutant, &slots);
    } catch (const mecsc::common::InvalidArgument&) {
    }
    // Replay a strided sample of record-region mutants end to end (a
    // header flip rewrites the recipe, which replay may legitimately
    // follow into building a different-sized scenario — inspection
    // covers those bytes instead).
    if (i >= records_start && i % 97 == 0) {
      try {
        ReplayOptions salvage;
        salvage.salvage = true;
        (void)replay_trace(mutant, salvage);
      } catch (const mecsc::common::InvalidArgument&) {
      }
    }
  }
  std::remove(trace.c_str());
  std::remove(mutant.c_str());
}

// Fault-churn composition: a daemon run under MECSC_FAULTS=churn records
// its realised fault state per slot and the trace replays bit-for-bit
// with no fault plan or environment present.
TEST(FaultChurn, ServeTraceReplaysBitIdentical) {
  const std::string trace = temp_path("churn.trace");
  ASSERT_EQ(run_command("MECSC_FAULTS=churn " + daemon_bin() +
                        " --stations 16 --requests 40 --services 4 --slots 12"
                        " --seed 7 --paced --trace-out " +
                        trace + " 2>/dev/null"),
            0);
  const TraceInspection insp = inspect_trace(trace);
  EXPECT_TRUE(insp.sealed);
  EXPECT_EQ(insp.config.faults, 1u);
  std::size_t fault_slots = 0;
  for (const auto& rec : insp.records) {
    if ((rec.flags & kSlotFlagFaults) != 0) ++fault_slots;
  }
  EXPECT_EQ(fault_slots, insp.records.size());

  // Replay in-process (no MECSC_FAULTS in this test's environment) and
  // through the daemon's --verify.
  const ReplayResult result = replay_trace(trace);
  EXPECT_TRUE(result.bit_identical) << result.detail;
  EXPECT_TRUE(result.sealed);
  EXPECT_EQ(result.slots_compared, 12u);
  EXPECT_EQ(run_command(daemon_bin() + " --verify " + trace + " 2>/dev/null"),
            0);
  std::remove(trace.c_str());
}

// Bounded retry with backoff replaces immediate shedding: with no
// collector draining, a tiny shard queue fills, retries exhaust, and
// the give-up counters account for every event.
TEST(SubmitRetry, BoundedBackoffThenGiveUpIsCounted) {
  ServeOptions options;
  options.num_stations = 6;
  options.num_requests = 24;
  options.num_services = 3;
  options.horizon = 2;
  options.producers = 0;  // external driver: this test is the producer
  options.shards = 1;
  options.queue_capacity = 16;
  options.submit_retries = 3;
  SlotService service(options);

  std::size_t accepted = 0;
  std::size_t shed = 0;
  for (std::uint32_t r = 0; r < 24; ++r) {
    if (service.submit(r, 0, 1.0)) {
      ++accepted;
    } else {
      ++shed;
    }
  }
  EXPECT_EQ(accepted, 16u);
  EXPECT_EQ(shed, 8u);
  EXPECT_EQ(service.ingest_gave_up(), 8u);
  // Every shed event burned the full retry budget.
  EXPECT_GE(service.ingest_retries(), 8u * 3u);

  // The counters flow through to the report.
  service.start();
  service.producer_done(0);
  service.producer_done(1);
  const auto report = service.join();
  EXPECT_EQ(report.ingest_gave_up, 8u);
  EXPECT_GE(report.ingest_retries, 24u);
  EXPECT_EQ(report.shed, 8u);
}

TEST(ExitCodes, UsageAndCorruptTraceContract) {
  EXPECT_EQ(run_command(daemon_bin() + " --bogus-flag 2>/dev/null"), 2);
  // A verify target that is not a trace at all: corrupt-trace code.
  const std::string junk = temp_path("junk.trace");
  write_file(junk, "this is not a trace");
  EXPECT_EQ(run_command(daemon_bin() + " --verify " + junk + " 2>/dev/null"),
            3);
  std::remove(junk.c_str());
  // Checkpointing without a trace is a usage-level refusal (exit 1 from
  // the constructor's typed error).
  EXPECT_EQ(run_command(daemon_bin() +
                        " --paced --slots 2 --checkpoint-every 1 2>/dev/null"),
            1);
}

}  // namespace
