// Tests for the Info-RNN-GAN: construction, loss structure, training
// behaviour on controlled series, and mode-separation across latent codes.
#include <gtest/gtest.h>

#include <cmath>

#include "gan/info_rnn_gan.h"

namespace mecsc::gan {
namespace {

InfoRnnGanConfig tiny_config() {
  InfoRnnGanConfig c;
  c.noise_dim = 4;
  c.num_codes = 2;
  c.hidden = 8;
  c.seq_len = 8;
  c.batch_size = 8;
  return c;
}

TEST(InfoRnnGan, ConstructionAndParameterCounts) {
  InfoRnnGan gan(tiny_config(), 1);
  EXPECT_GT(gan.generator_parameter_count(), 0u);
  EXPECT_GT(gan.discriminator_parameter_count(), 0u);
  // Generator input = noise + codes + 1 teacher value.
  // BiLSTM: 2 directions × ((in+h)·4h + 4h); head: 2h·1 + 1.
  std::size_t in = 4 + 2 + 1;
  std::size_t h = 8;
  std::size_t expected_g =
      2 * ((in + h) * 4 * h + 4 * h) + (2 * h * 1 + 1);
  EXPECT_EQ(gan.generator_parameter_count(), expected_g);
}

TEST(InfoRnnGan, RejectsBadConfig) {
  InfoRnnGanConfig c = tiny_config();
  c.hidden = 0;
  EXPECT_THROW(InfoRnnGan(c, 1), std::exception);
  c = tiny_config();
  c.lambda_info = -1.0;
  EXPECT_THROW(InfoRnnGan(c, 1), std::exception);
}

TEST(InfoRnnGan, TrainStepValidatesWindows) {
  InfoRnnGan gan(tiny_config(), 2);
  std::vector<std::vector<double>> bad{{0.1, 0.2}};  // too short
  EXPECT_THROW(gan.train_step(bad, {0}), std::exception);
  EXPECT_THROW(gan.train_step({}, {}), std::exception);
}

TEST(InfoRnnGan, TrainStepProducesFiniteLosses) {
  InfoRnnGanConfig c = tiny_config();
  InfoRnnGan gan(c, 3);
  std::vector<std::vector<double>> windows;
  std::vector<std::size_t> codes;
  for (std::size_t b = 0; b < c.batch_size; ++b) {
    std::vector<double> w(c.seq_len + 1);
    for (std::size_t t = 0; t <= c.seq_len; ++t) {
      w[t] = 0.5 + 0.3 * std::sin(0.7 * static_cast<double>(t + b));
    }
    windows.push_back(std::move(w));
    codes.push_back(b % 2);
  }
  GanStepStats s = gan.train_step(windows, codes);
  EXPECT_TRUE(std::isfinite(s.d_loss));
  EXPECT_TRUE(std::isfinite(s.g_adv_loss));
  EXPECT_TRUE(std::isfinite(s.info_loss));
  EXPECT_GT(s.d_loss, 0.0);
}

TEST(InfoRnnGan, PredictionsInUnitInterval) {
  InfoRnnGan gan(tiny_config(), 4);
  std::vector<double> history{0.2, 0.4, 0.9, 0.1};
  for (std::size_t code = 0; code < 2; ++code) {
    double p = gan.predict_next(history, code);
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
  EXPECT_THROW(gan.predict_next(history, 99), std::exception);
}

TEST(InfoRnnGan, PredictHandlesShortAndLongHistories) {
  InfoRnnGan gan(tiny_config(), 5);
  EXPECT_NO_THROW(gan.predict_next({}, 0));
  std::vector<double> longh(100, 0.5);
  EXPECT_NO_THROW(gan.predict_next(longh, 1));
}

TEST(InfoRnnGan, LearnsConstantLevelSeries) {
  // Train on a cluster whose demand is constant 0.8; after training the
  // generator's next-step prediction given a 0.8-history should be far
  // from its untrained output and near the level.
  InfoRnnGanConfig c = tiny_config();
  c.num_codes = 1;
  InfoRnnGan gan(c, 6);
  std::vector<double> history(c.seq_len, 0.8);
  std::vector<std::vector<double>> series{std::vector<double>(200, 0.8)};
  gan.train(series, 120);
  double trained = gan.predict_next(history, 0);
  EXPECT_NEAR(trained, 0.8, 0.2);
}

TEST(InfoRnnGan, InfoLossDecreasesWithTraining) {
  // The Q head should learn to recover the latent code from generated
  // sequences: CE starts near log(2) for 2 codes and drops.
  InfoRnnGanConfig c = tiny_config();
  c.lambda_info = 2.0;
  c.lambda_supervised = 0.0;  // isolate the Eq. 26 objective
  InfoRnnGan gan(c, 7);
  // Two clearly different clusters.
  std::vector<std::vector<double>> series{
      std::vector<double>(200, 0.15),
      std::vector<double>(200, 0.85),
  };
  GanStepStats first = gan.train(series, 1);
  GanStepStats last = gan.train(series, 200);
  EXPECT_LT(last.info_loss, first.info_loss);
  EXPECT_LT(last.info_loss, 0.4);  // well below log(2) ≈ 0.693
}

TEST(InfoRnnGan, CodesSeparateGeneratedLevels) {
  // After training on one low and one high cluster, the latent code
  // must steer the generated level (no mode collapse onto one level).
  InfoRnnGanConfig c = tiny_config();
  c.lambda_info = 2.0;
  InfoRnnGan gan(c, 8);
  std::vector<std::vector<double>> series{
      std::vector<double>(200, 0.15),
      std::vector<double>(200, 0.85),
  };
  gan.train(series, 250);
  std::vector<double> low_hist(c.seq_len, 0.15);
  std::vector<double> high_hist(c.seq_len, 0.85);
  double low = gan.predict_next(low_hist, 0);
  double high = gan.predict_next(high_hist, 1);
  EXPECT_LT(low, high);
  EXPECT_GT(high - low, 0.2);
}

TEST(InfoRnnGan, GenerateProducesRequestedLength) {
  InfoRnnGan gan(tiny_config(), 9);
  auto s = gan.generate(0, 12);
  ASSERT_EQ(s.size(), 12u);
  for (double v : s) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
}

TEST(InfoRnnGan, DiscriminatorScoreIsProbability) {
  InfoRnnGan gan(tiny_config(), 10);
  double s = gan.discriminator_score({0.1, 0.5, 0.9});
  EXPECT_GT(s, 0.0);
  EXPECT_LT(s, 1.0);
  EXPECT_THROW(gan.discriminator_score({}), std::exception);
}

TEST(InfoRnnGan, TrainRejectsAllShortSeries) {
  InfoRnnGan gan(tiny_config(), 11);
  std::vector<std::vector<double>> series{{0.1, 0.2, 0.3}};
  EXPECT_THROW(gan.train(series, 5), std::exception);
}

TEST(InfoRnnGan, GruCoreTrainsAndPredicts) {
  InfoRnnGanConfig c = tiny_config();
  c.rnn = nn::RnnKind::kGru;
  InfoRnnGan gan(c, 31);
  std::vector<std::vector<double>> series{std::vector<double>(100, 0.7)};
  gan.train(series, 60);
  std::vector<double> history(c.seq_len, 0.7);
  double pred = gan.predict_next(history, 0);
  EXPECT_NEAR(pred, 0.7, 0.25);
  // GRU core is lighter than the LSTM default.
  InfoRnnGan lstm(tiny_config(), 31);
  EXPECT_LT(gan.generator_parameter_count(), lstm.generator_parameter_count());
}

TEST(InfoRnnGan, GruModelSerializeRoundTrip) {
  InfoRnnGanConfig c = tiny_config();
  c.rnn = nn::RnnKind::kGru;
  InfoRnnGan a(c, 33);
  InfoRnnGan b = InfoRnnGan::deserialize(a.serialize(), 1);
  EXPECT_EQ(b.config().rnn, nn::RnnKind::kGru);
  std::vector<double> history(c.seq_len, 0.5);
  EXPECT_DOUBLE_EQ(a.predict_next(history, 0), b.predict_next(history, 0));
}

TEST(InfoRnnGan, SerializeRoundTripPreservesPredictions) {
  InfoRnnGanConfig c = tiny_config();
  InfoRnnGan a(c, 77);
  std::vector<std::vector<double>> series{std::vector<double>(100, 0.4)};
  a.train(series, 20);
  std::string blob = a.serialize();
  InfoRnnGan b = InfoRnnGan::deserialize(blob, 123);
  std::vector<double> history(c.seq_len, 0.4);
  // Zero-noise inference is a pure function of the weights.
  EXPECT_DOUBLE_EQ(a.predict_next(history, 0), b.predict_next(history, 0));
  EXPECT_EQ(b.config().hidden, c.hidden);
  EXPECT_EQ(b.config().seq_len, c.seq_len);
}

TEST(InfoRnnGan, DeserializeRejectsGarbage) {
  EXPECT_THROW(InfoRnnGan::deserialize("not a model", 1), std::exception);
  // Truncated blob: header + config but no weights.
  InfoRnnGan a(tiny_config(), 1);
  std::string blob = a.serialize();
  EXPECT_THROW(InfoRnnGan::deserialize(blob.substr(0, 60), 1), std::exception);
}

TEST(InfoRnnGan, DeserializedModelCanKeepTraining) {
  InfoRnnGanConfig c = tiny_config();
  InfoRnnGan a(c, 5);
  std::vector<std::vector<double>> series{std::vector<double>(100, 0.6)};
  a.train(series, 10);
  InfoRnnGan b = InfoRnnGan::deserialize(a.serialize(), 9);
  GanStepStats s = b.train(series, 5);
  EXPECT_TRUE(std::isfinite(s.d_loss));
}

TEST(InfoRnnGan, DeterministicGivenSeed) {
  InfoRnnGanConfig c = tiny_config();
  std::vector<std::vector<double>> series{std::vector<double>(100, 0.5)};
  InfoRnnGan a(c, 42);
  InfoRnnGan b(c, 42);
  GanStepStats sa = a.train(series, 10);
  GanStepStats sb = b.train(series, 10);
  EXPECT_DOUBLE_EQ(sa.d_loss, sb.d_loss);
  EXPECT_DOUBLE_EQ(sa.g_adv_loss, sb.g_adv_loss);
  std::vector<double> h(c.seq_len, 0.5);
  // Prediction consumes RNG (noise); same call order → same value.
  EXPECT_DOUBLE_EQ(a.predict_next(h, 0), b.predict_next(h, 0));
}

}  // namespace
}  // namespace mecsc::gan
