// Tier-equivalence tests of the per-slot LP solver tiers (DESIGN.md
// §16): MECSC_SOLVER / MECSC_LAG_* resolution, the Lagrangian
// decomposition's objective agreement with the flow and exact-simplex
// tiers on fig3/fig6-shaped instances, warm-state validation on both
// scalable solvers, OL_GD's tier dispatch (explicit > env, kAuto by
// column count, the gap-miss fallback chain), survival under fault
// churn on every tier, and the bitwise checkpoint round-trip of the
// Lagrangian dual state (serve checkpoint format v2).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <memory>
#include <vector>

#include "algorithms/ol_gd.h"
#include "common/rng.h"
#include "core/aggregation.h"
#include "core/fractional_solver.h"
#include "core/lagrangian_solver.h"
#include "core/lp_formulation.h"
#include "core/problem.h"
#include "core/solver_tier.h"
#include "fault/fault_plan.h"
#include "lp/simplex.h"
#include "net/generators.h"
#include "serve/checkpoint.h"
#include "sim/scenario.h"
#include "sim/simulator.h"
#include "workload/trace.h"

namespace mecsc::core {
namespace {

// ---------------------------------------------------------------------
// Tier resolution.
// ---------------------------------------------------------------------

TEST(SolverTierResolution, ExplicitSettingsWinOverEnvironment) {
  setenv("MECSC_SOLVER", "lagrangian", 1);
  EXPECT_EQ(resolve_solver_tier(SolverTier::kFlow), SolverTier::kFlow);
  EXPECT_EQ(resolve_solver_tier(SolverTier::kSimplex), SolverTier::kSimplex);
  EXPECT_EQ(resolve_solver_tier(SolverTier::kLagrangian),
            SolverTier::kLagrangian);
  EXPECT_EQ(resolve_solver_tier(SolverTier::kAuto), SolverTier::kAuto);
  unsetenv("MECSC_SOLVER");
}

TEST(SolverTierResolution, EnvParsesAllValuesAndDefaultsFlow) {
  unsetenv("MECSC_SOLVER");
  EXPECT_EQ(resolve_solver_tier(SolverTier::kEnv), SolverTier::kFlow);
  setenv("MECSC_SOLVER", "flow", 1);
  EXPECT_EQ(resolve_solver_tier(SolverTier::kEnv), SolverTier::kFlow);
  setenv("MECSC_SOLVER", "simplex", 1);
  EXPECT_EQ(resolve_solver_tier(SolverTier::kEnv), SolverTier::kSimplex);
  setenv("MECSC_SOLVER", "lagrangian", 1);
  EXPECT_EQ(resolve_solver_tier(SolverTier::kEnv), SolverTier::kLagrangian);
  setenv("MECSC_SOLVER", "auto", 1);
  EXPECT_EQ(resolve_solver_tier(SolverTier::kEnv), SolverTier::kAuto);
  setenv("MECSC_SOLVER", "bogus", 1);
  EXPECT_EQ(resolve_solver_tier(SolverTier::kEnv), SolverTier::kFlow);
  unsetenv("MECSC_SOLVER");
}

TEST(SolverTierResolution, NamesAreStable) {
  EXPECT_STREQ(solver_tier_name(SolverTier::kFlow), "flow");
  EXPECT_STREQ(solver_tier_name(SolverTier::kSimplex), "simplex");
  EXPECT_STREQ(solver_tier_name(SolverTier::kLagrangian), "lagrangian");
  EXPECT_STREQ(solver_tier_name(SolverTier::kAuto), "auto");
}

TEST(SolverTierResolution, LagrangianKnobsComeFromEnvironment) {
  setenv("MECSC_LAG_ITERS", "77", 1);
  setenv("MECSC_LAG_GAP", "0.05", 1);
  LagrangianOptions o = lagrangian_options_from_env();
  EXPECT_EQ(o.max_iterations, 77u);
  EXPECT_DOUBLE_EQ(o.target_gap, 0.05);
  // Degenerate values keep a usable solver: 0 iterations clamps to 1, a
  // non-positive gap keeps the default, unparsable text keeps defaults.
  setenv("MECSC_LAG_ITERS", "0", 1);
  setenv("MECSC_LAG_GAP", "-1", 1);
  o = lagrangian_options_from_env();
  EXPECT_EQ(o.max_iterations, 1u);
  EXPECT_DOUBLE_EQ(o.target_gap, LagrangianOptions{}.target_gap);
  unsetenv("MECSC_LAG_ITERS");
  unsetenv("MECSC_LAG_GAP");
  o = lagrangian_options_from_env();
  EXPECT_EQ(o.max_iterations, LagrangianOptions{}.max_iterations);
  EXPECT_DOUBLE_EQ(o.target_gap, LagrangianOptions{}.target_gap);
}

// ---------------------------------------------------------------------
// Direct solver equivalence on small instances.
// ---------------------------------------------------------------------

struct Instance {
  std::unique_ptr<net::Topology> topo;
  workload::Workload workload;
  std::unique_ptr<CachingProblem> problem;
  std::vector<double> demands;
  std::vector<double> theta;
};

Instance make_instance(std::uint64_t seed, std::size_t stations,
                       std::size_t requests, std::size_t services = 4) {
  Instance inst;
  common::Rng rng(seed);
  net::GtItmParams gp;
  gp.num_stations = stations;
  inst.topo = std::make_unique<net::Topology>(net::generate_gtitm_like(gp, rng));
  workload::WorkloadParams wp;
  wp.num_requests = requests;
  wp.num_services = services;
  inst.workload = workload::make_workload(*inst.topo, wp, rng, false);
  ProblemOptions opts;
  inst.problem = std::make_unique<CachingProblem>(
      inst.topo.get(), inst.workload.services, inst.workload.requests, opts, rng);
  for (const auto& r : inst.workload.requests) inst.demands.push_back(r.basic_demand);
  // Scale demands to half the network capacity so every tier's solve is
  // comfortably feasible (same derating as tests/test_aggregation.cpp).
  double total_demand_mhz = 0.0, total_cap_mhz = 0.0;
  for (double d : inst.demands) total_demand_mhz += inst.problem->resource_demand_mhz(d);
  for (std::size_t i = 0; i < stations; ++i) {
    total_cap_mhz += inst.problem->station_capacity_mhz(i);
    inst.theta.push_back(inst.topo->station(i).mean_unit_delay_ms);
  }
  if (total_demand_mhz > 0.5 * total_cap_mhz) {
    const double scale = 0.5 * total_cap_mhz / total_demand_mhz;
    for (double& d : inst.demands) d *= scale;
  }
  return inst;
}

/// All three tiers solve the same relaxation with the same cost model
/// and score with the true Eq. 3 objective, so their objectives must sit
/// within (duality gap + tiny-instance amortization error) of each
/// other. The 1% at-scale agreement is gated by bench_scale; these
/// deliberately tiny instances get the same slack test_core grants the
/// flow-vs-simplex pair.
class TierEquivalenceTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TierEquivalenceTest, ObjectivesAgreeAcrossTiers) {
  Instance inst = make_instance(GetParam(), 8, 60, 3);
  FractionalSolver flow(*inst.problem);
  const FractionalSolution f = flow.solve(inst.demands, inst.theta);
  LpFormulation lp(*inst.problem, inst.demands, inst.theta);
  const FractionalSolution exact = lp.solve(lp::SimplexSolver());

  LagrangianOptions lo;
  lo.max_iterations = 600;
  lo.target_gap = 0.02;
  LagrangianSolver lag(*inst.problem, lo);
  const LagrangianOutcome out = lag.solve(inst.demands, inst.theta);
  ASSERT_TRUE(out.converged);
  EXPECT_LE(out.gap, lo.target_gap);
  EXPECT_GE(out.iterations, 1u);

  // The repaired primal is a feasible fractional assignment: every
  // request row sums to one and no station exceeds capacity.
  const std::size_t ns = inst.problem->num_stations();
  std::vector<double> load(ns, 0.0);
  for (std::size_t l = 0; l < inst.demands.size(); ++l) {
    double sum = 0.0;
    for (std::size_t i = 0; i < ns; ++i) {
      EXPECT_GE(out.solution.x[l][i], -1e-9);
      sum += out.solution.x[l][i];
      load[i] += out.solution.x[l][i] * inst.problem->resource_demand_mhz(inst.demands[l]);
    }
    EXPECT_NEAR(sum, 1.0, 1e-6) << "request " << l;
  }
  for (std::size_t i = 0; i < ns; ++i) {
    EXPECT_LE(load[i], inst.problem->station_capacity_mhz(i) * (1.0 + 1e-6));
  }

  // Three-way objective agreement (relative to the flow anchor).
  EXPECT_LE(std::abs(out.solution.objective - f.objective),
            0.15 * f.objective + 1e-6);
  EXPECT_LE(std::abs(exact.objective - f.objective),
            0.25 * f.objective + 1e-6);
  // And the dual bound really is a lower bound on the feasible primals.
  EXPECT_LE(out.dual_bound,
            out.solution.objective * static_cast<double>(inst.demands.size()) *
                    (1.0 + 1e-6) +
                1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TierEquivalenceTest,
                         ::testing::Values(101u, 202u, 303u));

TEST(LagrangianSolverTest, ClassSolveMatchesRequestSolveObjective) {
  Instance inst = make_instance(404, 10, 80, 3);
  DemandClassing classing;
  classing.build(*inst.problem, inst.demands, AggregationOptions{});
  ASSERT_LT(classing.num_classes(), 80u);
  LagrangianOptions lo;
  lo.max_iterations = 600;
  // Looser than the library default: this seed's primal-repair error
  // floor sits near 2.5%, and what this test pins is the class-vs-
  // request agreement, not the achievable gap.
  lo.target_gap = 0.05;
  LagrangianSolver lag(*inst.problem, lo);
  const LagrangianOutcome per_req = lag.solve(inst.demands, inst.theta);
  LagrangianSolver lag2(*inst.problem, lo);
  const LagrangianOutcome per_cls = lag2.solve_classes(classing, inst.theta);
  ASSERT_TRUE(per_req.converged);
  ASSERT_TRUE(per_cls.converged);
  ASSERT_EQ(per_cls.solution.x.size(), classing.num_classes());
  // Within-class demand heterogeneity is the only modelling difference.
  EXPECT_NEAR(per_cls.solution.objective, per_req.solution.objective,
              0.15 * per_req.solution.objective + 1e-6);
}

TEST(LagrangianSolverTest, CapacityShortBailsOutNonConverged) {
  Instance inst = make_instance(9, 6, 20, 2);
  std::vector<double> huge(inst.demands.size(), 1e9);
  LagrangianSolver lag(*inst.problem);
  const LagrangianOutcome out = lag.solve(huge, inst.theta);
  // The dual of an infeasible instance is unbounded; the solver must
  // hand the slot to the flow tier's degraded path instead of burning
  // its iteration cap.
  EXPECT_FALSE(out.converged);
  EXPECT_EQ(out.iterations, 0u);
}

TEST(LagrangianSolverTest, WarmStartConvergesNoSlowerThanCold) {
  Instance inst = make_instance(55, 10, 80, 3);
  LagrangianOptions lo;
  lo.max_iterations = 600;
  lo.target_gap = 0.02;
  LagrangianSolver lag(*inst.problem, lo);
  const LagrangianOutcome cold = lag.solve(inst.demands, inst.theta);
  ASSERT_TRUE(cold.converged);
  // Same instance again with yesterday's duals: the gap closes at least
  // as fast (this is the whole point of checkpointing λ).
  const LagrangianOutcome warm = lag.solve(inst.demands, inst.theta);
  ASSERT_TRUE(warm.converged);
  EXPECT_LE(warm.iterations, cold.iterations);
}

// ---------------------------------------------------------------------
// Warm-state validation (both scalable solvers).
// ---------------------------------------------------------------------

TEST(LagrangianWarmStateTest, RoundTripsAndRejectsBadSnapshots) {
  Instance inst = make_instance(66, 6, 24, 2);
  LagrangianSolver lag(*inst.problem);
  (void)lag.solve(inst.demands, inst.theta);
  const LagrangianWarmState good = lag.export_warm_state();
  ASSERT_EQ(good.lambda.size(), 6u);

  LagrangianSolver other(*inst.problem);
  other.import_warm_state(good);
  const LagrangianWarmState back = other.export_warm_state();
  ASSERT_EQ(back.lambda.size(), good.lambda.size());
  EXPECT_EQ(0, std::memcmp(back.lambda.data(), good.lambda.data(),
                           good.lambda.size() * sizeof(double)));
  EXPECT_EQ(back.step_scale, good.step_scale);

  // Wrong station dimension (stale checkpoint after a topology change):
  // rejected as a whole, cold start.
  LagrangianWarmState bad;
  bad.lambda = {0.0, 1.0, 2.0};
  other.import_warm_state(bad);
  EXPECT_TRUE(other.export_warm_state().lambda.empty());
  EXPECT_DOUBLE_EQ(other.export_warm_state().step_scale, 1.0);

  // Negative or non-finite prices: rejected.
  bad.lambda.assign(6, 0.5);
  bad.lambda[2] = -1.0;
  other.import_warm_state(bad);
  EXPECT_TRUE(other.export_warm_state().lambda.empty());
  bad.lambda.assign(6, 0.5);
  bad.lambda[3] = std::numeric_limits<double>::quiet_NaN();
  other.import_warm_state(bad);
  EXPECT_TRUE(other.export_warm_state().lambda.empty());

  // An empty λ is a valid cold start (a v2 checkpoint written by a
  // flow-tier run), not a rejection; step_scale clamps into its bounds.
  LagrangianWarmState cold;
  cold.step_scale = 100.0;
  other.import_warm_state(cold);
  EXPECT_TRUE(other.export_warm_state().lambda.empty());
  EXPECT_DOUBLE_EQ(other.export_warm_state().step_scale, 2.0);
}

TEST(FractionalWarmStateTest, RejectsWrongStationDimension) {
  Instance inst = make_instance(77, 6, 24, 2);
  FractionalSolver solver(*inst.problem);
  (void)solver.solve(inst.demands, inst.theta);
  const FractionalWarmState good = solver.export_warm_state();
  ASSERT_EQ(good.station_price.size(), 6u);

  // Price vector from another station universe: rejected as a whole.
  FractionalWarmState bad = good;
  bad.station_price.resize(4);
  solver.import_warm_state(bad);
  EXPECT_TRUE(solver.export_warm_state().station_price.empty());
  EXPECT_TRUE(solver.export_warm_state().warm_arcs.empty());

  // An arc naming a station id past the universe would index out of
  // bounds: rejected too.
  FractionalWarmState bad_arcs = good;
  bad_arcs.warm_arcs.push_back({6u});
  solver.import_warm_state(bad_arcs);
  EXPECT_TRUE(solver.export_warm_state().station_price.empty());

  // The valid snapshot round-trips intact, and the solver still solves.
  solver.import_warm_state(good);
  EXPECT_EQ(solver.export_warm_state().station_price, good.station_price);
  EXPECT_EQ(solver.export_warm_state().warm_arcs, good.warm_arcs);
  const FractionalSolution sol = solver.solve(inst.demands, inst.theta);
  EXPECT_TRUE(std::isfinite(sol.objective));
}

}  // namespace
}  // namespace mecsc::core

// ---------------------------------------------------------------------
// End-to-end OL_GD tier dispatch and churn survival.
// ---------------------------------------------------------------------

namespace mecsc {
namespace {

sim::ScenarioParams tier_params(std::uint64_t seed, bool bursty = false) {
  sim::ScenarioParams p;
  p.num_stations = 15;
  p.horizon = 12;
  p.workload.num_requests = 40;
  p.workload.num_services = 4;
  p.history_horizon = 30;
  p.bursty = bursty;
  p.seed = seed;
  return p;
}

/// Runs OL_GD under an explicit tier and hands back the algorithm for
/// post-run inspection (last tier, fallback depth).
sim::RunResult run_tier(sim::Scenario& s, core::SolverTier tier,
                        algorithms::OlOptions opt = {},
                        algorithms::OnlineCachingAlgorithm** out_algo = nullptr,
                        std::unique_ptr<algorithms::CachingAlgorithm>* keep = nullptr) {
  opt.theta_prior = s.theta_prior();
  opt.solver = tier;
  auto algo = algorithms::make_ol_gd(s.problem(), s.demands(), opt,
                                     s.algorithm_seed(0));
  sim::RunResult r = s.simulator().run(*algo);
  if (out_algo != nullptr) {
    *out_algo = dynamic_cast<algorithms::OnlineCachingAlgorithm*>(algo.get());
  }
  if (keep != nullptr) *keep = std::move(algo);
  return r;
}

/// Fig. 3-shaped (constant given demands) and Fig. 6-shaped (bursty)
/// scenarios: the three tiers run the same bandit/rounding machinery on
/// fractional solutions of the same relaxation, so realised mean delays
/// stay in one ballpark.
TEST(OlGdSolverTiers, TiersAgreeOnFig3AndFig6ShapedRuns) {
  for (const bool bursty : {false, true}) {
    SCOPED_TRACE(bursty ? "fig6-shaped (bursty)" : "fig3-shaped (constant)");
    sim::Scenario s(tier_params(bursty ? 91 : 90, bursty));
    algorithms::OnlineCachingAlgorithm* algo = nullptr;
    std::unique_ptr<algorithms::CachingAlgorithm> keep;
    const sim::RunResult flow = run_tier(s, core::SolverTier::kFlow, {}, &algo, &keep);
    ASSERT_NE(algo, nullptr);
    EXPECT_EQ(algo->last_solver_tier(), core::SolverTier::kFlow);
    const sim::RunResult lag =
        run_tier(s, core::SolverTier::kLagrangian, {}, &algo, &keep);
    EXPECT_EQ(algo->last_solver_tier(), core::SolverTier::kLagrangian);
    const sim::RunResult simplex =
        run_tier(s, core::SolverTier::kSimplex, {}, &algo, &keep);
    EXPECT_EQ(algo->last_solver_tier(), core::SolverTier::kSimplex);
    for (const auto& rec : lag.slots) EXPECT_TRUE(std::isfinite(rec.avg_delay_ms));
    EXPECT_NEAR(lag.mean_delay_ms(), flow.mean_delay_ms(),
                0.15 * flow.mean_delay_ms());
    EXPECT_NEAR(simplex.mean_delay_ms(), flow.mean_delay_ms(),
                0.15 * flow.mean_delay_ms());
  }
}

TEST(OlGdSolverTiers, AutoTierPicksByColumnCount) {
  sim::Scenario s(tier_params(92));
  algorithms::OnlineCachingAlgorithm* algo = nullptr;
  std::unique_ptr<algorithms::CachingAlgorithm> keep;
  algorithms::OlOptions opt;
  opt.lagrangian.auto_threshold = 1;  // 40 request columns >= 1
  (void)run_tier(s, core::SolverTier::kAuto, opt, &algo, &keep);
  ASSERT_NE(algo, nullptr);
  EXPECT_EQ(algo->last_solver_tier(), core::SolverTier::kLagrangian);

  opt.lagrangian.auto_threshold = 1000;  // 40 < 1000: flow stays
  (void)run_tier(s, core::SolverTier::kAuto, opt, &algo, &keep);
  EXPECT_EQ(algo->last_solver_tier(), core::SolverTier::kFlow);
}

TEST(OlGdSolverTiers, ExplicitTierAndLegacyFlagWinOverEnvironment) {
  setenv("MECSC_SOLVER", "lagrangian", 1);
  sim::Scenario s(tier_params(93));
  algorithms::OnlineCachingAlgorithm* algo = nullptr;
  std::unique_ptr<algorithms::CachingAlgorithm> keep;
  // Explicit code-level tier beats the environment.
  (void)run_tier(s, core::SolverTier::kFlow, {}, &algo, &keep);
  ASSERT_NE(algo, nullptr);
  EXPECT_EQ(algo->last_solver_tier(), core::SolverTier::kFlow);
  // kEnv defers to MECSC_SOLVER.
  (void)run_tier(s, core::SolverTier::kEnv, {}, &algo, &keep);
  EXPECT_EQ(algo->last_solver_tier(), core::SolverTier::kLagrangian);
  // use_exact_lp is the legacy spelling of kSimplex and wins over both.
  algorithms::OlOptions opt;
  opt.use_exact_lp = true;
  (void)run_tier(s, core::SolverTier::kEnv, opt, &algo, &keep);
  EXPECT_EQ(algo->last_solver_tier(), core::SolverTier::kSimplex);
  unsetenv("MECSC_SOLVER");
}

TEST(OlGdSolverTiers, GapMissFallsBackToFlowPath) {
  sim::Scenario s(tier_params(94));
  algorithms::OnlineCachingAlgorithm* algo = nullptr;
  std::unique_ptr<algorithms::CachingAlgorithm> keep;
  algorithms::OlOptions opt;
  // An unreachable gap under a one-iteration cap: every slot's
  // Lagrangian solve misses and the decision comes from the exact flow
  // path at fallback depth >= 1.
  opt.lagrangian.max_iterations = 1;
  opt.lagrangian.target_gap = 1e-12;
  const sim::RunResult r =
      run_tier(s, core::SolverTier::kLagrangian, opt, &algo, &keep);
  ASSERT_NE(algo, nullptr);
  EXPECT_EQ(algo->last_solver_tier(), core::SolverTier::kLagrangian);
  EXPECT_GE(algo->last_fallback_depth(), 1);
  ASSERT_EQ(r.slots.size(), 12u);
  for (const auto& rec : r.slots) EXPECT_TRUE(std::isfinite(rec.avg_delay_ms));
}

TEST(OlGdSolverTiers, EveryTierSurvivesFaultChurn) {
  for (const core::SolverTier tier :
       {core::SolverTier::kFlow, core::SolverTier::kSimplex,
        core::SolverTier::kLagrangian}) {
    SCOPED_TRACE(core::solver_tier_name(tier));
    sim::ScenarioParams p = tier_params(95);
    p.horizon = 40;
    p.fault.mode = fault::FaultMode::kChurn;
    p.fault.macro = {40.0, 3.0};
    p.fault.micro = {20.0, 4.0};
    p.fault.femto = {10.0, 5.0};
    sim::Scenario s(p);
    ASSERT_NE(s.fault_injector(), nullptr);
    EXPECT_GT(s.fault_injector()->plan().total_outage_slots(), 0u);
    const sim::RunResult r = run_tier(s, tier);
    ASSERT_EQ(r.slots.size(), 40u);
    for (const auto& rec : r.slots) EXPECT_TRUE(std::isfinite(rec.avg_delay_ms));
    // Effective capacities restored after the run.
    for (std::size_t i = 0; i < s.problem().num_stations(); ++i) {
      EXPECT_DOUBLE_EQ(s.problem().station_capacity_mhz(i),
                       s.topology().station(i).capacity_mhz);
    }
  }
}

TEST(OlGdSolverTiers, StateExportCarriesLagrangianDuals) {
  sim::Scenario s(tier_params(96));
  algorithms::OnlineCachingAlgorithm* algo = nullptr;
  std::unique_ptr<algorithms::CachingAlgorithm> keep;
  (void)run_tier(s, core::SolverTier::kLagrangian, {}, &algo, &keep);
  ASSERT_NE(algo, nullptr);
  const algorithms::OlGdState state = algo->export_state();
  ASSERT_EQ(state.lag_warm.lambda.size(), s.problem().num_stations());
  for (double l : state.lag_warm.lambda) {
    EXPECT_TRUE(std::isfinite(l));
    EXPECT_GE(l, 0.0);
  }
  // Importing into a twin restores the duals bitwise.
  algorithms::OlOptions opt;
  opt.theta_prior = s.theta_prior();
  opt.solver = core::SolverTier::kLagrangian;
  auto twin = algorithms::make_ol_gd(s.problem(), s.demands(), opt,
                                     s.algorithm_seed(0));
  auto* twin_ol = dynamic_cast<algorithms::OnlineCachingAlgorithm*>(twin.get());
  ASSERT_NE(twin_ol, nullptr);
  twin_ol->import_state(state);
  const algorithms::OlGdState back = twin_ol->export_state();
  ASSERT_EQ(back.lag_warm.lambda.size(), state.lag_warm.lambda.size());
  EXPECT_EQ(0, std::memcmp(back.lag_warm.lambda.data(),
                           state.lag_warm.lambda.data(),
                           state.lag_warm.lambda.size() * sizeof(double)));
  EXPECT_EQ(back.lag_warm.step_scale, state.lag_warm.step_scale);
}

// ---------------------------------------------------------------------
// Checkpoint round-trip of the dual state (serve format v2).
// ---------------------------------------------------------------------

TEST(LagrangianCheckpoint, DualStateRoundTripsBitwise) {
  const std::string path = ::testing::TempDir() + "mecsc_tiers_lag.ckpt";
  serve::Checkpoint ckpt;
  ckpt.config.seed = 7;
  ckpt.config.num_stations = 4;
  ckpt.config.solver = static_cast<std::uint8_t>(core::SolverTier::kLagrangian);
  // Awkward doubles on purpose: a denormal, a non-terminating binary
  // fraction, and a huge price must all survive the round trip bitwise.
  ckpt.algo.lag_warm.lambda = {0.0, 1.0 / 3.0,
                               std::numeric_limits<double>::denorm_min(),
                               7.25e11};
  ckpt.algo.lag_warm.step_scale = 0.4375;
  serve::write_checkpoint(path, ckpt);
  const serve::Checkpoint back = serve::read_checkpoint(path);
  EXPECT_EQ(back.config.solver,
            static_cast<std::uint8_t>(core::SolverTier::kLagrangian));
  ASSERT_EQ(back.algo.lag_warm.lambda.size(), ckpt.algo.lag_warm.lambda.size());
  EXPECT_EQ(0, std::memcmp(back.algo.lag_warm.lambda.data(),
                           ckpt.algo.lag_warm.lambda.data(),
                           ckpt.algo.lag_warm.lambda.size() * sizeof(double)));
  EXPECT_EQ(0, std::memcmp(&back.algo.lag_warm.step_scale,
                           &ckpt.algo.lag_warm.step_scale, sizeof(double)));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace mecsc
