// Tests for the demand predictors: oracle, last-value, ARMA (Eq. 27) and
// the GAN adapter.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "net/generators.h"
#include "gan/info_rnn_gan.h"
#include "predict/gan_predictor.h"
#include "predict/predictor.h"
#include "workload/trace.h"

namespace mecsc::predict {
namespace {

TEST(OraclePredictor, ReturnsTruth) {
  workload::DemandMatrix m(2, 3);
  m.set(0, 1, 5.0);
  m.set(1, 1, 7.0);
  OraclePredictor p(&m);
  auto v = p.predict(1);
  EXPECT_DOUBLE_EQ(v[0], 5.0);
  EXPECT_DOUBLE_EQ(v[1], 7.0);
  EXPECT_THROW(p.predict(3), std::exception);
  EXPECT_EQ(p.name(), "oracle");
}

TEST(LastValuePredictor, FallbackThenEcho) {
  LastValuePredictor p({1.0, 2.0});
  auto v0 = p.predict(0);
  EXPECT_DOUBLE_EQ(v0[0], 1.0);
  p.observe(0, {9.0, 8.0});
  auto v1 = p.predict(1);
  EXPECT_DOUBLE_EQ(v1[0], 9.0);
  EXPECT_DOUBLE_EQ(v1[1], 8.0);
  EXPECT_THROW(p.observe(1, {1.0}), std::exception);
}

TEST(ArmaPredictor, DefaultWeightsSatisfyEq27) {
  ArmaPredictor p(4, {0.0});
  const auto& w = p.weights();
  ASSERT_EQ(w.size(), 4u);
  double sum = 0.0;
  for (std::size_t i = 0; i < w.size(); ++i) {
    sum += w[i];
    if (i > 0) EXPECT_LE(w[i], w[i - 1]);
    EXPECT_GE(w[i], 0.0);
  }
  EXPECT_NEAR(sum, 1.0, 1e-12);
  // Linear decay: 4/10, 3/10, 2/10, 1/10.
  EXPECT_NEAR(w[0], 0.4, 1e-12);
  EXPECT_NEAR(w[3], 0.1, 1e-12);
}

TEST(ArmaPredictor, RejectsBadWeights) {
  EXPECT_THROW(ArmaPredictor({0.2, 0.5, 0.3}, {0.0}), std::exception);  // not nonincreasing
  EXPECT_THROW(ArmaPredictor({0.6, 0.6}, {0.0}), std::exception);       // sum != 1
  EXPECT_THROW(ArmaPredictor(std::vector<double>{}, {0.0}), std::exception);
  EXPECT_THROW(ArmaPredictor(2, std::vector<double>{}), std::exception);
}

TEST(ArmaPredictor, ExactWeightedPrediction) {
  ArmaPredictor p({0.5, 0.3, 0.2}, {0.0});
  p.observe(0, {10.0});
  p.observe(1, {20.0});
  p.observe(2, {30.0});
  // Most recent (30) gets 0.5, then 20 gets 0.3, then 10 gets 0.2.
  EXPECT_NEAR(p.predict(3)[0], 0.5 * 30.0 + 0.3 * 20.0 + 0.2 * 10.0, 1e-12);
}

TEST(ArmaPredictor, PartialHistoryRenormalizes) {
  ArmaPredictor p({0.5, 0.3, 0.2}, {7.0});
  EXPECT_DOUBLE_EQ(p.predict(0)[0], 7.0);  // no history -> fallback
  p.observe(0, {10.0});
  EXPECT_NEAR(p.predict(1)[0], 10.0, 1e-12);  // single obs, weight renorm
  p.observe(1, {20.0});
  EXPECT_NEAR(p.predict(2)[0], (0.5 * 20.0 + 0.3 * 10.0) / 0.8, 1e-12);
}

TEST(ArmaPredictor, WindowSlides) {
  ArmaPredictor p(2, {0.0});
  for (int t = 0; t < 10; ++t) p.observe(t, {static_cast<double>(t)});
  // Only the last two observations (8, 9) matter: (2/3)*9 + (1/3)*8.
  EXPECT_NEAR(p.predict(10)[0], (2.0 / 3.0) * 9.0 + (1.0 / 3.0) * 8.0, 1e-12);
}

TEST(ArmaPredictor, ConvergesOnConstantSeries) {
  ArmaPredictor p(5, {0.0});
  for (int t = 0; t < 20; ++t) p.observe(t, {42.0});
  EXPECT_NEAR(p.predict(20)[0], 42.0, 1e-9);
}

TEST(Mae, KnownValue) {
  EXPECT_DOUBLE_EQ(mean_absolute_error({1.0, 2.0}, {2.0, 0.0}), 1.5);
  EXPECT_THROW(mean_absolute_error({1.0}, {1.0, 2.0}), std::exception);
}

class GanPredictorFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    common::Rng rng(5);
    net::GtItmParams gp;
    gp.num_stations = 30;
    topo_ = std::make_unique<net::Topology>(net::generate_gtitm_like(gp, rng));
    workload::WorkloadParams wp;
    wp.num_requests = 12;
    wp.num_clusters = 3;
    wp.horizon = 80;
    workload_ = workload::make_workload(*topo_, wp, rng, /*bursty=*/true);
    common::Rng drng(7);
    demands_ = std::make_unique<workload::DemandMatrix>(workload::realize_demands(
        workload_.requests, workload_.processes, 80, drng));
    common::Rng trng(9);
    trace_ = std::make_unique<workload::Trace>(workload::Trace::from_demands(
        workload_.requests, *demands_, wp.num_clusters, 0.5, trng));
  }

  GanPredictorOptions tiny_options() const {
    GanPredictorOptions o;
    o.gan.noise_dim = 4;
    o.gan.hidden = 6;
    o.gan.seq_len = 8;
    o.gan.batch_size = 4;
    o.train_steps = 20;
    return o;
  }

  std::unique_ptr<net::Topology> topo_;
  workload::Workload workload_;
  std::unique_ptr<workload::DemandMatrix> demands_;
  std::unique_ptr<workload::Trace> trace_;
};

TEST_F(GanPredictorFixture, ConstructsTrainsAndPredicts) {
  GanDemandPredictor p(workload_.requests, *trace_, tiny_options(), 42);
  EXPECT_EQ(p.name(), "info-rnn-gan");
  EXPECT_GT(p.scale(), 0.0);
  auto v = p.predict(0);
  ASSERT_EQ(v.size(), workload_.requests.size());
  for (double d : v) {
    EXPECT_GE(d, 0.0);
    EXPECT_LE(d, p.scale());
  }
}

TEST_F(GanPredictorFixture, ObserveUpdatesHistory) {
  GanDemandPredictor p(workload_.requests, *trace_, tiny_options(), 43);
  auto before = p.predict(0);
  std::vector<double> truth(workload_.requests.size(), 30.0);
  for (int t = 0; t < 5; ++t) p.observe(t, truth);
  auto after = p.predict(5);
  ASSERT_EQ(after.size(), before.size());
  // Predictions remain valid (bounded by scale) after observations.
  for (double d : after) {
    EXPECT_GE(d, 0.0);
    EXPECT_LE(d, p.scale());
  }
}

TEST_F(GanPredictorFixture, ScaleCoversTraceMaximum) {
  GanDemandPredictor p(workload_.requests, *trace_, tiny_options(), 44);
  double max_demand = 0.0;
  for (const auto& row : trace_->rows()) {
    max_demand = std::max(max_demand, row.demand);
  }
  EXPECT_GE(p.scale(), max_demand);
}

TEST_F(GanPredictorFixture, RejectsSizeMismatchOnObserve) {
  GanDemandPredictor p(workload_.requests, *trace_, tiny_options(), 45);
  EXPECT_THROW(p.observe(0, {1.0}), std::exception);
}

TEST_F(GanPredictorFixture, UnderlyingModelPersists) {
  GanDemandPredictor p(workload_.requests, *trace_, tiny_options(), 46);
  std::string blob = p.model().serialize();
  gan::InfoRnnGan restored = gan::InfoRnnGan::deserialize(blob, 1);
  std::vector<double> history(p.model().config().seq_len, 0.3);
  EXPECT_DOUBLE_EQ(p.model().predict_next(history, 0),
                   restored.predict_next(history, 0));
}

TEST_F(GanPredictorFixture, PredictionsTrackClusterScale) {
  // A request whose cluster demand history sits high should not be
  // predicted at (near) zero once the model has real observations.
  GanDemandPredictor p(workload_.requests, *trace_, tiny_options(), 47);
  std::vector<double> truth(workload_.requests.size());
  for (std::size_t l = 0; l < truth.size(); ++l) {
    truth[l] = workload_.requests[l].basic_demand + 10.0;
  }
  for (std::size_t t = 0; t < 8; ++t) p.observe(t, truth);
  auto pred = p.predict(8);
  double mean_pred = 0.0;
  for (double v : pred) mean_pred += v;
  mean_pred /= static_cast<double>(pred.size());
  double mean_truth = 0.0;
  for (double v : truth) mean_truth += v;
  mean_truth /= static_cast<double>(truth.size());
  EXPECT_GT(mean_pred, 0.25 * mean_truth);
  EXPECT_LT(mean_pred, 2.5 * mean_truth);
}

}  // namespace
}  // namespace mecsc::predict
