// Tests for the serve subsystem's pipeline and trace machinery: paced
// end-to-end runs, slot-snapshot determinism across shard counts, the
// binary trace round-trip, replay bit-identity, the query API, and the
// admission-control shed accounting.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "serve/ingest_queue.h"
#include "serve/replay.h"
#include "serve/service.h"
#include "serve/trace_io.h"

namespace mecsc::serve {
namespace {

ServeOptions small_options(std::uint64_t seed, std::size_t shards,
                           std::size_t producers = 2) {
  ServeOptions options;
  options.seed = seed;
  options.num_stations = 15;
  options.num_requests = 30;
  options.num_services = 4;
  options.horizon = 8;
  options.slot_ms = 100;
  options.shards = shards;
  options.queue_capacity = 1024;
  options.producers = producers;
  options.bursty = true;
  options.paced = true;  // deterministic close condition
  return options;
}

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "mecsc_" + name;
}

std::vector<SlotTraceRecord> read_all(const std::string& path,
                                      TraceConfig* config = nullptr) {
  TraceReader reader(path);
  if (config != nullptr) *config = reader.config();
  std::vector<SlotTraceRecord> records;
  SlotTraceRecord rec;
  while (reader.next(rec)) records.push_back(rec);
  EXPECT_TRUE(reader.saw_footer());
  return records;
}

TEST(SlotService, PacedRunServesEverySlotLossless) {
  ServeOptions options = small_options(11, 4);
  SlotService service(options);
  // Count the nonzero demand events the synthetic producers will emit.
  std::uint64_t expected = 0;
  const auto& demands = service.scenario().demands();
  for (std::size_t t = 0; t < options.horizon; ++t) {
    for (std::size_t l = 0; l < service.scenario().problem().num_requests();
         ++l) {
      if (demands.at(l, t) > 0.0) ++expected;
    }
  }
  service.start();
  const ServeReport report = service.join();
  EXPECT_EQ(report.slots_served, options.horizon);
  EXPECT_EQ(report.shed, 0u);  // paced producers are lossless
  EXPECT_EQ(report.ingested, expected);
  EXPECT_FALSE(report.stopped_early);
  EXPECT_EQ(service.slot_records().size(), options.horizon);
  for (const auto& record : service.slot_records()) {
    EXPECT_GT(record.avg_delay_ms, 0.0);
    EXPECT_EQ(record.fault_shed_requests, 0u);
  }
}

// The slot-boundary determinism contract: the same scenario produces the
// same snapshots and decisions regardless of how the ingest path is
// sharded or how many producers feed it.
TEST(SlotService, SnapshotsAndDecisionsIndependentOfShardCount) {
  const std::string trace_a = temp_path("shards1.trace");
  const std::string trace_b = temp_path("shards5.trace");
  {
    ServeOptions options = small_options(23, 1, 1);
    options.trace_out = trace_a;
    SlotService service(options);
    service.start();
    service.join();
  }
  {
    ServeOptions options = small_options(23, 5, 3);
    options.trace_out = trace_b;
    SlotService service(options);
    service.start();
    service.join();
  }
  const auto a = read_all(trace_a);
  const auto b = read_all(trace_b);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t t = 0; t < a.size(); ++t) {
    EXPECT_EQ(a[t].demands, b[t].demands) << "slot " << t;
    EXPECT_EQ(a[t].station_of_request, b[t].station_of_request) << "slot " << t;
    EXPECT_EQ(a[t].cached_bits, b[t].cached_bits) << "slot " << t;
    EXPECT_EQ(a[t].avg_delay_ms, b[t].avg_delay_ms) << "slot " << t;
  }
  std::remove(trace_a.c_str());
  std::remove(trace_b.c_str());
}

// In a lossless paced run the closed snapshots must equal the scenario's
// demand matrix bitwise — the premise that makes live == batch.
TEST(SlotService, PacedSnapshotsEqualScenarioDemandsBitwise) {
  const std::string trace = temp_path("snapshots.trace");
  ServeOptions options = small_options(31, 3);
  options.trace_out = trace;
  SlotService service(options);
  service.start();
  service.join();
  const auto records = read_all(trace);
  ASSERT_EQ(records.size(), options.horizon);
  const auto& demands = service.scenario().demands();
  const std::size_t n = service.scenario().problem().num_requests();
  for (std::size_t t = 0; t < records.size(); ++t) {
    std::vector<double> dense(n, 0.0);
    for (const auto& [id, demand] : records[t].demands) dense[id] = demand;
    for (std::size_t l = 0; l < n; ++l) {
      EXPECT_EQ(dense[l], demands.at(l, t)) << "slot " << t << " request " << l;
    }
  }
  std::remove(trace.c_str());
}

TEST(TraceIo, RoundTripIsBitwise) {
  const std::string path = temp_path("roundtrip.trace");
  TraceConfig config;
  config.seed = 42;
  config.num_stations = 7;
  config.num_requests = 9;
  config.num_services = 3;
  config.horizon = 2;
  config.slot_ms = 50;
  config.bursty = 1;
  config.aggregate = 2;
  config.algo_seed = 0xdeadbeefcafeULL;
  config.shed_penalty_ms = 125.5;

  std::vector<SlotTraceRecord> written(2);
  written[0].slot = 0;
  written[0].demands = {{1, 0.1}, {4, 1e-300}, {8, 3.75}};
  written[0].unit_delays = {1.5, 2.25, 0.0, 7.875, 1e-9, 40.0, 3.125};
  written[0].station_of_request = {0, 1, 2, 3, 4, 5, 6, 0, 1};
  written[0].cached_bits = {0xAB, 0xCD, 0x01};
  written[0].ingested = 9;
  written[0].shed = 2;
  written[0].shed_penalty_ms = 500.0;
  written[0].avg_delay_ms = 12.625;
  written[0].decide_ms = 0.875;
  written[1].slot = 1;
  written[1].demands = {};  // an all-zero snapshot is representable
  written[1].unit_delays = std::vector<double>(7, 2.0);
  written[1].station_of_request = std::vector<std::uint16_t>(9, 3);
  written[1].cached_bits = {0x00, 0x10, 0x00};
  written[1].avg_delay_ms = 4.5;

  {
    TraceWriter writer(path, config);
    for (const auto& rec : written) writer.append(rec);
    EXPECT_EQ(writer.records_written(), 2u);
  }  // destructor seals

  TraceConfig got;
  const auto records = read_all(path, &got);
  EXPECT_EQ(got.seed, config.seed);
  EXPECT_EQ(got.num_stations, config.num_stations);
  EXPECT_EQ(got.num_requests, config.num_requests);
  EXPECT_EQ(got.num_services, config.num_services);
  EXPECT_EQ(got.horizon, config.horizon);
  EXPECT_EQ(got.slot_ms, config.slot_ms);
  EXPECT_EQ(got.bursty, config.bursty);
  EXPECT_EQ(got.aggregate, config.aggregate);
  EXPECT_EQ(got.algo_seed, config.algo_seed);
  EXPECT_EQ(got.shed_penalty_ms, config.shed_penalty_ms);
  ASSERT_EQ(records.size(), written.size());
  for (std::size_t t = 0; t < records.size(); ++t) {
    EXPECT_EQ(records[t].slot, written[t].slot);
    EXPECT_EQ(records[t].demands, written[t].demands);
    EXPECT_EQ(records[t].unit_delays, written[t].unit_delays);
    EXPECT_EQ(records[t].station_of_request, written[t].station_of_request);
    EXPECT_EQ(records[t].cached_bits, written[t].cached_bits);
    EXPECT_EQ(records[t].ingested, written[t].ingested);
    EXPECT_EQ(records[t].shed, written[t].shed);
    EXPECT_EQ(records[t].shed_penalty_ms, written[t].shed_penalty_ms);
    EXPECT_EQ(records[t].avg_delay_ms, written[t].avg_delay_ms);
    EXPECT_EQ(records[t].decide_ms, written[t].decide_ms);
  }
  EXPECT_TRUE(trace_well_formed(path));
  std::remove(path.c_str());
}

TEST(TraceIo, TruncatedTraceIsNotWellFormed) {
  const std::string path = temp_path("truncated.trace");
  {
    TraceConfig config;
    config.num_stations = 3;
    TraceWriter writer(path, config);
    SlotTraceRecord rec;
    rec.unit_delays = {1.0, 2.0, 3.0};
    writer.append(rec);
  }
  ASSERT_TRUE(trace_well_formed(path));
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  // Chop the footer (and a little more): an unsealed trace must be
  // detected — this is what the graceful-shutdown test keys on.
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() - 15));
  out.close();
  EXPECT_FALSE(trace_well_formed(path));
}

TEST(Replay, LiveTraceReplaysBitForBit) {
  const std::string path = temp_path("replay.trace");
  ServeOptions options = small_options(47, 4);
  options.trace_out = path;
  {
    SlotService service(options);
    service.start();
    service.join();
  }
  const ReplayResult result = replay_trace(path);
  EXPECT_TRUE(result.bit_identical) << result.detail;
  EXPECT_TRUE(result.sealed);
  EXPECT_EQ(result.slots_compared, options.horizon);
  EXPECT_EQ(result.detail, "");
  std::remove(path.c_str());
}

TEST(Replay, DetectsDivergingDecision) {
  const std::string path = temp_path("tampered.trace");
  ServeOptions options = small_options(53, 2);
  options.trace_out = path;
  {
    SlotService service(options);
    service.start();
    service.join();
  }
  TraceConfig config;
  auto records = read_all(path, &config);
  ASSERT_GE(records.size(), 4u);
  // Rewrite slot 3 with one request routed elsewhere (checksums stay
  // valid — only the comparator can catch this).
  records[3].station_of_request[0] =
      static_cast<std::uint16_t>((records[3].station_of_request[0] + 1) %
                                 config.num_stations);
  {
    TraceWriter writer(path, config);
    for (const auto& rec : records) writer.append(rec);
  }
  const ReplayResult result = replay_trace(path);
  EXPECT_FALSE(result.bit_identical);
  EXPECT_EQ(result.first_mismatch_slot, 3u);
  EXPECT_NE(result.detail.find("slot 3"), std::string::npos) << result.detail;
  std::remove(path.c_str());
}

TEST(SlotService, QueryApiAnswersFromCommittedDecision) {
  ServeOptions options = small_options(61, 2);
  SlotService service(options);
  EXPECT_NE(service.handle_query("{\"q\":\"stats\"}").find("\"q\":\"stats\""),
            std::string::npos);
  EXPECT_NE(service.handle_query("{\"q\":\"request\",\"id\":0}").find("error"),
            std::string::npos);  // nothing committed yet
  service.start();
  service.join();

  const auto decision = service.committed();
  ASSERT_NE(decision, nullptr);
  EXPECT_EQ(decision->slot, options.horizon - 1);

  const std::string request = service.handle_query("{\"q\":\"request\",\"id\":5}");
  EXPECT_NE(request.find("\"id\":5"), std::string::npos) << request;
  EXPECT_NE(request.find("\"station\":"), std::string::npos) << request;
  const std::string service_q = service.handle_query("{\"q\":\"service\",\"id\":1}");
  EXPECT_NE(service_q.find("\"stations\":["), std::string::npos) << service_q;
  const std::string stats = service.handle_query("{\"q\":\"stats\"}");
  EXPECT_NE(stats.find("\"ingested\":"), std::string::npos) << stats;

  EXPECT_NE(service.handle_query("{\"q\":\"request\",\"id\":99999}").find("error"),
            std::string::npos);
  EXPECT_NE(service.handle_query("{\"q\":\"teapot\"}").find("error"),
            std::string::npos);
  EXPECT_NE(service.handle_query("not json at all").find("error"),
            std::string::npos);
}

TEST(SlotService, AdmissionShedsWhenShardBacksUp) {
  ServeOptions options = small_options(67, 1, 0);
  options.paced = false;       // bounded retries, not lossless spinning
  options.queue_capacity = 4;  // minimum ring
  options.submit_retries = 0;
  SlotService service(options);  // never started: nothing drains
  for (std::uint32_t i = 0; i < 4; ++i) {
    EXPECT_TRUE(service.submit(i, 0, 1.0));
  }
  EXPECT_FALSE(service.submit(4, 0, 1.0));
  EXPECT_FALSE(service.submit(5, 0, 1.0));
  const ServeReport report = service.join();
  EXPECT_EQ(report.shed, 2u);
}

TEST(ServeOptionsEnv, ReadsCatalogueVariables) {
  setenv("MECSC_SERVE_SLOT_MS", "250", 1);
  setenv("MECSC_SERVE_SHARDS", "3", 1);
  setenv("MECSC_SERVE_QUEUE_CAP", "512", 1);
  setenv("MECSC_TRACE_OUT", "/tmp/env.trace", 1);
  const ServeOptions options = serve_options_from_env();
  EXPECT_EQ(options.slot_ms, 250u);
  EXPECT_EQ(options.shards, 3u);
  EXPECT_EQ(options.queue_capacity, 512u);
  EXPECT_EQ(options.trace_out, "/tmp/env.trace");
  unsetenv("MECSC_SERVE_SLOT_MS");
  unsetenv("MECSC_SERVE_SHARDS");
  unsetenv("MECSC_SERVE_QUEUE_CAP");
  unsetenv("MECSC_TRACE_OUT");
  const ServeOptions defaults = serve_options_from_env();
  EXPECT_EQ(defaults.slot_ms, 100u);
  EXPECT_EQ(defaults.shards, 8u);
  EXPECT_EQ(defaults.trace_out, "");
}

}  // namespace
}  // namespace mecsc::serve
