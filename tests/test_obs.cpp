// Unit tests for the mecsc::obs telemetry subsystem: histogram quantile
// correctness, exact concurrent counters, deterministic replication
// merges (MECSC_WORKERS=1 vs 8), exporter formats, and the guarantee
// that the disabled macro path performs no allocation.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <new>
#include <sstream>
#include <thread>
#include <vector>

#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "obs/telemetry.h"
#include "sim/replication.h"

// ---- Allocation counter -------------------------------------------------
// Replacement global operator new/delete counting every heap allocation
// in this binary. The telemetry-off test asserts the disabled macro path
// allocates nothing; everything else ignores the counter.
namespace {
std::atomic<std::size_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace mecsc::obs {
namespace {

TEST(SeriesKey, CanonicalisesAndSortsLabels) {
  EXPECT_EQ(series_key("simplex.iterations", {}), "simplex.iterations");
  EXPECT_EQ(series_key("olgd.arm_pulls", {{"arm", "3"}}),
            "olgd.arm_pulls{arm=3}");
  EXPECT_EQ(series_key("x", {{"b", "2"}, {"a", "1"}}), "x{a=1,b=2}");
}

TEST(Histogram, QuantilesMatchKnownDistribution) {
  // Unit-width buckets over [0, 100]: interpolation error is bounded by
  // one bucket width.
  std::vector<double> bounds;
  for (int i = 0; i <= 100; ++i) bounds.push_back(static_cast<double>(i));
  Histogram h(bounds);
  for (int v = 1; v <= 100; ++v) h.observe(static_cast<double>(v));

  EXPECT_EQ(h.count(), 100u);
  EXPECT_DOUBLE_EQ(h.sum(), 5050.0);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 100.0);
  EXPECT_DOUBLE_EQ(h.mean(), 50.5);
  EXPECT_NEAR(h.quantile(0.50), 50.0, 1.0);
  EXPECT_NEAR(h.quantile(0.90), 90.0, 1.0);
  EXPECT_NEAR(h.quantile(0.99), 99.0, 1.0);
  // Quantiles never escape the observed range.
  EXPECT_GE(h.quantile(0.0), 1.0);
  EXPECT_LE(h.quantile(1.0), 100.0);
}

TEST(Histogram, EmptyAndOverflow) {
  Histogram h({1.0, 10.0});
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
  h.observe(1e9);  // overflow bucket
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.bucket_counts().back(), 1u);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 1e9);  // clamped to observed max
}

TEST(Histogram, MergeAddsBucketwise) {
  Histogram a({1.0, 2.0, 3.0});
  Histogram b({1.0, 2.0, 3.0});
  a.observe(0.5);
  b.observe(2.5);
  b.observe(10.0);
  a.merge_from(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_DOUBLE_EQ(a.min(), 0.5);
  EXPECT_DOUBLE_EQ(a.max(), 10.0);
  EXPECT_DOUBLE_EQ(a.sum(), 13.0);
}

TEST(Counter, ConcurrentIncrementsSumExactly) {
  Registry reg;
  Counter& c = reg.counter("test.concurrent");
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kIncs = 100000;
  {
    std::vector<std::jthread> pool;
    for (std::size_t t = 0; t < kThreads; ++t) {
      pool.emplace_back([&c]() {
        for (std::size_t i = 0; i < kIncs; ++i) c.inc();
      });
    }
  }
  EXPECT_DOUBLE_EQ(c.value(),
                   static_cast<double>(kThreads) * static_cast<double>(kIncs));
}

TEST(Registry, MergeSemantics) {
  Registry a;
  Registry b;
  a.counter("c").add(1.5);
  b.counter("c").add(2.5);
  b.counter("only_b").add(7.0);
  a.gauge("g").set(1.0);
  b.gauge("g").set(9.0);
  a.record_event("{\"a\":1}");
  b.record_event("{\"b\":2}");
  a.merge_from(b);

  EXPECT_DOUBLE_EQ(a.counter("c").value(), 4.0);
  EXPECT_DOUBLE_EQ(a.counter("only_b").value(), 7.0);
  EXPECT_DOUBLE_EQ(a.gauge("g").value(), 9.0);  // gauges take other's value
  auto events = a.events_snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0], "{\"a\":1}");
  EXPECT_EQ(events[1], "{\"b\":2}");
}

TEST(Registry, ScopedRegistryRedirectsCurrent) {
  set_level(Level::kSummary);
  Registry local;
  EXPECT_NE(&current(), &local);
  {
    ScopedRegistry scope(&local);
    EXPECT_EQ(&current(), &local);
    MECSC_COUNT("scoped.hits", 2.0);
  }
  EXPECT_NE(&current(), &local);
  EXPECT_DOUBLE_EQ(local.counter("scoped.hits").value(), 2.0);
}

// Runs the replication fan-out with a parent registry installed and
// returns deterministic per-series snapshots of the merged result.
void run_replicated_workload(Registry& parent) {
  ScopedRegistry scope(&parent);
  double sink = 0.0;
  sim::run_replications(
      12,
      [](std::size_t rep) -> double {
        // Non-trivially-ordered floating point: only a fixed merge order
        // reproduces these sums bitwise.
        const double x = 0.1 * static_cast<double>(rep + 1) +
                         1e-9 * static_cast<double>(rep * rep);
        MECSC_COUNT("rep.work", x);
        MECSC_HISTOGRAM("rep.values", x);
        MECSC_GAUGE_SET("rep.last", x);
        obs::current()
            .counter("rep.tagged", {{"rep", std::to_string(rep % 3)}})
            .add(x * x);
        return x;
      },
      [&](std::size_t, double& r) { sink += r; });
  parent.gauge("rep.sink").set(sink);
}

TEST(Replication, MergedTelemetryIdenticalAcrossWorkerCounts) {
  set_level(Level::kSummary);

  ::setenv("MECSC_WORKERS", "1", 1);
  Registry seq;
  run_replicated_workload(seq);

  ::setenv("MECSC_WORKERS", "8", 1);
  Registry par;
  run_replicated_workload(par);
  ::unsetenv("MECSC_WORKERS");

  auto sc = seq.counters_snapshot();
  auto pc = par.counters_snapshot();
  ASSERT_EQ(sc.size(), pc.size());
  for (std::size_t i = 0; i < sc.size(); ++i) {
    EXPECT_EQ(sc[i].first, pc[i].first);
    EXPECT_EQ(sc[i].second, pc[i].second)  // bitwise: same summation order
        << sc[i].first;
  }
  auto sg = seq.gauges_snapshot();
  auto pg = par.gauges_snapshot();
  ASSERT_EQ(sg.size(), pg.size());
  for (std::size_t i = 0; i < sg.size(); ++i) {
    EXPECT_EQ(sg[i].first, pg[i].first);
    EXPECT_EQ(sg[i].second, pg[i].second) << sg[i].first;
  }
  // Whole-dump equality covers histograms and ordering too.
  std::ostringstream sdump;
  std::ostringstream pdump;
  write_jsonl(seq, sdump);
  write_jsonl(par, pdump);
  EXPECT_EQ(sdump.str(), pdump.str());
}

TEST(Telemetry, DisabledMacrosDoNotAllocate) {
  set_level(Level::kOff);
  ASSERT_FALSE(enabled());
  const std::size_t before = g_allocations.load(std::memory_order_relaxed);
  for (int i = 0; i < 1000; ++i) {
    MECSC_COUNT("off.counter", 1.0);
    MECSC_GAUGE_SET("off.gauge", static_cast<double>(i));
    MECSC_HISTOGRAM("off.hist", static_cast<double>(i));
    MECSC_SPAN("off.span");
  }
  const std::size_t after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_EQ(before, after);
  set_level(Level::kSummary);
}

TEST(Export, JsonlEmitsEventsThenSeries) {
  set_level(Level::kSummary);
  Registry reg;
  reg.record_event("{\"type\":\"slot\",\"t\":0}");
  reg.counter("simplex.iterations").add(1234567.0);
  reg.gauge("simplex.warm_hit_rate").set(0.75);
  reg.histogram("span.lp.solve").observe(1.25);

  std::ostringstream out;
  write_jsonl(reg, out);
  const std::string s = out.str();
  EXPECT_NE(s.find("{\"type\":\"slot\",\"t\":0}"), std::string::npos);
  // Full precision survives export (no 1.23457e+06 truncation).
  EXPECT_NE(s.find("\"series\":\"simplex.iterations\",\"value\":1234567"),
            std::string::npos);
  EXPECT_NE(s.find("simplex.warm_hit_rate"), std::string::npos);
  EXPECT_NE(s.find("span.lp.solve"), std::string::npos);
  // Events come before series lines.
  EXPECT_LT(s.find("\"type\":\"slot\""), s.find("simplex.iterations"));
}

TEST(Export, PrometheusMapsDotsToUnderscores) {
  Registry reg;
  reg.counter("mcf.arcs_scanned").add(42.0);
  reg.histogram("span.frac.solve").observe(2.0);
  std::ostringstream out;
  write_prometheus(reg, out);
  const std::string s = out.str();
  EXPECT_NE(s.find("mcf_arcs_scanned 42"), std::string::npos);
  EXPECT_NE(s.find("span_frac_solve_count"), std::string::npos);
  EXPECT_EQ(s.find("mcf.arcs_scanned"), std::string::npos);
}

TEST(Export, CsvHasHeaderAndRows) {
  Registry reg;
  reg.counter("olgd.decides").add(3.0);
  std::ostringstream out;
  write_csv(reg, out);
  const std::string s = out.str();
  EXPECT_NE(s.find("kind,series,count"), std::string::npos);
  EXPECT_NE(s.find("counter,olgd.decides"), std::string::npos);
}

TEST(Export, FormatForPath) {
  EXPECT_EQ(format_for_path("x.prom"), ExportFormat::kPrometheus);
  EXPECT_EQ(format_for_path("x.txt"), ExportFormat::kPrometheus);
  EXPECT_EQ(format_for_path("x.csv"), ExportFormat::kCsv);
  EXPECT_EQ(format_for_path("x.jsonl"), ExportFormat::kJsonl);
  EXPECT_EQ(format_for_path("plain"), ExportFormat::kJsonl);
}

TEST(Export, DumpIsNoopWhenOffOrEmpty) {
  Registry reg;
  std::ostringstream out;
  set_level(Level::kOff);
  reg.counter("c").inc();
  EXPECT_FALSE(dump(reg, out));
  set_level(Level::kSummary);
  Registry empty;
  EXPECT_FALSE(dump(empty, out));
  EXPECT_TRUE(out.str().empty());
  EXPECT_TRUE(dump(reg, out));
  EXPECT_FALSE(out.str().empty());
}

TEST(Span, RecordsIntoCurrentRegistryWhenEnabled) {
  set_level(Level::kSummary);
  Registry reg;
  {
    ScopedRegistry scope(&reg);
    MECSC_SPAN("test.block");
  }
  auto hists = reg.histograms_snapshot();
  ASSERT_EQ(hists.size(), 1u);
  EXPECT_EQ(hists[0].key, "span.test.block");
  EXPECT_EQ(hists[0].count, 1u);
}

TEST(SlotTimeline, SumsMatchingSpans) {
  SlotTimeline tl;
  {
    TimelineSpan a(&tl, "phase.a");
    TimelineSpan b(&tl, "phase.b");
  }
  {
    TimelineSpan a(&tl, "phase.a");
  }
  ASSERT_EQ(tl.events().size(), 3u);
  EXPECT_GE(tl.ms_of("phase.a"), 0.0);
  EXPECT_DOUBLE_EQ(tl.ms_of("phase.none"), 0.0);
}

}  // namespace
}  // namespace mecsc::obs
