// End-to-end telemetry smoke test (ISSUE satellite f): runs a tiny
// scenario under MECSC_TELEMETRY=full with OL_GD (exact-LP variant so
// the simplex counters fire), exports the default registry as JSONL,
// and asserts the dump carries the series the acceptance criteria name:
// simplex iteration counts, OL_GD explore/exploit counts, and finite
// per-slot delays.

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>
#include <vector>

#include "algorithms/ol_gd.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "sim/scenario.h"
#include "sim/simulator.h"

namespace mecsc {
namespace {

/// Splits a JSONL dump into lines.
std::vector<std::string> lines_of(const std::string& s) {
  std::vector<std::string> out;
  std::istringstream in(s);
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) out.push_back(line);
  }
  return out;
}

/// Extracts the number following `"key":` in `line` (nan when absent).
double number_after(const std::string& line, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  auto pos = line.find(needle);
  if (pos == std::string::npos) return std::nan("");
  return std::strtod(line.c_str() + pos + needle.size(), nullptr);
}

/// Value of the counter/gauge series named `series` (nan when absent).
double series_value(const std::vector<std::string>& lines,
                    const std::string& series) {
  const std::string needle = "\"series\":\"" + series + "\"";
  for (const auto& l : lines) {
    if (l.find(needle) != std::string::npos) return number_after(l, "value");
  }
  return std::nan("");
}

TEST(TelemetrySmoke, FullDumpCarriesSolverAndSlotSeries) {
  obs::set_level(obs::Level::kFull);
  obs::default_registry().clear();

  sim::ScenarioParams p;
  p.num_stations = 12;
  p.horizon = 6;
  p.workload.num_requests = 10;
  p.seed = 5;
  sim::Scenario s(p);

  algorithms::OlOptions opt;
  opt.theta_prior = s.theta_prior();
  opt.use_exact_lp = true;  // routes through lp::SimplexSolver
  auto ol = algorithms::make_ol_gd(s.problem(), s.demands(), opt,
                                   s.algorithm_seed(0));
  sim::RunResult r = s.simulator().run(*ol);
  ASSERT_EQ(r.slots.size(), p.horizon);

  // decision_time_ms is derived from the slot timeline's algo.decide
  // span — the two sources must agree exactly.
  for (const auto& rec : r.slots) {
    ASSERT_NE(rec.timeline, nullptr);
    EXPECT_DOUBLE_EQ(rec.decision_time_ms, rec.timeline->ms_of("algo.decide"));
  }

  std::ostringstream out;
  obs::write_jsonl(obs::default_registry(), out);
  auto lines = lines_of(out.str());
  ASSERT_FALSE(lines.empty());

  // Simplex ran and iterated.
  const double solves = series_value(lines, "simplex.solves");
  const double iters = series_value(lines, "simplex.iterations");
  EXPECT_TRUE(std::isfinite(solves)) << "simplex.solves series missing";
  EXPECT_TRUE(std::isfinite(iters)) << "simplex.iterations series missing";
  EXPECT_GE(solves, static_cast<double>(p.horizon));
  EXPECT_GT(iters, 0.0);

  // OL_GD explore/exploit accounting covers every request of every slot.
  const double explore = series_value(lines, "olgd.explore_requests");
  const double exploit = series_value(lines, "olgd.exploit_requests");
  EXPECT_TRUE(std::isfinite(explore)) << "olgd.explore_requests missing";
  EXPECT_TRUE(std::isfinite(exploit)) << "olgd.exploit_requests missing";
  EXPECT_GE(explore, 0.0);
  EXPECT_DOUBLE_EQ(explore + exploit,
                   static_cast<double>(p.horizon * p.workload.num_requests));

  // One structured slot event per slot, each with a finite delay.
  std::size_t slot_events = 0;
  for (const auto& l : lines) {
    if (l.find("\"type\":\"slot\"") == std::string::npos) continue;
    ++slot_events;
    const double delay = number_after(l, "avg_delay_ms");
    EXPECT_TRUE(std::isfinite(delay)) << l;
    EXPECT_GE(delay, 0.0) << l;
    EXPECT_TRUE(std::isfinite(number_after(l, "decision_time_ms"))) << l;
  }
  EXPECT_EQ(slot_events, p.horizon);

  // Per-slot phase timings were aggregated into span histograms.
  const std::string dump = out.str();
  EXPECT_NE(dump.find("span.algo.decide"), std::string::npos);
  EXPECT_NE(dump.find("span.sim.score"), std::string::npos);
  EXPECT_NE(dump.find("span.lp.solve"), std::string::npos);

  obs::default_registry().clear();
  obs::set_level(obs::Level::kOff);
}

}  // namespace
}  // namespace mecsc
