// Tests for the dense two-phase simplex LP solver.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "lp/model.h"
#include "lp/simplex.h"

namespace mecsc::lp {
namespace {

Constraint make(std::vector<std::pair<std::size_t, double>> terms, Relation rel,
                double rhs) {
  Constraint c;
  c.terms = std::move(terms);
  c.relation = rel;
  c.rhs = rhs;
  return c;
}

TEST(Model, MergesDuplicateTerms) {
  Model m;
  auto x = m.add_variable(1.0);
  m.add_constraint(make({{x, 1.0}, {x, 2.0}}, Relation::kLessEqual, 5.0));
  EXPECT_EQ(m.constraint(0).terms.size(), 1u);
  EXPECT_DOUBLE_EQ(m.constraint(0).terms[0].second, 3.0);
}

TEST(Model, RejectsUnknownVariable) {
  Model m;
  m.add_variable(1.0);
  EXPECT_THROW(m.add_constraint(make({{5, 1.0}}, Relation::kLessEqual, 1.0)),
               std::exception);
}

TEST(Model, ObjectiveAndViolation) {
  Model m;
  auto x = m.add_variable(2.0);
  auto y = m.add_variable(3.0);
  m.add_constraint(make({{x, 1.0}, {y, 1.0}}, Relation::kLessEqual, 4.0));
  EXPECT_DOUBLE_EQ(m.objective_value({1.0, 2.0}), 8.0);
  EXPECT_DOUBLE_EQ(m.max_violation({1.0, 2.0}), 0.0);
  EXPECT_DOUBLE_EQ(m.max_violation({3.0, 2.0}), 1.0);
}

TEST(Simplex, SimpleMaximizationAsMinimization) {
  // max 3x + 2y s.t. x + y <= 4, x <= 2  ->  min -3x - 2y.
  Model m;
  auto x = m.add_variable(-3.0);
  auto y = m.add_variable(-2.0);
  m.add_constraint(make({{x, 1.0}, {y, 1.0}}, Relation::kLessEqual, 4.0));
  m.add_constraint(make({{x, 1.0}}, Relation::kLessEqual, 2.0));
  Solution s = SimplexSolver().solve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.x[x], 2.0, 1e-8);
  EXPECT_NEAR(s.x[y], 2.0, 1e-8);
  EXPECT_NEAR(s.objective, -10.0, 1e-8);
}

TEST(Simplex, EqualityConstraints) {
  // min x + 2y s.t. x + y = 3, y >= 1.
  Model m;
  auto x = m.add_variable(1.0);
  auto y = m.add_variable(2.0);
  m.add_constraint(make({{x, 1.0}, {y, 1.0}}, Relation::kEqual, 3.0));
  m.add_constraint(make({{y, 1.0}}, Relation::kGreaterEqual, 1.0));
  Solution s = SimplexSolver().solve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.x[x], 2.0, 1e-8);
  EXPECT_NEAR(s.x[y], 1.0, 1e-8);
  EXPECT_NEAR(s.objective, 4.0, 1e-8);
}

TEST(Simplex, DetectsInfeasibility) {
  Model m;
  auto x = m.add_variable(1.0);
  m.add_constraint(make({{x, 1.0}}, Relation::kLessEqual, 1.0));
  m.add_constraint(make({{x, 1.0}}, Relation::kGreaterEqual, 2.0));
  EXPECT_EQ(SimplexSolver().solve(m).status, SolveStatus::kInfeasible);
}

TEST(Simplex, DetectsUnboundedness) {
  Model m;
  auto x = m.add_variable(-1.0);  // minimize -x with x free upward
  m.add_constraint(make({{x, 1.0}}, Relation::kGreaterEqual, 0.0));
  EXPECT_EQ(SimplexSolver().solve(m).status, SolveStatus::kUnbounded);
}

TEST(Simplex, NoConstraintsNonNegativeCostsIsZero) {
  Model m;
  m.add_variable(1.0);
  m.add_variable(0.0);
  Solution s = SimplexSolver().solve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_DOUBLE_EQ(s.objective, 0.0);
}

TEST(Simplex, NoConstraintsNegativeCostIsUnbounded) {
  Model m;
  m.add_variable(-1.0);
  EXPECT_EQ(SimplexSolver().solve(m).status, SolveStatus::kUnbounded);
}

TEST(Simplex, NegativeRhsNormalization) {
  // min x s.t. -x <= -2  (i.e., x >= 2).
  Model m;
  auto x = m.add_variable(1.0);
  m.add_constraint(make({{x, -1.0}}, Relation::kLessEqual, -2.0));
  Solution s = SimplexSolver().solve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.x[x], 2.0, 1e-8);
}

TEST(Simplex, DegenerateProblemTerminates) {
  // Classic degeneracy: several constraints meet at one vertex.
  Model m;
  auto x = m.add_variable(-1.0);
  auto y = m.add_variable(-1.0);
  m.add_constraint(make({{x, 1.0}}, Relation::kLessEqual, 1.0));
  m.add_constraint(make({{y, 1.0}}, Relation::kLessEqual, 1.0));
  m.add_constraint(make({{x, 1.0}, {y, 1.0}}, Relation::kLessEqual, 2.0));
  m.add_constraint(make({{x, 1.0}, {y, 2.0}}, Relation::kLessEqual, 3.0));
  m.add_constraint(make({{x, 2.0}, {y, 1.0}}, Relation::kLessEqual, 3.0));
  Solution s = SimplexSolver().solve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, -2.0, 1e-8);
}

TEST(Simplex, TransportationProblemKnownOptimum) {
  // 2 sources (supply 10, 20), 2 sinks (demand 15 each), costs
  // [[1, 4], [2, 1]]. Optimal: s0->d0 10, s1->d0 5, s1->d1 15, cost 35.
  Model m;
  std::size_t v[2][2];
  double cost[2][2] = {{1, 4}, {2, 1}};
  for (int i = 0; i < 2; ++i) {
    for (int j = 0; j < 2; ++j) v[i][j] = m.add_variable(cost[i][j]);
  }
  double supply[2] = {10, 20};
  double demand[2] = {15, 15};
  for (int i = 0; i < 2; ++i) {
    m.add_constraint(make({{v[i][0], 1.0}, {v[i][1], 1.0}}, Relation::kLessEqual,
                          supply[i]));
  }
  for (int j = 0; j < 2; ++j) {
    m.add_constraint(make({{v[0][j], 1.0}, {v[1][j], 1.0}}, Relation::kEqual,
                          demand[j]));
  }
  Solution s = SimplexSolver().solve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 35.0, 1e-7);
}

TEST(Simplex, RedundantEqualityRows) {
  // x + y = 2 stated twice; still solvable.
  Model m;
  auto x = m.add_variable(1.0);
  auto y = m.add_variable(1.0);
  m.add_constraint(make({{x, 1.0}, {y, 1.0}}, Relation::kEqual, 2.0));
  m.add_constraint(make({{x, 1.0}, {y, 1.0}}, Relation::kEqual, 2.0));
  Solution s = SimplexSolver().solve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 2.0, 1e-8);
}

/// Random feasible LPs: the solution must satisfy all constraints and be
/// no worse than a known feasible point.
class SimplexRandomTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SimplexRandomTest, OptimalIsFeasibleAndBeatsReferencePoint) {
  common::Rng rng(GetParam());
  const std::size_t n = 6;
  const std::size_t rows = 8;
  // Build constraints around a known feasible point x0 >= 0.
  std::vector<double> x0(n);
  for (auto& v : x0) v = rng.uniform(0.0, 2.0);
  Model m;
  for (std::size_t j = 0; j < n; ++j) m.add_variable(rng.uniform(0.1, 3.0));
  for (std::size_t r = 0; r < rows; ++r) {
    Constraint c;
    double lhs_at_x0 = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      double a = rng.uniform(-1.0, 2.0);
      c.terms.emplace_back(j, a);
      lhs_at_x0 += a * x0[j];
    }
    c.relation = Relation::kLessEqual;
    c.rhs = lhs_at_x0 + rng.uniform(0.0, 1.0);  // x0 strictly feasible
    m.add_constraint(std::move(c));
  }
  Solution s = SimplexSolver().solve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_LE(m.max_violation(s.x), 1e-6);
  EXPECT_LE(s.objective, m.objective_value(x0) + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimplexRandomTest,
                         ::testing::Range<std::uint64_t>(1, 21));

TEST(Simplex, IterationLimitReported) {
  Model m;
  auto x = m.add_variable(-3.0);
  auto y = m.add_variable(-2.0);
  m.add_constraint(make({{x, 1.0}, {y, 1.0}}, Relation::kLessEqual, 4.0));
  SimplexOptions opt;
  opt.max_iterations = 0;  // automatic is plenty; now force tiny
  opt.max_iterations = 1;
  Solution s = SimplexSolver(opt).solve(m);
  // Either it solved within one pivot or reports the limit; both legal,
  // but it must not crash or mislabel.
  EXPECT_TRUE(s.status == SolveStatus::kOptimal ||
              s.status == SolveStatus::kIterationLimit);
}

}  // namespace
}  // namespace mecsc::lp
