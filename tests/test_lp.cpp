// Tests for the dense two-phase simplex LP solver.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "lp/model.h"
#include "lp/simplex.h"

namespace mecsc::lp {
namespace {

Constraint make(std::vector<std::pair<std::size_t, double>> terms, Relation rel,
                double rhs) {
  Constraint c;
  c.terms = std::move(terms);
  c.relation = rel;
  c.rhs = rhs;
  return c;
}

TEST(Model, MergesDuplicateTerms) {
  Model m;
  auto x = m.add_variable(1.0);
  m.add_constraint(make({{x, 1.0}, {x, 2.0}}, Relation::kLessEqual, 5.0));
  EXPECT_EQ(m.constraint(0).terms.size(), 1u);
  EXPECT_DOUBLE_EQ(m.constraint(0).terms[0].second, 3.0);
}

TEST(Model, RejectsUnknownVariable) {
  Model m;
  m.add_variable(1.0);
  EXPECT_THROW(m.add_constraint(make({{5, 1.0}}, Relation::kLessEqual, 1.0)),
               std::exception);
}

TEST(Model, ObjectiveAndViolation) {
  Model m;
  auto x = m.add_variable(2.0);
  auto y = m.add_variable(3.0);
  m.add_constraint(make({{x, 1.0}, {y, 1.0}}, Relation::kLessEqual, 4.0));
  EXPECT_DOUBLE_EQ(m.objective_value({1.0, 2.0}), 8.0);
  EXPECT_DOUBLE_EQ(m.max_violation({1.0, 2.0}), 0.0);
  EXPECT_DOUBLE_EQ(m.max_violation({3.0, 2.0}), 1.0);
}

TEST(Simplex, SimpleMaximizationAsMinimization) {
  // max 3x + 2y s.t. x + y <= 4, x <= 2  ->  min -3x - 2y.
  Model m;
  auto x = m.add_variable(-3.0);
  auto y = m.add_variable(-2.0);
  m.add_constraint(make({{x, 1.0}, {y, 1.0}}, Relation::kLessEqual, 4.0));
  m.add_constraint(make({{x, 1.0}}, Relation::kLessEqual, 2.0));
  Solution s = SimplexSolver().solve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.x[x], 2.0, 1e-8);
  EXPECT_NEAR(s.x[y], 2.0, 1e-8);
  EXPECT_NEAR(s.objective, -10.0, 1e-8);
}

TEST(Simplex, EqualityConstraints) {
  // min x + 2y s.t. x + y = 3, y >= 1.
  Model m;
  auto x = m.add_variable(1.0);
  auto y = m.add_variable(2.0);
  m.add_constraint(make({{x, 1.0}, {y, 1.0}}, Relation::kEqual, 3.0));
  m.add_constraint(make({{y, 1.0}}, Relation::kGreaterEqual, 1.0));
  Solution s = SimplexSolver().solve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.x[x], 2.0, 1e-8);
  EXPECT_NEAR(s.x[y], 1.0, 1e-8);
  EXPECT_NEAR(s.objective, 4.0, 1e-8);
}

TEST(Simplex, DetectsInfeasibility) {
  Model m;
  auto x = m.add_variable(1.0);
  m.add_constraint(make({{x, 1.0}}, Relation::kLessEqual, 1.0));
  m.add_constraint(make({{x, 1.0}}, Relation::kGreaterEqual, 2.0));
  EXPECT_EQ(SimplexSolver().solve(m).status, SolveStatus::kInfeasible);
}

TEST(Simplex, DetectsUnboundedness) {
  Model m;
  auto x = m.add_variable(-1.0);  // minimize -x with x free upward
  m.add_constraint(make({{x, 1.0}}, Relation::kGreaterEqual, 0.0));
  EXPECT_EQ(SimplexSolver().solve(m).status, SolveStatus::kUnbounded);
}

TEST(Simplex, NoConstraintsNonNegativeCostsIsZero) {
  Model m;
  m.add_variable(1.0);
  m.add_variable(0.0);
  Solution s = SimplexSolver().solve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_DOUBLE_EQ(s.objective, 0.0);
}

TEST(Simplex, NoConstraintsNegativeCostIsUnbounded) {
  Model m;
  m.add_variable(-1.0);
  EXPECT_EQ(SimplexSolver().solve(m).status, SolveStatus::kUnbounded);
}

TEST(Simplex, NegativeRhsNormalization) {
  // min x s.t. -x <= -2  (i.e., x >= 2).
  Model m;
  auto x = m.add_variable(1.0);
  m.add_constraint(make({{x, -1.0}}, Relation::kLessEqual, -2.0));
  Solution s = SimplexSolver().solve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.x[x], 2.0, 1e-8);
}

TEST(Simplex, DegenerateProblemTerminates) {
  // Classic degeneracy: several constraints meet at one vertex.
  Model m;
  auto x = m.add_variable(-1.0);
  auto y = m.add_variable(-1.0);
  m.add_constraint(make({{x, 1.0}}, Relation::kLessEqual, 1.0));
  m.add_constraint(make({{y, 1.0}}, Relation::kLessEqual, 1.0));
  m.add_constraint(make({{x, 1.0}, {y, 1.0}}, Relation::kLessEqual, 2.0));
  m.add_constraint(make({{x, 1.0}, {y, 2.0}}, Relation::kLessEqual, 3.0));
  m.add_constraint(make({{x, 2.0}, {y, 1.0}}, Relation::kLessEqual, 3.0));
  Solution s = SimplexSolver().solve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, -2.0, 1e-8);
}

TEST(Simplex, BealeCyclingProblemTerminatesAtOptimum) {
  // Beale's classic cycling example: Dantzig's rule cycles forever on the
  // degenerate vertex at the origin in exact arithmetic. The automatic
  // switch to Bland's rule (SimplexOptions::bland_after) must break the
  // cycle and reach the optimum -1/20 on the flat tableau.
  Model m;
  auto x1 = m.add_variable(-0.75);
  auto x2 = m.add_variable(150.0);
  auto x3 = m.add_variable(-0.02);
  auto x4 = m.add_variable(6.0);
  m.add_constraint(make({{x1, 0.25}, {x2, -60.0}, {x3, -1.0 / 25.0}, {x4, 9.0}},
                        Relation::kLessEqual, 0.0));
  m.add_constraint(make({{x1, 0.5}, {x2, -90.0}, {x3, -1.0 / 50.0}, {x4, 3.0}},
                        Relation::kLessEqual, 0.0));
  m.add_constraint(make({{x3, 1.0}}, Relation::kLessEqual, 1.0));
  SimplexOptions opt;
  opt.bland_after = 4;  // hit the anti-cycling path quickly
  Solution s = SimplexSolver(opt).solve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, -0.05, 1e-9);
  EXPECT_NEAR(s.x[x3], 1.0, 1e-9);
}

TEST(Simplex, WorkspaceWarmStartMatchesColdSolve) {
  // Two same-shaped models with smoothly perturbed costs/rhs — the
  // per-slot caching LP pattern. The second solve must warm-start from
  // the first solve's basis and still agree with a cold solve.
  auto build = [&](double bump) {
    Model m;
    auto x = m.add_variable(1.0 + bump);
    auto y = m.add_variable(2.0);
    auto z = m.add_variable(0.5 + bump);
    m.add_constraint(make({{x, 1.0}, {y, 1.0}}, Relation::kGreaterEqual, 2.0));
    m.add_constraint(make({{y, 1.0}, {z, 1.0}}, Relation::kGreaterEqual, 1.5 + bump));
    m.add_constraint(make({{x, 1.0}, {z, 2.0}}, Relation::kLessEqual, 8.0));
    return m;
  };
  SimplexSolver solver;
  SimplexWorkspace ws;
  Solution first = solver.solve(build(0.0), ws);
  ASSERT_EQ(first.status, SolveStatus::kOptimal);
  EXPECT_FALSE(first.warm_started);

  Model second = build(0.1);
  Solution warm = solver.solve(second, ws);
  ASSERT_EQ(warm.status, SolveStatus::kOptimal);
  EXPECT_TRUE(warm.warm_started);

  Solution cold = solver.solve(second);
  ASSERT_EQ(cold.status, SolveStatus::kOptimal);
  EXPECT_NEAR(warm.objective, cold.objective, 1e-9);
  for (std::size_t j = 0; j < cold.x.size(); ++j) {
    EXPECT_NEAR(warm.x[j], cold.x[j], 1e-9);
  }
}

TEST(Simplex, TransportationProblemKnownOptimum) {
  // 2 sources (supply 10, 20), 2 sinks (demand 15 each), costs
  // [[1, 4], [2, 1]]. Optimal: s0->d0 10, s1->d0 5, s1->d1 15, cost 35.
  Model m;
  std::size_t v[2][2];
  double cost[2][2] = {{1, 4}, {2, 1}};
  for (int i = 0; i < 2; ++i) {
    for (int j = 0; j < 2; ++j) v[i][j] = m.add_variable(cost[i][j]);
  }
  double supply[2] = {10, 20};
  double demand[2] = {15, 15};
  for (int i = 0; i < 2; ++i) {
    m.add_constraint(make({{v[i][0], 1.0}, {v[i][1], 1.0}}, Relation::kLessEqual,
                          supply[i]));
  }
  for (int j = 0; j < 2; ++j) {
    m.add_constraint(make({{v[0][j], 1.0}, {v[1][j], 1.0}}, Relation::kEqual,
                          demand[j]));
  }
  Solution s = SimplexSolver().solve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 35.0, 1e-7);
}

TEST(Simplex, RedundantEqualityRows) {
  // x + y = 2 stated twice; still solvable.
  Model m;
  auto x = m.add_variable(1.0);
  auto y = m.add_variable(1.0);
  m.add_constraint(make({{x, 1.0}, {y, 1.0}}, Relation::kEqual, 2.0));
  m.add_constraint(make({{x, 1.0}, {y, 1.0}}, Relation::kEqual, 2.0));
  Solution s = SimplexSolver().solve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 2.0, 1e-8);
}

/// Random feasible LPs: the solution must satisfy all constraints and be
/// no worse than a known feasible point.
class SimplexRandomTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SimplexRandomTest, OptimalIsFeasibleAndBeatsReferencePoint) {
  common::Rng rng(GetParam());
  const std::size_t n = 6;
  const std::size_t rows = 8;
  // Build constraints around a known feasible point x0 >= 0.
  std::vector<double> x0(n);
  for (auto& v : x0) v = rng.uniform(0.0, 2.0);
  Model m;
  for (std::size_t j = 0; j < n; ++j) m.add_variable(rng.uniform(0.1, 3.0));
  for (std::size_t r = 0; r < rows; ++r) {
    Constraint c;
    double lhs_at_x0 = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      double a = rng.uniform(-1.0, 2.0);
      c.terms.emplace_back(j, a);
      lhs_at_x0 += a * x0[j];
    }
    c.relation = Relation::kLessEqual;
    c.rhs = lhs_at_x0 + rng.uniform(0.0, 1.0);  // x0 strictly feasible
    m.add_constraint(std::move(c));
  }
  Solution s = SimplexSolver().solve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_LE(m.max_violation(s.x), 1e-6);
  EXPECT_LE(s.objective, m.objective_value(x0) + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimplexRandomTest,
                         ::testing::Range<std::uint64_t>(1, 21));

TEST(Simplex, IterationLimitReported) {
  Model m;
  auto x = m.add_variable(-3.0);
  auto y = m.add_variable(-2.0);
  m.add_constraint(make({{x, 1.0}, {y, 1.0}}, Relation::kLessEqual, 4.0));
  SimplexOptions opt;
  opt.max_iterations = 0;  // automatic is plenty; now force tiny
  opt.max_iterations = 1;
  Solution s = SimplexSolver(opt).solve(m);
  // Either it solved within one pivot or reports the limit; both legal,
  // but it must not crash or mislabel.
  EXPECT_TRUE(s.status == SolveStatus::kOptimal ||
              s.status == SolveStatus::kIterationLimit);
}

}  // namespace
}  // namespace mecsc::lp
