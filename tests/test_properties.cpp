// Cross-module property tests: invariants that must hold for any seed,
// network size, demand regime or threshold — swept with parameterized
// suites.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "algorithms/baselines.h"
#include "algorithms/ol_gd.h"
#include "core/fractional_solver.h"
#include "core/rounding.h"
#include "sim/scenario.h"

namespace mecsc {
namespace {

sim::ScenarioParams scenario_params(std::uint64_t seed, bool bursty) {
  sim::ScenarioParams p;
  p.num_stations = 20 + seed % 17;        // vary size with the seed
  p.horizon = 10;
  p.bursty = bursty;
  p.workload.num_requests = 15 + seed % 11;
  p.workload.num_services = 3 + seed % 4;
  p.history_horizon = 40;
  p.seed = seed;
  return p;
}

class FractionalInvariantsTest
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, bool>> {};

TEST_P(FractionalInvariantsTest, SolutionIsAlwaysFeasibleFractional) {
  auto [seed, bursty] = GetParam();
  sim::Scenario s(scenario_params(seed, bursty));
  core::FractionalSolver solver(s.problem());
  const std::size_t ns = s.problem().num_stations();

  for (std::size_t t = 0; t < 3; ++t) {
    std::vector<double> demands = s.demands().slot(t);
    // Random-ish but deterministic theta within the delay bounds.
    std::vector<double> theta(ns);
    for (std::size_t i = 0; i < ns; ++i) {
      theta[i] = s.d_min() +
                 (s.d_max() - s.d_min()) *
                     (0.5 + 0.5 * std::sin(static_cast<double>(seed + i + t)));
    }
    core::FractionalSolution sol = solver.solve(demands, theta);
    std::vector<double> load(ns, 0.0);
    for (std::size_t l = 0; l < demands.size(); ++l) {
      double row = 0.0;
      for (std::size_t i = 0; i < ns; ++i) {
        EXPECT_GE(sol.x[l][i], -1e-9);
        EXPECT_LE(sol.x[l][i], 1.0 + 1e-9);
        row += sol.x[l][i];
        load[i] += sol.x[l][i] * s.problem().resource_demand_mhz(demands[l]);
      }
      EXPECT_NEAR(row, 1.0, 1e-6) << "request " << l;
      // y covers x (constraint 6 via derivation).
      std::size_t k = s.problem().requests()[l].service_id;
      for (std::size_t i = 0; i < ns; ++i) {
        EXPECT_GE(sol.y[k][i] + 1e-9, sol.x[l][i]);
      }
    }
    for (std::size_t i = 0; i < ns; ++i) {
      EXPECT_LE(load[i], s.topology().station(i).capacity_mhz + 1e-6);
    }
    EXPECT_GT(sol.objective, 0.0);
    EXPECT_TRUE(std::isfinite(sol.objective));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FractionalInvariantsTest,
    ::testing::Combine(::testing::Values(1, 2, 3, 5, 8, 13, 21),
                       ::testing::Bool()));

class RoundingInvariantsTest
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, double>> {};

TEST_P(RoundingInvariantsTest, AssignmentValidFeasibleAndNoWorseThanTwiceFractional) {
  auto [seed, gamma] = GetParam();
  sim::Scenario s(scenario_params(seed, false));
  core::FractionalSolver solver(s.problem());
  std::vector<double> demands = s.demands().slot(0);
  std::vector<double> theta;
  theta.reserve(s.topology().num_stations());
  for (const auto& bs : s.topology().stations()) {
    theta.push_back(bs.mean_unit_delay_ms);
  }
  core::FractionalSolution frac = solver.solve(demands, theta);

  core::RoundingOptions opt;
  opt.gamma = gamma;
  opt.epsilon = 0.0;
  common::Rng rng(seed * 7 + 1);
  core::Assignment a =
      core::round_assignment(s.problem(), frac, demands, theta, opt, rng);

  ASSERT_EQ(a.station_of_request.size(), s.problem().num_requests());
  for (std::size_t i : a.station_of_request) {
    EXPECT_LT(i, s.problem().num_stations());
  }
  EXPECT_NEAR(core::capacity_violation(s.problem(), a, demands), 0.0, 1e-6);
  // Integral cost under theta should stay within a constant factor of
  // the fractional guide (pure exploitation, modest instances).
  double integral = core::realized_average_delay(s.problem(), a, demands, theta);
  EXPECT_LE(integral, 2.0 * frac.objective + 1e-6);
  EXPECT_GE(integral, frac.objective - 1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RoundingInvariantsTest,
    ::testing::Combine(::testing::Values(2, 4, 6, 9, 12),
                       ::testing::Values(0.1, 0.25, 0.5, 0.9)));

class SimDeterminismTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SimDeterminismTest, WholePipelineIsReproducible) {
  std::uint64_t seed = GetParam();
  auto run_once = [&] {
    sim::Scenario s(scenario_params(seed, true));
    algorithms::OlOptions opt;
    auto algo = algorithms::make_ol_reg(s.problem(), 3, opt, s.algorithm_seed(0));
    return s.simulator().run(*algo);
  };
  sim::RunResult a = run_once();
  sim::RunResult b = run_once();
  ASSERT_EQ(a.slots.size(), b.slots.size());
  for (std::size_t t = 0; t < a.slots.size(); ++t) {
    EXPECT_DOUBLE_EQ(a.slots[t].avg_delay_ms, b.slots[t].avg_delay_ms);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimDeterminismTest,
                         ::testing::Values(3, 7, 11, 19, 31));

class RegretInvariantsTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RegretInvariantsTest, PerSlotRegretNonNegativeAndCumulativeMonotone) {
  std::uint64_t seed = GetParam();
  sim::ScenarioParams p = scenario_params(seed, false);
  p.track_regret = true;
  sim::Scenario s(p);
  algorithms::OlOptions opt;
  auto algo = algorithms::make_ol_gd(s.problem(), s.demands(), opt,
                                     s.algorithm_seed(0));
  sim::RunResult r = s.simulator().run(*algo);
  ASSERT_EQ(r.cumulative_regret.size(), p.horizon);
  double prev = 0.0;
  for (double c : r.cumulative_regret) {
    EXPECT_GE(c + 1e-12, prev);
    prev = c;
  }
  // The realised delay of ANY integral decision is lower-bounded by the
  // per-slot fractional optimum computed with the true delays, so the
  // tracker can never report negative regret — by construction, but the
  // clamp must not hide systematically negative values either. Verify
  // it is not saturated at zero in every slot (the algorithm is not a
  // hindsight oracle).
  EXPECT_GT(r.cumulative_regret.back(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RegretInvariantsTest,
                         ::testing::Values(2, 6, 10, 14));

class BaselineInvariantsTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BaselineInvariantsTest, BaselinesAlwaysFeasibleAndDeterministic) {
  std::uint64_t seed = GetParam();
  sim::Scenario s(scenario_params(seed, true));
  auto greedy = algorithms::make_greedy_gd(s.problem(), s.demands(),
                                           s.historical_delay_estimates());
  auto pri = algorithms::make_pri_gd(s.problem(), s.demands(),
                                     s.historical_delay_estimates());
  for (auto* algo : {greedy.get(), pri.get()}) {
    core::Assignment a1 = algo->decide(0);
    core::Assignment a2 = algo->decide(0);
    EXPECT_EQ(a1.station_of_request, a2.station_of_request);
    EXPECT_NEAR(core::capacity_violation(s.problem(), a1, s.demands().slot(0)),
                0.0, 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BaselineInvariantsTest,
                         ::testing::Values(1, 4, 9, 16, 25));

class TheoryConsistencyTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TheoryConsistencyTest, SigmaAndBoundBehaveAcrossScenarios) {
  std::uint64_t seed = GetParam();
  sim::Scenario s(scenario_params(seed, false));
  double sigma = core::theory::lemma1_sigma(
      s.problem().num_requests(), s.d_max(), s.d_min(),
      s.problem().instantiation_delay_spread(), 0.25);
  EXPECT_GT(sigma, 0.0);
  double b1 = core::theory::theorem1_bound(sigma, 50, 0.5);
  double b2 = core::theory::theorem1_bound(sigma, 500, 0.5);
  EXPECT_GT(b2, b1);
  EXPECT_GT(b1, 0.0);
  // Bound is linear in sigma.
  EXPECT_NEAR(core::theory::theorem1_bound(2.0 * sigma, 500, 0.5), 2.0 * b2,
              1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TheoryConsistencyTest,
                         ::testing::Values(1, 2, 3));

}  // namespace
}  // namespace mecsc
