// Tests for the core library: problem instances, the exact LP
// formulation vs the flow-based fractional solver, candidate sets,
// ε-greedy rounding, bandit state and regret accounting.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "core/assignment.h"
#include "core/bandit.h"
#include "core/fractional_solver.h"
#include "core/lp_formulation.h"
#include "core/problem.h"
#include "core/regret.h"
#include "core/rounding.h"
#include "net/generators.h"
#include "workload/trace.h"

namespace mecsc::core {
namespace {

struct Instance {
  std::unique_ptr<net::Topology> topo;
  workload::Workload workload;
  std::unique_ptr<CachingProblem> problem;
  std::vector<double> demands;
  std::vector<double> theta;
};

Instance make_instance(std::uint64_t seed, std::size_t stations,
                       std::size_t requests, std::size_t services = 4,
                       bool access_latency = true) {
  Instance inst;
  common::Rng rng(seed);
  net::GtItmParams gp;
  gp.num_stations = stations;
  inst.topo = std::make_unique<net::Topology>(net::generate_gtitm_like(gp, rng));
  workload::WorkloadParams wp;
  wp.num_requests = requests;
  wp.num_services = services;
  inst.workload = workload::make_workload(*inst.topo, wp, rng, false);
  ProblemOptions opts;
  opts.include_access_latency = access_latency;
  inst.problem = std::make_unique<CachingProblem>(
      inst.topo.get(), inst.workload.services, inst.workload.requests, opts, rng);
  for (const auto& r : inst.workload.requests) inst.demands.push_back(r.basic_demand);
  for (std::size_t i = 0; i < stations; ++i) {
    inst.theta.push_back(inst.topo->station(i).mean_unit_delay_ms);
  }
  return inst;
}

TEST(CachingProblem, InstantiationDelaysPositiveAndSpread) {
  Instance inst = make_instance(1, 15, 10);
  const auto& p = *inst.problem;
  for (std::size_t i = 0; i < p.num_stations(); ++i) {
    for (std::size_t k = 0; k < p.num_services(); ++k) {
      EXPECT_GT(p.instantiation_delay_ms(i, k), 0.0);
    }
  }
  EXPECT_GT(p.instantiation_delay_spread(), 0.0);
}

TEST(CachingProblem, AccessLatencyZeroAtHome) {
  Instance inst = make_instance(2, 15, 10);
  const auto& p = *inst.problem;
  for (std::size_t l = 0; l < p.num_requests(); ++l) {
    EXPECT_DOUBLE_EQ(p.access_latency_ms(l, p.requests()[l].home_station), 0.0);
  }
}

TEST(CachingProblem, AccessLatencyToggle) {
  Instance with = make_instance(3, 15, 10, 4, true);
  Instance without = make_instance(3, 15, 10, 4, false);
  bool any_positive = false;
  for (std::size_t l = 0; l < with.problem->num_requests(); ++l) {
    for (std::size_t i = 0; i < with.problem->num_stations(); ++i) {
      EXPECT_DOUBLE_EQ(without.problem->access_latency_ms(l, i), 0.0);
      if (with.problem->access_latency_ms(l, i) > 0.0) any_positive = true;
    }
  }
  EXPECT_TRUE(any_positive);
}

TEST(CachingProblem, RequestDelayComposition) {
  Instance inst = make_instance(4, 10, 5);
  const auto& p = *inst.problem;
  double d = p.request_delay_ms(0, 3, 10.0, 2.5);
  EXPECT_NEAR(d,
              10.0 * 2.5 + p.access_latency_ms(0, 3) + p.transmission_delay_ms(0, 10.0),
              1e-12);
  // The wireless hop is linear in the data volume.
  EXPECT_NEAR(p.transmission_delay_ms(0, 10.0), 10.0 * p.tx_unit_ms(0), 1e-12);
  EXPECT_GT(p.tx_unit_ms(0), 0.0);
}

TEST(CachingProblem, WirelessHopCanBeDisabled) {
  Instance with = make_instance(4, 10, 5);
  common::Rng rng(4);
  core::ProblemOptions opts;
  opts.include_wireless_delay = false;
  CachingProblem without(&with.problem->topology(), with.workload.services,
                         with.workload.requests, opts, rng);
  for (std::size_t l = 0; l < without.num_requests(); ++l) {
    EXPECT_DOUBLE_EQ(without.tx_unit_ms(l), 0.0);
  }
}

TEST(CachingProblem, FeasibilityCheck) {
  Instance inst = make_instance(5, 10, 5);
  EXPECT_NO_THROW(inst.problem->check_capacity_feasible(inst.demands));
  std::vector<double> huge(inst.demands.size(), 1e9);
  EXPECT_THROW(inst.problem->check_capacity_feasible(huge), common::Infeasible);
}

TEST(LpFormulation, ModelShape) {
  Instance inst = make_instance(6, 8, 6, 3);
  LpFormulation lp(*inst.problem, inst.demands, inst.theta);
  const auto& m = lp.model();
  std::size_t nr = inst.problem->num_requests();
  std::size_t ns = inst.problem->num_stations();
  std::size_t nk = inst.problem->num_services();
  EXPECT_EQ(m.num_variables(), nr * ns + nk * ns);
  // (4): nr rows, (5): ns rows, (6): nr*ns rows.
  EXPECT_EQ(m.num_constraints(), nr + ns + nr * ns);
}

TEST(LpFormulation, SolutionIsFeasibleFractional) {
  Instance inst = make_instance(7, 8, 6, 3);
  LpFormulation lp(*inst.problem, inst.demands, inst.theta);
  FractionalSolution sol = lp.solve(lp::SimplexSolver());
  std::size_t ns = inst.problem->num_stations();
  for (std::size_t l = 0; l < inst.problem->num_requests(); ++l) {
    double sum = 0.0;
    for (std::size_t i = 0; i < ns; ++i) {
      EXPECT_GE(sol.x[l][i], -1e-9);
      sum += sol.x[l][i];
    }
    EXPECT_NEAR(sum, 1.0, 1e-7);  // constraint (4)
  }
  // Constraint (6): y >= x.
  for (std::size_t l = 0; l < inst.problem->num_requests(); ++l) {
    std::size_t k = inst.problem->requests()[l].service_id;
    for (std::size_t i = 0; i < ns; ++i) {
      EXPECT_GE(sol.y[k][i] + 1e-7, sol.x[l][i]);
    }
  }
  EXPECT_GT(sol.objective, 0.0);
}

TEST(FractionalSolver, SolutionSatisfiesAssignmentAndCapacity) {
  Instance inst = make_instance(8, 20, 30);
  FractionalSolver solver(*inst.problem);
  FractionalSolution sol = solver.solve(inst.demands, inst.theta);
  std::size_t ns = inst.problem->num_stations();
  std::vector<double> load(ns, 0.0);
  for (std::size_t l = 0; l < inst.problem->num_requests(); ++l) {
    double sum = 0.0;
    for (std::size_t i = 0; i < ns; ++i) {
      EXPECT_GE(sol.x[l][i], -1e-9);
      sum += sol.x[l][i];
      load[i] += sol.x[l][i] * inst.problem->resource_demand_mhz(inst.demands[l]);
    }
    EXPECT_NEAR(sum, 1.0, 1e-6);
  }
  for (std::size_t i = 0; i < ns; ++i) {
    EXPECT_LE(load[i], inst.topo->station(i).capacity_mhz + 1e-6);
  }
}

TEST(FractionalSolver, ZeroDemandRequestsPinned) {
  Instance inst = make_instance(9, 10, 5);
  std::vector<double> demands = inst.demands;
  demands[0] = 0.0;
  FractionalSolver solver(*inst.problem);
  FractionalSolution sol = solver.solve(demands, inst.theta);
  double sum = 0.0;
  for (double v : sol.x[0]) sum += v;
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(FractionalSolver, ThrowsWhenCapacityShort) {
  Instance inst = make_instance(10, 10, 5);
  std::vector<double> demands(inst.demands.size(), 1e7);
  FractionalSolver solver(*inst.problem);
  EXPECT_THROW(solver.solve(demands, inst.theta), common::Infeasible);
}

/// Property: the flow-based solver's exact-objective evaluation is close
/// to the true LP optimum from the simplex (small gap from instantiation
/// amortization), and never meaningfully better (it solves a relaxation
/// of the same feasible x-region, scored with the true objective).
class FlowVsExactLpTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FlowVsExactLpTest, ObjectivesClose) {
  Instance inst = make_instance(GetParam(), 8, 10, 3);
  LpFormulation lp(*inst.problem, inst.demands, inst.theta);
  FractionalSolution exact = lp.solve(lp::SimplexSolver());
  FractionalSolver flow(*inst.problem);
  FractionalSolution approx = flow.solve(inst.demands, inst.theta);
  // Within 25% of the exact optimum on these deliberately tiny instances
  // (each request is a large share of its service's demand, so the
  // amortized instance pricing is at its least accurate; the gap shrinks
  // with instance size — see bench_lp_vs_flow).
  EXPECT_LE(approx.objective, exact.objective * 1.25 + 1e-6);
  // And the exact LP can only be better or equal (up to tolerance).
  EXPECT_GE(approx.objective, exact.objective - 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FlowVsExactLpTest,
                         ::testing::Range<std::uint64_t>(20, 32));

TEST(CandidateSets, ThresholdAndFallback) {
  FractionalSolution frac;
  frac.x = {{0.6, 0.4, 0.0}, {0.1, 0.15, 0.05}};
  auto candi = candidate_sets(frac, 0.25);
  ASSERT_EQ(candi.size(), 2u);
  EXPECT_EQ(candi[0], (std::vector<std::size_t>{0, 1}));
  // Row 1 never reaches γ: falls back to argmax (station 1).
  EXPECT_EQ(candi[1], (std::vector<std::size_t>{1}));
  EXPECT_THROW(candidate_sets(frac, 0.0), std::exception);
  EXPECT_THROW(candidate_sets(frac, 1.5), std::exception);
}

TEST(Rounding, ExploitOnlyPicksCandidates) {
  Instance inst = make_instance(11, 12, 15);
  FractionalSolver solver(*inst.problem);
  FractionalSolution frac = solver.solve(inst.demands, inst.theta);
  RoundingOptions opt;
  opt.gamma = 0.25;
  opt.epsilon = 0.0;  // pure exploitation
  common::Rng rng(3);
  auto candi = candidate_sets(frac, opt.gamma);
  Assignment a = round_assignment(*inst.problem, frac, inst.demands, inst.theta,
                                  opt, rng);
  ASSERT_EQ(a.station_of_request.size(), inst.problem->num_requests());
  // With ε = 0 nearly every pick is a candidate (the capacity-repair
  // pass may relocate a few under congestion).
  std::size_t in_candidate = 0;
  for (std::size_t l = 0; l < a.station_of_request.size(); ++l) {
    if (std::find(candi[l].begin(), candi[l].end(), a.station_of_request[l]) !=
        candi[l].end()) {
      ++in_candidate;
    }
  }
  EXPECT_GE(in_candidate, (4 * a.station_of_request.size()) / 5);
}

TEST(Rounding, RespectsCapacityWhenFractionalFeasible) {
  for (std::uint64_t seed : {12, 13, 14, 15}) {
    Instance inst = make_instance(seed, 10, 25);
    FractionalSolver solver(*inst.problem);
    FractionalSolution frac = solver.solve(inst.demands, inst.theta);
    RoundingOptions opt;
    common::Rng rng(seed);
    Assignment a = round_assignment(*inst.problem, frac, inst.demands,
                                    inst.theta, opt, rng);
    EXPECT_NEAR(capacity_violation(*inst.problem, a, inst.demands), 0.0, 1e-6)
        << "seed " << seed;
  }
}

TEST(Rounding, ExplorationVisitsNonCandidates) {
  Instance inst = make_instance(16, 12, 15);
  FractionalSolver solver(*inst.problem);
  FractionalSolution frac = solver.solve(inst.demands, inst.theta);
  auto candi = candidate_sets(frac, 0.25);
  RoundingOptions opt;
  opt.epsilon = 1.0;  // always explore
  common::Rng rng(5);
  Assignment a = round_assignment(*inst.problem, frac, inst.demands, inst.theta,
                                  opt, rng);
  std::size_t outside = 0;
  for (std::size_t l = 0; l < a.station_of_request.size(); ++l) {
    if (std::find(candi[l].begin(), candi[l].end(), a.station_of_request[l]) ==
        candi[l].end()) {
      ++outside;
    }
  }
  // Repair may pull a few back to candidates, but most stay outside.
  EXPECT_GT(outside, a.station_of_request.size() / 2);
}

TEST(Rounding, DerivedCachingCoversAssignments) {
  Instance inst = make_instance(17, 12, 15);
  FractionalSolver solver(*inst.problem);
  FractionalSolution frac = solver.solve(inst.demands, inst.theta);
  RoundingOptions opt;
  common::Rng rng(7);
  Assignment a = round_assignment(*inst.problem, frac, inst.demands, inst.theta,
                                  opt, rng);
  for (std::size_t l = 0; l < a.station_of_request.size(); ++l) {
    std::size_t k = inst.problem->requests()[l].service_id;
    EXPECT_TRUE(a.cached[k][a.station_of_request[l]]);
  }
}

TEST(Assignment, RealizedDelayMatchesManualComputation) {
  Instance inst = make_instance(18, 6, 4, 2);
  Assignment a;
  a.station_of_request = {0, 1, 0, 2};
  a.cached = derive_cached(*inst.problem, a.station_of_request);
  std::vector<double> delays(inst.problem->num_stations(), 2.0);
  std::vector<double> load = station_loads(*inst.problem, a, inst.demands);
  double manual = 0.0;
  for (std::size_t l = 0; l < 4; ++l) {
    std::size_t i = a.station_of_request[l];
    double cap = inst.problem->topology().station(i).capacity_mhz;
    double congestion = load[i] > cap ? load[i] / cap : 1.0;
    manual += inst.demands[l] * 2.0 * congestion +
              inst.problem->access_latency_ms(l, i) +
              inst.problem->transmission_delay_ms(l, inst.demands[l]);
  }
  for (std::size_t k = 0; k < a.cached.size(); ++k) {
    for (std::size_t i = 0; i < a.cached[k].size(); ++i) {
      if (a.cached[k][i]) manual += inst.problem->instantiation_delay_ms(i, k);
    }
  }
  manual /= 4.0;
  EXPECT_NEAR(realized_average_delay(*inst.problem, a, inst.demands, delays),
              manual, 1e-9);
}

TEST(Assignment, OverloadedStationPaysCongestionFactor) {
  Instance inst = make_instance(22, 6, 4, 2);
  // Pile everything on station 0 vs spreading; delays equal, so any
  // increase must come from the congestion factor.
  Assignment piled;
  piled.station_of_request = {0, 0, 0, 0};
  piled.cached = derive_cached(*inst.problem, piled.station_of_request);
  std::vector<double> delays(inst.problem->num_stations(), 2.0);
  std::vector<double> huge(4, 0.0);
  // Demand sized so the pile exceeds station 0's capacity 2x.
  double cap0 = inst.problem->topology().station(0).capacity_mhz;
  for (auto& d : huge) d = 2.0 * cap0 / (4.0 * inst.problem->options().c_unit_mhz);
  double piled_delay = realized_average_delay(*inst.problem, piled, huge, delays);
  // Processing share alone, without congestion, would be ρ·d each.
  double uncongested_processing = huge[0] * 2.0;
  // Each of the 4 requests pays the 2x factor on its processing term.
  double piled_processing =
      piled_delay - [&] {
        double acc = 0.0;
        for (std::size_t l = 0; l < 4; ++l) {
          acc += inst.problem->access_latency_ms(l, 0) +
                 inst.problem->transmission_delay_ms(l, huge[l]);
        }
        for (std::size_t k = 0; k < piled.cached.size(); ++k) {
          for (std::size_t i = 0; i < piled.cached[k].size(); ++i) {
            if (piled.cached[k][i]) acc += inst.problem->instantiation_delay_ms(i, k);
          }
        }
        return acc / 4.0;
      }();
  EXPECT_NEAR(piled_processing, 2.0 * uncongested_processing, 1e-6);
}

TEST(Assignment, IncrementalAccountingSubtractsReusedInstances) {
  Instance inst = make_instance(23, 6, 4, 2);
  Assignment a;
  a.station_of_request = {0, 1, 0, 2};
  a.cached = derive_cached(*inst.problem, a.station_of_request);
  std::vector<double> delays(inst.problem->num_stations(), 2.0);

  double full = realized_average_delay(*inst.problem, a, inst.demands, delays);
  // No previous slot: identical to the Eq. 3 accounting.
  EXPECT_DOUBLE_EQ(
      realized_average_delay_incremental(*inst.problem, a, {}, inst.demands, delays),
      full);
  // Same caching as last slot: every instantiation delay is subtracted.
  double inc = realized_average_delay_incremental(*inst.problem, a, a.cached,
                                                  inst.demands, delays);
  double inst_share = 0.0;
  for (std::size_t k = 0; k < a.cached.size(); ++k) {
    for (std::size_t i = 0; i < a.cached[k].size(); ++i) {
      if (a.cached[k][i]) inst_share += inst.problem->instantiation_delay_ms(i, k);
    }
  }
  EXPECT_NEAR(inc, full - inst_share / 4.0, 1e-9);
  // Disjoint previous caching: nothing reused, full price.
  std::vector<std::vector<bool>> other(a.cached.size(),
                                       std::vector<bool>(a.cached[0].size(), false));
  EXPECT_DOUBLE_EQ(realized_average_delay_incremental(*inst.problem, a, other,
                                                      inst.demands, delays),
                   full);
}

TEST(BanditState, EmpiricalMeanAndCounts) {
  BanditState b(3, 10.0);
  EXPECT_DOUBLE_EQ(b.theta(0), 10.0);  // prior
  b.observe(0, 4.0);
  EXPECT_DOUBLE_EQ(b.theta(0), 4.0);  // prior dropped on first obs
  b.observe(0, 8.0);
  EXPECT_DOUBLE_EQ(b.theta(0), 6.0);
  EXPECT_EQ(b.plays(0), 2u);
  EXPECT_EQ(b.plays(1), 0u);
  EXPECT_EQ(b.total_plays(), 2u);
  EXPECT_NEAR(b.coverage(), 1.0 / 3.0, 1e-12);
  EXPECT_THROW(b.observe(5, 1.0), std::exception);
  EXPECT_THROW(b.observe(1, -1.0), std::exception);
}

TEST(EpsilonSchedule, FixedDecayZero) {
  auto fixed = EpsilonSchedule::fixed(0.25);
  EXPECT_DOUBLE_EQ(fixed.at(0), 0.25);
  EXPECT_DOUBLE_EQ(fixed.at(1000), 0.25);
  auto decay = EpsilonSchedule::decay(0.5);
  EXPECT_DOUBLE_EQ(decay.at(0), 0.5);  // min(1, 0.5/1)
  EXPECT_DOUBLE_EQ(decay.at(4), 0.1);  // 0.5/5
  auto zero = EpsilonSchedule::zero();
  EXPECT_DOUBLE_EQ(zero.at(0), 0.0);
  EXPECT_THROW(EpsilonSchedule::fixed(1.5), std::exception);
  EXPECT_THROW(EpsilonSchedule::decay(0.0), std::exception);
}

TEST(Theory, Lemma1SigmaCases) {
  // Case 1 dominates for wide delay ranges.
  double s = theory::lemma1_sigma(10, 50.0, 5.0, 3.0, 0.25);
  EXPECT_NEAR(s, 10.0 * (50.0 - 0.25 * 5.0 + 3.0), 1e-9);
  // Monotone in |R|.
  EXPECT_LT(theory::lemma1_sigma(5, 50.0, 5.0, 3.0, 0.25), s);
  EXPECT_THROW(theory::lemma1_sigma(0, 1.0, 0.0, 0.0, 0.5), std::exception);
  EXPECT_THROW(theory::lemma1_sigma(5, 1.0, 2.0, 0.0, 0.5), std::exception);
}

TEST(Theory, Theorem1BoundShape) {
  double sigma = 100.0;
  double b100 = theory::theorem1_bound(sigma, 100, 0.5);
  double b1000 = theory::theorem1_bound(sigma, 1000, 0.5);
  EXPECT_GT(b100, 0.0);
  EXPECT_GT(b1000, b100);
  // Logarithmic growth: the increment from 10x horizon is about
  // sigma*ln(10).
  EXPECT_NEAR(b1000 - b100, sigma * std::log(10.0), sigma * 0.05);
  EXPECT_DOUBLE_EQ(theory::theorem1_bound(sigma, 1, 0.5), 0.0);
  EXPECT_THROW(theory::theorem1_bound(sigma, 100, 1.5), std::exception);
}

TEST(RegretTracker, NonNegativeAndCumulative) {
  Instance inst = make_instance(19, 10, 8);
  RegretTracker tracker(*inst.problem);
  std::vector<double> delays(inst.problem->num_stations(), 3.0);
  tracker.record(100.0, inst.demands, delays);
  tracker.record(200.0, inst.demands, delays);
  EXPECT_EQ(tracker.slots(), 2u);
  EXPECT_GE(tracker.per_slot_regret()[0], 0.0);
  auto series = tracker.cumulative_series();
  ASSERT_EQ(series.size(), 2u);
  EXPECT_NEAR(series[1], tracker.cumulative_regret(), 1e-9);
  EXPECT_GE(series[1], series[0]);
}

TEST(RegretTracker, OptimalPolicyHasNearZeroRegret) {
  Instance inst = make_instance(21, 10, 8);
  RegretTracker tracker(*inst.problem);
  std::vector<double> delays(inst.problem->num_stations(), 3.0);
  FractionalSolver solver(*inst.problem);
  FractionalSolution opt = solver.solve(inst.demands, delays);
  tracker.record(opt.objective, inst.demands, delays);
  EXPECT_NEAR(tracker.cumulative_regret(), 0.0, 1e-6);
}

}  // namespace
}  // namespace mecsc::core
