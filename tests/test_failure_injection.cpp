// Failure injection and degenerate-input tests: the library must fail
// loudly on broken inputs and keep working at the edges of its domain
// (single station, zero bursty demand, delay spikes, tiny GANs, ...).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <memory>
#include <utility>
#include <vector>

#include "algorithms/baselines.h"
#include "algorithms/ol_gd.h"
#include "common/error.h"
#include "core/fractional_solver.h"
#include "core/lp_formulation.h"
#include "fault/fault_injector.h"
#include "fault/fault_plan.h"
#include "gan/info_rnn_gan.h"
#include "net/delay_process.h"
#include "net/generators.h"
#include "predict/gan_predictor.h"
#include "sim/replication.h"
#include "sim/scenario.h"

namespace mecsc {
namespace {

// ---------------------------------------------------------------------
// Loud failures on broken inputs.
// ---------------------------------------------------------------------

TEST(FailureInjection, ScenarioRejectsZeroHorizon) {
  sim::ScenarioParams p;
  p.horizon = 0;
  EXPECT_THROW(sim::Scenario{p}, common::InvalidArgument);
}

TEST(FailureInjection, ScenarioDeratesOverloadedWorkload) {
  // 400 requests on 5 stations cannot fit at the default C_unit; the
  // scenario derates C_unit deterministically instead of failing, and
  // says so.
  sim::ScenarioParams p;
  p.num_stations = 5;
  p.horizon = 4;
  p.workload.num_requests = 400;
  p.seed = 3;
  sim::Scenario s(p);
  EXPECT_TRUE(s.c_unit_derated());
  EXPECT_LT(s.problem().options().c_unit_mhz, p.problem.c_unit_mhz);
  // And the derated instance really is feasible on every slot.
  for (std::size_t t = 0; t < p.horizon; ++t) {
    EXPECT_NO_THROW(s.problem().check_capacity_feasible(s.demands().slot(t)));
  }
}

TEST(FailureInjection, ScenarioKeepsRequestedCUnitWhenFeasible) {
  sim::ScenarioParams p;
  p.num_stations = 40;
  p.horizon = 4;
  p.workload.num_requests = 10;
  p.seed = 5;
  sim::Scenario s(p);
  EXPECT_FALSE(s.c_unit_derated());
  EXPECT_DOUBLE_EQ(s.problem().options().c_unit_mhz, p.problem.c_unit_mhz);
}

TEST(FailureInjection, ProblemRejectsForeignRequests) {
  common::Rng rng(1);
  net::GtItmParams gp;
  gp.num_stations = 5;
  net::Topology topo = net::generate_gtitm_like(gp, rng);
  workload::WorkloadParams wp;
  wp.num_requests = 3;
  workload::Workload w = workload::make_workload(topo, wp, rng, false);
  w.requests[0].service_id = 99;  // unknown service
  EXPECT_THROW(core::CachingProblem(&topo, w.services, w.requests,
                                    core::ProblemOptions{}, rng),
               common::InvalidArgument);
}

TEST(FailureInjection, ProblemRejectsBadOptions) {
  common::Rng rng(2);
  net::GtItmParams gp;
  gp.num_stations = 5;
  net::Topology topo = net::generate_gtitm_like(gp, rng);
  workload::WorkloadParams wp;
  wp.num_requests = 3;
  workload::Workload w = workload::make_workload(topo, wp, rng, false);
  core::ProblemOptions bad;
  bad.c_unit_mhz = 0.0;
  EXPECT_THROW(core::CachingProblem(&topo, w.services, w.requests, bad, rng),
               common::InvalidArgument);
}

TEST(FailureInjection, OlGdRejectsMismatchedDemandMatrix) {
  sim::ScenarioParams p;
  p.num_stations = 10;
  p.horizon = 4;
  p.workload.num_requests = 8;
  p.seed = 5;
  sim::Scenario s(p);
  workload::DemandMatrix wrong(3, 4);  // wrong request count
  EXPECT_THROW(algorithms::OnlineCachingAlgorithm("x", s.problem(), &wrong,
                                                  algorithms::OlOptions{}, 1),
               common::InvalidArgument);
}

TEST(FailureInjection, BaselinesRejectWrongEstimateCount) {
  sim::ScenarioParams p;
  p.num_stations = 10;
  p.horizon = 4;
  p.workload.num_requests = 8;
  p.seed = 7;
  sim::Scenario s(p);
  EXPECT_THROW(
      algorithms::make_greedy_gd(s.problem(), s.demands(), {1.0, 2.0}),
      common::InvalidArgument);
  std::vector<double> negative(10, -1.0);
  EXPECT_THROW(algorithms::make_pri_gd(s.problem(), s.demands(), negative),
               common::InvalidArgument);
}

TEST(FailureInjection, GanPredictorRejectsForeignCluster) {
  sim::ScenarioParams p;
  p.num_stations = 10;
  p.horizon = 4;
  p.bursty = true;
  p.workload.num_requests = 8;
  p.workload.num_clusters = 4;
  p.seed = 9;
  sim::Scenario s(p);
  auto requests = s.workload().requests;
  requests[0].location_cluster = 99;
  predict::GanPredictorOptions o;
  o.train_steps = 1;
  EXPECT_THROW(predict::GanDemandPredictor(requests, s.trace(), o, 1),
               common::InvalidArgument);
}

// ---------------------------------------------------------------------
// Degenerate-but-legal domains keep working.
// ---------------------------------------------------------------------

TEST(EdgeCases, SingleRequestSingleService) {
  sim::ScenarioParams p;
  p.num_stations = 6;
  p.horizon = 5;
  p.workload.num_requests = 1;
  p.workload.num_services = 1;
  p.workload.num_clusters = 1;
  p.seed = 11;
  sim::Scenario s(p);
  algorithms::OlOptions opt;
  auto algo = algorithms::make_ol_gd(s.problem(), s.demands(), opt, 1);
  sim::RunResult r = s.simulator().run(*algo);
  EXPECT_EQ(r.slots.size(), 5u);
  for (const auto& rec : r.slots) EXPECT_GT(rec.avg_delay_ms, 0.0);
}

TEST(EdgeCases, TwoStationNetwork) {
  common::Rng rng(13);
  net::GtItmParams gp;
  gp.num_stations = 2;
  net::Topology topo = net::generate_gtitm_like(gp, rng);
  EXPECT_TRUE(topo.is_connected());
  workload::WorkloadParams wp;
  wp.num_requests = 2;
  wp.num_services = 1;
  workload::Workload w = workload::make_workload(topo, wp, rng, false);
  core::ProblemOptions po;
  po.c_unit_mhz = 5.0;  // keep two requests inside two stations
  core::CachingProblem problem(&topo, w.services, w.requests, po, rng);
  core::FractionalSolver solver(problem);
  std::vector<double> demands{w.requests[0].basic_demand,
                              w.requests[1].basic_demand};
  std::vector<double> theta{10.0, 20.0};
  core::FractionalSolution sol = solver.solve(demands, theta);
  EXPECT_GT(sol.objective, 0.0);
}

TEST(EdgeCases, ZeroDemandSlotCostsOnlyInstantiation) {
  sim::ScenarioParams p;
  p.num_stations = 8;
  p.horizon = 3;
  p.workload.num_requests = 5;
  p.seed = 17;
  sim::Scenario s(p);
  core::FractionalSolver solver(s.problem());
  std::vector<double> zero(5, 0.0);
  std::vector<double> theta(8, 10.0);
  core::FractionalSolution sol = solver.solve(zero, theta);
  // All processing terms vanish; objective is access + instantiation only.
  EXPECT_GE(sol.objective, 0.0);
  for (std::size_t l = 0; l < 5; ++l) {
    double sum = 0.0;
    for (double v : sol.x[l]) sum += v;
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST(EdgeCases, DelaySpikesDoNotBreakLearning) {
  // A spiky delay process (rare 3x congestion spikes) must not crash the
  // pipeline nor produce non-finite estimates.
  sim::ScenarioParams p;
  p.num_stations = 15;
  p.horizon = 20;
  p.workload.num_requests = 15;
  p.delay_kind = net::DelayModelKind::kSpiky;
  p.seed = 19;
  sim::Scenario s(p);
  algorithms::OlOptions opt;
  algorithms::OnlineCachingAlgorithm algo("OL_GD", s.problem(), &s.demands(),
                                          opt, 3);
  sim::RunResult r = s.simulator().run(algo);
  for (const auto& rec : r.slots) {
    EXPECT_TRUE(std::isfinite(rec.avg_delay_ms));
  }
  for (std::size_t i = 0; i < s.problem().num_stations(); ++i) {
    EXPECT_TRUE(std::isfinite(algo.bandit().theta(i)));
    EXPECT_GE(algo.bandit().theta(i), 0.0);
  }
}

TEST(EdgeCases, Ar1DelayScenarioRuns) {
  sim::ScenarioParams p;
  p.num_stations = 12;
  p.horizon = 10;
  p.workload.num_requests = 10;
  p.delay_kind = net::DelayModelKind::kAr1;
  p.seed = 23;
  sim::Scenario s(p);
  algorithms::OlOptions opt;
  auto algo = algorithms::make_ol_gd(s.problem(), s.demands(), opt, 1);
  EXPECT_EQ(s.simulator().run(*algo).slots.size(), 10u);
}

TEST(EdgeCases, GanWithMinimalDimensions) {
  gan::InfoRnnGanConfig c;
  c.noise_dim = 1;
  c.num_codes = 1;
  c.hidden = 2;
  c.seq_len = 2;
  c.batch_size = 1;
  gan::InfoRnnGan g(c, 1);
  std::vector<std::vector<double>> series{{0.1, 0.2, 0.3, 0.4, 0.5}};
  EXPECT_NO_THROW(g.train(series, 3));
  double pred = g.predict_next({0.3, 0.4}, 0);
  EXPECT_GE(pred, 0.0);
  EXPECT_LE(pred, 1.0);
}

TEST(EdgeCases, ExactLpPathOnTinyScenario) {
  sim::ScenarioParams p;
  p.num_stations = 6;
  p.horizon = 3;
  p.workload.num_requests = 5;
  p.seed = 29;
  sim::Scenario s(p);
  algorithms::OlOptions opt;
  opt.use_exact_lp = true;
  auto algo = algorithms::make_ol_gd(s.problem(), s.demands(), opt, 1);
  sim::RunResult r = s.simulator().run(*algo);
  EXPECT_EQ(r.slots.size(), 3u);
  for (const auto& rec : r.slots) {
    EXPECT_NEAR(rec.capacity_violation_mhz, 0.0, 1e-6);
  }
}

TEST(EdgeCases, HistoryFreeScenarioStillProvidesTrace) {
  sim::ScenarioParams p;
  p.num_stations = 10;
  p.horizon = 5;
  p.history_horizon = 0;  // degenerate: no past period
  p.workload.num_requests = 8;
  p.seed = 31;
  sim::Scenario s(p);
  EXPECT_GE(s.trace().rows().size(), 1u);
  EXPECT_EQ(s.trace().horizon(), 1u);
}

TEST(EdgeCases, PerSlotCoinVariantRuns) {
  sim::ScenarioParams p;
  p.num_stations = 12;
  p.horizon = 12;
  p.workload.num_requests = 10;
  p.seed = 37;
  sim::Scenario s(p);
  algorithms::OlOptions opt;
  opt.per_slot_coin = true;
  opt.epsilon = core::EpsilonSchedule::fixed(0.5);
  auto algo = algorithms::make_ol_gd(s.problem(), s.demands(), opt, 1);
  sim::RunResult r = s.simulator().run(*algo);
  EXPECT_EQ(r.slots.size(), 12u);
}

TEST(EdgeCases, FlatPriorVariantRuns) {
  sim::ScenarioParams p;
  p.num_stations = 12;
  p.horizon = 8;
  p.workload.num_requests = 10;
  p.seed = 41;
  sim::Scenario s(p);
  algorithms::OlOptions opt;
  opt.tier_priors = false;
  opt.theta_prior = s.theta_prior();
  auto algo = algorithms::make_ol_gd(s.problem(), s.demands(), opt, 1);
  EXPECT_EQ(s.simulator().run(*algo).slots.size(), 8u);
}

// ---------------------------------------------------------------------
// Fault injection (DESIGN.md §9): deterministic plans, graceful
// degradation mid-run, post-outage recovery.
// ---------------------------------------------------------------------

/// Churn aggressive enough that a 40-slot, ~15-station run sees real
/// outages (the library defaults are tuned for 100x100 runs).
fault::FaultOptions aggressive_churn() {
  fault::FaultOptions f;
  f.mode = fault::FaultMode::kChurn;
  f.macro = {40.0, 3.0};
  f.micro = {20.0, 4.0};
  f.femto = {10.0, 5.0};
  return f;
}

sim::ScenarioParams churn_params(std::uint64_t seed) {
  sim::ScenarioParams p;
  p.num_stations = 15;
  p.horizon = 40;
  p.workload.num_requests = 12;
  p.seed = seed;
  p.fault = aggressive_churn();
  return p;
}

TEST(FaultInjection, PlanIsDeterministic) {
  common::Rng rng(43);
  net::GtItmParams gp;
  gp.num_stations = 12;
  net::Topology topo = net::generate_gtitm_like(gp, rng);
  fault::FaultOptions f = aggressive_churn();
  fault::FaultPlan a = fault::FaultPlan::generate(topo, 50, f, 7);
  fault::FaultPlan b = fault::FaultPlan::generate(topo, 50, f, 7);
  ASSERT_EQ(a.horizon(), b.horizon());
  for (std::size_t t = 0; t < a.horizon(); ++t) {
    EXPECT_EQ(a.slot(t).station_up, b.slot(t).station_up);
    EXPECT_EQ(a.slot(t).capacity_factor, b.slot(t).capacity_factor);
    EXPECT_EQ(a.slot(t).feedback_lost, b.slot(t).feedback_lost);
    EXPECT_EQ(a.slot(t).cluster_multiplier, b.slot(t).cluster_multiplier);
  }
  EXPECT_GT(a.total_outage_slots(), 0u);
}

TEST(FaultInjection, PlanKeepsOneStationUpEvenUnderBrutalChurn) {
  common::Rng rng(44);
  net::GtItmParams gp;
  gp.num_stations = 8;
  net::Topology topo = net::generate_gtitm_like(gp, rng);
  fault::FaultOptions f;
  f.mode = fault::FaultMode::kChurn;
  f.macro = f.micro = f.femto = {1.0, 50.0};  // nearly always down
  fault::FaultPlan plan = fault::FaultPlan::generate(topo, 60, f, 11);
  EXPECT_LT(plan.availability(), 0.5);
  for (std::size_t t = 0; t < plan.horizon(); ++t) {
    bool any_up = false;
    for (char c : plan.slot(t).station_up) any_up |= (c != 0);
    EXPECT_TRUE(any_up) << "slot " << t << " lost every station";
  }
}

TEST(FaultInjection, PlanRespectsFaultWindow) {
  common::Rng rng(45);
  net::GtItmParams gp;
  gp.num_stations = 10;
  net::Topology topo = net::generate_gtitm_like(gp, rng);
  fault::FaultOptions f = aggressive_churn();
  f.feedback_loss_probability = 0.5;
  f.first_fault_slot = 10;
  f.last_fault_slot = 19;
  fault::FaultPlan plan = fault::FaultPlan::generate(topo, 40, f, 13);
  for (std::size_t t = 0; t < 40; ++t) {
    if (t >= 10 && t <= 19) continue;
    for (std::size_t i = 0; i < 10; ++i) {
      EXPECT_NE(plan.slot(t).station_up[i], 0) << "outage outside window";
      EXPECT_EQ(plan.slot(t).feedback_lost[i], 0) << "censoring outside window";
    }
  }
}

TEST(FaultInjection, ChurnRunSurvivesWithPartialShedding) {
  sim::Scenario s(churn_params(101));
  ASSERT_NE(s.fault_injector(), nullptr);
  EXPECT_GT(s.fault_injector()->plan().total_outage_slots(), 0u);

  algorithms::OlOptions opt;
  opt.theta_prior = s.theta_prior();
  auto algo = algorithms::make_ol_gd(s.problem(), s.demands(), opt,
                                     s.algorithm_seed(0));
  sim::RunResult r = s.simulator().run(*algo);
  ASSERT_EQ(r.slots.size(), 40u);
  std::size_t outage_slots = 0, shed = 0;
  for (const auto& rec : r.slots) {
    EXPECT_TRUE(std::isfinite(rec.avg_delay_ms));
    outage_slots += rec.fault_active_outages > 0 ? 1 : 0;
    shed += rec.fault_shed_requests;
  }
  EXPECT_GT(outage_slots, 0u);
  // Admission control must never shed the whole workload.
  EXPECT_LT(shed, 12u * 40u);
  // Effective capacities are restored after the run.
  for (std::size_t i = 0; i < s.problem().num_stations(); ++i) {
    EXPECT_DOUBLE_EQ(s.problem().station_capacity_mhz(i),
                     s.topology().station(i).capacity_mhz);
  }
}

TEST(FaultInjection, PostOutageDelayRecovers) {
  // A churn run whose fault window closes mid-horizon must return to
  // within 5% of its no-fault twin's delay over the fault-free tail
  // (same topology / workload / delay sample paths by construction).
  sim::ScenarioParams off = churn_params(202);
  off.horizon = 48;
  off.fault.mode = fault::FaultMode::kOff;
  sim::ScenarioParams churn = churn_params(202);
  churn.horizon = 48;
  churn.fault.last_fault_slot = 24;

  auto run_olgd = [](const sim::ScenarioParams& p) {
    sim::Scenario s(p);
    algorithms::OlOptions opt;
    opt.theta_prior = s.theta_prior();
    auto algo = algorithms::make_ol_gd(s.problem(), s.demands(), opt,
                                       s.algorithm_seed(0));
    return s.simulator().run(*algo);
  };
  sim::RunResult base = run_olgd(off);
  sim::RunResult faulted = run_olgd(churn);

  // The fault window really bit (outages happened)...
  std::size_t outages = 0;
  for (const auto& rec : faulted.slots) outages += rec.fault_active_outages;
  EXPECT_GT(outages, 0u);
  // ...and the tail after it is clean and recovered.
  for (std::size_t t = 25; t < faulted.slots.size(); ++t) {
    EXPECT_EQ(faulted.slots[t].fault_active_outages, 0u);
  }
  const double base_tail = base.tail_mean_delay_ms(8);
  const double fault_tail = faulted.tail_mean_delay_ms(8);
  EXPECT_NEAR(fault_tail, base_tail, 0.05 * base_tail)
      << "post-outage delay did not recover";
}

TEST(FaultInjection, FullyCensoredFeedbackTolerated) {
  // Every d_i(t) observation lost for the whole run: the bandit must
  // simply keep its priors (finite thetas), not corrupt or crash.
  sim::ScenarioParams p = churn_params(303);
  p.fault.macro = p.fault.micro = p.fault.femto = {0.0, 0.0};  // no outages
  p.fault.derate_probability = 0.0;
  p.fault.flash_crowd_probability = 0.0;
  p.fault.feedback_loss_probability = 1.0;
  sim::Scenario s(p);
  algorithms::OlOptions opt;
  opt.theta_prior = s.theta_prior();
  algorithms::OnlineCachingAlgorithm algo("OL_GD", s.problem(), &s.demands(),
                                          opt, s.algorithm_seed(0));
  sim::RunResult r = s.simulator().run(algo);
  std::size_t censored = 0;
  for (const auto& rec : r.slots) {
    EXPECT_TRUE(std::isfinite(rec.avg_delay_ms));
    censored += rec.fault_censored_feedback;
  }
  EXPECT_EQ(censored, 15u * 40u);  // every station, every slot
  for (std::size_t i = 0; i < s.problem().num_stations(); ++i) {
    EXPECT_TRUE(std::isfinite(algo.bandit().theta(i)));
  }
}

TEST(FaultInjection, RegretStaysBoundedUnderChurn) {
  sim::ScenarioParams p = churn_params(404);
  p.track_regret = true;
  sim::Scenario s(p);
  algorithms::OlOptions opt;
  opt.theta_prior = s.theta_prior();
  auto algo = algorithms::make_ol_gd(s.problem(), s.demands(), opt,
                                     s.algorithm_seed(0));
  sim::RunResult r = s.simulator().run(*algo);
  ASSERT_EQ(r.cumulative_regret.size(), 40u);
  for (std::size_t t = 0; t < r.cumulative_regret.size(); ++t) {
    EXPECT_TRUE(std::isfinite(r.cumulative_regret[t]));
  }
  // Mean per-slot regret stays below the largest possible per-slot gap
  // (the delay range plus the outage surcharge is a loose cap; what this
  // really guards is regret blowing up when the oracle degrades too).
  const double per_slot = r.cumulative_regret.back() / 40.0;
  EXPECT_LT(per_slot, s.d_max() * p.fault.outage_penalty_factor);
}

TEST(FaultInjection, LpFallbackChainEngages) {
  // A 1-pivot iteration budget starves the warm-started primary solve;
  // the chain must fall back (Bland restart, then degraded flow) and
  // still finish the run with finite delays.
  sim::ScenarioParams p = churn_params(505);
  p.num_stations = 8;
  p.workload.num_requests = 6;
  p.horizon = 10;
  sim::Scenario s(p);
  algorithms::OlOptions opt;
  opt.theta_prior = s.theta_prior();
  opt.use_exact_lp = true;
  opt.lp_max_iterations = 1;
  algorithms::OnlineCachingAlgorithm algo("OL_GD", s.problem(), &s.demands(),
                                          opt, s.algorithm_seed(0));
  sim::RunResult r = s.simulator().run(algo);
  ASSERT_EQ(r.slots.size(), 10u);
  for (const auto& rec : r.slots) EXPECT_TRUE(std::isfinite(rec.avg_delay_ms));
  EXPECT_GE(algo.last_fallback_depth(), 1);
}

TEST(FaultInjection, DegradedSolveKeepsAssignmentsComplete) {
  // On a capacity-short instance solve() stays loud (Infeasible), while
  // solve_degraded() reports the shortfall and still returns a complete
  // assignment (sum_i x_li = 1 for every request).
  sim::ScenarioParams p;
  p.num_stations = 10;
  p.horizon = 3;
  p.workload.num_requests = 6;
  p.seed = 606;
  sim::Scenario s(p);
  core::FractionalSolver solver(s.problem());
  std::vector<double> demands(6, 1e7);
  std::vector<double> theta(10, s.theta_prior());
  EXPECT_THROW(solver.solve(demands, theta), common::Infeasible);

  core::SolveReport report;
  core::FractionalSolution sol = solver.solve_degraded(demands, theta, &report);
  EXPECT_TRUE(report.degraded);
  EXPECT_GT(report.unrouted_mhz, 0.0);
  for (std::size_t l = 0; l < 6; ++l) {
    double sum = 0.0;
    for (double v : sol.x[l]) sum += v;
    EXPECT_NEAR(sum, 1.0, 1e-6);
  }
}

TEST(FaultInjection, FaultRunsBitwiseIdenticalAcrossWorkers) {
  // Replicated churn runs must merge to identical doubles whether the
  // bodies run sequentially or on a pool: the plan is pre-materialised
  // from the scenario seed, so worker scheduling can't perturb it.
  auto run_reps = [](const char* workers) {
    setenv("MECSC_WORKERS", workers, 1);
    std::vector<double> out;
    sim::run_replications(
        3,
        [](std::size_t rep) {
          sim::Scenario s(churn_params(900 + rep));
          algorithms::OlOptions opt;
          opt.theta_prior = s.theta_prior();
          auto algo = algorithms::make_ol_gd(s.problem(), s.demands(), opt,
                                             s.algorithm_seed(0));
          sim::RunResult r = s.simulator().run(*algo);
          double shed = 0.0;
          for (const auto& rec : r.slots) {
            shed += static_cast<double>(rec.fault_shed_requests);
          }
          return std::pair<double, double>(r.mean_delay_ms(), shed);
        },
        [&](std::size_t, std::pair<double, double>& v) {
          out.push_back(v.first);
          out.push_back(v.second);
        });
    unsetenv("MECSC_WORKERS");
    return out;
  };
  std::vector<double> seq = run_reps("1");
  std::vector<double> par = run_reps("3");
  ASSERT_EQ(seq.size(), par.size());
  for (std::size_t i = 0; i < seq.size(); ++i) {
    EXPECT_EQ(seq[i], par[i]) << "value " << i << " diverged under parallelism";
  }
}

}  // namespace
}  // namespace mecsc
