// Failure injection and degenerate-input tests: the library must fail
// loudly on broken inputs and keep working at the edges of its domain
// (single station, zero bursty demand, delay spikes, tiny GANs, ...).
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "algorithms/baselines.h"
#include "algorithms/ol_gd.h"
#include "common/error.h"
#include "core/fractional_solver.h"
#include "core/lp_formulation.h"
#include "gan/info_rnn_gan.h"
#include "net/delay_process.h"
#include "net/generators.h"
#include "predict/gan_predictor.h"
#include "sim/scenario.h"

namespace mecsc {
namespace {

// ---------------------------------------------------------------------
// Loud failures on broken inputs.
// ---------------------------------------------------------------------

TEST(FailureInjection, ScenarioRejectsZeroHorizon) {
  sim::ScenarioParams p;
  p.horizon = 0;
  EXPECT_THROW(sim::Scenario{p}, common::InvalidArgument);
}

TEST(FailureInjection, ScenarioDeratesOverloadedWorkload) {
  // 400 requests on 5 stations cannot fit at the default C_unit; the
  // scenario derates C_unit deterministically instead of failing, and
  // says so.
  sim::ScenarioParams p;
  p.num_stations = 5;
  p.horizon = 4;
  p.workload.num_requests = 400;
  p.seed = 3;
  sim::Scenario s(p);
  EXPECT_TRUE(s.c_unit_derated());
  EXPECT_LT(s.problem().options().c_unit_mhz, p.problem.c_unit_mhz);
  // And the derated instance really is feasible on every slot.
  for (std::size_t t = 0; t < p.horizon; ++t) {
    EXPECT_NO_THROW(s.problem().check_capacity_feasible(s.demands().slot(t)));
  }
}

TEST(FailureInjection, ScenarioKeepsRequestedCUnitWhenFeasible) {
  sim::ScenarioParams p;
  p.num_stations = 40;
  p.horizon = 4;
  p.workload.num_requests = 10;
  p.seed = 5;
  sim::Scenario s(p);
  EXPECT_FALSE(s.c_unit_derated());
  EXPECT_DOUBLE_EQ(s.problem().options().c_unit_mhz, p.problem.c_unit_mhz);
}

TEST(FailureInjection, ProblemRejectsForeignRequests) {
  common::Rng rng(1);
  net::GtItmParams gp;
  gp.num_stations = 5;
  net::Topology topo = net::generate_gtitm_like(gp, rng);
  workload::WorkloadParams wp;
  wp.num_requests = 3;
  workload::Workload w = workload::make_workload(topo, wp, rng, false);
  w.requests[0].service_id = 99;  // unknown service
  EXPECT_THROW(core::CachingProblem(&topo, w.services, w.requests,
                                    core::ProblemOptions{}, rng),
               common::InvalidArgument);
}

TEST(FailureInjection, ProblemRejectsBadOptions) {
  common::Rng rng(2);
  net::GtItmParams gp;
  gp.num_stations = 5;
  net::Topology topo = net::generate_gtitm_like(gp, rng);
  workload::WorkloadParams wp;
  wp.num_requests = 3;
  workload::Workload w = workload::make_workload(topo, wp, rng, false);
  core::ProblemOptions bad;
  bad.c_unit_mhz = 0.0;
  EXPECT_THROW(core::CachingProblem(&topo, w.services, w.requests, bad, rng),
               common::InvalidArgument);
}

TEST(FailureInjection, OlGdRejectsMismatchedDemandMatrix) {
  sim::ScenarioParams p;
  p.num_stations = 10;
  p.horizon = 4;
  p.workload.num_requests = 8;
  p.seed = 5;
  sim::Scenario s(p);
  workload::DemandMatrix wrong(3, 4);  // wrong request count
  EXPECT_THROW(algorithms::OnlineCachingAlgorithm("x", s.problem(), &wrong,
                                                  algorithms::OlOptions{}, 1),
               common::InvalidArgument);
}

TEST(FailureInjection, BaselinesRejectWrongEstimateCount) {
  sim::ScenarioParams p;
  p.num_stations = 10;
  p.horizon = 4;
  p.workload.num_requests = 8;
  p.seed = 7;
  sim::Scenario s(p);
  EXPECT_THROW(
      algorithms::make_greedy_gd(s.problem(), s.demands(), {1.0, 2.0}),
      common::InvalidArgument);
  std::vector<double> negative(10, -1.0);
  EXPECT_THROW(algorithms::make_pri_gd(s.problem(), s.demands(), negative),
               common::InvalidArgument);
}

TEST(FailureInjection, GanPredictorRejectsForeignCluster) {
  sim::ScenarioParams p;
  p.num_stations = 10;
  p.horizon = 4;
  p.bursty = true;
  p.workload.num_requests = 8;
  p.workload.num_clusters = 4;
  p.seed = 9;
  sim::Scenario s(p);
  auto requests = s.workload().requests;
  requests[0].location_cluster = 99;
  predict::GanPredictorOptions o;
  o.train_steps = 1;
  EXPECT_THROW(predict::GanDemandPredictor(requests, s.trace(), o, 1),
               common::InvalidArgument);
}

// ---------------------------------------------------------------------
// Degenerate-but-legal domains keep working.
// ---------------------------------------------------------------------

TEST(EdgeCases, SingleRequestSingleService) {
  sim::ScenarioParams p;
  p.num_stations = 6;
  p.horizon = 5;
  p.workload.num_requests = 1;
  p.workload.num_services = 1;
  p.workload.num_clusters = 1;
  p.seed = 11;
  sim::Scenario s(p);
  algorithms::OlOptions opt;
  auto algo = algorithms::make_ol_gd(s.problem(), s.demands(), opt, 1);
  sim::RunResult r = s.simulator().run(*algo);
  EXPECT_EQ(r.slots.size(), 5u);
  for (const auto& rec : r.slots) EXPECT_GT(rec.avg_delay_ms, 0.0);
}

TEST(EdgeCases, TwoStationNetwork) {
  common::Rng rng(13);
  net::GtItmParams gp;
  gp.num_stations = 2;
  net::Topology topo = net::generate_gtitm_like(gp, rng);
  EXPECT_TRUE(topo.is_connected());
  workload::WorkloadParams wp;
  wp.num_requests = 2;
  wp.num_services = 1;
  workload::Workload w = workload::make_workload(topo, wp, rng, false);
  core::ProblemOptions po;
  po.c_unit_mhz = 5.0;  // keep two requests inside two stations
  core::CachingProblem problem(&topo, w.services, w.requests, po, rng);
  core::FractionalSolver solver(problem);
  std::vector<double> demands{w.requests[0].basic_demand,
                              w.requests[1].basic_demand};
  std::vector<double> theta{10.0, 20.0};
  core::FractionalSolution sol = solver.solve(demands, theta);
  EXPECT_GT(sol.objective, 0.0);
}

TEST(EdgeCases, ZeroDemandSlotCostsOnlyInstantiation) {
  sim::ScenarioParams p;
  p.num_stations = 8;
  p.horizon = 3;
  p.workload.num_requests = 5;
  p.seed = 17;
  sim::Scenario s(p);
  core::FractionalSolver solver(s.problem());
  std::vector<double> zero(5, 0.0);
  std::vector<double> theta(8, 10.0);
  core::FractionalSolution sol = solver.solve(zero, theta);
  // All processing terms vanish; objective is access + instantiation only.
  EXPECT_GE(sol.objective, 0.0);
  for (std::size_t l = 0; l < 5; ++l) {
    double sum = 0.0;
    for (double v : sol.x[l]) sum += v;
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST(EdgeCases, DelaySpikesDoNotBreakLearning) {
  // A spiky delay process (rare 3x congestion spikes) must not crash the
  // pipeline nor produce non-finite estimates.
  sim::ScenarioParams p;
  p.num_stations = 15;
  p.horizon = 20;
  p.workload.num_requests = 15;
  p.delay_kind = net::DelayModelKind::kSpiky;
  p.seed = 19;
  sim::Scenario s(p);
  algorithms::OlOptions opt;
  algorithms::OnlineCachingAlgorithm algo("OL_GD", s.problem(), &s.demands(),
                                          opt, 3);
  sim::RunResult r = s.simulator().run(algo);
  for (const auto& rec : r.slots) {
    EXPECT_TRUE(std::isfinite(rec.avg_delay_ms));
  }
  for (std::size_t i = 0; i < s.problem().num_stations(); ++i) {
    EXPECT_TRUE(std::isfinite(algo.bandit().theta(i)));
    EXPECT_GE(algo.bandit().theta(i), 0.0);
  }
}

TEST(EdgeCases, Ar1DelayScenarioRuns) {
  sim::ScenarioParams p;
  p.num_stations = 12;
  p.horizon = 10;
  p.workload.num_requests = 10;
  p.delay_kind = net::DelayModelKind::kAr1;
  p.seed = 23;
  sim::Scenario s(p);
  algorithms::OlOptions opt;
  auto algo = algorithms::make_ol_gd(s.problem(), s.demands(), opt, 1);
  EXPECT_EQ(s.simulator().run(*algo).slots.size(), 10u);
}

TEST(EdgeCases, GanWithMinimalDimensions) {
  gan::InfoRnnGanConfig c;
  c.noise_dim = 1;
  c.num_codes = 1;
  c.hidden = 2;
  c.seq_len = 2;
  c.batch_size = 1;
  gan::InfoRnnGan g(c, 1);
  std::vector<std::vector<double>> series{{0.1, 0.2, 0.3, 0.4, 0.5}};
  EXPECT_NO_THROW(g.train(series, 3));
  double pred = g.predict_next({0.3, 0.4}, 0);
  EXPECT_GE(pred, 0.0);
  EXPECT_LE(pred, 1.0);
}

TEST(EdgeCases, ExactLpPathOnTinyScenario) {
  sim::ScenarioParams p;
  p.num_stations = 6;
  p.horizon = 3;
  p.workload.num_requests = 5;
  p.seed = 29;
  sim::Scenario s(p);
  algorithms::OlOptions opt;
  opt.use_exact_lp = true;
  auto algo = algorithms::make_ol_gd(s.problem(), s.demands(), opt, 1);
  sim::RunResult r = s.simulator().run(*algo);
  EXPECT_EQ(r.slots.size(), 3u);
  for (const auto& rec : r.slots) {
    EXPECT_NEAR(rec.capacity_violation_mhz, 0.0, 1e-6);
  }
}

TEST(EdgeCases, HistoryFreeScenarioStillProvidesTrace) {
  sim::ScenarioParams p;
  p.num_stations = 10;
  p.horizon = 5;
  p.history_horizon = 0;  // degenerate: no past period
  p.workload.num_requests = 8;
  p.seed = 31;
  sim::Scenario s(p);
  EXPECT_GE(s.trace().rows().size(), 1u);
  EXPECT_EQ(s.trace().horizon(), 1u);
}

TEST(EdgeCases, PerSlotCoinVariantRuns) {
  sim::ScenarioParams p;
  p.num_stations = 12;
  p.horizon = 12;
  p.workload.num_requests = 10;
  p.seed = 37;
  sim::Scenario s(p);
  algorithms::OlOptions opt;
  opt.per_slot_coin = true;
  opt.epsilon = core::EpsilonSchedule::fixed(0.5);
  auto algo = algorithms::make_ol_gd(s.problem(), s.demands(), opt, 1);
  sim::RunResult r = s.simulator().run(*algo);
  EXPECT_EQ(r.slots.size(), 12u);
}

TEST(EdgeCases, FlatPriorVariantRuns) {
  sim::ScenarioParams p;
  p.num_stations = 12;
  p.horizon = 8;
  p.workload.num_requests = 10;
  p.seed = 41;
  sim::Scenario s(p);
  algorithms::OlOptions opt;
  opt.tier_priors = false;
  opt.theta_prior = s.theta_prior();
  auto algo = algorithms::make_ol_gd(s.problem(), s.demands(), opt, 1);
  EXPECT_EQ(s.simulator().run(*algo).slots.size(), 8u);
}

}  // namespace
}  // namespace mecsc
