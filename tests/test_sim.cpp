// Tests for the simulation harness: Simulator, RunResult metrics,
// Scenario construction, and the parallel replication runner.
#include <gtest/gtest.h>

#include <cstdlib>
#include <stdexcept>
#include <utility>
#include <vector>

#include "algorithms/baselines.h"
#include "algorithms/ol_gd.h"
#include "sim/replication.h"
#include "sim/scenario.h"
#include "sim/simulator.h"

namespace mecsc::sim {
namespace {

ScenarioParams small_params(std::uint64_t seed, bool bursty = false) {
  ScenarioParams p;
  p.num_stations = 15;
  p.horizon = 12;
  p.bursty = bursty;
  p.workload.num_requests = 18;
  p.workload.num_services = 4;
  p.history_horizon = 30;
  p.seed = seed;
  return p;
}

TEST(Scenario, ConstructsGtItm) {
  Scenario s(small_params(1));
  EXPECT_EQ(s.topology().num_stations(), 15u);
  EXPECT_EQ(s.problem().num_requests(), 18u);
  EXPECT_EQ(s.demands().horizon(), 12u);
  EXPECT_EQ(s.simulator().horizon(), 12u);
  EXPECT_GT(s.theta_prior(), s.d_min());
  EXPECT_LT(s.theta_prior(), s.d_max());
  EXPECT_GT(s.trace().rows().size(), 0u);
}

TEST(Scenario, ConstructsAs1755) {
  ScenarioParams p = small_params(2);
  p.net = ScenarioParams::NetKind::kAs1755;
  p.num_stations = 40;
  Scenario s(p);
  EXPECT_EQ(s.topology().num_stations(), 40u);
  bool any_bottleneck = false;
  for (const auto& l : s.topology().links()) any_bottleneck |= l.bottleneck;
  EXPECT_TRUE(any_bottleneck);
}

TEST(Scenario, BurstyDemandsVary) {
  Scenario s(small_params(3, /*bursty=*/true));
  bool varies = false;
  for (std::size_t l = 0; l < s.demands().num_requests() && !varies; ++l) {
    auto series = s.demands().series(l);
    for (double v : series) {
      if (std::abs(v - series[0]) > 1e-9) varies = true;
    }
  }
  EXPECT_TRUE(varies);
}

TEST(Scenario, GivenDemandsConstantPerRequest) {
  Scenario s(small_params(4, /*bursty=*/false));
  for (std::size_t l = 0; l < s.demands().num_requests(); ++l) {
    auto series = s.demands().series(l);
    for (double v : series) EXPECT_DOUBLE_EQ(v, series[0]);
  }
}

TEST(Scenario, DeterministicForSameSeed) {
  Scenario a(small_params(5));
  Scenario b(small_params(5));
  EXPECT_EQ(a.topology().num_links(), b.topology().num_links());
  for (std::size_t l = 0; l < a.demands().num_requests(); ++l) {
    for (std::size_t t = 0; t < a.demands().horizon(); ++t) {
      EXPECT_DOUBLE_EQ(a.demands().at(l, t), b.demands().at(l, t));
    }
  }
}

TEST(Scenario, AlgorithmSeedsDistinct) {
  Scenario s(small_params(6));
  EXPECT_NE(s.algorithm_seed(0), s.algorithm_seed(1));
  EXPECT_EQ(s.algorithm_seed(0), s.algorithm_seed(0));
}

TEST(Simulator, RunProducesOneRecordPerSlot) {
  Scenario s(small_params(7));
  auto algo = algorithms::make_ol_gd(s.problem(), s.demands(),
                                     algorithms::OlOptions{}, s.algorithm_seed(0));
  RunResult r = s.simulator().run(*algo);
  EXPECT_EQ(r.algorithm, "OL_GD");
  ASSERT_EQ(r.slots.size(), 12u);
  for (const auto& rec : r.slots) {
    EXPECT_GT(rec.avg_delay_ms, 0.0);
    EXPECT_GE(rec.decision_time_ms, 0.0);
    EXPECT_NEAR(rec.capacity_violation_mhz, 0.0, 1e-6);
  }
  EXPECT_GT(r.mean_delay_ms(), 0.0);
  EXPECT_GE(r.total_decision_time_ms(), 0.0);
  EXPECT_GT(r.tail_mean_delay_ms(5), 0.0);
}

TEST(Simulator, IdenticalSamplePathsForSameAlgorithmSeed) {
  Scenario s(small_params(8));
  auto a1 = algorithms::make_ol_gd(s.problem(), s.demands(),
                                   algorithms::OlOptions{}, 99);
  auto a2 = algorithms::make_ol_gd(s.problem(), s.demands(),
                                   algorithms::OlOptions{}, 99);
  RunResult r1 = s.simulator().run(*a1);
  RunResult r2 = s.simulator().run(*a2);
  ASSERT_EQ(r1.slots.size(), r2.slots.size());
  for (std::size_t t = 0; t < r1.slots.size(); ++t) {
    EXPECT_DOUBLE_EQ(r1.slots[t].avg_delay_ms, r2.slots[t].avg_delay_ms);
  }
}

TEST(Simulator, RegretTrackingWhenEnabled) {
  ScenarioParams p = small_params(9);
  p.track_regret = true;
  p.horizon = 6;
  Scenario s(p);
  auto algo = algorithms::make_ol_gd(s.problem(), s.demands(),
                                     algorithms::OlOptions{}, 1);
  RunResult r = s.simulator().run(*algo);
  ASSERT_EQ(r.cumulative_regret.size(), 6u);
  for (std::size_t t = 1; t < 6; ++t) {
    EXPECT_GE(r.cumulative_regret[t] + 1e-12, r.cumulative_regret[t - 1]);
  }
}

TEST(Simulator, NoRegretSeriesWhenDisabled) {
  Scenario s(small_params(10));
  auto algo = algorithms::make_ol_gd(s.problem(), s.demands(),
                                     algorithms::OlOptions{}, 1);
  RunResult r = s.simulator().run(*algo);
  EXPECT_TRUE(r.cumulative_regret.empty());
}

TEST(RunResult, EmptyStatsAreZero) {
  RunResult r;
  EXPECT_DOUBLE_EQ(r.mean_delay_ms(), 0.0);
  EXPECT_DOUBLE_EQ(r.mean_decision_time_ms(), 0.0);
  EXPECT_DOUBLE_EQ(r.tail_mean_delay_ms(5), 0.0);
}

// Runs the bench-style replication body under a forced worker count and
// returns (per-rep mean delays, merge order).
std::pair<std::vector<double>, std::vector<std::size_t>> run_reps(
    const char* workers, std::size_t count) {
  setenv("MECSC_WORKERS", workers, 1);
  std::vector<double> delays;
  std::vector<std::size_t> merge_order;
  run_replications(
      count,
      [&](std::size_t rep) {
        ScenarioParams p = small_params(2000 + rep);
        Scenario s(p);
        algorithms::OlOptions opt;
        opt.theta_prior = s.theta_prior();
        auto algo = algorithms::make_ol_gd(s.problem(), s.demands(), opt,
                                           s.algorithm_seed(0));
        return s.simulator().run(*algo).mean_delay_ms();
      },
      [&](std::size_t rep, double& d) {
        delays.push_back(d);
        merge_order.push_back(rep);
      });
  unsetenv("MECSC_WORKERS");
  return {delays, merge_order};
}

TEST(Replication, ParallelRunIsBitwiseIdenticalToSequential) {
  // Each replication seeds all of its randomness from `rep`, so fanning
  // the bodies out over jthread workers and merging in rep order must
  // reproduce the sequential run EXACTLY — same doubles, same order —
  // regardless of worker count or scheduling.
  const std::size_t kReps = 4;
  auto [seq, seq_order] = run_reps("1", kReps);
  auto [par, par_order] = run_reps("3", kReps);
  ASSERT_EQ(seq.size(), kReps);
  ASSERT_EQ(par.size(), kReps);
  for (std::size_t i = 0; i < kReps; ++i) {
    EXPECT_EQ(seq[i], par[i]) << "rep " << i << " diverged under parallelism";
    EXPECT_EQ(seq_order[i], i);
    EXPECT_EQ(par_order[i], i);
  }
  for (std::size_t i = 0; i < kReps; ++i) {
    EXPECT_GT(seq[i], 0.0);
  }
}

TEST(Replication, PropagatesBodyException) {
  setenv("MECSC_WORKERS", "2", 1);
  EXPECT_THROW(
      run_replications(
          3,
          [](std::size_t rep) -> int {
            if (rep == 1) throw std::runtime_error("boom");
            return static_cast<int>(rep);
          },
          [](std::size_t, int&) {}),
      std::runtime_error);
  unsetenv("MECSC_WORKERS");
}

TEST(Simulator, BaselinesRunOnScenario) {
  Scenario s(small_params(11));
  auto greedy = algorithms::make_greedy_gd(s.problem(), s.demands(), s.historical_delay_estimates());
  auto pri = algorithms::make_pri_gd(s.problem(), s.demands(), s.historical_delay_estimates());
  RunResult rg = s.simulator().run(*greedy);
  RunResult rp = s.simulator().run(*pri);
  EXPECT_GT(rg.mean_delay_ms(), 0.0);
  EXPECT_GT(rp.mean_delay_ms(), 0.0);
}

}  // namespace
}  // namespace mecsc::sim
