// Tests for the 5G MEC network substrate: base stations, topologies,
// generators, and stochastic delay processes.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "common/stats.h"
#include "net/base_station.h"
#include "net/delay_process.h"
#include "net/generators.h"
#include "net/topology.h"
#include "net/wireless.h"

namespace mecsc::net {
namespace {

TEST(TierProfile, PaperParameterRanges) {
  TierProfile macro = tier_profile(Tier::kMacro);
  EXPECT_DOUBLE_EQ(macro.transmit_power_w, 40.0);
  EXPECT_DOUBLE_EQ(macro.radius_m, 100.0);
  EXPECT_DOUBLE_EQ(macro.capacity_lo_mhz, 8000.0);
  EXPECT_DOUBLE_EQ(macro.capacity_hi_mhz, 16000.0);
  EXPECT_DOUBLE_EQ(macro.delay_lo_ms, 30.0);
  EXPECT_DOUBLE_EQ(macro.delay_hi_ms, 50.0);

  TierProfile micro = tier_profile(Tier::kMicro);
  EXPECT_DOUBLE_EQ(micro.transmit_power_w, 5.0);
  EXPECT_DOUBLE_EQ(micro.radius_m, 30.0);
  EXPECT_DOUBLE_EQ(micro.delay_lo_ms, 10.0);

  TierProfile femto = tier_profile(Tier::kFemto);
  EXPECT_DOUBLE_EQ(femto.transmit_power_w, 0.1);
  EXPECT_DOUBLE_EQ(femto.radius_m, 15.0);
  EXPECT_DOUBLE_EQ(femto.delay_hi_ms, 10.0);
}

TEST(BaseStation, CoverageDisk) {
  BaseStation bs;
  bs.x_m = 10.0;
  bs.y_m = 10.0;
  bs.radius_m = 5.0;
  EXPECT_TRUE(bs.covers(10.0, 10.0));
  EXPECT_TRUE(bs.covers(13.0, 14.0));  // distance 5
  EXPECT_FALSE(bs.covers(16.0, 10.0));
}

TEST(TierName, Names) {
  EXPECT_STREQ(tier_name(Tier::kMacro), "macro");
  EXPECT_STREQ(tier_name(Tier::kMicro), "micro");
  EXPECT_STREQ(tier_name(Tier::kFemto), "femto");
}

Topology tiny_topology() {
  std::vector<BaseStation> stations(3);
  for (std::size_t i = 0; i < 3; ++i) {
    stations[i].id = i;
    stations[i].x_m = static_cast<double>(i) * 10.0;
    stations[i].radius_m = 12.0;
    stations[i].capacity_mhz = 100.0;
  }
  Topology topo(std::move(stations));
  topo.add_link(Link{0, 1, 2.0, 100.0, false});
  topo.add_link(Link{1, 2, 3.0, 100.0, false});
  return topo;
}

TEST(Topology, RejectsBadLinks) {
  Topology topo = tiny_topology();
  EXPECT_THROW(topo.add_link(Link{0, 0, 1.0, 1.0, false}), std::exception);
  EXPECT_THROW(topo.add_link(Link{0, 1, 1.0, 1.0, false}), std::exception);  // parallel
  EXPECT_THROW(topo.add_link(Link{0, 9, 1.0, 1.0, false}), std::exception);
  EXPECT_THROW(topo.add_link(Link{0, 2, -1.0, 1.0, false}), std::exception);
}

TEST(Topology, RejectsOutOfOrderIds) {
  std::vector<BaseStation> stations(2);
  stations[0].id = 1;
  stations[1].id = 0;
  EXPECT_THROW(Topology{std::move(stations)}, std::exception);
}

TEST(Topology, PathLatencyShortestPath) {
  Topology topo = tiny_topology();
  EXPECT_DOUBLE_EQ(topo.path_latency_ms(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(topo.path_latency_ms(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(topo.path_latency_ms(0, 2), 5.0);
  // Adding a direct shortcut invalidates the cache and shortens the path.
  topo.add_link(Link{0, 2, 1.0, 100.0, false});
  EXPECT_DOUBLE_EQ(topo.path_latency_ms(0, 2), 1.0);
}

TEST(Topology, PathLatencySymmetric) {
  Topology topo = tiny_topology();
  EXPECT_DOUBLE_EQ(topo.path_latency_ms(0, 2), topo.path_latency_ms(2, 0));
}

TEST(Topology, ConnectivityAndCoverage) {
  Topology topo = tiny_topology();
  EXPECT_TRUE(topo.is_connected());
  auto covering = topo.stations_covering(5.0, 0.0);  // within 12m of bs0 & bs1
  EXPECT_EQ(covering.size(), 2u);
}

TEST(Topology, MarkBottlenecksScalesWorstLinks) {
  Topology topo = tiny_topology();
  topo.mark_bottlenecks(1, 10.0);
  // The 3ms link (1-2) was the worst; now 30ms.
  double worst = 0.0;
  std::size_t flagged = 0;
  for (const auto& l : topo.links()) {
    worst = std::max(worst, l.latency_ms);
    if (l.bottleneck) ++flagged;
  }
  EXPECT_DOUBLE_EQ(worst, 30.0);
  EXPECT_EQ(flagged, 1u);
  EXPECT_DOUBLE_EQ(topo.path_latency_ms(1, 2), 30.0);
}

class GtItmTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GtItmTest, GeneratedTopologyInvariants) {
  common::Rng rng(GetParam());
  GtItmParams p;
  p.num_stations = 60;
  Topology topo = generate_gtitm_like(p, rng);
  EXPECT_EQ(topo.num_stations(), 60u);
  EXPECT_TRUE(topo.is_connected());
  EXPECT_GE(topo.stations_of_tier(Tier::kMacro).size(), 1u);
  // Every station has attributes inside its tier profile.
  for (const auto& bs : topo.stations()) {
    TierProfile tp = tier_profile(bs.tier);
    EXPECT_GE(bs.capacity_mhz, tp.capacity_lo_mhz);
    EXPECT_LE(bs.capacity_mhz, tp.capacity_hi_mhz);
    EXPECT_GE(bs.mean_unit_delay_ms, tp.delay_lo_ms);
    EXPECT_LE(bs.mean_unit_delay_ms, tp.delay_hi_ms);
    EXPECT_DOUBLE_EQ(bs.radius_m, tp.radius_m);
  }
  // No self/parallel links by construction (add_link enforces).
  EXPECT_GT(topo.num_links(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GtItmTest, ::testing::Values(1, 7, 42, 1000));

TEST(GtItm, EdgeProbabilityRoughlyHonored) {
  common::Rng rng(5);
  GtItmParams p;
  p.num_stations = 100;
  p.edge_probability = 0.1;
  Topology topo = generate_gtitm_like(p, rng);
  double pairs = 100.0 * 99.0 / 2.0;
  double density = static_cast<double>(topo.num_links()) / pairs;
  EXPECT_NEAR(density, 0.1, 0.03);
}

TEST(GtItm, DeterministicForSameSeed) {
  common::Rng r1(9);
  common::Rng r2(9);
  GtItmParams p;
  p.num_stations = 40;
  Topology a = generate_gtitm_like(p, r1);
  Topology b = generate_gtitm_like(p, r2);
  ASSERT_EQ(a.num_links(), b.num_links());
  for (std::size_t i = 0; i < a.num_stations(); ++i) {
    EXPECT_DOUBLE_EQ(a.station(i).capacity_mhz, b.station(i).capacity_mhz);
    EXPECT_EQ(a.station(i).tier, b.station(i).tier);
  }
}

TEST(As1755, HeavyTailedDegreesAndBottlenecks) {
  common::Rng rng(11);
  As1755Params p;
  Topology topo = generate_as1755_like(p, rng);
  EXPECT_EQ(topo.num_stations(), 172u);
  EXPECT_TRUE(topo.is_connected());
  std::size_t max_degree = 0;
  double mean_degree = 0.0;
  for (std::size_t i = 0; i < topo.num_stations(); ++i) {
    max_degree = std::max(max_degree, topo.neighbors(i).size());
    mean_degree += static_cast<double>(topo.neighbors(i).size());
  }
  mean_degree /= static_cast<double>(topo.num_stations());
  // Preferential attachment: hubs far exceed the mean.
  EXPECT_GT(static_cast<double>(max_degree), 4.0 * mean_degree);
  std::size_t bottlenecks = 0;
  for (const auto& l : topo.links()) {
    if (l.bottleneck) ++bottlenecks;
  }
  EXPECT_GT(bottlenecks, 0u);
  // Highest-degree stations are macros.
  std::size_t best = 0;
  for (std::size_t i = 1; i < topo.num_stations(); ++i) {
    if (topo.neighbors(i).size() > topo.neighbors(best).size()) best = i;
  }
  EXPECT_EQ(topo.station(best).tier, Tier::kMacro);
}

TEST(As1755, SizedVariant) {
  common::Rng rng(13);
  Topology topo = generate_as1755_like_sized(80, rng);
  EXPECT_EQ(topo.num_stations(), 80u);
  EXPECT_TRUE(topo.is_connected());
}

TEST(UniformDelayProcess, SamplesWithinBoundsAndMeanMatches) {
  UniformDelayProcess p(10.0, 20.0);
  EXPECT_DOUBLE_EQ(p.mean(), 15.0);
  common::Rng rng(3);
  common::RunningStats stats;
  for (int i = 0; i < 20000; ++i) {
    double d = p.sample(rng);
    EXPECT_GE(d, 10.0);
    EXPECT_LE(d, 20.0);
    stats.add(d);
  }
  EXPECT_NEAR(stats.mean(), 15.0, 0.1);
}

TEST(Ar1DelayProcess, StaysInBoundsAndMeanReverts) {
  Ar1DelayProcess p(15.0, 0.8, 2.0, 10.0, 20.0);
  common::Rng rng(5);
  common::RunningStats stats;
  for (int i = 0; i < 20000; ++i) {
    double d = p.sample(rng);
    EXPECT_GE(d, 10.0);
    EXPECT_LE(d, 20.0);
    stats.add(d);
  }
  EXPECT_NEAR(stats.mean(), 15.0, 0.5);
}

TEST(Ar1DelayProcess, RejectsBadParams) {
  EXPECT_THROW(Ar1DelayProcess(15.0, 1.2, 1.0, 10.0, 20.0), std::exception);
  EXPECT_THROW(Ar1DelayProcess(25.0, 0.5, 1.0, 10.0, 20.0), std::exception);
}

TEST(SpikyDelayProcess, MeanAccountsForSpikes) {
  auto base = std::make_unique<UniformDelayProcess>(10.0, 10.0);  // constant 10
  SpikyDelayProcess p(std::move(base), 0.5, 3.0);
  EXPECT_DOUBLE_EQ(p.mean(), 10.0 * (1.0 + 0.5 * 2.0));
  common::Rng rng(7);
  common::RunningStats stats;
  for (int i = 0; i < 50000; ++i) stats.add(p.sample(rng));
  EXPECT_NEAR(stats.mean(), p.mean(), 0.3);
  EXPECT_DOUBLE_EQ(stats.max(), 30.0);
}

TEST(NetworkDelayModel, RealizeAndOracleViews) {
  common::Rng rng(17);
  GtItmParams gp;
  gp.num_stations = 30;
  Topology topo = generate_gtitm_like(gp, rng);
  NetworkDelayModel model = make_delay_model(topo, DelayModelKind::kUniform, rng);
  EXPECT_EQ(model.size(), 30u);
  auto means = model.true_means();
  for (std::size_t i = 0; i < 30; ++i) {
    EXPECT_NEAR(means[i], topo.station(i).mean_unit_delay_ms, 1e-9);
  }
  EXPECT_LT(model.global_min(), model.global_max());
  auto d = model.realize(rng);
  ASSERT_EQ(d.size(), 30u);
  for (double v : d) {
    EXPECT_GE(v, model.global_min() - 1e-9);
    EXPECT_LE(v, model.global_max() + 1e-9);
  }
}

TEST(NetworkDelayModel, AllKindsConstruct) {
  common::Rng rng(19);
  GtItmParams gp;
  gp.num_stations = 20;
  Topology topo = generate_gtitm_like(gp, rng);
  for (auto kind : {DelayModelKind::kUniform, DelayModelKind::kAr1,
                    DelayModelKind::kSpiky}) {
    NetworkDelayModel model = make_delay_model(topo, kind, rng);
    auto d = model.realize(rng);
    for (double v : d) EXPECT_GT(v, 0.0);
  }
}

TEST(WirelessModel, PathLossMonotoneInDistance) {
  WirelessModel w;
  EXPECT_LT(w.path_loss_db(10.0), w.path_loss_db(50.0));
  EXPECT_LT(w.path_loss_db(50.0), w.path_loss_db(100.0));
  // Below 1 m clamps to the reference distance.
  EXPECT_DOUBLE_EQ(w.path_loss_db(0.0), w.path_loss_db(1.0));
}

TEST(WirelessModel, LogDistanceFormula) {
  WirelessParams p;
  p.reference_loss_db = 30.0;
  p.path_loss_exponent = 3.5;
  WirelessModel w(p);
  EXPECT_NEAR(w.path_loss_db(10.0), 30.0 + 35.0, 1e-9);
  EXPECT_NEAR(w.path_loss_db(100.0), 30.0 + 70.0, 1e-9);
}

TEST(WirelessModel, MacroOutranksFemtoAtSameDistance) {
  WirelessModel w;
  BaseStation macro;
  macro.transmit_power_w = tier_profile(Tier::kMacro).transmit_power_w;
  BaseStation femto;
  femto.transmit_power_w = tier_profile(Tier::kFemto).transmit_power_w;
  EXPECT_GT(w.snr(macro, 50.0, 1.0), w.snr(femto, 50.0, 1.0));
}

TEST(WirelessModel, RateCappedBy64Qam) {
  WirelessModel w;
  BaseStation macro;
  macro.transmit_power_w = 40.0;
  // Point blank, full bandwidth: SNR is enormous, so the 64QAM cap
  // (6 bit/s/Hz over 20 MHz = 120 Mb/s) binds.
  EXPECT_NEAR(w.rate_bps(macro, 1.0, 1.0), 120e6, 1e3);
}

TEST(WirelessModel, RateScalesWithBandwidthShare) {
  WirelessModel w;
  BaseStation bs;
  bs.transmit_power_w = 5.0;
  double full = w.rate_bps(bs, 20.0, 1.0);
  double half = w.rate_bps(bs, 20.0, 0.5);
  // At cap, halving bandwidth halves rate; off cap, slightly more than
  // half (less noise) — either way strictly less than full.
  EXPECT_LT(half, full);
  EXPECT_GE(half, 0.5 * full - 1e-6);
}

TEST(WirelessModel, TransmissionDelayLinearInData) {
  WirelessModel w;
  BaseStation bs;
  bs.transmit_power_w = 0.1;
  double d1 = w.transmission_delay_ms(bs, 10.0, 1.0, 1.0);
  double d5 = w.transmission_delay_ms(bs, 10.0, 5.0, 1.0);
  EXPECT_NEAR(d5, 5.0 * d1, 1e-9);
  EXPECT_GT(d1, 0.0);
}

TEST(WirelessModel, RejectsBadInputs) {
  WirelessModel w;
  BaseStation bs;
  bs.transmit_power_w = 1.0;
  EXPECT_THROW(w.snr(bs, 10.0, 0.0), std::exception);
  EXPECT_THROW(w.snr(bs, 10.0, 1.5), std::exception);
  EXPECT_THROW(w.path_loss_db(-1.0), std::exception);
  EXPECT_THROW(w.transmission_delay_ms(bs, 10.0, -1.0, 1.0), std::exception);
  WirelessParams bad;
  bad.system_bandwidth_hz = 0.0;
  EXPECT_THROW(WirelessModel{bad}, std::exception);
}

}  // namespace
}  // namespace mecsc::net
