// Tests for the min-cost-flow solver, including cross-checks against the
// exact simplex on random transportation instances.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "flow/min_cost_flow.h"
#include "lp/model.h"
#include "lp/simplex.h"

namespace mecsc::flow {
namespace {

TEST(MinCostFlow, SingleEdge) {
  MinCostFlow g(2);
  auto e = g.add_edge(0, 1, 5.0, 2.0);
  FlowResult r = g.solve(0, 1, 3.0);
  EXPECT_DOUBLE_EQ(r.flow, 3.0);
  EXPECT_DOUBLE_EQ(r.cost, 6.0);
  EXPECT_DOUBLE_EQ(g.edge_flow(e), 3.0);
}

TEST(MinCostFlow, SaturatesAtCapacity) {
  MinCostFlow g(2);
  g.add_edge(0, 1, 5.0, 1.0);
  FlowResult r = g.solve(0, 1, 100.0);
  EXPECT_DOUBLE_EQ(r.flow, 5.0);
}

TEST(MinCostFlow, PrefersCheaperPath) {
  // Two parallel 2-hop paths; cheaper one should carry the flow.
  MinCostFlow g(4);
  auto cheap1 = g.add_edge(0, 1, 10.0, 1.0);
  auto cheap2 = g.add_edge(1, 3, 10.0, 1.0);
  auto costly1 = g.add_edge(0, 2, 10.0, 5.0);
  auto costly2 = g.add_edge(2, 3, 10.0, 5.0);
  FlowResult r = g.solve(0, 3, 10.0);
  EXPECT_DOUBLE_EQ(r.flow, 10.0);
  EXPECT_DOUBLE_EQ(r.cost, 20.0);
  EXPECT_DOUBLE_EQ(g.edge_flow(cheap1), 10.0);
  EXPECT_DOUBLE_EQ(g.edge_flow(cheap2), 10.0);
  EXPECT_DOUBLE_EQ(g.edge_flow(costly1), 0.0);
  EXPECT_DOUBLE_EQ(g.edge_flow(costly2), 0.0);
}

TEST(MinCostFlow, SpillsToSecondPathWhenFirstSaturates) {
  MinCostFlow g(2);
  auto cheap = g.add_edge(0, 1, 4.0, 1.0);
  auto costly = g.add_edge(0, 1, 10.0, 3.0);
  FlowResult r = g.solve(0, 1, 7.0);
  EXPECT_DOUBLE_EQ(r.flow, 7.0);
  EXPECT_DOUBLE_EQ(r.cost, 4.0 * 1.0 + 3.0 * 3.0);
  EXPECT_DOUBLE_EQ(g.edge_flow(cheap), 4.0);
  EXPECT_DOUBLE_EQ(g.edge_flow(costly), 3.0);
}

TEST(MinCostFlow, ClassicTransportation) {
  // Same instance as the simplex test: optimum cost 35.
  // Nodes: 0 src, 1..2 sources, 3..4 sinks, 5 sink.
  MinCostFlow g(6);
  g.add_edge(0, 1, 10.0, 0.0);
  g.add_edge(0, 2, 20.0, 0.0);
  g.add_edge(1, 3, 1e9, 1.0);
  g.add_edge(1, 4, 1e9, 4.0);
  g.add_edge(2, 3, 1e9, 2.0);
  g.add_edge(2, 4, 1e9, 1.0);
  g.add_edge(3, 5, 15.0, 0.0);
  g.add_edge(4, 5, 15.0, 0.0);
  FlowResult r = g.solve(0, 5, 30.0);
  EXPECT_DOUBLE_EQ(r.flow, 30.0);
  EXPECT_NEAR(r.cost, 35.0, 1e-9);
}

TEST(MinCostFlow, RejectsNegativeCost) {
  MinCostFlow g(2);
  EXPECT_THROW(g.add_edge(0, 1, 1.0, -1.0), std::exception);
}

TEST(MinCostFlow, RejectsBadEndpoints) {
  MinCostFlow g(2);
  EXPECT_THROW(g.add_edge(0, 5, 1.0, 1.0), std::exception);
  EXPECT_THROW(g.solve(0, 0, 1.0), std::exception);
}

TEST(MinCostFlow, ZeroRequestedFlow) {
  MinCostFlow g(2);
  g.add_edge(0, 1, 5.0, 1.0);
  FlowResult r = g.solve(0, 1, 0.0);
  EXPECT_DOUBLE_EQ(r.flow, 0.0);
  EXPECT_DOUBLE_EQ(r.cost, 0.0);
}

TEST(MinCostFlow, DisconnectedSinkShipsNothing) {
  MinCostFlow g(3);
  g.add_edge(0, 1, 5.0, 1.0);
  FlowResult r = g.solve(0, 2, 5.0);
  EXPECT_DOUBLE_EQ(r.flow, 0.0);
}

/// Conservation: for every intermediate node, inflow == outflow.
TEST(MinCostFlow, FlowConservation) {
  common::Rng rng(77);
  const std::size_t n = 10;
  MinCostFlow g(n);
  std::vector<std::tuple<std::size_t, std::size_t, std::size_t>> edges;  // id,a,b
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = 0; b < n; ++b) {
      if (a == b || !rng.bernoulli(0.4)) continue;
      auto id = g.add_edge(a, b, rng.uniform(1.0, 10.0), rng.uniform(0.0, 5.0));
      edges.emplace_back(id, a, b);
    }
  }
  g.solve(0, n - 1, 50.0);
  std::vector<double> net(n, 0.0);
  for (auto [id, a, b] : edges) {
    double f = g.edge_flow(id);
    EXPECT_GE(f, -1e-9);
    net[a] -= f;
    net[b] += f;
  }
  for (std::size_t v = 1; v + 1 < n; ++v) EXPECT_NEAR(net[v], 0.0, 1e-6);
  EXPECT_NEAR(net[0], -net[n - 1], 1e-6);
}

/// The dense-Dijkstra path (small graphs) and the heap path (large
/// graphs) must produce identical optima. Build the same logical
/// instance twice: once as-is (dense path) and once padded with
/// disconnected dummy nodes to push the node count past the dense
/// threshold (heap path).
TEST(MinCostFlow, DenseAndHeapPathsAgree) {
  common::Rng rng(101);
  const std::size_t n = 12;
  struct E {
    std::size_t a, b;
    double cap, cost;
  };
  std::vector<E> edges;
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = 0; b < n; ++b) {
      if (a == b || !rng.bernoulli(0.5)) continue;
      edges.push_back({a, b, rng.uniform(1.0, 8.0), rng.uniform(0.0, 4.0)});
    }
  }
  MinCostFlow dense(n);
  MinCostFlow heap(n + MinCostFlow::kDenseThreshold);  // padded: heap path
  for (const auto& e : edges) {
    dense.add_edge(e.a, e.b, e.cap, e.cost);
    heap.add_edge(e.a, e.b, e.cap, e.cost);
  }
  FlowResult rd = dense.solve(0, n - 1, 40.0);
  FlowResult rh = heap.solve(0, n - 1, 40.0);
  EXPECT_NEAR(rd.flow, rh.flow, 1e-6);
  EXPECT_NEAR(rd.cost, rh.cost, 1e-5);
}

TEST(MinCostFlow, CostMatchesEdgeFlowDecomposition) {
  common::Rng rng(103);
  MinCostFlow g(8);
  std::vector<std::pair<std::size_t, double>> ids;  // (edge id, cost)
  for (std::size_t a = 0; a < 8; ++a) {
    for (std::size_t b = 0; b < 8; ++b) {
      if (a == b || !rng.bernoulli(0.5)) continue;
      double cost = rng.uniform(0.0, 3.0);
      ids.emplace_back(g.add_edge(a, b, rng.uniform(1.0, 5.0), cost), cost);
    }
  }
  FlowResult r = g.solve(0, 7, 20.0);
  double recomputed = 0.0;
  for (auto [id, cost] : ids) recomputed += g.edge_flow(id) * cost;
  EXPECT_NEAR(r.cost, recomputed, 1e-6);
}

/// Property: on random transportation instances the flow optimum equals
/// the simplex optimum.
class FlowVsSimplexTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FlowVsSimplexTest, MatchesSimplexOnTransportation) {
  common::Rng rng(GetParam());
  const std::size_t ns = 3 + rng.index(3);  // sources
  const std::size_t nd = 3 + rng.index(3);  // sinks
  std::vector<double> supply(ns), demand(nd);
  double total_demand = 0.0;
  for (auto& d : demand) {
    d = rng.uniform(1.0, 10.0);
    total_demand += d;
  }
  // Total supply >= total demand so the instance is feasible.
  double remaining = total_demand * 1.4;
  for (std::size_t i = 0; i < ns; ++i) {
    supply[i] = remaining / static_cast<double>(ns);
  }
  std::vector<std::vector<double>> cost(ns, std::vector<double>(nd));
  for (auto& row : cost) {
    for (auto& c : row) c = rng.uniform(0.0, 9.0);
  }

  // Simplex formulation.
  lp::Model m;
  std::vector<std::vector<std::size_t>> var(ns, std::vector<std::size_t>(nd));
  for (std::size_t i = 0; i < ns; ++i) {
    for (std::size_t j = 0; j < nd; ++j) var[i][j] = m.add_variable(cost[i][j]);
  }
  for (std::size_t i = 0; i < ns; ++i) {
    lp::Constraint c;
    c.relation = lp::Relation::kLessEqual;
    c.rhs = supply[i];
    for (std::size_t j = 0; j < nd; ++j) c.terms.emplace_back(var[i][j], 1.0);
    m.add_constraint(std::move(c));
  }
  for (std::size_t j = 0; j < nd; ++j) {
    lp::Constraint c;
    c.relation = lp::Relation::kEqual;
    c.rhs = demand[j];
    for (std::size_t i = 0; i < ns; ++i) c.terms.emplace_back(var[i][j], 1.0);
    m.add_constraint(std::move(c));
  }
  lp::Solution ls = lp::SimplexSolver().solve(m);
  ASSERT_EQ(ls.status, lp::SolveStatus::kOptimal);

  // Flow formulation: src=0, sources 1..ns, sinks ns+1..ns+nd, sink last.
  MinCostFlow g(ns + nd + 2);
  for (std::size_t i = 0; i < ns; ++i) g.add_edge(0, 1 + i, supply[i], 0.0);
  for (std::size_t i = 0; i < ns; ++i) {
    for (std::size_t j = 0; j < nd; ++j) {
      g.add_edge(1 + i, 1 + ns + j, 1e9, cost[i][j]);
    }
  }
  for (std::size_t j = 0; j < nd; ++j) {
    g.add_edge(1 + ns + j, ns + nd + 1, demand[j], 0.0);
  }
  FlowResult fr = g.solve(0, ns + nd + 1, total_demand);
  EXPECT_NEAR(fr.flow, total_demand, 1e-6);
  EXPECT_NEAR(fr.cost, ls.objective, 1e-5);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FlowVsSimplexTest,
                         ::testing::Range<std::uint64_t>(1, 26));

}  // namespace
}  // namespace mecsc::flow
