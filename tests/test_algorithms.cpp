// Tests for the caching algorithms: OL_GD, OL_Reg, OL_GAN wiring, and
// the Greedy_GD / Pri_GD baselines.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "algorithms/baselines.h"
#include "algorithms/ol_gd.h"
#include "common/rng.h"
#include "net/delay_process.h"
#include "net/generators.h"
#include "predict/gan_predictor.h"

namespace mecsc::algorithms {
namespace {

struct Fixture {
  std::unique_ptr<net::Topology> topo;
  workload::Workload workload;
  std::unique_ptr<core::CachingProblem> problem;
  std::unique_ptr<workload::DemandMatrix> demands;
  std::vector<std::vector<double>> unit_delays;  // [t][i]

  explicit Fixture(std::uint64_t seed, std::size_t stations = 15,
                   std::size_t requests = 20, std::size_t horizon = 10,
                   bool bursty = false) {
    common::Rng rng(seed);
    net::GtItmParams gp;
    gp.num_stations = stations;
    topo = std::make_unique<net::Topology>(net::generate_gtitm_like(gp, rng));
    workload::WorkloadParams wp;
    wp.num_requests = requests;
    wp.horizon = horizon;
    workload = workload::make_workload(*topo, wp, rng, bursty);
    core::ProblemOptions po;
    problem = std::make_unique<core::CachingProblem>(
        topo.get(), workload.services, workload.requests, po, rng);
    demands = std::make_unique<workload::DemandMatrix>(workload::realize_demands(
        workload.requests, workload.processes, horizon, rng));
    net::NetworkDelayModel dm =
        net::make_delay_model(*topo, net::DelayModelKind::kUniform, rng);
    for (std::size_t t = 0; t < horizon; ++t) {
      unit_delays.push_back(dm.realize(rng));
    }
  }

  /// Stale historical measurement: the first realised delay slot stands
  /// in for a past observation.
  std::vector<double> stale_estimates() const { return unit_delays.front(); }

  void run(CachingAlgorithm& algo, std::size_t slots) const {
    for (std::size_t t = 0; t < slots; ++t) {
      core::Assignment a = algo.decide(t);
      algo.observe(t, a, demands->slot(t), unit_delays[t]);
    }
  }
};

TEST(OlGd, ProducesValidAssignments) {
  Fixture f(1);
  auto algo = make_ol_gd(*f.problem, *f.demands, OlOptions{}, 7);
  EXPECT_EQ(algo->name(), "OL_GD");
  for (std::size_t t = 0; t < 5; ++t) {
    core::Assignment a = algo->decide(t);
    ASSERT_EQ(a.station_of_request.size(), f.problem->num_requests());
    for (std::size_t i : a.station_of_request) {
      EXPECT_LT(i, f.problem->num_stations());
    }
    ASSERT_EQ(a.cached.size(), f.problem->num_services());
    algo->observe(t, a, f.demands->slot(t), f.unit_delays[t]);
  }
}

TEST(OlGd, BanditLearnsOnlyPlayedArms) {
  Fixture f(2);
  OnlineCachingAlgorithm algo("OL_GD", *f.problem, f.demands.get(), OlOptions{}, 9);
  core::Assignment a = algo.decide(0);
  algo.observe(0, a, f.demands->slot(0), f.unit_delays[0]);
  std::set<std::size_t> played(a.station_of_request.begin(),
                               a.station_of_request.end());
  for (std::size_t i = 0; i < f.problem->num_stations(); ++i) {
    if (played.count(i)) {
      EXPECT_EQ(algo.bandit().plays(i), 1u);
      EXPECT_DOUBLE_EQ(algo.bandit().theta(i), f.unit_delays[0][i]);
    } else {
      EXPECT_EQ(algo.bandit().plays(i), 0u);
    }
  }
}

TEST(OlGd, CoverageGrowsWithExploration) {
  Fixture f(3, 15, 20, 40);
  OnlineCachingAlgorithm algo("OL_GD", *f.problem, f.demands.get(), OlOptions{}, 11);
  f.run(algo, 40);
  // ε = 1/4 exploration over 40 slots with 20 requests should touch most
  // of the 15 arms.
  EXPECT_GT(algo.bandit().coverage(), 0.8);
}

TEST(OlGd, DeterministicForSameSeed) {
  Fixture f(4);
  OnlineCachingAlgorithm a("OL_GD", *f.problem, f.demands.get(), OlOptions{}, 5);
  OnlineCachingAlgorithm b("OL_GD", *f.problem, f.demands.get(), OlOptions{}, 5);
  for (std::size_t t = 0; t < 5; ++t) {
    core::Assignment aa = a.decide(t);
    core::Assignment ab = b.decide(t);
    EXPECT_EQ(aa.station_of_request, ab.station_of_request);
    a.observe(t, aa, f.demands->slot(t), f.unit_delays[t]);
    b.observe(t, ab, f.demands->slot(t), f.unit_delays[t]);
  }
}

TEST(OlGd, ExactLpPathAgreesWithFlowPathApproximately) {
  Fixture f(5, 8, 8);
  OlOptions exact;
  exact.use_exact_lp = true;
  exact.epsilon = core::EpsilonSchedule::zero();
  OlOptions flow;
  flow.epsilon = core::EpsilonSchedule::zero();
  OnlineCachingAlgorithm ae("x", *f.problem, f.demands.get(), exact, 5);
  OnlineCachingAlgorithm af("f", *f.problem, f.demands.get(), flow, 5);
  core::Assignment da = ae.decide(0);
  core::Assignment db = af.decide(0);
  double ca = core::realized_average_delay(*f.problem, da, f.demands->slot(0),
                                           f.unit_delays[0]);
  double cb = core::realized_average_delay(*f.problem, db, f.demands->slot(0),
                                           f.unit_delays[0]);
  EXPECT_NEAR(ca, cb, 0.5 * std::max(ca, cb));
}

TEST(OlGd, LastDemandsExposed) {
  Fixture f(6);
  OnlineCachingAlgorithm algo("OL_GD", *f.problem, f.demands.get(), OlOptions{}, 3);
  algo.decide(2);
  EXPECT_EQ(algo.last_demands(), f.demands->slot(2));
}

TEST(OlGd, UcbOptimismExploresWithoutEpsilon) {
  Fixture f(20, 15, 20, 30);
  OlOptions ucb;
  ucb.epsilon = core::EpsilonSchedule::zero();
  ucb.ucb_beta = 4.0;
  OnlineCachingAlgorithm with_ucb("ucb", *f.problem, f.demands.get(), ucb, 7);
  OlOptions none;
  none.epsilon = core::EpsilonSchedule::zero();
  OnlineCachingAlgorithm without("plain", *f.problem, f.demands.get(), none, 7);
  f.run(with_ucb, 30);
  f.run(without, 30);
  // Optimism should touch at least as many arms as pure exploitation.
  EXPECT_GE(with_ucb.bandit().coverage() + 1e-12, without.bandit().coverage());
  EXPECT_GT(with_ucb.bandit().coverage(), 0.3);
}

TEST(OlGd, UcbBetaZeroMatchesPlainEstimates) {
  Fixture f(21, 10, 12, 5);
  OlOptions a;
  a.epsilon = core::EpsilonSchedule::zero();
  OlOptions b = a;
  b.ucb_beta = 0.0;
  OnlineCachingAlgorithm x("a", *f.problem, f.demands.get(), a, 3);
  OnlineCachingAlgorithm y("b", *f.problem, f.demands.get(), b, 3);
  core::Assignment da = x.decide(0);
  core::Assignment db = y.decide(0);
  EXPECT_EQ(da.station_of_request, db.station_of_request);
}

TEST(OlReg, UsesArmaPredictions) {
  Fixture f(7, 15, 20, 10, /*bursty=*/true);
  auto algo = make_ol_reg(*f.problem, 3, OlOptions{}, 13);
  EXPECT_EQ(algo->name(), "OL_Reg");
  auto* ol = dynamic_cast<OnlineCachingAlgorithm*>(algo.get());
  ASSERT_NE(ol, nullptr);
  // Before any observation: fallback = basic demands.
  algo->decide(0);
  for (std::size_t l = 0; l < f.problem->num_requests(); ++l) {
    EXPECT_DOUBLE_EQ(ol->last_demands()[l], f.workload.requests[l].basic_demand);
  }
  // After observing slot 0, the ARMA prediction equals it (single obs).
  core::Assignment a = algo->decide(0);
  algo->observe(0, a, f.demands->slot(0), f.unit_delays[0]);
  algo->decide(1);
  for (std::size_t l = 0; l < f.problem->num_requests(); ++l) {
    EXPECT_NEAR(ol->last_demands()[l], f.demands->at(l, 0), 1e-9);
  }
}

TEST(GreedyGd, RespectsCapacityAndDemandOrder) {
  Fixture f(8, 10, 25);
  auto algo = make_greedy_gd(*f.problem, *f.demands, f.stale_estimates());
  EXPECT_EQ(algo->name(), "Greedy_GD");
  core::Assignment a = algo->decide(0);
  EXPECT_NEAR(core::capacity_violation(*f.problem, a, f.demands->slot(0)), 0.0,
              1e-9);
}

TEST(PriGd, OrdersByCoveragePriority) {
  Fixture f(9, 20, 15);
  auto algo = make_pri_gd(*f.problem, *f.demands, f.stale_estimates());
  EXPECT_EQ(algo->name(), "Pri_GD");
  core::Assignment a = algo->decide(0);
  ASSERT_EQ(a.station_of_request.size(), f.problem->num_requests());
  EXPECT_NEAR(core::capacity_violation(*f.problem, a, f.demands->slot(0)), 0.0,
              1e-9);
}

TEST(Baselines, LearnPassivelyFromUsedStations) {
  Fixture f(10);
  GreedyPerStation algo(*f.problem, f.demands.get(), f.stale_estimates());
  core::Assignment a0 = algo.decide(0);
  algo.observe(0, a0, f.demands->slot(0), f.unit_delays[0]);
  core::Assignment a1 = algo.decide(1);
  // The decision is deterministic given history; re-deciding the same
  // slot yields the same assignment.
  core::Assignment a1b = algo.decide(1);
  EXPECT_EQ(a1.station_of_request, a1b.station_of_request);
}

TEST(Baselines, GreedyAndPriorityCanDiffer) {
  // With heterogeneous coverage the two orders generally differ; verify
  // on several seeds that at least one instance produces different
  // assignments (they are different policies, not aliases).
  bool differ = false;
  for (std::uint64_t seed = 11; seed < 16 && !differ; ++seed) {
    Fixture f(seed, 20, 25);
    auto g = make_greedy_gd(*f.problem, *f.demands, f.stale_estimates());
    auto p = make_pri_gd(*f.problem, *f.demands, f.stale_estimates());
    differ = g->decide(0).station_of_request != p->decide(0).station_of_request;
  }
  EXPECT_TRUE(differ);
}

TEST(OlWithPredictor, GanVariantSmokes) {
  Fixture f(12, 12, 10, 8, /*bursty=*/true);
  // Tiny trace from the fixture's own demand matrix.
  common::Rng trng(1);
  workload::Trace trace = workload::Trace::from_demands(
      f.workload.requests, *f.demands, 8, 0.8, trng);
  predict::GanPredictorOptions gopt;
  gopt.gan.noise_dim = 4;
  gopt.gan.hidden = 6;
  gopt.gan.seq_len = 4;
  gopt.gan.batch_size = 4;
  gopt.train_steps = 10;
  auto predictor = std::make_unique<predict::GanDemandPredictor>(
      f.workload.requests, trace, gopt, 77);
  auto algo = make_ol_with_predictor("OL_GAN", *f.problem, std::move(predictor),
                                     OlOptions{}, 15);
  EXPECT_EQ(algo->name(), "OL_GAN");
  f.run(*algo, 4);
}

}  // namespace
}  // namespace mecsc::algorithms
