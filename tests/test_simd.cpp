// SIMD-vs-scalar equivalence suite (DESIGN.md "SIMD & batching").
//
// Every vectorized kernel is checked against its scalar reference
// (nn::scalar::*) on the same inputs, across shapes chosen to exercise
// the vector main loops, the unrolled multi-stream loops, and the
// scalar/padded tails (sizes mod 4 and mod 16), plus NaN and denormal
// inputs. The FP contract being verified (documented in DESIGN.md):
//   * add/sub/mul/scale/axpy/relu/relu_grad/sigmoid_grad/tanh_grad are
//     bit-exact — same IEEE ops in the same order;
//   * matmul and matmul_aTb keep the scalar k-accumulation order and
//     differ only by FMA contraction (tolerance ~1e-13 relative);
//   * matmul_abT uses partial accumulators (reduction order differs);
//   * sigmoid/tanh use a polynomial exp (tolerance ~1e-12 absolute) and
//     must be position-independent: an element's value may not depend on
//     where it sits in the buffer (this is what makes batched GAN
//     inference bit-identical to sequential).
//
// When SIMD is inactive (scalar build, non-AVX2 CPU, or MECSC_SIMD=off)
// the dispatchers run the reference itself and every check still holds
// trivially, so the suite is safe in all CI legs.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "common/rng.h"
#include "common/simd.h"
#include "gan/info_rnn_gan.h"
#include "nn/matrix.h"

namespace mecsc {
namespace {

using nn::Matrix;

// Shapes that hit: tiny all-tail, 4-multiples, 16-multiples (unrolled
// streams), and odd sizes whose tails land on every lane count.
const std::size_t kSizes[] = {1, 2, 3, 4, 5, 7, 8, 15, 16, 17, 31, 33, 96, 97};

Matrix random_matrix(std::size_t r, std::size_t c, common::Rng& rng) {
  return Matrix::randn(r, c, rng, 2.0);
}

void expect_bit_equal(const Matrix& a, const Matrix& b, const char* what) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  for (std::size_t i = 0; i < a.size(); ++i) {
    // Bit-level compare so -0.0 vs 0.0 and NaN payloads count too.
    std::uint64_t ab, bb;
    double av = a[i], bv = b[i];
    static_assert(sizeof ab == sizeof av);
    __builtin_memcpy(&ab, &av, sizeof ab);
    __builtin_memcpy(&bb, &bv, sizeof bb);
    ASSERT_EQ(ab, bb) << what << " diverges at " << i << ": " << av << " vs "
                      << bv;
  }
}

void expect_close(const Matrix& a, const Matrix& b, double tol,
                  const char* what) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::isnan(a[i]) || std::isnan(b[i])) {
      ASSERT_EQ(std::isnan(a[i]), std::isnan(b[i]))
          << what << " NaN mismatch at " << i;
      continue;
    }
    const double scale = std::max(1.0, std::max(std::fabs(a[i]), std::fabs(b[i])));
    ASSERT_NEAR(a[i], b[i], tol * scale) << what << " at " << i;
  }
}

TEST(SimdEquivalence, BitExactElementwise) {
  common::Rng rng(1);
  for (std::size_t n : kSizes) {
    Matrix a = random_matrix(3, n, rng);
    Matrix b = random_matrix(3, n, rng);
    Matrix got, want;

    nn::add_into(got, a, b);
    nn::scalar::add_into(want, a, b);
    expect_bit_equal(got, want, "add");

    nn::sub_into(got, a, b);
    nn::scalar::sub_into(want, a, b);
    expect_bit_equal(got, want, "sub");

    nn::hadamard_into(got, a, b);
    nn::scalar::hadamard_into(want, a, b);
    expect_bit_equal(got, want, "hadamard");

    nn::scale_into(got, a, -1.75);
    nn::scalar::scale_into(want, a, -1.75);
    expect_bit_equal(got, want, "scale");

    nn::map_relu_into(got, a);
    nn::scalar::map_relu_into(want, a);
    expect_bit_equal(got, want, "relu");

    nn::sigmoid_grad_into(got, a, b);
    nn::scalar::sigmoid_grad_into(want, a, b);
    expect_bit_equal(got, want, "sigmoid_grad");

    nn::tanh_grad_into(got, a, b);
    nn::scalar::tanh_grad_into(want, a, b);
    expect_bit_equal(got, want, "tanh_grad");

    nn::relu_grad_into(got, a, b);
    nn::scalar::relu_grad_into(want, a, b);
    expect_bit_equal(got, want, "relu_grad");

    Matrix y1 = random_matrix(3, n, rng);
    Matrix y2 = y1;
    nn::axpy(y1, a, 0.37);
    nn::scalar::axpy(y2, a, 0.37);
    expect_bit_equal(y1, y2, "axpy");
  }
}

TEST(SimdEquivalence, MatmulWithinFmaTolerance) {
  common::Rng rng(2);
  // (m, k, n) triples covering odd inner/outer dims, single rows/cols
  // (the GAN head is batch×1), and the 16-wide unrolled j-loop.
  const std::size_t dims[][3] = {{1, 1, 1},  {1, 17, 1},  {5, 3, 7},
                                 {4, 4, 4},  {3, 96, 33}, {17, 5, 16},
                                 {8, 33, 1}, {2, 7, 96}};
  for (const auto& d : dims) {
    Matrix a = random_matrix(d[0], d[1], rng);
    Matrix b = random_matrix(d[1], d[2], rng);
    Matrix got, want;

    nn::matmul_into(got, a, b);
    nn::scalar::matmul_into(want, a, b);
    expect_close(got, want, 1e-13, "matmul");

    Matrix bt = random_matrix(d[2], d[1], rng);
    nn::matmul_abT_into(got, a, bt);
    nn::scalar::matmul_abT_into(want, a, bt);
    expect_close(got, want, 1e-12, "matmul_abT");

    Matrix a2 = random_matrix(d[1], d[0], rng);
    nn::matmul_aTb_into(got, a2, b);
    nn::scalar::matmul_aTb_into(want, a2, b);
    expect_close(got, want, 1e-13, "matmul_aTb");
  }
}

TEST(SimdEquivalence, MatmulZeroSkipSparseRows) {
  // The kernels skip a[i,k] == 0 (one-hot inputs); a mostly-zero A must
  // still agree, including an all-zero row.
  common::Rng rng(3);
  Matrix a(6, 9, 0.0);
  a.at(0, 4) = 1.0;
  a.at(2, 0) = -2.5;
  a.at(2, 8) = 0.5;
  Matrix b = random_matrix(9, 13, rng);
  Matrix got, want;
  nn::matmul_into(got, a, b);
  nn::scalar::matmul_into(want, a, b);
  expect_close(got, want, 1e-13, "sparse matmul");
}

TEST(SimdEquivalence, SigmoidTanhWithinTolerance) {
  common::Rng rng(4);
  for (std::size_t n : kSizes) {
    Matrix a = random_matrix(2, n, rng);
    a[0] = 0.0;
    if (n > 2) a[1] = -30.0;  // tanh saturation region
    Matrix got, want;
    nn::map_sigmoid_into(got, a);
    nn::scalar::map_sigmoid_into(want, a);
    expect_close(got, want, 1e-12, "sigmoid");

    nn::map_tanh_into(got, a);
    nn::scalar::map_tanh_into(want, a);
    expect_close(got, want, 1e-12, "tanh");
  }
}

TEST(SimdEquivalence, ExpKernelsArePositionIndependent) {
  // The same value must map to the same bits wherever it sits in the
  // buffer — vector lane, unrolled stream, or padded tail. This is the
  // property that makes batched inference bit-identical to sequential.
  const double probe = 0.62373;
  for (std::size_t n : kSizes) {
    for (std::size_t at : {std::size_t{0}, n - 1}) {
      Matrix a(1, n, -0.25);
      a[at] = probe;
      Matrix one(1, 1, probe);
      Matrix big, small;
      nn::map_sigmoid_into(big, a);
      nn::map_sigmoid_into(small, one);
      EXPECT_EQ(big[at], small[0]) << "sigmoid position-dependent at " << at
                                   << " of " << n;
      nn::map_tanh_into(big, a);
      nn::map_tanh_into(small, one);
      EXPECT_EQ(big[at], small[0]) << "tanh position-dependent at " << at
                                   << " of " << n;
    }
  }
}

TEST(SimdEquivalence, SpecialValues) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  const double denorm = std::numeric_limits<double>::denorm_min();
  Matrix a = Matrix::row({nan, -nan, inf, -inf, denorm, -denorm, 0.0, -0.0,
                          710.0, -710.0, 1e-300, -1.0, 1.0});
  Matrix g = Matrix::row({1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0,
                          11.0, 12.0, 13.0});
  Matrix got, want;

  // relu and relu_grad have documented NaN semantics (NaN → 0 / keep g);
  // both paths must implement the same rule.
  nn::map_relu_into(got, a);
  nn::scalar::map_relu_into(want, a);
  expect_bit_equal(got, want, "relu special");

  nn::relu_grad_into(got, g, a);
  nn::scalar::relu_grad_into(want, g, a);
  expect_bit_equal(got, want, "relu_grad special");

  // sigmoid/tanh: NaN propagates, ±inf and the exp over/underflow region
  // hit the exact limits; denormals pass through the polynomial.
  nn::map_sigmoid_into(got, a);
  nn::scalar::map_sigmoid_into(want, a);
  expect_close(got, want, 1e-12, "sigmoid special");
  EXPECT_TRUE(std::isnan(got[0]));
  EXPECT_EQ(got[2], 1.0);  // sigmoid(inf)

  nn::map_tanh_into(got, a);
  nn::scalar::map_tanh_into(want, a);
  expect_close(got, want, 1e-12, "tanh special");
  EXPECT_TRUE(std::isnan(got[0]));
  EXPECT_EQ(got[2], 1.0);
  EXPECT_EQ(got[3], -1.0);
}

TEST(SimdEquivalence, MatrixStorageIsAligned) {
  // The elementwise kernels issue aligned 256-bit loads; every Matrix
  // buffer (including pool-recycled and resized ones) must sit on a
  // 32-byte boundary.
  common::Rng rng(5);
  for (std::size_t n : {1u, 3u, 17u, 64u}) {
    Matrix m = Matrix::randn(n, n + 1, rng);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(m.data().data()) % 32, 0u);
  }
  nn::MatrixPool pool;
  Matrix& s = pool.get(3);
  s.resize(7, 5);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(s.data().data()) % 32, 0u);
}

TEST(SimdEquivalence, BatchedGanInferenceMatchesSequential) {
  gan::InfoRnnGanConfig cfg;
  cfg.seq_len = 6;
  cfg.hidden = 8;
  gan::InfoRnnGan g(cfg, 1234);

  // Mixed history lengths (shorter than, equal to, longer than seq_len)
  // and batch sizes that are not lane multiples.
  std::vector<std::vector<double>> histories;
  std::vector<std::size_t> clusters;
  common::Rng rng(6);
  for (std::size_t i = 0; i < 11; ++i) {
    std::vector<double> h(2 + i);
    for (auto& v : h) v = 0.5 + 0.45 * rng.normal() / 3.0;
    histories.push_back(h);
    clusters.push_back(i % cfg.num_codes);
  }

  const std::vector<double> batched = g.predict_next_batch(histories, clusters);
  ASSERT_EQ(batched.size(), histories.size());
  for (std::size_t i = 0; i < histories.size(); ++i) {
    const double seq = g.predict_next(histories[i], clusters[i]);
    EXPECT_EQ(batched[i], seq) << "forecast " << i
                               << " depends on batch composition";
  }
}

}  // namespace
}  // namespace mecsc
