// Tests for the serve ingest queue: Vyukov-style MPSC ring semantics
// (FIFO, bounded, exact delivery under producer contention) and the
// sharded front door's routing/backpressure. The stress tests here are
// the ones CI additionally runs under ThreadSanitizer.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "serve/ingest_queue.h"

namespace mecsc::serve {
namespace {

TEST(MpscRing, FifoSingleThreaded) {
  MpscRing ring(8);
  EXPECT_EQ(ring.capacity(), 8u);
  for (std::uint32_t i = 0; i < 5; ++i) {
    ASSERT_TRUE(ring.try_push({i, 0, static_cast<double>(i)}));
  }
  IngestEvent ev;
  for (std::uint32_t i = 0; i < 5; ++i) {
    ASSERT_TRUE(ring.try_pop(ev));
    EXPECT_EQ(ev.request, i);
    EXPECT_DOUBLE_EQ(ev.demand, static_cast<double>(i));
  }
  EXPECT_FALSE(ring.try_pop(ev));
}

TEST(MpscRing, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(MpscRing(1).capacity(), 4u);
  EXPECT_EQ(MpscRing(5).capacity(), 8u);
  EXPECT_EQ(MpscRing(64).capacity(), 64u);
}

TEST(MpscRing, FullRingRejectsWithoutBlocking) {
  MpscRing ring(4);
  for (std::uint32_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(ring.try_push({i, 0, 1.0}));
  }
  EXPECT_FALSE(ring.try_push({99, 0, 1.0}));
  IngestEvent ev;
  ASSERT_TRUE(ring.try_pop(ev));
  EXPECT_EQ(ev.request, 0u);
  // The freed cell is reusable immediately.
  EXPECT_TRUE(ring.try_push({99, 0, 1.0}));
  EXPECT_FALSE(ring.try_push({100, 0, 1.0}));
}

// The load-bearing property: N producers × M events each, a concurrent
// consumer, and every single event arrives exactly once — no losses, no
// duplicates — even though producers contend on full rings.
TEST(MpscRing, StressExactDeliveryUnderContention) {
  constexpr std::size_t kProducers = 4;
  constexpr std::uint32_t kPerProducer = 20000;
  MpscRing ring(256);  // small on purpose: constant full-ring pressure

  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&ring, p] {
      for (std::uint32_t i = 0; i < kPerProducer; ++i) {
        const std::uint32_t payload =
            static_cast<std::uint32_t>(p) * kPerProducer + i;
        while (!ring.try_push({payload, 0, 1.0})) {
          std::this_thread::yield();
        }
      }
    });
  }

  std::vector<std::uint8_t> seen(kProducers * kPerProducer, 0);
  std::size_t received = 0;
  IngestEvent ev;
  while (received < kProducers * kPerProducer) {
    if (ring.try_pop(ev)) {
      ASSERT_LT(ev.request, seen.size());
      ASSERT_EQ(seen[ev.request], 0) << "duplicate delivery of " << ev.request;
      seen[ev.request] = 1;
      ++received;
    } else {
      std::this_thread::yield();
    }
  }
  for (std::thread& t : producers) t.join();
  EXPECT_FALSE(ring.try_pop(ev));  // nothing left behind
  for (std::size_t i = 0; i < seen.size(); ++i) {
    ASSERT_EQ(seen[i], 1) << "event " << i << " lost";
  }
}

// Per-producer FIFO: one producer's events arrive in submission order
// even with another producer interleaving.
TEST(MpscRing, PerProducerOrderPreserved) {
  MpscRing ring(64);
  constexpr std::uint32_t kEach = 5000;
  std::thread a([&ring] {
    for (std::uint32_t i = 0; i < kEach; ++i) {
      while (!ring.try_push({i, 0, 1.0})) std::this_thread::yield();
    }
  });
  std::thread b([&ring] {
    for (std::uint32_t i = 0; i < kEach; ++i) {
      while (!ring.try_push({kEach + i, 1, 1.0})) std::this_thread::yield();
    }
  });
  std::uint32_t next_a = 0;
  std::uint32_t next_b = kEach;
  std::size_t received = 0;
  IngestEvent ev;
  while (received < 2 * kEach) {
    if (!ring.try_pop(ev)) {
      std::this_thread::yield();
      continue;
    }
    if (ev.slot == 0) {
      ASSERT_EQ(ev.request, next_a++);
    } else {
      ASSERT_EQ(ev.request, next_b++);
    }
    ++received;
  }
  a.join();
  b.join();
}

TEST(ShardedIngestQueue, RoutesByHomeStationModShards) {
  ShardedIngestQueue queue(3, 8);
  EXPECT_EQ(queue.num_shards(), 3u);
  EXPECT_EQ(queue.shard_of(0), 0u);
  EXPECT_EQ(queue.shard_of(4), 1u);
  EXPECT_EQ(queue.shard_of(5), 2u);
  ASSERT_TRUE(queue.try_push(4, {7, 0, 2.0}));
  IngestEvent ev;
  EXPECT_FALSE(queue.try_pop(0, ev));
  ASSERT_TRUE(queue.try_pop(1, ev));
  EXPECT_EQ(ev.request, 7u);
}

TEST(ShardedIngestQueue, DrainCollectsAcrossShards) {
  ShardedIngestQueue queue(4, 16);
  for (std::uint32_t i = 0; i < 12; ++i) {
    ASSERT_TRUE(queue.try_push(i, {i, 0, 1.0}));
  }
  EXPECT_EQ(queue.approx_depth(), 12u);
  std::vector<IngestEvent> out;
  EXPECT_EQ(queue.drain(out, static_cast<std::size_t>(-1)), 12u);
  EXPECT_EQ(out.size(), 12u);
  EXPECT_EQ(queue.approx_depth(), 0u);
}

TEST(ShardedIngestQueue, FullShardRejectsOthersUnaffected) {
  ShardedIngestQueue queue(2, 4);
  for (std::uint32_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(queue.try_push(0, {i, 0, 1.0}));
  }
  EXPECT_FALSE(queue.try_push(0, {4, 0, 1.0}));  // shard 0 full -> shed
  EXPECT_TRUE(queue.try_push(1, {5, 0, 1.0}));   // shard 1 still open
}

// Multi-producer stress through the sharded interface with a concurrent
// draining consumer: per-request demand sums must come out exact.
TEST(ShardedIngestQueue, StressShardedAccumulationExact) {
  constexpr std::size_t kProducers = 3;
  constexpr std::uint32_t kRequests = 64;
  constexpr std::uint32_t kRounds = 2000;
  ShardedIngestQueue queue(5, 128);

  std::vector<std::thread> producers;
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&queue, p] {
      // Static partition: producer p owns request ids ≡ p (mod kProducers).
      for (std::uint32_t round = 0; round < kRounds; ++round) {
        for (std::uint32_t l = static_cast<std::uint32_t>(p); l < kRequests;
             l += kProducers) {
          while (!queue.try_push(l % 7, {l, round, 1.0})) {
            std::this_thread::yield();
          }
        }
      }
    });
  }

  std::vector<std::uint32_t> counts(kRequests, 0);
  std::vector<IngestEvent> buffer;
  std::size_t total = 0;
  const std::size_t expected = kRequests * kRounds;
  while (total < expected) {
    buffer.clear();
    if (queue.drain(buffer, static_cast<std::size_t>(-1)) == 0) {
      std::this_thread::yield();
      continue;
    }
    for (const IngestEvent& ev : buffer) {
      ASSERT_LT(ev.request, kRequests);
      ++counts[ev.request];
    }
    total += buffer.size();
  }
  for (std::thread& t : producers) t.join();
  for (std::uint32_t l = 0; l < kRequests; ++l) {
    EXPECT_EQ(counts[l], kRounds) << "request " << l;
  }
}

}  // namespace
}  // namespace mecsc::serve
