file(REMOVE_RECURSE
  "CMakeFiles/bench_lp_vs_flow.dir/bench_lp_vs_flow.cpp.o"
  "CMakeFiles/bench_lp_vs_flow.dir/bench_lp_vs_flow.cpp.o.d"
  "bench_lp_vs_flow"
  "bench_lp_vs_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lp_vs_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
