file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_rnn.dir/bench_ablation_rnn.cpp.o"
  "CMakeFiles/bench_ablation_rnn.dir/bench_ablation_rnn.cpp.o.d"
  "bench_ablation_rnn"
  "bench_ablation_rnn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_rnn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
