# Empty compiler generated dependencies file for bench_ablation_rnn.
# This may be replaced when dependencies are built.
