# Empty compiler generated dependencies file for bench_ablation_ucb.
# This may be replaced when dependencies are built.
