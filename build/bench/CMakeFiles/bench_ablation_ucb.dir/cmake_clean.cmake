file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_ucb.dir/bench_ablation_ucb.cpp.o"
  "CMakeFiles/bench_ablation_ucb.dir/bench_ablation_ucb.cpp.o.d"
  "bench_ablation_ucb"
  "bench_ablation_ucb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_ucb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
