# Empty dependencies file for bench_predictors.
# This may be replaced when dependencies are built.
