# Empty compiler generated dependencies file for mecsc_lp.
# This may be replaced when dependencies are built.
