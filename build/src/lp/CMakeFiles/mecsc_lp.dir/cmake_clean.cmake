file(REMOVE_RECURSE
  "CMakeFiles/mecsc_lp.dir/model.cpp.o"
  "CMakeFiles/mecsc_lp.dir/model.cpp.o.d"
  "CMakeFiles/mecsc_lp.dir/simplex.cpp.o"
  "CMakeFiles/mecsc_lp.dir/simplex.cpp.o.d"
  "libmecsc_lp.a"
  "libmecsc_lp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mecsc_lp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
