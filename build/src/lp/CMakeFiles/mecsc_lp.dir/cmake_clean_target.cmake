file(REMOVE_RECURSE
  "libmecsc_lp.a"
)
