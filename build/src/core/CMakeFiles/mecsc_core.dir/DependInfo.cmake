
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/assignment.cpp" "src/core/CMakeFiles/mecsc_core.dir/assignment.cpp.o" "gcc" "src/core/CMakeFiles/mecsc_core.dir/assignment.cpp.o.d"
  "/root/repo/src/core/bandit.cpp" "src/core/CMakeFiles/mecsc_core.dir/bandit.cpp.o" "gcc" "src/core/CMakeFiles/mecsc_core.dir/bandit.cpp.o.d"
  "/root/repo/src/core/fractional_solver.cpp" "src/core/CMakeFiles/mecsc_core.dir/fractional_solver.cpp.o" "gcc" "src/core/CMakeFiles/mecsc_core.dir/fractional_solver.cpp.o.d"
  "/root/repo/src/core/lp_formulation.cpp" "src/core/CMakeFiles/mecsc_core.dir/lp_formulation.cpp.o" "gcc" "src/core/CMakeFiles/mecsc_core.dir/lp_formulation.cpp.o.d"
  "/root/repo/src/core/problem.cpp" "src/core/CMakeFiles/mecsc_core.dir/problem.cpp.o" "gcc" "src/core/CMakeFiles/mecsc_core.dir/problem.cpp.o.d"
  "/root/repo/src/core/regret.cpp" "src/core/CMakeFiles/mecsc_core.dir/regret.cpp.o" "gcc" "src/core/CMakeFiles/mecsc_core.dir/regret.cpp.o.d"
  "/root/repo/src/core/rounding.cpp" "src/core/CMakeFiles/mecsc_core.dir/rounding.cpp.o" "gcc" "src/core/CMakeFiles/mecsc_core.dir/rounding.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mecsc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/lp/CMakeFiles/mecsc_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/flow/CMakeFiles/mecsc_flow.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/mecsc_net.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/mecsc_workload.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
