file(REMOVE_RECURSE
  "CMakeFiles/mecsc_core.dir/assignment.cpp.o"
  "CMakeFiles/mecsc_core.dir/assignment.cpp.o.d"
  "CMakeFiles/mecsc_core.dir/bandit.cpp.o"
  "CMakeFiles/mecsc_core.dir/bandit.cpp.o.d"
  "CMakeFiles/mecsc_core.dir/fractional_solver.cpp.o"
  "CMakeFiles/mecsc_core.dir/fractional_solver.cpp.o.d"
  "CMakeFiles/mecsc_core.dir/lp_formulation.cpp.o"
  "CMakeFiles/mecsc_core.dir/lp_formulation.cpp.o.d"
  "CMakeFiles/mecsc_core.dir/problem.cpp.o"
  "CMakeFiles/mecsc_core.dir/problem.cpp.o.d"
  "CMakeFiles/mecsc_core.dir/regret.cpp.o"
  "CMakeFiles/mecsc_core.dir/regret.cpp.o.d"
  "CMakeFiles/mecsc_core.dir/rounding.cpp.o"
  "CMakeFiles/mecsc_core.dir/rounding.cpp.o.d"
  "libmecsc_core.a"
  "libmecsc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mecsc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
