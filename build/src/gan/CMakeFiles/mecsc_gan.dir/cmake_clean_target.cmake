file(REMOVE_RECURSE
  "libmecsc_gan.a"
)
