# Empty dependencies file for mecsc_gan.
# This may be replaced when dependencies are built.
