file(REMOVE_RECURSE
  "CMakeFiles/mecsc_gan.dir/info_rnn_gan.cpp.o"
  "CMakeFiles/mecsc_gan.dir/info_rnn_gan.cpp.o.d"
  "libmecsc_gan.a"
  "libmecsc_gan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mecsc_gan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
