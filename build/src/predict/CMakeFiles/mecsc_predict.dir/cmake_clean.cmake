file(REMOVE_RECURSE
  "CMakeFiles/mecsc_predict.dir/gan_predictor.cpp.o"
  "CMakeFiles/mecsc_predict.dir/gan_predictor.cpp.o.d"
  "CMakeFiles/mecsc_predict.dir/predictor.cpp.o"
  "CMakeFiles/mecsc_predict.dir/predictor.cpp.o.d"
  "libmecsc_predict.a"
  "libmecsc_predict.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mecsc_predict.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
