file(REMOVE_RECURSE
  "libmecsc_predict.a"
)
