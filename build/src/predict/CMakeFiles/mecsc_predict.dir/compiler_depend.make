# Empty compiler generated dependencies file for mecsc_predict.
# This may be replaced when dependencies are built.
