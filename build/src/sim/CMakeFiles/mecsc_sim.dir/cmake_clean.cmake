file(REMOVE_RECURSE
  "CMakeFiles/mecsc_sim.dir/scenario.cpp.o"
  "CMakeFiles/mecsc_sim.dir/scenario.cpp.o.d"
  "CMakeFiles/mecsc_sim.dir/simulator.cpp.o"
  "CMakeFiles/mecsc_sim.dir/simulator.cpp.o.d"
  "libmecsc_sim.a"
  "libmecsc_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mecsc_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
