file(REMOVE_RECURSE
  "libmecsc_common.a"
)
