file(REMOVE_RECURSE
  "CMakeFiles/mecsc_common.dir/rng.cpp.o"
  "CMakeFiles/mecsc_common.dir/rng.cpp.o.d"
  "CMakeFiles/mecsc_common.dir/stats.cpp.o"
  "CMakeFiles/mecsc_common.dir/stats.cpp.o.d"
  "CMakeFiles/mecsc_common.dir/table.cpp.o"
  "CMakeFiles/mecsc_common.dir/table.cpp.o.d"
  "libmecsc_common.a"
  "libmecsc_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mecsc_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
