# Empty dependencies file for mecsc_common.
# This may be replaced when dependencies are built.
