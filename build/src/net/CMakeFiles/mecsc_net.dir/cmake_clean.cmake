file(REMOVE_RECURSE
  "CMakeFiles/mecsc_net.dir/base_station.cpp.o"
  "CMakeFiles/mecsc_net.dir/base_station.cpp.o.d"
  "CMakeFiles/mecsc_net.dir/delay_process.cpp.o"
  "CMakeFiles/mecsc_net.dir/delay_process.cpp.o.d"
  "CMakeFiles/mecsc_net.dir/generators.cpp.o"
  "CMakeFiles/mecsc_net.dir/generators.cpp.o.d"
  "CMakeFiles/mecsc_net.dir/topology.cpp.o"
  "CMakeFiles/mecsc_net.dir/topology.cpp.o.d"
  "CMakeFiles/mecsc_net.dir/wireless.cpp.o"
  "CMakeFiles/mecsc_net.dir/wireless.cpp.o.d"
  "libmecsc_net.a"
  "libmecsc_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mecsc_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
