
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/base_station.cpp" "src/net/CMakeFiles/mecsc_net.dir/base_station.cpp.o" "gcc" "src/net/CMakeFiles/mecsc_net.dir/base_station.cpp.o.d"
  "/root/repo/src/net/delay_process.cpp" "src/net/CMakeFiles/mecsc_net.dir/delay_process.cpp.o" "gcc" "src/net/CMakeFiles/mecsc_net.dir/delay_process.cpp.o.d"
  "/root/repo/src/net/generators.cpp" "src/net/CMakeFiles/mecsc_net.dir/generators.cpp.o" "gcc" "src/net/CMakeFiles/mecsc_net.dir/generators.cpp.o.d"
  "/root/repo/src/net/topology.cpp" "src/net/CMakeFiles/mecsc_net.dir/topology.cpp.o" "gcc" "src/net/CMakeFiles/mecsc_net.dir/topology.cpp.o.d"
  "/root/repo/src/net/wireless.cpp" "src/net/CMakeFiles/mecsc_net.dir/wireless.cpp.o" "gcc" "src/net/CMakeFiles/mecsc_net.dir/wireless.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mecsc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
