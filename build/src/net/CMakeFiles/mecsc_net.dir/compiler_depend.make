# Empty compiler generated dependencies file for mecsc_net.
# This may be replaced when dependencies are built.
