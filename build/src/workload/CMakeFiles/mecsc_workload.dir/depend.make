# Empty dependencies file for mecsc_workload.
# This may be replaced when dependencies are built.
