file(REMOVE_RECURSE
  "libmecsc_workload.a"
)
