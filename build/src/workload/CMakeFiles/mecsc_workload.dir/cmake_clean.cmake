file(REMOVE_RECURSE
  "CMakeFiles/mecsc_workload.dir/demand_model.cpp.o"
  "CMakeFiles/mecsc_workload.dir/demand_model.cpp.o.d"
  "CMakeFiles/mecsc_workload.dir/mobility.cpp.o"
  "CMakeFiles/mecsc_workload.dir/mobility.cpp.o.d"
  "CMakeFiles/mecsc_workload.dir/trace.cpp.o"
  "CMakeFiles/mecsc_workload.dir/trace.cpp.o.d"
  "libmecsc_workload.a"
  "libmecsc_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mecsc_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
