file(REMOVE_RECURSE
  "libmecsc_nn.a"
)
