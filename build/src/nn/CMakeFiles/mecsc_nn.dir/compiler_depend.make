# Empty compiler generated dependencies file for mecsc_nn.
# This may be replaced when dependencies are built.
