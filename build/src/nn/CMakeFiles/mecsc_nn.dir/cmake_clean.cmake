file(REMOVE_RECURSE
  "CMakeFiles/mecsc_nn.dir/autodiff.cpp.o"
  "CMakeFiles/mecsc_nn.dir/autodiff.cpp.o.d"
  "CMakeFiles/mecsc_nn.dir/layers.cpp.o"
  "CMakeFiles/mecsc_nn.dir/layers.cpp.o.d"
  "CMakeFiles/mecsc_nn.dir/matrix.cpp.o"
  "CMakeFiles/mecsc_nn.dir/matrix.cpp.o.d"
  "CMakeFiles/mecsc_nn.dir/optimizer.cpp.o"
  "CMakeFiles/mecsc_nn.dir/optimizer.cpp.o.d"
  "libmecsc_nn.a"
  "libmecsc_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mecsc_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
