file(REMOVE_RECURSE
  "libmecsc_flow.a"
)
