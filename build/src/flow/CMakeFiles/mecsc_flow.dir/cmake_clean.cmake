file(REMOVE_RECURSE
  "CMakeFiles/mecsc_flow.dir/min_cost_flow.cpp.o"
  "CMakeFiles/mecsc_flow.dir/min_cost_flow.cpp.o.d"
  "libmecsc_flow.a"
  "libmecsc_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mecsc_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
