# Empty compiler generated dependencies file for mecsc_flow.
# This may be replaced when dependencies are built.
