file(REMOVE_RECURSE
  "libmecsc_algorithms.a"
)
