# Empty dependencies file for mecsc_algorithms.
# This may be replaced when dependencies are built.
