file(REMOVE_RECURSE
  "CMakeFiles/mecsc_algorithms.dir/baselines.cpp.o"
  "CMakeFiles/mecsc_algorithms.dir/baselines.cpp.o.d"
  "CMakeFiles/mecsc_algorithms.dir/ol_gd.cpp.o"
  "CMakeFiles/mecsc_algorithms.dir/ol_gd.cpp.o.d"
  "libmecsc_algorithms.a"
  "libmecsc_algorithms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mecsc_algorithms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
