# Empty compiler generated dependencies file for mecsc_cli.
# This may be replaced when dependencies are built.
