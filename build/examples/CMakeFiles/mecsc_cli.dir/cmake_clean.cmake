file(REMOVE_RECURSE
  "CMakeFiles/mecsc_cli.dir/mecsc_cli.cpp.o"
  "CMakeFiles/mecsc_cli.dir/mecsc_cli.cpp.o.d"
  "mecsc_cli"
  "mecsc_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mecsc_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
