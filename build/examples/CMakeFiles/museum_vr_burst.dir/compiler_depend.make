# Empty compiler generated dependencies file for museum_vr_burst.
# This may be replaced when dependencies are built.
