file(REMOVE_RECURSE
  "CMakeFiles/museum_vr_burst.dir/museum_vr_burst.cpp.o"
  "CMakeFiles/museum_vr_burst.dir/museum_vr_burst.cpp.o.d"
  "museum_vr_burst"
  "museum_vr_burst.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/museum_vr_burst.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
