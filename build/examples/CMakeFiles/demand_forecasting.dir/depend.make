# Empty dependencies file for demand_forecasting.
# This may be replaced when dependencies are built.
