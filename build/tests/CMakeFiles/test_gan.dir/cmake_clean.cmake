file(REMOVE_RECURSE
  "CMakeFiles/test_gan.dir/test_gan.cpp.o"
  "CMakeFiles/test_gan.dir/test_gan.cpp.o.d"
  "test_gan"
  "test_gan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
