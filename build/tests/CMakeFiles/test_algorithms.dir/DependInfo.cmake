
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_algorithms.cpp" "tests/CMakeFiles/test_algorithms.dir/test_algorithms.cpp.o" "gcc" "tests/CMakeFiles/test_algorithms.dir/test_algorithms.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mecsc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/lp/CMakeFiles/mecsc_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/flow/CMakeFiles/mecsc_flow.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/mecsc_net.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/mecsc_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/mecsc_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/gan/CMakeFiles/mecsc_gan.dir/DependInfo.cmake"
  "/root/repo/build/src/predict/CMakeFiles/mecsc_predict.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/mecsc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/algorithms/CMakeFiles/mecsc_algorithms.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mecsc_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
