// Scaling sweep for demand-class aggregation (DESIGN.md §11) and the
// solver tiers (DESIGN.md §16): runs OL_GD at |R| in {1k, 10k, 100k, 1M}
// with the per-slot solve aggregated (MECSC_AGGREGATE-style classes) and,
// where affordable, unaggregated, on the flow and Lagrangian tiers, then
// reports per-slot decision time, mean delay and class counts. Results
// are printed as a table and written to BENCH_scale.json.
//
// Acceptance gates (printed as OK/MISMATCH):
//   * aggregated decision time grows sublinearly in |R| from 1k to 100k;
//   * aggregated is >= 5x faster than unaggregated at 10k;
//   * aggregated mean delay is within 2% of unaggregated at 1k;
//   * Lagrangian-tier decision time grows sublinearly 100k -> 1M;
//   * the Lagrangian objective is within 1% of the exact flow LP at 10k.
// `--quick` shrinks sizes for the CTest perf-smoke label; it checks the
// harness runs end-to-end, not that the numbers are good.
// `--baseline <path>` additionally validates a committed BENCH_scale.json
// (bench/baselines/): the recorded full-grid points must satisfy the
// 100k -> 1M sublinear-growth and objective-gap gates, and violations
// fail the process — this is how perf-smoke enforces the 1M gates
// without timing a 1M run on CI hardware.
#include <algorithm>
#include <cmath>
#include <cstring>
#include <fstream>
#include <iostream>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "algorithms/ol_gd.h"
#include "bench_util.h"
#include "common/table.h"
#include "core/aggregation.h"
#include "core/fractional_solver.h"
#include "core/lagrangian_solver.h"
#include "core/solver_tier.h"
#include "sim/scenario.h"
#include "sim/simulator.h"

using namespace mecsc;

namespace {

struct ScalePoint {
  std::size_t requests = 0;
  bool aggregated = false;
  core::SolverTier tier = core::SolverTier::kFlow;
  double decision_ms_per_slot = 0.0;
  double mean_delay_ms = 0.0;
  std::size_t classes = 0;  // 0 on the unaggregated path
  std::size_t slots = 0;
};

void write_json(const std::vector<ScalePoint>& points, double lag_gap_rel,
                bool quick) {
  std::ofstream out("BENCH_scale.json");
  out << "{\n  " << bench::json_meta() << ",\n  \"quick\": "
      << (quick ? "true" : "false") << ",\n  \"lag_gap_rel\": " << lag_gap_rel
      << ",\n  \"points\": [\n";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const auto& p = points[i];
    out << "    {\"requests\": " << p.requests << ", \"aggregated\": "
        << (p.aggregated ? "true" : "false") << ", \"solver\": \""
        << core::solver_tier_name(p.tier) << "\""
        << ", \"decision_ms_per_slot\": " << p.decision_ms_per_slot
        << ", \"mean_delay_ms\": " << p.mean_delay_ms
        << ", \"classes\": " << p.classes << ", \"slots\": " << p.slots << "}"
        << (i + 1 < points.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

std::string mode_name(bool aggregated, core::SolverTier tier) {
  std::string m = aggregated ? "agg" : "flat";
  if (tier != core::SolverTier::kFlow) {
    m += "+";
    m += core::solver_tier_name(tier);
  }
  return m;
}

/// Runs OL_GD once on `scenario` with aggregation and the solver tier
/// forced explicitly and returns the measured point. The explicit
/// settings override any MECSC_AGGREGATE / MECSC_SOLVER in the
/// environment (the sweep must control every arm).
ScalePoint run_point(sim::Scenario& scenario, std::size_t requests,
                     bool aggregated, core::SolverTier tier,
                     std::size_t slots) {
  algorithms::OlOptions opt;
  opt.theta_prior = scenario.theta_prior();
  opt.aggregate =
      aggregated ? core::AggregateMode::kOn : core::AggregateMode::kOff;
  opt.solver = tier;
  algorithms::OnlineCachingAlgorithm ol("OL_GD", scenario.problem(),
                                        &scenario.demands(), opt,
                                        scenario.algorithm_seed(0));
  sim::RunResult r = scenario.simulator().run(ol);
  ScalePoint p;
  p.requests = requests;
  p.aggregated = aggregated;
  p.tier = tier;
  p.decision_ms_per_slot = r.mean_decision_time_ms();
  p.mean_delay_ms = r.mean_delay_ms();
  p.classes = ol.last_num_classes();
  p.slots = slots;
  std::cout << "  |R|=" << requests << " " << mode_name(aggregated, tier)
            << ": " << common::fmt(p.decision_ms_per_slot, 2)
            << " ms/slot decision, mean delay "
            << common::fmt(p.mean_delay_ms, 2) << " ms"
            << (aggregated ? " (" + std::to_string(p.classes) + " classes)"
                           : "")
            << "\n";
  return p;
}

const ScalePoint* find(const std::vector<ScalePoint>& points,
                       std::size_t requests, bool aggregated,
                       core::SolverTier tier) {
  for (const auto& p : points) {
    if (p.requests == requests && p.aggregated == aggregated &&
        p.tier == tier) {
      return &p;
    }
  }
  return nullptr;
}

/// Relative objective gap of one Lagrangian class-solve versus the exact
/// flow LP on the identical classing and θ (slot 0 of `scenario`). This
/// is the direct solver-vs-solver form of the tier-equivalence contract:
/// same columns, same cost coefficients, same true-Eq.3 scoring.
double lag_gap_vs_exact(sim::Scenario& scenario) {
  const core::CachingProblem& problem = scenario.problem();
  std::vector<double> theta(problem.num_stations(), scenario.theta_prior());
  const std::vector<double> demands = scenario.demands().slot(0);
  core::DemandClassing classing;
  classing.build(problem, demands, core::AggregationOptions{});
  core::FractionalSolver exact(problem);
  const core::FractionalSolution lp = exact.solve_classes(classing, theta);
  core::LagrangianSolver lag(problem);
  const core::LagrangianOutcome out = lag.solve_classes(classing, theta);
  if (!out.converged) return std::numeric_limits<double>::infinity();
  return (out.solution.objective - lp.objective) /
         std::max(1e-9, lp.objective);
}

/// In full mode prints OK/MISMATCH; in --quick the same lines are
/// informational only — the gates are calibrated for the full grid
/// (compression needs per-(service, station) request density the quick
/// sizes don't have), and the smoke test asserts the harness runs, not
/// the numbers.
void check(bool ok, bool quick, const std::string& what) {
  std::cout << "  " << what
            << (quick ? " (info)" : (ok ? " (OK)" : " (MISMATCH)")) << "\n";
}

/// decision_ms_per_slot recorded in a baselines JSON (write_json format)
/// for the (requests, solver) point, or a negative value when absent.
/// String scan — the files are machine-written, one point per line.
double baseline_decision_ms(const std::string& path, std::size_t requests,
                            const char* solver) {
  std::ifstream in(path);
  if (!in) return -1.0;
  const std::string req_needle =
      "\"requests\": " + std::to_string(requests) + ",";
  const std::string solver_needle =
      std::string("\"solver\": \"") + solver + "\"";
  const std::string key = "\"decision_ms_per_slot\": ";
  std::string line;
  while (std::getline(in, line)) {
    if (line.find(req_needle) == std::string::npos ||
        line.find(solver_needle) == std::string::npos) {
      continue;
    }
    const std::size_t at = line.find(key);
    if (at == std::string::npos) return -1.0;
    return std::strtod(line.c_str() + at + key.size(), nullptr);
  }
  return -1.0;
}

/// Top-level scalar recorded in a baselines JSON, or NaN when absent.
double baseline_scalar(const std::string& path, const std::string& name) {
  std::ifstream in(path);
  if (!in) return std::numeric_limits<double>::quiet_NaN();
  const std::string key = "\"" + name + "\": ";
  std::string line;
  while (std::getline(in, line)) {
    const std::size_t at = line.find(key);
    if (at == std::string::npos) continue;
    return std::strtod(line.c_str() + at + key.size(), nullptr);
  }
  return std::numeric_limits<double>::quiet_NaN();
}

/// Enforces the committed baseline's 1M gates. Returns false (and prints
/// FAIL lines) when the recorded full-grid points violate them — the
/// perf-smoke leg runs `--quick --baseline` so a bad committed baseline
/// cannot slip through CI unexamined.
bool check_baseline(const std::string& path) {
  bool ok = true;
  const double lag_100k = baseline_decision_ms(path, 100000, "lagrangian");
  const double lag_1m = baseline_decision_ms(path, 1000000, "lagrangian");
  if (lag_100k <= 0.0 || lag_1m <= 0.0) {
    std::cout << "FAIL: baseline " << path
              << " lacks the 100k/1M lagrangian points\n";
    return false;
  }
  const double growth = lag_1m / lag_100k;
  if (growth >= 10.0) {
    std::cout << "FAIL: baseline lagrangian decision time grew x"
              << common::fmt(growth, 2)
              << " from 100k to 1M (gate < x10, sublinear)\n";
    ok = false;
  } else {
    std::cout << "  baseline lagrangian 100k->1M growth x"
              << common::fmt(growth, 2) << " (gate < x10) (OK)\n";
  }
  const double gap = baseline_scalar(path, "lag_gap_rel");
  if (!(std::abs(gap) <= 0.01)) {
    std::cout << "FAIL: baseline lagrangian objective gap "
              << common::fmt(100.0 * gap, 3) << "% exceeds 1% of the exact LP\n";
    ok = false;
  } else {
    std::cout << "  baseline lagrangian objective gap "
              << common::fmt(100.0 * gap, 3) << "% (gate <= 1%) (OK)\n";
  }
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string baseline_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    if (std::strcmp(argv[i], "--baseline") == 0 && i + 1 < argc) {
      baseline_path = argv[++i];
    }
  }

  bench::print_header(
      "OL_GD scaling sweep: aggregation and solver tier vs |R|",
      std::string("DESIGN.md §11, §16; BENCH_scale.json") +
          (quick ? " [--quick]" : ""));

  // Sweep grid. The unaggregated path is O(|R|) columns per solve and
  // becomes prohibitive beyond 10k, so the 100k/1M points run aggregated
  // only (that asymmetry is the point of the bench); the 1M point runs
  // the Lagrangian tier only (the decomposition is what makes it
  // tractable). Expensive arms get fewer slots to keep wall-clock sane —
  // decision time is reported per slot, so arms stay comparable.
  struct Arm {
    std::size_t requests;
    bool aggregated;
    core::SolverTier tier;
    std::size_t slots;
  };
  constexpr auto kFlow = core::SolverTier::kFlow;
  constexpr auto kLag = core::SolverTier::kLagrangian;
  std::vector<Arm> arms;
  const std::size_t stations = quick ? 40 : 100;
  if (quick) {
    arms = {{300, false, kFlow, 3},
            {300, true, kFlow, 3},
            {1000, false, kFlow, 3},
            {1000, true, kFlow, 3},
            {1000, true, kLag, 3}};
  } else {
    arms = {{1000, false, kFlow, 6},   {1000, true, kFlow, 6},
            {10000, false, kFlow, 2},  {10000, true, kFlow, 2},
            {10000, true, kLag, 2},    {100000, true, kFlow, 3},
            {100000, true, kLag, 3},   {1000000, true, kLag, 3}};
  }

  std::vector<ScalePoint> points;
  double lag_gap_rel = std::numeric_limits<double>::quiet_NaN();
  std::size_t current_requests = 0;
  std::size_t current_slots = 0;
  std::unique_ptr<sim::Scenario> scenario;
  const std::size_t gap_requests = quick ? 1000 : 10000;
  for (const Arm& arm : arms) {
    // Arms of one |R| share the scenario (same topology, workload and
    // demand sample path) as long as the slot count matches too.
    if (scenario == nullptr || current_requests != arm.requests ||
        current_slots != arm.slots) {
      sim::ScenarioParams p;
      p.num_stations = stations;
      p.horizon = arm.slots;
      p.history_horizon = 4;  // predictors unused; keep scenario build cheap
      p.workload.num_requests = arm.requests;
      p.seed = 20250806;
      scenario = std::make_unique<sim::Scenario>(p);
      current_requests = arm.requests;
      current_slots = arm.slots;
    }
    if (arm.requests == gap_requests && std::isnan(lag_gap_rel)) {
      lag_gap_rel = lag_gap_vs_exact(*scenario);
      std::cout << "  |R|=" << arm.requests
                << " lagrangian objective vs exact LP: "
                << common::fmt(100.0 * lag_gap_rel, 3) << "%\n";
    }
    points.push_back(run_point(*scenario, arm.requests, arm.aggregated,
                               arm.tier, arm.slots));
  }

  common::Table table({"requests", "mode", "classes", "decision (ms/slot)",
                       "mean delay (ms)"});
  for (const auto& p : points) {
    table.add_row({std::to_string(p.requests), mode_name(p.aggregated, p.tier),
                   p.aggregated ? std::to_string(p.classes) : "-",
                   common::fmt(p.decision_ms_per_slot, 2),
                   common::fmt(p.mean_delay_ms, 2)});
  }
  bench::print_table("Scaling: decision time and delay vs |R|", table);

  // Acceptance gates (full mode; --quick prints the small-grid variants
  // for eyeballing but the smoke test only asserts the harness runs).
  std::cout << "\nChecks:\n";
  const std::size_t lo = quick ? 300 : 1000;
  const std::size_t mid = quick ? 1000 : 10000;
  const std::size_t hi = quick ? 1000 : 100000;
  const std::size_t top = quick ? 1000 : 1000000;
  const ScalePoint* agg_lo = find(points, lo, true, kFlow);
  const ScalePoint* agg_mid = find(points, mid, true, kFlow);
  const ScalePoint* agg_hi = find(points, hi, true, kFlow);
  const ScalePoint* flat_lo = find(points, lo, false, kFlow);
  const ScalePoint* flat_mid = find(points, mid, false, kFlow);
  const ScalePoint* lag_hi = find(points, hi, true, kLag);
  const ScalePoint* lag_top = find(points, top, true, kLag);
  if (agg_lo && agg_hi) {
    const double growth = agg_hi->decision_ms_per_slot /
                          std::max(1e-9, agg_lo->decision_ms_per_slot);
    const double size_ratio =
        static_cast<double>(hi) / static_cast<double>(lo);
    check(growth < size_ratio, quick,
          "aggregated decision time sublinear " + std::to_string(lo) + "->" +
              std::to_string(hi) + " (x" + common::fmt(growth, 1) +
              " vs linear x" + common::fmt(size_ratio, 0) + ")");
  }
  if (agg_mid && flat_mid) {
    const double speedup = flat_mid->decision_ms_per_slot /
                           std::max(1e-9, agg_mid->decision_ms_per_slot);
    check(speedup >= 5.0, quick, "aggregation speedup at " + std::to_string(mid) +
                              " requests >= 5x (x" + common::fmt(speedup, 1) +
                              ")");
  }
  if (agg_lo && flat_lo) {
    const double rel = (agg_lo->mean_delay_ms - flat_lo->mean_delay_ms) /
                       std::max(1e-9, flat_lo->mean_delay_ms);
    check(rel <= 0.02 && rel >= -0.02, quick,
          "aggregated mean delay within 2% of per-request at " +
              std::to_string(lo) + " (" + common::fmt(100.0 * rel, 2) + "%)");
  }
  if (lag_hi && lag_top && hi != top) {
    const double growth = lag_top->decision_ms_per_slot /
                          std::max(1e-9, lag_hi->decision_ms_per_slot);
    const double size_ratio =
        static_cast<double>(top) / static_cast<double>(hi);
    check(growth < size_ratio, quick,
          "lagrangian decision time sublinear " + std::to_string(hi) + "->" +
              std::to_string(top) + " (x" + common::fmt(growth, 1) +
              " vs linear x" + common::fmt(size_ratio, 0) + ")");
  }
  if (!std::isnan(lag_gap_rel)) {
    check(std::abs(lag_gap_rel) <= 0.01, quick,
          "lagrangian objective within 1% of exact LP at " +
              std::to_string(gap_requests) + " (" +
              common::fmt(100.0 * lag_gap_rel, 3) + "%)");
  }

  write_json(points, lag_gap_rel, quick);
  std::cout << "\nwrote BENCH_scale.json\n";

  bool ok = true;
  if (!baseline_path.empty()) {
    std::cout << "\nBaseline gates (" << baseline_path << "):\n";
    ok = check_baseline(baseline_path);
  }
  bench::dump_telemetry();
  return ok ? 0 : 1;
}
