// Scaling sweep for demand-class aggregation (DESIGN.md §11): runs OL_GD
// at |R| in {1k, 10k, 100k} with the per-slot solve aggregated
// (MECSC_AGGREGATE-style classes) and, where affordable, unaggregated,
// then reports per-slot decision time, mean delay and class counts.
// Results are printed as a table and written to BENCH_scale.json.
//
// Acceptance gates (printed as OK/MISMATCH):
//   * aggregated decision time grows sublinearly in |R| from 1k to 100k;
//   * aggregated is >= 5x faster than unaggregated at 10k;
//   * aggregated mean delay is within 2% of unaggregated at 1k.
// `--quick` shrinks sizes for the CTest perf-smoke label; it checks the
// harness runs end-to-end, not that the numbers are good.
#include <algorithm>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "algorithms/ol_gd.h"
#include "bench_util.h"
#include "common/table.h"
#include "sim/scenario.h"
#include "sim/simulator.h"

using namespace mecsc;

namespace {

struct ScalePoint {
  std::size_t requests = 0;
  bool aggregated = false;
  double decision_ms_per_slot = 0.0;
  double mean_delay_ms = 0.0;
  std::size_t classes = 0;  // 0 on the unaggregated path
  std::size_t slots = 0;
};

void write_json(const std::vector<ScalePoint>& points, bool quick) {
  std::ofstream out("BENCH_scale.json");
  out << "{\n  " << bench::json_meta() << ",\n  \"quick\": "
      << (quick ? "true" : "false") << ",\n  \"points\": [\n";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const auto& p = points[i];
    out << "    {\"requests\": " << p.requests << ", \"aggregated\": "
        << (p.aggregated ? "true" : "false")
        << ", \"decision_ms_per_slot\": " << p.decision_ms_per_slot
        << ", \"mean_delay_ms\": " << p.mean_delay_ms
        << ", \"classes\": " << p.classes << ", \"slots\": " << p.slots << "}"
        << (i + 1 < points.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

/// Runs OL_GD once on `scenario` with aggregation forced on or off and
/// returns the measured point. The explicit mode overrides any
/// MECSC_AGGREGATE in the environment (the sweep must control both arms).
ScalePoint run_point(sim::Scenario& scenario, std::size_t requests,
                     bool aggregated, std::size_t slots) {
  algorithms::OlOptions opt;
  opt.theta_prior = scenario.theta_prior();
  opt.aggregate =
      aggregated ? core::AggregateMode::kOn : core::AggregateMode::kOff;
  algorithms::OnlineCachingAlgorithm ol("OL_GD", scenario.problem(),
                                        &scenario.demands(), opt,
                                        scenario.algorithm_seed(0));
  sim::RunResult r = scenario.simulator().run(ol);
  ScalePoint p;
  p.requests = requests;
  p.aggregated = aggregated;
  p.decision_ms_per_slot = r.mean_decision_time_ms();
  p.mean_delay_ms = r.mean_delay_ms();
  p.classes = ol.last_num_classes();
  p.slots = slots;
  std::cout << "  |R|=" << requests << (aggregated ? " agg " : " flat")
            << ": " << common::fmt(p.decision_ms_per_slot, 2)
            << " ms/slot decision, mean delay "
            << common::fmt(p.mean_delay_ms, 2) << " ms"
            << (aggregated ? " (" + std::to_string(p.classes) + " classes)"
                           : "")
            << "\n";
  return p;
}

const ScalePoint* find(const std::vector<ScalePoint>& points,
                       std::size_t requests, bool aggregated) {
  for (const auto& p : points) {
    if (p.requests == requests && p.aggregated == aggregated) return &p;
  }
  return nullptr;
}

/// In full mode prints OK/MISMATCH; in --quick the same lines are
/// informational only — the gates are calibrated for the full grid
/// (compression needs per-(service, station) request density the quick
/// sizes don't have), and the smoke test asserts the harness runs, not
/// the numbers.
void check(bool ok, bool quick, const std::string& what) {
  std::cout << "  " << what
            << (quick ? " (info)" : (ok ? " (OK)" : " (MISMATCH)")) << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }

  bench::print_header(
      "OL_GD scaling sweep: demand-class aggregation on/off vs |R|",
      std::string("DESIGN.md §11; BENCH_scale.json") +
          (quick ? " [--quick]" : ""));

  // Sweep grid. The unaggregated path is O(|R|) columns per solve and
  // becomes prohibitive beyond 10k, so the 100k point runs aggregated
  // only (that asymmetry is the point of the bench); expensive arms get
  // fewer slots to keep wall-clock sane — decision time is reported per
  // slot, so arms stay comparable.
  struct Arm {
    std::size_t requests;
    bool aggregated;
    std::size_t slots;
  };
  std::vector<Arm> arms;
  const std::size_t stations = quick ? 40 : 100;
  if (quick) {
    arms = {{300, false, 3}, {300, true, 3}, {1000, false, 3}, {1000, true, 3}};
  } else {
    arms = {{1000, false, 6},  {1000, true, 6},   {10000, false, 2},
            {10000, true, 2},  {100000, true, 3}};
  }

  std::vector<ScalePoint> points;
  std::size_t current_requests = 0;
  std::size_t current_slots = 0;
  std::unique_ptr<sim::Scenario> scenario;
  for (const Arm& arm : arms) {
    // Both arms of one |R| share the scenario (same topology, workload
    // and demand sample path) as long as the slot count matches too.
    if (scenario == nullptr || current_requests != arm.requests ||
        current_slots != arm.slots) {
      sim::ScenarioParams p;
      p.num_stations = stations;
      p.horizon = arm.slots;
      p.history_horizon = 4;  // predictors unused; keep scenario build cheap
      p.workload.num_requests = arm.requests;
      p.seed = 20250806;
      scenario = std::make_unique<sim::Scenario>(p);
      current_requests = arm.requests;
      current_slots = arm.slots;
    }
    points.push_back(
        run_point(*scenario, arm.requests, arm.aggregated, arm.slots));
  }

  common::Table table({"requests", "mode", "classes", "decision (ms/slot)",
                       "mean delay (ms)"});
  for (const auto& p : points) {
    table.add_row({std::to_string(p.requests),
                   p.aggregated ? "aggregated" : "per-request",
                   p.aggregated ? std::to_string(p.classes) : "-",
                   common::fmt(p.decision_ms_per_slot, 2),
                   common::fmt(p.mean_delay_ms, 2)});
  }
  bench::print_table("Scaling: decision time and delay vs |R|", table);

  // Acceptance gates (full mode; --quick prints the small-grid variants
  // for eyeballing but the smoke test only asserts the harness runs).
  std::cout << "\nChecks:\n";
  const std::size_t lo = quick ? 300 : 1000;
  const std::size_t mid = quick ? 1000 : 10000;
  const std::size_t hi = quick ? 1000 : 100000;
  const ScalePoint* agg_lo = find(points, lo, true);
  const ScalePoint* agg_mid = find(points, mid, true);
  const ScalePoint* agg_hi = find(points, hi, true);
  const ScalePoint* flat_lo = find(points, lo, false);
  const ScalePoint* flat_mid = find(points, mid, false);
  if (agg_lo && agg_hi) {
    const double growth = agg_hi->decision_ms_per_slot /
                          std::max(1e-9, agg_lo->decision_ms_per_slot);
    const double size_ratio =
        static_cast<double>(hi) / static_cast<double>(lo);
    check(growth < size_ratio, quick,
          "aggregated decision time sublinear " + std::to_string(lo) + "->" +
              std::to_string(hi) + " (x" + common::fmt(growth, 1) +
              " vs linear x" + common::fmt(size_ratio, 0) + ")");
  }
  if (agg_mid && flat_mid) {
    const double speedup = flat_mid->decision_ms_per_slot /
                           std::max(1e-9, agg_mid->decision_ms_per_slot);
    check(speedup >= 5.0, quick, "aggregation speedup at " + std::to_string(mid) +
                              " requests >= 5x (x" + common::fmt(speedup, 1) +
                              ")");
  }
  if (agg_lo && flat_lo) {
    const double rel = (agg_lo->mean_delay_ms - flat_lo->mean_delay_ms) /
                       std::max(1e-9, flat_lo->mean_delay_ms);
    check(rel <= 0.02 && rel >= -0.02, quick,
          "aggregated mean delay within 2% of per-request at " +
              std::to_string(lo) + " (" + common::fmt(100.0 * rel, 2) + "%)");
  }

  write_json(points, quick);
  std::cout << "\nwrote BENCH_scale.json\n";
  bench::dump_telemetry();
  return 0;
}
