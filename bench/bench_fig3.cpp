// Reproduces Fig. 3 of the paper: OL_GD vs Greedy_GD vs Pri_GD on a
// synthetic 100-station network over 100 time slots with given demands.
//   (a) average delay per time slot;
//   (b) running time.
// Values are means over MECSC_TOPOLOGIES topology replications (paper: 80).
#include <iostream>
#include <vector>

#include "algorithms/baselines.h"
#include "algorithms/ol_gd.h"
#include "bench_util.h"
#include "common/stats.h"
#include "sim/replication.h"
#include "sim/scenario.h"

using namespace mecsc;

int main() {
  const std::size_t topologies = bench::env_size("MECSC_TOPOLOGIES", 8);
  const std::size_t slots = bench::env_size("MECSC_SLOTS", 100);
  const std::size_t stations = bench::env_size("MECSC_STATIONS", 100);
  const std::size_t requests = bench::env_size("MECSC_REQUESTS", 100);

  bench::print_header(
      "OL_GD vs Greedy_GD vs Pri_GD, synthetic GT-ITM-like network, given demands",
      "Fig. 3(a) avg delay per slot, Fig. 3(b) running time "
      "(" + std::to_string(stations) + " stations, " + std::to_string(slots) +
          " slots, " + std::to_string(topologies) + " topologies)");

  const std::size_t kBucket = 10;  // average slots in buckets of 10 for the series
  std::vector<common::RunningStats> series_ol(slots / kBucket);
  std::vector<common::RunningStats> series_gr(slots / kBucket);
  std::vector<common::RunningStats> series_pr(slots / kBucket);
  common::RunningStats mean_ol, mean_gr, mean_pr;
  common::RunningStats time_ol, time_gr, time_pr;

  struct RepResult {
    sim::RunResult ol, gr, pr;
  };
  sim::run_replications(
      topologies,
      [&](std::size_t rep) {
        sim::ScenarioParams p;
        p.num_stations = stations;
        p.horizon = slots;
        p.workload.num_requests = requests;
        p.seed = 1000 + rep;
        sim::Scenario s(p);

        algorithms::OlOptions opt;
        opt.theta_prior = s.theta_prior();
        auto ol = algorithms::make_ol_gd(s.problem(), s.demands(), opt,
                                         s.algorithm_seed(0));
        auto gr = algorithms::make_greedy_gd(s.problem(), s.demands(),
                                             s.historical_delay_estimates());
        auto pr = algorithms::make_pri_gd(s.problem(), s.demands(),
                                          s.historical_delay_estimates());
        return RepResult{s.simulator().run(*ol), s.simulator().run(*gr),
                         s.simulator().run(*pr)};
      },
      [&](std::size_t, RepResult& r) {
        for (std::size_t b = 0; b < slots / kBucket; ++b) {
          double a_ol = 0.0, a_gr = 0.0, a_pr = 0.0;
          for (std::size_t t = b * kBucket; t < (b + 1) * kBucket; ++t) {
            a_ol += r.ol.slots[t].avg_delay_ms;
            a_gr += r.gr.slots[t].avg_delay_ms;
            a_pr += r.pr.slots[t].avg_delay_ms;
          }
          series_ol[b].add(a_ol / kBucket);
          series_gr[b].add(a_gr / kBucket);
          series_pr[b].add(a_pr / kBucket);
        }
        mean_ol.add(r.ol.mean_delay_ms());
        mean_gr.add(r.gr.mean_delay_ms());
        mean_pr.add(r.pr.mean_delay_ms());
        time_ol.add(r.ol.total_decision_time_ms());
        time_gr.add(r.gr.total_decision_time_ms());
        time_pr.add(r.pr.total_decision_time_ms());
        std::cout << "." << std::flush;
      });
  std::cout << "\n";

  common::Table fig3a({"slot", "OL_GD", "Greedy_GD", "Pri_GD"});
  for (std::size_t b = 0; b < series_ol.size(); ++b) {
    fig3a.add_row_values({static_cast<double>((b + 1) * kBucket),
                          series_ol[b].mean(), series_gr[b].mean(),
                          series_pr[b].mean()},
                         2);
  }
  bench::print_table("Fig. 3(a): average delay (ms) per time slot", fig3a);

  common::Table summary(
      {"algorithm", "mean delay (ms)", "vs OL_GD", "running time (ms/100 slots)"});
  auto pct = [&](double v) {
    return common::fmt(100.0 * (v - mean_ol.mean()) / mean_ol.mean(), 1) + "%";
  };
  summary.add_row({"OL_GD", common::fmt(mean_ol.mean(), 2), "0.0%",
                   common::fmt(time_ol.mean(), 1)});
  summary.add_row({"Greedy_GD", common::fmt(mean_gr.mean(), 2), pct(mean_gr.mean()),
                   common::fmt(time_gr.mean(), 1)});
  summary.add_row({"Pri_GD", common::fmt(mean_pr.mean(), 2), pct(mean_pr.mean()),
                   common::fmt(time_pr.mean(), 1)});
  bench::print_table("Fig. 3 summary + Fig. 3(b): running time", summary);

  std::cout << "\nPaper shape check: OL_GD lowest delay ("
            << (mean_ol.mean() < mean_gr.mean() && mean_ol.mean() < mean_pr.mean()
                    ? "OK"
                    : "MISMATCH")
            << "), Greedy_GD highest ("
            << (mean_gr.mean() > mean_pr.mean() ? "OK" : "MISMATCH")
            << "), OL_GD runtime marginally higher ("
            << (time_ol.mean() > time_gr.mean() ? "OK" : "MISMATCH") << ")\n";
  bench::dump_telemetry();
  return 0;
}
