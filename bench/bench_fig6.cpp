// Reproduces Fig. 6 of the paper: OL_GAN vs OL_Reg on a synthetic
// 100-station network over 100 slots with *unknown, bursty* demands.
//   (a) average delay per slot (OL_GAN much lower);
//   (b) running time (OL_GAN around 4x OL_Reg).
#include <iostream>
#include <memory>
#include <vector>

#include "algorithms/ol_gd.h"
#include "bench_util.h"
#include "common/stats.h"
#include "common/stopwatch.h"
#include "predict/gan_predictor.h"
#include "sim/replication.h"
#include "sim/scenario.h"

using namespace mecsc;

int main() {
  const std::size_t topologies = bench::env_size("MECSC_TOPOLOGIES", 5);
  const std::size_t slots = bench::env_size("MECSC_SLOTS", 100);
  const std::size_t stations = bench::env_size("MECSC_STATIONS", 100);
  const std::size_t gan_steps = bench::env_size("MECSC_GAN_STEPS", 400);

  bench::print_header(
      "OL_GAN vs OL_Reg, bursty unknown demands, synthetic network",
      "Fig. 6(a) avg delay per slot, Fig. 6(b) running time (" +
          std::to_string(stations) + " stations, " + std::to_string(slots) +
          " slots)");

  const std::size_t kBucket = 10;
  std::vector<common::RunningStats> series_gan(slots / kBucket);
  std::vector<common::RunningStats> series_reg(slots / kBucket);
  common::RunningStats d_gan, d_reg, t_gan, t_reg, train_ms;

  struct RepResult {
    sim::RunResult gan, reg;
    double train_ms = 0.0;
  };
  sim::run_replications(
      topologies,
      [&](std::size_t rep) {
        sim::ScenarioParams p;
        p.num_stations = stations;
        p.horizon = slots;
        p.bursty = true;
        p.workload.num_requests = 100;
        p.seed = 4000 + rep;
        sim::Scenario s(p);

        algorithms::OlOptions opt;
        opt.theta_prior = s.theta_prior();

        common::Stopwatch train_watch;
        predict::GanPredictorOptions gopt;
        gopt.train_steps = gan_steps;
        auto predictor = std::make_unique<predict::GanDemandPredictor>(
            s.workload().requests, s.trace(), gopt, s.algorithm_seed(10));
        double trained = train_watch.elapsed_ms();

        auto ol_gan = algorithms::make_ol_with_predictor(
            "OL_GAN", s.problem(), std::move(predictor), opt, s.algorithm_seed(0));
        auto ol_reg = algorithms::make_ol_reg(s.problem(), 5, opt,
                                              s.algorithm_seed(1));
        return RepResult{s.simulator().run(*ol_gan), s.simulator().run(*ol_reg),
                         trained};
      },
      [&](std::size_t, RepResult& r) {
        train_ms.add(r.train_ms);
        for (std::size_t b = 0; b < slots / kBucket; ++b) {
          double a_gan = 0.0, a_reg = 0.0;
          for (std::size_t t = b * kBucket; t < (b + 1) * kBucket; ++t) {
            a_gan += r.gan.slots[t].avg_delay_ms;
            a_reg += r.reg.slots[t].avg_delay_ms;
          }
          series_gan[b].add(a_gan / kBucket);
          series_reg[b].add(a_reg / kBucket);
        }
        d_gan.add(r.gan.mean_delay_ms());
        d_reg.add(r.reg.mean_delay_ms());
        t_gan.add(r.gan.total_decision_time_ms());
        t_reg.add(r.reg.total_decision_time_ms());
        std::cout << "." << std::flush;
      });
  std::cout << "\n";

  common::Table fig6a({"slot", "OL_GAN", "OL_Reg"});
  for (std::size_t b = 0; b < series_gan.size(); ++b) {
    fig6a.add_row_values({static_cast<double>((b + 1) * kBucket),
                          series_gan[b].mean(), series_reg[b].mean()}, 2);
  }
  bench::print_table("Fig. 6(a): average delay (ms) per time slot", fig6a);

  common::Table fig6b({"algorithm", "mean delay (ms)",
                       "decision time (ms/100 slots)", "model training (ms)",
                       "total compute (ms)"});
  double total_gan = t_gan.mean() + train_ms.mean();
  fig6b.add_row({"OL_GAN", common::fmt(d_gan.mean(), 2), common::fmt(t_gan.mean(), 1),
                 common::fmt(train_ms.mean(), 0), common::fmt(total_gan, 1)});
  fig6b.add_row({"OL_Reg", common::fmt(d_reg.mean(), 2), common::fmt(t_reg.mean(), 1),
                 "0", common::fmt(t_reg.mean(), 1)});
  bench::print_table("Fig. 6(b): running time", fig6b);

  // The paper's ~400% running-time overhead for OL_GAN is the cost of
  // the GAN model itself; our per-slot decision cost is dominated by the
  // shared LP solve, so the honest analogue is total compute including
  // the (amortized) adversarial training.
  double ratio = t_reg.mean() > 0.0 ? total_gan / t_reg.mean() : 0.0;
  std::cout << "\nPaper shape check: OL_GAN lower delay ("
            << (d_gan.mean() < d_reg.mean() ? "OK" : "MISMATCH")
            << "), OL_GAN total compute " << common::fmt(ratio, 1)
            << "x OL_Reg (paper: ~4x-5x; "
            << (ratio > 1.5 ? "OK" : "MISMATCH") << ")\n";
  bench::dump_telemetry();
  return 0;
}
