// Extension ablation A9: the recurrent core of the Info-RNN-GAN. The
// paper prescribes Bi-LSTM (§V.B); Bi-GRU has ~25% fewer parameters per
// hidden unit. Compares one-step-ahead demand MAE and training wall time
// on the same traces.
#include <iostream>
#include <memory>
#include <vector>

#include "bench_util.h"
#include "common/stats.h"
#include "common/stopwatch.h"
#include "predict/gan_predictor.h"
#include "predict/predictor.h"
#include "sim/replication.h"
#include "sim/scenario.h"

using namespace mecsc;

int main() {
  const std::size_t topologies = bench::env_size("MECSC_TOPOLOGIES", 3);
  const std::size_t gan_steps = bench::env_size("MECSC_GAN_STEPS", 400);

  bench::print_header("Info-RNN-GAN recurrent core: Bi-LSTM (paper) vs Bi-GRU",
                      "Extension ablation A9");

  common::Table t({"core", "one-step MAE (data units)", "train time (ms)",
                   "G parameters"});
  for (auto kind : {nn::RnnKind::kLstm, nn::RnnKind::kGru}) {
    common::RunningStats mae, train_ms, params;
    struct RepResult {
      double mae, train_ms, params;
    };
    sim::run_replications(
        topologies,
        [&](std::size_t rep) {
          sim::ScenarioParams p;
          p.num_stations = 60;
          p.horizon = 60;
          p.bursty = true;
          p.workload.num_requests = 60;
          p.seed = 13000 + rep;
          sim::Scenario s(p);

          predict::GanPredictorOptions gopt;
          gopt.train_steps = gan_steps;
          gopt.gan.rnn = kind;
          common::Stopwatch watch;
          predict::GanDemandPredictor gan(s.workload().requests, s.trace(), gopt,
                                          s.algorithm_seed(10));
          double trained = watch.elapsed_ms();

          common::RunningStats err;
          for (std::size_t slot = 0; slot < s.demands().horizon(); ++slot) {
            auto predicted = gan.predict(slot);
            auto actual = s.demands().slot(slot);
            err.add(predict::mean_absolute_error(predicted, actual));
            gan.observe(slot, actual);
          }
          return RepResult{
              err.mean(), trained,
              static_cast<double>(gan.model().generator_parameter_count())};
        },
        [&](std::size_t, RepResult& r) {
          mae.add(r.mae);
          train_ms.add(r.train_ms);
          params.add(r.params);
          std::cout << "." << std::flush;
        });
    t.add_row({kind == nn::RnnKind::kLstm ? "Bi-LSTM (paper)" : "Bi-GRU",
               common::fmt(mae.mean(), 3), common::fmt(train_ms.mean(), 0),
               common::fmt(params.mean(), 0)});
  }
  std::cout << "\n";
  bench::print_table("Recurrent-core comparison", t);
  bench::dump_telemetry();
  return 0;
}
