// Reproduces Fig. 4 of the paper: OL_GD vs Greedy_GD vs Pri_GD as the
// network size varies from 50 to 200 stations (given demands).
//   (a) average delay vs network size;
//   (b) running time vs network size.
#include <iostream>
#include <vector>

#include "algorithms/baselines.h"
#include "algorithms/ol_gd.h"
#include "bench_util.h"
#include "common/stats.h"
#include "sim/replication.h"
#include "sim/scenario.h"

using namespace mecsc;

int main() {
  const std::size_t topologies = bench::env_size("MECSC_TOPOLOGIES", 6);
  const std::size_t slots = bench::env_size("MECSC_SLOTS", 100);
  const std::vector<std::size_t> sizes{50, 100, 150, 200};

  bench::print_header(
      "OL_GD vs Greedy_GD vs Pri_GD over network sizes, given demands",
      "Fig. 4(a) avg delay vs size, Fig. 4(b) running time vs size (" +
          std::to_string(topologies) + " topologies per point)");

  common::Table fig4a({"stations", "OL_GD", "Greedy_GD", "Pri_GD"});
  common::Table fig4b({"stations", "OL_GD (ms)", "Greedy_GD (ms)", "Pri_GD (ms)"});

  for (std::size_t n : sizes) {
    common::RunningStats d_ol, d_gr, d_pr, t_ol, t_gr, t_pr;
    struct RepResult {
      sim::RunResult ol, gr, pr;
    };
    sim::run_replications(
        topologies,
        [&](std::size_t rep) {
          sim::ScenarioParams p;
          p.num_stations = n;
          p.horizon = slots;
          p.workload.num_requests = 100;
          p.seed = 2000 + 17 * n + rep;
          sim::Scenario s(p);
          algorithms::OlOptions opt;
          opt.theta_prior = s.theta_prior();
          auto ol = algorithms::make_ol_gd(s.problem(), s.demands(), opt,
                                           s.algorithm_seed(0));
          auto gr = algorithms::make_greedy_gd(s.problem(), s.demands(),
                                               s.historical_delay_estimates());
          auto pr = algorithms::make_pri_gd(s.problem(), s.demands(),
                                            s.historical_delay_estimates());
          return RepResult{s.simulator().run(*ol), s.simulator().run(*gr),
                           s.simulator().run(*pr)};
        },
        [&](std::size_t, RepResult& r) {
          d_ol.add(r.ol.mean_delay_ms());
          d_gr.add(r.gr.mean_delay_ms());
          d_pr.add(r.pr.mean_delay_ms());
          t_ol.add(r.ol.total_decision_time_ms());
          t_gr.add(r.gr.total_decision_time_ms());
          t_pr.add(r.pr.total_decision_time_ms());
          std::cout << "." << std::flush;
        });
    fig4a.add_row_values({static_cast<double>(n), d_ol.mean(), d_gr.mean(),
                          d_pr.mean()}, 2);
    fig4b.add_row_values({static_cast<double>(n), t_ol.mean(), t_gr.mean(),
                          t_pr.mean()}, 1);
  }
  std::cout << "\n";
  bench::print_table("Fig. 4(a): average delay (ms) vs network size", fig4a);
  bench::print_table("Fig. 4(b): running time (ms per 100 slots) vs network size",
                     fig4b);
  bench::dump_telemetry();
  return 0;
}
