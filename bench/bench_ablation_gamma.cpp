// Ablation A1: sensitivity of OL_GD to the candidate threshold γ (Eq. 9).
// Small γ admits many lukewarm stations into the candidate set; large γ
// shrinks it towards the fractional argmax.
#include <iostream>
#include <vector>

#include "algorithms/ol_gd.h"
#include "bench_util.h"
#include "common/stats.h"
#include "sim/replication.h"
#include "sim/scenario.h"

using namespace mecsc;

int main() {
  const std::size_t topologies = bench::env_size("MECSC_TOPOLOGIES", 5);
  const std::size_t slots = bench::env_size("MECSC_SLOTS", 100);

  bench::print_header("OL_GD sensitivity to candidate threshold γ",
                      "Design-choice ablation A1 for Eq. 9 / Algorithm 1");

  std::vector<double> gammas{0.05, 0.1, 0.25, 0.5, 0.75, 0.95};
  common::Table t({"gamma", "mean delay (ms)", "tail delay (ms, last 50)"});
  for (double gamma : gammas) {
    common::RunningStats mean_d, tail_d;
    struct RepResult {
      double mean_d, tail_d;
    };
    sim::run_replications(
        topologies,
        [&](std::size_t rep) {
          sim::ScenarioParams p;
          p.num_stations = 100;
          p.horizon = slots;
          p.workload.num_requests = 100;
          p.seed = 7000 + rep;  // same topologies for every gamma
          sim::Scenario s(p);
          algorithms::OlOptions opt;
          opt.theta_prior = s.theta_prior();
          opt.gamma = gamma;
          auto algo = algorithms::make_ol_gd(s.problem(), s.demands(), opt,
                                             s.algorithm_seed(0));
          sim::RunResult r = s.simulator().run(*algo);
          return RepResult{r.mean_delay_ms(), r.tail_mean_delay_ms(slots / 2)};
        },
        [&](std::size_t, RepResult& r) {
          mean_d.add(r.mean_d);
          tail_d.add(r.tail_d);
          std::cout << "." << std::flush;
        });
    t.add_row_values({gamma, mean_d.mean(), tail_d.mean()}, 2);
  }
  std::cout << "\n";
  bench::print_table("Average delay vs γ", t);
  bench::dump_telemetry();
  return 0;
}
