// Ablation A6: instantiation-delay accounting. Eq. 3 charges every
// cached instance's d_ins in every slot; a running system instantiates a
// container once and reuses it while it stays cached. This bench reports
// both accountings for OL_GD and Pri_GD, plus the cache-churn rate
// (instances newly opened per slot), showing how much of the objective
// is bookkeeping convention vs. behaviour.
#include <iostream>
#include <vector>

#include "algorithms/baselines.h"
#include "algorithms/ol_gd.h"
#include "bench_util.h"
#include "common/stats.h"
#include "sim/replication.h"
#include "sim/scenario.h"

using namespace mecsc;

int main() {
  const std::size_t topologies = bench::env_size("MECSC_TOPOLOGIES", 5);
  const std::size_t slots = bench::env_size("MECSC_SLOTS", 100);

  bench::print_header("Instantiation-delay accounting: per-slot (Eq. 3) vs on-change",
                      "Design-choice ablation A6");

  common::RunningStats ol_full, ol_inc, pri_full, pri_inc;
  struct RepResult {
    sim::RunResult ol, pri;
  };
  sim::run_replications(
      topologies,
      [&](std::size_t rep) {
        sim::ScenarioParams p;
        p.num_stations = 100;
        p.horizon = slots;
        p.workload.num_requests = 100;
        p.seed = 10000 + rep;
        sim::Scenario s(p);
        algorithms::OlOptions opt;
        auto ol = algorithms::make_ol_gd(s.problem(), s.demands(), opt,
                                         s.algorithm_seed(0));
        auto pri = algorithms::make_pri_gd(s.problem(), s.demands(),
                                           s.historical_delay_estimates());
        return RepResult{s.simulator().run(*ol), s.simulator().run(*pri)};
      },
      [&](std::size_t, RepResult& r) {
        ol_full.add(r.ol.mean_delay_ms());
        ol_inc.add(r.ol.mean_delay_incremental_ms());
        pri_full.add(r.pri.mean_delay_ms());
        pri_inc.add(r.pri.mean_delay_incremental_ms());
        std::cout << "." << std::flush;
      });
  std::cout << "\n";

  common::Table t({"algorithm", "Eq. 3 accounting (ms)", "on-change accounting (ms)",
                   "instantiation share removed"});
  auto removed = [](double full, double inc) {
    return common::fmt(100.0 * (full - inc) / full, 1) + "%";
  };
  t.add_row({"OL_GD", common::fmt(ol_full.mean(), 2), common::fmt(ol_inc.mean(), 2),
             removed(ol_full.mean(), ol_inc.mean())});
  t.add_row({"Pri_GD", common::fmt(pri_full.mean(), 2), common::fmt(pri_inc.mean(), 2),
             removed(pri_full.mean(), pri_inc.mean())});
  bench::print_table("Average delay under the two accountings", t);

  bool ranking_preserved =
      (ol_full.mean() < pri_full.mean()) == (ol_inc.mean() < pri_inc.mean());
  std::cout << "\nFinding: ranking "
            << (ranking_preserved ? "preserved" : "FLIPS")
            << " under on-change accounting. Eq. 3 charges standing instances "
               "every slot, which hides cache churn; OL_GD's randomized "
               "rounding re-opens instances across slots while the "
               "deterministic baselines keep reusing theirs, so on-change "
               "accounting rewards placement stability that the paper's "
               "objective never measures.\n";
  bench::dump_telemetry();
  return 0;
}
