// Extension ablation A8: user mobility. The paper names user locations
// and "mobility patterns" among the hidden features driving demand
// uncertainty but keeps users static in its experiments. Here users hop
// between hotspots at increasing rates (all algorithms replay the same
// precomputed mobility path); Pri_GD's coverage-count priorities and
// everyone's home-station-dependent access costs shift under their feet,
// while OL_GD re-solves the LP each slot.
#include <iostream>
#include <vector>

#include "algorithms/baselines.h"
#include "algorithms/ol_gd.h"
#include "bench_util.h"
#include "common/stats.h"
#include "sim/replication.h"
#include "sim/scenario.h"
#include "workload/mobility.h"

using namespace mecsc;

int main() {
  const std::size_t topologies = bench::env_size("MECSC_TOPOLOGIES", 4);
  const std::size_t slots = bench::env_size("MECSC_SLOTS", 100);

  bench::print_header("OL_GD vs Pri_GD under user mobility",
                      "Extension ablation A8 (mobility as hidden feature, §I)");

  common::Table t({"relocation prob / slot", "OL_GD (ms)", "Pri_GD (ms)",
                   "OL_GD advantage"});
  for (double relocate : {0.0, 0.05, 0.15}) {
    common::RunningStats d_ol, d_pri;
    struct RepResult {
      double ol, pri;
    };
    sim::run_replications(
        topologies,
        [&](std::size_t rep) {
          sim::ScenarioParams p;
          p.num_stations = 100;
          p.horizon = slots;
          p.workload.num_requests = 100;
          p.seed = 12000 + rep;
          sim::Scenario s(p);

          workload::MobilityParams mp;
          mp.relocate_probability = relocate;
          workload::MobilityModel mobility(mp, s.workload().cluster_centers);
          common::Rng mob_rng(s.algorithm_seed(20));
          auto states = mobility.unroll(s.workload().requests, s.topology(),
                                        slots, mob_rng);
          s.mutable_simulator().set_before_slot([&s, &states](std::size_t t) {
            s.mutable_problem().update_user_locations(states[t]);
          });

          algorithms::OlOptions opt;
          auto ol = algorithms::make_ol_gd(s.problem(), s.demands(), opt,
                                           s.algorithm_seed(0));
          auto pri = algorithms::make_pri_gd(s.problem(), s.demands(),
                                             s.historical_delay_estimates());
          return RepResult{s.simulator().run(*ol).mean_delay_ms(),
                           s.simulator().run(*pri).mean_delay_ms()};
        },
        [&](std::size_t, RepResult& r) {
          d_ol.add(r.ol);
          d_pri.add(r.pri);
          std::cout << "." << std::flush;
        });
    double adv = 100.0 * (d_pri.mean() - d_ol.mean()) / d_pri.mean();
    t.add_row({common::fmt(relocate, 2), common::fmt(d_ol.mean(), 2),
               common::fmt(d_pri.mean(), 2), common::fmt(adv, 1) + "%"});
  }
  std::cout << "\n";
  bench::print_table("Average delay vs mobility rate", t);
  bench::dump_telemetry();
  return 0;
}
