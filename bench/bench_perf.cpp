// Performance microbenchmarks for the three optimised layers (DESIGN.md
// "Performance"):
//   1. dense simplex: cold vs warm-started per-slot LP solves;
//   2. nn matrix kernels: allocating matmul vs matmul_into and the
//      transpose-free backward kernels;
//   3. one full OL_GD slot (flow-based fractional solve + rounding +
//      bandit update) on the fig-3-sized workload.
// Results are printed as a table and written to BENCH_perf.json in the
// working directory. `--quick` shrinks instances and repetition counts
// for the CTest perf-smoke label; it checks that the harness runs, not
// that the numbers are good.
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "algorithms/ol_gd.h"
#include "bench_util.h"
#include "common/stopwatch.h"
#include "core/lp_formulation.h"
#include "lp/simplex.h"
#include "nn/matrix.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "sim/scenario.h"
#include "sim/simulator.h"

using namespace mecsc;

namespace {

struct BenchResult {
  std::string name;
  std::size_t iterations = 0;
  double total_ms = 0.0;
  double ms_per_iter() const {
    return iterations == 0 ? 0.0 : total_ms / static_cast<double>(iterations);
  }
};

/// Times `body()` run `iters` times.
template <typename F>
BenchResult run_bench(std::string name, std::size_t iters, F&& body) {
  common::Stopwatch watch;
  for (std::size_t i = 0; i < iters; ++i) body(i);
  BenchResult r;
  r.name = std::move(name);
  r.iterations = iters;
  r.total_ms = watch.elapsed_ms();
  std::cout << "  " << r.name << ": " << common::fmt(r.ms_per_iter(), 4)
            << " ms/iter over " << iters << " iters\n";
  return r;
}

void write_json(const std::vector<BenchResult>& results, bool quick) {
  std::ofstream out("BENCH_perf.json");
  out << "{\n  \"quick\": " << (quick ? "true" : "false")
      << ",\n  \"benchmarks\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    out << "    {\"name\": \"" << r.name << "\", \"iterations\": " << r.iterations
        << ", \"total_ms\": " << r.total_ms
        << ", \"ms_per_iter\": " << r.ms_per_iter() << "}"
        << (i + 1 < results.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }

  bench::print_header("Performance microbenchmarks (simplex / nn / OL_GD slot)",
                      std::string("DESIGN.md Performance; BENCH_perf.json") +
                          (quick ? " [--quick]" : ""));

  std::vector<BenchResult> results;

  // --- 1. Simplex: per-slot LP, cold vs warm-started. --------------------
  {
    const std::size_t stations = quick ? 8 : 15;
    const std::size_t requests = quick ? 10 : 20;
    const std::size_t solves = quick ? 5 : 30;
    sim::ScenarioParams p;
    p.num_stations = stations;
    p.horizon = solves;
    p.workload.num_requests = requests;
    p.seed = 42;
    sim::Scenario s(p);
    std::vector<double> theta(stations, s.theta_prior());
    lp::SimplexSolver solver;

    results.push_back(run_bench(
        "simplex_cold", solves, [&](std::size_t t) {
          core::LpFormulation lp(s.problem(), s.demands().slot(t), theta);
          lp::SimplexWorkspace fresh;
          (void)lp.solve(solver, fresh);
        }));
    lp::SimplexWorkspace ws;
    results.push_back(run_bench(
        "simplex_warm", solves, [&](std::size_t t) {
          core::LpFormulation lp(s.problem(), s.demands().slot(t), theta);
          (void)lp.solve(solver, ws);
        }));
  }

  // --- 2. NN kernels: matmul and the transpose-free backward pair. ------
  {
    const std::size_t n = quick ? 32 : 96;
    const std::size_t iters = quick ? 20 : 200;
    common::Rng rng(7);
    nn::Matrix a = nn::Matrix::randn(n, n, rng);
    nn::Matrix b = nn::Matrix::randn(n, n, rng);
    nn::Matrix out;
    double sink = 0.0;  // defeat dead-code elimination

    results.push_back(run_bench("matmul_alloc", iters, [&](std::size_t) {
      nn::Matrix c = nn::matmul(a, b);
      sink += c[0];
    }));
    results.push_back(run_bench("matmul_into", iters, [&](std::size_t) {
      nn::matmul_into(out, a, b);
      sink += out[0];
    }));
    results.push_back(run_bench("matmul_abT_into", iters, [&](std::size_t) {
      nn::matmul_abT_into(out, a, b);
      sink += out[0];
    }));
    results.push_back(run_bench("matmul_aTb_into", iters, [&](std::size_t) {
      nn::matmul_aTb_into(out, a, b);
      sink += out[0];
    }));
    if (sink == 12345.6789) std::cout << "";  // keep `sink` observable
  }

  // --- 3. One full OL_GD slot on the fig-3 workload. ---------------------
  {
    const std::size_t stations = quick ? 20 : 100;
    const std::size_t requests = quick ? 20 : 100;
    const std::size_t slots = quick ? 5 : 30;
    sim::ScenarioParams p;
    p.num_stations = stations;
    p.horizon = slots;
    p.workload.num_requests = requests;
    p.seed = 1000;
    sim::Scenario s(p);
    algorithms::OlOptions opt;
    opt.theta_prior = s.theta_prior();
    auto ol = algorithms::make_ol_gd(s.problem(), s.demands(), opt,
                                     s.algorithm_seed(0));
    common::Stopwatch watch;
    sim::RunResult r = s.simulator().run(*ol);
    BenchResult b;
    b.name = "ol_gd_slot";
    b.iterations = slots;
    b.total_ms = watch.elapsed_ms();
    std::cout << "  " << b.name << ": " << common::fmt(b.ms_per_iter(), 4)
              << " ms/slot over " << slots << " slots (mean delay "
              << common::fmt(r.mean_delay_ms(), 2) << " ms)\n";
    results.push_back(b);
  }

  // --- 4. Telemetry-off overhead: the disabled-path macro must stay in
  // the low-nanosecond range (a relaxed atomic load + branch). The bound
  // is deliberately generous — it guards against accidentally making the
  // off path allocate or lock, not against scheduler noise.
  if (!obs::enabled()) {
    const std::size_t iters = quick ? 200000 : 2000000;
    common::Stopwatch watch;
    double sink = 0.0;
    for (std::size_t i = 0; i < iters; ++i) {
      MECSC_COUNT("bench.noop", 1.0);
      MECSC_HISTOGRAM("bench.noop_hist", static_cast<double>(i));
      sink += static_cast<double>(i & 1);
    }
    const double total_ms = watch.elapsed_ms();
    const double ns_per_call = total_ms * 1e6 / static_cast<double>(2 * iters);
    BenchResult b;
    b.name = "telemetry_off_noop";
    b.iterations = 2 * iters;
    b.total_ms = total_ms;
    std::cout << "  " << b.name << ": " << common::fmt(ns_per_call, 2)
              << " ns/call over " << b.iterations << " disabled macro calls\n";
    results.push_back(b);
    if (sink < 0.0) std::cout << "";  // keep `sink` observable
    if (ns_per_call > 100.0) {
      std::cerr << "FAIL: disabled telemetry macro costs " << ns_per_call
                << " ns/call (budget 100 ns) — the off path regressed\n";
      return 1;
    }
  }

  write_json(results, quick);
  std::cout << "\nwrote BENCH_perf.json\n";
  bench::dump_telemetry();
  return 0;
}
