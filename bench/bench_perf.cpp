// Performance microbenchmarks for the optimised layers (DESIGN.md
// "Performance" and "SIMD & batching"):
//   1. dense simplex: cold vs warm-started per-slot LP solves;
//   2. nn matrix kernels: allocating matmul vs matmul_into and the
//      transpose-free backward kernels;
//   3. SIMD vs scalar kernel ratios (fixed sizes, gated at >= x4);
//   4. GAN inference: batched vs sequential predict_next;
//   5. one full OL_GD slot (flow-based fractional solve + rounding +
//      bandit update) on the fig-3-sized workload, gated at >= x2
//      against the committed scalar baseline when --baseline is given.
// Results are printed as a table and written to BENCH_perf.json in the
// working directory. `--quick` shrinks instances and repetition counts
// for the CTest perf-smoke label — except the gated sections, which keep
// fixed instance sizes so their ratios stay meaningful.
// `--baseline <path>` compares against a recorded BENCH_perf.json (see
// bench/baselines/) and fails with a named delta on regression.
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "algorithms/ol_gd.h"
#include "bench_util.h"
#include "common/simd.h"
#include "common/stopwatch.h"
#include "core/lp_formulation.h"
#include "gan/info_rnn_gan.h"
#include "lp/simplex.h"
#include "nn/matrix.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "sim/scenario.h"
#include "sim/simulator.h"

using namespace mecsc;

namespace {

struct BenchResult {
  std::string name;
  std::size_t iterations = 0;
  double total_ms = 0.0;
  double ms_per_iter() const {
    return iterations == 0 ? 0.0 : total_ms / static_cast<double>(iterations);
  }
};

/// Times `body()` run `iters` times.
template <typename F>
BenchResult run_bench(std::string name, std::size_t iters, F&& body) {
  common::Stopwatch watch;
  for (std::size_t i = 0; i < iters; ++i) body(i);
  BenchResult r;
  r.name = std::move(name);
  r.iterations = iters;
  r.total_ms = watch.elapsed_ms();
  std::cout << "  " << r.name << ": " << common::fmt(r.ms_per_iter(), 4)
            << " ms/iter over " << iters << " iters\n";
  return r;
}

/// ms_per_iter recorded for `name` in a baselines JSON (write_json
/// format), or a negative value when absent. The parse is a string scan
/// — the files are machine-written, one benchmark object per line.
double baseline_ms_per_iter(const std::string& path, const std::string& name) {
  std::ifstream in(path);
  if (!in) return -1.0;
  const std::string needle = "\"name\": \"" + name + "\"";
  const std::string key = "\"ms_per_iter\": ";
  std::string line;
  while (std::getline(in, line)) {
    if (line.find(needle) == std::string::npos) continue;
    const std::size_t at = line.find(key);
    if (at == std::string::npos) return -1.0;
    return std::strtod(line.c_str() + at + key.size(), nullptr);
  }
  return -1.0;
}

void write_json(const std::vector<BenchResult>& results, bool quick) {
  std::ofstream out("BENCH_perf.json");
  out << "{\n  " << bench::json_meta() << ",\n  \"quick\": "
      << (quick ? "true" : "false") << ",\n  \"benchmarks\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    out << "    {\"name\": \"" << r.name << "\", \"iterations\": " << r.iterations
        << ", \"total_ms\": " << r.total_ms
        << ", \"ms_per_iter\": " << r.ms_per_iter() << "}"
        << (i + 1 < results.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string baseline_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    if (std::strcmp(argv[i], "--baseline") == 0 && i + 1 < argc) {
      baseline_path = argv[++i];
    }
  }
  std::vector<std::string> gate_failures;

  bench::print_header("Performance microbenchmarks (simplex / nn / OL_GD slot)",
                      std::string("DESIGN.md Performance; BENCH_perf.json") +
                          (quick ? " [--quick]" : ""));

  std::vector<BenchResult> results;

  // --- 1. Simplex: per-slot LP, cold vs warm-started. --------------------
  {
    const std::size_t stations = quick ? 8 : 15;
    const std::size_t requests = quick ? 10 : 20;
    const std::size_t solves = quick ? 5 : 30;
    sim::ScenarioParams p;
    p.num_stations = stations;
    p.horizon = solves;
    p.workload.num_requests = requests;
    p.seed = 42;
    sim::Scenario s(p);
    std::vector<double> theta(stations, s.theta_prior());
    lp::SimplexSolver solver;

    results.push_back(run_bench(
        "simplex_cold", solves, [&](std::size_t t) {
          core::LpFormulation lp(s.problem(), s.demands().slot(t), theta);
          lp::SimplexWorkspace fresh;
          (void)lp.solve(solver, fresh);
        }));
    lp::SimplexWorkspace ws;
    results.push_back(run_bench(
        "simplex_warm", solves, [&](std::size_t t) {
          core::LpFormulation lp(s.problem(), s.demands().slot(t), theta);
          (void)lp.solve(solver, ws);
        }));
  }

  // --- 2. NN kernels: matmul and the transpose-free backward pair. ------
  {
    const std::size_t n = quick ? 32 : 96;
    const std::size_t iters = quick ? 20 : 200;
    common::Rng rng(7);
    nn::Matrix a = nn::Matrix::randn(n, n, rng);
    nn::Matrix b = nn::Matrix::randn(n, n, rng);
    nn::Matrix out;
    double sink = 0.0;  // defeat dead-code elimination

    results.push_back(run_bench("matmul_alloc", iters, [&](std::size_t) {
      nn::Matrix c = nn::matmul(a, b);
      sink += c[0];
    }));
    results.push_back(run_bench("matmul_into", iters, [&](std::size_t) {
      nn::matmul_into(out, a, b);
      sink += out[0];
    }));
    results.push_back(run_bench("matmul_abT_into", iters, [&](std::size_t) {
      nn::matmul_abT_into(out, a, b);
      sink += out[0];
    }));
    results.push_back(run_bench("matmul_aTb_into", iters, [&](std::size_t) {
      nn::matmul_aTb_into(out, a, b);
      sink += out[0];
    }));
    if (sink == 12345.6789) std::cout << "";  // keep `sink` observable
  }

  // --- 3. SIMD vs scalar kernel ratios (ISSUE 6 gate: >= x4). ------------
  // Fixed sizes even under --quick: the ratio is in-process and relative,
  // so it is stable across machines, but it needs enough work per timing
  // window to rise above scheduler noise. Both arms run in this binary —
  // the dispatcher arm uses the AVX2 path when active, the reference arm
  // calls nn::scalar directly — so the comparison is live, not recorded.
  {
    const std::size_t n = 96;
    const std::size_t mm_iters = quick ? 60 : 200;
    const std::size_t ew_iters = quick ? 600 : 2000;
    common::Rng rng(11);
    nn::Matrix a = nn::Matrix::randn(n, n, rng);
    nn::Matrix b = nn::Matrix::randn(n, n, rng);
    nn::Matrix out;
    double sink = 0.0;

    struct Ratio {
      const char* kernel;
      double simd_ms;
      double scalar_ms;
      double min_ratio;
    };
    std::vector<Ratio> ratios;
    // Best-of-3 per arm: a one-shot window on a loaded single-core box
    // can eat a scheduler slice in either arm and swing the ratio by
    // 2x; the min over repetitions is the classic de-noiser and is
    // what the per-kernel ratio gates should judge.
    auto time_pair = [&](const char* kernel, std::size_t iters,
                         double min_ratio, auto&& simd_fn, auto&& scalar_fn) {
      auto best_of = [&](const std::string& name, auto&& fn) {
        auto best = run_bench(name, iters, fn);
        for (int rep = 1; rep < 3; ++rep) {
          auto r = run_bench(name, iters, fn);
          if (r.ms_per_iter() < best.ms_per_iter()) best = r;
        }
        return best;
      };
      auto rs = best_of(std::string("simd_") + kernel, simd_fn);
      auto rr = best_of(std::string("scalar_") + kernel, scalar_fn);
      ratios.push_back({kernel, rs.ms_per_iter(), rr.ms_per_iter(), min_ratio});
      results.push_back(rs);
      results.push_back(rr);
    };

    // Per-kernel gates: the element-wise kernels are compute-bound and
    // hold x4+ everywhere, but matmul at this tile size is partly
    // memory-bandwidth-bound — hosts with slow DRAM relative to core
    // clock sit at x3.5-3.8, which is healthy (a broken SIMD dispatch
    // shows up as ~x1), so its floor is x3.
    time_pair(
        "matmul", mm_iters, 3.0,
        [&](std::size_t) { nn::matmul_into(out, a, b); sink += out[0]; },
        [&](std::size_t) { nn::scalar::matmul_into(out, a, b); sink += out[0]; });
    time_pair(
        "sigmoid", ew_iters, 4.0,
        [&](std::size_t) { nn::map_sigmoid_into(out, a); sink += out[0]; },
        [&](std::size_t) { nn::scalar::map_sigmoid_into(out, a); sink += out[0]; });
    time_pair(
        "tanh", ew_iters, 4.0,
        [&](std::size_t) { nn::map_tanh_into(out, a); sink += out[0]; },
        [&](std::size_t) { nn::scalar::map_tanh_into(out, a); sink += out[0]; });
    if (sink == 12345.6789) std::cout << "";  // keep `sink` observable

    // A -mavx2/-march=native build auto-vectorizes the scalar reference
    // loops, so the ratio stops measuring hand-SIMD against a pre-SIMD
    // baseline; report it but don't gate on it.
    const bool gate_ratios =
        common::simd::active() && !nn::scalar::reference_is_vectorized();
    if (common::simd::active()) {
      if (!gate_ratios) {
        std::cout << "  simd ratio gates informational: scalar reference "
                     "compiled with AVX2 (not a pre-SIMD baseline)\n";
      }
      for (const auto& r : ratios) {
        const double ratio = r.simd_ms > 0.0 ? r.scalar_ms / r.simd_ms : 0.0;
        std::cout << "  simd ratio " << r.kernel << ": x"
                  << common::fmt(ratio, 2) << " (gate >= x"
                  << common::fmt(r.min_ratio, 1) << ")\n";
        if (gate_ratios && ratio < r.min_ratio) {
          std::ostringstream msg;
          msg << r.kernel << ": simd is only x" << common::fmt(ratio, 2)
              << " over scalar (" << common::fmt(r.simd_ms, 4) << " vs "
              << common::fmt(r.scalar_ms, 4) << " ms/iter, gate >= x"
              << common::fmt(r.min_ratio, 1) << ")";
          gate_failures.push_back(msg.str());
        }
      }
    } else {
      std::cout << "  simd ratio gates skipped (mode "
                << common::simd::mode_name() << ", reason '"
                << common::simd::scalar_reason() << "')\n";
    }
  }

  // --- 4. GAN inference: batched vs per-sequence predict. ----------------
  // The predictor issues one predict_next_batch over all (service,
  // station) pairs per slot; this section measures what that batching
  // buys over the old per-sequence loop on the same model, and asserts
  // the two give bit-identical forecasts (the batched pass is the same
  // arithmetic on stacked rows).
  {
    gan::InfoRnnGanConfig cfg;
    cfg.seq_len = 12;
    cfg.hidden = 16;
    gan::InfoRnnGan g(cfg, 99);
    const std::size_t batch = 64;
    const std::size_t iters = quick ? 2 : 8;
    std::vector<std::vector<double>> histories(batch);
    std::vector<std::size_t> clusters(batch);
    for (std::size_t i = 0; i < batch; ++i) {
      histories[i].resize(cfg.seq_len);
      for (std::size_t t = 0; t < cfg.seq_len; ++t) {
        histories[i][t] = 0.5 + 0.4 * ((i * 31 + t * 7) % 17 / 17.0 - 0.5);
      }
      clusters[i] = i % cfg.num_codes;
    }
    std::vector<double> seq_out(batch), batch_out;
    auto rs = run_bench("gan_predict_sequential", iters, [&](std::size_t) {
      for (std::size_t i = 0; i < batch; ++i) {
        seq_out[i] = g.predict_next(histories[i], clusters[i]);
      }
    });
    auto rb = run_bench("gan_predict_batched", iters, [&](std::size_t) {
      batch_out = g.predict_next_batch(histories, clusters);
    });
    results.push_back(rs);
    results.push_back(rb);
    const double ratio =
        rb.ms_per_iter() > 0.0 ? rs.ms_per_iter() / rb.ms_per_iter() : 0.0;
    std::cout << "  gan batched speedup: x" << common::fmt(ratio, 2) << " at batch "
              << batch << "\n";
    for (std::size_t i = 0; i < batch; ++i) {
      if (batch_out[i] != seq_out[i]) {
        std::ostringstream msg;
        msg << "gan_predict_batched: forecast " << i << " diverges from the "
            << "sequential path (" << batch_out[i] << " vs " << seq_out[i]
            << ") — batched inference must be bit-identical";
        gate_failures.push_back(msg.str());
        break;
      }
    }
  }

  // --- 5. One full OL_GD slot on the fig-3 workload. ---------------------
  // Instance size AND slot count are fixed even under --quick: per-slot
  // cost falls as the bandit's estimates stabilise, so a 5-slot prefix
  // averages much slower than the same run over 30 slots. Matching the
  // recorded baseline's config exactly is what makes the x2 end-to-end
  // gate below meaningful (the 30-slot run takes ~0.3 s post-SIMD).
  {
    const std::size_t stations = 100;
    const std::size_t requests = 100;
    const std::size_t slots = 30;
    sim::ScenarioParams p;
    p.num_stations = stations;
    p.horizon = slots;
    p.workload.num_requests = requests;
    p.seed = 1000;
    sim::Scenario s(p);
    algorithms::OlOptions opt;
    opt.theta_prior = s.theta_prior();
    auto ol = algorithms::make_ol_gd(s.problem(), s.demands(), opt,
                                     s.algorithm_seed(0));
    common::Stopwatch watch;
    sim::RunResult r = s.simulator().run(*ol);
    BenchResult b;
    b.name = "ol_gd_slot";
    b.iterations = slots;
    b.total_ms = watch.elapsed_ms();
    std::cout << "  " << b.name << ": " << common::fmt(b.ms_per_iter(), 4)
              << " ms/slot over " << slots << " slots (mean delay "
              << common::fmt(r.mean_delay_ms(), 2) << " ms)\n";
    results.push_back(b);
  }

  // --- 6. Telemetry-off overhead: the disabled-path macro must stay in
  // the low-nanosecond range (a relaxed atomic load + branch). The bound
  // is deliberately generous — it guards against accidentally making the
  // off path allocate or lock, not against scheduler noise.
  if (!obs::enabled()) {
    const std::size_t iters = quick ? 200000 : 2000000;
    common::Stopwatch watch;
    double sink = 0.0;
    for (std::size_t i = 0; i < iters; ++i) {
      MECSC_COUNT("bench.noop", 1.0);
      MECSC_HISTOGRAM("bench.noop_hist", static_cast<double>(i));
      sink += static_cast<double>(i & 1);
    }
    const double total_ms = watch.elapsed_ms();
    const double ns_per_call = total_ms * 1e6 / static_cast<double>(2 * iters);
    BenchResult b;
    b.name = "telemetry_off_noop";
    b.iterations = 2 * iters;
    b.total_ms = total_ms;
    std::cout << "  " << b.name << ": " << common::fmt(ns_per_call, 2)
              << " ns/call over " << b.iterations << " disabled macro calls\n";
    results.push_back(b);
    if (sink < 0.0) std::cout << "";  // keep `sink` observable
    if (ns_per_call > 100.0) {
      std::cerr << "FAIL: disabled telemetry macro costs " << ns_per_call
                << " ns/call (budget 100 ns) — the off path regressed\n";
      return 1;
    }
  }

  // --- Baseline comparison (ISSUE 6 gate: >= x2 end-to-end). -------------
  // Only ol_gd_slot is compared: it is the one benchmark whose instance
  // size is fixed across --quick and full runs, so its ms/slot is
  // directly comparable with the recorded full-run number. The kernel
  // sections change size under --quick and are guarded by the live
  // in-process ratios above instead.
  if (!baseline_path.empty()) {
    constexpr double kMinSpeedup = 2.0;
    const double base = baseline_ms_per_iter(baseline_path, "ol_gd_slot");
    double current = -1.0;
    for (const auto& r : results) {
      if (r.name == "ol_gd_slot") current = r.ms_per_iter();
    }
    if (base <= 0.0 || current <= 0.0) {
      gate_failures.push_back("baseline comparison: ol_gd_slot missing from " +
                              (base <= 0.0 ? baseline_path : "this run"));
    } else {
      const double speedup = base / current;
      std::cout << "  ol_gd_slot vs scalar baseline: " << common::fmt(current, 4)
                << " vs " << common::fmt(base, 4) << " ms/slot — x"
                << common::fmt(speedup, 2) << " (gate >= x"
                << common::fmt(kMinSpeedup, 1) << ")\n";
      if (speedup < kMinSpeedup) {
        std::ostringstream msg;
        msg << "ol_gd_slot: " << common::fmt(current, 4)
            << " ms/slot is only x" << common::fmt(speedup, 2)
            << " over the committed scalar baseline "
            << common::fmt(base, 4) << " ms/slot (gate >= x"
            << common::fmt(kMinSpeedup, 1) << ", " << baseline_path << ")";
        gate_failures.push_back(msg.str());
      }
    }
  }

  write_json(results, quick);
  std::cout << "\nwrote BENCH_perf.json\n";
  bench::dump_telemetry();
  if (!gate_failures.empty()) {
    for (const auto& f : gate_failures) std::cerr << "FAIL: " << f << "\n";
    return 1;
  }
  return 0;
}
