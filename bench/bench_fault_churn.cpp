// Fault-churn sweep (DESIGN.md §9): OL_GD vs Greedy_GD under BS outage
// churn, capacity derating, censored bandit feedback and flash crowds.
// Sweeps an MTBF scale factor (1.0 = the FaultOptions defaults; smaller
// means stations fail more often) and reports, per severity level,
//   - station-slot availability (the x-axis of the delay-vs-availability
//     curve),
//   - mean realised delay (shed penalty included) and shed fraction,
//   - recovery: mean delay over the fault-free tail window after the
//     fault window closes, and its delta vs the no-fault baseline.
// Values are means over MECSC_TOPOLOGIES replications. Results are
// printed as tables and written to BENCH_fault.json.
//
// Note: MECSC_FAULTS, when set, overrides every scenario's fault mode —
// it would flatten this sweep, so leave it unset here.
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "algorithms/baselines.h"
#include "algorithms/ol_gd.h"
#include "bench_util.h"
#include "common/stats.h"
#include "fault/fault_plan.h"
#include "sim/replication.h"
#include "sim/scenario.h"

using namespace mecsc;

namespace {

struct LevelResult {
  std::string name;
  double mtbf_scale = 0.0;  // 0 = faults off
  common::RunningStats availability;
  common::RunningStats mean_delay;      // shed penalty included
  common::RunningStats recovery_delay;  // fault-free tail window
  common::RunningStats shed_fraction;   // shed / (requests * slots)
  common::RunningStats outage_station_slots;
  common::RunningStats greedy_delay;  // Greedy_GD mean delay, same plan
};

void write_json(const std::vector<LevelResult>& levels, double baseline_recovery) {
  std::ofstream out("BENCH_fault.json");
  out << "{\n  " << bench::json_meta()
      << ",\n  \"baseline_recovery_delay_ms\": " << baseline_recovery
      << ",\n  \"levels\": [\n";
  for (std::size_t i = 0; i < levels.size(); ++i) {
    const auto& l = levels[i];
    const double rec = l.recovery_delay.mean();
    const double delta =
        baseline_recovery > 0.0
            ? 100.0 * (rec - baseline_recovery) / baseline_recovery
            : 0.0;
    out << "    {\"name\": \"" << l.name << "\", \"mtbf_scale\": " << l.mtbf_scale
        << ", \"availability\": " << l.availability.mean()
        << ", \"mean_delay_ms\": " << l.mean_delay.mean()
        << ", \"greedy_mean_delay_ms\": " << l.greedy_delay.mean()
        << ", \"shed_fraction\": " << l.shed_fraction.mean()
        << ", \"outage_station_slots\": " << l.outage_station_slots.mean()
        << ", \"recovery_delay_ms\": " << rec
        << ", \"recovery_delta_pct\": " << delta << "}"
        << (i + 1 < levels.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }
  if (std::getenv("MECSC_FAULTS") != nullptr) {
    std::cerr << "mecsc: warning: MECSC_FAULTS is set and overrides the "
                 "sweep's per-level fault modes — unset it for this bench\n";
  }

  const std::size_t topologies =
      bench::env_size("MECSC_TOPOLOGIES", quick ? 2 : 6);
  const std::size_t slots = bench::env_size("MECSC_SLOTS", quick ? 30 : 100);
  const std::size_t stations =
      bench::env_size("MECSC_STATIONS", quick ? 20 : 100);
  const std::size_t requests =
      bench::env_size("MECSC_REQUESTS", quick ? 20 : 100);

  bench::print_header(
      "OL_GD / Greedy_GD under fault churn: delay vs availability",
      "DESIGN.md §9; BENCH_fault.json (" + std::to_string(stations) +
          " stations, " + std::to_string(slots) + " slots, " +
          std::to_string(topologies) + " topologies)");

  // Faults live in the first two thirds of the horizon; the final fifth
  // is the fault-free recovery window the recovery stat averages over.
  const std::size_t fault_end = (2 * slots) / 3;
  const std::size_t recovery_start = (4 * slots) / 5;

  struct Level {
    const char* name;
    double mtbf_scale;  // 0 = off
  };
  const std::vector<Level> sweep = {
      {"no faults", 0.0}, {"mild (2x MTBF)", 2.0}, {"default", 1.0},
      {"harsh (MTBF/2)", 0.5}, {"severe (MTBF/4)", 0.25}};

  std::vector<LevelResult> results;
  for (const Level& lvl : sweep) {
    LevelResult agg;
    agg.name = lvl.name;
    agg.mtbf_scale = lvl.mtbf_scale;

    struct RepResult {
      sim::RunResult ol, gr;
      double availability = 1.0;
      std::size_t outage_slots = 0;
    };
    sim::run_replications(
        topologies,
        [&](std::size_t rep) {
          sim::ScenarioParams p;
          p.num_stations = stations;
          p.horizon = slots;
          p.workload.num_requests = requests;
          p.seed = 1000 + rep;
          if (lvl.mtbf_scale > 0.0) {
            p.fault.mode = fault::FaultMode::kChurn;
            p.fault.macro.mtbf_slots *= lvl.mtbf_scale;
            p.fault.micro.mtbf_slots *= lvl.mtbf_scale;
            p.fault.femto.mtbf_slots *= lvl.mtbf_scale;
            p.fault.last_fault_slot = fault_end;
          }
          sim::Scenario s(p);

          algorithms::OlOptions opt;
          opt.theta_prior = s.theta_prior();
          auto ol = algorithms::make_ol_gd(s.problem(), s.demands(), opt,
                                           s.algorithm_seed(0));
          auto gr = algorithms::make_greedy_gd(s.problem(), s.demands(),
                                               s.historical_delay_estimates());
          RepResult r;
          r.ol = s.simulator().run(*ol);
          r.gr = s.simulator().run(*gr);
          if (const fault::FaultInjector* inj = s.fault_injector()) {
            r.availability = inj->plan().availability();
            r.outage_slots = inj->plan().total_outage_slots();
          }
          return r;
        },
        [&](std::size_t, RepResult& r) {
          agg.availability.add(r.availability);
          agg.mean_delay.add(r.ol.mean_delay_ms());
          agg.greedy_delay.add(r.gr.mean_delay_ms());
          agg.outage_station_slots.add(static_cast<double>(r.outage_slots));

          common::RunningStats rec;
          std::size_t shed = 0;
          for (std::size_t t = 0; t < r.ol.slots.size(); ++t) {
            shed += r.ol.slots[t].fault_shed_requests;
            if (t >= recovery_start) rec.add(r.ol.slots[t].avg_delay_ms);
          }
          agg.recovery_delay.add(rec.mean());
          agg.shed_fraction.add(static_cast<double>(shed) /
                                static_cast<double>(requests * slots));
          std::cout << "." << std::flush;
        });
    std::cout << " " << lvl.name << "\n";
    results.push_back(std::move(agg));
  }

  const double baseline_recovery = results.front().recovery_delay.mean();

  common::Table table({"severity", "availability", "mean delay (ms)",
                       "Greedy_GD (ms)", "shed %", "recovery (ms)",
                       "recovery vs no-fault"});
  for (const auto& l : results) {
    const double rec = l.recovery_delay.mean();
    const double delta =
        baseline_recovery > 0.0
            ? 100.0 * (rec - baseline_recovery) / baseline_recovery
            : 0.0;
    table.add_row({l.name, common::fmt(100.0 * l.availability.mean(), 2) + "%",
                   common::fmt(l.mean_delay.mean(), 2),
                   common::fmt(l.greedy_delay.mean(), 2),
                   common::fmt(100.0 * l.shed_fraction.mean(), 2) + "%",
                   common::fmt(rec, 2), common::fmt(delta, 1) + "%"});
  }
  bench::print_table("Delay vs availability under MTBF scaling", table);

  write_json(results, baseline_recovery);
  std::cout << "\nwrote BENCH_fault.json\n";

  // Shape checks: churn must cost delay while shedding stays partial,
  // and the fault-free tail must return near the no-fault baseline.
  const LevelResult& worst = results.back();
  const bool delay_rises = worst.mean_delay.mean() > results.front().mean_delay.mean();
  const bool sheds_partial = worst.shed_fraction.mean() < 1.0;
  const double worst_delta =
      baseline_recovery > 0.0
          ? (worst.recovery_delay.mean() - baseline_recovery) / baseline_recovery
          : 0.0;
  std::cout << "Shape check: churn raises mean delay ("
            << (delay_rises ? "OK" : "MISMATCH") << "), sheds < 100% ("
            << (sheds_partial ? "OK" : "MISMATCH")
            << "), recovery within 25% of no-fault ("
            << (worst_delta < 0.25 ? "OK" : "MISMATCH") << ")\n";

  bench::dump_telemetry();
  return (sheds_partial && worst_delta < 0.25) ? 0 : 1;
}
