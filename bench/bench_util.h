#ifndef MECSC_BENCH_BENCH_UTIL_H
#define MECSC_BENCH_BENCH_UTIL_H

// Shared helpers for the figure-reproduction harnesses. Each bench binary
// regenerates one figure of the paper's §VI: it runs the relevant
// algorithms over several topology replications (the paper averages over
// 80; default here is smaller for laptop runtimes — override with
// MECSC_TOPOLOGIES) and prints the figure's series as aligned tables.

#include <iostream>
#include <string>

#include "common/env.h"
#include "common/simd.h"
#include "common/table.h"
#include "obs/export.h"

namespace mecsc::bench {

/// Environment-variable override with default (all benches honour
/// MECSC_TOPOLOGIES, MECSC_SLOTS, ...). Strict: a trailing non-numeric
/// suffix is rejected with a stderr warning (common::env_size_strict)
/// instead of silently truncating, and an explicit 0 means 0.
inline std::size_t env_size(const char* name, std::size_t fallback) {
  return common::env_size_or(name, fallback);
}

/// End-of-run telemetry dump (every bench main calls this last): no-op
/// unless MECSC_TELEMETRY is summary/full; writes to MECSC_TELEMETRY_OUT
/// or, when unset, JSONL to stdout.
inline void dump_telemetry() {
  if (obs::dump(obs::default_registry(), std::cout)) {
    std::cerr << "mecsc: telemetry dumped ("
              << (std::getenv("MECSC_TELEMETRY_OUT") != nullptr
                      ? std::getenv("MECSC_TELEMETRY_OUT")
                      : "stdout, JSONL")
              << ")\n";
  }
}

/// JSON fragment (no surrounding braces) recording the detected CPU
/// vector features and the SIMD mode the binary actually ran in. Every
/// BENCH_*.json writer stamps this into its header so perf numbers are
/// comparable across machines — an "avx2" number and a "scalar" number
/// for the same bench are different experiments.
inline std::string json_meta() {
  std::string s = "\"cpu\": {\"avx2\": ";
  s += common::simd::cpu_has_avx2() ? "true" : "false";
  s += ", \"fma\": ";
  s += common::simd::cpu_has_fma() ? "true" : "false";
  s += "}, \"simd_mode\": \"";
  s += common::simd::mode_name();
  s += "\"";
  if (common::simd::scalar_reason()[0] != '\0') {
    s += ", \"simd_scalar_reason\": \"";
    s += common::simd::scalar_reason();
    s += "\"";
  }
  return s;
}

/// Prints a titled table (and its CSV) to stdout.
inline void print_table(const std::string& title, const common::Table& table) {
  std::cout << "\n== " << title << " ==\n" << table.to_string();
  std::cout << "-- csv --\n" << table.to_csv() << std::flush;
}

inline void print_header(const std::string& what, const std::string& paper_ref) {
  std::cout << "#\n# " << what << "\n# Reproduces: " << paper_ref << "\n#\n";
}

}  // namespace mecsc::bench

#endif  // MECSC_BENCH_BENCH_UTIL_H
