#ifndef MECSC_BENCH_BENCH_UTIL_H
#define MECSC_BENCH_BENCH_UTIL_H

// Shared helpers for the figure-reproduction harnesses. Each bench binary
// regenerates one figure of the paper's §VI: it runs the relevant
// algorithms over several topology replications (the paper averages over
// 80; default here is smaller for laptop runtimes — override with
// MECSC_TOPOLOGIES) and prints the figure's series as aligned tables.

#include <cstdlib>
#include <iostream>
#include <string>

#include "common/table.h"

namespace mecsc::bench {

/// Environment-variable override with default (all benches honour
/// MECSC_TOPOLOGIES, MECSC_SLOTS, ...).
inline std::size_t env_size(const char* name, std::size_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  unsigned long long parsed = std::strtoull(v, &end, 10);
  if (end == v || parsed == 0) return fallback;
  return static_cast<std::size_t>(parsed);
}

/// Prints a titled table (and its CSV) to stdout.
inline void print_table(const std::string& title, const common::Table& table) {
  std::cout << "\n== " << title << " ==\n" << table.to_string();
  std::cout << "-- csv --\n" << table.to_csv() << std::flush;
}

inline void print_header(const std::string& what, const std::string& paper_ref) {
  std::cout << "#\n# " << what << "\n# Reproduces: " << paper_ref << "\n#\n";
}

}  // namespace mecsc::bench

#endif  // MECSC_BENCH_BENCH_UTIL_H
