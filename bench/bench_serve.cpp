// Streaming-service bench (DESIGN.md §14): exercises the mecsc::serve
// subsystem end to end and enforces its acceptance gates.
//
//   1. Raw sharded-ingest throughput: multiple producers push demand
//      events through the lock-free ShardedIngestQueue against a
//      concurrently draining consumer. Gate: >= 1M events/s.
//   2. Pipelined slot service at the paper's 100-station scale: a paced
//      run through the full predict -> aggregate -> LP -> round path.
//      Gate: p99 decide latency below the slot deadline.
//   3. Record/replay determinism: the run's trace replayed through the
//      batch decision engine. Gate: bit-for-bit identical decisions.
//
// Results are printed as tables and written to BENCH_serve.json.
// `--quick` shrinks event counts and the horizon for the CTest
// perf-smoke label; every gate stays enforced.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/table.h"
#include "serve/ingest_queue.h"
#include "serve/replay.h"
#include "serve/service.h"

namespace {

using Clock = std::chrono::steady_clock;
using mecsc::serve::IngestEvent;
using mecsc::serve::ReplayResult;
using mecsc::serve::ServeOptions;
using mecsc::serve::ServeReport;
using mecsc::serve::ShardedIngestQueue;
using mecsc::serve::SlotService;

double seconds_between(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

/// Part 1: events/second through the sharded queue under contention.
double ingest_throughput(std::size_t producers, std::size_t events_total) {
  ShardedIngestQueue queue(8, 65536);
  const std::size_t per_producer = events_total / producers;
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  threads.reserve(producers);
  for (std::size_t p = 0; p < producers; ++p) {
    threads.emplace_back([&queue, &go, p, per_producer] {
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      for (std::size_t i = 0; i < per_producer; ++i) {
        const IngestEvent ev{static_cast<std::uint32_t>(i & 0x3FF),
                             static_cast<std::uint32_t>(i >> 10), 1.0};
        const std::size_t home = (p * 37 + i) % 100;  // 100-station spread
        while (!queue.try_push(home, ev)) std::this_thread::yield();
      }
    });
  }
  const std::size_t expected = per_producer * producers;
  std::vector<IngestEvent> buffer;
  buffer.reserve(1 << 14);
  const auto start = Clock::now();
  go.store(true, std::memory_order_release);
  std::size_t drained = 0;
  while (drained < expected) {
    buffer.clear();
    const std::size_t n = queue.drain(buffer, static_cast<std::size_t>(-1));
    if (n == 0) {
      std::this_thread::yield();
      continue;
    }
    drained += n;
  }
  const auto stop = Clock::now();
  for (std::thread& t : threads) t.join();
  return static_cast<double>(drained) / seconds_between(start, stop);
}

void write_json(double events_per_sec, const ServeReport& report,
                const ServeOptions& options, const ReplayResult& replay,
                bool quick) {
  std::ofstream out("BENCH_serve.json");
  out << "{\n  " << mecsc::bench::json_meta() << ",\n  \"quick\": "
      << (quick ? "true" : "false") << ",\n  \"ingest\": {\"events_per_sec\": "
      << events_per_sec << "},\n  \"service\": {\"stations\": "
      << options.num_stations << ", \"requests\": " << options.num_requests
      << ", \"slots_served\": " << report.slots_served
      << ", \"ingested\": " << report.ingested << ", \"shed\": " << report.shed
      << ", \"mean_delay_ms\": " << report.mean_delay_ms
      << ", \"p99_decide_ms\": " << report.p99_decide_ms
      << ", \"max_decide_ms\": " << report.max_decide_ms
      << ", \"deadline_ms\": " << options.slot_ms
      << ", \"deadline_misses\": " << report.deadline_misses
      << "},\n  \"replay\": {\"bit_identical\": "
      << (replay.bit_identical ? "true" : "false")
      << ", \"sealed\": " << (replay.sealed ? "true" : "false")
      << ", \"slots_compared\": " << replay.slots_compared << "}\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }
  mecsc::bench::print_header(
      std::string("Streaming decision service: sharded ingest, pipelined "
                  "slots, trace replay") +
          (quick ? " [--quick]" : ""),
      "DESIGN.md §14; BENCH_serve.json");

  std::vector<std::string> gate_failures;

  // --- 1. Sharded ingest throughput (gate: >= 1M events/s). ---------------
  const std::size_t producers = 4;
  const std::size_t events = quick ? 1'000'000 : 4'000'000;
  const double events_per_sec = ingest_throughput(producers, events);
  {
    mecsc::common::Table table({"producers", "events", "events/s"});
    char rate[64];
    std::snprintf(rate, sizeof(rate), "%.3g", events_per_sec);
    table.add_row({std::to_string(producers), std::to_string(events), rate});
    mecsc::bench::print_table("sharded ingest throughput", table);
  }
  if (events_per_sec < 1e6) {
    gate_failures.push_back("ingest throughput below 1M events/s");
  }

  // --- 2. Pipelined service at 100 stations (gate: p99 < deadline). -------
  ServeOptions options;
  options.seed = 1;
  options.num_stations = 100;
  options.num_requests = quick ? 200 : 400;
  options.num_services = 10;
  options.horizon = quick ? 12 : 60;
  // Slot deadline for the latency gate: service re-caching slots are
  // coarse (the paper's t indexes periods, not frames), and a full
  // 400-request x 100-station LP+rounding decide measures ~1 s on a
  // laptop core. 2 s keeps the gate meaningful (~2x headroom) without
  // tripping on machine noise; MECSC_SERVE_SLOT_MS still overrides.
  options.slot_ms = mecsc::bench::env_size("MECSC_SERVE_SLOT_MS", 2000);
  options.producers = 4;
  options.paced = true;  // deterministic; slot_ms stays the latency deadline
  options.trace_out = "BENCH_serve.trace";
  // Durable checkpoints on: the crash-consistent write path (serialise
  // + fsync + rename, on the decide thread between slots) runs under
  // every gate below, so durability can't silently regress the service.
  options.checkpoint_every = 5;
  ServeReport report;
  {
    SlotService service(options);
    service.start();
    report = service.join();
  }
  {
    mecsc::common::Table table({"slots", "ingested", "shed", "mean delay ms",
                                "p99 decide ms", "deadline ms", "misses"});
    char mean[32], p99[32];
    std::snprintf(mean, sizeof(mean), "%.3f", report.mean_delay_ms);
    std::snprintf(p99, sizeof(p99), "%.3f", report.p99_decide_ms);
    table.add_row({std::to_string(report.slots_served),
                   std::to_string(report.ingested),
                   std::to_string(report.shed), mean, p99,
                   std::to_string(options.slot_ms),
                   std::to_string(report.deadline_misses)});
    mecsc::bench::print_table("pipelined slot service (100 stations)", table);
  }
  if (report.slots_served != options.horizon) {
    gate_failures.push_back("service did not serve the full horizon");
  }
  if (report.p99_decide_ms >= static_cast<double>(options.slot_ms)) {
    gate_failures.push_back("p99 decide latency at/above the slot deadline");
  }

  // --- 3. Replay bit-identity (gate: identical decisions). ----------------
  const ReplayResult replay = mecsc::serve::replay_trace("BENCH_serve.trace");
  {
    mecsc::common::Table table({"slots compared", "sealed", "bit identical"});
    table.add_row({std::to_string(replay.slots_compared),
                   replay.sealed ? "yes" : "no",
                   replay.bit_identical ? "yes" : "no"});
    mecsc::bench::print_table("trace record/replay", table);
  }
  if (!replay.bit_identical || !replay.sealed) {
    gate_failures.push_back("trace replay not bit-identical: " + replay.detail);
  }

  write_json(events_per_sec, report, options, replay, quick);
  std::cout << "\nBENCH_serve.json written\n";
  mecsc::bench::dump_telemetry();

  if (!gate_failures.empty()) {
    for (const std::string& failure : gate_failures) {
      std::cerr << "GATE FAILURE: " << failure << "\n";
    }
    return 1;
  }
  std::cout << "all serve gates passed\n";
  return 0;
}
