// Reproduces Fig. 7 of the paper: OL_GAN vs OL_Reg on (i) the AS1755-like
// real topology over 100 slots and (ii) network sizes 50..300. The paper
// reports OL_GAN consistently lower, and delays decreasing with network
// size (more low-delay stations to cache into).
#include <iostream>
#include <memory>
#include <vector>

#include "algorithms/ol_gd.h"
#include "bench_util.h"
#include "common/stats.h"
#include "predict/gan_predictor.h"
#include "sim/replication.h"
#include "sim/scenario.h"

using namespace mecsc;

namespace {

struct Point {
  double gan_delay = 0.0;
  double reg_delay = 0.0;
  double gan_time = 0.0;
  double reg_time = 0.0;
};

Point run_point(sim::ScenarioParams::NetKind kind, std::size_t stations,
                std::size_t slots, std::size_t topologies, std::size_t gan_steps,
                std::uint64_t seed0) {
  common::RunningStats dg, dr, tg, tr;
  struct RepResult {
    sim::RunResult gan, reg;
  };
  sim::run_replications(
      topologies,
      [&](std::size_t rep) {
        sim::ScenarioParams p;
        p.net = kind;
        p.num_stations = stations;
        p.horizon = slots;
        p.bursty = true;
        p.workload.num_requests = 100;
        p.seed = seed0 + rep;
        sim::Scenario s(p);
        algorithms::OlOptions opt;
        opt.theta_prior = s.theta_prior();
        predict::GanPredictorOptions gopt;
        gopt.train_steps = gan_steps;
        auto predictor = std::make_unique<predict::GanDemandPredictor>(
            s.workload().requests, s.trace(), gopt, s.algorithm_seed(10));
        auto ol_gan = algorithms::make_ol_with_predictor(
            "OL_GAN", s.problem(), std::move(predictor), opt, s.algorithm_seed(0));
        auto ol_reg = algorithms::make_ol_reg(s.problem(), 5, opt,
                                              s.algorithm_seed(1));
        return RepResult{s.simulator().run(*ol_gan), s.simulator().run(*ol_reg)};
      },
      [&](std::size_t, RepResult& r) {
        dg.add(r.gan.mean_delay_ms());
        dr.add(r.reg.mean_delay_ms());
        tg.add(r.gan.total_decision_time_ms());
        tr.add(r.reg.total_decision_time_ms());
        std::cout << "." << std::flush;
      });
  return {dg.mean(), dr.mean(), tg.mean(), tr.mean()};
}

}  // namespace

int main() {
  const std::size_t topologies = bench::env_size("MECSC_TOPOLOGIES", 3);
  const std::size_t slots = bench::env_size("MECSC_SLOTS", 100);
  const std::size_t gan_steps = bench::env_size("MECSC_GAN_STEPS", 400);

  bench::print_header(
      "OL_GAN vs OL_Reg on AS1755-like topology and across network sizes",
      "Fig. 7 (bursty unknown demands)");

  Point as1755 = run_point(sim::ScenarioParams::NetKind::kAs1755, 172, slots,
                           topologies, gan_steps, 5000);
  std::cout << "\n";
  common::Table ta({"algorithm", "mean delay (ms)", "decision time (ms)"});
  ta.add_row({"OL_GAN", common::fmt(as1755.gan_delay, 2),
              common::fmt(as1755.gan_time, 1)});
  ta.add_row({"OL_Reg", common::fmt(as1755.reg_delay, 2),
              common::fmt(as1755.reg_time, 1)});
  bench::print_table("Fig. 7 (AS1755-like, 100 slots)", ta);

  common::Table tb({"stations", "OL_GAN", "OL_Reg"});
  std::vector<std::size_t> sizes{50, 100, 200, 300};
  std::vector<double> gan_by_size;
  for (std::size_t n : sizes) {
    Point pt = run_point(sim::ScenarioParams::NetKind::kGtItm, n, slots,
                         topologies, gan_steps, 5200 + n);
    tb.add_row_values({static_cast<double>(n), pt.gan_delay, pt.reg_delay}, 2);
    gan_by_size.push_back(pt.gan_delay);
  }
  std::cout << "\n";
  bench::print_table("Fig. 7: average delay (ms) vs network size", tb);

  std::cout << "\nPaper shape check: OL_GAN lower on AS1755 ("
            << (as1755.gan_delay < as1755.reg_delay ? "OK" : "MISMATCH")
            << "), delay decreasing with size ("
            << (gan_by_size.back() < gan_by_size.front() ? "OK" : "MISMATCH")
            << ")\n";
  bench::dump_telemetry();
  return 0;
}
