// Extension ablation A7: optimism (UCB-style lower-confidence-bound)
// exploration vs the paper's ε-greedy. With β > 0 the LP sees
// θ̃_i = θ_i − β·sqrt(ln t / m_i), so rarely-played stations look cheap
// and get explored through exploitation itself.
#include <iostream>
#include <string>
#include <vector>

#include "algorithms/ol_gd.h"
#include "bench_util.h"
#include "common/stats.h"
#include "sim/replication.h"
#include "sim/scenario.h"

using namespace mecsc;

int main() {
  const std::size_t topologies = bench::env_size("MECSC_TOPOLOGIES", 5);
  const std::size_t slots = bench::env_size("MECSC_SLOTS", 150);

  bench::print_header("ε-greedy vs UCB-style optimism in OL_GD",
                      "Extension ablation A7 (not in the paper)");

  struct Variant {
    std::string name;
    algorithms::OlOptions opt;
  };
  std::vector<Variant> variants;
  variants.push_back({"eps-greedy 0.5/t (default)", {}});
  for (double beta : {1.0, 3.0, 6.0}) {
    Variant v{"UCB beta=" + common::fmt(beta, 1) + ", no eps", {}};
    v.opt.epsilon = core::EpsilonSchedule::zero();
    v.opt.ucb_beta = beta;
    variants.push_back(std::move(v));
  }
  {
    Variant v{"hybrid: UCB beta=3 + eps 0.5/t", {}};
    v.opt.ucb_beta = 3.0;
    variants.push_back(std::move(v));
  }

  common::Table t({"variant", "mean delay (ms)", "tail delay (ms)",
                   "arm coverage"});
  for (auto& v : variants) {
    common::RunningStats mean_d, tail_d, cov;
    struct RepResult {
      double mean_d, tail_d, coverage;
    };
    sim::run_replications(
        topologies,
        [&](std::size_t rep) {
          sim::ScenarioParams p;
          p.num_stations = 100;
          p.horizon = slots;
          p.workload.num_requests = 100;
          p.seed = 11000 + rep;
          sim::Scenario s(p);
          algorithms::OnlineCachingAlgorithm algo("OL_GD", s.problem(),
                                                  &s.demands(), v.opt,
                                                  s.algorithm_seed(0));
          sim::RunResult r = s.simulator().run(algo);
          return RepResult{r.mean_delay_ms(), r.tail_mean_delay_ms(slots / 2),
                           algo.bandit().coverage()};
        },
        [&](std::size_t, RepResult& r) {
          mean_d.add(r.mean_d);
          tail_d.add(r.tail_d);
          cov.add(r.coverage);
          std::cout << "." << std::flush;
        });
    t.add_row({v.name, common::fmt(mean_d.mean(), 2), common::fmt(tail_d.mean(), 2),
               common::fmt(cov.mean(), 2)});
  }
  std::cout << "\n";
  bench::print_table("Exploration mechanisms", t);
  bench::dump_telemetry();
  return 0;
}
