// Ablation A3: realised cumulative regret of OL_GD vs the Theorem 1
// bound sigma * log((T-1)/(e^{1/c}+1)) with sigma from Lemma 1, over a
// growing horizon. Demonstrates the logarithmic-regret claim of §IV.C.
#include <iostream>
#include <vector>

#include "algorithms/ol_gd.h"
#include "bench_util.h"
#include "common/stats.h"
#include "core/regret.h"
#include "sim/replication.h"
#include "sim/scenario.h"

using namespace mecsc;

int main() {
  const std::size_t topologies = bench::env_size("MECSC_TOPOLOGIES", 4);
  const std::size_t horizon = bench::env_size("MECSC_SLOTS", 400);
  const double c = 0.5;
  const double gamma = 0.25;

  bench::print_header("Cumulative regret of OL_GD vs Theorem 1 bound",
                      "§IV.C analysis (Lemma 1 + Theorem 1), ablation A3");

  std::vector<std::size_t> checkpoints{25, 50, 100, 200, horizon};
  std::vector<common::RunningStats> regret_at(checkpoints.size());
  common::RunningStats sigma_stats;

  struct RepResult {
    sim::RunResult run;
    double sigma = 0.0;
  };
  sim::run_replications(
      topologies,
      [&](std::size_t rep) {
        sim::ScenarioParams p;
        p.num_stations = 50;
        p.horizon = horizon;
        p.workload.num_requests = 40;
        p.track_regret = true;
        p.seed = 6000 + rep;
        sim::Scenario s(p);
        algorithms::OlOptions opt;
        opt.theta_prior = s.theta_prior();
        opt.epsilon = core::EpsilonSchedule::decay(c);
        opt.gamma = gamma;
        auto algo = algorithms::make_ol_gd(s.problem(), s.demands(), opt,
                                           s.algorithm_seed(0));
        return RepResult{s.simulator().run(*algo),
                         core::theory::lemma1_sigma(
                             s.problem().num_requests(), s.d_max(), s.d_min(),
                             s.problem().instantiation_delay_spread(), gamma)};
      },
      [&](std::size_t, RepResult& r) {
        for (std::size_t i = 0; i < checkpoints.size(); ++i) {
          std::size_t t =
              std::min(checkpoints[i], r.run.cumulative_regret.size()) - 1;
          regret_at[i].add(r.run.cumulative_regret[t]);
        }
        sigma_stats.add(r.sigma);
        std::cout << "." << std::flush;
      });
  std::cout << "\n";

  double sigma = sigma_stats.mean();
  common::Table t({"horizon T", "measured cumulative regret",
                   "Theorem 1 bound", "within bound"});
  for (std::size_t i = 0; i < checkpoints.size(); ++i) {
    double bound = core::theory::theorem1_bound(sigma, checkpoints[i], c);
    t.add_row({std::to_string(checkpoints[i]),
               common::fmt(regret_at[i].mean(), 1), common::fmt(bound, 1),
               regret_at[i].mean() <= bound ? "yes" : "NO"});
  }
  bench::print_table("Regret vs horizon (sigma = " + common::fmt(sigma, 1) + ")", t);

  // Sublinearity check: per-slot regret rate must fall with T.
  double early_rate = regret_at[0].mean() / static_cast<double>(checkpoints[0]);
  double late_rate = regret_at.back().mean() / static_cast<double>(checkpoints.back());
  std::cout << "\nPer-slot regret rate: early " << common::fmt(early_rate, 3)
            << " -> late " << common::fmt(late_rate, 3) << " ("
            << (late_rate < early_rate ? "sublinear OK" : "MISMATCH") << ")\n";
  bench::dump_telemetry();
  return 0;
}
