// Ablation A5 (google-benchmark): per-slot LP paths compared — the exact
// dense simplex on Eq. 3's full relaxation vs the flow-based
// FractionalSolver used inside OL_GD at scale. Reports wall time per
// solve; the companion accuracy numbers (objective gap) are printed once
// at startup.
#include <benchmark/benchmark.h>

#include <iostream>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "core/fractional_solver.h"
#include "core/lp_formulation.h"
#include "core/problem.h"
#include "net/generators.h"
#include "workload/trace.h"

using namespace mecsc;

namespace {

struct Instance {
  std::unique_ptr<net::Topology> topo;
  workload::Workload workload;
  std::unique_ptr<core::CachingProblem> problem;
  std::vector<double> demands;
  std::vector<double> theta;
};

Instance make_instance(std::size_t stations, std::size_t requests,
                       std::uint64_t seed) {
  Instance inst;
  common::Rng rng(seed);
  net::GtItmParams gp;
  gp.num_stations = stations;
  inst.topo = std::make_unique<net::Topology>(net::generate_gtitm_like(gp, rng));
  workload::WorkloadParams wp;
  wp.num_requests = requests;
  inst.workload = workload::make_workload(*inst.topo, wp, rng, false);
  inst.problem = std::make_unique<core::CachingProblem>(
      inst.topo.get(), inst.workload.services, inst.workload.requests,
      core::ProblemOptions{}, rng);
  for (const auto& r : inst.workload.requests) inst.demands.push_back(r.basic_demand);
  for (std::size_t i = 0; i < stations; ++i) {
    inst.theta.push_back(inst.topo->station(i).mean_unit_delay_ms);
  }
  return inst;
}

void report_gap_once() {
  static bool done = false;
  if (done) return;
  done = true;
  std::cout << "# Accuracy: flow-based objective vs exact simplex optimum\n";
  for (std::size_t n : {6, 10, 14}) {
    Instance inst = make_instance(n, n + 4, 100 + n);
    core::LpFormulation lp(*inst.problem, inst.demands, inst.theta);
    core::FractionalSolution exact = lp.solve(lp::SimplexSolver());
    core::FractionalSolver flow(*inst.problem);
    core::FractionalSolution approx = flow.solve(inst.demands, inst.theta);
    double gap = 100.0 * (approx.objective - exact.objective) / exact.objective;
    std::cout << "#   " << n << " stations: exact " << exact.objective
              << " ms, flow " << approx.objective << " ms, gap " << gap << "%\n";
  }
}

void BM_ExactSimplex(benchmark::State& state) {
  report_gap_once();
  Instance inst = make_instance(static_cast<std::size_t>(state.range(0)),
                                static_cast<std::size_t>(state.range(0)) + 4, 7);
  core::LpFormulation lp(*inst.problem, inst.demands, inst.theta);
  for (auto _ : state) {
    benchmark::DoNotOptimize(lp.solve(lp::SimplexSolver()));
  }
}
BENCHMARK(BM_ExactSimplex)->Arg(6)->Arg(10)->Arg(14)->Unit(benchmark::kMillisecond);

void BM_FlowSolver(benchmark::State& state) {
  Instance inst = make_instance(static_cast<std::size_t>(state.range(0)),
                                static_cast<std::size_t>(state.range(0)), 9);
  core::FractionalSolver solver(*inst.problem);
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.solve(inst.demands, inst.theta));
  }
}
BENCHMARK(BM_FlowSolver)
    ->Arg(6)
    ->Arg(14)
    ->Arg(50)
    ->Arg(100)
    ->Arg(200)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
