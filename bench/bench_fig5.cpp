// Reproduces Fig. 5 of the paper: OL_GD vs Greedy_GD vs Pri_GD on the
// real topology AS1755 (172 routers, heavy-tailed degrees, bottleneck
// links) over 100 time slots with given demands. The paper reports a
// *larger* gap than on synthetic networks because real topologies have
// more bottleneck links.
#include <iostream>
#include <vector>

#include "algorithms/baselines.h"
#include "algorithms/ol_gd.h"
#include "bench_util.h"
#include "common/stats.h"
#include "sim/replication.h"
#include "sim/scenario.h"

using namespace mecsc;

namespace {

struct Point {
  double ol, gr, pr;
};

Point run_family(sim::ScenarioParams::NetKind kind, std::size_t stations,
                 std::size_t slots, std::size_t topologies, std::uint64_t seed0) {
  common::RunningStats d_ol, d_gr, d_pr;
  sim::run_replications(
      topologies,
      [&](std::size_t rep) {
        sim::ScenarioParams p;
        p.net = kind;
        p.num_stations = stations;
        p.horizon = slots;
        p.workload.num_requests = 100;
        p.seed = seed0 + rep;
        sim::Scenario s(p);
        algorithms::OlOptions opt;
        opt.theta_prior = s.theta_prior();
        auto ol = algorithms::make_ol_gd(s.problem(), s.demands(), opt,
                                         s.algorithm_seed(0));
        auto gr = algorithms::make_greedy_gd(s.problem(), s.demands(),
                                             s.historical_delay_estimates());
        auto pr = algorithms::make_pri_gd(s.problem(), s.demands(),
                                          s.historical_delay_estimates());
        return Point{s.simulator().run(*ol).mean_delay_ms(),
                     s.simulator().run(*gr).mean_delay_ms(),
                     s.simulator().run(*pr).mean_delay_ms()};
      },
      [&](std::size_t, Point& r) {
        d_ol.add(r.ol);
        d_gr.add(r.gr);
        d_pr.add(r.pr);
        std::cout << "." << std::flush;
      });
  return {d_ol.mean(), d_gr.mean(), d_pr.mean()};
}

}  // namespace

int main() {
  const std::size_t topologies = bench::env_size("MECSC_TOPOLOGIES", 6);
  const std::size_t slots = bench::env_size("MECSC_SLOTS", 100);

  bench::print_header(
      "OL_GD vs Greedy_GD vs Pri_GD on AS1755-like real topology, given demands",
      "Fig. 5 (100 slots; gap expected larger than the synthetic Fig. 3)");

  Point real = run_family(sim::ScenarioParams::NetKind::kAs1755, 172, slots,
                          topologies, 3000);
  Point synth = run_family(sim::ScenarioParams::NetKind::kGtItm, 172, slots,
                           topologies, 3100);
  std::cout << "\n";

  common::Table t({"network", "OL_GD", "Greedy_GD", "Pri_GD",
                   "gap vs best baseline"});
  auto gap = [](const Point& p) {
    double best_baseline = std::min(p.gr, p.pr);
    return 100.0 * (best_baseline - p.ol) / best_baseline;
  };
  t.add_row({"AS1755-like (real)", common::fmt(real.ol, 2), common::fmt(real.gr, 2),
             common::fmt(real.pr, 2), common::fmt(gap(real), 1) + "%"});
  t.add_row({"GT-ITM-like (synthetic)", common::fmt(synth.ol, 2),
             common::fmt(synth.gr, 2), common::fmt(synth.pr, 2),
             common::fmt(gap(synth), 1) + "%"});
  bench::print_table("Fig. 5: average delay (ms), real vs synthetic topology", t);

  std::cout << "\nPaper shape check: OL_GD lower on AS1755 ("
            << (real.ol < real.gr && real.ol < real.pr ? "OK" : "MISMATCH")
            << "), gap larger on real than synthetic ("
            << (gap(real) > gap(synth) ? "OK" : "MISMATCH") << ")\n";
  bench::dump_telemetry();
  return 0;
}
