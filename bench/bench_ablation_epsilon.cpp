// Ablation A2: exploration schedules of Algorithm 1 — the pseudocode's
// fixed ε = 1/4, the analysis's c/t decay, no exploration at all, and the
// per-slot vs per-request exploration coin (the paper's pseudocode draws
// one coin per slot; the library defaults to one per request).
#include <iostream>
#include <vector>

#include "algorithms/ol_gd.h"
#include "bench_util.h"
#include "common/stats.h"
#include "sim/replication.h"
#include "sim/scenario.h"

using namespace mecsc;

namespace {

struct Variant {
  const char* name;
  algorithms::OlOptions opt;
};

}  // namespace

int main() {
  const std::size_t topologies = bench::env_size("MECSC_TOPOLOGIES", 5);
  const std::size_t slots = bench::env_size("MECSC_SLOTS", 150);

  bench::print_header("OL_GD exploration-schedule ablation",
                      "Algorithm 1 line 2 (ε = 1/4) vs Theorem 1's c/t decay");

  std::vector<Variant> variants;
  {
    Variant v{"fixed ε=0.25 (paper Alg.1)", {}};
    variants.push_back(v);
  }
  {
    Variant v{"fixed ε=0.1", {}};
    v.opt.epsilon = core::EpsilonSchedule::fixed(0.1);
    variants.push_back(v);
  }
  {
    Variant v{"decay ε=0.5/t (Theorem 1)", {}};
    v.opt.epsilon = core::EpsilonSchedule::decay(0.5);
    variants.push_back(v);
  }
  {
    Variant v{"no exploration", {}};
    v.opt.epsilon = core::EpsilonSchedule::zero();
    variants.push_back(v);
  }
  {
    Variant v{"per-slot coin, ε=0.25 (Alg.1 verbatim)", {}};
    v.opt.per_slot_coin = true;
    variants.push_back(v);
  }

  common::Table t({"schedule", "mean delay (ms)", "tail delay (ms)",
                   "arm coverage"});
  for (auto& v : variants) {
    common::RunningStats mean_d, tail_d, cov;
    struct RepResult {
      double mean_d, tail_d, coverage;
    };
    sim::run_replications(
        topologies,
        [&](std::size_t rep) {
          sim::ScenarioParams p;
          p.num_stations = 100;
          p.horizon = slots;
          p.workload.num_requests = 100;
          p.seed = 8000 + rep;
          sim::Scenario s(p);
          algorithms::OlOptions opt = v.opt;
          opt.theta_prior = s.theta_prior();
          algorithms::OnlineCachingAlgorithm algo("OL_GD", s.problem(),
                                                  &s.demands(), opt,
                                                  s.algorithm_seed(0));
          sim::RunResult r = s.simulator().run(algo);
          return RepResult{r.mean_delay_ms(), r.tail_mean_delay_ms(slots / 2),
                           algo.bandit().coverage()};
        },
        [&](std::size_t, RepResult& r) {
          mean_d.add(r.mean_d);
          tail_d.add(r.tail_d);
          cov.add(r.coverage);
          std::cout << "." << std::flush;
        });
    t.add_row({v.name, common::fmt(mean_d.mean(), 2), common::fmt(tail_d.mean(), 2),
               common::fmt(cov.mean(), 2)});
  }
  std::cout << "\n";
  bench::print_table("Exploration schedules", t);
  bench::dump_telemetry();
  return 0;
}
