// Ablation A4: prediction accuracy of the Info-RNN-GAN vs ARMA vs
// last-value vs oracle on bursty demand, in the paper's small-sample
// regime and with abundant history. The paper's §V motivation is that
// GANs keep accuracy when the historical sample is small while ARMA
// degrades.
#include <iostream>
#include <memory>
#include <vector>

#include "bench_util.h"
#include "common/stats.h"
#include "predict/gan_predictor.h"
#include "predict/predictor.h"
#include "sim/replication.h"
#include "sim/scenario.h"

using namespace mecsc;

namespace {

/// Walks a predictor through the scenario's run horizon and returns the
/// mean MAE of its one-step-ahead predictions.
double evaluate(predict::DemandPredictor& p, const workload::DemandMatrix& truth) {
  common::RunningStats mae;
  for (std::size_t t = 0; t < truth.horizon(); ++t) {
    std::vector<double> predicted = p.predict(t);
    std::vector<double> actual = truth.slot(t);
    mae.add(predict::mean_absolute_error(predicted, actual));
    p.observe(t, actual);
  }
  return mae.mean();
}

}  // namespace

int main() {
  const std::size_t topologies = bench::env_size("MECSC_TOPOLOGIES", 4);
  const std::size_t gan_steps = bench::env_size("MECSC_GAN_STEPS", 400);

  bench::print_header(
      "Predictor accuracy: Info-RNN-GAN vs ARMA vs last-value vs oracle",
      "§V motivation, ablation A4 (MAE of one-step-ahead demand, data units)");

  common::Table t({"sample regime", "oracle", "last-value", "ARMA(5)",
                   "Info-RNN-GAN"});
  for (double fraction : {0.15, 0.9}) {
    common::RunningStats m_oracle, m_last, m_arma, m_gan;
    struct RepResult {
      double oracle, last, arma, gan;
    };
    sim::run_replications(
        topologies,
        [&](std::size_t rep) {
          sim::ScenarioParams p;
          p.num_stations = 60;
          p.horizon = 60;
          p.bursty = true;
          p.workload.num_requests = 60;
          p.trace_sample_fraction = fraction;
          p.seed = 9000 + rep;
          sim::Scenario s(p);

          std::vector<double> fallback;
          for (const auto& r : s.workload().requests) {
            fallback.push_back(r.basic_demand);
          }

          predict::OraclePredictor oracle(&s.demands());
          predict::LastValuePredictor last(fallback);
          predict::ArmaPredictor arma(5, fallback);
          predict::GanPredictorOptions gopt;
          gopt.train_steps = gan_steps;
          predict::GanDemandPredictor gan(s.workload().requests, s.trace(), gopt,
                                          s.algorithm_seed(10));

          return RepResult{evaluate(oracle, s.demands()),
                           evaluate(last, s.demands()),
                           evaluate(arma, s.demands()),
                           evaluate(gan, s.demands())};
        },
        [&](std::size_t, RepResult& r) {
          m_oracle.add(r.oracle);
          m_last.add(r.last);
          m_arma.add(r.arma);
          m_gan.add(r.gan);
          std::cout << "." << std::flush;
        });
    std::string label = fraction < 0.5 ? "small sample (15% of history)"
                                       : "large sample (90% of history)";
    t.add_row({label, common::fmt(m_oracle.mean(), 2), common::fmt(m_last.mean(), 2),
               common::fmt(m_arma.mean(), 2), common::fmt(m_gan.mean(), 2)});
  }
  std::cout << "\n";
  bench::print_table("One-step-ahead MAE by predictor and sample size", t);
  bench::dump_telemetry();
  return 0;
}
