#!/usr/bin/env bash
# Drift guard for the environment-variable catalogue (DESIGN.md §10).
#
# Every MECSC_* environment variable *read* anywhere in src/, bench/ or
# examples/ must be documented in both:
#   * common::env_catalog() (src/common/env_catalog.cpp), and
#   * README.md's "Environment variables" table;
# and conversely every catalogue entry must correspond to a variable the
# code actually reads. MECSC_-prefixed C++ macros (MECSC_CHECK,
# MECSC_SPAN, ...) and the tests-only MECSC_TEST_ENV scratch variable
# are excluded.
#
# Hermetic: pure grep over the working tree; no network, no build.
set -euo pipefail
cd "$(dirname "$0")/.."

# Non-env-var identifiers that share the MECSC_ prefix: instrumentation
# and assertion macros, include guards (filtered by _H suffix too), and
# the compile-time SIMD macros (MECSC_FORCE_SCALAR is a CMake option;
# MECSC_SIMD_AVX2 / MECSC_AVX2 are #define dispatch switches — the
# digit-less token regex below truncates them to *_AVX). The assertion
# macros are anchored ($) so they don't swallow real env vars sharing
# the prefix (MECSC_CHECKPOINT_EVERY).
EXCLUDE='MECSC_CHECK$|MECSC_CHECK_MSG$|MECSC_COUNT|MECSC_GAUGE_SET|MECSC_HISTOGRAM|MECSC_SPAN|MECSC_OBS_CONCAT|MECSC_TEST_ENV|MECSC_FORCE_SCALAR|MECSC_SIMD_AVX$|MECSC_AVX$|MECSC_[A-Z_]*_H\b'

# Every MECSC_[A-Z_]* token in the shipped C++ sources (tests excluded:
# they may poke internals; CMake files use MECSC_* for list variables),
# minus macros/guards.
used=$(grep -rhoE --include='*.h' --include='*.cpp' 'MECSC_[A-Z_]+' \
  src bench examples \
  | grep -vE "$EXCLUDE" | sort -u)

# The catalogue's declared names.
catalog=$(grep -oE '"MECSC_[A-Z_]+"' src/common/env_catalog.cpp \
  | tr -d '"' | sort -u)

# README table rows: | `MECSC_FOO` | ...
readme=$(grep -oE '^\| `MECSC_[A-Z_]+`' README.md \
  | grep -oE 'MECSC_[A-Z_]+' | sort -u)

status=0

missing_catalog=$(comm -23 <(echo "$used") <(echo "$catalog"))
if [ -n "$missing_catalog" ]; then
  echo "read in src/bench/examples but missing from common::env_catalog():"
  echo "$missing_catalog" | sed 's/^/  /'
  status=1
fi

missing_readme=$(comm -23 <(echo "$used") <(echo "$readme"))
if [ -n "$missing_readme" ]; then
  echo "read in src/bench/examples but missing from README.md's table:"
  echo "$missing_readme" | sed 's/^/  /'
  status=1
fi

stale_catalog=$(comm -13 <(echo "$used") <(echo "$catalog"))
if [ -n "$stale_catalog" ]; then
  echo "in common::env_catalog() but never read by any code:"
  echo "$stale_catalog" | sed 's/^/  /'
  status=1
fi

stale_readme=$(comm -13 <(echo "$used") <(echo "$readme"))
if [ -n "$stale_readme" ]; then
  echo "in README.md's table but never read by any code:"
  echo "$stale_readme" | sed 's/^/  /'
  status=1
fi

if [ "$status" -eq 0 ]; then
  echo "env docs in sync: $(echo "$used" | wc -l) variable(s) documented in catalogue + README"
fi
exit "$status"
