#!/usr/bin/env python3
"""Checks that relative markdown links in the repo's docs resolve.

Scans the tracked *.md files (or the files given as arguments) for
inline links/images `[text](target)`. For each relative target the file
must exist (anchors and `#fragment` suffixes are stripped; in-page
`#anchor`-only links are checked against the target file's headings).
External links (http/https/mailto) are not fetched — CI must stay
hermetic — only their syntax is accepted.

Exit status: 0 when every link resolves, 1 otherwise (one line per
broken link).
"""

import os
import re
import subprocess
import sys

LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^()\s]+(?:\([^()]*\)[^()\s]*)*)\)")
CODE_FENCE_RE = re.compile(r"^(```|~~~)")


def heading_anchors(path):
    """GitHub-style anchors of every heading in `path`."""
    anchors = set()
    with open(path, encoding="utf-8") as f:
        in_fence = False
        for line in f:
            if CODE_FENCE_RE.match(line):
                in_fence = not in_fence
                continue
            if in_fence or not line.startswith("#"):
                continue
            text = line.lstrip("#").strip().lower()
            # GitHub: drop everything but word chars, spaces and hyphens,
            # then spaces become hyphens.
            text = re.sub(r"[^\w\- ]", "", text)
            anchors.add(text.replace(" ", "-"))
    return anchors


def md_files():
    out = subprocess.run(
        ["git", "ls-files", "*.md"], capture_output=True, text=True, check=True
    )
    return [f for f in out.stdout.splitlines() if f]


def main():
    files = sys.argv[1:] or md_files()
    errors = []
    for md in files:
        base = os.path.dirname(md)
        with open(md, encoding="utf-8") as f:
            in_fence = False
            for lineno, line in enumerate(f, 1):
                if CODE_FENCE_RE.match(line):
                    in_fence = not in_fence
                    continue
                if in_fence:
                    continue
                for target in LINK_RE.findall(line):
                    if target.startswith(("http://", "https://", "mailto:")):
                        continue
                    path_part, _, frag = target.partition("#")
                    if not path_part:  # in-page anchor
                        if frag.lower() not in heading_anchors(md):
                            errors.append(
                                f"{md}:{lineno}: broken anchor '#{frag}'"
                            )
                        continue
                    resolved = os.path.normpath(os.path.join(base, path_part))
                    if not os.path.exists(resolved):
                        errors.append(
                            f"{md}:{lineno}: broken link '{target}' "
                            f"(no such file: {resolved})"
                        )
    for e in errors:
        print(e)
    if errors:
        print(f"{len(errors)} broken link(s)")
        return 1
    print(f"checked {len(files)} markdown file(s): all links resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())
