#include "workload/demand_model.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace mecsc::workload {

OnOffBurstDemand::OnOffBurstDemand(double p_on, double p_off, double burst_scale,
                                   double burst_shape, double cap)
    : p_on_(p_on), p_off_(p_off), burst_scale_(burst_scale),
      burst_shape_(burst_shape), cap_(cap) {
  MECSC_CHECK_MSG(0.0 <= p_on && p_on <= 1.0, "p_on out of [0,1]");
  MECSC_CHECK_MSG(0.0 <= p_off && p_off <= 1.0, "p_off out of [0,1]");
  MECSC_CHECK_MSG(burst_scale > 0.0 && burst_shape > 0.0, "Pareto params must be > 0");
  MECSC_CHECK_MSG(cap > 0.0, "cap must be > 0");
}

double OnOffBurstDemand::sample(std::size_t, common::Rng& rng) {
  if (on_) {
    if (rng.bernoulli(p_off_)) on_ = false;
  } else {
    if (rng.bernoulli(p_on_)) on_ = true;
  }
  if (!on_) return 0.0;
  return std::min(cap_, rng.pareto(burst_scale_, burst_shape_));
}

double OnOffBurstDemand::stationary_on() const noexcept {
  double denom = p_on_ + p_off_;
  return denom > 0.0 ? p_on_ / denom : 0.0;
}

DiurnalDemand::DiurnalDemand(double amplitude, double period_slots, double phase,
                             double noise_sigma)
    : amplitude_(amplitude), period_(period_slots), phase_(phase),
      noise_sigma_(noise_sigma) {
  MECSC_CHECK_MSG(amplitude >= 0.0, "negative amplitude");
  MECSC_CHECK_MSG(period_slots > 0.0, "period must be > 0");
  MECSC_CHECK_MSG(noise_sigma >= 0.0, "negative noise sigma");
}

double DiurnalDemand::sample(std::size_t t, common::Rng& rng) {
  constexpr double kTwoPi = 2.0 * 3.14159265358979323846;
  double base = amplitude_ * 0.5 *
                (1.0 + std::sin(kTwoPi * static_cast<double>(t) / period_ + phase_));
  double v = base + rng.normal(0.0, noise_sigma_);
  return std::max(0.0, v);
}

EventSchedule::EventSchedule(std::size_t num_clusters, std::size_t horizon,
                             double event_prob, std::size_t duration,
                             double boost, common::Rng& rng)
    : boost_(num_clusters, std::vector<double>(horizon, 1.0)) {
  MECSC_CHECK_MSG(num_clusters > 0, "need at least one cluster");
  MECSC_CHECK_MSG(0.0 <= event_prob && event_prob <= 1.0, "event prob out of [0,1]");
  MECSC_CHECK_MSG(boost >= 1.0, "boost must be >= 1");
  for (std::size_t t = 0; t < horizon; ++t) {
    if (!rng.bernoulli(event_prob)) continue;
    std::size_t cluster = rng.index(num_clusters);
    ++num_events_;
    for (std::size_t d = 0; d < duration && t + d < horizon; ++d) {
      boost_[cluster][t + d] = std::max(boost_[cluster][t + d], boost);
    }
  }
}

double EventSchedule::multiplier(std::size_t cluster, std::size_t t) const {
  MECSC_CHECK(cluster < boost_.size());
  if (boost_[cluster].empty()) return 1.0;
  if (t >= boost_[cluster].size()) t = boost_[cluster].size() - 1;
  return boost_[cluster][t];
}

CompositeDemand::CompositeDemand(std::unique_ptr<DemandProcess> diurnal,
                                 std::unique_ptr<DemandProcess> burst,
                                 std::shared_ptr<const EventSchedule> events,
                                 std::size_t cluster)
    : diurnal_(std::move(diurnal)), burst_(std::move(burst)),
      events_(std::move(events)), cluster_(cluster) {
  MECSC_CHECK_MSG(diurnal_ && burst_, "null component process");
}

double CompositeDemand::sample(std::size_t t, common::Rng& rng) {
  double v = diurnal_->sample(t, rng) + burst_->sample(t, rng);
  if (events_) v *= events_->multiplier(cluster_, t);
  return v;
}

CappedDemand::CappedDemand(std::unique_ptr<DemandProcess> inner, double basic,
                           double cap)
    : inner_(std::move(inner)), max_bursty_(cap - basic) {
  MECSC_CHECK_MSG(inner_ != nullptr, "null inner process");
  MECSC_CHECK_MSG(max_bursty_ >= 0.0, "cap below the basic demand");
}

double CappedDemand::sample(std::size_t t, common::Rng& rng) {
  return std::min(max_bursty_, inner_->sample(t, rng));
}

DemandMatrix::DemandMatrix(std::size_t num_requests, std::size_t horizon)
    : n_(num_requests), horizon_(horizon), data_(num_requests * horizon, 0.0) {
  MECSC_CHECK_MSG(num_requests > 0 && horizon > 0, "empty demand matrix");
}

double DemandMatrix::at(std::size_t request, std::size_t t) const {
  MECSC_CHECK(request < n_ && t < horizon_);
  return data_[request * horizon_ + t];
}

void DemandMatrix::set(std::size_t request, std::size_t t, double value) {
  MECSC_CHECK(request < n_ && t < horizon_);
  MECSC_CHECK_MSG(value >= 0.0, "demand must be non-negative");
  data_[request * horizon_ + t] = value;
}

std::vector<double> DemandMatrix::slot(std::size_t t) const {
  MECSC_CHECK(t < horizon_);
  std::vector<double> col(n_);
  for (std::size_t l = 0; l < n_; ++l) col[l] = data_[l * horizon_ + t];
  return col;
}

std::vector<double> DemandMatrix::series(std::size_t request) const {
  MECSC_CHECK(request < n_);
  return {data_.begin() + static_cast<std::ptrdiff_t>(request * horizon_),
          data_.begin() + static_cast<std::ptrdiff_t>((request + 1) * horizon_)};
}

double DemandMatrix::max_value() const {
  double m = 0.0;
  for (double v : data_) m = std::max(m, v);
  return m;
}

DemandMatrix realize_demands(const std::vector<Request>& requests,
                             std::vector<std::unique_ptr<DemandProcess>>& processes,
                             std::size_t horizon, common::Rng& rng) {
  MECSC_CHECK_MSG(requests.size() == processes.size(),
                  "one demand process per request required");
  DemandMatrix m(requests.size(), horizon);
  for (std::size_t l = 0; l < requests.size(); ++l) {
    for (std::size_t t = 0; t < horizon; ++t) {
      double bursty = processes[l]->sample(t, rng);
      m.set(l, t, std::max(0.0, requests[l].basic_demand + bursty));
    }
  }
  return m;
}

}  // namespace mecsc::workload
