#include "workload/trace.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <string>

#include "common/error.h"

namespace mecsc::workload {

namespace {

const char* kServiceNames[] = {
    "vr-rendering", "cloud-gaming",  "iot-analytics", "video-transcode",
    "ar-overlay",   "speech-to-text", "object-detect", "map-matching",
    "recommender",  "health-monitor",
};

// (implementation of workload::nearest_home_station lives below)
std::size_t pick_home_station(const net::Topology& topo, double x, double y) {
  std::size_t best = 0;
  double best_dist = std::numeric_limits<double>::infinity();
  std::size_t best_covering = topo.num_stations();
  double best_cover_dist = std::numeric_limits<double>::infinity();
  for (const auto& bs : topo.stations()) {
    double dx = x - bs.x_m;
    double dy = y - bs.y_m;
    double d = std::sqrt(dx * dx + dy * dy);
    if (d < best_dist) {
      best_dist = d;
      best = bs.id;
    }
    if (d <= bs.radius_m && d < best_cover_dist) {
      best_cover_dist = d;
      best_covering = bs.id;
    }
  }
  return best_covering < topo.num_stations() ? best_covering : best;
}

}  // namespace

std::size_t nearest_home_station(const net::Topology& topology, double x, double y) {
  return pick_home_station(topology, x, y);
}

Workload make_workload(const net::Topology& topology, const WorkloadParams& params,
                       common::Rng& rng, bool bursty) {
  MECSC_CHECK_MSG(params.num_services > 0, "need at least one service");
  MECSC_CHECK_MSG(params.num_requests > 0, "need at least one request");
  MECSC_CHECK_MSG(params.num_clusters > 0, "need at least one cluster");
  MECSC_CHECK_MSG(topology.num_stations() > 0, "empty topology");

  Workload w;
  w.services.reserve(params.num_services);
  constexpr std::size_t kNumNames = sizeof(kServiceNames) / sizeof(kServiceNames[0]);
  for (std::size_t k = 0; k < params.num_services; ++k) {
    Service s;
    s.id = k;
    s.name = std::string(kServiceNames[k % kNumNames]);
    if (k >= kNumNames) s.name += "-" + std::to_string(k / kNumNames);
    s.base_instantiation_ms =
        rng.uniform(params.service_inst_lo_ms, params.service_inst_hi_ms);
    w.services.push_back(std::move(s));
  }

  // Hotspot clusters centred on random stations.
  std::vector<std::pair<double, double>> centers;
  centers.reserve(params.num_clusters);
  for (std::size_t c = 0; c < params.num_clusters; ++c) {
    const auto& bs = topology.station(rng.index(topology.num_stations()));
    centers.emplace_back(bs.x_m, bs.y_m);
  }
  w.cluster_centers = centers;

  if (bursty) {
    w.events = std::make_shared<EventSchedule>(
        params.num_clusters, params.horizon, params.event_prob,
        params.event_duration, params.event_boost, rng);
  }

  constexpr double kTwoPi = 2.0 * 3.14159265358979323846;
  w.requests.reserve(params.num_requests);
  w.processes.reserve(params.num_requests);
  for (std::size_t l = 0; l < params.num_requests; ++l) {
    Request r;
    r.id = l;
    r.service_id = rng.index(params.num_services);
    r.location_cluster = rng.index(params.num_clusters);
    r.group_tag = rng.index(std::max<std::size_t>(params.num_groups, 1));
    const auto& [cx, cy] = centers[r.location_cluster];
    r.x_m = cx + rng.normal(0.0, 40.0);
    r.y_m = cy + rng.normal(0.0, 40.0);
    r.home_station = pick_home_station(topology, r.x_m, r.y_m);
    r.basic_demand = rng.uniform(params.basic_demand_lo, params.basic_demand_hi);
    w.requests.push_back(r);

    if (!bursty) {
      w.processes.push_back(std::make_unique<ConstantDemand>());
      continue;
    }
    // Users of the same cluster share the diurnal phase (same hotspot
    // peaks together — "users in the same location may have similar
    // distributions of their data volumes", §V.A).
    double phase = kTwoPi * static_cast<double>(r.location_cluster) /
                   static_cast<double>(params.num_clusters);
    auto diurnal = std::make_unique<DiurnalDemand>(
        params.diurnal_amplitude, params.diurnal_period, phase,
        params.diurnal_noise);
    auto burst = std::make_unique<OnOffBurstDemand>(
        params.burst_p_on, params.burst_p_off, params.burst_scale,
        params.burst_shape, params.burst_cap);
    auto composite = std::make_unique<CompositeDemand>(
        std::move(diurnal), std::move(burst), w.events, r.location_cluster);
    w.processes.push_back(std::make_unique<CappedDemand>(
        std::move(composite), r.basic_demand, params.demand_cap));
  }
  return w;
}

Trace::Trace(std::vector<TraceRow> rows, std::size_t num_clusters,
             std::size_t horizon)
    : rows_(std::move(rows)), num_clusters_(num_clusters), horizon_(horizon) {
  MECSC_CHECK_MSG(num_clusters_ > 0, "trace needs at least one cluster");
  MECSC_CHECK_MSG(horizon_ > 0, "trace needs a positive horizon");
  for (const auto& r : rows_) {
    MECSC_CHECK_MSG(r.cluster < num_clusters_, "trace row cluster out of range");
    MECSC_CHECK_MSG(r.slot < horizon_, "trace row slot out of range");
  }
}

std::vector<double> Trace::one_hot(std::size_t cluster) const {
  MECSC_CHECK(cluster < num_clusters_);
  std::vector<double> v(num_clusters_, 0.0);
  v[cluster] = 1.0;
  return v;
}

std::vector<double> Trace::cluster_series(std::size_t cluster) const {
  MECSC_CHECK(cluster < num_clusters_);
  std::vector<double> sum(horizon_, 0.0);
  std::vector<std::size_t> count(horizon_, 0);
  for (const auto& r : rows_) {
    if (r.cluster != cluster) continue;
    sum[r.slot] += r.demand;
    ++count[r.slot];
  }
  fill_gaps(sum, count);
  return sum;
}

void Trace::fill_gaps(std::vector<double>& sum,
                      const std::vector<std::size_t>& count) {
  // A slot with no sampled row is *unobserved*, not zero-demand: the
  // small-sample regime drops rows at random. Hold the last observation
  // across gaps (and backfill leading gaps with the first one) so the
  // series stays in the demand distribution.
  double last = -1.0;
  for (std::size_t t = 0; t < sum.size(); ++t) {
    if (count[t] > 0) {
      sum[t] /= static_cast<double>(count[t]);
      last = sum[t];
    } else if (last >= 0.0) {
      sum[t] = last;  // forward-fill
    }
  }
  if (last < 0.0) return;  // never observed: all zeros
  std::size_t first = 0;
  while (count[first] == 0) ++first;
  for (std::size_t t = 0; t < first; ++t) sum[t] = sum[first];
}

std::vector<double> Trace::user_series(std::size_t user) const {
  std::vector<double> sum(horizon_, 0.0);
  std::vector<std::size_t> count(horizon_, 0);
  for (const auto& r : rows_) {
    if (r.user != user) continue;
    sum[r.slot] += r.demand;
    ++count[r.slot];
  }
  fill_gaps(sum, count);
  return sum;
}

Trace Trace::from_demands(const std::vector<Request>& requests,
                          const DemandMatrix& demands, std::size_t num_clusters,
                          double sample_fraction, common::Rng& rng) {
  MECSC_CHECK_MSG(requests.size() == demands.num_requests(),
                  "requests / demand matrix size mismatch");
  MECSC_CHECK_MSG(sample_fraction > 0.0 && sample_fraction <= 1.0,
                  "sample fraction out of (0,1]");
  std::vector<TraceRow> rows;
  for (std::size_t l = 0; l < requests.size(); ++l) {
    for (std::size_t t = 0; t < demands.horizon(); ++t) {
      if (!rng.bernoulli(sample_fraction)) continue;
      rows.push_back(TraceRow{l, requests[l].location_cluster, t, demands.at(l, t)});
    }
  }
  // Guarantee at least one row so downstream consumers have data even at
  // tiny sample fractions.
  if (rows.empty()) {
    rows.push_back(TraceRow{0, requests[0].location_cluster, 0, demands.at(0, 0)});
  }
  return Trace(std::move(rows), num_clusters, demands.horizon());
}

std::string Trace::to_csv() const {
  std::string out = "user,cluster,slot,demand\n";
  for (const auto& r : rows_) {
    out += std::to_string(r.user) + ',' + std::to_string(r.cluster) + ',' +
           std::to_string(r.slot) + ',';
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.9g", r.demand);
    out += buf;
    out += '\n';
  }
  return out;
}

Trace Trace::from_csv(const std::string& csv, std::size_t num_clusters,
                      std::size_t horizon) {
  std::vector<TraceRow> rows;
  std::size_t max_cluster = 0;
  std::size_t max_slot = 0;
  std::size_t pos = 0;
  std::size_t line_no = 0;
  while (pos < csv.size()) {
    std::size_t end = csv.find('\n', pos);
    if (end == std::string::npos) end = csv.size();
    std::string line = csv.substr(pos, end - pos);
    pos = end + 1;
    ++line_no;
    if (line.empty()) continue;
    if (line_no == 1 && line.rfind("user,", 0) == 0) continue;  // header
    TraceRow r;
    char* cursor = line.data();
    char* next = nullptr;
    auto parse_size = [&](const char* what) -> std::size_t {
      unsigned long long v = std::strtoull(cursor, &next, 10);
      if (next == cursor || *next != ',') {
        throw common::InvalidArgument("trace CSV line " + std::to_string(line_no) +
                                      ": bad " + what);
      }
      cursor = next + 1;
      return static_cast<std::size_t>(v);
    };
    r.user = parse_size("user");
    r.cluster = parse_size("cluster");
    r.slot = parse_size("slot");
    r.demand = std::strtod(cursor, &next);
    if (next == cursor || r.demand < 0.0) {
      throw common::InvalidArgument("trace CSV line " + std::to_string(line_no) +
                                    ": bad demand");
    }
    max_cluster = std::max(max_cluster, r.cluster);
    max_slot = std::max(max_slot, r.slot);
    rows.push_back(r);
  }
  if (rows.empty()) {
    throw common::InvalidArgument("trace CSV contains no data rows");
  }
  num_clusters = std::max(num_clusters, max_cluster + 1);
  horizon = std::max(horizon, max_slot + 1);
  return Trace(std::move(rows), num_clusters, horizon);
}

}  // namespace mecsc::workload
