#ifndef MECSC_WORKLOAD_TRACE_H
#define MECSC_WORKLOAD_TRACE_H

#include <memory>
#include <vector>

#include "common/rng.h"
#include "net/topology.h"
#include "workload/demand_model.h"
#include "workload/request.h"
#include "workload/service.h"

namespace mecsc::workload {

/// Parameters of a generated workload.
struct WorkloadParams {
  std::size_t num_services = 10;
  std::size_t num_requests = 100;
  /// Number of location clusters ("hotspots"). The GAN's latent code is
  /// the one-hot encoding of the cluster id (paper §V.B preprocesses
  /// locations with one-hot encoding).
  std::size_t num_clusters = 8;
  std::size_t num_groups = 4;

  double basic_demand_lo = 5.0;    // data units per slot
  double basic_demand_hi = 20.0;
  double service_inst_lo_ms = 20.0;  // base instantiation delay range
  double service_inst_hi_ms = 60.0;

  // On/off Pareto burst component.
  double burst_p_on = 0.08;
  double burst_p_off = 0.35;
  double burst_scale = 6.0;
  double burst_shape = 1.6;
  double burst_cap = 50.0;

  // Diurnal component (24-slot "day").
  double diurnal_amplitude = 8.0;
  double diurnal_period = 24.0;
  double diurnal_noise = 1.0;

  // Cluster-level events (hotspot-wide bursts, the paper's motivating
  // "sudden event" scenario).
  double event_prob = 0.08;
  std::size_t event_duration = 4;
  double event_boost = 3.0;
  /// Hard cap on any request's total per-slot demand, keeping even
  /// event × burst coincidences inside the largest station's capacity
  /// (demand_cap · C_unit must stay below the macro capacity floor).
  double demand_cap = 130.0;

  /// Horizon used to size the shared event schedule.
  std::size_t horizon = 100;
};

/// A complete generated workload: services, requests (with hidden
/// features), the shared event schedule, and one demand process per
/// request. `processes` are stateful; realising a matrix consumes them.
struct Workload {
  std::vector<Service> services;
  std::vector<Request> requests;
  std::shared_ptr<EventSchedule> events;
  std::vector<std::unique_ptr<DemandProcess>> processes;
  /// Hotspot cluster centres (x, y), index-aligned with cluster ids —
  /// the anchors the mobility model moves users between.
  std::vector<std::pair<double, double>> cluster_centers;
};

/// The station a user at (x, y) registers with: the nearest station
/// whose coverage disk contains the point, or the nearest station
/// overall when none covers it.
std::size_t nearest_home_station(const net::Topology& topology, double x, double y);

/// Builds a workload on top of a topology: hotspot clusters are centred
/// on random stations, users scatter around their cluster centre, each
/// user's home station is the nearest covering station (nearest station
/// overall if none covers), and each request demands one of the
/// services. With `bursty == false` every process is ConstantDemand
/// (the "given demands" regime of Figs. 3-5).
Workload make_workload(const net::Topology& topology, const WorkloadParams& params,
                       common::Rng& rng, bool bursty);

/// A small-sample historical trace in the shape of the NYC Wi-Fi hotspot
/// dataset the paper samples: rows of (user, location cluster, slot,
/// observed demand). This is the GAN/ARMA training input.
struct TraceRow {
  std::size_t user = 0;
  std::size_t cluster = 0;
  std::size_t slot = 0;
  double demand = 0.0;
};

class Trace {
 public:
  Trace(std::vector<TraceRow> rows, std::size_t num_clusters, std::size_t horizon);

  const std::vector<TraceRow>& rows() const noexcept { return rows_; }
  std::size_t num_clusters() const noexcept { return num_clusters_; }
  std::size_t horizon() const noexcept { return horizon_; }

  /// One-hot encoding of a cluster id (length == num_clusters).
  std::vector<double> one_hot(std::size_t cluster) const;

  /// Mean observed demand per slot for one cluster — a per-hotspot time
  /// series the predictors can learn from. Unobserved slots are
  /// forward-filled from the last observation (leading gaps backfilled):
  /// a missing sample is not zero demand.
  std::vector<double> cluster_series(std::size_t cluster) const;

  /// Observed demand per slot for one user, gap-filled the same way —
  /// the per-request training series of the GAN predictor.
  std::vector<double> user_series(std::size_t user) const;

  /// Builds a trace from realised demands; `sample_fraction` < 1 keeps a
  /// random subset of rows, reproducing the paper's small-sample regime.
  static Trace from_demands(const std::vector<Request>& requests,
                            const DemandMatrix& demands, std::size_t num_clusters,
                            double sample_fraction, common::Rng& rng);

  /// Serialises to CSV: header `user,cluster,slot,demand`, one row per
  /// observation — the interchange format for bringing real hotspot
  /// datasets (e.g. the paper's NYC Wi-Fi sample) into the library.
  std::string to_csv() const;

  /// Parses the CSV format written by `to_csv`. Cluster/horizon are
  /// inferred as (max id + 1) unless larger values are given. Throws
  /// InvalidArgument on malformed input.
  static Trace from_csv(const std::string& csv, std::size_t num_clusters = 0,
                        std::size_t horizon = 0);

 private:
  /// Converts per-slot sums+counts into a gap-filled mean series.
  static void fill_gaps(std::vector<double>& sum,
                        const std::vector<std::size_t>& count);

  std::vector<TraceRow> rows_;
  std::size_t num_clusters_;
  std::size_t horizon_;
};

}  // namespace mecsc::workload

#endif  // MECSC_WORKLOAD_TRACE_H
