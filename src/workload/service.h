#ifndef MECSC_WORKLOAD_SERVICE_H
#define MECSC_WORKLOAD_SERVICE_H

#include <cstddef>
#include <string>

namespace mecsc::workload {

/// A network service S_k originally hosted in a remote data centre and
/// cacheable into base stations (paper §III.C): VR rendering, cloud
/// gaming, IoT analytics, ...
struct Service {
  std::size_t id = 0;
  std::string name;
  /// Base instantiation delay (ms) of spinning up this service's
  /// VM/container. The per-station instantiation delay d_ins[i][k] is
  /// this base scaled by a station-dependent factor (see
  /// core::CachingProblem), matching the paper's "instantiation times of
  /// different services in different base stations may vary".
  double base_instantiation_ms = 0.0;
};

}  // namespace mecsc::workload

#endif  // MECSC_WORKLOAD_SERVICE_H
