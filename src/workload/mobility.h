#ifndef MECSC_WORKLOAD_MOBILITY_H
#define MECSC_WORKLOAD_MOBILITY_H

#include <utility>
#include <vector>

#include "common/rng.h"
#include "net/topology.h"
#include "workload/request.h"

namespace mecsc::workload {

/// Parameters of the hotspot-hopping mobility model.
struct MobilityParams {
  /// Per-user per-slot probability of relocating to a different hotspot
  /// (commuting between points of interest).
  double relocate_probability = 0.03;
  /// Per-slot Gaussian jitter (metres) while staying at a hotspot.
  double wander_sigma_m = 3.0;
  /// Spread (metres) around the destination hotspot centre after a
  /// relocation.
  double arrival_sigma_m = 40.0;
};

/// User mobility between hotspots (paper §I: user locations and
/// "mobility patterns" are the hidden features behind demand
/// uncertainty). Each slot a user either wanders locally or relocates to
/// a uniformly random other hotspot; its location cluster and home base
/// station are updated accordingly.
///
/// The model mutates Request objects in place, so a precomputed
/// per-slot sequence of request states (see `unroll`) lets several
/// algorithms replay the identical mobility path.
class MobilityModel {
 public:
  MobilityModel(MobilityParams params,
                std::vector<std::pair<double, double>> cluster_centers);

  const MobilityParams& params() const noexcept { return params_; }
  std::size_t num_clusters() const noexcept { return centers_.size(); }

  /// Advances every user one slot.
  void step(std::vector<Request>& users, const net::Topology& topology,
            common::Rng& rng) const;

  /// Precomputes `horizon` per-slot user states starting from `users`
  /// (entry t holds the states in force during slot t; entry 0 is the
  /// initial state, i.e. the first step happens before slot 1).
  std::vector<std::vector<Request>> unroll(std::vector<Request> users,
                                           const net::Topology& topology,
                                           std::size_t horizon,
                                           common::Rng& rng) const;

 private:
  MobilityParams params_;
  std::vector<std::pair<double, double>> centers_;
};

}  // namespace mecsc::workload

#endif  // MECSC_WORKLOAD_MOBILITY_H
