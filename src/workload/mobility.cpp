#include "workload/mobility.h"

#include "common/error.h"
#include "workload/trace.h"

namespace mecsc::workload {

MobilityModel::MobilityModel(MobilityParams params,
                             std::vector<std::pair<double, double>> cluster_centers)
    : params_(params), centers_(std::move(cluster_centers)) {
  MECSC_CHECK_MSG(!centers_.empty(), "mobility needs at least one hotspot");
  MECSC_CHECK_MSG(params_.relocate_probability >= 0.0 &&
                      params_.relocate_probability <= 1.0,
                  "relocate probability out of [0,1]");
  MECSC_CHECK_MSG(params_.wander_sigma_m >= 0.0, "negative wander sigma");
  MECSC_CHECK_MSG(params_.arrival_sigma_m >= 0.0, "negative arrival sigma");
}

void MobilityModel::step(std::vector<Request>& users,
                         const net::Topology& topology,
                         common::Rng& rng) const {
  for (auto& u : users) {
    MECSC_CHECK_MSG(u.location_cluster < centers_.size(),
                    "user cluster outside the mobility model's hotspots");
    if (centers_.size() > 1 && rng.bernoulli(params_.relocate_probability)) {
      // Relocate to a uniformly random *other* hotspot.
      std::size_t target = rng.index(centers_.size() - 1);
      if (target >= u.location_cluster) ++target;
      u.location_cluster = target;
      u.x_m = centers_[target].first + rng.normal(0.0, params_.arrival_sigma_m);
      u.y_m = centers_[target].second + rng.normal(0.0, params_.arrival_sigma_m);
    } else {
      u.x_m += rng.normal(0.0, params_.wander_sigma_m);
      u.y_m += rng.normal(0.0, params_.wander_sigma_m);
    }
    u.home_station = nearest_home_station(topology, u.x_m, u.y_m);
  }
}

std::vector<std::vector<Request>> MobilityModel::unroll(
    std::vector<Request> users, const net::Topology& topology,
    std::size_t horizon, common::Rng& rng) const {
  MECSC_CHECK_MSG(horizon > 0, "horizon must be > 0");
  std::vector<std::vector<Request>> states;
  states.reserve(horizon);
  states.push_back(users);
  for (std::size_t t = 1; t < horizon; ++t) {
    step(users, topology, rng);
    states.push_back(users);
  }
  return states;
}

}  // namespace mecsc::workload
