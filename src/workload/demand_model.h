#ifndef MECSC_WORKLOAD_DEMAND_MODEL_H
#define MECSC_WORKLOAD_DEMAND_MODEL_H

#include <memory>
#include <vector>

#include "common/rng.h"
#include "workload/request.h"

namespace mecsc::workload {

/// Generates the bursty component ρ_bursty(t) >= 0 of one request's
/// demand (paper §III.B: "such data volumes ... have a bursty pattern",
/// unknown in advance).
class DemandProcess {
 public:
  virtual ~DemandProcess() = default;

  /// Bursty demand for slot `t` (slots are sampled in increasing order).
  virtual double sample(std::size_t t, common::Rng& rng) = 0;
};

/// Zero bursty demand: ρ_l(t) == ρ_basic. This is the "given demands"
/// regime of §IV / Figs. 3-5.
class ConstantDemand final : public DemandProcess {
 public:
  double sample(std::size_t, common::Rng&) override { return 0.0; }
};

/// Two-state (on/off) Markov burst model: in the ON state the request
/// emits a Pareto-distributed burst on top of its basic demand; OFF emits
/// nothing. Sojourn times are geometric, giving the bursty, correlated
/// traffic of [24]/[40] cited by the paper.
class OnOffBurstDemand final : public DemandProcess {
 public:
  /// p_on: OFF->ON transition probability per slot; p_off: ON->OFF;
  /// burst_scale / burst_shape: Pareto x_m and alpha of the ON volume;
  /// cap: upper clamp keeping total demand inside station capacities.
  OnOffBurstDemand(double p_on, double p_off, double burst_scale,
                   double burst_shape, double cap);
  double sample(std::size_t t, common::Rng& rng) override;

  bool is_on() const noexcept { return on_; }
  /// Stationary ON probability of the chain.
  double stationary_on() const noexcept;

 private:
  double p_on_;
  double p_off_;
  double burst_scale_;
  double burst_shape_;
  double cap_;
  bool on_ = false;
};

/// Diurnal demand: a sinusoid over a 24-slot "day" plus Gaussian noise,
/// per-cluster phase-shifted so different hotspots peak at different
/// hours (what the NYC hotspot trace exhibits).
class DiurnalDemand final : public DemandProcess {
 public:
  DiurnalDemand(double amplitude, double period_slots, double phase,
                double noise_sigma);
  double sample(std::size_t t, common::Rng& rng) override;

 private:
  double amplitude_;
  double period_;
  double phase_;
  double noise_sigma_;
};

/// Shared schedule of cluster-level events ("a sudden event can easily
/// cause a lot of user demand", §I). All requests in an affected cluster
/// burst simultaneously while the event lasts.
class EventSchedule {
 public:
  /// Generates events over `horizon` slots for `num_clusters` clusters:
  /// each slot starts a new event with probability `event_prob` on a
  /// random cluster; events last `duration` slots and multiply demand by
  /// `boost`.
  EventSchedule(std::size_t num_clusters, std::size_t horizon,
                double event_prob, std::size_t duration, double boost,
                common::Rng& rng);

  /// Demand multiplier (>= 1) for a cluster at a slot.
  double multiplier(std::size_t cluster, std::size_t t) const;

  std::size_t num_events() const noexcept { return num_events_; }

 private:
  std::vector<std::vector<double>> boost_;  // [cluster][slot]
  std::size_t num_events_ = 0;
};

/// Composite model: (diurnal + on/off burst) * event multiplier. This is
/// the default bursty workload for the unknown-demand experiments
/// (Figs. 6-7).
class CompositeDemand final : public DemandProcess {
 public:
  CompositeDemand(std::unique_ptr<DemandProcess> diurnal,
                  std::unique_ptr<DemandProcess> burst,
                  std::shared_ptr<const EventSchedule> events,
                  std::size_t cluster);
  double sample(std::size_t t, common::Rng& rng) override;

 private:
  std::unique_ptr<DemandProcess> diurnal_;
  std::unique_ptr<DemandProcess> burst_;
  std::shared_ptr<const EventSchedule> events_;
  std::size_t cluster_;
};

/// Caps the *total* demand (basic + bursty) of a request at `cap` by
/// clamping the bursty part to cap - basic. Keeps even extreme event ×
/// burst coincidences inside the largest station's capacity, preserving
/// the paper's feasibility assumption (§III.E).
class CappedDemand final : public DemandProcess {
 public:
  CappedDemand(std::unique_ptr<DemandProcess> inner, double basic, double cap);
  double sample(std::size_t t, common::Rng& rng) override;

 private:
  std::unique_ptr<DemandProcess> inner_;
  double max_bursty_;
};

/// Realised demand of every request over a horizon: demand[l][t] is the
/// *total* ρ_l(t) = ρ_basic + bursty part. Precomputing the matrix keeps
/// all algorithms compared on identical sample paths.
class DemandMatrix {
 public:
  DemandMatrix(std::size_t num_requests, std::size_t horizon);

  double at(std::size_t request, std::size_t t) const;
  void set(std::size_t request, std::size_t t, double value);

  std::size_t num_requests() const noexcept { return n_; }
  std::size_t horizon() const noexcept { return horizon_; }

  /// Column for one slot: ρ_l(t) for all l.
  std::vector<double> slot(std::size_t t) const;
  /// Row for one request: its full demand series.
  std::vector<double> series(std::size_t request) const;

  double max_value() const;

 private:
  std::size_t n_;
  std::size_t horizon_;
  std::vector<double> data_;  // row-major [request][slot]
};

/// Materialises a demand matrix: for each request, total demand
/// ρ_basic + process sample, clamped to >= 0.
DemandMatrix realize_demands(const std::vector<Request>& requests,
                             std::vector<std::unique_ptr<DemandProcess>>& processes,
                             std::size_t horizon, common::Rng& rng);

}  // namespace mecsc::workload

#endif  // MECSC_WORKLOAD_DEMAND_MODEL_H
