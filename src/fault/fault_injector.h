#ifndef MECSC_FAULT_FAULT_INJECTOR_H
#define MECSC_FAULT_FAULT_INJECTOR_H

#include <cstddef>
#include <vector>

#include "core/problem.h"
#include "fault/fault_plan.h"
#include "workload/demand_model.h"

namespace mecsc::fault {

/// Per-slot fault summary the simulator folds into its SlotRecord.
struct SlotFaultSummary {
  std::size_t active_outages = 0;  ///< Stations down this slot.
  std::size_t newly_down = 0;      ///< Up in t-1, down in t (evict caches).
  std::size_t recovered = 0;       ///< Down in t-1, up in t (re-instantiate).
  std::size_t derated = 0;         ///< Up but serving below full capacity.
  std::size_t censored = 0;        ///< Stations whose d_i(t) is lost.
  std::size_t shed_requests = 0;   ///< Admission-control deferrals.
  bool flash_crowd = false;        ///< A flash crowd peaks this slot.
  /// Total delay penalty (ms, pre-averaging) the shed requests incur.
  double shed_penalty_ms = 0.0;
};

/// Applies a FaultPlan to a run: mutates the problem's effective station
/// capacities per slot, bakes flash crowds and admission-control
/// shedding into the demand matrix up front (so every algorithm and the
/// scorer see the same post-fault sample path), and exposes per-slot
/// summaries plus the censoring mask.
///
/// Everything is precomputed at construction/apply time from the
/// deterministic plan — begin_slot only copies state into the problem —
/// so replaying the run for a second algorithm, or under a different
/// MECSC_WORKERS, is bitwise identical.
class FaultInjector {
 public:
  /// `problem` must outlive the injector; its station capacities are
  /// overwritten per slot during a run (reset by end_run()).
  FaultInjector(core::CachingProblem& problem, FaultPlan plan);

  /// Bakes the plan's flash crowds into `demands`, then applies
  /// admission control per slot: while a slot's aggregate resource
  /// demand exceeds admission_margin × surviving capacity (or a request
  /// cannot fit the largest up station), the largest-demand requests are
  /// shed — their demand is zeroed (deferred) and the per-request shed
  /// penalty is recorded in the slot summary. Call once, before the run.
  void apply_to_demands(workload::DemandMatrix& demands);

  /// Installs slot t's effective capacities into the problem and
  /// returns the slot's summary.
  const SlotFaultSummary& begin_slot(std::size_t t);

  /// Restores the problem's full static capacities.
  void end_run();

  /// The materialised fault schedule being applied.
  const FaultPlan& plan() const noexcept { return plan_; }
  /// Slot t's fault summary (valid after begin_slot(t)).
  const SlotFaultSummary& summary(std::size_t t) const { return summaries_.at(t); }

  /// True when station i serves (possibly derated) in slot t.
  bool station_up(std::size_t t, std::size_t i) const {
    return plan_.slot(t).station_up[i] != 0;
  }
  /// True when station i's delay feedback is censored in slot t.
  bool feedback_lost(std::size_t t, std::size_t i) const {
    return plan_.slot(t).feedback_lost[i] != 0;
  }
  /// Requests shed (demand deferred) in slot t; valid after
  /// apply_to_demands.
  const std::vector<std::uint32_t>& shed(std::size_t t) const {
    return shed_.at(t);
  }

  /// The effective (derated) per-station capacities installed by the
  /// latest begin_slot() — what serve records into a trace's
  /// realised-fault block.
  const std::vector<double>& effective_capacities() const noexcept {
    return capacity_scratch_;
  }

 private:
  core::CachingProblem* problem_;
  FaultPlan plan_;
  std::vector<SlotFaultSummary> summaries_;
  std::vector<std::vector<std::uint32_t>> shed_;  // request ids per slot
  std::vector<double> capacity_scratch_;
  bool demands_applied_ = false;
};

}  // namespace mecsc::fault

#endif  // MECSC_FAULT_FAULT_INJECTOR_H
