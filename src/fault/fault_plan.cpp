#include "fault/fault_plan.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/error.h"
#include "common/rng.h"

namespace mecsc::fault {

FaultMode mode_from_env() {
  const char* v = std::getenv("MECSC_FAULTS");
  if (v == nullptr || *v == '\0' || std::strcmp(v, "off") == 0) {
    return FaultMode::kOff;
  }
  if (std::strcmp(v, "churn") == 0) return FaultMode::kChurn;
  std::fprintf(stderr,
               "mecsc: ignoring MECSC_FAULTS=\"%s\" — expected \"off\" or "
               "\"churn\"\n",
               v);
  return FaultMode::kOff;
}

namespace {

const TierChurn& churn_of(const FaultOptions& o, net::Tier tier) {
  switch (tier) {
    case net::Tier::kMacro: return o.macro;
    case net::Tier::kMicro: return o.micro;
    case net::Tier::kFemto: return o.femto;
  }
  return o.femto;  // unreachable
}

}  // namespace

FaultPlan FaultPlan::generate(const net::Topology& topology, std::size_t horizon,
                              const FaultOptions& options, std::uint64_t seed) {
  MECSC_CHECK_MSG(horizon > 0, "fault plan needs a positive horizon");
  MECSC_CHECK_MSG(options.admission_margin > 0.0 && options.admission_margin <= 1.0,
                  "admission margin out of (0,1]");
  MECSC_CHECK_MSG(options.derate_floor > 0.0 && options.derate_floor <= 1.0,
                  "derate floor out of (0,1]");
  MECSC_CHECK_MSG(options.flash_crowd_multiplier >= 1.0,
                  "flash crowd must amplify demand");

  const std::size_t ns = topology.num_stations();
  FaultPlan plan;
  plan.options_ = options;
  plan.slots_.resize(horizon);
  for (auto& sf : plan.slots_) {
    sf.station_up.assign(ns, 1);
    sf.capacity_factor.assign(ns, 1.0);
    sf.feedback_lost.assign(ns, 0);
  }
  if (options.mode == FaultMode::kOff) return plan;

  const std::size_t lo = std::min(options.first_fault_slot, horizon);
  const std::size_t hi = std::min(options.last_fault_slot, horizon - 1);

  // Independent child streams per fault type: adding draws to one type
  // (e.g. more outages under a shorter MTBF) never perturbs another.
  common::Rng root(seed);
  common::Rng churn_rng = root.split();
  common::Rng derate_rng = root.split();
  common::Rng censor_rng = root.split();
  common::Rng crowd_rng = root.split();

  // --- Outage churn: alternating exponential up/down renewal process
  // per station, clipped to the fault window.
  for (std::size_t i = 0; i < ns; ++i) {
    const TierChurn& tc = churn_of(options, topology.station(i).tier);
    if (tc.mtbf_slots <= 0.0 || tc.mttr_slots <= 0.0) continue;
    double t = static_cast<double>(lo);
    bool up = true;
    while (t < static_cast<double>(hi + 1)) {
      double dur = churn_rng.exponential(1.0 / (up ? tc.mtbf_slots : tc.mttr_slots));
      double end = t + std::max(dur, 1e-9);
      if (!up) {
        std::size_t from = static_cast<std::size_t>(t);
        std::size_t to = std::min(hi, static_cast<std::size_t>(end));
        for (std::size_t s = from; s <= to && s < horizon; ++s) {
          plan.slots_[s].station_up[i] = 0;
          plan.slots_[s].capacity_factor[i] = 0.0;
        }
      }
      t = end;
      up = !up;
    }
  }

  // Never let churn take the whole network down: force the
  // largest-capacity station back up where needed (invariant relied on
  // by admission control — "sheds < 100% of requests").
  const std::size_t biggest = topology.largest_station();
  for (auto& sf : plan.slots_) {
    if (std::find(sf.station_up.begin(), sf.station_up.end(), char(1)) ==
        sf.station_up.end()) {
      sf.station_up[biggest] = 1;
      sf.capacity_factor[biggest] = 1.0;
    }
  }

  // --- Transient capacity derating of up stations.
  if (options.derate_probability > 0.0) {
    for (std::size_t t = lo; t <= hi && t < horizon; ++t) {
      SlotFaults& sf = plan.slots_[t];
      for (std::size_t i = 0; i < ns; ++i) {
        if (!sf.station_up[i]) continue;
        if (derate_rng.bernoulli(options.derate_probability)) {
          sf.capacity_factor[i] = derate_rng.uniform(options.derate_floor, 1.0);
        }
      }
    }
  }

  // --- Bandit-feedback censoring.
  if (options.feedback_loss_probability > 0.0) {
    for (std::size_t t = lo; t <= hi && t < horizon; ++t) {
      SlotFaults& sf = plan.slots_[t];
      for (std::size_t i = 0; i < ns; ++i) {
        if (censor_rng.bernoulli(options.feedback_loss_probability)) {
          sf.feedback_lost[i] = 1;
        }
      }
    }
  }

  // --- Flash crowds: a cluster's demand spikes for a few slots. The
  // cluster count is not known here, so multipliers are stored per
  // cluster id up to a generous bound and sized lazily by the injector.
  if (options.flash_crowd_probability > 0.0 &&
      options.flash_crowd_multiplier > 1.0) {
    for (std::size_t t = lo; t <= hi && t < horizon; ++t) {
      if (!crowd_rng.bernoulli(options.flash_crowd_probability)) continue;
      // The cluster count is a workload property unknown here; drawing a
      // fixed-range id (mapped modulo the cluster count at apply time)
      // keeps the plan workload-independent.
      std::size_t cluster_draw = crowd_rng.index(1u << 16);
      std::size_t until = std::min({hi, horizon - 1,
                                    t + std::max<std::size_t>(
                                            options.flash_crowd_duration, 1) - 1});
      for (std::size_t s = t; s <= until; ++s) {
        SlotFaults& sf = plan.slots_[s];
        sf.cluster_multiplier.push_back(static_cast<double>(cluster_draw));
        sf.cluster_multiplier.push_back(options.flash_crowd_multiplier);
      }
    }
  }

  return plan;
}

double FaultPlan::availability() const {
  if (slots_.empty() || slots_.front().station_up.empty()) return 1.0;
  std::size_t up = 0, total = 0;
  for (const auto& sf : slots_) {
    for (char c : sf.station_up) {
      up += c ? 1 : 0;
      ++total;
    }
  }
  return total == 0 ? 1.0 : static_cast<double>(up) / static_cast<double>(total);
}

std::size_t FaultPlan::total_outage_slots() const {
  std::size_t down = 0;
  for (const auto& sf : slots_) {
    for (char c : sf.station_up) down += c ? 0 : 1;
  }
  return down;
}

}  // namespace mecsc::fault
