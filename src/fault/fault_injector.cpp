#include "fault/fault_injector.h"

#include <algorithm>
#include <numeric>

#include "common/error.h"

namespace mecsc::fault {

FaultInjector::FaultInjector(core::CachingProblem& problem, FaultPlan plan)
    : problem_(&problem), plan_(std::move(plan)) {
  MECSC_CHECK_MSG(!plan_.empty(), "empty fault plan");
  MECSC_CHECK_MSG(plan_.slot(0).station_up.size() == problem.num_stations(),
                  "fault plan / problem station count mismatch");
  const std::size_t horizon = plan_.horizon();
  summaries_.resize(horizon);
  shed_.resize(horizon);

  // Outage bookkeeping is plan-only, so it is summarised here once.
  const std::size_t ns = problem.num_stations();
  for (std::size_t t = 0; t < horizon; ++t) {
    const SlotFaults& sf = plan_.slot(t);
    SlotFaultSummary& sum = summaries_[t];
    for (std::size_t i = 0; i < ns; ++i) {
      const bool up = sf.station_up[i] != 0;
      if (!up) ++sum.active_outages;
      if (up && sf.capacity_factor[i] < 1.0) ++sum.derated;
      if (sf.feedback_lost[i]) ++sum.censored;
      const bool was_up = t == 0 || plan_.slot(t - 1).station_up[i] != 0;
      if (was_up && !up) ++sum.newly_down;
      if (!was_up && up) ++sum.recovered;
    }
    sum.flash_crowd = !sf.cluster_multiplier.empty();
  }
}

void FaultInjector::apply_to_demands(workload::DemandMatrix& demands) {
  MECSC_CHECK_MSG(!demands_applied_, "apply_to_demands called twice");
  demands_applied_ = true;
  const core::CachingProblem& p = *problem_;
  const std::size_t nr = p.num_requests();
  const std::size_t ns = p.num_stations();
  MECSC_CHECK_MSG(demands.num_requests() == nr,
                  "demand matrix / problem size mismatch");
  const std::size_t horizon = std::min(plan_.horizon(), demands.horizon());
  const FaultOptions& opt = plan_.options();

  std::size_t num_clusters = 0;
  for (const auto& r : p.requests()) {
    num_clusters = std::max(num_clusters, r.location_cluster + 1);
  }

  std::vector<std::size_t> order(nr);
  for (std::size_t t = 0; t < horizon; ++t) {
    const SlotFaults& sf = plan_.slot(t);
    SlotFaultSummary& sum = summaries_[t];

    // 1. Flash crowds: amplify the affected clusters' demand.
    for (std::size_t j = 0; j + 1 < sf.cluster_multiplier.size(); j += 2) {
      std::size_t cluster =
          static_cast<std::size_t>(sf.cluster_multiplier[j]) % num_clusters;
      double mult = sf.cluster_multiplier[j + 1];
      for (std::size_t l = 0; l < nr; ++l) {
        if (p.requests()[l].location_cluster == cluster) {
          demands.set(l, t, demands.at(l, t) * mult);
        }
      }
    }

    // 2. Admission control against the surviving (derated) capacity.
    double up_capacity = 0.0;
    double biggest_up = 0.0;
    for (std::size_t i = 0; i < ns; ++i) {
      double cap =
          p.topology().station(i).capacity_mhz * sf.capacity_factor[i];
      up_capacity += cap;
      biggest_up = std::max(biggest_up, cap);
    }
    const double budget = opt.admission_margin * up_capacity;
    double need = 0.0;
    for (std::size_t l = 0; l < nr; ++l) {
      need += p.resource_demand_mhz(demands.at(l, t));
    }
    // Shed any request that no longer fits the largest surviving
    // station (integral assignment needs a single host), then the
    // largest-demand requests until the slot fits the budget — the
    // deterministic "biggest spender defers" policy.
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      double da = demands.at(a, t), db = demands.at(b, t);
      if (da != db) return da > db;
      return a < b;
    });
    for (std::size_t l : order) {
      double res = p.resource_demand_mhz(demands.at(l, t));
      if (res <= 0.0) break;  // descending order: the rest are zero too
      bool oversize = res > opt.admission_margin * biggest_up;
      // Descending order again: once the aggregate fits and this request
      // fits the biggest station, every remaining (smaller) one does.
      if (!oversize && need <= budget) break;
      demands.set(l, t, 0.0);
      need -= res;
      shed_[t].push_back(static_cast<std::uint32_t>(l));
      ++sum.shed_requests;
      sum.shed_penalty_ms += opt.shed_penalty_ms;
    }
  }
}

const SlotFaultSummary& FaultInjector::begin_slot(std::size_t t) {
  MECSC_CHECK_MSG(t < plan_.horizon(), "slot beyond fault plan horizon");
  const SlotFaults& sf = plan_.slot(t);
  const std::size_t ns = problem_->num_stations();
  capacity_scratch_.resize(ns);
  for (std::size_t i = 0; i < ns; ++i) {
    capacity_scratch_[i] =
        problem_->topology().station(i).capacity_mhz * sf.capacity_factor[i];
  }
  problem_->set_station_capacities(capacity_scratch_);
  return summaries_[t];
}

void FaultInjector::end_run() { problem_->reset_station_capacities(); }

}  // namespace mecsc::fault
