#ifndef MECSC_FAULT_FAULT_PLAN_H
#define MECSC_FAULT_FAULT_PLAN_H

#include <cstddef>
#include <cstdint>
#include <vector>

#include "net/base_station.h"
#include "net/topology.h"

namespace mecsc::fault {

/// What MECSC_FAULTS selects: no faults (default) or the full churn
/// model (outages + derating + censored feedback + flash crowds).
enum class FaultMode {
  kOff,    ///< No faults: every station up, feedback intact.
  kChurn,  ///< Outages + derating + censored feedback + flash crowds.
};

/// Parses MECSC_FAULTS ("off" | "churn"; unset/empty = off). An
/// unrecognised value warns on stderr and yields kOff — a silently
/// misparsed fault switch would invalidate a whole benchmark run.
FaultMode mode_from_env();

/// Per-tier outage churn: exponential up-times with mean `mtbf_slots`
/// alternating with exponential down-times with mean `mttr_slots`.
/// Macro cloudlets are engineered infrastructure (rare, short outages);
/// femtocells churn like consumer hardware.
struct TierChurn {
  double mtbf_slots = 0.0;  ///< Mean slots between failures (up-time).
  double mttr_slots = 0.0;  ///< Mean slots to repair (down-time).
};

/// Tunables of the fault model (DESIGN.md §9). Defaults give a run with
/// visible-but-survivable degradation at the paper's 100-station /
/// 100-slot scale: a handful of concurrent outages, occasional capacity
/// dips, and roughly one flash crowd per run.
struct FaultOptions {
  /// Master switch; kOff generates an all-up plan.
  FaultMode mode = FaultMode::kOff;

  TierChurn macro{500.0, 3.0};  ///< Churn of macro-cloudlet stations.
  TierChurn micro{200.0, 5.0};  ///< Churn of micro-cloudlet stations.
  TierChurn femto{80.0, 8.0};   ///< Churn of femtocell stations.

  /// Transient capacity derating: with this per-station-slot probability
  /// an (up) station serves at a factor drawn uniformly from
  /// [derate_floor, 1).
  double derate_probability = 0.05;
  /// Lower bound of the derating factor draw.
  double derate_floor = 0.4;

  /// Bandit-feedback loss: with this per-station-slot probability the
  /// realised d_i(t) of a station is censored (the algorithm's observe
  /// sees NaN for that station and must skip the update).
  double feedback_loss_probability = 0.10;

  /// Flash crowds layered on the bursty demand model: with this per-slot
  /// probability a uniformly chosen location cluster's demand is
  /// multiplied by `flash_crowd_multiplier` for `flash_crowd_duration`
  /// slots.
  double flash_crowd_probability = 0.03;
  /// Demand multiplier applied to the crowded cluster.
  double flash_crowd_multiplier = 4.0;
  /// Slots a flash crowd lasts.
  std::size_t flash_crowd_duration = 3;

  /// Admission control: requests are shed (demand deferred to 0 for the
  /// slot) until the slot's aggregate resource demand fits within
  /// `admission_margin` of the surviving (derated) capacity.
  double admission_margin = 0.9;
  /// Delay penalty charged per shed request into the slot's realised
  /// average delay (a deferred user waits roughly one slot).
  double shed_penalty_ms = 250.0;
  /// Scoring multiplier on the unit delay of a request that ends up
  /// served at a down station despite the degradation machinery.
  double outage_penalty_factor = 10.0;

  /// Churn/censoring/flash crowds are confined to slots in
  /// [first_fault_slot, last_fault_slot]; outside the window every
  /// station is up and feedback is intact. Benches and the recovery
  /// tests use this to leave a clean post-fault period.
  std::size_t first_fault_slot = 0;
  std::size_t last_fault_slot = static_cast<std::size_t>(-1);
};

/// One slot's materialised fault state.
struct SlotFaults {
  /// station_up[i] == 0 means bs_i (and its cached instances) is down.
  std::vector<char> station_up;
  /// Effective-capacity factor per station (0 when down, (0,1] when
  /// derated, 1 when healthy).
  std::vector<double> capacity_factor;
  /// feedback_lost[i] != 0 censors d_i(t) towards the algorithms.
  std::vector<char> feedback_lost;
  /// Active flash crowds, flattened as (cluster_draw, multiplier) pairs.
  /// `cluster_draw` is a workload-independent id the injector maps to a
  /// concrete location cluster modulo the workload's cluster count.
  /// Empty when no flash crowd touches this slot.
  std::vector<double> cluster_multiplier;
};

/// A deterministic, fully pre-materialised fault schedule: every outage,
/// derating, censoring and flash crowd of the run is fixed by
/// (topology, horizon, options, seed) at generation time, so the same
/// plan replayed against any algorithm — or under any MECSC_WORKERS — is
/// bitwise identical. Generation draws from independent child RNG
/// streams per fault type, so tweaking one knob never shifts another
/// type's draws.
///
/// Invariant: at least one station is up in every slot (the generator
/// forces the largest-capacity station back up if churn ever takes the
/// whole network down), so "shed everything forever" is unreachable.
class FaultPlan {
 public:
  /// An empty plan (no slots; empty() is true).
  FaultPlan() = default;

  /// Materialises the full schedule from (topology, horizon, options,
  /// seed) — the only way to build a non-empty plan.
  static FaultPlan generate(const net::Topology& topology, std::size_t horizon,
                            const FaultOptions& options, std::uint64_t seed);

  /// True for a default-constructed (slotless) plan.
  bool empty() const noexcept { return slots_.empty(); }
  /// Number of slots the plan covers.
  std::size_t horizon() const noexcept { return slots_.size(); }
  /// The options the plan was generated from.
  const FaultOptions& options() const noexcept { return options_; }
  /// Slot t's materialised faults.
  const SlotFaults& slot(std::size_t t) const { return slots_.at(t); }

  /// Fraction of station-slots that are up — the availability axis of
  /// the delay-vs-availability curve in bench_fault_churn.
  double availability() const;

  /// Total station-slots spent down.
  std::size_t total_outage_slots() const;

 private:
  FaultOptions options_;
  std::vector<SlotFaults> slots_;
};

}  // namespace mecsc::fault

#endif  // MECSC_FAULT_FAULT_PLAN_H
