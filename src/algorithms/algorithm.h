#ifndef MECSC_ALGORITHMS_ALGORITHM_H
#define MECSC_ALGORITHMS_ALGORITHM_H

#include <string>
#include <vector>

#include "core/assignment.h"

namespace mecsc::algorithms {

/// A per-slot service-caching / task-offloading policy.
///
/// Protocol per slot t (driven by sim::Simulator):
///  1. decide(t) returns the caching + assignment decision. What the
///     policy knows about demands is its own business: the *_GD
///     algorithms read the given demand matrix, OL_Reg/OL_GAN consult
///     their predictor.
///  2. The simulator realises the slot (true demands, true unit delays)
///     and scores the decision.
///  3. observe(t, ...) reveals the slot's ground truth. Implementations
///     honouring the bandit feedback model must only use the unit delays
///     of stations they actually played (Algorithm 1 line 10-11).
class CachingAlgorithm {
 public:
  virtual ~CachingAlgorithm() = default;

  /// Display name used in tables and RunResult::algorithm.
  virtual std::string name() const = 0;

  /// Chooses slot t's assignment before the slot's ground truth is known.
  virtual core::Assignment decide(std::size_t t) = 0;

  /// Reveals slot t's ground truth after the decision was scored.
  virtual void observe(std::size_t t, const core::Assignment& decision,
                       const std::vector<double>& true_demands,
                       const std::vector<double>& realized_unit_delays) = 0;
};

}  // namespace mecsc::algorithms

#endif  // MECSC_ALGORITHMS_ALGORITHM_H
