#ifndef MECSC_ALGORITHMS_OL_GD_H
#define MECSC_ALGORITHMS_OL_GD_H

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "algorithms/algorithm.h"
#include "core/aggregation.h"
#include "core/bandit.h"
#include "core/fractional_solver.h"
#include "core/lagrangian_solver.h"
#include "core/problem.h"
#include "core/rounding.h"
#include "core/solver_tier.h"
#include "lp/simplex.h"
#include "predict/predictor.h"
#include "workload/demand_model.h"

namespace mecsc::algorithms {

/// Options of the online-learning engine.
struct OlOptions {
  /// Candidate threshold γ of Eq. 9.
  double gamma = 0.25;
  /// Exploration schedule. Algorithm 1's pseudocode (line 2) fixes
  /// ε = 1/4, but the regret analysis (Theorem 1) assumes the ε_t = c/t
  /// decay — a fixed ε pays a constant per-slot exploration tax forever
  /// and cannot converge to the optimum, so the analysed decay is the
  /// library default; `bench_ablation_epsilon` compares both.
  core::EpsilonSchedule epsilon = core::EpsilonSchedule::decay(0.5);
  /// Seed each arm's prior θ with its tier's delay-range midpoint
  /// (station tiers are public infrastructure knowledge — the same
  /// information the historical baselines' stale measurements embody).
  /// When false, every arm gets the flat `theta_prior`.
  bool tier_priors = true;
  /// Flat prior θ for unplayed arms when `tier_priors` is off. The paper
  /// assumes d_min/d_max known; the midpoint is the natural value.
  double theta_prior = 25.0;
  /// One exploration coin per slot (Algorithm 1 verbatim) instead of one
  /// per request (library default; see RoundingOptions::per_slot_coin).
  bool per_slot_coin = false;
  /// Solve the per-slot LP exactly with the dense simplex instead of the
  /// flow-based solver (small instances / ablations only).
  bool use_exact_lp = false;
  /// Hard pivot cap handed to the exact-LP simplex (0 = solver
  /// automatic). Mainly a test seam: setting it very low forces
  /// kIterationLimit at fallback depth 0 and exercises the degradation
  /// chain below.
  std::size_t lp_max_iterations = 0;
  /// Optimism-in-the-face-of-uncertainty extension: when > 0, the LP is
  /// solved with the lower confidence bound
  ///     θ̃_i = max(0, θ_i − β·sqrt(ln(t+1) / m_i))
  /// instead of the empirical mean (unplayed arms use m_i = 1), which
  /// makes rarely-played stations look attractive and replaces explicit
  /// ε-exploration — the classical UCB1 counterpart for a minimisation
  /// bandit. Combine with EpsilonSchedule::zero() for pure UCB.
  double ucb_beta = 0.0;
  /// Demand-class aggregation (DESIGN.md §11): formulate the per-slot LP
  /// over (service, home station, demand bucket) classes instead of
  /// individual requests and de-aggregate during rounding. kEnv (the
  /// default) defers to MECSC_AGGREGATE; an explicit kOff/kAuto/kOn set
  /// in code always wins over the environment.
  core::AggregateMode aggregate = core::AggregateMode::kEnv;
  /// Class-construction tunables used when aggregation is active.
  core::AggregationOptions aggregation;
  /// Which solver answers the per-slot LP (DESIGN.md §16). kEnv (the
  /// default) defers to MECSC_SOLVER; an explicit tier set in code wins
  /// over the environment. `use_exact_lp = true` above is the legacy
  /// spelling of kSimplex and takes precedence when set.
  core::SolverTier solver = core::SolverTier::kEnv;
  /// Lagrangian-tier tunables (iteration cap, target duality gap, kAuto
  /// column threshold); defaults resolve MECSC_LAG_ITERS / MECSC_LAG_GAP
  /// once at options construction.
  core::LagrangianOptions lagrangian = core::lagrangian_options_from_env();
};

/// Complete cross-slot decision state of an OnlineCachingAlgorithm — the
/// bandit statistics, the rounding RNG's stream position, and both
/// solver warm states. Exporting this after slot t and importing it into
/// a freshly constructed algorithm makes its slot t+1 decisions
/// bit-for-bit identical to the uninterrupted run's, which is the
/// contract the serve checkpoint/resume path is built on.
struct OlGdState {
  std::vector<double> bandit_theta;        ///< Per-arm posterior means.
  std::vector<std::size_t> bandit_plays;   ///< Per-arm pull counts.
  std::size_t bandit_total_plays = 0;      ///< Total pulls (UCB time).
  std::string rng_stream;                  ///< Rounding RNG stream state.
  lp::SimplexWarmState lp_warm;            ///< Simplex warm-start basis.
  core::FractionalWarmState solver_warm;   ///< Flow-solver warm state.
  core::LagrangianWarmState lag_warm;      ///< Lagrangian duals λ + step.
};

/// The paper's online learning algorithm (Algorithm 1, OL_GD) and its
/// prediction-driven variants (Algorithm 2): per slot,
///  1. obtain demands — given (OL_GD) or predicted (OL_Reg / OL_GAN);
///  2. solve the LP relaxation of Eq. 3 under the bandit estimates θ;
///  3. build candidate sets BS_l^candi = {i | x*_li >= γ};
///  4. ε-greedy randomized rounding (exploit candidates ∝ x*, explore
///     random non-candidates);
///  5. at slot end, observe d_i(t) for every station that served a
///     request and update its empirical mean θ_i.
class OnlineCachingAlgorithm final : public CachingAlgorithm {
 public:
  /// Given-demand variant (OL_GD): reads demands from the matrix.
  OnlineCachingAlgorithm(std::string name, const core::CachingProblem& problem,
                         const workload::DemandMatrix* given_demands,
                         OlOptions options, std::uint64_t seed);

  /// Prediction variant (OL_Reg with an ArmaPredictor, OL_GAN with a
  /// GanDemandPredictor). Takes ownership of the predictor.
  OnlineCachingAlgorithm(std::string name, const core::CachingProblem& problem,
                         std::unique_ptr<predict::DemandPredictor> predictor,
                         OlOptions options, std::uint64_t seed);

  /// Live-stream variant (mecsc::serve): no a-priori demand matrix and
  /// no predictor — each slot's demand snapshot is injected via
  /// set_live_demands() right before decide(). Everything downstream of
  /// demand acquisition (LP, rounding, bandit) is byte-identical to the
  /// given-demand variant, which is what makes a recorded live trace
  /// replayable through the batch simulator bit-for-bit.
  OnlineCachingAlgorithm(std::string name, const core::CachingProblem& problem,
                         OlOptions options, std::uint64_t seed);

  /// Installs the demand snapshot the next decide() consumes (one-shot;
  /// size must be num_requests). Takes precedence over the given matrix
  /// / predictor for exactly that decide(), so a live driver can reuse
  /// any variant.
  void set_live_demands(std::vector<double> demands);

  /// The display name passed at construction.
  std::string name() const override { return name_; }
  /// Algorithm 1, lines 3-9: solve the per-slot LP under the current θ
  /// estimates and ε-greedily round it to an integral assignment.
  core::Assignment decide(std::size_t t) override;
  /// Algorithm 1, lines 10-11: feed the unit delays of played stations
  /// into the per-station bandit.
  void observe(std::size_t t, const core::Assignment& decision,
               const std::vector<double>& true_demands,
               const std::vector<double>& realized_unit_delays) override;

  /// The per-station delay bandit (θ estimates and play counts).
  const core::BanditState& bandit() const noexcept { return bandit_; }
  /// Demands used by the latest decide() (given or predicted) — exposed
  /// for tests and prediction-accuracy accounting.
  const std::vector<double>& last_demands() const noexcept { return last_demands_; }

  /// How far down the solver fallback chain the latest decide() went:
  /// 0 = primary solve, 1 = cold Bland's-rule simplex restart, 2 = flow
  /// based degraded solve (greedy repair of unroutable demand).
  int last_fallback_depth() const noexcept { return last_fallback_depth_; }

  /// Demand classes the latest decide() solved over; 0 when it ran the
  /// per-request path (aggregation off, or kAuto below its threshold).
  std::size_t last_num_classes() const noexcept { return last_num_classes_; }

  /// The solver tier that produced the latest decide()'s fractional
  /// solution after kEnv/kAuto resolution — kFlow, kSimplex or
  /// kLagrangian. Note a Lagrangian solve that failed its duality-gap
  /// target still reports kLagrangian with last_fallback_depth() >= 1
  /// (the fractional solution then came from the exact flow path).
  core::SolverTier last_solver_tier() const noexcept { return last_solver_tier_; }

  /// Snapshots the complete cross-slot decision state (see OlGdState).
  OlGdState export_state() const;

  /// Restores a snapshot taken by export_state() on an algorithm built
  /// from the identical problem/options/seed recipe.
  void import_state(const OlGdState& state);

  /// One-shot degradation hint consumed by the next decide(): a depth of
  /// 2 skips the primary (and cold-restart) solves and goes straight to
  /// the flow-based degraded solve — on the simplex *and* Lagrangian
  /// tiers alike. The serve watchdog sets this after a deadline miss;
  /// replay sets it when a record carries kSlotFlagDegradedHint, so both
  /// runs walk the same solver path. A no-op on the flow tier, whose
  /// primary solve already degrades gracefully in place.
  void set_decide_hint(int depth) { decide_hint_ = depth; }

 private:
  std::vector<double> demands_for(std::size_t t);

  std::string name_;
  const core::CachingProblem* problem_;
  const workload::DemandMatrix* given_demands_;  // may be null
  std::unique_ptr<predict::DemandPredictor> predictor_;  // may be null
  std::optional<std::vector<double>> live_demands_;  // one-shot override
  OlOptions options_;
  core::FractionalSolver solver_;
  core::LagrangianSolver lag_solver_;
  // Env-resolved solver tier, fixed at construction (same rationale as
  // aggregate_mode_ below); kAuto survives resolution and is re-resolved
  // per slot by column count.
  core::SolverTier solver_tier_ = core::SolverTier::kFlow;
  core::SolverTier last_solver_tier_ = core::SolverTier::kFlow;
  // Reused across slots by the exact-LP path: per-slot models share one
  // shape, so the simplex warm-starts from the previous slot's basis.
  lp::SimplexWorkspace lp_workspace_;
  core::BanditState bandit_;
  common::Rng rng_;
  std::vector<double> last_demands_;
  std::vector<bool> played_;  // scratch station mask for observe()
  int last_fallback_depth_ = 0;
  int decide_hint_ = 0;  // one-shot, see set_decide_hint()
  // Aggregation state: the env-resolved mode (fixed at construction so a
  // mid-run setenv cannot desynchronise replications) and the reusable
  // per-slot classing.
  core::AggregateMode aggregate_mode_ = core::AggregateMode::kOff;
  core::DemandClassing classing_;
  std::size_t last_num_classes_ = 0;
};

/// Factories matching the paper's algorithm names.
std::unique_ptr<CachingAlgorithm> make_ol_gd(const core::CachingProblem& problem,
                                             const workload::DemandMatrix& demands,
                                             OlOptions options, std::uint64_t seed);

std::unique_ptr<CachingAlgorithm> make_ol_reg(const core::CachingProblem& problem,
                                              std::size_t arma_order,
                                              OlOptions options, std::uint64_t seed);

std::unique_ptr<CachingAlgorithm> make_ol_with_predictor(
    std::string name, const core::CachingProblem& problem,
    std::unique_ptr<predict::DemandPredictor> predictor, OlOptions options,
    std::uint64_t seed);

}  // namespace mecsc::algorithms

#endif  // MECSC_ALGORITHMS_OL_GD_H
