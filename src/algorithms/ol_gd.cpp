#include "algorithms/ol_gd.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "core/lp_formulation.h"
#include "lp/simplex.h"
#include "net/base_station.h"

namespace mecsc::algorithms {

namespace {

core::BanditState make_bandit(const core::CachingProblem& problem,
                              const OlOptions& options) {
  if (!options.tier_priors) {
    return core::BanditState(problem.num_stations(), options.theta_prior);
  }
  std::vector<double> priors;
  priors.reserve(problem.num_stations());
  for (const auto& bs : problem.topology().stations()) {
    net::TierProfile tp = net::tier_profile(bs.tier);
    priors.push_back(0.5 * (tp.delay_lo_ms + tp.delay_hi_ms));
  }
  return core::BanditState(std::move(priors));
}

// The tier decide() dispatches on, resolved once at construction (a
// mid-run setenv cannot desynchronise replications). The legacy
// use_exact_lp flag is the code-level spelling of kSimplex and wins.
core::SolverTier resolve_tier(const OlOptions& options) {
  if (options.use_exact_lp) return core::SolverTier::kSimplex;
  return core::resolve_solver_tier(options.solver);
}

}  // namespace

OnlineCachingAlgorithm::OnlineCachingAlgorithm(std::string name,
                                               const core::CachingProblem& problem,
                                               const workload::DemandMatrix* given_demands,
                                               OlOptions options, std::uint64_t seed)
    : name_(std::move(name)),
      problem_(&problem),
      given_demands_(given_demands),
      options_(options),
      solver_(problem),
      lag_solver_(problem, options.lagrangian),
      solver_tier_(resolve_tier(options)),
      bandit_(make_bandit(problem, options)),
      rng_(seed),
      aggregate_mode_(core::resolve_aggregate_mode(options.aggregate)) {
  MECSC_CHECK_MSG(given_demands_ != nullptr, "null demand matrix");
  MECSC_CHECK_MSG(given_demands_->num_requests() == problem.num_requests(),
                  "demand matrix / problem size mismatch");
}

OnlineCachingAlgorithm::OnlineCachingAlgorithm(
    std::string name, const core::CachingProblem& problem,
    std::unique_ptr<predict::DemandPredictor> predictor, OlOptions options,
    std::uint64_t seed)
    : name_(std::move(name)),
      problem_(&problem),
      given_demands_(nullptr),
      predictor_(std::move(predictor)),
      options_(options),
      solver_(problem),
      lag_solver_(problem, options.lagrangian),
      solver_tier_(resolve_tier(options)),
      bandit_(make_bandit(problem, options)),
      rng_(seed),
      aggregate_mode_(core::resolve_aggregate_mode(options.aggregate)) {
  MECSC_CHECK_MSG(predictor_ != nullptr, "null predictor");
}

OnlineCachingAlgorithm::OnlineCachingAlgorithm(std::string name,
                                               const core::CachingProblem& problem,
                                               OlOptions options,
                                               std::uint64_t seed)
    : name_(std::move(name)),
      problem_(&problem),
      given_demands_(nullptr),
      options_(options),
      solver_(problem),
      lag_solver_(problem, options.lagrangian),
      solver_tier_(resolve_tier(options)),
      bandit_(make_bandit(problem, options)),
      rng_(seed),
      aggregate_mode_(core::resolve_aggregate_mode(options.aggregate)) {}

void OnlineCachingAlgorithm::set_live_demands(std::vector<double> demands) {
  MECSC_CHECK_MSG(demands.size() == problem_->num_requests(),
                  "live demand snapshot / problem size mismatch");
  live_demands_ = std::move(demands);
}

OlGdState OnlineCachingAlgorithm::export_state() const {
  OlGdState state;
  state.bandit_theta = bandit_.thetas();
  state.bandit_plays = bandit_.play_counts();
  state.bandit_total_plays = bandit_.total_plays();
  state.rng_stream = rng_.save_state();
  state.lp_warm = lp_workspace_.export_warm_state();
  state.solver_warm = solver_.export_warm_state();
  state.lag_warm = lag_solver_.export_warm_state();
  return state;
}

void OnlineCachingAlgorithm::import_state(const OlGdState& state) {
  bandit_.restore(state.bandit_theta, state.bandit_plays,
                  state.bandit_total_plays);
  MECSC_CHECK_MSG(rng_.restore_state(state.rng_stream),
                  "corrupt RNG stream in algorithm state");
  lp_workspace_.import_warm_state(state.lp_warm);
  solver_.import_warm_state(state.solver_warm);
  lag_solver_.import_warm_state(state.lag_warm);
}

std::vector<double> OnlineCachingAlgorithm::demands_for(std::size_t t) {
  if (live_demands_.has_value()) {
    std::vector<double> d = std::move(*live_demands_);
    live_demands_.reset();
    return d;
  }
  if (given_demands_ != nullptr) {
    MECSC_CHECK_MSG(t < given_demands_->horizon(), "slot beyond demand horizon");
    return given_demands_->slot(t);
  }
  MECSC_CHECK_MSG(predictor_ != nullptr,
                  "live-stream variant: set_live_demands() must be called "
                  "before every decide()");
  return predictor_->predict(t);
}

core::Assignment OnlineCachingAlgorithm::decide(std::size_t t) {
  last_demands_ = demands_for(t);
  std::vector<double> theta = bandit_.thetas();
  if (options_.ucb_beta > 0.0) {
    double log_t = std::log(static_cast<double>(t + 2));
    for (std::size_t i = 0; i < theta.size(); ++i) {
      double m = static_cast<double>(std::max<std::size_t>(bandit_.plays(i), 1));
      theta[i] = std::max(0.0, theta[i] - options_.ucb_beta * std::sqrt(log_t / m));
    }
  }

  // Solver fallback chain (graceful degradation, DESIGN.md §9):
  //   depth 0  warm-start simplex (exact-LP path) / min-cost flow;
  //   depth 1  cold simplex restart under Bland's rule (guaranteed to
  //            terminate — shakes off cycling and a poisoned warm basis);
  //   depth 2  flow-based degraded solve: route what fits, place the
  //            rest greedily. decide() never throws out of the slot loop
  //            for solver reasons.
  // Demand-class aggregation (DESIGN.md §11): solve over classes, round
  // by de-aggregation. The fallback chain below is mirrored per path.
  const bool aggregate =
      aggregate_mode_ == core::AggregateMode::kOn ||
      (aggregate_mode_ == core::AggregateMode::kAuto &&
       problem_->num_requests() >= options_.aggregation.auto_threshold);
  last_num_classes_ = 0;
  if (aggregate) {
    classing_.build(*problem_, last_demands_, options_.aggregation);
    last_num_classes_ = classing_.num_classes();
    MECSC_COUNT("agg.slots", 1.0);
    MECSC_GAUGE_SET("agg.classes", static_cast<double>(last_num_classes_));
    MECSC_GAUGE_SET("agg.compression_ratio", classing_.compression_ratio());
    MECSC_HISTOGRAM("agg.classes_per_slot",
                    static_cast<double>(last_num_classes_));
  }

  // Solver-tier dispatch (DESIGN.md §16): kAuto resolves per slot by
  // column count — the Lagrangian decomposition only pays for itself
  // once the column universe is large; below the threshold the flow
  // path is already exact and fast.
  core::SolverTier tier = solver_tier_;
  if (tier == core::SolverTier::kAuto) {
    const std::size_t columns =
        aggregate ? last_num_classes_ : problem_->num_requests();
    tier = columns >= options_.lagrangian.auto_threshold
               ? core::SolverTier::kLagrangian
               : core::SolverTier::kFlow;
  }
  last_solver_tier_ = tier;

  core::FractionalSolution frac;
  last_fallback_depth_ = 0;
  const int hint = decide_hint_;
  decide_hint_ = 0;
  if (tier != core::SolverTier::kFlow && hint >= 2) {
    // Watchdog/replay hint: skip the primary solver entirely and decide
    // this slot on the (much cheaper) degraded flow path. The flow tier
    // ignores the hint — its primary solve *is* the degraded flow solve.
    last_fallback_depth_ = 2;
    core::SolveReport report;
    frac = aggregate ? solver_.solve_classes(classing_, theta, &report)
                     : solver_.solve_degraded(last_demands_, theta);
  } else if (tier == core::SolverTier::kSimplex) {
    // The aggregated model has one x row per class, so its shape varies
    // slot to slot; the workspace shape check cold-starts the simplex
    // whenever the class count changes.
    core::LpFormulation lp =
        aggregate ? core::LpFormulation(*problem_, classing_, theta)
                  : core::LpFormulation(*problem_, last_demands_, theta);
    lp::SimplexOptions primary;
    primary.max_iterations = options_.lp_max_iterations;
    core::LpSolveOutcome out = lp.try_solve(lp::SimplexSolver(primary), lp_workspace_);
    if (out.status != lp::SolveStatus::kOptimal) {
      last_fallback_depth_ = 1;
      lp_workspace_.clear_warm_start();
      lp::SimplexOptions bland;
      bland.bland_after = 0;  // Bland's rule from the first pivot
      out = lp.try_solve(lp::SimplexSolver(bland), lp_workspace_);
    }
    if (out.status == lp::SolveStatus::kOptimal) {
      frac = std::move(out.solution);
    } else {
      last_fallback_depth_ = 2;
      core::SolveReport report;
      frac = aggregate ? solver_.solve_classes(classing_, theta, &report)
                       : solver_.solve_degraded(last_demands_, theta);
    }
  } else if (tier == core::SolverTier::kLagrangian) {
    core::LagrangianOutcome out = aggregate
                                      ? lag_solver_.solve_classes(classing_, theta)
                                      : lag_solver_.solve(last_demands_, theta);
    if (out.converged) {
      frac = std::move(out.solution);
    } else {
      // Duality-gap target missed within the iteration cap (or the
      // instance is too close to capacity for the relaxation's repair
      // slack): fall back to the exact flow path, which degrades
      // gracefully in place if the instance is outright infeasible.
      MECSC_COUNT("lag.fallbacks", 1.0);
      last_fallback_depth_ = 1;
      core::SolveReport report;
      frac = aggregate ? solver_.solve_classes(classing_, theta, &report)
                       : solver_.solve_degraded(last_demands_, theta, &report);
      if (report.degraded) last_fallback_depth_ = 2;
    }
  } else {
    core::SolveReport report;
    frac = aggregate ? solver_.solve_classes(classing_, theta, &report)
                     : solver_.solve_degraded(last_demands_, theta, &report);
    if (report.degraded) last_fallback_depth_ = 2;
  }
  if (last_fallback_depth_ > 0) {
    MECSC_COUNT("fault.solver_fallbacks", 1.0);
  }
  MECSC_GAUGE_SET("fault.fallback_depth",
                  static_cast<double>(last_fallback_depth_));

  core::RoundingOptions ropt;
  ropt.gamma = options_.gamma;
  ropt.epsilon = options_.epsilon.at(t);
  ropt.per_slot_coin = options_.per_slot_coin;
  MECSC_COUNT("olgd.decides", 1.0);
  MECSC_GAUGE_SET("olgd.epsilon", ropt.epsilon);  // ε trajectory's tail
  MECSC_HISTOGRAM("olgd.epsilon_trajectory", ropt.epsilon);
  if (aggregate) {
    return core::round_assignment_aggregated(*problem_, frac, classing_,
                                             last_demands_, theta, ropt, rng_);
  }
  return core::round_assignment(*problem_, frac, last_demands_, theta, ropt, rng_);
}

void OnlineCachingAlgorithm::observe(std::size_t t, const core::Assignment& decision,
                                     const std::vector<double>& true_demands,
                                     const std::vector<double>& realized_unit_delays) {
  MECSC_CHECK(realized_unit_delays.size() == problem_->num_stations());
  // Bandit feedback (Algorithm 1 lines 10-11): only stations that served
  // at least one request reveal their delay this slot. The reusable mask
  // keeps this allocation-free on the per-slot path.
  played_.assign(problem_->num_stations(), false);
  for (std::size_t i : decision.station_of_request) played_[i] = true;
  const bool telemetry = obs::enabled();
  for (std::size_t i = 0; i < played_.size(); ++i) {
    if (!played_[i]) continue;
    // Censored feedback (fault injection marks a lost d_i(t) as NaN):
    // skip the update, the arm keeps its estimate and play count.
    if (!std::isfinite(realized_unit_delays[i])) {
      MECSC_COUNT("fault.censored_observations", 1.0);
      continue;
    }
    bandit_.observe(i, realized_unit_delays[i]);
    if (telemetry) {
      obs::current()
          .counter("olgd.arm_pulls", {{"arm", std::to_string(i)}})
          .inc();
    }
  }
  if (predictor_) predictor_->observe(t, true_demands);
}

std::unique_ptr<CachingAlgorithm> make_ol_gd(const core::CachingProblem& problem,
                                             const workload::DemandMatrix& demands,
                                             OlOptions options, std::uint64_t seed) {
  return std::make_unique<OnlineCachingAlgorithm>("OL_GD", problem, &demands,
                                                  options, seed);
}

std::unique_ptr<CachingAlgorithm> make_ol_reg(const core::CachingProblem& problem,
                                              std::size_t arma_order,
                                              OlOptions options, std::uint64_t seed) {
  std::vector<double> fallback;
  fallback.reserve(problem.num_requests());
  for (const auto& r : problem.requests()) fallback.push_back(r.basic_demand);
  auto predictor = std::make_unique<predict::ArmaPredictor>(arma_order,
                                                            std::move(fallback));
  return std::make_unique<OnlineCachingAlgorithm>("OL_Reg", problem,
                                                  std::move(predictor), options, seed);
}

std::unique_ptr<CachingAlgorithm> make_ol_with_predictor(
    std::string name, const core::CachingProblem& problem,
    std::unique_ptr<predict::DemandPredictor> predictor, OlOptions options,
    std::uint64_t seed) {
  return std::make_unique<OnlineCachingAlgorithm>(std::move(name), problem,
                                                  std::move(predictor), options, seed);
}

}  // namespace mecsc::algorithms
