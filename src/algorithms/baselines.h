#ifndef MECSC_ALGORITHMS_BASELINES_H
#define MECSC_ALGORITHMS_BASELINES_H

#include <memory>
#include <vector>

#include "algorithms/algorithm.h"
#include "core/problem.h"
#include "net/topology.h"
#include "workload/demand_model.h"

namespace mecsc::algorithms {

/// Shared machinery of the paper's non-learning baselines: both decide
/// from *historical* delay estimates — stale past measurements of each
/// station's delay (the "historical information of processing
/// latencies" §VI credits them with; sim::Scenario materialises them as
/// one past draw of each station's delay process) — passively refined
/// with the delays of stations they happen to use. No exploration, so a
/// station mis-ranked by its stale sample and never used stays
/// mis-ranked forever; that is precisely the failure mode the paper's
/// online learner fixes.
class HistoricalBaseline : public CachingAlgorithm {
 public:
  /// `refine_with_observations` lets the baseline average observed delays
  /// of the stations it uses into its estimates. The paper's text gives
  /// the baselines historical information only, so the default is off;
  /// the flag exists for sensitivity studies.
  HistoricalBaseline(std::string name, const core::CachingProblem& problem,
                     const workload::DemandMatrix* demands,
                     std::vector<double> historical_estimates,
                     bool refine_with_observations = false);

  /// The display name passed at construction.
  std::string name() const override { return name_; }
  /// Optionally refines the historical estimates (see the constructor).
  void observe(std::size_t t, const core::Assignment& decision,
               const std::vector<double>& true_demands,
               const std::vector<double>& realized_unit_delays) override;

 protected:
  /// The bound problem instance.
  const core::CachingProblem& problem() const noexcept { return *problem_; }
  /// The true per-slot demand matrix the baselines decide on.
  const workload::DemandMatrix& demands() const noexcept { return *demands_; }
  /// The (possibly refined) historical delay estimate of `station`.
  double theta_hist(std::size_t station) const { return theta_hist_.at(station); }

 private:
  std::string name_;
  const core::CachingProblem* problem_;
  const workload::DemandMatrix* demands_;
  std::vector<double> theta_hist_;        // historical delay estimate
  std::vector<std::size_t> observations_;
  bool refine_;
};

/// Greedy_GD ("each base station greedily selects a service and its
/// tasks that could minimize the delay of each request", §VI): stations
/// claim requests round-robin in station order — each station with spare
/// capacity takes the unassigned request it can serve with the lowest
/// delay. The claiming is uncoordinated across stations, which is why
/// this baseline trails Pri_GD in the paper's figures.
class GreedyPerStation final : public HistoricalBaseline {
 public:
  /// Binds to the problem, the true demands, and one stale delay
  /// estimate per station.
  GreedyPerStation(const core::CachingProblem& problem,
                   const workload::DemandMatrix* demands,
                   std::vector<double> historical_estimates);
  /// Round-robin greedy claiming (see the class comment).
  core::Assignment decide(std::size_t t) override;
};

/// Factory for the Greedy_GD baseline.
std::unique_ptr<CachingAlgorithm> make_greedy_gd(
    const core::CachingProblem& problem, const workload::DemandMatrix& demands,
    std::vector<double> historical_estimates);

/// Pri_GD (priority-driven caching of Xie et al., MASS'18): a request's
/// priority is the number of base stations whose coverage disk contains
/// the user; high-priority requests pick their globally best (estimated)
/// station first.
class PriorityBaseline final : public HistoricalBaseline {
 public:
  /// Binds to the problem, the true demands, and one stale delay
  /// estimate per station; precomputes the per-request priorities.
  PriorityBaseline(const core::CachingProblem& problem,
                   const workload::DemandMatrix* demands,
                   std::vector<double> historical_estimates);
  /// Priority-ordered best-station assignment (see the class comment).
  core::Assignment decide(std::size_t t) override;

 private:
  std::vector<std::size_t> priority_;  // per request
};

/// Factory for the Pri_GD baseline.
std::unique_ptr<CachingAlgorithm> make_pri_gd(
    const core::CachingProblem& problem, const workload::DemandMatrix& demands,
    std::vector<double> historical_estimates);

}  // namespace mecsc::algorithms

#endif  // MECSC_ALGORITHMS_BASELINES_H
