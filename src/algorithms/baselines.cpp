#include "algorithms/baselines.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <unordered_set>

#include "common/error.h"

namespace mecsc::algorithms {

HistoricalBaseline::HistoricalBaseline(std::string name,
                                       const core::CachingProblem& problem,
                                       const workload::DemandMatrix* demands,
                                       std::vector<double> historical_estimates,
                                       bool refine_with_observations)
    : name_(std::move(name)),
      problem_(&problem),
      demands_(demands),
      theta_hist_(std::move(historical_estimates)),
      observations_(problem.num_stations(), 0),
      refine_(refine_with_observations) {
  MECSC_CHECK_MSG(demands_ != nullptr, "null demand matrix");
  MECSC_CHECK_MSG(demands_->num_requests() == problem.num_requests(),
                  "demand matrix / problem size mismatch");
  MECSC_CHECK_MSG(theta_hist_.size() == problem.num_stations(),
                  "one historical estimate per station required");
  for (double v : theta_hist_) MECSC_CHECK_MSG(v >= 0.0, "negative estimate");
}

void HistoricalBaseline::observe(std::size_t, const core::Assignment& decision,
                                 const std::vector<double>&,
                                 const std::vector<double>& realized_unit_delays) {
  if (!refine_) return;  // pure historical information (paper default)
  // Passive averaging over the stations actually used — no exploration.
  std::unordered_set<std::size_t> played(decision.station_of_request.begin(),
                                         decision.station_of_request.end());
  for (std::size_t i : played) {
    // Censored feedback (fault injection marks lost d_i(t) as NaN) is
    // simply skipped — the estimate keeps its last value.
    if (!std::isfinite(realized_unit_delays[i])) continue;
    std::size_t m = ++observations_[i];
    theta_hist_[i] += (realized_unit_delays[i] - theta_hist_[i]) /
                      static_cast<double>(m + 1);  // prior counts as one sample
  }
}

GreedyPerStation::GreedyPerStation(const core::CachingProblem& problem,
                                   const workload::DemandMatrix* demands,
                                   std::vector<double> historical_estimates)
    : HistoricalBaseline("Greedy_GD", problem, demands,
                         std::move(historical_estimates)) {}

core::Assignment GreedyPerStation::decide(std::size_t t) {
  MECSC_CHECK_MSG(t < demands().horizon(), "slot beyond demand horizon");
  const core::CachingProblem& p = problem();
  std::vector<double> rho = demands().slot(t);
  const std::size_t ns = p.num_stations();
  const std::size_t nr = p.num_requests();

  std::vector<double> load(ns, 0.0);
  std::vector<double> cap(ns);
  for (std::size_t i = 0; i < ns; ++i) cap[i] = p.station_capacity_mhz(i);
  std::vector<std::vector<bool>> cached(p.num_services(),
                                        std::vector<bool>(ns, false));

  core::Assignment a;
  a.station_of_request.assign(nr, ns);  // ns = unassigned marker
  std::size_t assigned = 0;

  // Round-robin claiming: each station in id order takes the unassigned
  // request it serves with the lowest (historically estimated) delay, as
  // long as the request fits. Stations act on local information only.
  bool progress = true;
  while (assigned < nr && progress) {
    progress = false;
    for (std::size_t i = 0; i < ns && assigned < nr; ++i) {
      if (cap[i] <= 0.0) continue;  // station down this slot: claims nothing
      std::size_t best = nr;
      double best_cost = std::numeric_limits<double>::infinity();
      for (std::size_t l = 0; l < nr; ++l) {
        if (a.station_of_request[l] != ns) continue;
        if (load[i] + p.resource_demand_mhz(rho[l]) > cap[i]) continue;
        std::size_t k = p.requests()[l].service_id;
        double c = rho[l] * theta_hist(i) + p.access_latency_ms(l, i);
        if (!cached[k][i]) c += p.instantiation_delay_ms(i, k);
        if (c < best_cost) {
          best_cost = c;
          best = l;
        }
      }
      if (best == nr) continue;
      a.station_of_request[best] = i;
      load[i] += p.resource_demand_mhz(rho[best]);
      cached[p.requests()[best].service_id][i] = true;
      ++assigned;
      progress = true;
    }
  }
  // Anything unplaceable (should not happen under the feasibility
  // assumption) goes to the least-loaded *up* station; a down station
  // (cap 0 under fault injection) is never a host of last resort.
  for (std::size_t l = 0; l < nr; ++l) {
    if (a.station_of_request[l] != ns) continue;
    std::size_t least = ns;
    for (std::size_t i = 0; i < ns; ++i) {
      if (cap[i] <= 0.0) continue;
      if (least == ns || load[i] < load[least]) least = i;
    }
    if (least == ns) least = 0;  // whole network down — plan invariant forbids it
    a.station_of_request[l] = least;
    load[least] += p.resource_demand_mhz(rho[l]);
  }
  a.cached = core::derive_cached(p, a.station_of_request);
  return a;
}

std::unique_ptr<CachingAlgorithm> make_greedy_gd(
    const core::CachingProblem& problem, const workload::DemandMatrix& demands,
    std::vector<double> historical_estimates) {
  return std::make_unique<GreedyPerStation>(problem, &demands,
                                            std::move(historical_estimates));
}

PriorityBaseline::PriorityBaseline(const core::CachingProblem& problem,
                                   const workload::DemandMatrix* demands,
                                   std::vector<double> historical_estimates)
    : HistoricalBaseline("Pri_GD", problem, demands,
                         std::move(historical_estimates)) {
  priority_.reserve(problem.num_requests());
  for (const auto& r : problem.requests()) {
    priority_.push_back(problem.topology().stations_covering(r.x_m, r.y_m).size());
  }
}

core::Assignment PriorityBaseline::decide(std::size_t t) {
  MECSC_CHECK_MSG(t < demands().horizon(), "slot beyond demand horizon");
  const core::CachingProblem& p = problem();
  std::vector<double> rho = demands().slot(t);
  const std::size_t ns = p.num_stations();
  const std::size_t nr = p.num_requests();

  std::vector<std::size_t> order(nr);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (priority_[a] != priority_[b]) return priority_[a] > priority_[b];
    return rho[a] > rho[b];
  });

  std::vector<double> load(ns, 0.0);
  std::vector<double> cap(ns);
  for (std::size_t i = 0; i < ns; ++i) cap[i] = p.station_capacity_mhz(i);
  std::vector<std::vector<bool>> cached(p.num_services(),
                                        std::vector<bool>(ns, false));

  core::Assignment a;
  a.station_of_request.assign(nr, 0);
  for (std::size_t l : order) {
    std::size_t k = p.requests()[l].service_id;
    double res = p.resource_demand_mhz(rho[l]);
    std::size_t best = ns;
    double best_cost = std::numeric_limits<double>::infinity();
    std::size_t fallback = 0;
    double fallback_load = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < ns; ++i) {
      if (cap[i] <= 0.0) continue;  // down station: neither host nor fallback
      if (load[i] < fallback_load) {
        fallback_load = load[i];
        fallback = i;
      }
      if (load[i] + res > cap[i]) continue;
      double c = rho[l] * theta_hist(i) + p.access_latency_ms(l, i);
      if (!cached[k][i]) c += p.instantiation_delay_ms(i, k);
      if (c < best_cost) {
        best_cost = c;
        best = i;
      }
    }
    if (best == ns) best = fallback;
    a.station_of_request[l] = best;
    load[best] += res;
    cached[k][best] = true;
  }
  a.cached = core::derive_cached(p, a.station_of_request);
  return a;
}

std::unique_ptr<CachingAlgorithm> make_pri_gd(
    const core::CachingProblem& problem, const workload::DemandMatrix& demands,
    std::vector<double> historical_estimates) {
  return std::make_unique<PriorityBaseline>(problem, &demands,
                                            std::move(historical_estimates));
}

}  // namespace mecsc::algorithms
