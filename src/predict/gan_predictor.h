#ifndef MECSC_PREDICT_GAN_PREDICTOR_H
#define MECSC_PREDICT_GAN_PREDICTOR_H

#include <memory>
#include <vector>

#include "gan/info_rnn_gan.h"
#include "predict/predictor.h"
#include "workload/request.h"
#include "workload/trace.h"

namespace mecsc::predict {

/// Tunables of the GAN demand predictor.
struct GanPredictorOptions {
  gan::InfoRnnGanConfig gan;
  /// Adversarial training steps on the historical trace at construction.
  std::size_t train_steps = 300;
  /// Headroom above the largest trace demand when normalizing to [0,1]
  /// (predictions can exceed anything seen in the small sample).
  double scale_headroom = 1.3;
};

/// The OL_GAN demand predictor (paper §V): an Info-RNN-GAN trained on a
/// small-sample historical trace predicts every request's next-slot
/// demand, conditioned on the request's own recent history (teacher
/// forcing) and its location cluster's one-hot code — the InfoGAN latent
/// C ("users in the same location may have similar distributions of
/// their data volumes", §V.A).
///
/// Training data are the gap-filled per-user series of the trace, each
/// labelled with its user's cluster code, normalized to [0,1] by a
/// single global scale owned here.
class GanDemandPredictor final : public DemandPredictor {
 public:
  /// Trains the GAN on `trace` at construction. `requests` provides each
  /// request's cluster code and basic demand (fallback / history seed).
  GanDemandPredictor(const std::vector<workload::Request>& requests,
                     const workload::Trace& trace, GanPredictorOptions options,
                     std::uint64_t seed);

  std::string name() const override { return "info-rnn-gan"; }
  std::vector<double> predict(std::size_t t) override;
  void observe(std::size_t t, const std::vector<double>& demands) override;

  double scale() const noexcept { return scale_; }
  gan::InfoRnnGan& model() noexcept { return *gan_; }

  /// Degradation seam (DESIGN.md §9): turns one raw normalized generator
  /// output into a usable demand. A non-finite output (diverged GAN)
  /// falls back to the mean of the request's observed history (basic
  /// demand when there is none), so NaN/Inf can never reach the LP; a
  /// finite non-positive output keeps the basic-demand fallback.
  /// Static and exposed so tests can drive it without training a
  /// pathological model.
  static double sanitize_prediction(double raw_norm,
                                    const std::vector<double>& history,
                                    double scale, double basic_demand);

 private:
  std::vector<std::size_t> cluster_of_request_;
  std::vector<double> fallback_;
  /// Per-request observed demand history, normalized; seeded from the
  /// trace's per-user series.
  std::vector<std::vector<double>> history_;
  double scale_ = 1.0;
  std::unique_ptr<gan::InfoRnnGan> gan_;
};

}  // namespace mecsc::predict

#endif  // MECSC_PREDICT_GAN_PREDICTOR_H
