#ifndef MECSC_PREDICT_PREDICTOR_H
#define MECSC_PREDICT_PREDICTOR_H

#include <cstddef>
#include <string>
#include <vector>

#include "workload/demand_model.h"

namespace mecsc::predict {

/// Predicts the next slot's demand vector ρ(t) for all requests, learning
/// online from the realised demands of past slots.
///
/// Protocol per slot t: the algorithm calls predict(t) before deciding,
/// the simulator realises the true demands, then observe(t, truth) runs.
class DemandPredictor {
 public:
  virtual ~DemandPredictor() = default;

  virtual std::string name() const = 0;

  /// Demands predicted for slot t (size = number of requests).
  virtual std::vector<double> predict(std::size_t t) = 0;

  /// Ground truth of slot t, revealed after the decision.
  virtual void observe(std::size_t t, const std::vector<double>& demands) = 0;
};

/// Perfect predictor (upper bound): reads the realised demand matrix.
class OraclePredictor final : public DemandPredictor {
 public:
  explicit OraclePredictor(const workload::DemandMatrix* demands);
  std::string name() const override { return "oracle"; }
  std::vector<double> predict(std::size_t t) override;
  void observe(std::size_t, const std::vector<double>&) override {}

 private:
  const workload::DemandMatrix* demands_;  // non-owning
};

/// Predicts each request's demand as its last observed value (naive
/// baseline; equals ARMA with p = 1).
class LastValuePredictor final : public DemandPredictor {
 public:
  /// `fallback` is returned before any observation (per request).
  explicit LastValuePredictor(std::vector<double> fallback);
  std::string name() const override { return "last-value"; }
  std::vector<double> predict(std::size_t t) override;
  void observe(std::size_t t, const std::vector<double>& demands) override;

 private:
  std::vector<double> last_;
  bool seen_any_ = false;
};

/// The paper's OL_Reg baseline predictor (Eq. 27): an autoregressive
/// moving average over the previous p observations with fixed weights
/// a_1 >= a_2 >= ... >= a_p, Σ a = 1. Default weights decay linearly.
class ArmaPredictor final : public DemandPredictor {
 public:
  /// `fallback` is the prediction before enough history exists.
  ArmaPredictor(std::size_t order, std::vector<double> fallback);
  /// Custom weights (validated: non-negative, nonincreasing, sum 1).
  ArmaPredictor(std::vector<double> weights, std::vector<double> fallback);

  std::string name() const override { return "arma"; }
  std::vector<double> predict(std::size_t t) override;
  void observe(std::size_t t, const std::vector<double>& demands) override;

  const std::vector<double>& weights() const noexcept { return weights_; }

 private:
  std::vector<double> weights_;               // a_1 (most recent) .. a_p
  std::vector<std::vector<double>> history_;  // per request, most recent last
  std::vector<double> fallback_;
};

/// Mean absolute error between predicted and true series — the
/// predictor-accuracy ablation metric.
double mean_absolute_error(const std::vector<double>& predicted,
                           const std::vector<double>& truth);

}  // namespace mecsc::predict

#endif  // MECSC_PREDICT_PREDICTOR_H
