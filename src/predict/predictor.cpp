#include "predict/predictor.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace mecsc::predict {

OraclePredictor::OraclePredictor(const workload::DemandMatrix* demands)
    : demands_(demands) {
  MECSC_CHECK_MSG(demands_ != nullptr, "null demand matrix");
}

std::vector<double> OraclePredictor::predict(std::size_t t) {
  MECSC_CHECK_MSG(t < demands_->horizon(), "slot beyond demand horizon");
  return demands_->slot(t);
}

LastValuePredictor::LastValuePredictor(std::vector<double> fallback)
    : last_(std::move(fallback)) {
  MECSC_CHECK_MSG(!last_.empty(), "empty fallback");
}

std::vector<double> LastValuePredictor::predict(std::size_t) { return last_; }

void LastValuePredictor::observe(std::size_t, const std::vector<double>& demands) {
  MECSC_CHECK_MSG(demands.size() == last_.size(), "demand size mismatch");
  last_ = demands;
  seen_any_ = true;
}

namespace {

std::vector<double> linear_decay_weights(std::size_t order) {
  MECSC_CHECK_MSG(order > 0, "ARMA order must be > 0");
  // a_i ∝ (p − i + 1): most recent slot weighted heaviest, nonincreasing,
  // normalized to 1 (the Eq. 27 constraints).
  std::vector<double> w(order);
  double sum = 0.0;
  for (std::size_t i = 0; i < order; ++i) {
    w[i] = static_cast<double>(order - i);
    sum += w[i];
  }
  for (auto& v : w) v /= sum;
  return w;
}

void validate_weights(const std::vector<double>& w) {
  MECSC_CHECK_MSG(!w.empty(), "ARMA weights empty");
  double sum = 0.0;
  for (std::size_t i = 0; i < w.size(); ++i) {
    MECSC_CHECK_MSG(w[i] >= 0.0 && w[i] <= 1.0, "ARMA weight out of [0,1]");
    if (i > 0) MECSC_CHECK_MSG(w[i] <= w[i - 1] + 1e-12, "ARMA weights must be nonincreasing");
    sum += w[i];
  }
  MECSC_CHECK_MSG(std::abs(sum - 1.0) < 1e-9, "ARMA weights must sum to 1");
}

}  // namespace

ArmaPredictor::ArmaPredictor(std::size_t order, std::vector<double> fallback)
    : ArmaPredictor(linear_decay_weights(order), std::move(fallback)) {}

ArmaPredictor::ArmaPredictor(std::vector<double> weights, std::vector<double> fallback)
    : weights_(std::move(weights)), fallback_(std::move(fallback)) {
  validate_weights(weights_);
  MECSC_CHECK_MSG(!fallback_.empty(), "empty fallback");
  history_.resize(fallback_.size());
}

std::vector<double> ArmaPredictor::predict(std::size_t) {
  std::vector<double> out(fallback_.size());
  for (std::size_t l = 0; l < fallback_.size(); ++l) {
    const auto& h = history_[l];
    if (h.empty()) {
      out[l] = fallback_[l];
      continue;
    }
    // Use as many of the p weights as history allows; renormalize over
    // the available prefix.
    std::size_t avail = std::min(h.size(), weights_.size());
    double v = 0.0;
    double wsum = 0.0;
    for (std::size_t i = 0; i < avail; ++i) {
      double w = weights_[i];
      v += w * h[h.size() - 1 - i];
      wsum += w;
    }
    out[l] = wsum > 0.0 ? v / wsum : fallback_[l];
  }
  return out;
}

void ArmaPredictor::observe(std::size_t, const std::vector<double>& demands) {
  MECSC_CHECK_MSG(demands.size() == history_.size(), "demand size mismatch");
  for (std::size_t l = 0; l < demands.size(); ++l) {
    history_[l].push_back(demands[l]);
    if (history_[l].size() > weights_.size()) {
      history_[l].erase(history_[l].begin());
    }
  }
}

double mean_absolute_error(const std::vector<double>& predicted,
                           const std::vector<double>& truth) {
  MECSC_CHECK_MSG(predicted.size() == truth.size() && !truth.empty(),
                  "MAE size mismatch");
  double s = 0.0;
  for (std::size_t i = 0; i < truth.size(); ++i) s += std::abs(predicted[i] - truth[i]);
  return s / static_cast<double>(truth.size());
}

}  // namespace mecsc::predict
