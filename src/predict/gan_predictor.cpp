#include "predict/gan_predictor.h"

#include <algorithm>
#include <cmath>

#include "common/env.h"
#include "common/error.h"
#include "obs/metrics.h"

namespace mecsc::predict {

GanDemandPredictor::GanDemandPredictor(const std::vector<workload::Request>& requests,
                                       const workload::Trace& trace,
                                       GanPredictorOptions options,
                                       std::uint64_t seed) {
  MECSC_CHECK_MSG(!requests.empty(), "no requests");
  MECSC_CHECK_MSG(options.scale_headroom >= 1.0, "headroom must be >= 1");

  // The GAN's latent dimension must cover every cluster in the trace.
  options.gan.num_codes = std::max(options.gan.num_codes, trace.num_clusters());

  cluster_of_request_.reserve(requests.size());
  fallback_.reserve(requests.size());
  for (const auto& r : requests) {
    MECSC_CHECK_MSG(r.location_cluster < trace.num_clusters(),
                    "request cluster outside trace clusters");
    cluster_of_request_.push_back(r.location_cluster);
    fallback_.push_back(r.basic_demand);
  }

  // Global normalization scale from the trace (with headroom).
  double max_demand = 0.0;
  for (const auto& row : trace.rows()) max_demand = std::max(max_demand, row.demand);
  for (double f : fallback_) max_demand = std::max(max_demand, f);
  scale_ = std::max(1e-9, max_demand * options.scale_headroom);

  // One gap-filled training series per user, labelled with the user's
  // location-cluster code.
  std::vector<std::vector<double>> series;
  std::vector<std::size_t> codes;
  series.reserve(requests.size());
  codes.reserve(requests.size());
  for (std::size_t l = 0; l < requests.size(); ++l) {
    std::vector<double> s = trace.user_series(requests[l].id);
    for (auto& v : s) v /= scale_;
    series.push_back(std::move(s));
    codes.push_back(cluster_of_request_[l]);
  }

  gan_ = std::make_unique<gan::InfoRnnGan>(options.gan, seed);
  gan_->train_with_codes(series, codes, options.train_steps);

  // Seed each request's run-time history with its historical series so
  // the first predictions are informed rather than zero-padded.
  history_ = std::move(series);
}

double GanDemandPredictor::sanitize_prediction(double raw_norm,
                                               const std::vector<double>& history,
                                               double scale, double basic_demand) {
  if (std::isfinite(raw_norm)) {
    double v = raw_norm * scale;
    return v > 0.0 ? v : basic_demand;
  }
  if (history.empty()) return basic_demand;
  double sum = 0.0;
  for (double h : history) sum += h;
  return std::max(0.0, sum / static_cast<double>(history.size()) * scale);
}

std::vector<double> GanDemandPredictor::predict(std::size_t) {
  const std::size_t n = cluster_of_request_.size();
  // One fused forward pass per chunk instead of one per request: every
  // per-step matmul then runs at batch = chunk size. Chunking bounds the
  // packed teacher matrices to chunk × seq_len doubles; MECSC_PREDICT_BATCH
  // tunes the trade-off (1 degenerates to the sequential path, which
  // produces bit-identical results).
  static const std::size_t chunk_size =
      std::max<std::size_t>(1, common::env_size_or("MECSC_PREDICT_BATCH", 1024));
  std::vector<double> out(n);
  for (std::size_t begin = 0; begin < n; begin += chunk_size) {
    const std::size_t end = std::min(n, begin + chunk_size);
    std::vector<std::vector<double>> histories(history_.begin() + begin,
                                               history_.begin() + end);
    std::vector<std::size_t> clusters(cluster_of_request_.begin() + begin,
                                      cluster_of_request_.begin() + end);
    std::vector<double> norm = gan_->predict_next_batch(histories, clusters);
    for (std::size_t l = begin; l < end; ++l) {
      if (!std::isfinite(norm[l - begin])) MECSC_COUNT("fault.predictor_nan", 1.0);
      out[l] = sanitize_prediction(norm[l - begin], history_[l], scale_, fallback_[l]);
    }
  }
  return out;
}

void GanDemandPredictor::observe(std::size_t, const std::vector<double>& demands) {
  MECSC_CHECK_MSG(demands.size() == history_.size(), "demand size mismatch");
  std::size_t keep = 4 * gan_->config().seq_len;
  for (std::size_t l = 0; l < demands.size(); ++l) {
    // A non-finite observation (should not happen; defensive against a
    // faulted upstream) is recorded as "no demand" rather than poisoning
    // the history ring.
    double norm =
        std::isfinite(demands[l]) ? std::clamp(demands[l] / scale_, 0.0, 1.0) : 0.0;
    history_[l].push_back(norm);
    if (history_[l].size() > keep) history_[l].erase(history_[l].begin());
  }
}

}  // namespace mecsc::predict
