#include "nn/optimizer.h"

#include <cmath>

#include "common/error.h"

namespace mecsc::nn {

Optimizer::Optimizer(std::vector<Var> params) : params_(std::move(params)) {
  for (const auto& p : params_) {
    MECSC_CHECK_MSG(p != nullptr && p->requires_grad,
                    "optimizer parameters must require gradients");
  }
}

void Optimizer::zero_grad() {
  for (const auto& p : params_) p->zero_grad();
}

double Optimizer::clip_grad_norm(double max_norm) {
  MECSC_CHECK_MSG(max_norm > 0.0, "max_norm must be > 0");
  double sq = 0.0;
  for (const auto& p : params_) {
    if (p->grad.empty()) continue;
    for (double g : p->grad.data()) sq += g * g;
  }
  double norm = std::sqrt(sq);
  if (norm <= max_norm || norm == 0.0) return norm;
  double s = max_norm / norm;
  for (const auto& p : params_) {
    if (p->grad.empty()) continue;
    for (double& g : p->grad.data()) g *= s;
  }
  return norm;
}

Sgd::Sgd(std::vector<Var> params, double lr, double momentum)
    : Optimizer(std::move(params)), lr_(lr), momentum_(momentum) {
  MECSC_CHECK_MSG(lr > 0.0, "learning rate must be > 0");
  MECSC_CHECK_MSG(momentum >= 0.0 && momentum < 1.0, "momentum out of [0,1)");
  velocity_.reserve(params_.size());
  for (const auto& p : params_) {
    velocity_.emplace_back(p->value.rows(), p->value.cols());
  }
}

void Sgd::step() {
  for (std::size_t i = 0; i < params_.size(); ++i) {
    auto& p = params_[i];
    if (p->grad.empty()) continue;
    if (momentum_ > 0.0) {
      velocity_[i].scale_in_place(momentum_);
      velocity_[i].add_scaled(p->grad, 1.0);
      p->value.add_scaled(velocity_[i], -lr_);
    } else {
      p->value.add_scaled(p->grad, -lr_);
    }
  }
}

Adam::Adam(std::vector<Var> params, double lr, double beta1, double beta2,
           double eps)
    : Optimizer(std::move(params)), lr_(lr), beta1_(beta1), beta2_(beta2), eps_(eps) {
  MECSC_CHECK_MSG(lr > 0.0, "learning rate must be > 0");
  MECSC_CHECK_MSG(0.0 <= beta1 && beta1 < 1.0, "beta1 out of [0,1)");
  MECSC_CHECK_MSG(0.0 <= beta2 && beta2 < 1.0, "beta2 out of [0,1)");
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const auto& p : params_) {
    m_.emplace_back(p->value.rows(), p->value.cols());
    v_.emplace_back(p->value.rows(), p->value.cols());
  }
}

void Adam::step() {
  ++t_;
  double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  for (std::size_t i = 0; i < params_.size(); ++i) {
    auto& p = params_[i];
    if (p->grad.empty()) continue;
    auto& m = m_[i];
    auto& v = v_[i];
    const auto& g = p->grad.data();
    for (std::size_t j = 0; j < g.size(); ++j) {
      m[j] = beta1_ * m[j] + (1.0 - beta1_) * g[j];
      v[j] = beta2_ * v[j] + (1.0 - beta2_) * g[j] * g[j];
      double mhat = m[j] / bc1;
      double vhat = v[j] / bc2;
      p->value[j] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
    }
  }
}

}  // namespace mecsc::nn
