#include "nn/layers.h"

#include <algorithm>

#include "common/error.h"

namespace mecsc::nn {

std::size_t Module::parameter_count() const {
  std::size_t n = 0;
  for (const auto& p : parameters()) n += p->value.size();
  return n;
}

void Module::zero_grad() const {
  for (const auto& p : parameters()) p->zero_grad();
}

Linear::Linear(std::size_t in_features, std::size_t out_features, common::Rng& rng)
    : in_(in_features), out_(out_features),
      w_(parameter(Matrix::xavier(in_features, out_features, rng))),
      b_(parameter(Matrix(1, out_features))) {
  MECSC_CHECK_MSG(in_features > 0 && out_features > 0, "layer sizes must be > 0");
}

Var Linear::forward(const Var& x) const {
  MECSC_CHECK_MSG(x->value.cols() == in_, "Linear input width mismatch");
  return op_add_row(op_matmul(x, w_), b_);
}

LSTMCell::LSTMCell(std::size_t input_size, std::size_t hidden_size, common::Rng& rng)
    : input_(input_size), hidden_(hidden_size),
      w_(parameter(Matrix::xavier(input_size + hidden_size, 4 * hidden_size, rng))),
      b_(parameter(Matrix(1, 4 * hidden_size))) {
  MECSC_CHECK_MSG(input_size > 0 && hidden_size > 0, "cell sizes must be > 0");
  // Standard trick: bias the forget gate positive so early training
  // retains memory.
  for (std::size_t j = hidden_; j < 2 * hidden_; ++j) b_->value[j] = 1.0;
}

LSTMCell::State LSTMCell::initial_state(std::size_t batch) const {
  return {constant(Matrix(batch, hidden_)), constant(Matrix(batch, hidden_))};
}

LSTMCell::State LSTMCell::step(const Var& x, const State& prev) const {
  MECSC_CHECK_MSG(x->value.cols() == input_, "LSTM input width mismatch");
  Var xs = op_concat_cols(x, prev.h);
  Var gates = op_add_row(op_matmul(xs, w_), b_);
  Var i = op_sigmoid(op_slice_cols(gates, 0, hidden_));
  Var f = op_sigmoid(op_slice_cols(gates, hidden_, 2 * hidden_));
  Var g = op_tanh(op_slice_cols(gates, 2 * hidden_, 3 * hidden_));
  Var o = op_sigmoid(op_slice_cols(gates, 3 * hidden_, 4 * hidden_));
  Var c = op_add(op_hadamard(f, prev.c), op_hadamard(i, g));
  Var h = op_hadamard(o, op_tanh(c));
  return {h, c};
}

LSTM::LSTM(std::size_t input_size, std::size_t hidden_size, common::Rng& rng)
    : cell_(input_size, hidden_size, rng) {}

std::vector<Var> LSTM::forward(const std::vector<Var>& sequence) const {
  MECSC_CHECK_MSG(!sequence.empty(), "empty sequence");
  LSTMCell::State state = cell_.initial_state(sequence.front()->value.rows());
  std::vector<Var> outputs;
  outputs.reserve(sequence.size());
  for (const auto& x : sequence) {
    state = cell_.step(x, state);
    outputs.push_back(state.h);
  }
  return outputs;
}

namespace {

/// Shared bidirectional pass: forward states concatenated with the
/// reversed backward states.
template <typename Rnn>
std::vector<Var> bidirectional_forward(const Rnn& fwd, const Rnn& bwd,
                                       const std::vector<Var>& sequence) {
  std::vector<Var> f = fwd.forward(sequence);
  std::vector<Var> reversed(sequence.rbegin(), sequence.rend());
  std::vector<Var> b = bwd.forward(reversed);
  std::reverse(b.begin(), b.end());
  std::vector<Var> out;
  out.reserve(sequence.size());
  for (std::size_t t = 0; t < sequence.size(); ++t) {
    out.push_back(op_concat_cols(f[t], b[t]));
  }
  return out;
}

std::vector<Var> concat_params(std::vector<Var> a, const std::vector<Var>& b) {
  a.insert(a.end(), b.begin(), b.end());
  return a;
}

}  // namespace

BiLSTM::BiLSTM(std::size_t input_size, std::size_t hidden_size, common::Rng& rng)
    : fwd_(input_size, hidden_size, rng), bwd_(input_size, hidden_size, rng) {}

std::vector<Var> BiLSTM::forward(const std::vector<Var>& sequence) const {
  return bidirectional_forward(fwd_, bwd_, sequence);
}

std::vector<Var> BiLSTM::parameters() const {
  return concat_params(fwd_.parameters(), bwd_.parameters());
}

GRUCell::GRUCell(std::size_t input_size, std::size_t hidden_size, common::Rng& rng)
    : input_(input_size), hidden_(hidden_size),
      w_zr_(parameter(Matrix::xavier(input_size + hidden_size, 2 * hidden_size, rng))),
      b_zr_(parameter(Matrix(1, 2 * hidden_size))),
      w_h_(parameter(Matrix::xavier(input_size + hidden_size, hidden_size, rng))),
      b_h_(parameter(Matrix(1, hidden_size))) {
  MECSC_CHECK_MSG(input_size > 0 && hidden_size > 0, "cell sizes must be > 0");
}

Var GRUCell::initial_state(std::size_t batch) const {
  return constant(Matrix(batch, hidden_));
}

Var GRUCell::step(const Var& x, const Var& prev_h) const {
  MECSC_CHECK_MSG(x->value.cols() == input_, "GRU input width mismatch");
  Var xs = op_concat_cols(x, prev_h);
  Var gates = op_add_row(op_matmul(xs, w_zr_), b_zr_);
  Var z = op_sigmoid(op_slice_cols(gates, 0, hidden_));
  Var r = op_sigmoid(op_slice_cols(gates, hidden_, 2 * hidden_));
  Var xr = op_concat_cols(x, op_hadamard(r, prev_h));
  Var h_cand = op_tanh(op_add_row(op_matmul(xr, w_h_), b_h_));
  // h' = (1 − z) ⊙ h + z ⊙ h̃.
  if (!ones_ || ones_->value.rows() != x->value.rows()) {
    ones_ = constant(Matrix(x->value.rows(), hidden_, 1.0));
  }
  return op_add(op_hadamard(op_sub(ones_, z), prev_h), op_hadamard(z, h_cand));
}

GRU::GRU(std::size_t input_size, std::size_t hidden_size, common::Rng& rng)
    : cell_(input_size, hidden_size, rng) {}

std::vector<Var> GRU::forward(const std::vector<Var>& sequence) const {
  MECSC_CHECK_MSG(!sequence.empty(), "empty sequence");
  Var h = cell_.initial_state(sequence.front()->value.rows());
  std::vector<Var> outputs;
  outputs.reserve(sequence.size());
  for (const auto& x : sequence) {
    h = cell_.step(x, h);
    outputs.push_back(h);
  }
  return outputs;
}

BiGRU::BiGRU(std::size_t input_size, std::size_t hidden_size, common::Rng& rng)
    : fwd_(input_size, hidden_size, rng), bwd_(input_size, hidden_size, rng) {}

std::vector<Var> BiGRU::forward(const std::vector<Var>& sequence) const {
  return bidirectional_forward(fwd_, bwd_, sequence);
}

std::vector<Var> BiGRU::parameters() const {
  return concat_params(fwd_.parameters(), bwd_.parameters());
}

std::unique_ptr<BiRnn> make_birnn(RnnKind kind, std::size_t input_size,
                                  std::size_t hidden_size, common::Rng& rng) {
  switch (kind) {
    case RnnKind::kGru:
      return std::make_unique<BiGRU>(input_size, hidden_size, rng);
    case RnnKind::kLstm:
      break;
  }
  return std::make_unique<BiLSTM>(input_size, hidden_size, rng);
}

}  // namespace mecsc::nn
