#ifndef MECSC_NN_AUTODIFF_H
#define MECSC_NN_AUTODIFF_H

#include <functional>
#include <memory>
#include <vector>

#include "nn/matrix.h"

namespace mecsc::nn {

/// A node of the reverse-mode autodiff tape: a value, its gradient
/// accumulator, and a closure that pushes the node's gradient to its
/// parents. Graphs are built afresh every forward pass (define-by-run),
/// which is exactly what a recurrent GAN needs — the unrolled sequence
/// length can differ per batch.
class Node {
 public:
  Node(Matrix value, bool requires_grad)
      : value(std::move(value)), requires_grad(requires_grad) {}

  Matrix value;
  Matrix grad;  // allocated on first use; same shape as value
  bool requires_grad;
  std::vector<std::shared_ptr<Node>> parents;
  /// Propagates this->grad into parents' grads.
  std::function<void(Node&)> backward_fn;

  /// Adds g into this node's gradient accumulator.
  void accumulate(const Matrix& g);
  void zero_grad();
};

using Var = std::shared_ptr<Node>;

/// RAII scope that disables graph construction on this thread: ops built
/// while a guard is alive keep their forward values but attach no
/// parents and no backward_fn, so inference allocates no tape and frees
/// intermediate values as soon as the last Var referencing them dies.
/// Nestable; calling backward() on a guarded-graph root is an error
/// (the root has no parents, so it degenerates to a no-op seed).
class NoGradGuard {
 public:
  NoGradGuard();
  ~NoGradGuard();
  NoGradGuard(const NoGradGuard&) = delete;
  NoGradGuard& operator=(const NoGradGuard&) = delete;

  /// True while any guard is alive on this thread.
  static bool active();
};

/// Leaf with no gradient (inputs, targets).
Var constant(Matrix value);
/// Leaf with a gradient (trainable parameter).
Var parameter(Matrix value);

/// Runs backpropagation from a scalar (1×1) root: seeds its gradient
/// with 1 and applies every backward_fn in reverse topological order.
void backward(const Var& root);

// ---- differentiable ops (each returns a new node) ----
Var op_matmul(const Var& a, const Var& b);
Var op_add(const Var& a, const Var& b);
Var op_sub(const Var& a, const Var& b);
Var op_hadamard(const Var& a, const Var& b);
/// bias must be a 1×cols row; broadcast over a's rows.
Var op_add_row(const Var& a, const Var& bias);
Var op_scale(const Var& a, double s);
Var op_sigmoid(const Var& a);
Var op_tanh(const Var& a);
Var op_relu(const Var& a);
Var op_concat_cols(const Var& a, const Var& b);
Var op_slice_cols(const Var& a, std::size_t begin, std::size_t end);
/// Mean over all entries → 1×1.
Var op_mean_all(const Var& a);

// ---- losses (scalar 1×1 outputs) ----
/// Mean squared error between prediction and a constant-like target.
Var loss_mse(const Var& pred, const Var& target);
/// Binary cross-entropy on logits: mean over entries of
/// softplus(x) − x·t. Numerically stable; gradient is (σ(x) − t)/n.
Var loss_bce_with_logits(const Var& logits, const Var& targets);
/// Softmax cross-entropy on logits against a row-wise probability
/// target (one-hot or soft): mean over rows of −Σ t·log softmax(x).
/// This is the −log Q(c | x) term of the InfoGAN lower bound L1 (Eq. 25)
/// when targets are the one-hot latent codes.
Var loss_softmax_cross_entropy(const Var& logits, const Var& targets);

}  // namespace mecsc::nn

#endif  // MECSC_NN_AUTODIFF_H
