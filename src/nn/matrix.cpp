#include "nn/matrix.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace mecsc::nn {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix::Matrix(std::size_t rows, std::size_t cols, std::vector<double> data)
    : rows_(rows), cols_(cols), data_(std::move(data)) {
  MECSC_CHECK_MSG(data_.size() == rows * cols, "matrix data size mismatch");
}

Matrix Matrix::row(std::initializer_list<double> values) {
  return Matrix(1, values.size(), std::vector<double>(values));
}

Matrix Matrix::row(const std::vector<double>& values) {
  return Matrix(1, values.size(), values);
}

double& Matrix::at(std::size_t r, std::size_t c) {
  MECSC_CHECK(r < rows_ && c < cols_);
  return data_[r * cols_ + c];
}

double Matrix::at(std::size_t r, std::size_t c) const {
  MECSC_CHECK(r < rows_ && c < cols_);
  return data_[r * cols_ + c];
}

Matrix Matrix::xavier(std::size_t rows, std::size_t cols, common::Rng& rng) {
  double limit = std::sqrt(6.0 / static_cast<double>(rows + cols));
  Matrix m(rows, cols);
  for (auto& v : m.data_) v = rng.uniform(-limit, limit);
  return m;
}

Matrix Matrix::randn(std::size_t rows, std::size_t cols, common::Rng& rng,
                     double stddev) {
  Matrix m(rows, cols);
  for (auto& v : m.data_) v = rng.normal(0.0, stddev);
  return m;
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) {
      t.data_[c * rows_ + r] = data_[r * cols_ + c];
    }
  }
  return t;
}

void Matrix::resize(std::size_t rows, std::size_t cols) {
  rows_ = rows;
  cols_ = cols;
  data_.resize(rows * cols);
}

void Matrix::fill(double v) { std::fill(data_.begin(), data_.end(), v); }

void Matrix::add_scaled(const Matrix& other, double s) {
  MECSC_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += s * other.data_[i];
}

void Matrix::scale_in_place(double s) {
  for (double& v : data_) v *= s;
}

double Matrix::sum() const {
  double s = 0.0;
  for (double v : data_) s += v;
  return s;
}

double Matrix::mean() const {
  return data_.empty() ? 0.0 : sum() / static_cast<double>(data_.size());
}

double Matrix::max_abs() const {
  double m = 0.0;
  for (double v : data_) m = std::max(m, std::abs(v));
  return m;
}

Matrix matmul(const Matrix& a, const Matrix& b) {
  Matrix c;
  matmul_into(c, a, b);
  return c;
}

void matmul_into(Matrix& out, const Matrix& a, const Matrix& b) {
  MECSC_CHECK_MSG(a.cols() == b.rows(), "matmul dimension mismatch");
  const std::size_t m = a.rows(), kk = a.cols(), n = b.cols();
  out.resize(m, n);
  out.fill(0.0);
  const double* ad = a.data().data();
  const double* bd = b.data().data();
  double* cd = out.data().data();
  // i-k-j order blocked over k: a kKB-row panel of b stays in cache while
  // each output row accumulates against it.
  constexpr std::size_t kKB = 64;
  for (std::size_t k0 = 0; k0 < kk; k0 += kKB) {
    const std::size_t k1 = std::min(kk, k0 + kKB);
    for (std::size_t i = 0; i < m; ++i) {
      const double* ar = ad + i * kk;
      double* cr = cd + i * n;
      for (std::size_t k = k0; k < k1; ++k) {
        const double aik = ar[k];
        if (aik == 0.0) continue;  // one-hot / sparse inputs are common
        const double* br = bd + k * n;
        for (std::size_t j = 0; j < n; ++j) cr[j] += aik * br[j];
      }
    }
  }
}

void matmul_abT_into(Matrix& out, const Matrix& a, const Matrix& b) {
  MECSC_CHECK_MSG(a.cols() == b.cols(), "matmul_abT dimension mismatch");
  const std::size_t m = a.rows(), kk = a.cols(), n = b.rows();
  out.resize(m, n);
  const double* ad = a.data().data();
  const double* bd = b.data().data();
  double* cd = out.data().data();
  for (std::size_t i = 0; i < m; ++i) {
    const double* ar = ad + i * kk;
    double* cr = cd + i * n;
    for (std::size_t j = 0; j < n; ++j) {
      const double* br = bd + j * kk;
      double s = 0.0;
      for (std::size_t k = 0; k < kk; ++k) s += ar[k] * br[k];
      cr[j] = s;
    }
  }
}

void matmul_aTb_into(Matrix& out, const Matrix& a, const Matrix& b) {
  MECSC_CHECK_MSG(a.rows() == b.rows(), "matmul_aTb dimension mismatch");
  const std::size_t m = a.cols(), kk = a.rows(), n = b.cols();
  out.resize(m, n);
  out.fill(0.0);
  const double* ad = a.data().data();
  const double* bd = b.data().data();
  double* cd = out.data().data();
  // Accumulate rank-1 updates row-by-row of a/b — every access stride-1.
  for (std::size_t k = 0; k < kk; ++k) {
    const double* ar = ad + k * m;
    const double* br = bd + k * n;
    for (std::size_t i = 0; i < m; ++i) {
      const double aki = ar[i];
      if (aki == 0.0) continue;
      double* cr = cd + i * n;
      for (std::size_t j = 0; j < n; ++j) cr[j] += aki * br[j];
    }
  }
}

namespace {
void check_same_shape(const Matrix& a, const Matrix& b) {
  MECSC_CHECK_MSG(a.rows() == b.rows() && a.cols() == b.cols(),
                  "elementwise op shape mismatch");
}
}  // namespace

Matrix add(const Matrix& a, const Matrix& b) {
  check_same_shape(a, b);
  Matrix c = a;
  for (std::size_t i = 0; i < c.size(); ++i) c[i] += b[i];
  return c;
}

Matrix sub(const Matrix& a, const Matrix& b) {
  check_same_shape(a, b);
  Matrix c = a;
  for (std::size_t i = 0; i < c.size(); ++i) c[i] -= b[i];
  return c;
}

Matrix hadamard(const Matrix& a, const Matrix& b) {
  check_same_shape(a, b);
  Matrix c = a;
  for (std::size_t i = 0; i < c.size(); ++i) c[i] *= b[i];
  return c;
}

Matrix add_row_broadcast(const Matrix& a, const Matrix& row) {
  MECSC_CHECK_MSG(row.rows() == 1 && row.cols() == a.cols(),
                  "broadcast row shape mismatch");
  Matrix c = a;
  for (std::size_t r = 0; r < a.rows(); ++r) {
    for (std::size_t j = 0; j < a.cols(); ++j) c[r * a.cols() + j] += row[j];
  }
  return c;
}

Matrix scale(const Matrix& a, double s) {
  Matrix c = a;
  for (std::size_t i = 0; i < c.size(); ++i) c[i] *= s;
  return c;
}

Matrix concat_cols(const Matrix& a, const Matrix& b) {
  MECSC_CHECK_MSG(a.rows() == b.rows(), "concat_cols row mismatch");
  Matrix c(a.rows(), a.cols() + b.cols());
  for (std::size_t r = 0; r < a.rows(); ++r) {
    for (std::size_t j = 0; j < a.cols(); ++j) c.at(r, j) = a.at(r, j);
    for (std::size_t j = 0; j < b.cols(); ++j) c.at(r, a.cols() + j) = b.at(r, j);
  }
  return c;
}

Matrix slice_cols(const Matrix& a, std::size_t begin, std::size_t end) {
  MECSC_CHECK_MSG(begin < end && end <= a.cols(), "slice_cols range invalid");
  Matrix c(a.rows(), end - begin);
  for (std::size_t r = 0; r < a.rows(); ++r) {
    for (std::size_t j = begin; j < end; ++j) c.at(r, j - begin) = a.at(r, j);
  }
  return c;
}

Matrix map_sigmoid(const Matrix& a) {
  Matrix c = a;
  for (std::size_t i = 0; i < c.size(); ++i) c[i] = 1.0 / (1.0 + std::exp(-c[i]));
  return c;
}

Matrix map_tanh(const Matrix& a) {
  Matrix c = a;
  for (std::size_t i = 0; i < c.size(); ++i) c[i] = std::tanh(c[i]);
  return c;
}

Matrix map_relu(const Matrix& a) {
  Matrix c = a;
  for (std::size_t i = 0; i < c.size(); ++i) c[i] = std::max(0.0, c[i]);
  return c;
}

Matrix softmax_rows(const Matrix& a) {
  Matrix c = a;
  for (std::size_t r = 0; r < a.rows(); ++r) {
    double mx = -1e300;
    for (std::size_t j = 0; j < a.cols(); ++j) mx = std::max(mx, c.at(r, j));
    double denom = 0.0;
    for (std::size_t j = 0; j < a.cols(); ++j) {
      c.at(r, j) = std::exp(c.at(r, j) - mx);
      denom += c.at(r, j);
    }
    for (std::size_t j = 0; j < a.cols(); ++j) c.at(r, j) /= denom;
  }
  return c;
}

Matrix col_sums(const Matrix& a) {
  Matrix c;
  col_sums_into(c, a);
  return c;
}

void add_into(Matrix& out, const Matrix& a, const Matrix& b) {
  check_same_shape(a, b);
  out.resize(a.rows(), a.cols());
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = a[i] + b[i];
}

void sub_into(Matrix& out, const Matrix& a, const Matrix& b) {
  check_same_shape(a, b);
  out.resize(a.rows(), a.cols());
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = a[i] - b[i];
}

void hadamard_into(Matrix& out, const Matrix& a, const Matrix& b) {
  check_same_shape(a, b);
  out.resize(a.rows(), a.cols());
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = a[i] * b[i];
}

void scale_into(Matrix& out, const Matrix& a, double s) {
  out.resize(a.rows(), a.cols());
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = s * a[i];
}

void map_sigmoid_into(Matrix& out, const Matrix& a) {
  out.resize(a.rows(), a.cols());
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = 1.0 / (1.0 + std::exp(-a[i]));
  }
}

void map_tanh_into(Matrix& out, const Matrix& a) {
  out.resize(a.rows(), a.cols());
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = std::tanh(a[i]);
}

void map_relu_into(Matrix& out, const Matrix& a) {
  out.resize(a.rows(), a.cols());
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = std::max(0.0, a[i]);
}

void col_sums_into(Matrix& out, const Matrix& a) {
  out.resize(1, a.cols());
  out.fill(0.0);
  for (std::size_t r = 0; r < a.rows(); ++r) {
    for (std::size_t j = 0; j < a.cols(); ++j) out[j] += a.at(r, j);
  }
}

}  // namespace mecsc::nn
