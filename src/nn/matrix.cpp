#include "nn/matrix.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/simd.h"
#include "nn/simd_kernels.h"

namespace mecsc::nn {

namespace {

/// One cached flag read per kernel call; MECSC_SIMD=off or a non-AVX2
/// CPU routes every dispatcher below to the scalar reference.
inline bool use_simd() { return common::simd::active(); }

void check_same_shape(const Matrix& a, const Matrix& b) {
  MECSC_CHECK_MSG(a.rows() == b.rows() && a.cols() == b.cols(),
                  "elementwise op shape mismatch");
}

}  // namespace

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix::Matrix(std::size_t rows, std::size_t cols, std::vector<double> data)
    : rows_(rows), cols_(cols), data_(data.begin(), data.end()) {
  MECSC_CHECK_MSG(data_.size() == rows * cols, "matrix data size mismatch");
}

Matrix Matrix::row(std::initializer_list<double> values) {
  return Matrix(1, values.size(), std::vector<double>(values));
}

Matrix Matrix::row(const std::vector<double>& values) {
  return Matrix(1, values.size(), values);
}

double& Matrix::at(std::size_t r, std::size_t c) {
  MECSC_CHECK(r < rows_ && c < cols_);
  return data_[r * cols_ + c];
}

double Matrix::at(std::size_t r, std::size_t c) const {
  MECSC_CHECK(r < rows_ && c < cols_);
  return data_[r * cols_ + c];
}

Matrix Matrix::xavier(std::size_t rows, std::size_t cols, common::Rng& rng) {
  double limit = std::sqrt(6.0 / static_cast<double>(rows + cols));
  Matrix m(rows, cols);
  for (auto& v : m.data_) v = rng.uniform(-limit, limit);
  return m;
}

Matrix Matrix::randn(std::size_t rows, std::size_t cols, common::Rng& rng,
                     double stddev) {
  Matrix m(rows, cols);
  for (auto& v : m.data_) v = rng.normal(0.0, stddev);
  return m;
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) {
      t.data_[c * rows_ + r] = data_[r * cols_ + c];
    }
  }
  return t;
}

void Matrix::resize(std::size_t rows, std::size_t cols) {
  rows_ = rows;
  cols_ = cols;
  data_.resize(rows * cols);
}

void Matrix::fill(double v) { std::fill(data_.begin(), data_.end(), v); }

void Matrix::add_scaled(const Matrix& other, double s) {
  MECSC_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  axpy(*this, other, s);
}

void Matrix::scale_in_place(double s) {
  scale_into(*this, *this, s);
}

double Matrix::sum() const {
  double s = 0.0;
  for (double v : data_) s += v;
  return s;
}

double Matrix::mean() const {
  return data_.empty() ? 0.0 : sum() / static_cast<double>(data_.size());
}

double Matrix::max_abs() const {
  double m = 0.0;
  for (double v : data_) m = std::max(m, std::abs(v));
  return m;
}

Matrix matmul(const Matrix& a, const Matrix& b) {
  Matrix c;
  matmul_into(c, a, b);
  return c;
}

// ---------------------------------------------------------------------------
// Scalar reference kernels (the pre-SIMD implementations, verbatim).
// ---------------------------------------------------------------------------
namespace scalar {

void matmul_into(Matrix& out, const Matrix& a, const Matrix& b) {
  const std::size_t m = a.rows(), kk = a.cols(), n = b.cols();
  out.resize(m, n);
  out.fill(0.0);
  const double* ad = a.data().data();
  const double* bd = b.data().data();
  double* cd = out.data().data();
  // i-k-j order blocked over k: a kKB-row panel of b stays in cache while
  // each output row accumulates against it.
  constexpr std::size_t kKB = 64;
  for (std::size_t k0 = 0; k0 < kk; k0 += kKB) {
    const std::size_t k1 = std::min(kk, k0 + kKB);
    for (std::size_t i = 0; i < m; ++i) {
      const double* ar = ad + i * kk;
      double* cr = cd + i * n;
      for (std::size_t k = k0; k < k1; ++k) {
        const double aik = ar[k];
        if (aik == 0.0) continue;  // one-hot / sparse inputs are common
        const double* br = bd + k * n;
        for (std::size_t j = 0; j < n; ++j) cr[j] += aik * br[j];
      }
    }
  }
}

void matmul_abT_into(Matrix& out, const Matrix& a, const Matrix& b) {
  const std::size_t m = a.rows(), kk = a.cols(), n = b.rows();
  out.resize(m, n);
  const double* ad = a.data().data();
  const double* bd = b.data().data();
  double* cd = out.data().data();
  for (std::size_t i = 0; i < m; ++i) {
    const double* ar = ad + i * kk;
    double* cr = cd + i * n;
    for (std::size_t j = 0; j < n; ++j) {
      const double* br = bd + j * kk;
      double s = 0.0;
      for (std::size_t k = 0; k < kk; ++k) s += ar[k] * br[k];
      cr[j] = s;
    }
  }
}

void matmul_aTb_into(Matrix& out, const Matrix& a, const Matrix& b) {
  const std::size_t m = a.cols(), kk = a.rows(), n = b.cols();
  out.resize(m, n);
  out.fill(0.0);
  const double* ad = a.data().data();
  const double* bd = b.data().data();
  double* cd = out.data().data();
  // Accumulate rank-1 updates row-by-row of a/b — every access stride-1.
  for (std::size_t k = 0; k < kk; ++k) {
    const double* ar = ad + k * m;
    const double* br = bd + k * n;
    for (std::size_t i = 0; i < m; ++i) {
      const double aki = ar[i];
      if (aki == 0.0) continue;
      double* cr = cd + i * n;
      for (std::size_t j = 0; j < n; ++j) cr[j] += aki * br[j];
    }
  }
}

void add_into(Matrix& out, const Matrix& a, const Matrix& b) {
  out.resize(a.rows(), a.cols());
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = a[i] + b[i];
}

void sub_into(Matrix& out, const Matrix& a, const Matrix& b) {
  out.resize(a.rows(), a.cols());
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = a[i] - b[i];
}

void hadamard_into(Matrix& out, const Matrix& a, const Matrix& b) {
  out.resize(a.rows(), a.cols());
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = a[i] * b[i];
}

void scale_into(Matrix& out, const Matrix& a, double s) {
  out.resize(a.rows(), a.cols());
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = s * a[i];
}

void map_sigmoid_into(Matrix& out, const Matrix& a) {
  out.resize(a.rows(), a.cols());
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = 1.0 / (1.0 + std::exp(-a[i]));
  }
}

void map_tanh_into(Matrix& out, const Matrix& a) {
  out.resize(a.rows(), a.cols());
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = std::tanh(a[i]);
}

void map_relu_into(Matrix& out, const Matrix& a) {
  out.resize(a.rows(), a.cols());
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = std::max(0.0, a[i]);
}

void sigmoid_grad_into(Matrix& out, const Matrix& g, const Matrix& y) {
  out.resize(g.rows(), g.cols());
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = g[i] * (y[i] * (1.0 - y[i]));
  }
}

void tanh_grad_into(Matrix& out, const Matrix& g, const Matrix& y) {
  out.resize(g.rows(), g.cols());
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = g[i] * (1.0 - y[i] * y[i]);
  }
}

void relu_grad_into(Matrix& out, const Matrix& g, const Matrix& x) {
  out.resize(g.rows(), g.cols());
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = x[i] <= 0.0 ? 0.0 : g[i];
  }
}

void axpy(Matrix& y, const Matrix& x, double s) {
  for (std::size_t i = 0; i < y.size(); ++i) y[i] += s * x[i];
}

bool reference_is_vectorized() {
#if defined(__AVX2__)
  return true;
#else
  return false;
#endif
}

}  // namespace scalar

// ---------------------------------------------------------------------------
// Dispatchers: shape checks here, then the AVX2 kernel when active,
// otherwise the scalar reference.
// ---------------------------------------------------------------------------

void matmul_into(Matrix& out, const Matrix& a, const Matrix& b) {
  MECSC_CHECK_MSG(a.cols() == b.rows(), "matmul dimension mismatch");
#if defined(MECSC_SIMD_AVX2)
  if (use_simd()) {
    out.resize(a.rows(), b.cols());
    out.fill(0.0);
    avx2::matmul(out.data().data(), a.data().data(), b.data().data(), a.rows(),
                 a.cols(), b.cols());
    return;
  }
#endif
  scalar::matmul_into(out, a, b);
}

void matmul_abT_into(Matrix& out, const Matrix& a, const Matrix& b) {
  MECSC_CHECK_MSG(a.cols() == b.cols(), "matmul_abT dimension mismatch");
#if defined(MECSC_SIMD_AVX2)
  if (use_simd()) {
    out.resize(a.rows(), b.rows());
    avx2::matmul_abT(out.data().data(), a.data().data(), b.data().data(),
                     a.rows(), a.cols(), b.rows());
    return;
  }
#endif
  scalar::matmul_abT_into(out, a, b);
}

void matmul_aTb_into(Matrix& out, const Matrix& a, const Matrix& b) {
  MECSC_CHECK_MSG(a.rows() == b.rows(), "matmul_aTb dimension mismatch");
#if defined(MECSC_SIMD_AVX2)
  if (use_simd()) {
    out.resize(a.cols(), b.cols());
    out.fill(0.0);
    avx2::matmul_aTb(out.data().data(), a.data().data(), b.data().data(),
                     a.cols(), a.rows(), b.cols());
    return;
  }
#endif
  scalar::matmul_aTb_into(out, a, b);
}

void add_into(Matrix& out, const Matrix& a, const Matrix& b) {
  check_same_shape(a, b);
#if defined(MECSC_SIMD_AVX2)
  if (use_simd()) {
    out.resize(a.rows(), a.cols());
    avx2::add(out.data().data(), a.data().data(), b.data().data(), out.size());
    return;
  }
#endif
  scalar::add_into(out, a, b);
}

void sub_into(Matrix& out, const Matrix& a, const Matrix& b) {
  check_same_shape(a, b);
#if defined(MECSC_SIMD_AVX2)
  if (use_simd()) {
    out.resize(a.rows(), a.cols());
    avx2::sub(out.data().data(), a.data().data(), b.data().data(), out.size());
    return;
  }
#endif
  scalar::sub_into(out, a, b);
}

void hadamard_into(Matrix& out, const Matrix& a, const Matrix& b) {
  check_same_shape(a, b);
#if defined(MECSC_SIMD_AVX2)
  if (use_simd()) {
    out.resize(a.rows(), a.cols());
    avx2::mul(out.data().data(), a.data().data(), b.data().data(), out.size());
    return;
  }
#endif
  scalar::hadamard_into(out, a, b);
}

void scale_into(Matrix& out, const Matrix& a, double s) {
#if defined(MECSC_SIMD_AVX2)
  if (use_simd()) {
    out.resize(a.rows(), a.cols());
    avx2::scale(out.data().data(), a.data().data(), s, out.size());
    return;
  }
#endif
  scalar::scale_into(out, a, s);
}

void map_sigmoid_into(Matrix& out, const Matrix& a) {
#if defined(MECSC_SIMD_AVX2)
  if (use_simd()) {
    out.resize(a.rows(), a.cols());
    avx2::sigmoid(out.data().data(), a.data().data(), out.size());
    return;
  }
#endif
  scalar::map_sigmoid_into(out, a);
}

void map_tanh_into(Matrix& out, const Matrix& a) {
#if defined(MECSC_SIMD_AVX2)
  if (use_simd()) {
    out.resize(a.rows(), a.cols());
    avx2::tanh(out.data().data(), a.data().data(), out.size());
    return;
  }
#endif
  scalar::map_tanh_into(out, a);
}

void map_relu_into(Matrix& out, const Matrix& a) {
#if defined(MECSC_SIMD_AVX2)
  if (use_simd()) {
    out.resize(a.rows(), a.cols());
    avx2::relu(out.data().data(), a.data().data(), out.size());
    return;
  }
#endif
  scalar::map_relu_into(out, a);
}

void sigmoid_grad_into(Matrix& out, const Matrix& g, const Matrix& y) {
  check_same_shape(g, y);
#if defined(MECSC_SIMD_AVX2)
  if (use_simd()) {
    out.resize(g.rows(), g.cols());
    avx2::sigmoid_grad(out.data().data(), g.data().data(), y.data().data(),
                       out.size());
    return;
  }
#endif
  scalar::sigmoid_grad_into(out, g, y);
}

void tanh_grad_into(Matrix& out, const Matrix& g, const Matrix& y) {
  check_same_shape(g, y);
#if defined(MECSC_SIMD_AVX2)
  if (use_simd()) {
    out.resize(g.rows(), g.cols());
    avx2::tanh_grad(out.data().data(), g.data().data(), y.data().data(),
                    out.size());
    return;
  }
#endif
  scalar::tanh_grad_into(out, g, y);
}

void relu_grad_into(Matrix& out, const Matrix& g, const Matrix& x) {
  check_same_shape(g, x);
#if defined(MECSC_SIMD_AVX2)
  if (use_simd()) {
    out.resize(g.rows(), g.cols());
    avx2::relu_grad(out.data().data(), g.data().data(), x.data().data(),
                    out.size());
    return;
  }
#endif
  scalar::relu_grad_into(out, g, x);
}

void axpy(Matrix& y, const Matrix& x, double s) {
  check_same_shape(y, x);
#if defined(MECSC_SIMD_AVX2)
  if (use_simd()) {
    avx2::axpy(y.data().data(), x.data().data(), s, y.size());
    return;
  }
#endif
  scalar::axpy(y, x, s);
}

// ---------------------------------------------------------------------------
// Allocating wrappers and shape utilities (no hot loops of their own).
// ---------------------------------------------------------------------------

Matrix add(const Matrix& a, const Matrix& b) {
  Matrix c;
  add_into(c, a, b);
  return c;
}

Matrix sub(const Matrix& a, const Matrix& b) {
  Matrix c;
  sub_into(c, a, b);
  return c;
}

Matrix hadamard(const Matrix& a, const Matrix& b) {
  Matrix c;
  hadamard_into(c, a, b);
  return c;
}

Matrix add_row_broadcast(const Matrix& a, const Matrix& row) {
  MECSC_CHECK_MSG(row.rows() == 1 && row.cols() == a.cols(),
                  "broadcast row shape mismatch");
  Matrix c = a;
  for (std::size_t r = 0; r < a.rows(); ++r) {
    for (std::size_t j = 0; j < a.cols(); ++j) c[r * a.cols() + j] += row[j];
  }
  return c;
}

Matrix scale(const Matrix& a, double s) {
  Matrix c;
  scale_into(c, a, s);
  return c;
}

Matrix concat_cols(const Matrix& a, const Matrix& b) {
  MECSC_CHECK_MSG(a.rows() == b.rows(), "concat_cols row mismatch");
  Matrix c(a.rows(), a.cols() + b.cols());
  for (std::size_t r = 0; r < a.rows(); ++r) {
    for (std::size_t j = 0; j < a.cols(); ++j) c.at(r, j) = a.at(r, j);
    for (std::size_t j = 0; j < b.cols(); ++j) c.at(r, a.cols() + j) = b.at(r, j);
  }
  return c;
}

Matrix slice_cols(const Matrix& a, std::size_t begin, std::size_t end) {
  MECSC_CHECK_MSG(begin < end && end <= a.cols(), "slice_cols range invalid");
  Matrix c(a.rows(), end - begin);
  for (std::size_t r = 0; r < a.rows(); ++r) {
    for (std::size_t j = begin; j < end; ++j) c.at(r, j - begin) = a.at(r, j);
  }
  return c;
}

Matrix map_sigmoid(const Matrix& a) {
  Matrix c;
  map_sigmoid_into(c, a);
  return c;
}

Matrix map_tanh(const Matrix& a) {
  Matrix c;
  map_tanh_into(c, a);
  return c;
}

Matrix map_relu(const Matrix& a) {
  Matrix c;
  map_relu_into(c, a);
  return c;
}

Matrix softmax_rows(const Matrix& a) {
  Matrix c = a;
  for (std::size_t r = 0; r < a.rows(); ++r) {
    double mx = -1e300;
    for (std::size_t j = 0; j < a.cols(); ++j) mx = std::max(mx, c.at(r, j));
    double denom = 0.0;
    for (std::size_t j = 0; j < a.cols(); ++j) {
      c.at(r, j) = std::exp(c.at(r, j) - mx);
      denom += c.at(r, j);
    }
    for (std::size_t j = 0; j < a.cols(); ++j) c.at(r, j) /= denom;
  }
  return c;
}

Matrix col_sums(const Matrix& a) {
  Matrix c;
  col_sums_into(c, a);
  return c;
}

void col_sums_into(Matrix& out, const Matrix& a) {
  out.resize(1, a.cols());
  out.fill(0.0);
  for (std::size_t r = 0; r < a.rows(); ++r) {
    for (std::size_t j = 0; j < a.cols(); ++j) out[j] += a.at(r, j);
  }
}

}  // namespace mecsc::nn
