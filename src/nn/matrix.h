#ifndef MECSC_NN_MATRIX_H
#define MECSC_NN_MATRIX_H

#include <cstddef>
#include <deque>
#include <initializer_list>
#include <new>
#include <vector>

#include "common/rng.h"

namespace mecsc::nn {

/// Minimal 32-byte-aligning allocator for Matrix storage. The AVX2
/// kernels use aligned 256-bit loads on whole-buffer elementwise passes,
/// which requires every Matrix data pointer to sit on a 32-byte
/// boundary; unaligned vector loads on such pointers would be legal but
/// this also rules out the UB of casting under-aligned pointers to
/// vector types. C++17 aligned operator new does the heavy lifting.
template <typename T>
struct AlignedAllocator {
  using value_type = T;
  static constexpr std::align_val_t kAlign{32};

  AlignedAllocator() = default;
  template <typename U>
  constexpr AlignedAllocator(const AlignedAllocator<U>&) noexcept {}

  T* allocate(std::size_t n) {
    return static_cast<T*>(::operator new(n * sizeof(T), kAlign));
  }
  void deallocate(T* p, std::size_t) noexcept { ::operator delete(p, kAlign); }

  template <typename U>
  bool operator==(const AlignedAllocator<U>&) const noexcept { return true; }
  template <typename U>
  bool operator!=(const AlignedAllocator<U>&) const noexcept { return false; }
};

/// 32-byte-aligned contiguous double buffer (Matrix storage type).
using AlignedVector = std::vector<double, AlignedAllocator<double>>;

/// Dense row-major 2-D matrix of doubles — the only tensor shape the
/// Info-RNN-GAN needs (batch × features per time step; sequences are
/// vectors of matrices). Storage is 32-byte aligned (AlignedVector) so
/// the SIMD kernels can issue aligned vector loads.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);
  Matrix(std::size_t rows, std::size_t cols, std::vector<double> data);
  /// 1×n row vector from an initializer list.
  static Matrix row(std::initializer_list<double> values);
  static Matrix row(const std::vector<double>& values);

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }
  std::size_t size() const noexcept { return data_.size(); }
  bool empty() const noexcept { return data_.empty(); }

  double& at(std::size_t r, std::size_t c);
  double at(std::size_t r, std::size_t c) const;
  double& operator[](std::size_t i) { return data_[i]; }
  double operator[](std::size_t i) const { return data_[i]; }

  const AlignedVector& data() const noexcept { return data_; }
  AlignedVector& data() noexcept { return data_; }

  /// Xavier/Glorot-uniform initialisation (for layer weights).
  static Matrix xavier(std::size_t rows, std::size_t cols, common::Rng& rng);
  /// I.i.d. normal entries.
  static Matrix randn(std::size_t rows, std::size_t cols, common::Rng& rng,
                      double stddev = 1.0);

  Matrix transposed() const;

  /// Reshapes to rows×cols without preserving contents. Never shrinks the
  /// underlying buffer, so repeatedly resizing a reused matrix to the
  /// same (or smaller) shape allocates nothing.
  void resize(std::size_t rows, std::size_t cols);

  // In-place helpers used by the optimizer.
  void fill(double v);
  void add_scaled(const Matrix& other, double scale);  // this += scale*other
  void scale_in_place(double s);                       // this *= s

  double sum() const;
  double mean() const;
  double max_abs() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  AlignedVector data_;
};

/// C = A·B. Dimensions must agree.
Matrix matmul(const Matrix& a, const Matrix& b);
/// Elementwise binary ops; dimensions must match.
Matrix add(const Matrix& a, const Matrix& b);
Matrix sub(const Matrix& a, const Matrix& b);
Matrix hadamard(const Matrix& a, const Matrix& b);
/// Adds a 1×cols row vector to every row of a.
Matrix add_row_broadcast(const Matrix& a, const Matrix& row);
Matrix scale(const Matrix& a, double s);
/// Concatenates along columns (same row count).
Matrix concat_cols(const Matrix& a, const Matrix& b);
/// Columns [begin, end) of a.
Matrix slice_cols(const Matrix& a, std::size_t begin, std::size_t end);
/// Elementwise map helpers.
Matrix map_sigmoid(const Matrix& a);
Matrix map_tanh(const Matrix& a);
Matrix map_relu(const Matrix& a);
/// Row-wise softmax.
Matrix softmax_rows(const Matrix& a);
/// Column sums: 1×cols.
Matrix col_sums(const Matrix& a);

// ---------------------------------------------------------------------------
// Output-parameter kernels (DESIGN.md "Performance"). Each writes its result
// into `out`, resizing it as needed; passing a reused `out` makes the
// steady state allocation-free. `out` must not alias an input.
//
// Every kernel below dispatches to an AVX2 implementation when
// common::simd::active() (see DESIGN.md "SIMD & batching" for the FP
// contract) and otherwise runs the scalar reference in nn::scalar.
// ---------------------------------------------------------------------------

/// out = A·B, with the inner loops blocked over k so panels of B stay in
/// cache while a row of the output accumulates.
void matmul_into(Matrix& out, const Matrix& a, const Matrix& b);
/// out = A·Bᵀ without materialising the transpose: each entry is a
/// stride-1 dot product of a row of A with a row of B.
void matmul_abT_into(Matrix& out, const Matrix& a, const Matrix& b);
/// out = Aᵀ·B without materialising the transpose: rank-1 updates
/// accumulated row-by-row, all stride-1.
void matmul_aTb_into(Matrix& out, const Matrix& a, const Matrix& b);
void add_into(Matrix& out, const Matrix& a, const Matrix& b);
void sub_into(Matrix& out, const Matrix& a, const Matrix& b);
void hadamard_into(Matrix& out, const Matrix& a, const Matrix& b);
void scale_into(Matrix& out, const Matrix& a, double s);
void map_sigmoid_into(Matrix& out, const Matrix& a);
void map_tanh_into(Matrix& out, const Matrix& a);
void map_relu_into(Matrix& out, const Matrix& a);
void col_sums_into(Matrix& out, const Matrix& a);

// Fused gradient kernels for the autodiff backward closures: one pass,
// no temporaries, SIMD-dispatched like the forward kernels.
/// out = g ⊙ y ⊙ (1 − y)  (sigmoid backward; y is the forward output).
void sigmoid_grad_into(Matrix& out, const Matrix& g, const Matrix& y);
/// out = g ⊙ (1 − y²)  (tanh backward; y is the forward output).
void tanh_grad_into(Matrix& out, const Matrix& g, const Matrix& y);
/// out = g masked by x > 0 (relu backward; x is the forward input).
void relu_grad_into(Matrix& out, const Matrix& g, const Matrix& x);
/// y += s·x  (axpy; the accumulation primitive behind Matrix::add_scaled
/// and every gradient accumulate).
void axpy(Matrix& y, const Matrix& x, double s);

// ---------------------------------------------------------------------------
// Scalar reference implementations. These are the pre-SIMD kernels,
// kept callable so (a) MECSC_SIMD=off reproduces them bit-for-bit via
// the dispatchers and (b) tests/test_simd.cpp can compare the vector
// path against them on the same inputs.
// ---------------------------------------------------------------------------
namespace scalar {
void matmul_into(Matrix& out, const Matrix& a, const Matrix& b);
void matmul_abT_into(Matrix& out, const Matrix& a, const Matrix& b);
void matmul_aTb_into(Matrix& out, const Matrix& a, const Matrix& b);
void add_into(Matrix& out, const Matrix& a, const Matrix& b);
void sub_into(Matrix& out, const Matrix& a, const Matrix& b);
void hadamard_into(Matrix& out, const Matrix& a, const Matrix& b);
void scale_into(Matrix& out, const Matrix& a, double s);
void map_sigmoid_into(Matrix& out, const Matrix& a);
void map_tanh_into(Matrix& out, const Matrix& a);
void map_relu_into(Matrix& out, const Matrix& a);
void sigmoid_grad_into(Matrix& out, const Matrix& g, const Matrix& y);
void tanh_grad_into(Matrix& out, const Matrix& g, const Matrix& y);
void relu_grad_into(Matrix& out, const Matrix& g, const Matrix& x);
void axpy(Matrix& y, const Matrix& x, double s);

/// True when this reference TU was itself compiled with AVX2 codegen
/// (e.g. a -mavx2/-march=native build): the compiler auto-vectorizes
/// the "scalar" loops, so simd-vs-scalar timing ratios no longer
/// measure against a pre-SIMD baseline. Equivalence (bit-exactness /
/// tolerance) is unaffected — both TUs pin -ffp-contract=off.
bool reference_is_vectorized();
}  // namespace scalar

/// Slot-indexed arena of reusable scratch matrices. Callers grab a slot,
/// resize it via the `_into` kernels, and reuse the same slot on the next
/// call — after warm-up no kernel in the loop allocates. One pool per
/// thread (see autodiff.cpp's backward closures); slots are stable
/// references, so a caller may hold several slots at once as long as the
/// indices differ.
class MatrixPool {
 public:
  Matrix& get(std::size_t slot) {
    if (slot >= slots_.size()) slots_.resize(slot + 1);
    return slots_[slot];
  }

 private:
  // Deque so growing for a new slot never invalidates references to
  // slots already handed out.
  std::deque<Matrix> slots_;
};

}  // namespace mecsc::nn

#endif  // MECSC_NN_MATRIX_H
