#ifndef MECSC_NN_MATRIX_H
#define MECSC_NN_MATRIX_H

#include <cstddef>
#include <initializer_list>
#include <vector>

#include "common/rng.h"

namespace mecsc::nn {

/// Dense row-major 2-D matrix of doubles — the only tensor shape the
/// Info-RNN-GAN needs (batch × features per time step; sequences are
/// vectors of matrices).
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);
  Matrix(std::size_t rows, std::size_t cols, std::vector<double> data);
  /// 1×n row vector from an initializer list.
  static Matrix row(std::initializer_list<double> values);
  static Matrix row(const std::vector<double>& values);

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }
  std::size_t size() const noexcept { return data_.size(); }
  bool empty() const noexcept { return data_.empty(); }

  double& at(std::size_t r, std::size_t c);
  double at(std::size_t r, std::size_t c) const;
  double& operator[](std::size_t i) { return data_[i]; }
  double operator[](std::size_t i) const { return data_[i]; }

  const std::vector<double>& data() const noexcept { return data_; }
  std::vector<double>& data() noexcept { return data_; }

  /// Xavier/Glorot-uniform initialisation (for layer weights).
  static Matrix xavier(std::size_t rows, std::size_t cols, common::Rng& rng);
  /// I.i.d. normal entries.
  static Matrix randn(std::size_t rows, std::size_t cols, common::Rng& rng,
                      double stddev = 1.0);

  Matrix transposed() const;

  // In-place helpers used by the optimizer.
  void fill(double v);
  void add_scaled(const Matrix& other, double scale);  // this += scale*other

  double sum() const;
  double mean() const;
  double max_abs() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// C = A·B. Dimensions must agree.
Matrix matmul(const Matrix& a, const Matrix& b);
/// Elementwise binary ops; dimensions must match.
Matrix add(const Matrix& a, const Matrix& b);
Matrix sub(const Matrix& a, const Matrix& b);
Matrix hadamard(const Matrix& a, const Matrix& b);
/// Adds a 1×cols row vector to every row of a.
Matrix add_row_broadcast(const Matrix& a, const Matrix& row);
Matrix scale(const Matrix& a, double s);
/// Concatenates along columns (same row count).
Matrix concat_cols(const Matrix& a, const Matrix& b);
/// Columns [begin, end) of a.
Matrix slice_cols(const Matrix& a, std::size_t begin, std::size_t end);
/// Elementwise map helpers.
Matrix map_sigmoid(const Matrix& a);
Matrix map_tanh(const Matrix& a);
Matrix map_relu(const Matrix& a);
/// Row-wise softmax.
Matrix softmax_rows(const Matrix& a);
/// Column sums: 1×cols.
Matrix col_sums(const Matrix& a);

}  // namespace mecsc::nn

#endif  // MECSC_NN_MATRIX_H
