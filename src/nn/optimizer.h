#ifndef MECSC_NN_OPTIMIZER_H
#define MECSC_NN_OPTIMIZER_H

#include <vector>

#include "nn/autodiff.h"

namespace mecsc::nn {

/// Base optimizer over a fixed parameter list.
class Optimizer {
 public:
  explicit Optimizer(std::vector<Var> params);
  virtual ~Optimizer() = default;

  /// Applies one update from the accumulated gradients.
  virtual void step() = 0;
  /// Clears accumulated gradients.
  void zero_grad();
  /// Rescales gradients so their global L2 norm is at most `max_norm`
  /// (RNN training stabiliser). Returns the pre-clip global norm — the
  /// telemetry layer records it as the training-health signal.
  double clip_grad_norm(double max_norm);

 protected:
  std::vector<Var> params_;
};

/// Plain SGD with optional momentum.
class Sgd final : public Optimizer {
 public:
  Sgd(std::vector<Var> params, double lr, double momentum = 0.0);
  void step() override;

 private:
  double lr_;
  double momentum_;
  std::vector<Matrix> velocity_;
};

/// Adam (Kingma & Ba) — the default for the Info-RNN-GAN trainer.
class Adam final : public Optimizer {
 public:
  Adam(std::vector<Var> params, double lr, double beta1 = 0.9,
       double beta2 = 0.999, double eps = 1e-8);
  void step() override;

 private:
  double lr_;
  double beta1_;
  double beta2_;
  double eps_;
  std::size_t t_ = 0;
  std::vector<Matrix> m_;
  std::vector<Matrix> v_;
};

}  // namespace mecsc::nn

#endif  // MECSC_NN_OPTIMIZER_H
