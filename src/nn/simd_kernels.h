#ifndef MECSC_NN_SIMD_KERNELS_H
#define MECSC_NN_SIMD_KERNELS_H

// Internal AVX2 kernel entry points (raw-pointer form) used by the
// dispatchers in matrix.cpp. Only compiled on x86-64 GCC/Clang builds
// (see common/simd.h); callers must check common::simd::active() before
// calling — these functions execute AVX2+FMA instructions emitted via
// the target("avx2,fma") function attribute.
//
// FP contract (DESIGN.md "SIMD & batching"): matmul and matmul_aTb keep
// the scalar per-element accumulation order over k but contract each
// multiply-add into one FMA; matmul_abT additionally splits the k
// reduction into four partial sums; sigmoid/tanh use a polynomial
// vector exp. All differences are covered by the tolerances asserted in
// tests/test_simd.cpp. The remaining kernels (add/sub/mul/scale/axpy/
// relu and the relu/concat-style masks) are bit-for-bit identical to
// the scalar reference.

#include <cstddef>

#include "common/simd.h"

#if defined(MECSC_SIMD_AVX2)

namespace mecsc::nn::avx2 {

// c (m×n, pre-zeroed) += a (m×k) · b (k×n), k-blocked, row-major.
void matmul(double* c, const double* a, const double* b, std::size_t m,
            std::size_t kk, std::size_t n);
// c (m×n) = a (m×k) · b (n×k)ᵀ — dot products over k.
void matmul_abT(double* c, const double* a, const double* b, std::size_t m,
                std::size_t kk, std::size_t n);
// c (m×n, pre-zeroed) += a (k×m)ᵀ · b (k×n) — rank-1 updates.
void matmul_aTb(double* c, const double* a, const double* b, std::size_t m,
                std::size_t kk, std::size_t n);

// Elementwise over n entries; `out` may alias an input. All pointers
// must be 32-byte aligned (Matrix storage guarantees it; asserted in
// debug builds).
void add(double* out, const double* a, const double* b, std::size_t n);
void sub(double* out, const double* a, const double* b, std::size_t n);
void mul(double* out, const double* a, const double* b, std::size_t n);
void scale(double* out, const double* a, double s, std::size_t n);
void sigmoid(double* out, const double* a, std::size_t n);
void tanh(double* out, const double* a, std::size_t n);
void relu(double* out, const double* a, std::size_t n);
void sigmoid_grad(double* out, const double* g, const double* y, std::size_t n);
void tanh_grad(double* out, const double* g, const double* y, std::size_t n);
void relu_grad(double* out, const double* g, const double* x, std::size_t n);
void axpy(double* y, const double* x, double s, std::size_t n);

}  // namespace mecsc::nn::avx2

#endif  // MECSC_SIMD_AVX2

#endif  // MECSC_NN_SIMD_KERNELS_H
