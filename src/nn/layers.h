#ifndef MECSC_NN_LAYERS_H
#define MECSC_NN_LAYERS_H

#include <memory>
#include <vector>

#include "common/rng.h"
#include "nn/autodiff.h"

namespace mecsc::nn {

/// Anything holding trainable parameters.
class Module {
 public:
  virtual ~Module() = default;
  /// All trainable parameter nodes (for the optimizer).
  virtual std::vector<Var> parameters() const = 0;
  /// Total scalar parameter count.
  std::size_t parameter_count() const;
  /// Zeroes every parameter gradient.
  void zero_grad() const;
};

/// Fully connected layer: y = x·W + b.
class Linear final : public Module {
 public:
  Linear(std::size_t in_features, std::size_t out_features, common::Rng& rng);

  Var forward(const Var& x) const;
  std::vector<Var> parameters() const override { return {w_, b_}; }

  std::size_t in_features() const noexcept { return in_; }
  std::size_t out_features() const noexcept { return out_; }

 private:
  std::size_t in_;
  std::size_t out_;
  Var w_;  // in × out
  Var b_;  // 1 × out
};

/// A standard LSTM cell. Gates are computed from the concatenation
/// [x, h] with a single (in+hidden) × 4·hidden weight (order: input i,
/// forget f, cell g, output o).
class LSTMCell final : public Module {
 public:
  LSTMCell(std::size_t input_size, std::size_t hidden_size, common::Rng& rng);

  struct State {
    Var h;  // batch × hidden
    Var c;  // batch × hidden
  };

  /// Zero state for a batch size.
  State initial_state(std::size_t batch) const;
  State step(const Var& x, const State& prev) const;

  std::vector<Var> parameters() const override { return {w_, b_}; }
  std::size_t hidden_size() const noexcept { return hidden_; }
  std::size_t input_size() const noexcept { return input_; }

 private:
  std::size_t input_;
  std::size_t hidden_;
  Var w_;  // (input+hidden) × 4·hidden
  Var b_;  // 1 × 4·hidden
};

/// Unidirectional LSTM over a sequence of batch × input matrices;
/// returns one hidden state per step.
class LSTM final : public Module {
 public:
  LSTM(std::size_t input_size, std::size_t hidden_size, common::Rng& rng);

  std::vector<Var> forward(const std::vector<Var>& sequence) const;
  std::vector<Var> parameters() const override { return cell_.parameters(); }
  std::size_t hidden_size() const noexcept { return cell_.hidden_size(); }

 private:
  LSTMCell cell_;
};

/// Interface of a bidirectional recurrent encoder: maps a sequence of
/// batch × input matrices to one batch × output_size() feature matrix
/// per step. Implemented by BiLSTM (the paper's choice) and BiGRU (a
/// lighter alternative compared in `bench_ablation_rnn`).
class BiRnn : public Module {
 public:
  virtual std::vector<Var> forward(const std::vector<Var>& sequence) const = 0;
  virtual std::size_t output_size() const noexcept = 0;
};

/// Bidirectional LSTM (paper §V.B: both generator and discriminator use
/// Bi-LSTM so decisions account for historical *and* future features in
/// the sample). Output per step is [h_forward ; h_backward]
/// (batch × 2·hidden).
class BiLSTM final : public BiRnn {
 public:
  BiLSTM(std::size_t input_size, std::size_t hidden_size, common::Rng& rng);

  std::vector<Var> forward(const std::vector<Var>& sequence) const override;
  std::vector<Var> parameters() const override;
  /// Output feature width (2·hidden).
  std::size_t output_size() const noexcept override { return 2 * fwd_.hidden_size(); }

 private:
  LSTM fwd_;
  LSTM bwd_;
};

/// A standard GRU cell: update gate z, reset gate r, candidate h̃.
/// Three (in+hidden) × hidden weight blocks packed into one matrix.
class GRUCell final : public Module {
 public:
  GRUCell(std::size_t input_size, std::size_t hidden_size, common::Rng& rng);

  Var initial_state(std::size_t batch) const;
  Var step(const Var& x, const Var& prev_h) const;

  std::vector<Var> parameters() const override { return {w_zr_, b_zr_, w_h_, b_h_}; }
  std::size_t hidden_size() const noexcept { return hidden_; }

 private:
  std::size_t input_;
  std::size_t hidden_;
  Var w_zr_;  // (input+hidden) × 2·hidden (update z, reset r)
  Var b_zr_;  // 1 × 2·hidden
  Var w_h_;   // (input+hidden) × hidden (candidate)
  Var b_h_;   // 1 × hidden
  // Cached all-ones constant for h' = (1−z)⊙h + z⊙h̃, rebuilt only when
  // the batch size changes. Safe to share across steps: a constant leaf
  // never accumulates gradient.
  mutable Var ones_;
};

/// Unidirectional GRU over a sequence.
class GRU final : public Module {
 public:
  GRU(std::size_t input_size, std::size_t hidden_size, common::Rng& rng);

  std::vector<Var> forward(const std::vector<Var>& sequence) const;
  std::vector<Var> parameters() const override { return cell_.parameters(); }
  std::size_t hidden_size() const noexcept { return cell_.hidden_size(); }

 private:
  GRUCell cell_;
};

/// Bidirectional GRU; drop-in lighter alternative to BiLSTM (~25% fewer
/// parameters per hidden unit, no cell state).
class BiGRU final : public BiRnn {
 public:
  BiGRU(std::size_t input_size, std::size_t hidden_size, common::Rng& rng);

  std::vector<Var> forward(const std::vector<Var>& sequence) const override;
  std::vector<Var> parameters() const override;
  std::size_t output_size() const noexcept override { return 2 * fwd_.hidden_size(); }

 private:
  GRU fwd_;
  GRU bwd_;
};

/// Which recurrent core to instantiate.
enum class RnnKind { kLstm, kGru };

/// Factory for bidirectional encoders.
std::unique_ptr<BiRnn> make_birnn(RnnKind kind, std::size_t input_size,
                                  std::size_t hidden_size, common::Rng& rng);

}  // namespace mecsc::nn

#endif  // MECSC_NN_LAYERS_H
