#include "nn/simd_kernels.h"

#if defined(MECSC_SIMD_AVX2)

#include <immintrin.h>

#include <cassert>
#include <cstdint>

// Every function in this TU carries the target attribute instead of the
// whole build using -mavx2: the binary stays runnable on any x86-64
// machine, and common::simd::active() gates entry at run time.
#define MECSC_AVX2 __attribute__((target("avx2,fma")))

namespace mecsc::nn::avx2 {

namespace {

inline void assert_aligned(const double* p) {
  assert(reinterpret_cast<std::uintptr_t>(p) % 32 == 0 &&
         "Matrix storage must be 32-byte aligned");
  (void)p;
}

// ---- vector exp ----------------------------------------------------------
// exp(x) for 4 doubles: range-reduce x = n·ln2 + r with |r| ≤ ln2/2,
// evaluate the degree-13 Taylor polynomial of exp(r) (truncation error
// ~1.7e-16 relative at the interval edge), scale by 2^n through the
// exponent bits. Out-of-range and NaN lanes are blended to 0 / inf /
// NaN explicitly, matching std::exp's limiting values.
MECSC_AVX2 inline __m256d exp_pd(__m256d x) {
  const __m256d log2e = _mm256_set1_pd(1.4426950408889634074);
  const __m256d ln2_hi = _mm256_set1_pd(6.93147180369123816490e-01);
  const __m256d ln2_lo = _mm256_set1_pd(1.90821492927058770002e-10);
  const __m256d exp_hi = _mm256_set1_pd(709.0);   // above: overflow → inf
  const __m256d exp_lo = _mm256_set1_pd(-708.0);  // below: underflow → 0

  // Round x·log2e to the nearest integer with the 1.5·2^52 magic-number
  // add (round-to-nearest-even, identical to round_pd): t's low mantissa
  // bits then hold n + 2^51 directly, which both recovers n as a double
  // (t − shifter) and feeds the 2^n exponent construction below without
  // any cross-domain int↔fp converts on the critical path.
  const __m256d shifter = _mm256_set1_pd(6755399441055744.0);  // 1.5·2^52
  __m256d t = _mm256_fmadd_pd(x, log2e, shifter);
  __m256d n = _mm256_sub_pd(t, shifter);
  // r = x - n·ln2 in two pieces for extra precision.
  __m256d r = _mm256_fnmadd_pd(n, ln2_hi, x);
  r = _mm256_fnmadd_pd(n, ln2_lo, r);

  // Horner over 1/13!, 1/12!, ..., 1/1!, 1.
  __m256d p = _mm256_set1_pd(1.6059043836821614599e-10);  // 1/13!
  p = _mm256_fmadd_pd(p, r, _mm256_set1_pd(2.0876756987868098979e-09));
  p = _mm256_fmadd_pd(p, r, _mm256_set1_pd(2.5052108385441718775e-08));
  p = _mm256_fmadd_pd(p, r, _mm256_set1_pd(2.7557319223985890653e-07));
  p = _mm256_fmadd_pd(p, r, _mm256_set1_pd(2.7557319223985892511e-06));
  p = _mm256_fmadd_pd(p, r, _mm256_set1_pd(2.4801587301587301566e-05));
  p = _mm256_fmadd_pd(p, r, _mm256_set1_pd(1.9841269841269841253e-04));
  p = _mm256_fmadd_pd(p, r, _mm256_set1_pd(1.3888888888888889419e-03));
  p = _mm256_fmadd_pd(p, r, _mm256_set1_pd(8.3333333333333332177e-03));
  p = _mm256_fmadd_pd(p, r, _mm256_set1_pd(4.1666666666666664354e-02));
  p = _mm256_fmadd_pd(p, r, _mm256_set1_pd(1.6666666666666665741e-01));
  p = _mm256_fmadd_pd(p, r, _mm256_set1_pd(5.0e-01));
  p = _mm256_fmadd_pd(p, r, _mm256_set1_pd(1.0));
  p = _mm256_fmadd_pd(p, r, _mm256_set1_pd(1.0));

  // 2^n via exponent bits: (n + 1023) << 52. |x| ≤ 709 keeps n (and the
  // biased exponent) in normal range, so the shift construction is exact.
  // t's low mantissa bits are n + 2^51 (see the magic-number add above);
  // the shift by 52 discards t's own exponent field.
  __m256i n64 = _mm256_add_epi64(_mm256_castpd_si256(t),
                                 _mm256_set1_epi64x(1023 - (1LL << 51)));
  __m256i pow2 = _mm256_slli_epi64(n64, 52);
  __m256d result = _mm256_mul_pd(p, _mm256_castsi256_pd(pow2));

  // Out-of-range / NaN fixups behind one predictable branch: activation
  // inputs are almost always well inside (−708, 708], so the three
  // always-on blends this replaces were pure inner-loop overhead. The
  // NLE_UQ compare is unordered-true, so NaN lanes take the slow path
  // too; results are bit-identical either way.
  __m256d ax = _mm256_andnot_pd(_mm256_set1_pd(-0.0), x);
  if (__builtin_expect(_mm256_movemask_pd(_mm256_cmp_pd(
                           ax, _mm256_set1_pd(708.0), _CMP_NLE_UQ)),
                       0) != 0) {
    __m256d inf = _mm256_set1_pd(__builtin_inf());
    __m256d zero = _mm256_setzero_pd();
    result =
        _mm256_blendv_pd(result, inf, _mm256_cmp_pd(x, exp_hi, _CMP_GT_OQ));
    result =
        _mm256_blendv_pd(result, zero, _mm256_cmp_pd(x, exp_lo, _CMP_LT_OQ));
    // NaN lanes: comparisons above are false for NaN, so propagate x.
    result = _mm256_blendv_pd(result, x, _mm256_cmp_pd(x, x, _CMP_UNORD_Q));
  }
  return result;
}

MECSC_AVX2 inline __m256d sigmoid_pd(__m256d x) {
  const __m256d one = _mm256_set1_pd(1.0);
  __m256d e = exp_pd(_mm256_sub_pd(_mm256_setzero_pd(), x));
  return _mm256_div_pd(one, _mm256_add_pd(one, e));
}

// tanh(x) = sign(x) · (e^{2|x|} − 1) / (e^{2|x|} + 1); |x| keeps the
// exponential bounded below by 1 so the quotient never hits inf/inf.
// |x| ≥ 20 saturates to ±1 (1 − 2e^{−40} rounds to 1 in double).
MECSC_AVX2 inline __m256d tanh_pd(__m256d x) {
  const __m256d one = _mm256_set1_pd(1.0);
  const __m256d two = _mm256_set1_pd(2.0);
  const __m256d sat = _mm256_set1_pd(20.0);
  const __m256d sign_mask = _mm256_set1_pd(-0.0);
  __m256d ax = _mm256_andnot_pd(sign_mask, x);
  __m256d sign = _mm256_and_pd(sign_mask, x);
  __m256d e = exp_pd(_mm256_mul_pd(two, ax));
  __m256d t = _mm256_div_pd(_mm256_sub_pd(e, one), _mm256_add_pd(e, one));
  t = _mm256_blendv_pd(t, one, _mm256_cmp_pd(ax, sat, _CMP_GE_OQ));
  // NaN: the blends above miss NaN lanes (comparisons are false), and
  // (e−1)/(e+1) already propagates NaN through e.
  return _mm256_or_pd(t, sign);
}

}  // namespace

MECSC_AVX2 void matmul(double* c, const double* a, const double* b,
                       std::size_t m, std::size_t kk, std::size_t n) {
  // Same i-k-j order, k-blocking, and zero-skip as the scalar reference
  // (matrix.cpp): each output element accumulates over k in the scalar
  // order, so the only FP difference is the FMA contraction.
  constexpr std::size_t kKB = 64;
  for (std::size_t k0 = 0; k0 < kk; k0 += kKB) {
    const std::size_t k1 = k0 + kKB < kk ? k0 + kKB : kk;
    for (std::size_t i = 0; i < m; ++i) {
      const double* ar = a + i * kk;
      double* cr = c + i * n;
      std::size_t j = 0;
      // 32-column register tile: the c packs live in 8 ymm accumulators
      // for the whole k-block, so each k costs one broadcast + 8 b-row
      // loads for 8 FMAs instead of also reloading and restoring c —
      // the j-inner form above ~halved on c traffic. The 8 independent
      // accumulator chains hide the 4-cycle FMA latency.
      for (; j + 32 <= n; j += 32) {
        // Named accumulators: -O2 does not unroll a p-loop over an
        // __m256d array, and the spilled array costs more than the c
        // reloads it was meant to save.
        double* cj = cr + j;
        __m256d a0 = _mm256_loadu_pd(cj), a1 = _mm256_loadu_pd(cj + 4),
                a2 = _mm256_loadu_pd(cj + 8), a3 = _mm256_loadu_pd(cj + 12),
                a4 = _mm256_loadu_pd(cj + 16), a5 = _mm256_loadu_pd(cj + 20),
                a6 = _mm256_loadu_pd(cj + 24), a7 = _mm256_loadu_pd(cj + 28);
        for (std::size_t k = k0; k < k1; ++k) {
          const double aik = ar[k];
          if (aik == 0.0) continue;  // one-hot / sparse inputs are common
          const __m256d va = _mm256_set1_pd(aik);
          const double* br = b + k * n + j;
          a0 = _mm256_fmadd_pd(va, _mm256_loadu_pd(br), a0);
          a1 = _mm256_fmadd_pd(va, _mm256_loadu_pd(br + 4), a1);
          a2 = _mm256_fmadd_pd(va, _mm256_loadu_pd(br + 8), a2);
          a3 = _mm256_fmadd_pd(va, _mm256_loadu_pd(br + 12), a3);
          a4 = _mm256_fmadd_pd(va, _mm256_loadu_pd(br + 16), a4);
          a5 = _mm256_fmadd_pd(va, _mm256_loadu_pd(br + 20), a5);
          a6 = _mm256_fmadd_pd(va, _mm256_loadu_pd(br + 24), a6);
          a7 = _mm256_fmadd_pd(va, _mm256_loadu_pd(br + 28), a7);
        }
        _mm256_storeu_pd(cj, a0);
        _mm256_storeu_pd(cj + 4, a1);
        _mm256_storeu_pd(cj + 8, a2);
        _mm256_storeu_pd(cj + 12, a3);
        _mm256_storeu_pd(cj + 16, a4);
        _mm256_storeu_pd(cj + 20, a5);
        _mm256_storeu_pd(cj + 24, a6);
        _mm256_storeu_pd(cj + 28, a7);
      }
      // Single-pack tile for the 4..31-column tail, then scalar columns;
      // both keep the same ascending-k accumulation order per element.
      for (; j + 4 <= n; j += 4) {
        __m256d acc = _mm256_loadu_pd(cr + j);
        for (std::size_t k = k0; k < k1; ++k) {
          const double aik = ar[k];
          if (aik == 0.0) continue;
          acc = _mm256_fmadd_pd(_mm256_set1_pd(aik),
                                _mm256_loadu_pd(b + k * n + j), acc);
        }
        _mm256_storeu_pd(cr + j, acc);
      }
      for (; j < n; ++j) {
        double s = cr[j];
        for (std::size_t k = k0; k < k1; ++k) {
          const double aik = ar[k];
          if (aik == 0.0) continue;
          s += aik * b[k * n + j];
        }
        cr[j] = s;
      }
    }
  }
}

MECSC_AVX2 void matmul_abT(double* c, const double* a, const double* b,
                           std::size_t m, std::size_t kk, std::size_t n) {
  // Dot products over k with four partial accumulators (the one kernel
  // whose reduction order differs from scalar; see header contract).
  const std::size_t k16 = kk & ~std::size_t(15);
  const std::size_t k4 = kk & ~std::size_t(3);
  for (std::size_t i = 0; i < m; ++i) {
    const double* ar = a + i * kk;
    double* cr = c + i * n;
    for (std::size_t j = 0; j < n; ++j) {
      const double* br = b + j * kk;
      __m256d acc0 = _mm256_setzero_pd();
      __m256d acc1 = _mm256_setzero_pd();
      __m256d acc2 = _mm256_setzero_pd();
      __m256d acc3 = _mm256_setzero_pd();
      std::size_t k = 0;
      for (; k < k16; k += 16) {
        acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(ar + k),
                               _mm256_loadu_pd(br + k), acc0);
        acc1 = _mm256_fmadd_pd(_mm256_loadu_pd(ar + k + 4),
                               _mm256_loadu_pd(br + k + 4), acc1);
        acc2 = _mm256_fmadd_pd(_mm256_loadu_pd(ar + k + 8),
                               _mm256_loadu_pd(br + k + 8), acc2);
        acc3 = _mm256_fmadd_pd(_mm256_loadu_pd(ar + k + 12),
                               _mm256_loadu_pd(br + k + 12), acc3);
      }
      for (; k < k4; k += 4) {
        acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(ar + k),
                               _mm256_loadu_pd(br + k), acc0);
      }
      __m256d acc = _mm256_add_pd(_mm256_add_pd(acc0, acc1),
                                  _mm256_add_pd(acc2, acc3));
      __m128d lo = _mm256_castpd256_pd128(acc);
      __m128d hi = _mm256_extractf128_pd(acc, 1);
      __m128d sum2 = _mm_add_pd(lo, hi);
      double s = _mm_cvtsd_f64(_mm_add_sd(sum2, _mm_unpackhi_pd(sum2, sum2)));
      for (; k < kk; ++k) s += ar[k] * br[k];
      cr[j] = s;
    }
  }
}

MECSC_AVX2 void matmul_aTb(double* c, const double* a, const double* b,
                           std::size_t m, std::size_t kk, std::size_t n) {
  // Rank-1 updates in the scalar order (k outer), j-vectorized.
  const std::size_t n4 = n & ~std::size_t(3);
  for (std::size_t k = 0; k < kk; ++k) {
    const double* ar = a + k * m;
    const double* br = b + k * n;
    for (std::size_t i = 0; i < m; ++i) {
      const double aki = ar[i];
      if (aki == 0.0) continue;
      double* cr = c + i * n;
      const __m256d va = _mm256_set1_pd(aki);
      std::size_t j = 0;
      for (; j < n4; j += 4) {
        _mm256_storeu_pd(cr + j, _mm256_fmadd_pd(va, _mm256_loadu_pd(br + j),
                                                 _mm256_loadu_pd(cr + j)));
      }
      for (; j < n; ++j) cr[j] += aki * br[j];
    }
  }
}

MECSC_AVX2 void add(double* out, const double* a, const double* b,
                    std::size_t n) {
  assert_aligned(out), assert_aligned(a), assert_aligned(b);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_store_pd(out + i,
                    _mm256_add_pd(_mm256_load_pd(a + i), _mm256_load_pd(b + i)));
  }
  for (; i < n; ++i) out[i] = a[i] + b[i];
}

MECSC_AVX2 void sub(double* out, const double* a, const double* b,
                    std::size_t n) {
  assert_aligned(out), assert_aligned(a), assert_aligned(b);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_store_pd(out + i,
                    _mm256_sub_pd(_mm256_load_pd(a + i), _mm256_load_pd(b + i)));
  }
  for (; i < n; ++i) out[i] = a[i] - b[i];
}

MECSC_AVX2 void mul(double* out, const double* a, const double* b,
                    std::size_t n) {
  assert_aligned(out), assert_aligned(a), assert_aligned(b);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_store_pd(out + i,
                    _mm256_mul_pd(_mm256_load_pd(a + i), _mm256_load_pd(b + i)));
  }
  for (; i < n; ++i) out[i] = a[i] * b[i];
}

MECSC_AVX2 void scale(double* out, const double* a, double s, std::size_t n) {
  assert_aligned(out), assert_aligned(a);
  const __m256d vs = _mm256_set1_pd(s);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_store_pd(out + i, _mm256_mul_pd(vs, _mm256_load_pd(a + i)));
  }
  for (; i < n; ++i) out[i] = s * a[i];
}

MECSC_AVX2 void sigmoid(double* out, const double* a, std::size_t n) {
  assert_aligned(out), assert_aligned(a);
  std::size_t i = 0;
  // Four independent streams per iteration: the degree-13 Horner chain
  // in exp_pd and the final division are latency-bound, so interleaving
  // is what buys the throughput (the per-lane arithmetic is unchanged).
  for (; i + 16 <= n; i += 16) {
    __m256d r0 = sigmoid_pd(_mm256_load_pd(a + i));
    __m256d r1 = sigmoid_pd(_mm256_load_pd(a + i + 4));
    __m256d r2 = sigmoid_pd(_mm256_load_pd(a + i + 8));
    __m256d r3 = sigmoid_pd(_mm256_load_pd(a + i + 12));
    _mm256_store_pd(out + i, r0);
    _mm256_store_pd(out + i + 4, r1);
    _mm256_store_pd(out + i + 8, r2);
    _mm256_store_pd(out + i + 12, r3);
  }
  for (; i + 4 <= n; i += 4) {
    _mm256_store_pd(out + i, sigmoid_pd(_mm256_load_pd(a + i)));
  }
  if (i < n) {
    // Tail through the same lane-wise polynomial via a padded vector, so
    // an element's value never depends on its position in the buffer —
    // that is what keeps batched GAN inference bit-identical to the
    // sequential path (a batch×1 head output is all tail at batch 1).
    alignas(32) double buf[4] = {0.0, 0.0, 0.0, 0.0};
    for (std::size_t j = i; j < n; ++j) buf[j - i] = a[j];
    _mm256_store_pd(buf, sigmoid_pd(_mm256_load_pd(buf)));
    for (std::size_t j = i; j < n; ++j) out[j] = buf[j - i];
  }
}

MECSC_AVX2 void tanh(double* out, const double* a, std::size_t n) {
  assert_aligned(out), assert_aligned(a);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {  // interleaved: see sigmoid
    __m256d r0 = tanh_pd(_mm256_load_pd(a + i));
    __m256d r1 = tanh_pd(_mm256_load_pd(a + i + 4));
    _mm256_store_pd(out + i, r0);
    _mm256_store_pd(out + i + 4, r1);
  }
  for (; i + 4 <= n; i += 4) {
    _mm256_store_pd(out + i, tanh_pd(_mm256_load_pd(a + i)));
  }
  if (i < n) {  // padded-vector tail: position-independent, see sigmoid
    alignas(32) double buf[4] = {0.0, 0.0, 0.0, 0.0};
    for (std::size_t j = i; j < n; ++j) buf[j - i] = a[j];
    _mm256_store_pd(buf, tanh_pd(_mm256_load_pd(buf)));
    for (std::size_t j = i; j < n; ++j) out[j] = buf[j - i];
  }
}

MECSC_AVX2 void relu(double* out, const double* a, std::size_t n) {
  assert_aligned(out), assert_aligned(a);
  const __m256d zero = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    // maxpd returns the SECOND operand on unordered, so max(x, 0) maps
    // NaN → 0.0 exactly like the scalar std::max(0.0, x) reference.
    _mm256_store_pd(out + i, _mm256_max_pd(_mm256_load_pd(a + i), zero));
  }
  for (; i < n; ++i) out[i] = a[i] > 0.0 ? a[i] : 0.0;
}

MECSC_AVX2 void sigmoid_grad(double* out, const double* g, const double* y,
                             std::size_t n) {
  assert_aligned(out), assert_aligned(g), assert_aligned(y);
  const __m256d one = _mm256_set1_pd(1.0);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256d yv = _mm256_load_pd(y + i);
    __m256d d = _mm256_mul_pd(yv, _mm256_sub_pd(one, yv));
    _mm256_store_pd(out + i, _mm256_mul_pd(_mm256_load_pd(g + i), d));
  }
  for (; i < n; ++i) out[i] = g[i] * (y[i] * (1.0 - y[i]));
}

MECSC_AVX2 void tanh_grad(double* out, const double* g, const double* y,
                          std::size_t n) {
  assert_aligned(out), assert_aligned(g), assert_aligned(y);
  const __m256d one = _mm256_set1_pd(1.0);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256d yv = _mm256_load_pd(y + i);
    __m256d d = _mm256_sub_pd(one, _mm256_mul_pd(yv, yv));
    _mm256_store_pd(out + i, _mm256_mul_pd(_mm256_load_pd(g + i), d));
  }
  for (; i < n; ++i) out[i] = g[i] * (1.0 - y[i] * y[i]);
}

MECSC_AVX2 void relu_grad(double* out, const double* g, const double* x,
                          std::size_t n) {
  assert_aligned(out), assert_aligned(g), assert_aligned(x);
  const __m256d zero = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    // Scalar reference zeroes only where x <= 0 (NaN x keeps g), so the
    // mask is "not less-or-equal, unordered true".
    __m256d mask = _mm256_cmp_pd(_mm256_load_pd(x + i), zero, _CMP_NLE_UQ);
    _mm256_store_pd(out + i, _mm256_and_pd(_mm256_load_pd(g + i), mask));
  }
  for (; i < n; ++i) out[i] = x[i] <= 0.0 ? 0.0 : g[i];
}

MECSC_AVX2 void axpy(double* y, const double* x, double s, std::size_t n) {
  assert_aligned(y), assert_aligned(x);
  // Deliberately mul+add rather than FMA: axpy streams three buffers and
  // is memory-bound, so fusing buys nothing — while the separate rounding
  // keeps it bit-exact with the scalar reference (this TU builds with
  // -ffp-contract=off so the compiler cannot re-fuse it).
  const __m256d vs = _mm256_set1_pd(s);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_store_pd(
        y + i, _mm256_add_pd(_mm256_load_pd(y + i),
                             _mm256_mul_pd(vs, _mm256_load_pd(x + i))));
  }
  for (; i < n; ++i) y[i] += s * x[i];
}

}  // namespace mecsc::nn::avx2

#endif  // MECSC_SIMD_AVX2
