#include "nn/autodiff.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "common/error.h"

namespace mecsc::nn {

void Node::accumulate(const Matrix& g) {
  if (!requires_grad && parents.empty()) return;
  if (grad.empty()) grad = Matrix(value.rows(), value.cols());
  MECSC_CHECK_MSG(g.rows() == value.rows() && g.cols() == value.cols(),
                  "gradient shape mismatch");
  grad.add_scaled(g, 1.0);
}

void Node::zero_grad() { grad = Matrix(); }

Var constant(Matrix value) {
  return std::make_shared<Node>(std::move(value), /*requires_grad=*/false);
}

Var parameter(Matrix value) {
  return std::make_shared<Node>(std::move(value), /*requires_grad=*/true);
}

namespace {

thread_local int no_grad_depth = 0;

/// A node participates in backprop if it is a parameter or any ancestor is.
bool needs_grad(const Var& v) {
  return v->requires_grad || !v->parents.empty();
}

Var make_op(Matrix value, std::vector<Var> parents,
            std::function<void(Node&)> backward_fn) {
  bool any = no_grad_depth == 0;
  if (any) {
    any = false;
    for (const auto& p : parents) any = any || needs_grad(p);
  }
  auto node = std::make_shared<Node>(std::move(value), /*requires_grad=*/false);
  if (any) {
    node->parents = std::move(parents);
    node->backward_fn = std::move(backward_fn);
  }
  return node;
}

void topo_sort(const Var& root, std::vector<Node*>& order) {
  // Iterative DFS; recursion would overflow on long unrolled sequences.
  std::unordered_set<Node*> visited;
  std::vector<std::pair<Node*, std::size_t>> stack{{root.get(), 0}};
  while (!stack.empty()) {
    auto& [node, next_child] = stack.back();
    if (next_child == 0 && visited.count(node)) {
      stack.pop_back();
      continue;
    }
    if (next_child < node->parents.size()) {
      Node* child = node->parents[next_child].get();
      ++next_child;
      if (!visited.count(child)) stack.emplace_back(child, 0);
      continue;
    }
    visited.insert(node);
    order.push_back(node);
    stack.pop_back();
  }
}

/// Thread-local scratch arena for backward closures (DESIGN.md
/// "Performance"). Gradients are staged in pool slots and copied into the
/// parents' accumulators before the closure returns, so slots are only
/// held transiently and training loops stop allocating a fresh Matrix per
/// op once the pool is warm. One pool per thread keeps parallel
/// replication workers race-free.
MatrixPool& scratch() {
  thread_local MatrixPool pool;
  return pool;
}

}  // namespace

NoGradGuard::NoGradGuard() { ++no_grad_depth; }
NoGradGuard::~NoGradGuard() { --no_grad_depth; }
bool NoGradGuard::active() { return no_grad_depth > 0; }

void backward(const Var& root) {
  MECSC_CHECK_MSG(root->value.rows() == 1 && root->value.cols() == 1,
                  "backward() requires a scalar (1x1) root");
  std::vector<Node*> order;
  topo_sort(root, order);
  root->accumulate(Matrix(1, 1, 1.0));
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    Node* n = *it;
    if (n->backward_fn && !n->grad.empty()) n->backward_fn(*n);
  }
}

Var op_matmul(const Var& a, const Var& b) {
  Matrix value = matmul(a->value, b->value);
  return make_op(std::move(value), {a, b}, [a, b](Node& n) {
    // dA = dC·Bᵀ, dB = Aᵀ·dC — transpose-free kernels into pooled scratch.
    Matrix& g = scratch().get(0);
    matmul_abT_into(g, n.grad, b->value);
    a->accumulate(g);
    matmul_aTb_into(g, a->value, n.grad);
    b->accumulate(g);
  });
}

Var op_add(const Var& a, const Var& b) {
  return make_op(add(a->value, b->value), {a, b}, [a, b](Node& n) {
    a->accumulate(n.grad);
    b->accumulate(n.grad);
  });
}

Var op_sub(const Var& a, const Var& b) {
  return make_op(sub(a->value, b->value), {a, b}, [a, b](Node& n) {
    a->accumulate(n.grad);
    Matrix& g = scratch().get(0);
    scale_into(g, n.grad, -1.0);
    b->accumulate(g);
  });
}

Var op_hadamard(const Var& a, const Var& b) {
  return make_op(hadamard(a->value, b->value), {a, b}, [a, b](Node& n) {
    Matrix& g = scratch().get(0);
    hadamard_into(g, n.grad, b->value);
    a->accumulate(g);
    hadamard_into(g, n.grad, a->value);
    b->accumulate(g);
  });
}

Var op_add_row(const Var& a, const Var& bias) {
  return make_op(add_row_broadcast(a->value, bias->value), {a, bias},
                 [a, bias](Node& n) {
                   a->accumulate(n.grad);
                   Matrix& g = scratch().get(0);
                   col_sums_into(g, n.grad);
                   bias->accumulate(g);
                 });
}

Var op_scale(const Var& a, double s) {
  return make_op(scale(a->value, s), {a}, [a, s](Node& n) {
    Matrix& g = scratch().get(0);
    scale_into(g, n.grad, s);
    a->accumulate(g);
  });
}

Var op_sigmoid(const Var& a) {
  Matrix y = map_sigmoid(a->value);
  Var node = make_op(y, {a}, nullptr);
  if (!node->parents.empty()) {
    Matrix yv = node->value;  // captured copy for the backward closure
    node->backward_fn = [a, yv](Node& n) {
      Matrix& d = scratch().get(0);
      sigmoid_grad_into(d, n.grad, yv);
      a->accumulate(d);
    };
  }
  return node;
}

Var op_tanh(const Var& a) {
  Matrix y = map_tanh(a->value);
  Var node = make_op(y, {a}, nullptr);
  if (!node->parents.empty()) {
    Matrix yv = node->value;
    node->backward_fn = [a, yv](Node& n) {
      Matrix& d = scratch().get(0);
      tanh_grad_into(d, n.grad, yv);
      a->accumulate(d);
    };
  }
  return node;
}

Var op_relu(const Var& a) {
  Matrix y = map_relu(a->value);
  return make_op(y, {a}, [a](Node& n) {
    Matrix& d = scratch().get(0);
    relu_grad_into(d, n.grad, a->value);
    a->accumulate(d);
  });
}

Var op_concat_cols(const Var& a, const Var& b) {
  std::size_t ac = a->value.cols();
  return make_op(concat_cols(a->value, b->value), {a, b}, [a, b, ac](Node& n) {
    Matrix& g = scratch().get(0);
    const std::size_t rows = n.grad.rows(), cols = n.grad.cols();
    g.resize(rows, ac);
    for (std::size_t r = 0; r < rows; ++r) {
      for (std::size_t j = 0; j < ac; ++j) g.at(r, j) = n.grad.at(r, j);
    }
    a->accumulate(g);
    g.resize(rows, cols - ac);
    for (std::size_t r = 0; r < rows; ++r) {
      for (std::size_t j = ac; j < cols; ++j) g.at(r, j - ac) = n.grad.at(r, j);
    }
    b->accumulate(g);
  });
}

Var op_slice_cols(const Var& a, std::size_t begin, std::size_t end) {
  return make_op(slice_cols(a->value, begin, end), {a}, [a, begin, end](Node& n) {
    Matrix& d = scratch().get(0);
    d.resize(a->value.rows(), a->value.cols());
    d.fill(0.0);
    for (std::size_t r = 0; r < d.rows(); ++r) {
      for (std::size_t j = begin; j < end; ++j) {
        d.at(r, j) = n.grad.at(r, j - begin);
      }
    }
    a->accumulate(d);
  });
}

Var op_mean_all(const Var& a) {
  Matrix value(1, 1, a->value.mean());
  double inv_n = 1.0 / static_cast<double>(a->value.size());
  return make_op(std::move(value), {a}, [a, inv_n](Node& n) {
    Matrix& d = scratch().get(0);
    d.resize(a->value.rows(), a->value.cols());
    d.fill(n.grad[0] * inv_n);
    a->accumulate(d);
  });
}

Var loss_mse(const Var& pred, const Var& target) {
  MECSC_CHECK_MSG(pred->value.rows() == target->value.rows() &&
                      pred->value.cols() == target->value.cols(),
                  "MSE shape mismatch");
  Matrix diff = sub(pred->value, target->value);
  double n = static_cast<double>(diff.size());
  double loss = 0.0;
  for (std::size_t i = 0; i < diff.size(); ++i) loss += diff[i] * diff[i];
  loss /= n;
  return make_op(Matrix(1, 1, loss), {pred, target}, [pred, target, n](Node& node) {
    Matrix& d = scratch().get(0);
    sub_into(d, pred->value, target->value);
    double s = 2.0 * node.grad[0] / n;
    for (std::size_t i = 0; i < d.size(); ++i) d[i] *= s;
    pred->accumulate(d);
    d.scale_in_place(-1.0);
    target->accumulate(d);
  });
}

Var loss_bce_with_logits(const Var& logits, const Var& targets) {
  MECSC_CHECK_MSG(logits->value.rows() == targets->value.rows() &&
                      logits->value.cols() == targets->value.cols(),
                  "BCE shape mismatch");
  const Matrix& x = logits->value;
  const Matrix& t = targets->value;
  double n = static_cast<double>(x.size());
  double loss = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    // softplus(x) - x*t, stable for both signs of x.
    double xv = x[i];
    double sp = xv > 0.0 ? xv + std::log1p(std::exp(-xv)) : std::log1p(std::exp(xv));
    loss += sp - xv * t[i];
  }
  loss /= n;
  return make_op(Matrix(1, 1, loss), {logits, targets}, [logits, targets, n](Node& node) {
    Matrix& d = scratch().get(0);
    map_sigmoid_into(d, logits->value);
    d.add_scaled(targets->value, -1.0);
    double s = node.grad[0] / n;
    for (std::size_t i = 0; i < d.size(); ++i) d[i] *= s;
    logits->accumulate(d);
  });
}

Var loss_softmax_cross_entropy(const Var& logits, const Var& targets) {
  MECSC_CHECK_MSG(logits->value.rows() == targets->value.rows() &&
                      logits->value.cols() == targets->value.cols(),
                  "cross-entropy shape mismatch");
  Matrix p = softmax_rows(logits->value);
  double rows = static_cast<double>(p.rows());
  double loss = 0.0;
  for (std::size_t i = 0; i < p.size(); ++i) {
    if (targets->value[i] > 0.0) {
      loss -= targets->value[i] * std::log(std::max(p[i], 1e-12));
    }
  }
  loss /= rows;
  return make_op(Matrix(1, 1, loss), {logits, targets},
                 [logits, targets, p, rows](Node& node) {
                   Matrix& d = scratch().get(0);
                   d = p;
                   d.add_scaled(targets->value, -1.0);
                   double s = node.grad[0] / rows;
                   for (std::size_t i = 0; i < d.size(); ++i) d[i] *= s;
                   logits->accumulate(d);
                 });
}

}  // namespace mecsc::nn
