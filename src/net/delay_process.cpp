#include "net/delay_process.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace mecsc::net {

UniformDelayProcess::UniformDelayProcess(double lo, double hi) : lo_(lo), hi_(hi) {
  MECSC_CHECK_MSG(0.0 <= lo && lo <= hi, "need 0 <= lo <= hi");
}

double UniformDelayProcess::sample(common::Rng& rng) {
  return rng.uniform(lo_, hi_);
}

Ar1DelayProcess::Ar1DelayProcess(double mean, double phi, double sigma,
                                 double lo, double hi)
    : mean_(mean), phi_(phi), sigma_(sigma), lo_(lo), hi_(hi), last_(mean) {
  MECSC_CHECK_MSG(0.0 <= lo && lo <= mean && mean <= hi, "need lo <= mean <= hi");
  MECSC_CHECK_MSG(std::abs(phi) < 1.0, "AR(1) requires |phi| < 1");
  MECSC_CHECK_MSG(sigma >= 0.0, "negative sigma");
}

double Ar1DelayProcess::sample(common::Rng& rng) {
  double next = mean_ + phi_ * (last_ - mean_) + rng.normal(0.0, sigma_);
  last_ = std::clamp(next, lo_, hi_);
  return last_;
}

SpikyDelayProcess::SpikyDelayProcess(std::unique_ptr<DelayProcess> base,
                                     double spike_prob, double spike_factor)
    : base_(std::move(base)), spike_prob_(spike_prob), spike_factor_(spike_factor) {
  MECSC_CHECK_MSG(base_ != nullptr, "null base process");
  MECSC_CHECK_MSG(0.0 <= spike_prob && spike_prob <= 1.0, "spike prob out of [0,1]");
  MECSC_CHECK_MSG(spike_factor >= 1.0, "spike factor must be >= 1");
}

double SpikyDelayProcess::sample(common::Rng& rng) {
  double d = base_->sample(rng);
  if (rng.bernoulli(spike_prob_)) d *= spike_factor_;
  return d;
}

double SpikyDelayProcess::mean() const {
  return base_->mean() * (1.0 + spike_prob_ * (spike_factor_ - 1.0));
}

NetworkDelayModel::NetworkDelayModel(
    std::vector<std::unique_ptr<DelayProcess>> processes)
    : processes_(std::move(processes)) {
  for (const auto& p : processes_) {
    MECSC_CHECK_MSG(p != nullptr, "null delay process");
  }
}

std::vector<double> NetworkDelayModel::realize(common::Rng& rng) {
  std::vector<double> d(processes_.size());
  for (std::size_t i = 0; i < processes_.size(); ++i) d[i] = processes_[i]->sample(rng);
  return d;
}

std::vector<double> NetworkDelayModel::true_means() const {
  std::vector<double> m(processes_.size());
  for (std::size_t i = 0; i < processes_.size(); ++i) m[i] = processes_[i]->mean();
  return m;
}

double NetworkDelayModel::global_min() const {
  double lo = std::numeric_limits<double>::infinity();
  for (const auto& p : processes_) lo = std::min(lo, p->min_value());
  return processes_.empty() ? 0.0 : lo;
}

double NetworkDelayModel::global_max() const {
  double hi = 0.0;
  for (const auto& p : processes_) hi = std::max(hi, p->max_value());
  return hi;
}

NetworkDelayModel make_delay_model(const Topology& topology, DelayModelKind kind,
                                   common::Rng& rng) {
  std::vector<std::unique_ptr<DelayProcess>> processes;
  processes.reserve(topology.num_stations());
  for (const auto& bs : topology.stations()) {
    TierProfile p = tier_profile(bs.tier);
    double half_width = 0.5 * (p.delay_hi_ms - p.delay_lo_ms);
    double lo = std::max(0.1, bs.mean_unit_delay_ms - half_width);
    double hi = bs.mean_unit_delay_ms + half_width;
    switch (kind) {
      case DelayModelKind::kUniform:
        processes.push_back(std::make_unique<UniformDelayProcess>(lo, hi));
        break;
      case DelayModelKind::kAr1:
        processes.push_back(std::make_unique<Ar1DelayProcess>(
            bs.mean_unit_delay_ms, 0.7, half_width * 0.4, lo, hi));
        break;
      case DelayModelKind::kSpiky:
        processes.push_back(std::make_unique<SpikyDelayProcess>(
            std::make_unique<UniformDelayProcess>(lo, hi),
            rng.uniform(0.02, 0.08), 3.0));
        break;
    }
  }
  return NetworkDelayModel(std::move(processes));
}

}  // namespace mecsc::net
