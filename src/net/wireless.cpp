#include "net/wireless.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.h"

namespace mecsc::net {

WirelessModel::WirelessModel(WirelessParams params) : params_(params) {
  MECSC_CHECK_MSG(params_.system_bandwidth_hz > 0.0, "bandwidth must be > 0");
  MECSC_CHECK_MSG(params_.path_loss_exponent > 0.0, "path loss exponent must be > 0");
  MECSC_CHECK_MSG(params_.max_spectral_efficiency > 0.0,
                  "spectral efficiency cap must be > 0");
  MECSC_CHECK_MSG(params_.bits_per_data_unit > 0.0, "bits per unit must be > 0");
}

double WirelessModel::path_loss_db(double distance_m) const {
  MECSC_CHECK_MSG(distance_m >= 0.0, "negative distance");
  double d = std::max(distance_m, 1.0);
  return params_.reference_loss_db +
         10.0 * params_.path_loss_exponent * std::log10(d);
}

double WirelessModel::snr(const BaseStation& bs, double distance_m,
                          double bandwidth_share) const {
  MECSC_CHECK_MSG(bandwidth_share > 0.0 && bandwidth_share <= 1.0,
                  "bandwidth share out of (0,1]");
  double tx_dbm = 10.0 * std::log10(bs.transmit_power_w * 1e3);
  double rx_dbm = tx_dbm - path_loss_db(distance_m);
  double noise_dbm =
      params_.noise_dbm_per_hz + params_.noise_figure_db +
      10.0 * std::log10(params_.system_bandwidth_hz * bandwidth_share);
  return std::pow(10.0, (rx_dbm - noise_dbm) / 10.0);
}

double WirelessModel::rate_bps(const BaseStation& bs, double distance_m,
                               double bandwidth_share) const {
  double se = std::log2(1.0 + snr(bs, distance_m, bandwidth_share));
  se = std::min(se, params_.max_spectral_efficiency);  // 64QAM ceiling
  return params_.system_bandwidth_hz * bandwidth_share * se;
}

double WirelessModel::transmission_delay_ms(const BaseStation& bs,
                                            double distance_m, double data_units,
                                            double bandwidth_share) const {
  MECSC_CHECK_MSG(data_units >= 0.0, "negative data volume");
  double rate = rate_bps(bs, distance_m, bandwidth_share);
  if (rate <= 1e-9) return std::numeric_limits<double>::infinity();
  return data_units * params_.bits_per_data_unit / rate * 1e3;
}

}  // namespace mecsc::net
