#ifndef MECSC_NET_TOPOLOGY_H
#define MECSC_NET_TOPOLOGY_H

#include <cstddef>
#include <limits>
#include <vector>

#include "net/base_station.h"

namespace mecsc::net {

/// An undirected link between two base stations.
struct Link {
  std::size_t a = 0;
  std::size_t b = 0;
  double latency_ms = 0.0;     // propagation + forwarding latency
  double bandwidth_mbps = 0.0;
  bool bottleneck = false;     // marked for AS1755-like real topologies
};

/// The 5G heterogeneous MEC network G = (BS, E) (paper §III.A).
///
/// Stores the base stations, the inter-station links and, lazily, the
/// all-pairs shortest-path latency matrix used for the network-access
/// component of a request's delay when it is served away from its home
/// station. (The paper's formal objective only has the processing and
/// instantiation terms; its AS1755 experiment attributes the larger gap
/// to bottleneck links, which is exactly what this latency matrix makes
/// visible — see DESIGN.md §5.)
class Topology {
 public:
  Topology() = default;
  explicit Topology(std::vector<BaseStation> stations);

  std::size_t num_stations() const noexcept { return stations_.size(); }
  std::size_t num_links() const noexcept { return links_.size(); }

  const BaseStation& station(std::size_t i) const { return stations_.at(i); }
  BaseStation& station(std::size_t i) { return stations_.at(i); }
  const std::vector<BaseStation>& stations() const noexcept { return stations_; }
  const std::vector<Link>& links() const noexcept { return links_; }

  /// Adds an undirected link; parallel links and self-loops are rejected.
  void add_link(Link link);

  /// True if an a-b link already exists (order-insensitive).
  bool has_link(std::size_t a, std::size_t b) const;

  const std::vector<std::size_t>& neighbors(std::size_t i) const {
    return adjacency_.at(i);
  }

  /// Station ids of the given tier.
  std::vector<std::size_t> stations_of_tier(Tier tier) const;

  /// Ids of stations whose coverage disk contains (x, y). The paper's
  /// Pri_GD baseline prioritises users by this count.
  std::vector<std::size_t> stations_covering(double x, double y) const;

  /// Whole-graph connectivity (BFS from node 0).
  bool is_connected() const;

  /// Shortest-path latency between stations (ms); 0 on the diagonal,
  /// +inf for disconnected pairs. Computed on first use (Dijkstra from
  /// every node) and cached; `add_link` invalidates the cache.
  double path_latency_ms(std::size_t from, std::size_t to) const;

  /// Sum of computing capacities, used for the feasibility precondition
  /// (total demand must fit, §III.E).
  double total_capacity_mhz() const;

  /// Id of the largest-capacity station (0 for an empty topology). The
  /// fault planner keeps this station alive whenever churn would take
  /// the whole network down, and feasibility checks use it as the
  /// single-host bound.
  std::size_t largest_station() const;

  /// Marks the `count` highest-latency links as bottlenecks and scales
  /// their latency by `factor` (used by the AS1755-like generator).
  void mark_bottlenecks(std::size_t count, double factor);

 private:
  void compute_all_pairs() const;

  std::vector<BaseStation> stations_;
  std::vector<Link> links_;
  std::vector<std::vector<std::size_t>> adjacency_;
  // adjacency_edge_[i] holds indices into links_ parallel to adjacency_[i].
  std::vector<std::vector<std::size_t>> adjacency_edge_;
  mutable std::vector<std::vector<double>> latency_cache_;
  mutable bool cache_valid_ = false;
};

}  // namespace mecsc::net

#endif  // MECSC_NET_TOPOLOGY_H
