#ifndef MECSC_NET_GENERATORS_H
#define MECSC_NET_GENERATORS_H

#include <cstddef>

#include "common/rng.h"
#include "net/topology.h"

namespace mecsc::net {

/// Parameters of the GT-ITM-like synthetic topology generator
/// (paper §VI.A: pairwise connection probability 0.1; macro stations in
/// cell centres with femto/micro stations placed inside their radii).
struct GtItmParams {
  std::size_t num_stations = 100;
  /// Fractions of each tier; femto gets the remainder. The paper gives
  /// only "macro, micro, and femto" without a mix, so we follow the
  /// common dense-small-cell deployment: few macros, more micros, mostly
  /// femtos.
  double macro_fraction = 0.05;
  double micro_fraction = 0.15;
  /// Probability that any pair of stations is connected by a link.
  double edge_probability = 0.1;
  /// Link latency range (ms) for wired backhaul between stations.
  double link_latency_lo_ms = 0.5;
  double link_latency_hi_ms = 3.0;
};

/// Generates a connected GT-ITM-like topology. Every pair of stations is
/// linked with probability `edge_probability`; a deterministic spanning
/// pass then guarantees connectivity (each non-first station links to a
/// random earlier one if the Bernoulli pass left it isolated from the
/// rest). Tier attributes (capacity, bandwidth, radius, mean unit delay)
/// are drawn from `tier_profile` ranges.
Topology generate_gtitm_like(const GtItmParams& params, common::Rng& rng);

/// Parameters of the AS1755-like "real" topology.
struct As1755Params {
  /// Rocketfuel's AS1755 (EBONE) backbone has 172 routers; we default to
  /// the same node count so Fig. 5/7 runs at the paper's real-network
  /// scale.
  std::size_t num_stations = 172;
  /// Preferential-attachment edges per new node (yields a heavy-tailed
  /// degree distribution like measured router topologies).
  std::size_t attachment_degree = 2;
  /// Fraction of links marked as bottlenecks, and the latency multiplier
  /// applied to them. Real AS-level maps concentrate traffic on few
  /// high-latency transit links; this reproduces the "more bottleneck
  /// links than synthetic" property the paper cites for Fig. 5.
  double bottleneck_fraction = 0.08;
  double bottleneck_factor = 6.0;
  double link_latency_lo_ms = 0.5;
  double link_latency_hi_ms = 3.0;
};

/// Generates an AS1755-like topology: Barabási–Albert preferential
/// attachment for the link structure, tiers assigned by degree (highest
/// degree nodes become macros), and the highest-latency links scaled up
/// and marked as bottlenecks.
Topology generate_as1755_like(const As1755Params& params, common::Rng& rng);

/// Convenience: AS1755-like with a different station count (the Fig. 7
/// size sweep uses 50..300 stations of the same "real" family).
Topology generate_as1755_like_sized(std::size_t num_stations, common::Rng& rng);

}  // namespace mecsc::net

#endif  // MECSC_NET_GENERATORS_H
