#include "net/generators.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/error.h"

namespace mecsc::net {

namespace {

/// Fills the tier-dependent attributes of a station in place.
void assign_tier_attributes(BaseStation& bs, Tier tier, common::Rng& rng) {
  TierProfile p = tier_profile(tier);
  bs.tier = tier;
  bs.radius_m = p.radius_m;
  bs.transmit_power_w = p.transmit_power_w;
  bs.capacity_mhz = rng.uniform(p.capacity_lo_mhz, p.capacity_hi_mhz);
  bs.bandwidth_mbps = rng.uniform(p.bandwidth_lo_mbps, p.bandwidth_hi_mbps);
  bs.mean_unit_delay_ms = rng.uniform(p.delay_lo_ms, p.delay_hi_ms);
}

/// Computes tier counts from fractions, guaranteeing at least one macro.
struct TierCounts {
  std::size_t macro;
  std::size_t micro;
  std::size_t femto;
};

TierCounts tier_counts(std::size_t n, double macro_fraction,
                       double micro_fraction) {
  auto macro = static_cast<std::size_t>(std::round(macro_fraction * static_cast<double>(n)));
  auto micro = static_cast<std::size_t>(std::round(micro_fraction * static_cast<double>(n)));
  macro = std::max<std::size_t>(macro, 1);
  if (macro + micro > n) micro = n - macro;
  return {macro, micro, n - macro - micro};
}

/// Connects the graph: links any station unreachable from station 0 to a
/// uniformly random already-reachable one.
void ensure_connected(Topology& topo, common::Rng& rng, double lat_lo,
                      double lat_hi, double bw_lo, double bw_hi) {
  const std::size_t n = topo.num_stations();
  std::vector<bool> reach(n, false);
  std::vector<std::size_t> frontier{0};
  reach[0] = true;
  std::vector<std::size_t> reachable{0};
  while (!frontier.empty()) {
    std::size_t u = frontier.back();
    frontier.pop_back();
    for (std::size_t v : topo.neighbors(u)) {
      if (!reach[v]) {
        reach[v] = true;
        reachable.push_back(v);
        frontier.push_back(v);
      }
    }
  }
  for (std::size_t v = 0; v < n; ++v) {
    if (reach[v]) continue;
    std::size_t anchor = reachable[rng.index(reachable.size())];
    topo.add_link(Link{anchor, v, rng.uniform(lat_lo, lat_hi),
                       rng.uniform(bw_lo, bw_hi), false});
    // v's whole component becomes reachable.
    reach[v] = true;
    reachable.push_back(v);
    frontier.push_back(v);
    while (!frontier.empty()) {
      std::size_t u = frontier.back();
      frontier.pop_back();
      for (std::size_t w : topo.neighbors(u)) {
        if (!reach[w]) {
          reach[w] = true;
          reachable.push_back(w);
          frontier.push_back(w);
        }
      }
    }
  }
}

}  // namespace

Topology generate_gtitm_like(const GtItmParams& params, common::Rng& rng) {
  MECSC_CHECK_MSG(params.num_stations >= 2, "need at least 2 stations");
  MECSC_CHECK_MSG(params.edge_probability >= 0.0 && params.edge_probability <= 1.0,
                  "edge probability out of [0,1]");
  const std::size_t n = params.num_stations;
  TierCounts counts = tier_counts(n, params.macro_fraction, params.micro_fraction);

  std::vector<BaseStation> stations(n);
  // Macros sit on a coarse grid of cell centres; each covers a disk of
  // radius 100 m in which its small cells are dropped (paper §VI.A:
  // "macro base station is deployed in the center while the femto and
  // micro base stations are randomly deployed within the transmission
  // region of the macro").
  auto grid = static_cast<std::size_t>(std::ceil(std::sqrt(static_cast<double>(counts.macro))));
  const double cell = 220.0;  // metres between macro centres (disjoint-ish cells)
  std::vector<std::pair<double, double>> macro_centers;
  for (std::size_t i = 0; i < counts.macro; ++i) {
    double cx = static_cast<double>(i % grid) * cell + cell / 2.0;
    double cy = static_cast<double>(i / grid) * cell + cell / 2.0;
    macro_centers.emplace_back(cx, cy);
  }

  for (std::size_t i = 0; i < n; ++i) {
    BaseStation& bs = stations[i];
    bs.id = i;
    if (i < counts.macro) {
      assign_tier_attributes(bs, Tier::kMacro, rng);
      bs.x_m = macro_centers[i].first;
      bs.y_m = macro_centers[i].second;
    } else {
      Tier tier = (i < counts.macro + counts.micro) ? Tier::kMicro : Tier::kFemto;
      assign_tier_attributes(bs, tier, rng);
      const auto& [cx, cy] = macro_centers[rng.index(macro_centers.size())];
      double r = 100.0 * std::sqrt(rng.uniform());  // uniform over the disk
      double angle = rng.uniform(0.0, 2.0 * 3.14159265358979323846);
      bs.x_m = cx + r * std::cos(angle);
      bs.y_m = cy + r * std::sin(angle);
    }
  }

  Topology topo(std::move(stations));
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = a + 1; b < n; ++b) {
      if (rng.bernoulli(params.edge_probability)) {
        topo.add_link(Link{a, b,
                           rng.uniform(params.link_latency_lo_ms, params.link_latency_hi_ms),
                           rng.uniform(200.0, 1000.0), false});
      }
    }
  }
  ensure_connected(topo, rng, params.link_latency_lo_ms,
                   params.link_latency_hi_ms, 200.0, 1000.0);
  return topo;
}

Topology generate_as1755_like(const As1755Params& params, common::Rng& rng) {
  MECSC_CHECK_MSG(params.num_stations >= 3, "need at least 3 stations");
  MECSC_CHECK_MSG(params.attachment_degree >= 1, "attachment degree must be >= 1");
  const std::size_t n = params.num_stations;
  const std::size_t m0 = std::max<std::size_t>(params.attachment_degree + 1, 3);

  // Barabási–Albert preferential attachment over edge endpoints: the
  // repeated-endpoint list makes the probability of attaching to a node
  // proportional to its degree.
  std::vector<std::pair<std::size_t, std::size_t>> edges;
  std::vector<std::size_t> endpoints;
  for (std::size_t v = 1; v < std::min(m0, n); ++v) {
    edges.emplace_back(v - 1, v);
    endpoints.push_back(v - 1);
    endpoints.push_back(v);
  }
  for (std::size_t v = m0; v < n; ++v) {
    std::size_t added = 0;
    std::size_t guard = 0;
    std::vector<std::size_t> chosen;
    while (added < params.attachment_degree && guard < 64) {
      std::size_t u = endpoints[rng.index(endpoints.size())];
      ++guard;
      if (u == v || std::find(chosen.begin(), chosen.end(), u) != chosen.end())
        continue;
      chosen.push_back(u);
      edges.emplace_back(u, v);
      ++added;
    }
    for (std::size_t u : chosen) {
      endpoints.push_back(u);
      endpoints.push_back(v);
    }
  }

  // Degree determines the tier: the best-connected routers are the macro
  // stations of the MEC overlay.
  std::vector<std::size_t> degree(n, 0);
  for (const auto& [a, b] : edges) {
    ++degree[a];
    ++degree[b];
  }
  std::vector<std::size_t> by_degree(n);
  std::iota(by_degree.begin(), by_degree.end(), 0);
  std::sort(by_degree.begin(), by_degree.end(),
            [&](std::size_t a, std::size_t b) { return degree[a] > degree[b]; });
  TierCounts counts = tier_counts(n, 0.05, 0.15);

  std::vector<BaseStation> stations(n);
  for (std::size_t rank = 0; rank < n; ++rank) {
    std::size_t id = by_degree[rank];
    BaseStation& bs = stations[id];
    bs.id = id;
    Tier tier = rank < counts.macro ? Tier::kMacro
                : rank < counts.macro + counts.micro ? Tier::kMicro
                                                     : Tier::kFemto;
    assign_tier_attributes(bs, tier, rng);
    // Positions are only used for coverage queries; scatter uniformly.
    bs.x_m = rng.uniform(0.0, 1000.0);
    bs.y_m = rng.uniform(0.0, 1000.0);
  }
  // `stations` was filled by id already (constructor requires id order).
  Topology topo(std::move(stations));
  for (const auto& [a, b] : edges) {
    if (topo.has_link(a, b)) continue;
    topo.add_link(Link{a, b,
                       rng.uniform(params.link_latency_lo_ms, params.link_latency_hi_ms),
                       rng.uniform(200.0, 1000.0), false});
  }
  auto n_bottleneck = static_cast<std::size_t>(
      std::ceil(params.bottleneck_fraction * static_cast<double>(topo.num_links())));
  topo.mark_bottlenecks(n_bottleneck, params.bottleneck_factor);
  return topo;
}

Topology generate_as1755_like_sized(std::size_t num_stations, common::Rng& rng) {
  As1755Params params;
  params.num_stations = num_stations;
  return generate_as1755_like(params, rng);
}

}  // namespace mecsc::net
