#ifndef MECSC_NET_WIRELESS_H
#define MECSC_NET_WIRELESS_H

#include <cstddef>

#include "net/base_station.h"

namespace mecsc::net {

/// Radio parameters from the paper's experiment section (§VI.A): 20 MHz
/// system bandwidth, 64QAM modulation (so at most 6 bit/s/Hz of spectral
/// efficiency), per-tier transmit powers (40 W / 5 W / 0.1 W), plus
/// textbook log-distance path loss and thermal noise.
struct WirelessParams {
  double system_bandwidth_hz = 20e6;
  /// Thermal noise power spectral density (dBm/Hz).
  double noise_dbm_per_hz = -174.0;
  /// Receiver noise figure (dB).
  double noise_figure_db = 7.0;
  /// Log-distance path loss: PL(d) = reference_loss_db
  /// + 10·exponent·log10(max(d, 1 m)).
  double path_loss_exponent = 3.5;
  double reference_loss_db = 30.0;
  /// 64QAM caps spectral efficiency at 6 bit/s/Hz regardless of SNR.
  double max_spectral_efficiency = 6.0;
  /// Payload size of one demand data unit (bits) — converts ρ into air
  /// time.
  double bits_per_data_unit = 50e3;
};

/// Link-budget model for the user <-> base-station wireless hop.
///
/// The downlink/uplink rate follows truncated Shannon:
///   rate = B_share · min(log2(1 + SNR), max_spectral_efficiency)
/// with SNR from the station's transmit power and log-distance path
/// loss. The MEC objective then gains a transmission-delay component
/// ρ_l · bits_per_unit / rate(l) for moving the request's data over the
/// air to its home station — identical for every candidate serving
/// station, so it never changes the caching decision, but it makes the
/// reported delays use the paper's §VI.A radio parameters end to end.
class WirelessModel {
 public:
  explicit WirelessModel(WirelessParams params = {});

  const WirelessParams& params() const noexcept { return params_; }

  /// Path loss (dB) over a planar distance (metres).
  double path_loss_db(double distance_m) const;

  /// Received SNR (linear) at distance d from a station transmitting at
  /// its tier power over a `bandwidth_share` fraction of the system
  /// bandwidth.
  double snr(const BaseStation& bs, double distance_m,
             double bandwidth_share) const;

  /// Achievable rate (bit/s) of the hop, truncated-Shannon.
  double rate_bps(const BaseStation& bs, double distance_m,
                  double bandwidth_share) const;

  /// Time (ms) to move `data_units` of demand over the hop; +inf when
  /// the rate is (numerically) zero.
  double transmission_delay_ms(const BaseStation& bs, double distance_m,
                               double data_units, double bandwidth_share) const;

 private:
  WirelessParams params_;
};

}  // namespace mecsc::net

#endif  // MECSC_NET_WIRELESS_H
