#ifndef MECSC_NET_DELAY_PROCESS_H
#define MECSC_NET_DELAY_PROCESS_H

#include <memory>
#include <vector>

#include "common/rng.h"
#include "net/topology.h"

namespace mecsc::net {

/// A stochastic process generating the per-unit processing delay d_i(t)
/// of one base station (paper §III.D: varies across slots, unknown in
/// advance, constant within a slot and observable at the slot start only
/// by the stations actually used — which is what the bandit feedback in
/// Algorithm 1 exploits).
class DelayProcess {
 public:
  virtual ~DelayProcess() = default;

  /// Realises d_i(t) for the next slot.
  virtual double sample(common::Rng& rng) = 0;

  /// True mean of the process (oracle information used only for regret
  /// accounting and tests; the online algorithms never see it).
  virtual double mean() const = 0;

  /// Support bounds. Lemma 1's regret gap uses d_max / d_min, which the
  /// paper assumes are known in advance.
  virtual double min_value() const = 0;
  virtual double max_value() const = 0;
};

/// I.i.d. uniform delay over [lo, hi] — the paper's default model
/// (§VI.A gives per-tier delay ranges).
class UniformDelayProcess final : public DelayProcess {
 public:
  UniformDelayProcess(double lo, double hi);
  double sample(common::Rng& rng) override;
  double mean() const override { return 0.5 * (lo_ + hi_); }
  double min_value() const override { return lo_; }
  double max_value() const override { return hi_; }

 private:
  double lo_;
  double hi_;
};

/// Mean-reverting AR(1) delay: d(t) = mean + phi*(d(t-1) - mean) + noise,
/// clamped to [lo, hi]. Models slot-to-slot correlated congestion.
class Ar1DelayProcess final : public DelayProcess {
 public:
  Ar1DelayProcess(double mean, double phi, double sigma, double lo, double hi);
  double sample(common::Rng& rng) override;
  double mean() const override { return mean_; }
  double min_value() const override { return lo_; }
  double max_value() const override { return hi_; }

 private:
  double mean_;
  double phi_;
  double sigma_;
  double lo_;
  double hi_;
  double last_;
};

/// Base process with occasional congestion spikes: with probability
/// `spike_prob` the sampled delay is multiplied by `spike_factor`
/// (clamped to the stated max). Used in failure-injection tests and the
/// bursty-congestion ablation.
class SpikyDelayProcess final : public DelayProcess {
 public:
  SpikyDelayProcess(std::unique_ptr<DelayProcess> base, double spike_prob,
                    double spike_factor);
  double sample(common::Rng& rng) override;
  double mean() const override;
  double min_value() const override { return base_->min_value(); }
  double max_value() const override { return base_->max_value() * spike_factor_; }

 private:
  std::unique_ptr<DelayProcess> base_;
  double spike_prob_;
  double spike_factor_;
};

/// Per-station delay processes for a whole topology, plus the per-slot
/// realisation step the simulator calls.
class NetworkDelayModel {
 public:
  /// Takes ownership of one process per station (index-aligned).
  explicit NetworkDelayModel(std::vector<std::unique_ptr<DelayProcess>> processes);

  std::size_t size() const noexcept { return processes_.size(); }

  /// Realises d_i(t) for all stations for one slot.
  std::vector<double> realize(common::Rng& rng);

  /// True per-station means (oracle).
  std::vector<double> true_means() const;

  double global_min() const;
  double global_max() const;

  const DelayProcess& process(std::size_t i) const { return *processes_.at(i); }

 private:
  std::vector<std::unique_ptr<DelayProcess>> processes_;
};

/// Flavour of the default delay model.
enum class DelayModelKind { kUniform, kAr1, kSpiky };

/// Builds the default model for a topology: each station gets a process
/// centred on its `mean_unit_delay_ms`, with a ± spread proportional to
/// the tier's range width (so macro delays fluctuate in ~[30,50] ms etc.,
/// matching §VI.A).
NetworkDelayModel make_delay_model(const Topology& topology, DelayModelKind kind,
                                   common::Rng& rng);

}  // namespace mecsc::net

#endif  // MECSC_NET_DELAY_PROCESS_H
