#include "net/base_station.h"

#include <cmath>

namespace mecsc::net {

const char* tier_name(Tier tier) noexcept {
  switch (tier) {
    case Tier::kMacro: return "macro";
    case Tier::kMicro: return "micro";
    case Tier::kFemto: return "femto";
  }
  return "unknown";
}

TierProfile tier_profile(Tier tier) noexcept {
  switch (tier) {
    case Tier::kMacro:
      return {Tier::kMacro, 40.0, 100.0, 8000.0, 16000.0, 500.0, 1000.0, 30.0, 50.0};
    case Tier::kMicro:
      return {Tier::kMicro, 5.0, 30.0, 5000.0, 10000.0, 200.0, 500.0, 10.0, 20.0};
    case Tier::kFemto:
    default:
      return {Tier::kFemto, 0.1, 15.0, 1000.0, 2000.0, 1000.0, 2000.0, 5.0, 10.0};
  }
}

bool BaseStation::covers(double px, double py) const noexcept {
  double dx = px - x_m;
  double dy = py - y_m;
  return std::sqrt(dx * dx + dy * dy) <= radius_m;
}

}  // namespace mecsc::net
