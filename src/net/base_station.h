#ifndef MECSC_NET_BASE_STATION_H
#define MECSC_NET_BASE_STATION_H

#include <cstddef>
#include <string>

namespace mecsc::net {

/// Base-station tier in the 5G heterogeneous MEC (paper §III.A, §VI.A).
enum class Tier { kMacro, kMicro, kFemto };

const char* tier_name(Tier tier) noexcept;

/// Per-tier parameter ranges from the paper's experiment section (§VI.A):
/// transmit power, coverage radius, computing capacity (MHz), bandwidth
/// capacity (Mbps), and the range of the average per-unit processing
/// delay (ms).
struct TierProfile {
  Tier tier;
  double transmit_power_w;
  double radius_m;
  double capacity_lo_mhz;
  double capacity_hi_mhz;
  double bandwidth_lo_mbps;
  double bandwidth_hi_mbps;
  double delay_lo_ms;
  double delay_hi_ms;
};

/// Paper values: macro 40 W / 100 m / 8000-16000 MHz / 500-1000 Mbps /
/// 30-50 ms; micro 5 W / 30 m / 5000-10000 MHz / 200-500 Mbps / 10-20 ms;
/// femto 0.1 W / 15 m / 1000-2000 MHz / 1000-2000 Mbps (paper gives one
/// range for both) / 5-10 ms.
TierProfile tier_profile(Tier tier) noexcept;

/// One 5G base station with an attached cloudlet.
struct BaseStation {
  std::size_t id = 0;
  Tier tier = Tier::kFemto;
  double x_m = 0.0;  // planar position (metres)
  double y_m = 0.0;
  double radius_m = 0.0;           // coverage radius
  double capacity_mhz = 0.0;       // computing capacity C(bs_i)
  double bandwidth_mbps = 0.0;
  double transmit_power_w = 0.0;
  /// Mean per-unit-data processing delay θ*_i of the station's delay
  /// process (ms per data unit). The *realised* delay d_i(t) fluctuates
  /// around this per slot and is unknown to the online algorithms.
  double mean_unit_delay_ms = 0.0;

  /// True if a planar point is inside the coverage radius.
  bool covers(double px, double py) const noexcept;
};

}  // namespace mecsc::net

#endif  // MECSC_NET_BASE_STATION_H
