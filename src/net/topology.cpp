#include "net/topology.h"

#include <algorithm>
#include <cmath>
#include <queue>

#include "common/error.h"

namespace mecsc::net {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

Topology::Topology(std::vector<BaseStation> stations)
    : stations_(std::move(stations)),
      adjacency_(stations_.size()),
      adjacency_edge_(stations_.size()) {
  for (std::size_t i = 0; i < stations_.size(); ++i) {
    MECSC_CHECK_MSG(stations_[i].id == i, "station ids must be 0..n-1 in order");
  }
}

void Topology::add_link(Link link) {
  MECSC_CHECK_MSG(link.a < stations_.size() && link.b < stations_.size(),
                  "link endpoint out of range");
  MECSC_CHECK_MSG(link.a != link.b, "self-loop links are not allowed");
  MECSC_CHECK_MSG(!has_link(link.a, link.b), "parallel links are not allowed");
  MECSC_CHECK_MSG(link.latency_ms >= 0.0, "negative link latency");
  adjacency_[link.a].push_back(link.b);
  adjacency_[link.b].push_back(link.a);
  adjacency_edge_[link.a].push_back(links_.size());
  adjacency_edge_[link.b].push_back(links_.size());
  links_.push_back(link);
  cache_valid_ = false;
}

bool Topology::has_link(std::size_t a, std::size_t b) const {
  if (a >= adjacency_.size()) return false;
  return std::find(adjacency_[a].begin(), adjacency_[a].end(), b) !=
         adjacency_[a].end();
}

std::vector<std::size_t> Topology::stations_of_tier(Tier tier) const {
  std::vector<std::size_t> out;
  for (const auto& bs : stations_) {
    if (bs.tier == tier) out.push_back(bs.id);
  }
  return out;
}

std::vector<std::size_t> Topology::stations_covering(double x, double y) const {
  std::vector<std::size_t> out;
  for (const auto& bs : stations_) {
    if (bs.covers(x, y)) out.push_back(bs.id);
  }
  return out;
}

bool Topology::is_connected() const {
  if (stations_.empty()) return true;
  std::vector<bool> seen(stations_.size(), false);
  std::queue<std::size_t> q;
  q.push(0);
  seen[0] = true;
  std::size_t visited = 1;
  while (!q.empty()) {
    std::size_t u = q.front();
    q.pop();
    for (std::size_t v : adjacency_[u]) {
      if (!seen[v]) {
        seen[v] = true;
        ++visited;
        q.push(v);
      }
    }
  }
  return visited == stations_.size();
}

void Topology::compute_all_pairs() const {
  const std::size_t n = stations_.size();
  latency_cache_.assign(n, std::vector<double>(n, kInf));
  using Item = std::pair<double, std::size_t>;
  for (std::size_t s = 0; s < n; ++s) {
    auto& dist = latency_cache_[s];
    dist[s] = 0.0;
    std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
    pq.emplace(0.0, s);
    while (!pq.empty()) {
      auto [d, u] = pq.top();
      pq.pop();
      if (d > dist[u] + 1e-12) continue;
      for (std::size_t k = 0; k < adjacency_[u].size(); ++k) {
        std::size_t v = adjacency_[u][k];
        double w = links_[adjacency_edge_[u][k]].latency_ms;
        if (dist[u] + w < dist[v] - 1e-12) {
          dist[v] = dist[u] + w;
          pq.emplace(dist[v], v);
        }
      }
    }
  }
  cache_valid_ = true;
}

double Topology::path_latency_ms(std::size_t from, std::size_t to) const {
  MECSC_CHECK(from < stations_.size() && to < stations_.size());
  if (from == to) return 0.0;
  if (!cache_valid_) compute_all_pairs();
  return latency_cache_[from][to];
}

double Topology::total_capacity_mhz() const {
  double total = 0.0;
  for (const auto& bs : stations_) total += bs.capacity_mhz;
  return total;
}

std::size_t Topology::largest_station() const {
  std::size_t best = 0;
  for (std::size_t i = 1; i < stations_.size(); ++i) {
    if (stations_[i].capacity_mhz > stations_[best].capacity_mhz) best = i;
  }
  return best;
}

void Topology::mark_bottlenecks(std::size_t count, double factor) {
  MECSC_CHECK_MSG(factor >= 1.0, "bottleneck factor must be >= 1");
  std::vector<std::size_t> order(links_.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return links_[a].latency_ms > links_[b].latency_ms;
  });
  count = std::min(count, order.size());
  for (std::size_t i = 0; i < count; ++i) {
    Link& l = links_[order[i]];
    l.bottleneck = true;
    l.latency_ms *= factor;
  }
  cache_valid_ = false;
}

}  // namespace mecsc::net
