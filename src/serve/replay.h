#ifndef MECSC_SERVE_REPLAY_H
#define MECSC_SERVE_REPLAY_H

// Trace replay and bit-identity verification (DESIGN.md "Streaming
// service architecture").
//
// The determinism contract: a trace records the exact demand snapshots
// the live pipeline consumed, the realised unit delays, and the
// decisions it committed, plus the scenario recipe. replay_trace()
// rebuilds the identical problem instance from the recipe, feeds the
// recorded snapshots/delays through the batch decision engine
// (sim::SlotEngine — the same code the daemon ran) with the same
// algorithm seed, and compares the reproduced decisions and slot
// objectives against the recorded ones bit for bit. Any divergence —
// an env knob leaking into the pipeline, a nondeterministic RNG path, a
// drifting serialisation — surfaces as a mismatch with its slot.

#include <cstddef>
#include <string>

#include "serve/service.h"
#include "serve/trace_io.h"

namespace mecsc::serve {

/// Replay behaviour knobs.
struct ReplayOptions {
  /// Salvage mode: instead of aborting on a torn or corrupt tail,
  /// truncate at the last checksum-valid record, replay the intact
  /// prefix, and report exactly what was lost. The recovery path for a
  /// crashed daemon's trace (`mecsc_serve --verify --salvage`).
  bool salvage = false;
};

/// Outcome of replaying one trace.
struct ReplayResult {
  /// Every recorded slot reproduced bitwise (decisions and objective).
  bool bit_identical = false;
  /// The trace carried the footer (clean shutdown).
  bool sealed = false;
  /// Recorded slots compared.
  std::size_t slots_compared = 0;
  /// First diverging slot (npos when none).
  std::size_t first_mismatch_slot = static_cast<std::size_t>(-1);
  /// Human-readable mismatch description ("" when identical).
  std::string detail;
  /// Salvage mode only: true when tail damage was truncated away.
  bool salvaged = false;
  /// Bytes discarded past the last checksum-valid record.
  std::uint64_t lost_bytes = 0;
  /// Why reading stopped before the footer ("" for a sealed trace).
  std::string tail_error;
};

/// The trace header a live run with `options` stamps: the scenario
/// recipe plus the env-resolved aggregate mode and the algorithm seed,
/// both pinned explicitly so replay cannot be skewed by a different
/// environment.
TraceConfig trace_config_for(const ServeOptions& options,
                             const sim::Scenario& scenario);

/// Inverse of trace_config_for: the ServeOptions that rebuild the
/// recorded scenario (pipeline-only knobs take defaults).
ServeOptions options_from_trace(const TraceConfig& config);

/// Replays `path` through the batch decision engine and verifies bit
/// identity. Throws common::InvalidArgument on an unreadable/corrupt
/// trace (unless `options.salvage` truncates the damage away) or a
/// trace inconsistent with its own recipe (wrong vector sizes); mere
/// decision divergence is reported in the result, not thrown. Traces
/// recorded under fault churn (records carrying kSlotFlagFaults) replay
/// through the recorded fault state; no fault plan or MECSC_FAULTS
/// environment is needed or consulted.
ReplayResult replay_trace(const std::string& path, ReplayOptions options = {});

}  // namespace mecsc::serve

#endif  // MECSC_SERVE_REPLAY_H
