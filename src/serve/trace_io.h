#ifndef MECSC_SERVE_TRACE_IO_H
#define MECSC_SERVE_TRACE_IO_H

// Compact binary trace format of the mecsc::serve subsystem (DESIGN.md
// "Streaming service architecture" and "Crash tolerance & recovery").
//
// A trace records everything a live run fed its decision pipeline — the
// per-slot demand snapshots the slot scheduler closed, the realised
// per-station unit delays, and the per-slot decisions the pipeline
// committed — plus the compact scenario configuration needed to rebuild
// the identical problem instance. Replaying the recorded snapshots
// through the batch simulator (serve::replay_trace) therefore
// reproduces the daemon's decisions bit-for-bit, which is the
// determinism contract production-shaped traces lean on when reused as
// benches.
//
// Layout (little-endian, doubles as raw IEEE-754 bytes):
//   header  "MECT" magic, format version, TraceConfig fields
//   records "SLOT"-tagged slot records, each followed by an FNV-1a-64
//           checksum of the record's payload bytes
//   footer  "TEND" magic + total record count (written by close(); a
//           trace without it was cut off mid-write)
//
// Format v2 adds per-record decision-mode flags (watchdog recommits and
// degraded hints are wall-clock-timing events; recording them is what
// keeps replay deterministic) and an optional realised-fault block
// (station-up bits, censored-feedback mask, effective capacities) so
// traces recorded under MECSC_FAULTS=churn replay bit-for-bit without
// the fault plan.
//
// Format v3 adds the env-resolved solver tier (MECSC_SOLVER) to the
// TraceConfig: the tier is part of the decision recipe — the Lagrangian
// and flow tiers produce different (equally valid) fractional optima —
// so replay must pin it exactly like the aggregation mode.
//
// Every multi-byte count in a record is validated against the bytes
// actually remaining before any allocation, so a torn or bit-flipped
// trace yields a typed error (common::InvalidArgument) or a truncation
// status — never unbounded allocation or UB. The salvage entry points
// (TraceReader::next_status, inspect_trace) never throw on a damaged
// tail; they report the last checksum-valid prefix instead.

#include <cstdint>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

namespace mecsc::serve {

namespace wire {

/// FNV-1a-64 — the checksum of trace records and checkpoint payloads.
inline std::uint64_t fnv1a(const char* data, std::size_t n) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// Fixed-width little-endian serialisation into a growable byte buffer.
/// The repo only targets little-endian hosts (x86-64/AArch64), so the
/// raw-memcpy encoding doubles as the canonical on-disk byte order.
inline void put_bytes(std::string& buf, const void* p, std::size_t n) {
  buf.append(static_cast<const char*>(p), n);
}
template <typename T>
inline void put(std::string& buf, T v) {
  put_bytes(buf, &v, sizeof(v));
}

/// Bounds-checked sequential reader over a byte span. take() fails
/// (returns false) instead of reading past the end, and remaining()
/// lets parsers validate element counts before any resize.
class Cursor {
 public:
  Cursor(const char* data, std::size_t size) : data_(data), size_(size) {}
  bool take(void* out, std::size_t n) {
    if (n > size_ - pos_) return false;
    std::memcpy(out, data_ + pos_, n);
    pos_ += n;
    return true;
  }
  template <typename T>
  bool take(T& out) {
    return take(&out, sizeof(T));
  }
  std::size_t remaining() const noexcept { return size_ - pos_; }

 private:
  const char* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

}  // namespace wire

/// Scenario + pipeline configuration stamped into a trace header: the
/// complete recipe for rebuilding the daemon's problem instance and
/// algorithm, so a replay needs nothing but the trace file.
struct TraceConfig {
  std::uint64_t seed = 1;          ///< Scenario root seed.
  std::uint32_t num_stations = 0;  ///< Requested base stations.
  std::uint32_t num_requests = 0;  ///< Requested request population.
  std::uint32_t num_services = 0;  ///< Requested service catalogue size.
  std::uint32_t horizon = 0;       ///< Planned run slots.
  std::uint32_t slot_ms = 0;       ///< Wall-clock slot length (ms).
  std::uint8_t bursty = 1;         ///< Bursty workload flag.
  std::uint8_t aggregate = 1;      ///< core::AggregateMode (env-resolved).
  std::uint8_t faults = 0;         ///< fault::FaultMode (env-resolved).
  std::uint8_t solver = 1;         ///< core::SolverTier (env-resolved; v3).
  std::uint64_t algo_seed = 0;     ///< Seed of the pipeline's algorithm.
  double shed_penalty_ms = 250.0;  ///< Per-shed-request delay penalty.
};

/// Canonical byte encoding of a TraceConfig — shared by the trace
/// header, the checkpoint file, and recipe-equality checks (two configs
/// are the same recipe iff their serialisations are byte-identical,
/// which makes the double field memcmp-exact).
std::string serialize_trace_config(const TraceConfig& config);

/// Inverse of serialize_trace_config. Returns false on short input.
bool parse_trace_config(wire::Cursor& cursor, TraceConfig& out);

/// Byte-exact recipe equality (see serialize_trace_config).
bool same_trace_config(const TraceConfig& a, const TraceConfig& b);

/// Per-record decision-mode flags (SlotTraceRecord::flags).
inline constexpr std::uint32_t kSlotFlagRecommit = 1U << 0;
inline constexpr std::uint32_t kSlotFlagDegradedHint = 1U << 1;
inline constexpr std::uint32_t kSlotFlagFaults = 1U << 2;

/// One recorded slot: the canonical demand snapshot (sparse, nonzero
/// entries only), the realised unit delays, the committed decision, and
/// the slot's serve-side accounting.
struct SlotTraceRecord {
  std::uint32_t slot = 0;
  /// Nonzero snapshot entries as (request id, demand) pairs, ascending
  /// by request id.
  std::vector<std::pair<std::uint32_t, double>> demands;
  /// Realised d_i(t) per station.
  std::vector<double> unit_delays;
  /// Committed decision: serving station per request (u16 — the format
  /// caps a trace at 65535 stations).
  std::vector<std::uint16_t> station_of_request;
  /// Caching set, service-major packed bits: bit (k * stations + i) set
  /// iff service k is cached at station i.
  std::vector<std::uint8_t> cached_bits;
  std::uint32_t ingested = 0;      ///< Events folded into the snapshot.
  std::uint32_t shed = 0;          ///< Events shed by admission control.
  /// Serve-side shed penalty only (pre-averaging); the fault subsystem's
  /// shed penalty lives in fault_shed_penalty_ms below so replay can
  /// fold each side exactly once.
  double shed_penalty_ms = 0.0;
  double avg_delay_ms = 0.0;       ///< Realised slot objective.
  double decide_ms = 0.0;          ///< decide() wall-clock (informational).
  /// Decision-mode flags (kSlotFlag*): how this slot was decided.
  /// kSlotFlagRecommit — the watchdog re-committed the previous slot's
  /// placement (decide skipped); kSlotFlagDegradedHint — decide was
  /// hinted straight to the degraded solver; kSlotFlagFaults — the
  /// realised-fault block below is present.
  std::uint32_t flags = 0;
  /// Realised fault state (present iff flags & kSlotFlagFaults): one
  /// byte per station for the up/censored masks, the effective (derated)
  /// capacities the decision was made under, and the fault-side shed
  /// accounting. Together with the snapshot this is everything replay
  /// needs to reproduce the engine's fault arithmetic without the plan.
  std::vector<std::uint8_t> station_up;
  std::vector<std::uint8_t> feedback_lost;
  std::vector<double> effective_capacity_mhz;
  double outage_penalty_factor = 1.0;
  std::uint32_t fault_shed_requests = 0;
  double fault_shed_penalty_ms = 0.0;
};

/// Streaming writer. Records append with per-record checksums; close()
/// (or destruction) seals the trace with the footer.
class TraceWriter {
 public:
  /// Opens `path` for writing and emits the header (throws
  /// common::InvalidArgument when the file cannot be opened).
  TraceWriter(const std::string& path, const TraceConfig& config);
  ~TraceWriter();
  TraceWriter(const TraceWriter&) = delete;
  TraceWriter& operator=(const TraceWriter&) = delete;

  /// Reopens an existing trace for appending after a crash: truncates
  /// `path` to `resume_offset` bytes (discarding any torn tail past the
  /// last checkpointed record) and continues appending with the record
  /// counter at `keep_records`. The offsets come from a checkpoint;
  /// inspect_trace() recovers them from the file itself. Throws
  /// common::InvalidArgument when the file is missing or shorter than
  /// the requested offset.
  static std::unique_ptr<TraceWriter> resume(const std::string& path,
                                             std::size_t keep_records,
                                             std::uint64_t resume_offset);

  /// Appends one slot record (serialised + checksummed).
  void append(const SlotTraceRecord& record);

  /// Flushes buffered records to disk (the footer is not yet written).
  void flush();

  /// Writes the footer and closes the file. Idempotent.
  void close();

  /// Records appended so far.
  std::size_t records_written() const noexcept { return records_; }

  /// File length in bytes through the last append (header + records,
  /// no footer) — the resume offset a checkpoint stores.
  std::uint64_t byte_offset() const noexcept { return bytes_; }

 private:
  struct ResumeTag {};
  TraceWriter(ResumeTag, const std::string& path, std::size_t keep_records,
              std::uint64_t resume_offset);

  std::ofstream out_;
  std::size_t records_ = 0;
  std::uint64_t bytes_ = 0;
  bool closed_ = false;
};

/// Why TraceReader::next_status stopped (or did not).
enum class RecordStatus {
  kRecord,     ///< A record was read and checksum-verified.
  kFooter,     ///< The footer was reached (sealed trace).
  kTruncated,  ///< The file ends mid-record (writer died; no footer).
  kCorrupt,    ///< Bad marker, checksum mismatch, or malformed body.
};

/// Sequential reader over a recorded trace.
class TraceReader {
 public:
  /// Opens `path` and parses the header (throws common::InvalidArgument
  /// on a missing file, bad magic, or unsupported version).
  explicit TraceReader(const std::string& path);

  /// The header's configuration.
  const TraceConfig& config() const noexcept { return config_; }

  /// Reads the next slot record. Returns false at the footer or at a
  /// truncated tail; a corrupt record (checksum mismatch) throws
  /// common::InvalidArgument.
  bool next(SlotTraceRecord& out);

  /// Non-throwing form of next() for salvage paths: reads the next
  /// record and reports damage as a status instead of throwing. On
  /// kCorrupt/kTruncated, `error` (when non-null) receives a
  /// human-readable reason and the reader stops (subsequent calls
  /// return the same status).
  RecordStatus next_status(SlotTraceRecord& out, std::string* error = nullptr);

  /// True once the footer was consumed — distinguishes a sealed trace
  /// from one whose writer died mid-stream.
  bool saw_footer() const noexcept { return saw_footer_; }

  /// Records read so far.
  std::size_t records_read() const noexcept { return records_; }

  /// Byte offset just past the last checksum-valid record (the header
  /// when none) — the salvage truncation point.
  std::uint64_t last_good_offset() const noexcept { return good_offset_; }

  /// Total file size in bytes.
  std::uint64_t file_bytes() const noexcept { return file_bytes_; }

 private:
  std::ifstream in_;
  TraceConfig config_;
  std::size_t records_ = 0;
  bool saw_footer_ = false;
  bool stopped_ = false;
  std::uint64_t good_offset_ = 0;
  std::uint64_t file_bytes_ = 0;
};

/// One record's location in the file, as reported by inspect_trace.
struct TraceRecordInfo {
  std::uint32_t slot = 0;          ///< Recorded slot index.
  std::uint32_t flags = 0;         ///< Decision-mode flags.
  std::uint64_t offset = 0;        ///< File offset of the "SLOT" marker.
  std::uint64_t payload_bytes = 0; ///< Serialised payload size.
  std::uint64_t checksum = 0;      ///< FNV-1a-64 of the payload.
};

/// Everything mecsc_trace and the resume path need to know about a
/// trace without replaying it.
struct TraceInspection {
  TraceConfig config;
  std::uint16_t version = 0;
  bool sealed = false;               ///< Footer present and count matches.
  std::uint64_t file_bytes = 0;
  /// Length of the checksum-valid prefix (header + intact records) —
  /// where salvage truncates.
  std::uint64_t salvage_offset = 0;
  std::size_t salvage_records = 0;   ///< Records in that prefix.
  /// Why reading stopped before the footer ("" for a sealed trace).
  std::string tail_error;
  std::vector<TraceRecordInfo> records;
};

/// Scans `path` record by record: header recipe, per-record offsets and
/// checksums, seal status, and the salvage point. Never throws on a
/// damaged tail (only on an unreadable file / bad header, like
/// TraceReader's constructor).
TraceInspection inspect_trace(const std::string& path);

/// Full-file integrity check: header parses, every record's checksum
/// holds, and the footer is present with a matching record count. When
/// `slots_out` is non-null it receives the record count.
bool trace_well_formed(const std::string& path, std::size_t* slots_out = nullptr);

/// Packs a caching set cached[k][i] into the trace's service-major bit
/// layout (bit k * stations + i). Used by the recorder and by the replay
/// comparison, so both sides share one canonical encoding.
std::vector<std::uint8_t> pack_cached_bits(
    const std::vector<std::vector<bool>>& cached);

}  // namespace mecsc::serve

#endif  // MECSC_SERVE_TRACE_IO_H
