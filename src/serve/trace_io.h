#ifndef MECSC_SERVE_TRACE_IO_H
#define MECSC_SERVE_TRACE_IO_H

// Compact binary trace format of the mecsc::serve subsystem (DESIGN.md
// "Streaming service architecture").
//
// A trace records everything a live run fed its decision pipeline — the
// per-slot demand snapshots the slot scheduler closed, the realised
// per-station unit delays, and the per-slot decisions the pipeline
// committed — plus the compact scenario configuration needed to rebuild
// the identical problem instance. Replaying the recorded snapshots
// through the batch simulator (serve::replay_trace) therefore
// reproduces the daemon's decisions bit-for-bit, which is the
// determinism contract production-shaped traces lean on when reused as
// benches.
//
// Layout (little-endian, doubles as raw IEEE-754 bytes):
//   header  "MECT" magic, format version, TraceConfig fields
//   records "SLOT"-tagged slot records, each followed by an FNV-1a-64
//           checksum of the record's payload bytes
//   footer  "TEND" magic + total record count (written by close(); a
//           trace without it was cut off mid-write)

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

namespace mecsc::serve {

/// Scenario + pipeline configuration stamped into a trace header: the
/// complete recipe for rebuilding the daemon's problem instance and
/// algorithm, so a replay needs nothing but the trace file.
struct TraceConfig {
  std::uint64_t seed = 1;          ///< Scenario root seed.
  std::uint32_t num_stations = 0;  ///< Requested base stations.
  std::uint32_t num_requests = 0;  ///< Requested request population.
  std::uint32_t num_services = 0;  ///< Requested service catalogue size.
  std::uint32_t horizon = 0;       ///< Planned run slots.
  std::uint32_t slot_ms = 0;       ///< Wall-clock slot length (ms).
  std::uint8_t bursty = 1;         ///< Bursty workload flag.
  std::uint8_t aggregate = 1;      ///< core::AggregateMode (env-resolved).
  std::uint64_t algo_seed = 0;     ///< Seed of the pipeline's algorithm.
  double shed_penalty_ms = 250.0;  ///< Per-shed-request delay penalty.
};

/// One recorded slot: the canonical demand snapshot (sparse, nonzero
/// entries only), the realised unit delays, the committed decision, and
/// the slot's serve-side accounting.
struct SlotTraceRecord {
  std::uint32_t slot = 0;
  /// Nonzero snapshot entries as (request id, demand) pairs, ascending
  /// by request id.
  std::vector<std::pair<std::uint32_t, double>> demands;
  /// Realised d_i(t) per station.
  std::vector<double> unit_delays;
  /// Committed decision: serving station per request (u16 — the format
  /// caps a trace at 65535 stations).
  std::vector<std::uint16_t> station_of_request;
  /// Caching set, service-major packed bits: bit (k * stations + i) set
  /// iff service k is cached at station i.
  std::vector<std::uint8_t> cached_bits;
  std::uint32_t ingested = 0;      ///< Events folded into the snapshot.
  std::uint32_t shed = 0;          ///< Events shed by admission control.
  double shed_penalty_ms = 0.0;    ///< Total shed penalty (pre-averaging).
  double avg_delay_ms = 0.0;       ///< Realised slot objective.
  double decide_ms = 0.0;          ///< decide() wall-clock (informational).
};

/// Streaming writer. Records append with per-record checksums; close()
/// (or destruction) seals the trace with the footer.
class TraceWriter {
 public:
  /// Opens `path` for writing and emits the header (throws
  /// common::InvalidArgument when the file cannot be opened).
  TraceWriter(const std::string& path, const TraceConfig& config);
  ~TraceWriter();
  TraceWriter(const TraceWriter&) = delete;
  TraceWriter& operator=(const TraceWriter&) = delete;

  /// Appends one slot record (serialised + checksummed).
  void append(const SlotTraceRecord& record);

  /// Flushes buffered records to disk (the footer is not yet written).
  void flush();

  /// Writes the footer and closes the file. Idempotent.
  void close();

  /// Records appended so far.
  std::size_t records_written() const noexcept { return records_; }

 private:
  std::ofstream out_;
  std::size_t records_ = 0;
  bool closed_ = false;
};

/// Sequential reader over a recorded trace.
class TraceReader {
 public:
  /// Opens `path` and parses the header (throws common::InvalidArgument
  /// on a missing file, bad magic, or unsupported version).
  explicit TraceReader(const std::string& path);

  /// The header's configuration.
  const TraceConfig& config() const noexcept { return config_; }

  /// Reads the next slot record. Returns false at the footer or at a
  /// truncated tail; a corrupt record (checksum mismatch) throws
  /// common::InvalidArgument.
  bool next(SlotTraceRecord& out);

  /// True once the footer was consumed — distinguishes a sealed trace
  /// from one whose writer died mid-stream.
  bool saw_footer() const noexcept { return saw_footer_; }

  /// Records read so far.
  std::size_t records_read() const noexcept { return records_; }

 private:
  std::ifstream in_;
  TraceConfig config_;
  std::size_t records_ = 0;
  bool saw_footer_ = false;
};

/// Full-file integrity check: header parses, every record's checksum
/// holds, and the footer is present with a matching record count. When
/// `slots_out` is non-null it receives the record count.
bool trace_well_formed(const std::string& path, std::size_t* slots_out = nullptr);

/// Packs a caching set cached[k][i] into the trace's service-major bit
/// layout (bit k * stations + i). Used by the recorder and by the replay
/// comparison, so both sides share one canonical encoding.
std::vector<std::uint8_t> pack_cached_bits(
    const std::vector<std::vector<bool>>& cached);

}  // namespace mecsc::serve

#endif  // MECSC_SERVE_TRACE_IO_H
