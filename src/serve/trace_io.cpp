#include "serve/trace_io.h"

#include <filesystem>

#include "common/error.h"

namespace mecsc::serve {

namespace {

using wire::Cursor;
using wire::fnv1a;
using wire::put;
using wire::put_bytes;

constexpr std::uint32_t kHeaderMagic = 0x5443454DU;  // "MECT" little-endian
constexpr std::uint32_t kRecordMagic = 0x544F4C53U;  // "SLOT"
constexpr std::uint32_t kFooterMagic = 0x444E4554U;  // "TEND"
// v3: the TraceConfig carries the env-resolved solver tier (the tier is
// part of the decision recipe, like the aggregation mode).
constexpr std::uint16_t kVersion = 3;

std::string serialize_record(const SlotTraceRecord& r) {
  std::string buf;
  buf.reserve(96 + r.demands.size() * 12 + r.unit_delays.size() * 8 +
              r.station_of_request.size() * 2 + r.cached_bits.size() +
              r.station_up.size() + r.feedback_lost.size() +
              r.effective_capacity_mhz.size() * 8);
  put(buf, r.slot);
  put(buf, static_cast<std::uint32_t>(r.demands.size()));
  for (const auto& [id, demand] : r.demands) {
    put(buf, id);
    put(buf, demand);
  }
  put(buf, static_cast<std::uint32_t>(r.unit_delays.size()));
  put_bytes(buf, r.unit_delays.data(), r.unit_delays.size() * sizeof(double));
  put(buf, static_cast<std::uint32_t>(r.station_of_request.size()));
  put_bytes(buf, r.station_of_request.data(),
            r.station_of_request.size() * sizeof(std::uint16_t));
  put(buf, static_cast<std::uint32_t>(r.cached_bits.size()));
  put_bytes(buf, r.cached_bits.data(), r.cached_bits.size());
  put(buf, r.ingested);
  put(buf, r.shed);
  put(buf, r.shed_penalty_ms);
  put(buf, r.avg_delay_ms);
  put(buf, r.decide_ms);
  put(buf, r.flags);
  if (r.flags & kSlotFlagFaults) {
    put(buf, static_cast<std::uint32_t>(r.station_up.size()));
    put_bytes(buf, r.station_up.data(), r.station_up.size());
    put(buf, static_cast<std::uint32_t>(r.feedback_lost.size()));
    put_bytes(buf, r.feedback_lost.data(), r.feedback_lost.size());
    put(buf, static_cast<std::uint32_t>(r.effective_capacity_mhz.size()));
    put_bytes(buf, r.effective_capacity_mhz.data(),
              r.effective_capacity_mhz.size() * sizeof(double));
    put(buf, r.outage_penalty_factor);
    put(buf, r.fault_shed_requests);
    put(buf, r.fault_shed_penalty_ms);
  }
  return buf;
}

// Reads a `count` prefix and validates it against the bytes remaining
// (element size `elem`) before any allocation — a bit-flipped count must
// fail cleanly, not resize a vector to 4 billion entries.
bool take_count(Cursor& c, std::size_t elem, std::uint32_t& n) {
  if (!c.take(n)) return false;
  return static_cast<std::size_t>(n) <= c.remaining() / elem;
}

bool parse_record(Cursor& c, SlotTraceRecord& r) {
  std::uint32_t n = 0;
  if (!c.take(r.slot)) return false;
  if (!take_count(c, sizeof(std::uint32_t) + sizeof(double), n)) return false;
  r.demands.resize(n);
  for (auto& [id, demand] : r.demands) {
    if (!c.take(id) || !c.take(demand)) return false;
  }
  if (!take_count(c, sizeof(double), n)) return false;
  r.unit_delays.resize(n);
  if (!c.take(r.unit_delays.data(), n * sizeof(double))) return false;
  if (!take_count(c, sizeof(std::uint16_t), n)) return false;
  r.station_of_request.resize(n);
  if (!c.take(r.station_of_request.data(), n * sizeof(std::uint16_t))) {
    return false;
  }
  if (!take_count(c, 1, n)) return false;
  r.cached_bits.resize(n);
  if (!c.take(r.cached_bits.data(), n)) return false;
  if (!(c.take(r.ingested) && c.take(r.shed) && c.take(r.shed_penalty_ms) &&
        c.take(r.avg_delay_ms) && c.take(r.decide_ms) && c.take(r.flags))) {
    return false;
  }
  r.station_up.clear();
  r.feedback_lost.clear();
  r.effective_capacity_mhz.clear();
  r.outage_penalty_factor = 1.0;
  r.fault_shed_requests = 0;
  r.fault_shed_penalty_ms = 0.0;
  if (r.flags & kSlotFlagFaults) {
    if (!take_count(c, 1, n)) return false;
    r.station_up.resize(n);
    if (!c.take(r.station_up.data(), n)) return false;
    if (!take_count(c, 1, n)) return false;
    r.feedback_lost.resize(n);
    if (!c.take(r.feedback_lost.data(), n)) return false;
    if (!take_count(c, sizeof(double), n)) return false;
    r.effective_capacity_mhz.resize(n);
    if (!c.take(r.effective_capacity_mhz.data(), n * sizeof(double))) {
      return false;
    }
    if (!(c.take(r.outage_penalty_factor) && c.take(r.fault_shed_requests) &&
          c.take(r.fault_shed_penalty_ms))) {
      return false;
    }
  }
  return c.remaining() == 0;  // trailing garbage is corruption, not slack
}

}  // namespace

std::string serialize_trace_config(const TraceConfig& cfg) {
  std::string buf;
  put(buf, cfg.seed);
  put(buf, cfg.num_stations);
  put(buf, cfg.num_requests);
  put(buf, cfg.num_services);
  put(buf, cfg.horizon);
  put(buf, cfg.slot_ms);
  put(buf, cfg.bursty);
  put(buf, cfg.aggregate);
  put(buf, cfg.faults);
  put(buf, cfg.solver);
  put(buf, cfg.algo_seed);
  put(buf, cfg.shed_penalty_ms);
  return buf;
}

bool parse_trace_config(wire::Cursor& c, TraceConfig& out) {
  return c.take(out.seed) && c.take(out.num_stations) &&
         c.take(out.num_requests) && c.take(out.num_services) &&
         c.take(out.horizon) && c.take(out.slot_ms) && c.take(out.bursty) &&
         c.take(out.aggregate) && c.take(out.faults) && c.take(out.solver) &&
         c.take(out.algo_seed) && c.take(out.shed_penalty_ms);
}

bool same_trace_config(const TraceConfig& a, const TraceConfig& b) {
  return serialize_trace_config(a) == serialize_trace_config(b);
}

TraceWriter::TraceWriter(const std::string& path, const TraceConfig& config)
    : out_(path, std::ios::binary | std::ios::trunc) {
  MECSC_CHECK_MSG(out_.good(), "cannot open trace file for writing: " + path);
  std::string buf;
  put(buf, kHeaderMagic);
  put(buf, kVersion);
  buf += serialize_trace_config(config);
  out_.write(buf.data(), static_cast<std::streamsize>(buf.size()));
  bytes_ = buf.size();
}

TraceWriter::TraceWriter(ResumeTag, const std::string& path,
                         std::size_t keep_records, std::uint64_t resume_offset) {
  std::error_code ec;
  const std::uintmax_t current = std::filesystem::file_size(path, ec);
  MECSC_CHECK_MSG(!ec, "cannot stat trace file for resume: " + path);
  MECSC_CHECK_MSG(current >= resume_offset,
                  "trace file shorter than the checkpoint's resume offset: " +
                      path);
  // Drop the torn tail (and any footer) past the checkpointed prefix,
  // then continue appending in place.
  std::filesystem::resize_file(path, resume_offset, ec);
  MECSC_CHECK_MSG(!ec, "cannot truncate trace file for resume: " + path);
  out_.open(path, std::ios::binary | std::ios::in | std::ios::out |
                      std::ios::ate);
  MECSC_CHECK_MSG(out_.good(), "cannot reopen trace file for resume: " + path);
  records_ = keep_records;
  bytes_ = resume_offset;
}

std::unique_ptr<TraceWriter> TraceWriter::resume(const std::string& path,
                                                 std::size_t keep_records,
                                                 std::uint64_t resume_offset) {
  return std::unique_ptr<TraceWriter>(
      new TraceWriter(ResumeTag{}, path, keep_records, resume_offset));
}

TraceWriter::~TraceWriter() { close(); }

void TraceWriter::append(const SlotTraceRecord& record) {
  MECSC_CHECK_MSG(!closed_, "append on a closed trace");
  const std::string payload = serialize_record(record);
  std::string buf;
  put(buf, kRecordMagic);
  put(buf, static_cast<std::uint64_t>(payload.size()));
  buf += payload;
  put(buf, fnv1a(payload.data(), payload.size()));
  out_.write(buf.data(), static_cast<std::streamsize>(buf.size()));
  bytes_ += buf.size();
  ++records_;
}

void TraceWriter::flush() { out_.flush(); }

void TraceWriter::close() {
  if (closed_) return;
  std::string buf;
  put(buf, kFooterMagic);
  put(buf, static_cast<std::uint64_t>(records_));
  out_.write(buf.data(), static_cast<std::streamsize>(buf.size()));
  out_.flush();
  out_.close();
  closed_ = true;
}

TraceReader::TraceReader(const std::string& path)
    : in_(path, std::ios::binary) {
  MECSC_CHECK_MSG(in_.good(), "cannot open trace file: " + path);
  in_.seekg(0, std::ios::end);
  file_bytes_ = static_cast<std::uint64_t>(in_.tellg());
  in_.seekg(0, std::ios::beg);
  std::uint32_t magic = 0;
  std::uint16_t version = 0;
  in_.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  in_.read(reinterpret_cast<char*>(&version), sizeof(version));
  MECSC_CHECK_MSG(in_.good() && magic == kHeaderMagic,
                  "not a mecsc serve trace: " + path);
  MECSC_CHECK_MSG(version == kVersion, "unsupported trace version");
  std::string cfg(serialize_trace_config(config_).size(), '\0');
  in_.read(cfg.data(), static_cast<std::streamsize>(cfg.size()));
  MECSC_CHECK_MSG(in_.good(), "truncated trace header: " + path);
  Cursor c(cfg.data(), cfg.size());
  MECSC_CHECK_MSG(parse_trace_config(c, config_), "truncated trace header");
  good_offset_ = sizeof(magic) + sizeof(version) + cfg.size();
}

RecordStatus TraceReader::next_status(SlotTraceRecord& out, std::string* error) {
  auto fail = [&](RecordStatus status, const std::string& why) {
    stopped_ = true;
    if (error != nullptr) *error = why;
    return status;
  };
  if (saw_footer_) return fail(RecordStatus::kFooter, "");
  if (stopped_) return fail(RecordStatus::kCorrupt, "reader already stopped");
  std::uint32_t magic = 0;
  in_.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  if (!in_.good()) {
    return fail(RecordStatus::kTruncated, "file ends without a footer");
  }
  if (magic == kFooterMagic) {
    std::uint64_t count = 0;
    in_.read(reinterpret_cast<char*>(&count), sizeof(count));
    if (!in_.good()) {
      return fail(RecordStatus::kTruncated, "file ends inside the footer");
    }
    if (count != records_) {
      return fail(RecordStatus::kCorrupt,
                  "footer record count disagrees with the records present");
    }
    saw_footer_ = true;
    return RecordStatus::kFooter;
  }
  if (magic != kRecordMagic) {
    return fail(RecordStatus::kCorrupt, "corrupt trace record marker");
  }
  std::uint64_t size = 0;
  in_.read(reinterpret_cast<char*>(&size), sizeof(size));
  if (!in_.good()) {
    return fail(RecordStatus::kTruncated, "file ends inside a record header");
  }
  // Bound the payload by the bytes actually left in the file before
  // allocating — a torn/bit-flipped size field must not trigger a
  // multi-gigabyte allocation.
  const std::uint64_t pos = static_cast<std::uint64_t>(in_.tellg());
  if (size > file_bytes_ - pos) {
    return fail(RecordStatus::kTruncated, "record payload exceeds the file");
  }
  std::string payload(static_cast<std::size_t>(size), '\0');
  in_.read(payload.data(), static_cast<std::streamsize>(size));
  std::uint64_t checksum = 0;
  in_.read(reinterpret_cast<char*>(&checksum), sizeof(checksum));
  if (!in_.good()) {
    return fail(RecordStatus::kTruncated, "record cut off mid-write");
  }
  if (fnv1a(payload.data(), payload.size()) != checksum) {
    return fail(RecordStatus::kCorrupt, "trace record checksum mismatch");
  }
  Cursor c(payload.data(), payload.size());
  if (!parse_record(c, out)) {
    return fail(RecordStatus::kCorrupt, "corrupt trace record body");
  }
  ++records_;
  good_offset_ = static_cast<std::uint64_t>(in_.tellg());
  return RecordStatus::kRecord;
}

bool TraceReader::next(SlotTraceRecord& out) {
  std::string error;
  switch (next_status(out, &error)) {
    case RecordStatus::kRecord:
      return true;
    case RecordStatus::kFooter:
    case RecordStatus::kTruncated:
      return false;
    case RecordStatus::kCorrupt:
      MECSC_CHECK_MSG(false, error.empty() ? "corrupt trace record" : error);
  }
  return false;
}

TraceInspection inspect_trace(const std::string& path) {
  TraceReader reader(path);
  TraceInspection insp;
  insp.config = reader.config();
  insp.version = kVersion;
  insp.file_bytes = reader.file_bytes();
  SlotTraceRecord rec;
  for (;;) {
    const std::uint64_t offset = reader.last_good_offset();
    std::string error;
    const RecordStatus status = reader.next_status(rec, &error);
    if (status == RecordStatus::kRecord) {
      TraceRecordInfo info;
      info.slot = rec.slot;
      info.flags = rec.flags;
      info.offset = offset;
      // Record framing is marker(4) + size(8) + payload + checksum(8).
      info.payload_bytes = reader.last_good_offset() - offset - 20;
      insp.records.push_back(info);
      continue;
    }
    if (status == RecordStatus::kFooter) {
      insp.sealed = true;
    } else {
      insp.tail_error = error;
    }
    break;
  }
  insp.salvage_offset = reader.last_good_offset();
  insp.salvage_records = reader.records_read();
  // Second pass for the per-record checksums: cheap (sequential read)
  // and keeps the reader's hot path free of bookkeeping.
  if (!insp.records.empty()) {
    std::ifstream in(path, std::ios::binary);
    for (TraceRecordInfo& info : insp.records) {
      in.seekg(static_cast<std::streamoff>(info.offset + 12 +
                                           info.payload_bytes));
      std::uint64_t checksum = 0;
      in.read(reinterpret_cast<char*>(&checksum), sizeof(checksum));
      info.checksum = checksum;
    }
  }
  return insp;
}

std::vector<std::uint8_t> pack_cached_bits(
    const std::vector<std::vector<bool>>& cached) {
  const std::size_t services = cached.size();
  const std::size_t stations = services == 0 ? 0 : cached.front().size();
  std::vector<std::uint8_t> bits((services * stations + 7) / 8, 0);
  for (std::size_t k = 0; k < services; ++k) {
    for (std::size_t i = 0; i < stations; ++i) {
      if (cached[k][i]) {
        const std::size_t bit = k * stations + i;
        bits[bit / 8] |= static_cast<std::uint8_t>(1U << (bit % 8));
      }
    }
  }
  return bits;
}

bool trace_well_formed(const std::string& path, std::size_t* slots_out) {
  try {
    TraceReader reader(path);
    SlotTraceRecord rec;
    while (reader.next(rec)) {
    }
    if (slots_out != nullptr) *slots_out = reader.records_read();
    return reader.saw_footer();
  } catch (const std::exception&) {
    return false;
  }
}

}  // namespace mecsc::serve
