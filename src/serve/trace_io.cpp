#include "serve/trace_io.h"

#include <cstring>

#include "common/error.h"

namespace mecsc::serve {

namespace {

constexpr std::uint32_t kHeaderMagic = 0x5443454DU;  // "MECT" little-endian
constexpr std::uint32_t kRecordMagic = 0x544F4C53U;  // "SLOT"
constexpr std::uint32_t kFooterMagic = 0x444E4554U;  // "TEND"
constexpr std::uint16_t kVersion = 1;

std::uint64_t fnv1a(const char* data, std::size_t n) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 0x100000001b3ULL;
  }
  return h;
}

// Fixed-width little-endian serialisation into a growable byte buffer.
// The repo only targets little-endian hosts (x86-64/AArch64), so the
// raw-memcpy encoding doubles as the canonical on-disk byte order.
void put_bytes(std::string& buf, const void* p, std::size_t n) {
  buf.append(static_cast<const char*>(p), n);
}
template <typename T>
void put(std::string& buf, T v) {
  put_bytes(buf, &v, sizeof(v));
}

class Cursor {
 public:
  Cursor(const char* data, std::size_t size) : data_(data), size_(size) {}
  bool take(void* out, std::size_t n) {
    if (pos_ + n > size_) return false;
    std::memcpy(out, data_ + pos_, n);
    pos_ += n;
    return true;
  }
  template <typename T>
  bool take(T& out) {
    return take(&out, sizeof(T));
  }

 private:
  const char* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

std::string serialize_record(const SlotTraceRecord& r) {
  std::string buf;
  buf.reserve(64 + r.demands.size() * 12 + r.unit_delays.size() * 8 +
              r.station_of_request.size() * 2 + r.cached_bits.size());
  put(buf, r.slot);
  put(buf, static_cast<std::uint32_t>(r.demands.size()));
  for (const auto& [id, demand] : r.demands) {
    put(buf, id);
    put(buf, demand);
  }
  put(buf, static_cast<std::uint32_t>(r.unit_delays.size()));
  put_bytes(buf, r.unit_delays.data(), r.unit_delays.size() * sizeof(double));
  put(buf, static_cast<std::uint32_t>(r.station_of_request.size()));
  put_bytes(buf, r.station_of_request.data(),
            r.station_of_request.size() * sizeof(std::uint16_t));
  put(buf, static_cast<std::uint32_t>(r.cached_bits.size()));
  put_bytes(buf, r.cached_bits.data(), r.cached_bits.size());
  put(buf, r.ingested);
  put(buf, r.shed);
  put(buf, r.shed_penalty_ms);
  put(buf, r.avg_delay_ms);
  put(buf, r.decide_ms);
  return buf;
}

bool parse_record(Cursor& c, SlotTraceRecord& r) {
  std::uint32_t n = 0;
  if (!c.take(r.slot) || !c.take(n)) return false;
  r.demands.resize(n);
  for (auto& [id, demand] : r.demands) {
    if (!c.take(id) || !c.take(demand)) return false;
  }
  if (!c.take(n)) return false;
  r.unit_delays.resize(n);
  if (!c.take(r.unit_delays.data(), n * sizeof(double))) return false;
  if (!c.take(n)) return false;
  r.station_of_request.resize(n);
  if (!c.take(r.station_of_request.data(), n * sizeof(std::uint16_t))) {
    return false;
  }
  if (!c.take(n)) return false;
  r.cached_bits.resize(n);
  if (!c.take(r.cached_bits.data(), n)) return false;
  return c.take(r.ingested) && c.take(r.shed) && c.take(r.shed_penalty_ms) &&
         c.take(r.avg_delay_ms) && c.take(r.decide_ms);
}

std::string serialize_config(const TraceConfig& cfg) {
  std::string buf;
  put(buf, cfg.seed);
  put(buf, cfg.num_stations);
  put(buf, cfg.num_requests);
  put(buf, cfg.num_services);
  put(buf, cfg.horizon);
  put(buf, cfg.slot_ms);
  put(buf, cfg.bursty);
  put(buf, cfg.aggregate);
  put(buf, cfg.algo_seed);
  put(buf, cfg.shed_penalty_ms);
  return buf;
}

}  // namespace

TraceWriter::TraceWriter(const std::string& path, const TraceConfig& config)
    : out_(path, std::ios::binary | std::ios::trunc) {
  MECSC_CHECK_MSG(out_.good(), "cannot open trace file for writing: " + path);
  std::string buf;
  put(buf, kHeaderMagic);
  put(buf, kVersion);
  buf += serialize_config(config);
  out_.write(buf.data(), static_cast<std::streamsize>(buf.size()));
}

TraceWriter::~TraceWriter() { close(); }

void TraceWriter::append(const SlotTraceRecord& record) {
  MECSC_CHECK_MSG(!closed_, "append on a closed trace");
  const std::string payload = serialize_record(record);
  std::string buf;
  put(buf, kRecordMagic);
  put(buf, static_cast<std::uint64_t>(payload.size()));
  buf += payload;
  put(buf, fnv1a(payload.data(), payload.size()));
  out_.write(buf.data(), static_cast<std::streamsize>(buf.size()));
  ++records_;
}

void TraceWriter::flush() { out_.flush(); }

void TraceWriter::close() {
  if (closed_) return;
  std::string buf;
  put(buf, kFooterMagic);
  put(buf, static_cast<std::uint64_t>(records_));
  out_.write(buf.data(), static_cast<std::streamsize>(buf.size()));
  out_.flush();
  out_.close();
  closed_ = true;
}

TraceReader::TraceReader(const std::string& path)
    : in_(path, std::ios::binary) {
  MECSC_CHECK_MSG(in_.good(), "cannot open trace file: " + path);
  std::uint32_t magic = 0;
  std::uint16_t version = 0;
  in_.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  in_.read(reinterpret_cast<char*>(&version), sizeof(version));
  MECSC_CHECK_MSG(in_.good() && magic == kHeaderMagic,
                  "not a mecsc serve trace: " + path);
  MECSC_CHECK_MSG(version == kVersion, "unsupported trace version");
  std::string cfg = serialize_config(config_);  // template for the size
  in_.read(cfg.data(), static_cast<std::streamsize>(cfg.size()));
  MECSC_CHECK_MSG(in_.good(), "truncated trace header: " + path);
  Cursor c(cfg.data(), cfg.size());
  c.take(config_.seed);
  c.take(config_.num_stations);
  c.take(config_.num_requests);
  c.take(config_.num_services);
  c.take(config_.horizon);
  c.take(config_.slot_ms);
  c.take(config_.bursty);
  c.take(config_.aggregate);
  c.take(config_.algo_seed);
  c.take(config_.shed_penalty_ms);
}

bool TraceReader::next(SlotTraceRecord& out) {
  if (saw_footer_) return false;
  std::uint32_t magic = 0;
  in_.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  if (!in_.good()) return false;  // truncated tail (no footer)
  if (magic == kFooterMagic) {
    std::uint64_t count = 0;
    in_.read(reinterpret_cast<char*>(&count), sizeof(count));
    saw_footer_ = in_.good() && count == records_;
    return false;
  }
  MECSC_CHECK_MSG(magic == kRecordMagic, "corrupt trace record marker");
  std::uint64_t size = 0;
  in_.read(reinterpret_cast<char*>(&size), sizeof(size));
  if (!in_.good()) return false;
  std::string payload(size, '\0');
  in_.read(payload.data(), static_cast<std::streamsize>(size));
  std::uint64_t checksum = 0;
  in_.read(reinterpret_cast<char*>(&checksum), sizeof(checksum));
  if (!in_.good()) return false;  // record cut off mid-write
  MECSC_CHECK_MSG(fnv1a(payload.data(), payload.size()) == checksum,
                  "trace record checksum mismatch");
  Cursor c(payload.data(), payload.size());
  MECSC_CHECK_MSG(parse_record(c, out), "corrupt trace record body");
  ++records_;
  return true;
}

std::vector<std::uint8_t> pack_cached_bits(
    const std::vector<std::vector<bool>>& cached) {
  const std::size_t services = cached.size();
  const std::size_t stations = services == 0 ? 0 : cached.front().size();
  std::vector<std::uint8_t> bits((services * stations + 7) / 8, 0);
  for (std::size_t k = 0; k < services; ++k) {
    for (std::size_t i = 0; i < stations; ++i) {
      if (cached[k][i]) {
        const std::size_t bit = k * stations + i;
        bits[bit / 8] |= static_cast<std::uint8_t>(1U << (bit % 8));
      }
    }
  }
  return bits;
}

bool trace_well_formed(const std::string& path, std::size_t* slots_out) {
  try {
    TraceReader reader(path);
    SlotTraceRecord rec;
    while (reader.next(rec)) {
    }
    if (slots_out != nullptr) *slots_out = reader.records_read();
    return reader.saw_footer();
  } catch (const std::exception&) {
    return false;
  }
}

}  // namespace mecsc::serve
