#include "serve/service.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <utility>

#include "common/env.h"
#include "common/error.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "serve/query.h"
#include "serve/replay.h"

namespace mecsc::serve {

namespace {

using Clock = std::chrono::steady_clock;

double ms_between(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<double, std::milli>(to - from).count();
}

}  // namespace

ServeOptions serve_options_from_env() {
  ServeOptions options;
  options.slot_ms = common::env_size_or("MECSC_SERVE_SLOT_MS", options.slot_ms);
  options.shards = common::env_size_or("MECSC_SERVE_SHARDS", options.shards);
  options.queue_capacity =
      common::env_size_or("MECSC_SERVE_QUEUE_CAP", options.queue_capacity);
  options.submit_retries =
      common::env_size_or("MECSC_SERVE_RETRY_CAP", options.submit_retries);
  options.checkpoint_every =
      common::env_size_or("MECSC_CHECKPOINT_EVERY", options.checkpoint_every);
  if (const char* v = std::getenv("MECSC_TRACE_OUT");
      v != nullptr && *v != '\0') {
    options.trace_out = v;
  }
  return options;
}

sim::ScenarioParams scenario_params(const ServeOptions& options) {
  sim::ScenarioParams params;
  params.num_stations = options.num_stations;
  params.horizon = options.horizon;
  params.bursty = options.bursty;
  params.workload.num_requests = options.num_requests;
  params.workload.num_services = options.num_services;
  params.seed = options.seed;
  return params;
}

SlotService::SlotService(ServeOptions options) : options_(std::move(options)) {
  MECSC_CHECK_MSG(options_.horizon >= 1, "serve horizon must be >= 1 slot");
  MECSC_CHECK_MSG(options_.slot_ms >= 1, "slot length must be >= 1 ms");
  MECSC_CHECK_MSG(options_.num_stations >= 1 && options_.num_stations <= 65535,
                  "serve supports 1..65535 stations (trace format limit)");
  MECSC_CHECK_MSG(options_.shed_penalty_ms >= 0.0,
                  "shed penalty must be non-negative");

  if (options_.checkpoint_every > 0 || options_.resume) {
    MECSC_CHECK_MSG(!options_.trace_out.empty(),
                    "checkpointing requires a trace (checkpoints store trace "
                    "offsets); set --trace/MECSC_TRACE_OUT");
    if (options_.checkpoint_path.empty()) {
      options_.checkpoint_path = options_.trace_out + ".ckpt";
    }
  }

  scenario_ = std::make_unique<sim::Scenario>(scenario_params(options_));

  queue_ = std::make_unique<ShardedIngestQueue>(options_.shards,
                                                options_.queue_capacity);

  algorithms::OlOptions ol_options;
  ol_options.aggregate = scenario_->aggregate_mode();
  ol_options.solver = scenario_->solver_tier();
  algorithm_ = std::make_unique<algorithms::OnlineCachingAlgorithm>(
      "OL_GD", scenario_->problem(), ol_options, scenario_->algorithm_seed(0));
  engine_ = std::make_unique<sim::SlotEngine>(scenario_->problem());
  // Fault-churn composition: the engine runs the injector's per-slot
  // effects exactly like the batch simulator, and every slot's realised
  // fault state is recorded into the trace (kSlotFlagFaults), so replay
  // stays bit-for-bit without the plan.
  if (scenario_->mutable_fault_injector() != nullptr) {
    engine_->set_fault_injector(scenario_->mutable_fault_injector());
  }

  producer_count_ = options_.producers > 0 ? options_.producers : 1;
  producers_done_ =
      std::vector<std::atomic<std::uint32_t>>(options_.horizon);
  shed_per_slot_ = std::vector<std::atomic<std::uint32_t>>(options_.horizon);

  if (options_.resume) {
    resume_from_checkpoint();
  } else if (!options_.trace_out.empty()) {
    trace_ = std::make_unique<TraceWriter>(
        options_.trace_out, trace_config_for(options_, *scenario_));
  }
}

void SlotService::resume_from_checkpoint() {
  const Checkpoint ckpt = read_checkpoint(options_.checkpoint_path);
  const TraceConfig expected = trace_config_for(options_, *scenario_);
  if (!same_trace_config(ckpt.config, expected)) {
    throw ResumeMismatch(
        "checkpoint recipe does not match the daemon's options (seed, sizes, "
        "slot length, aggregation and fault modes must all be identical): " +
        options_.checkpoint_path);
  }
  // The trace on disk must still contain the checkpointed prefix intact
  // — anything past it (torn tail from the crash) is discarded below.
  TraceInspection insp = inspect_trace(options_.trace_out);
  if (!same_trace_config(insp.config, ckpt.config) ||
      insp.salvage_offset < ckpt.trace_offset ||
      insp.salvage_records < ckpt.trace_records) {
    throw ResumeMismatch(
        "trace file does not contain the checkpointed prefix: " +
        options_.trace_out);
  }
  trace_ = TraceWriter::resume(options_.trace_out,
                               static_cast<std::size_t>(ckpt.trace_records),
                               ckpt.trace_offset);
  algorithm_->import_state(ckpt.algo);
  engine_->import_state(ckpt.engine);
  start_slot_ = static_cast<std::size_t>(ckpt.slot) + 1;
  MECSC_CHECK_MSG(start_slot_ <= options_.horizon,
                  "checkpoint is beyond the configured horizon");
  served_ingested_ = ckpt.ingested;
  served_shed_ = ckpt.shed;
  ingested_total_.store(ckpt.ingested, std::memory_order_relaxed);
  shed_total_.store(ckpt.shed, std::memory_order_relaxed);
  ingest_retries_.store(ckpt.ingest_retries, std::memory_order_relaxed);
  ingest_gave_up_.store(ckpt.ingest_gave_up, std::memory_order_relaxed);
  // Replay the fault plan's begin_slot side effects up to the resume
  // point: the injector itself is stateless per slot (the plan is
  // pre-materialised), so nothing to fast-forward there.
}

void SlotService::write_slot_checkpoint(std::size_t t) {
  Checkpoint ckpt;
  ckpt.config = trace_config_for(options_, *scenario_);
  ckpt.slot = static_cast<std::uint32_t>(t);
  ckpt.trace_records = trace_->records_written();
  ckpt.trace_offset = trace_->byte_offset();
  ckpt.ingested = served_ingested_;
  ckpt.shed = served_shed_;
  ckpt.ingest_retries = ingest_retries_.load(std::memory_order_relaxed);
  ckpt.ingest_gave_up = ingest_gave_up_.load(std::memory_order_relaxed);
  ckpt.algo = algorithm_->export_state();
  ckpt.engine = engine_->export_state();
  write_checkpoint(options_.checkpoint_path, ckpt);
}

SlotService::~SlotService() {
  if (!threads_.empty() && !joined_) {
    request_stop();
    join();
  }
}

void SlotService::start() {
  MECSC_CHECK_MSG(threads_.empty() && !joined_, "start() may run only once");
  running_.store(true, std::memory_order_release);
  threads_.emplace_back([this] { decide_loop(); });
  threads_.emplace_back([this] { collector_loop(); });
  for (std::size_t p = 0; p < options_.producers; ++p) {
    threads_.emplace_back([this, p] { producer_loop(p); });
  }
}

bool SlotService::submit(std::uint32_t request, std::uint32_t slot,
                         double demand) {
  const auto& requests = scenario_->problem().requests();
  MECSC_CHECK_MSG(request < requests.size(), "submit: request id out of range");
  const IngestEvent ev{request, slot, demand};
  const std::size_t home = requests[request].home_station;
  if (options_.paced) {
    // Paced producers are lossless: the collector is guaranteed to catch
    // up, so a full shard is only transient backpressure.
    while (!queue_->try_push(home, ev)) {
      if (stop_.load(std::memory_order_acquire)) break;
      std::this_thread::yield();
    }
    if (!stop_.load(std::memory_order_acquire)) return true;
    // Fall through to one last attempt so a stopping run still counts
    // the event as shed rather than silently dropping it.
  }
  // Bounded retry with exponential backoff: the first attempts only
  // yield (a drain pass usually frees cells within microseconds), later
  // ones sleep with doubling pauses capped at 64 µs. Only after the cap
  // (MECSC_SERVE_RETRY_CAP) is the event shed.
  for (std::size_t attempt = 0; attempt <= options_.submit_retries; ++attempt) {
    if (queue_->try_push(home, ev)) {
      if (attempt > 0) {
        ingest_retries_.fetch_add(attempt, std::memory_order_relaxed);
      }
      return true;
    }
    if (attempt < options_.submit_retries) {
      if (attempt < 8) {
        std::this_thread::yield();
      } else {
        const std::size_t shift = std::min<std::size_t>(attempt - 8, 6);
        std::this_thread::sleep_for(std::chrono::microseconds(1ULL << shift));
      }
    }
  }
  ingest_retries_.fetch_add(options_.submit_retries, std::memory_order_relaxed);
  ingest_gave_up_.fetch_add(1, std::memory_order_relaxed);
  if (slot < shed_per_slot_.size()) {
    shed_per_slot_[slot].fetch_add(1, std::memory_order_relaxed);
  }
  shed_total_.fetch_add(1, std::memory_order_relaxed);
  return false;
}

void SlotService::producer_done(std::size_t slot) {
  if (slot < producers_done_.size()) {
    producers_done_[slot].fetch_add(1, std::memory_order_release);
  }
}

void SlotService::producer_loop(std::size_t producer_index) {
  const core::CachingProblem& problem = scenario_->problem();
  const workload::DemandMatrix& demands = scenario_->demands();
  const std::size_t n = problem.num_requests();
  // Static request partition: exactly one producer owns each request id,
  // so a (request, slot) pair is submitted at most once and snapshot
  // accumulation is exact regardless of shard count.
  const std::size_t lo = producer_index * n / producer_count_;
  const std::size_t hi = (producer_index + 1) * n / producer_count_;
  for (std::size_t t = start_slot_; t < options_.horizon; ++t) {
    while (open_slot_.load(std::memory_order_acquire) <
           static_cast<std::int64_t>(t)) {
      if (stop_.load(std::memory_order_acquire)) return;
      std::this_thread::yield();
    }
    if (stop_.load(std::memory_order_acquire)) return;
    for (std::size_t l = lo; l < hi; ++l) {
      const double demand = demands.at(l, t);
      if (demand <= 0.0) continue;
      submit(static_cast<std::uint32_t>(l), static_cast<std::uint32_t>(t),
             demand);
    }
    producer_done(t);
  }
}

void SlotService::collector_loop() {
  const std::size_t n = scenario_->problem().num_requests();
  const auto slot_len = std::chrono::milliseconds(options_.slot_ms);
  std::vector<IngestEvent> buffer;
  buffer.reserve(4096);
  bool stopping = false;
  for (std::size_t t = start_slot_; t < options_.horizon && !stopping; ++t) {
    SlotBatch batch;
    batch.slot = t;
    batch.snapshot.assign(n, 0.0);
    const auto opened = Clock::now();
    const auto deadline = opened + slot_len;
    const auto min_deadline =
        opened + std::chrono::milliseconds(options_.paced_min_slot_ms);
    open_slot_.store(static_cast<std::int64_t>(t), std::memory_order_release);
    for (;;) {
      buffer.clear();
      queue_->drain(buffer, static_cast<std::size_t>(-1));
      for (const IngestEvent& ev : buffer) {
        if (ev.request < n) {
          batch.snapshot[ev.request] += ev.demand;
          ++batch.ingested;
        }
      }
      stopping = stop_.load(std::memory_order_acquire);
      bool close = stopping;
      if (options_.paced) {
        // Data-paced close: every producer finished the slot. Their
        // done-flags release-order after their pushes, so one final
        // drain below observes every event of the slot. The optional
        // minimum-dwell deadline (paced_min_slot_ms) delays the close
        // without changing the snapshot — producers are already done.
        bool done = producers_done_[t].load(std::memory_order_acquire) >=
                    producer_count_;
        if (done && options_.paced_min_slot_ms > 0) {
          done = Clock::now() >= min_deadline;
        }
        close = close || done;
      } else {
        close = close || Clock::now() >= deadline;
      }
      if (close) {
        buffer.clear();
        queue_->drain(buffer, static_cast<std::size_t>(-1));
        for (const IngestEvent& ev : buffer) {
          if (ev.request < n) {
            batch.snapshot[ev.request] += ev.demand;
            ++batch.ingested;
          }
        }
        break;
      }
      if (options_.paced) {
        std::this_thread::yield();
      } else {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
      }
    }
    batch.ingest_wall_ms = ms_between(opened, Clock::now());
    batch.queue_depth = queue_->approx_depth();
    batch.shed = shed_per_slot_[t].load(std::memory_order_relaxed);
    ingested_total_.fetch_add(batch.ingested, std::memory_order_relaxed);
    {
      std::unique_lock<std::mutex> lock(handoff_mu_);
      handoff_push_cv_.wait(lock, [this] { return !pending_.has_value(); });
      pending_ = std::move(batch);
      if (stopping && t + 1 < options_.horizon) stopped_early_ = true;
    }
    handoff_pop_cv_.notify_one();
  }
  {
    std::lock_guard<std::mutex> lock(handoff_mu_);
    ingest_finished_ = true;
  }
  handoff_pop_cv_.notify_one();
}

void SlotService::decide_loop() {
  const core::CachingProblem& problem = scenario_->problem();
  const std::size_t n = problem.num_requests();
  obs::Registry& registry = obs::default_registry();
  for (;;) {
    SlotBatch batch;
    {
      std::unique_lock<std::mutex> lock(handoff_mu_);
      handoff_pop_cv_.wait(
          lock, [this] { return pending_.has_value() || ingest_finished_; });
      if (!pending_.has_value()) break;
      batch = std::move(*pending_);
      pending_.reset();
    }
    handoff_push_cv_.notify_one();

    const std::size_t t = batch.slot;
    const std::vector<double>& delays =
        scenario_->simulator().unit_delays(t);

    // Decide-deadline watchdog (wall-clock mode only): one over-budget
    // decide hints the next slot straight to the degraded solver; two
    // consecutive misses re-commit the previous placement without
    // deciding at all, so a stuck solver can never stall ingest. The
    // chosen mode is recorded in the trace flags — replay honours them,
    // which keeps the bit-identity contract under wall-clock timing.
    std::uint32_t slot_flags = 0;
    bool recommit = false;
    const bool watchdog_active = options_.watchdog && !options_.paced;
    if (watchdog_active && watchdog_streak_ > 0) {
      if (watchdog_streak_ >= 2 && engine_->has_decision()) {
        recommit = true;
        slot_flags |= kSlotFlagRecommit;
      } else {
        algorithm_->set_decide_hint(2);
        slot_flags |= kSlotFlagDegradedHint;
        ++watchdog_degraded_;
      }
    }

    if (!recommit) algorithm_->set_live_demands(batch.snapshot);
    sim::SlotRecord record =
        engine_->step(t, *algorithm_, batch.snapshot, delays, !recommit);

    // Fault-side shed accounting as the engine recorded it — captured
    // before the serve-side fold below so the trace keeps the two
    // contributions separate (replay folds each side exactly once).
    const auto fault_shed_requests =
        static_cast<std::uint32_t>(record.fault_shed_requests);
    const double fault_shed_penalty_ms = record.fault_shed_penalty_ms;

    if (batch.shed > 0) {
      // Admission-control shedding, accounted exactly as the fault
      // subsystem's shedding path: the per-request penalty folds into
      // the slot objective pre-averaging.
      fault::SlotFaultSummary shed_summary;
      shed_summary.shed_requests = batch.shed;
      shed_summary.shed_penalty_ms =
          static_cast<double>(batch.shed) * options_.shed_penalty_ms;
      record.fault_shed_requests += shed_summary.shed_requests;
      record.fault_shed_penalty_ms += shed_summary.shed_penalty_ms;
      const double per_request =
          shed_summary.shed_penalty_ms / static_cast<double>(n == 0 ? 1 : n);
      record.avg_delay_ms += per_request;
      record.avg_delay_incremental_ms += per_request;
    }

    commit(t);
    served_ingested_ += batch.ingested;
    served_shed_ += batch.shed;

    if (trace_ != nullptr) {
      SlotTraceRecord tr;
      tr.slot = static_cast<std::uint32_t>(t);
      for (std::size_t l = 0; l < n; ++l) {
        if (batch.snapshot[l] != 0.0) {
          tr.demands.emplace_back(static_cast<std::uint32_t>(l),
                                  batch.snapshot[l]);
        }
      }
      tr.unit_delays = delays;
      const core::Assignment& decision = engine_->last_decision();
      tr.station_of_request.reserve(n);
      for (std::size_t station : decision.station_of_request) {
        tr.station_of_request.push_back(static_cast<std::uint16_t>(station));
      }
      tr.cached_bits = pack_cached_bits(decision.cached);
      tr.ingested = batch.ingested;
      tr.shed = batch.shed;
      tr.shed_penalty_ms =
          static_cast<double>(batch.shed) * options_.shed_penalty_ms;
      tr.avg_delay_ms = record.avg_delay_ms;
      tr.decide_ms = record.decision_time_ms;
      tr.flags = slot_flags;
      const fault::FaultInjector* injector = scenario_->fault_injector();
      if (injector != nullptr) {
        // Realised fault state of the slot — everything step_recorded
        // needs to reproduce the engine's fault arithmetic at replay
        // without the plan.
        tr.flags |= kSlotFlagFaults;
        const fault::SlotFaults& sf = injector->plan().slot(t);
        tr.station_up.assign(sf.station_up.begin(), sf.station_up.end());
        tr.feedback_lost.assign(sf.feedback_lost.begin(),
                                sf.feedback_lost.end());
        tr.effective_capacity_mhz = injector->effective_capacities();
        tr.outage_penalty_factor =
            injector->plan().options().outage_penalty_factor;
        tr.fault_shed_requests = fault_shed_requests;
        tr.fault_shed_penalty_ms = fault_shed_penalty_ms;
      }
      trace_->append(tr);
      trace_->flush();
      if (options_.checkpoint_every > 0 &&
          (t + 1) % options_.checkpoint_every == 0) {
        write_slot_checkpoint(t);
      }
    }

    // Live serve.* telemetry — written directly (not via the gated
    // MECSC_* macros): these gauges are the service's operational
    // surface, not optional debug instrumentation.
    const double slot_ms = static_cast<double>(options_.slot_ms);
    registry.gauge("serve.ingest_rate_rps")
        .set(batch.ingest_wall_ms > 0.0
                 ? static_cast<double>(batch.ingested) * 1000.0 /
                       batch.ingest_wall_ms
                 : 0.0);
    registry.gauge("serve.queue_depth")
        .set(static_cast<double>(batch.queue_depth));
    registry.gauge("serve.slot_deadline_margin_ms")
        .set(slot_ms - record.decision_time_ms);
    const double offered = static_cast<double>(batch.ingested) +
                           static_cast<double>(batch.shed);
    registry.gauge("serve.shed_fraction")
        .set(offered > 0.0 ? static_cast<double>(batch.shed) / offered : 0.0);
    registry.counter("serve.slots").inc();
    registry.counter("serve.ingested").add(static_cast<double>(batch.ingested));
    registry.counter("serve.shed").add(static_cast<double>(batch.shed));
    registry.histogram("serve.decide_ms").observe(record.decision_time_ms);
    registry.gauge("serve.ingest_retries")
        .set(static_cast<double>(
            ingest_retries_.load(std::memory_order_relaxed)));
    registry.gauge("serve.ingest_gave_up")
        .set(static_cast<double>(
            ingest_gave_up_.load(std::memory_order_relaxed)));
    const bool missed = record.decision_time_ms > slot_ms;
    if (missed) {
      ++deadline_misses_;
      registry.counter("serve.deadline_misses").inc();
    }
    if (watchdog_active) {
      if (recommit) {
        // A re-commit costs ~no decide time; retry a (hinted) decide
        // next slot rather than re-committing forever.
        watchdog_streak_ = 1;
        ++watchdog_recommits_;
        registry.counter("serve.watchdog_recommits").inc();
      } else if (missed) {
        ++watchdog_streak_;
      } else {
        watchdog_streak_ = 0;
      }
    }
    export_prometheus();

    slot_records_.push_back(std::move(record));
  }
  engine_->end_run();
}

void SlotService::commit(std::size_t slot) {
  auto decision = std::make_shared<CommittedDecision>();
  decision->slot = slot;
  decision->station_of_request = engine_->last_decision().station_of_request;
  decision->cached = engine_->last_decision().cached;
  std::lock_guard<std::mutex> lock(committed_mu_);
  committed_ = std::move(decision);
}

void SlotService::export_prometheus() const {
  if (options_.prom_out.empty()) return;
  std::ofstream out(options_.prom_out, std::ios::trunc);
  if (out.good()) obs::write_prometheus(obs::default_registry(), out);
}

ServeReport SlotService::join() {
  if (joined_) return report_;
  for (std::thread& thread : threads_) {
    if (thread.joinable()) thread.join();
  }
  threads_.clear();
  if (trace_ != nullptr) trace_->close();
  export_prometheus();
  running_.store(false, std::memory_order_release);
  joined_ = true;

  ServeReport report;
  report.slots_served = slot_records_.size();
  report.ingested = ingested_total_.load(std::memory_order_relaxed);
  report.shed = shed_total_.load(std::memory_order_relaxed);
  report.ingest_retries = ingest_retries_.load(std::memory_order_relaxed);
  report.ingest_gave_up = ingest_gave_up_.load(std::memory_order_relaxed);
  report.deadline_misses = deadline_misses_;
  report.watchdog_recommits = watchdog_recommits_;
  report.watchdog_degraded = watchdog_degraded_;
  report.stopped_early = stopped_early_;
  if (!slot_records_.empty()) {
    double delay_sum = 0.0;
    std::vector<double> decide_ms;
    decide_ms.reserve(slot_records_.size());
    for (const sim::SlotRecord& record : slot_records_) {
      delay_sum += record.avg_delay_ms;
      decide_ms.push_back(record.decision_time_ms);
    }
    report.mean_delay_ms = delay_sum / static_cast<double>(decide_ms.size());
    std::sort(decide_ms.begin(), decide_ms.end());
    std::size_t p99_index = static_cast<std::size_t>(
        std::ceil(0.99 * static_cast<double>(decide_ms.size())));
    if (p99_index > 0) --p99_index;
    p99_index = std::min(p99_index, decide_ms.size() - 1);
    report.p99_decide_ms = decide_ms[p99_index];
    report.max_decide_ms = decide_ms.back();
  }
  report_ = report;
  return report;
}

std::string SlotService::handle_query(const std::string& line) const {
  const auto q = query::string_field(line, "q");
  if (!q.has_value()) {
    return query::error_line("missing \"q\" field (request | service | stats)");
  }
  const core::CachingProblem& problem = scenario_->problem();
  std::ostringstream out;
  if (*q == "stats") {
    const auto decision = committed();
    out << "{\"q\":\"stats\",\"open_slot\":" << open_slot()
        << ",\"committed_slot\":"
        << (decision ? static_cast<std::int64_t>(decision->slot) : -1)
        << ",\"ingested\":" << ingested_total_.load(std::memory_order_relaxed)
        << ",\"shed\":" << shed_total_.load(std::memory_order_relaxed)
        << ",\"queue_depth\":" << queue_->approx_depth() << "}";
    return out.str();
  }
  const auto id = query::uint_field(line, "id");
  if (!id.has_value()) return query::error_line("missing \"id\" field");
  const auto decision = committed();
  if (decision == nullptr) {
    return query::error_line("no decision committed yet");
  }
  if (*q == "request") {
    if (*id >= decision->station_of_request.size()) {
      return query::error_line("request id out of range");
    }
    const std::size_t l = static_cast<std::size_t>(*id);
    out << "{\"q\":\"request\",\"id\":" << l
        << ",\"slot\":" << decision->slot
        << ",\"station\":" << decision->station_of_request[l]
        << ",\"service\":" << problem.requests()[l].service_id
        << ",\"home\":" << problem.requests()[l].home_station << "}";
    return out.str();
  }
  if (*q == "service") {
    if (*id >= decision->cached.size()) {
      return query::error_line("service id out of range");
    }
    out << "{\"q\":\"service\",\"id\":" << *id
        << ",\"slot\":" << decision->slot << ",\"stations\":[";
    bool first = true;
    const std::vector<bool>& row = decision->cached[*id];
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (!row[i]) continue;
      if (!first) out << ",";
      out << i;
      first = false;
    }
    out << "]}";
    return out.str();
  }
  return query::error_line("unknown query \"" + *q + "\"");
}

}  // namespace mecsc::serve
