#include "serve/query.h"

#include <cctype>

namespace mecsc::serve::query {

namespace {

/// Position just past `"key"` followed by optional spaces and a colon,
/// or npos when the line does not contain the key.
std::size_t value_start(const std::string& json, const std::string& key) {
  const std::string needle = "\"" + key + "\"";
  std::size_t pos = json.find(needle);
  while (pos != std::string::npos) {
    std::size_t p = pos + needle.size();
    while (p < json.size() && std::isspace(static_cast<unsigned char>(json[p]))) {
      ++p;
    }
    if (p < json.size() && json[p] == ':') {
      ++p;
      while (p < json.size() &&
             std::isspace(static_cast<unsigned char>(json[p]))) {
        ++p;
      }
      return p;
    }
    // A value happened to contain the needle; keep looking for a key.
    pos = json.find(needle, pos + 1);
  }
  return std::string::npos;
}

}  // namespace

std::optional<std::string> string_field(const std::string& json,
                                        const std::string& key) {
  const std::size_t p = value_start(json, key);
  if (p == std::string::npos || p >= json.size() || json[p] != '"') {
    return std::nullopt;
  }
  const std::size_t end = json.find('"', p + 1);
  if (end == std::string::npos) return std::nullopt;
  return json.substr(p + 1, end - p - 1);
}

std::optional<std::uint64_t> uint_field(const std::string& json,
                                        const std::string& key) {
  const std::size_t p = value_start(json, key);
  if (p == std::string::npos || p >= json.size() ||
      !std::isdigit(static_cast<unsigned char>(json[p]))) {
    return std::nullopt;
  }
  std::uint64_t v = 0;
  std::size_t i = p;
  while (i < json.size() && std::isdigit(static_cast<unsigned char>(json[i]))) {
    v = v * 10 + static_cast<std::uint64_t>(json[i] - '0');
    ++i;
  }
  return v;
}

std::string error_line(const std::string& message) {
  std::string out = "{\"error\":\"";
  for (char c : message) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  out += "\"}";
  return out;
}

}  // namespace mecsc::serve::query
