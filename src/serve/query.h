#ifndef MECSC_SERVE_QUERY_H
#define MECSC_SERVE_QUERY_H

// Minimal line-delimited JSON helpers for the serve query API
// (DESIGN.md "Streaming service architecture"). The protocol is flat
// single-line objects with string and unsigned-integer fields only —
// {"q":"request","id":17} — so a full JSON parser would be dead weight;
// these helpers extract exactly what the protocol uses and reject the
// rest. SlotService::handle_query builds on them.

#include <cstdint>
#include <optional>
#include <string>

namespace mecsc::serve::query {

/// Extracts the string value of `"key":"value"` from a flat JSON
/// object line. Returns nullopt when the key is absent or its value is
/// not a (escape-free) string.
std::optional<std::string> string_field(const std::string& json,
                                        const std::string& key);

/// Extracts the non-negative integer value of `"key":123`. Returns
/// nullopt when the key is absent or the value is not a plain integer.
std::optional<std::uint64_t> uint_field(const std::string& json,
                                        const std::string& key);

/// One-line {"error":"message"} response (message JSON-escaped).
std::string error_line(const std::string& message);

}  // namespace mecsc::serve::query

#endif  // MECSC_SERVE_QUERY_H
