#ifndef MECSC_SERVE_INGEST_QUEUE_H
#define MECSC_SERVE_INGEST_QUEUE_H

// Lock-free sharded ingest queue of the mecsc::serve subsystem
// (DESIGN.md "Streaming service architecture").
//
// Requests enter the service through this queue: producers (network
// front-ends, synthetic generators, trace replayers) push IngestEvents
// into the shard owning the request's home base station; the single
// collector thread drains all shards when accumulating a slot's demand
// snapshot.
//
// Each shard is a bounded MPSC ring in the style of Vyukov's bounded
// MPMC queue: every cell carries a sequence counter, producers claim
// cells with one fetch_add on the enqueue cursor, and the (single)
// consumer releases cells by bumping their sequence one lap forward. No
// locks, no allocation after construction; a full shard rejects the
// push, which is the backpressure signal the admission layer turns into
// load shedding.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace mecsc::serve {

/// One ingested demand contribution: request `request` adds `demand`
/// data units to slot `slot`'s snapshot.
struct IngestEvent {
  std::uint32_t request = 0;  ///< Request id (index into the problem's R).
  std::uint32_t slot = 0;     ///< Slot the producer stamps the event with.
  double demand = 0.0;        ///< Demand units contributed (ρ share).
};

/// Bounded lock-free multi-producer single-consumer ring (one shard).
class MpscRing {
 public:
  /// Capacity is rounded up to the next power of two (min 4).
  explicit MpscRing(std::size_t capacity);
  MpscRing(const MpscRing&) = delete;
  MpscRing& operator=(const MpscRing&) = delete;

  /// Producer side: claims a cell and publishes `ev`. Returns false when
  /// the ring is full (never blocks, never spuriously fails when space
  /// is available).
  bool try_push(const IngestEvent& ev) noexcept;

  /// Consumer side (single consumer only): pops the oldest event.
  bool try_pop(IngestEvent& out) noexcept;

  /// Rounded-up cell count.
  std::size_t capacity() const noexcept { return mask_ + 1; }

  /// Approximate number of queued events (exact when quiescent).
  std::size_t approx_size() const noexcept;

 private:
  struct Cell {
    std::atomic<std::uint64_t> seq;
    IngestEvent ev;
  };

  std::unique_ptr<Cell[]> cells_;
  std::size_t mask_ = 0;
  alignas(64) std::atomic<std::uint64_t> enqueue_{0};
  alignas(64) std::atomic<std::uint64_t> dequeue_{0};
};

/// The sharded front door: shard = home_station % num_shards, so all
/// events of one request land in one shard and a slot snapshot can be
/// accumulated without cross-shard races.
class ShardedIngestQueue {
 public:
  /// `shards` rings of `capacity_per_shard` cells each (both >= 1;
  /// capacities round up to powers of two).
  ShardedIngestQueue(std::size_t shards, std::size_t capacity_per_shard);

  /// Shard owning a home station.
  std::size_t shard_of(std::size_t home_station) const noexcept {
    return home_station % shards_.size();
  }

  /// Pushes `ev` into the shard of `home_station`. Returns false when
  /// that shard is full — the caller sheds the event (admission layer).
  bool try_push(std::size_t home_station, const IngestEvent& ev) noexcept {
    return shards_[shard_of(home_station)]->try_push(ev);
  }

  /// Consumer side: pops one event from shard `s`.
  bool try_pop(std::size_t s, IngestEvent& out) noexcept {
    return shards_[s]->try_pop(out);
  }

  /// Drains up to `max` events from every shard into `out` (appended).
  /// Single-consumer only. Returns the number drained.
  std::size_t drain(std::vector<IngestEvent>& out, std::size_t max);

  std::size_t num_shards() const noexcept { return shards_.size(); }
  std::size_t capacity_per_shard() const noexcept {
    return shards_.front()->capacity();
  }

  /// Approximate total queue depth across shards (the serve.queue_depth
  /// gauge).
  std::size_t approx_depth() const noexcept;

 private:
  std::vector<std::unique_ptr<MpscRing>> shards_;
};

}  // namespace mecsc::serve

#endif  // MECSC_SERVE_INGEST_QUEUE_H
