#ifndef MECSC_SERVE_SERVICE_H
#define MECSC_SERVE_SERVICE_H

// The mecsc::serve slot service (DESIGN.md "Streaming service
// architecture"): a long-running streaming front for the paper's
// per-slot decision pipeline.
//
//   producers ──► ShardedIngestQueue ──► collector ──► decide worker
//   (synthetic /     (lock-free,          (closes       (predict →
//    trace / API)     shard = home         slot t's      aggregate →
//                     station)             snapshot)     LP → round,
//                                                        observe)
//
// The collector accumulates slot t's demand snapshot from the queue and
// closes it on the wall clock (or, in paced mode, when every producer
// finished the slot); the decide worker consumes closed snapshots
// through sim::SlotEngine — the identical decide → score → observe
// protocol the batch simulator runs — while the collector is already
// accumulating slot t+1, so ingest, decide and observe/feedback overlap.
// Admission control sheds events when a shard backs up, accounted with
// the fault subsystem's shedding bookkeeping (fault::SlotFaultSummary,
// same per-request delay penalty). Every committed decision is published
// for the query API, optionally appended to a binary trace
// (serve::TraceWriter), and reflected in live serve.* telemetry.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "algorithms/ol_gd.h"
#include "common/error.h"
#include "fault/fault_injector.h"
#include "serve/checkpoint.h"
#include "serve/ingest_queue.h"
#include "serve/trace_io.h"
#include "sim/scenario.h"
#include "sim/slot_engine.h"

namespace mecsc::serve {

/// Thrown by a resuming SlotService when the checkpoint's recipe does
/// not byte-match the daemon's options, or the trace file does not
/// contain the checkpointed prefix — restoring decision state into a
/// different scenario would be meaningless. The daemon maps this to
/// exit code 4.
class ResumeMismatch : public common::InvalidArgument {
 public:
  using common::InvalidArgument::InvalidArgument;
};

/// Configuration of one service run. Environment defaults come from
/// serve_options_from_env(); flags in `mecsc_serve` override them.
struct ServeOptions {
  std::uint64_t seed = 1;           ///< Scenario root seed.
  std::size_t num_stations = 100;   ///< Base stations (max 65535).
  std::size_t num_requests = 400;   ///< Request population.
  std::size_t num_services = 10;    ///< Service catalogue size.
  std::size_t horizon = 100;        ///< Slots to serve before exiting.
  std::size_t slot_ms = 100;        ///< Wall-clock slot length (MECSC_SERVE_SLOT_MS).
  std::size_t shards = 8;           ///< Ingest shards (MECSC_SERVE_SHARDS).
  std::size_t queue_capacity = 65536;  ///< Cells per shard (MECSC_SERVE_QUEUE_CAP).
  std::size_t producers = 2;        ///< Synthetic producer threads.
  bool bursty = true;               ///< Bursty workload (Figs. 6-7 regime).
  /// Data-paced slots: a slot closes when every producer finished it and
  /// the queue drained, instead of on the wall clock. Deterministic —
  /// used by tests, CI and the replay-identity gates; `slot_ms` then
  /// only serves as the decide-latency deadline.
  bool paced = false;
  /// Per-shed-request delay penalty folded into the slot objective —
  /// the same accounting fault::FaultInjector applies to admission-shed
  /// requests (fault::FaultOptions::shed_penalty_ms).
  double shed_penalty_ms = 250.0;
  /// Producer push retries before an event is shed (wall mode;
  /// MECSC_SERVE_RETRY_CAP). Retries back off exponentially — yields
  /// first, then escalating microsleeps — so a transiently full shard
  /// costs retries, not shed events. Paced producers retry until the
  /// collector catches up and never shed.
  std::size_t submit_retries = 64;
  /// Checkpoint the full decision state every N completed slots
  /// (MECSC_CHECKPOINT_EVERY; 0 = off). Requires a trace
  /// (checkpoints store trace offsets for crash-consistent resume).
  std::size_t checkpoint_every = 0;
  /// Checkpoint file ("" = `trace_out` + ".ckpt").
  std::string checkpoint_path;
  /// Restore state from `checkpoint_path` and continue serving at the
  /// checkpointed slot + 1 (the trace's torn tail is truncated back to
  /// the checkpointed offset). Throws ResumeMismatch on a recipe or
  /// trace mismatch.
  bool resume = false;
  /// Paced mode only: keep each slot open at least this many wall-clock
  /// ms even after every producer finished it. Snapshot contents are
  /// unchanged (producers are done); this merely slows the slot cadence
  /// so crash tests can land a SIGKILL mid-run deterministically.
  std::size_t paced_min_slot_ms = 0;
  /// Decide-deadline watchdog (wall-clock mode only; paced runs are
  /// deterministic and never degraded). After one over-budget decide the
  /// next slot's decide is hinted straight to the degraded solver; after
  /// two consecutive misses the next slot re-commits the previous
  /// placement without deciding at all. Both events are recorded in the
  /// trace's per-record flags, so replay stays bit-identical.
  bool watchdog = true;
  std::string trace_out;            ///< Trace file (MECSC_TRACE_OUT; "" = off).
  std::string prom_out;             ///< Live Prometheus dump path ("" = off).
};

/// ServeOptions with MECSC_SERVE_SLOT_MS / MECSC_SERVE_SHARDS /
/// MECSC_SERVE_QUEUE_CAP / MECSC_TRACE_OUT applied over the defaults.
ServeOptions serve_options_from_env();

/// The scenario recipe shared by the daemon and trace replay: both sides
/// must materialise the identical problem instance from a ServeOptions,
/// or replayed decisions could not be compared bit-for-bit.
sim::ScenarioParams scenario_params(const ServeOptions& options);

/// The latest decision committed by the decide worker, published
/// atomically for the query API.
struct CommittedDecision {
  std::size_t slot = 0;  ///< Slot the decision was committed for.
  std::vector<std::size_t> station_of_request;  ///< Routing per request.
  std::vector<std::vector<bool>> cached;        ///< cached[k][i].
};

/// End-of-run summary.
struct ServeReport {
  std::size_t slots_served = 0;
  std::uint64_t ingested = 0;       ///< Events folded into snapshots.
  std::uint64_t shed = 0;           ///< Events shed by admission control.
  std::uint64_t ingest_retries = 0; ///< Producer pushes retried (backoff).
  std::uint64_t ingest_gave_up = 0; ///< Events shed after the retry cap.
  double mean_delay_ms = 0.0;       ///< Mean realised slot objective.
  double p99_decide_ms = 0.0;       ///< p99 decide() wall-clock.
  double max_decide_ms = 0.0;
  std::size_t deadline_misses = 0;  ///< Slots whose decide() ran past slot_ms.
  std::size_t watchdog_recommits = 0;  ///< Slots re-committed by the watchdog.
  std::size_t watchdog_degraded = 0;   ///< Slots decided under a degraded hint.
  bool stopped_early = false;       ///< True when a stop request cut the run.
};

/// The streaming decision service. Lifecycle: construct → start() →
/// (submit / queries / request_stop) → join(). One run per instance.
class SlotService {
 public:
  /// Materialises the scenario (topology, workload, demand sample paths,
  /// problem) and the pipeline state; throws common::InvalidArgument on
  /// degenerate configs (0 slots, > 65535 stations, ...).
  explicit SlotService(ServeOptions options);
  ~SlotService();
  SlotService(const SlotService&) = delete;
  SlotService& operator=(const SlotService&) = delete;

  const ServeOptions& options() const noexcept { return options_; }
  const sim::Scenario& scenario() const noexcept { return *scenario_; }

  /// Launches the collector, decide worker and (when options_.producers
  /// > 0) the synthetic producers.
  void start();

  /// Asks the pipeline to stop after the slot currently being ingested:
  /// the collector closes it, the decide worker finishes it, the trace
  /// is sealed. Safe to call from a signal-triggered thread.
  void request_stop() noexcept { stop_.store(true, std::memory_order_release); }

  /// True until join() completes.
  bool running() const noexcept { return running_.load(std::memory_order_acquire); }

  /// Waits for the pipeline to finish (horizon served or stop
  /// requested), seals the trace, and returns the run summary.
  ServeReport join();

  /// External producer API: contributes `demand` units for `request` to
  /// slot `slot`'s snapshot. Returns false when the event was shed
  /// (shard full after the configured retries). Thread-safe; callers
  /// must not submit a given request id concurrently from two threads.
  bool submit(std::uint32_t request, std::uint32_t slot, double demand);

  /// Marks one producer done with slot `slot` (paced-mode close
  /// condition). Synthetic producers call this internally.
  void producer_done(std::size_t slot);

  /// Slot currently open for ingest (-1 before start()).
  std::int64_t open_slot() const noexcept {
    return open_slot_.load(std::memory_order_acquire);
  }

  /// Latest committed decision (null until the first slot commits).
  std::shared_ptr<const CommittedDecision> committed() const {
    std::lock_guard<std::mutex> lock(committed_mu_);
    return committed_;
  }

  /// Answers one line-delimited JSON query (see DESIGN.md §14):
  ///   {"q":"request","id":L} → serving station of request L
  ///   {"q":"service","id":K} → stations caching service K
  ///   {"q":"stats"}          → live counters
  /// Always returns a single JSON line (an {"error":...} object for
  /// malformed queries). Thread-safe.
  std::string handle_query(const std::string& line) const;

  /// Per-slot records of the run (valid after join()).
  const std::vector<sim::SlotRecord>& slot_records() const noexcept {
    return slot_records_;
  }

  /// First slot this run serves (> 0 after a resume).
  std::size_t start_slot() const noexcept { return start_slot_; }

  /// Producer pushes retried against a full shard so far.
  std::uint64_t ingest_retries() const noexcept {
    return ingest_retries_.load(std::memory_order_relaxed);
  }
  /// Events shed after exhausting the retry cap so far.
  std::uint64_t ingest_gave_up() const noexcept {
    return ingest_gave_up_.load(std::memory_order_relaxed);
  }

 private:
  struct SlotBatch {
    std::size_t slot = 0;
    std::vector<double> snapshot;
    std::uint32_t ingested = 0;
    std::uint32_t shed = 0;
    double ingest_wall_ms = 0.0;  ///< Wall-clock the slot spent open.
    std::size_t queue_depth = 0;  ///< Queue backlog at close.
  };

  void collector_loop();
  void decide_loop();
  void producer_loop(std::size_t producer_index);
  void commit(std::size_t slot);
  void export_prometheus() const;
  void resume_from_checkpoint();
  void write_slot_checkpoint(std::size_t t);

  ServeOptions options_;
  std::unique_ptr<sim::Scenario> scenario_;
  std::unique_ptr<ShardedIngestQueue> queue_;
  std::unique_ptr<algorithms::OnlineCachingAlgorithm> algorithm_;
  std::unique_ptr<sim::SlotEngine> engine_;
  std::unique_ptr<TraceWriter> trace_;

  std::atomic<bool> stop_{false};
  std::atomic<bool> running_{false};
  // Producers the paced close condition waits for: options_.producers, or
  // 1 when an external driver feeds submit()/producer_done() itself.
  std::size_t producer_count_ = 1;
  std::atomic<std::int64_t> open_slot_{-1};
  std::vector<std::atomic<std::uint32_t>> producers_done_;  // per slot
  std::vector<std::atomic<std::uint32_t>> shed_per_slot_;
  std::atomic<std::uint64_t> ingested_total_{0};
  std::atomic<std::uint64_t> shed_total_{0};
  std::atomic<std::uint64_t> ingest_retries_{0};
  std::atomic<std::uint64_t> ingest_gave_up_{0};

  // Resume / checkpoint state. served_* are decide-side tallies (only
  // slots whose decision committed), so a checkpoint never counts a
  // slot the resumed run will re-ingest.
  std::size_t start_slot_ = 0;
  std::uint64_t served_ingested_ = 0;
  std::uint64_t served_shed_ = 0;

  // Watchdog state (decide worker only).
  std::size_t watchdog_streak_ = 0;
  std::size_t watchdog_recommits_ = 0;
  std::size_t watchdog_degraded_ = 0;

  // One-deep handoff between collector and decide worker: the pipeline
  // overlap is exactly "collector accumulates t+1 while decide runs t";
  // a deeper buffer would only hide a decide path that cannot keep up.
  std::mutex handoff_mu_;
  std::condition_variable handoff_push_cv_;
  std::condition_variable handoff_pop_cv_;
  std::optional<SlotBatch> pending_;
  bool ingest_finished_ = false;

  mutable std::mutex committed_mu_;
  std::shared_ptr<const CommittedDecision> committed_;
  std::vector<sim::SlotRecord> slot_records_;
  std::size_t deadline_misses_ = 0;
  bool stopped_early_ = false;

  std::vector<std::thread> threads_;
  bool joined_ = false;
  ServeReport report_;  // cached by join()
};

}  // namespace mecsc::serve

#endif  // MECSC_SERVE_SERVICE_H
