// mecsc_serve — the long-running streaming decision daemon (DESIGN.md
// "Streaming service architecture").
//
// Boots a SlotService over a seeded scenario: synthetic producers push
// demand events into the sharded ingest queue, the wall-clock (or
// paced) slot scheduler closes per-slot snapshots, and the pipelined
// decide path commits caching/routing decisions slot by slot. With
// --queries the daemon answers line-delimited JSON queries on
// stdin/stdout from the latest committed decision; stdout is reserved
// for those responses, all logs go to stderr. SIGINT/SIGTERM drain the
// slot in flight, seal the trace, flush telemetry and exit 0.
//
//   mecsc_serve --slots 200 --trace-out run.trace --prom-out serve.prom
//   mecsc_serve --verify run.trace        # replay bit-identity check
//   mecsc_serve --trace-out run.trace --checkpoint-every 25   # durable
//   mecsc_serve --trace-out run.trace --resume                # after crash
//
// Environment defaults: MECSC_SERVE_SLOT_MS, MECSC_SERVE_SHARDS,
// MECSC_SERVE_QUEUE_CAP, MECSC_TRACE_OUT, MECSC_CHECKPOINT_EVERY,
// MECSC_SERVE_RETRY_CAP (flags win).
//
// Exit codes: 0 success, 1 replay divergence or runtime failure,
// 2 usage, 3 corrupt/torn trace, 4 resume/checkpoint mismatch.

#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "common/error.h"
#include "serve/replay.h"
#include "serve/service.h"

namespace {

std::atomic<mecsc::serve::SlotService*> g_service{nullptr};

void handle_signal(int) {
  // request_stop() is one lock-free atomic store — async-signal-safe.
  mecsc::serve::SlotService* service = g_service.load(std::memory_order_acquire);
  if (service != nullptr) service->request_stop();
}

std::size_t parse_size(const char* flag, const char* value) {
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(value, &end, 10);
  if (end == value || *end != '\0') {
    std::fprintf(stderr, "mecsc_serve: %s expects a non-negative integer, got \"%s\"\n",
                 flag, value);
    std::exit(2);
  }
  return static_cast<std::size_t>(parsed);
}

void usage() {
  std::fprintf(stderr,
               "usage: mecsc_serve [options]\n"
               "  --stations N     base stations (default 100)\n"
               "  --requests N     request population (default 400)\n"
               "  --services N     service catalogue size (default 10)\n"
               "  --slots N        horizon in slots (default 100)\n"
               "  --seed N         scenario root seed (default 1)\n"
               "  --slot-ms N      slot length in ms (env MECSC_SERVE_SLOT_MS)\n"
               "  --shards N       ingest shards (env MECSC_SERVE_SHARDS)\n"
               "  --queue-cap N    cells per shard (env MECSC_SERVE_QUEUE_CAP)\n"
               "  --producers N    synthetic producer threads (default 2)\n"
               "  --paced          data-paced slots (deterministic; tests/CI)\n"
               "  --constant       constant instead of bursty demands\n"
               "  --trace-out P    record a binary trace (env MECSC_TRACE_OUT)\n"
               "  --prom-out P     live Prometheus dump file, rewritten per slot\n"
               "  --queries        answer JSON queries on stdin/stdout\n"
               "  --checkpoint-every N  durable checkpoint every N slots\n"
               "                        (env MECSC_CHECKPOINT_EVERY; needs --trace-out)\n"
               "  --checkpoint-path P   checkpoint file (default <trace>.ckpt)\n"
               "  --resume         restore the checkpoint, truncate the trace's\n"
               "                   torn tail, continue bit-identically\n"
               "  --retry-cap N    bounded submit retries before shedding\n"
               "                   (env MECSC_SERVE_RETRY_CAP)\n"
               "  --paced-min-ms N minimum wall time per paced slot (crash tests)\n"
               "  --no-watchdog    disable the decide-deadline watchdog\n"
               "  --verify P       replay trace P, check bit identity\n"
               "  --salvage        with --verify: truncate a torn/corrupt tail at\n"
               "                   the last checksum-valid record, replay the rest\n"
               "exit codes: 0 ok, 1 divergence/runtime, 2 usage, 3 corrupt trace,\n"
               "            4 resume mismatch\n");
}

}  // namespace

int main(int argc, char** argv) {
  using mecsc::serve::ReplayResult;
  using mecsc::serve::ServeOptions;
  using mecsc::serve::ServeReport;
  using mecsc::serve::SlotService;

  ServeOptions options = mecsc::serve::serve_options_from_env();
  bool queries = false;
  bool salvage = false;
  std::string verify_path;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "mecsc_serve: %s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(arg, "--stations") == 0) {
      options.num_stations = parse_size(arg, next(arg));
    } else if (std::strcmp(arg, "--requests") == 0) {
      options.num_requests = parse_size(arg, next(arg));
    } else if (std::strcmp(arg, "--services") == 0) {
      options.num_services = parse_size(arg, next(arg));
    } else if (std::strcmp(arg, "--slots") == 0) {
      options.horizon = parse_size(arg, next(arg));
    } else if (std::strcmp(arg, "--seed") == 0) {
      options.seed = parse_size(arg, next(arg));
    } else if (std::strcmp(arg, "--slot-ms") == 0) {
      options.slot_ms = parse_size(arg, next(arg));
    } else if (std::strcmp(arg, "--shards") == 0) {
      options.shards = parse_size(arg, next(arg));
    } else if (std::strcmp(arg, "--queue-cap") == 0) {
      options.queue_capacity = parse_size(arg, next(arg));
    } else if (std::strcmp(arg, "--producers") == 0) {
      options.producers = parse_size(arg, next(arg));
    } else if (std::strcmp(arg, "--paced") == 0) {
      options.paced = true;
    } else if (std::strcmp(arg, "--constant") == 0) {
      options.bursty = false;
    } else if (std::strcmp(arg, "--trace-out") == 0) {
      options.trace_out = next(arg);
    } else if (std::strcmp(arg, "--prom-out") == 0) {
      options.prom_out = next(arg);
    } else if (std::strcmp(arg, "--queries") == 0) {
      queries = true;
    } else if (std::strcmp(arg, "--checkpoint-every") == 0) {
      options.checkpoint_every = parse_size(arg, next(arg));
    } else if (std::strcmp(arg, "--checkpoint-path") == 0) {
      options.checkpoint_path = next(arg);
    } else if (std::strcmp(arg, "--resume") == 0) {
      options.resume = true;
    } else if (std::strcmp(arg, "--retry-cap") == 0) {
      options.submit_retries = parse_size(arg, next(arg));
    } else if (std::strcmp(arg, "--paced-min-ms") == 0) {
      options.paced_min_slot_ms = parse_size(arg, next(arg));
    } else if (std::strcmp(arg, "--no-watchdog") == 0) {
      options.watchdog = false;
    } else if (std::strcmp(arg, "--verify") == 0) {
      verify_path = next(arg);
    } else if (std::strcmp(arg, "--salvage") == 0) {
      salvage = true;
    } else if (std::strcmp(arg, "--help") == 0 || std::strcmp(arg, "-h") == 0) {
      usage();
      return 0;
    } else {
      std::fprintf(stderr, "mecsc_serve: unknown flag \"%s\"\n", arg);
      usage();
      return 2;
    }
  }

  if (!verify_path.empty()) {
    try {
      mecsc::serve::ReplayOptions replay_options;
      replay_options.salvage = salvage;
      const ReplayResult result =
          mecsc::serve::replay_trace(verify_path, replay_options);
      if (result.salvaged) {
        std::fprintf(stderr,
                     "mecsc_serve: salvage discarded %llu byte(s) past the "
                     "last checksum-valid record (%s)\n",
                     static_cast<unsigned long long>(result.lost_bytes),
                     result.tail_error.c_str());
      }
      if (result.bit_identical && (result.sealed || result.salvaged)) {
        std::fprintf(stderr,
                     "mecsc_serve: %zu slot(s) replayed bit-for-bit, %s\n",
                     result.slots_compared,
                     result.sealed ? "trace sealed" : "salvaged prefix intact");
        return 0;
      }
      if (!result.sealed && !result.salvaged) {
        std::fprintf(stderr, "mecsc_serve: trace is not sealed (no footer)%s%s\n",
                     result.tail_error.empty() ? "" : ": ",
                     result.tail_error.c_str());
      }
      if (!result.detail.empty()) {
        std::fprintf(stderr, "mecsc_serve: %s\n", result.detail.c_str());
      }
      // Bitwise divergence is exit 1; a trace that replays clean but is
      // torn (unsealed, no salvage requested) is the corrupt-trace code.
      return result.bit_identical ? 3 : 1;
    } catch (const mecsc::common::InvalidArgument& e) {
      std::fprintf(stderr, "mecsc_serve: corrupt trace: %s\n", e.what());
      return 3;
    } catch (const std::exception& e) {
      std::fprintf(stderr, "mecsc_serve: replay failed: %s\n", e.what());
      return 1;
    }
  }

  try {
    SlotService service(options);
    g_service.store(&service, std::memory_order_release);
    std::signal(SIGINT, handle_signal);
    std::signal(SIGTERM, handle_signal);

    std::fprintf(stderr,
                 "mecsc_serve: %zu stations, %zu requests, %zu slots x %zu ms, "
                 "%zu shard(s) x %zu cells, %s slots%s\n",
                 service.options().num_stations, service.options().num_requests,
                 service.options().horizon, service.options().slot_ms,
                 service.options().shards, service.options().queue_capacity,
                 service.options().paced ? "paced" : "wall-clock",
                 service.options().trace_out.empty()
                     ? ""
                     : (", tracing to " + service.options().trace_out).c_str());

    service.start();

    if (queries) {
      // stdout carries only query responses; EOF on stdin ends the loop.
      std::string line;
      while (std::getline(std::cin, line)) {
        if (line.empty()) continue;
        std::cout << service.handle_query(line) << "\n" << std::flush;
      }
    }

    const ServeReport report = service.join();
    g_service.store(nullptr, std::memory_order_release);

    std::fprintf(stderr,
                 "mecsc_serve: served %zu slot(s)%s, ingested %llu, shed %llu, "
                 "mean delay %.3f ms, decide p99 %.3f ms (max %.3f), "
                 "%zu deadline miss(es), %llu submit retr%s (%llu gave up), "
                 "%zu recommit(s)\n",
                 report.slots_served, report.stopped_early ? " (stopped early)" : "",
                 static_cast<unsigned long long>(report.ingested),
                 static_cast<unsigned long long>(report.shed),
                 report.mean_delay_ms, report.p99_decide_ms, report.max_decide_ms,
                 report.deadline_misses,
                 static_cast<unsigned long long>(report.ingest_retries),
                 report.ingest_retries == 1 ? "y" : "ies",
                 static_cast<unsigned long long>(report.ingest_gave_up),
                 report.watchdog_recommits);
    return 0;
  } catch (const mecsc::serve::ResumeMismatch& e) {
    std::fprintf(stderr, "mecsc_serve: resume mismatch: %s\n", e.what());
    return 4;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "mecsc_serve: %s\n", e.what());
    return 1;
  }
}
