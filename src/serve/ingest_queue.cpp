#include "serve/ingest_queue.h"

#include "common/error.h"

namespace mecsc::serve {

namespace {

std::size_t round_up_pow2(std::size_t v) {
  std::size_t p = 4;
  while (p < v) p <<= 1;
  return p;
}

}  // namespace

MpscRing::MpscRing(std::size_t capacity) {
  const std::size_t cap = round_up_pow2(capacity);
  mask_ = cap - 1;
  cells_ = std::make_unique<Cell[]>(cap);
  for (std::size_t i = 0; i < cap; ++i) {
    cells_[i].seq.store(i, std::memory_order_relaxed);
  }
}

bool MpscRing::try_push(const IngestEvent& ev) noexcept {
  std::uint64_t pos = enqueue_.load(std::memory_order_relaxed);
  for (;;) {
    Cell& cell = cells_[pos & mask_];
    const std::uint64_t seq = cell.seq.load(std::memory_order_acquire);
    const std::int64_t diff =
        static_cast<std::int64_t>(seq) - static_cast<std::int64_t>(pos);
    if (diff == 0) {
      // Cell is free for lap `pos`; claim it with one CAS on the cursor.
      if (enqueue_.compare_exchange_weak(pos, pos + 1,
                                         std::memory_order_relaxed)) {
        cell.ev = ev;
        cell.seq.store(pos + 1, std::memory_order_release);
        return true;
      }
      // CAS reloaded `pos`; retry with the fresh cursor.
    } else if (diff < 0) {
      // The cell still holds last lap's event: the ring is full.
      return false;
    } else {
      // Another producer claimed `pos` between our loads.
      pos = enqueue_.load(std::memory_order_relaxed);
    }
  }
}

bool MpscRing::try_pop(IngestEvent& out) noexcept {
  const std::uint64_t pos = dequeue_.load(std::memory_order_relaxed);
  Cell& cell = cells_[pos & mask_];
  const std::uint64_t seq = cell.seq.load(std::memory_order_acquire);
  const std::int64_t diff =
      static_cast<std::int64_t>(seq) - static_cast<std::int64_t>(pos + 1);
  if (diff < 0) return false;  // next cell not yet published
  out = cell.ev;
  // Release the cell for the producers' next lap.
  cell.seq.store(pos + mask_ + 1, std::memory_order_release);
  dequeue_.store(pos + 1, std::memory_order_relaxed);
  return true;
}

std::size_t MpscRing::approx_size() const noexcept {
  const std::uint64_t e = enqueue_.load(std::memory_order_relaxed);
  const std::uint64_t d = dequeue_.load(std::memory_order_relaxed);
  return e >= d ? static_cast<std::size_t>(e - d) : 0;
}

ShardedIngestQueue::ShardedIngestQueue(std::size_t shards,
                                       std::size_t capacity_per_shard) {
  MECSC_CHECK_MSG(shards >= 1, "ingest queue needs >= 1 shard");
  MECSC_CHECK_MSG(capacity_per_shard >= 1, "ingest shard capacity must be >= 1");
  shards_.reserve(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    shards_.push_back(std::make_unique<MpscRing>(capacity_per_shard));
  }
}

std::size_t ShardedIngestQueue::drain(std::vector<IngestEvent>& out,
                                      std::size_t max) {
  std::size_t n = 0;
  IngestEvent ev;
  for (auto& shard : shards_) {
    while (n < max && shard->try_pop(ev)) {
      out.push_back(ev);
      ++n;
    }
    if (n >= max) break;
  }
  return n;
}

std::size_t ShardedIngestQueue::approx_depth() const noexcept {
  std::size_t total = 0;
  for (const auto& shard : shards_) total += shard->approx_size();
  return total;
}

}  // namespace mecsc::serve
