// mecsc_trace — trace inspector (DESIGN.md "Crash tolerance &
// recovery").
//
// Dumps everything about a serve trace that can be known without
// replaying it: the header recipe, a per-record table (slot, decision
// flags, file offset, payload size, checksum), the seal status, and —
// for a torn or corrupt trace — the salvage point where the
// checksum-valid prefix ends. The fast first look at a crashed daemon's
// trace before deciding whether to --resume or --verify --salvage.
//
//   mecsc_trace run.trace             # summary + record table
//   mecsc_trace --summary run.trace   # recipe and seal status only
//
// Exit codes: 0 sealed, 2 usage, 3 torn/corrupt/unreadable.

#include <cstdio>
#include <cstring>
#include <string>

#include "serve/trace_io.h"

namespace {

void usage() {
  std::fprintf(stderr,
               "usage: mecsc_trace [--summary] TRACE\n"
               "  --summary   recipe and seal status only (no record table)\n"
               "exit codes: 0 sealed, 2 usage, 3 torn or corrupt\n");
}

// Names the *resolved* core::AggregateMode value the trace stores
// (kEnv = 0 never appears in a recorded config; headers used to be
// misprinted here by an off-by-one that ignored the kEnv enumerator).
const char* aggregate_name(std::uint8_t mode) {
  switch (mode) {
    case 1: return "off";
    case 2: return "auto";
    case 3: return "on";
    default: return "?";
  }
}

// Names the resolved core::SolverTier value the trace stores (v3).
const char* solver_name(std::uint8_t tier) {
  switch (tier) {
    case 1: return "flow";
    case 2: return "simplex";
    case 3: return "lagrangian";
    case 4: return "auto";
    default: return "?";
  }
}

std::string flag_names(std::uint32_t flags) {
  std::string out;
  auto add = [&out](const char* name) {
    if (!out.empty()) out += ",";
    out += name;
  };
  if (flags & mecsc::serve::kSlotFlagRecommit) add("recommit");
  if (flags & mecsc::serve::kSlotFlagDegradedHint) add("degraded");
  if (flags & mecsc::serve::kSlotFlagFaults) add("faults");
  if (out.empty()) out = "-";
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bool summary_only = false;
  std::string path;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--summary") == 0) {
      summary_only = true;
    } else if (std::strcmp(arg, "--help") == 0 || std::strcmp(arg, "-h") == 0) {
      usage();
      return 0;
    } else if (arg[0] == '-') {
      std::fprintf(stderr, "mecsc_trace: unknown flag \"%s\"\n", arg);
      usage();
      return 2;
    } else if (path.empty()) {
      path = arg;
    } else {
      std::fprintf(stderr, "mecsc_trace: exactly one trace file expected\n");
      usage();
      return 2;
    }
  }
  if (path.empty()) {
    usage();
    return 2;
  }

  mecsc::serve::TraceInspection insp;
  try {
    insp = mecsc::serve::inspect_trace(path);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "mecsc_trace: %s\n", e.what());
    return 3;
  }

  const mecsc::serve::TraceConfig& cfg = insp.config;
  std::printf("trace    %s (%llu bytes, format v%u)\n", path.c_str(),
              static_cast<unsigned long long>(insp.file_bytes), insp.version);
  std::printf("recipe   seed %llu, %u stations, %u requests, %u services, "
              "%u slots x %u ms\n",
              static_cast<unsigned long long>(cfg.seed), cfg.num_stations,
              cfg.num_requests, cfg.num_services, cfg.horizon, cfg.slot_ms);
  std::printf("         %s demands, aggregate %s, solver %s, faults %s, "
              "algo seed %llu, shed penalty %.3f ms\n",
              cfg.bursty != 0 ? "bursty" : "constant",
              aggregate_name(cfg.aggregate), solver_name(cfg.solver),
              cfg.faults != 0 ? "churn" : "off",
              static_cast<unsigned long long>(cfg.algo_seed),
              cfg.shed_penalty_ms);

  if (!summary_only && !insp.records.empty()) {
    std::printf("%8s  %-18s  %10s  %8s  %16s\n", "slot", "flags", "offset",
                "payload", "checksum");
    for (const mecsc::serve::TraceRecordInfo& rec : insp.records) {
      std::printf("%8u  %-18s  %10llu  %8llu  %016llx\n", rec.slot,
                  flag_names(rec.flags).c_str(),
                  static_cast<unsigned long long>(rec.offset),
                  static_cast<unsigned long long>(rec.payload_bytes),
                  static_cast<unsigned long long>(rec.checksum));
    }
  }

  std::printf("records  %zu checksum-valid\n", insp.salvage_records);
  if (insp.sealed) {
    std::printf("status   sealed (footer present, count matches)\n");
    return 0;
  }
  std::printf("status   NOT sealed: %s\n",
              insp.tail_error.empty() ? "footer missing"
                                      : insp.tail_error.c_str());
  std::printf("salvage  truncate at offset %llu keeps %zu record(s), "
              "discards %llu byte(s)\n",
              static_cast<unsigned long long>(insp.salvage_offset),
              insp.salvage_records,
              static_cast<unsigned long long>(insp.file_bytes -
                                              insp.salvage_offset));
  return 3;
}
