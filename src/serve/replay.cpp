#include "serve/replay.h"

#include <cstring>
#include <sstream>
#include <utility>
#include <vector>

#include "algorithms/ol_gd.h"
#include "common/error.h"
#include "sim/scenario.h"
#include "sim/slot_engine.h"
#include "workload/demand_model.h"

namespace mecsc::serve {

namespace {

/// Bitwise double comparison: replay promises the identical arithmetic,
/// so even the last ulp must match (and NaN payloads compare equal).
bool same_bits(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

}  // namespace

TraceConfig trace_config_for(const ServeOptions& options,
                             const sim::Scenario& scenario) {
  TraceConfig cfg;
  cfg.seed = options.seed;
  cfg.num_stations = static_cast<std::uint32_t>(options.num_stations);
  cfg.num_requests = static_cast<std::uint32_t>(options.num_requests);
  cfg.num_services = static_cast<std::uint32_t>(options.num_services);
  cfg.horizon = static_cast<std::uint32_t>(options.horizon);
  cfg.slot_ms = static_cast<std::uint32_t>(options.slot_ms);
  cfg.bursty = options.bursty ? 1 : 0;
  cfg.aggregate = static_cast<std::uint8_t>(scenario.aggregate_mode());
  cfg.solver = static_cast<std::uint8_t>(scenario.solver_tier());
  // Which fault mode the scenario resolved to (the injector exists iff
  // churn is on) — part of the recipe, so a resume under a different
  // MECSC_FAULTS is rejected instead of silently diverging.
  cfg.faults = scenario.fault_injector() != nullptr ? 1 : 0;
  cfg.algo_seed = scenario.algorithm_seed(0);
  cfg.shed_penalty_ms = options.shed_penalty_ms;
  return cfg;
}

ServeOptions options_from_trace(const TraceConfig& config) {
  ServeOptions options;
  options.seed = config.seed;
  options.num_stations = config.num_stations;
  options.num_requests = config.num_requests;
  options.num_services = config.num_services;
  options.horizon = config.horizon;
  options.slot_ms = config.slot_ms == 0 ? 1 : config.slot_ms;
  options.bursty = config.bursty != 0;
  options.shed_penalty_ms = config.shed_penalty_ms;
  return options;
}

ReplayResult replay_trace(const std::string& path, ReplayOptions options) {
  TraceReader reader(path);
  ReplayResult result;
  std::vector<SlotTraceRecord> records;
  {
    SlotTraceRecord rec;
    std::string error;
    for (;;) {
      const RecordStatus status = reader.next_status(rec, &error);
      if (status == RecordStatus::kRecord) {
        records.push_back(std::move(rec));
        continue;
      }
      if (status == RecordStatus::kFooter) {
        result.sealed = true;
      } else if (options.salvage) {
        // Truncate at the last checksum-valid record and replay the
        // intact prefix; what was lost is reported, not fatal.
        result.salvaged = true;
        result.lost_bytes = reader.file_bytes() - reader.last_good_offset();
        result.tail_error = error;
      } else if (status == RecordStatus::kCorrupt) {
        MECSC_CHECK_MSG(false, error.empty() ? "corrupt trace record" : error);
      } else {
        // Truncated tail (writer died mid-stream): the intact prefix
        // still replays; --verify reports the missing seal.
        result.tail_error = error;
      }
      break;
    }
  }
  if (records.empty()) {
    result.bit_identical = true;  // vacuously: nothing to diverge on
    result.detail = "trace holds no slot records";
    return result;
  }

  const TraceConfig& cfg = reader.config();
  sim::ScenarioParams params = scenario_params(options_from_trace(cfg));
  // Pin the recorded env-resolved aggregate mode and solver tier: replay
  // must reproduce the run as recorded, not as the current environment
  // would run it.
  params.aggregate = static_cast<core::AggregateMode>(cfg.aggregate);
  params.solver = static_cast<core::SolverTier>(cfg.solver);
  // Faults are replayed from the records' realised-fault blocks, never
  // from a regenerated plan — build the faults-off problem instance and
  // ignore MECSC_FAULTS entirely.
  params.fault.mode = fault::FaultMode::kOff;
  params.fault_env_override = false;
  sim::Scenario scenario(params);
  const core::CachingProblem& problem = scenario.problem();
  const std::size_t n = problem.num_requests();
  const std::size_t stations = problem.num_stations();

  workload::DemandMatrix demands(n, records.size());
  for (std::size_t t = 0; t < records.size(); ++t) {
    const SlotTraceRecord& rec = records[t];
    MECSC_CHECK_MSG(rec.slot == t, "trace slots out of order");
    MECSC_CHECK_MSG(rec.unit_delays.size() == stations,
                    "trace delay vector does not match the scenario");
    MECSC_CHECK_MSG(rec.station_of_request.size() == n,
                    "trace decision vector does not match the scenario");
    for (const auto& [id, demand] : rec.demands) {
      MECSC_CHECK_MSG(id < n, "trace demand entry out of range");
      demands.set(id, t, demand);
    }
  }

  algorithms::OlOptions ol_options;
  ol_options.aggregate = params.aggregate;
  ol_options.solver = params.solver;
  algorithms::OnlineCachingAlgorithm algorithm("OL_GD", problem, &demands,
                                               ol_options, cfg.algo_seed);
  sim::SlotEngine engine(problem);

  bool replayed_faults = false;
  for (std::size_t t = 0; t < records.size(); ++t) {
    const SlotTraceRecord& rec = records[t];
    // Honor the watchdog flags the live run recorded: the replay must
    // walk the exact same decision path, degraded or re-committed.
    if ((rec.flags & kSlotFlagDegradedHint) != 0) algorithm.set_decide_hint(2);
    const bool run_decide = (rec.flags & kSlotFlagRecommit) == 0;
    sim::SlotRecord stepped;
    if ((rec.flags & kSlotFlagFaults) != 0) {
      MECSC_CHECK_MSG(rec.station_up.size() == stations &&
                          rec.feedback_lost.size() == stations &&
                          rec.effective_capacity_mhz.size() == stations,
                      "trace fault block does not match the scenario");
      scenario.mutable_problem().set_station_capacities(
          rec.effective_capacity_mhz);
      replayed_faults = true;
      sim::SlotFaultState faults;
      faults.station_up = rec.station_up;
      faults.feedback_lost = rec.feedback_lost;
      faults.outage_penalty_factor = rec.outage_penalty_factor;
      faults.shed_requests = rec.fault_shed_requests;
      faults.shed_penalty_ms = rec.fault_shed_penalty_ms;
      stepped = engine.step_recorded(t, algorithm, demands.slot(t),
                                     rec.unit_delays, faults, run_decide);
    } else {
      stepped =
          engine.step(t, algorithm, demands.slot(t), rec.unit_delays,
                      run_decide);
    }
    const core::Assignment& decision = engine.last_decision();

    for (std::size_t l = 0; l < n; ++l) {
      if (decision.station_of_request[l] != rec.station_of_request[l]) {
        std::ostringstream msg;
        msg << "slot " << t << ": request " << l << " replays to station "
            << decision.station_of_request[l] << ", trace recorded "
            << rec.station_of_request[l];
        result.first_mismatch_slot = t;
        result.detail = msg.str();
        return result;
      }
    }
    if (pack_cached_bits(decision.cached) != rec.cached_bits) {
      std::ostringstream msg;
      msg << "slot " << t << ": replayed caching set differs from the trace";
      result.first_mismatch_slot = t;
      result.detail = msg.str();
      return result;
    }
    // The recorded objective folds the serve-side shed penalty in after
    // the engine scored the slot; redo the identical arithmetic.
    const double replayed_delay =
        stepped.avg_delay_ms +
        rec.shed_penalty_ms / static_cast<double>(n == 0 ? 1 : n);
    if (!same_bits(replayed_delay, rec.avg_delay_ms)) {
      std::ostringstream msg;
      msg << "slot " << t << ": replayed objective " << replayed_delay
          << " ms is not bitwise the recorded " << rec.avg_delay_ms << " ms";
      result.first_mismatch_slot = t;
      result.detail = msg.str();
      return result;
    }
    ++result.slots_compared;
  }
  if (replayed_faults) scenario.mutable_problem().reset_station_capacities();
  engine.end_run();
  result.bit_identical = true;
  return result;
}

}  // namespace mecsc::serve
