#ifndef MECSC_SERVE_CHECKPOINT_H
#define MECSC_SERVE_CHECKPOINT_H

// Durable decision-state checkpoints of the mecsc::serve daemon
// (DESIGN.md "Crash tolerance & recovery").
//
// Every MECSC_CHECKPOINT_EVERY slots the daemon serialises its complete
// cross-slot decision state — bandit pull counts and means, the rounding
// RNG's stream position, all three solver warm states (simplex basis,
// flow arcs/prices, Lagrangian duals — format v2), the engine's committed
// decision and caching set, the trace byte offset — into a single
// checksummed file, written crash-consistently: the payload goes to a
// temporary sibling file, is fsync'd, and is atomically renamed over the
// previous checkpoint. A crash at any instant therefore leaves either
// the old or the new checkpoint intact, never a torn one.
//
// `mecsc_serve --resume` restores the newest checkpoint, truncates the
// trace's torn tail back to the checkpointed offset, and continues
// serving with decisions bit-for-bit identical to a run that was never
// killed — the twin-trace test in tests/test_serve_crash.cpp holds the
// daemon to exactly that.
//
// Layout: "MECK" magic, format version, u64 payload size, payload,
// FNV-1a-64 checksum of the payload (the trace format's framing,
// reused).

#include <cstdint>
#include <string>

#include "algorithms/ol_gd.h"
#include "serve/trace_io.h"
#include "sim/slot_engine.h"

namespace mecsc::serve {

/// Complete resume state of a serve run after some slot completed.
struct Checkpoint {
  /// The run's recipe — must byte-match the resuming daemon's options
  /// (same_trace_config), else the restored state would be meaningless.
  TraceConfig config;
  /// Last completed slot; the resumed run continues at slot + 1.
  std::uint32_t slot = 0;
  /// Trace records written through `slot`, and the file size in bytes at
  /// that point — where TraceWriter::resume truncates the torn tail.
  std::uint64_t trace_records = 0;
  std::uint64_t trace_offset = 0;
  /// Running ingest totals (ServeReport continuity across the restart).
  std::uint64_t ingested = 0;
  std::uint64_t shed = 0;
  std::uint64_t ingest_retries = 0;
  std::uint64_t ingest_gave_up = 0;
  /// The algorithm's cross-slot decision state.
  algorithms::OlGdState algo;
  /// The slot engine's cross-slot state.
  sim::SlotEngineState engine;
};

/// Serialises `ckpt` crash-consistently to `path` (tmp file + fsync +
/// atomic rename). Throws common::InvalidArgument on I/O failure.
void write_checkpoint(const std::string& path, const Checkpoint& ckpt);

/// Reads and checksum-verifies a checkpoint. Throws
/// common::InvalidArgument when the file is missing, torn, or corrupt.
Checkpoint read_checkpoint(const std::string& path);

}  // namespace mecsc::serve

#endif  // MECSC_SERVE_CHECKPOINT_H
