#include "serve/checkpoint.h"

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "common/error.h"

namespace mecsc::serve {

namespace {

using wire::Cursor;
using wire::fnv1a;
using wire::put;
using wire::put_bytes;

constexpr std::uint32_t kCheckpointMagic = 0x4B43454DU;  // "MECK"
// v2: appended the Lagrangian dual warm state (λ + step scale) after the
// flow-solver warm state — required for bit-identical resume under
// MECSC_SOLVER=lagrangian/auto.
constexpr std::uint16_t kCheckpointVersion = 2;

void put_doubles(std::string& buf, const std::vector<double>& v) {
  put(buf, static_cast<std::uint64_t>(v.size()));
  put_bytes(buf, v.data(), v.size() * sizeof(double));
}

bool take_doubles(Cursor& c, std::vector<double>& v) {
  std::uint64_t n = 0;
  if (!c.take(n) || n > c.remaining() / sizeof(double)) return false;
  v.resize(static_cast<std::size_t>(n));
  return c.take(v.data(), v.size() * sizeof(double));
}

void put_u64s(std::string& buf, const std::vector<std::uint64_t>& v) {
  put(buf, static_cast<std::uint64_t>(v.size()));
  put_bytes(buf, v.data(), v.size() * sizeof(std::uint64_t));
}

bool take_u64s(Cursor& c, std::vector<std::uint64_t>& v) {
  std::uint64_t n = 0;
  if (!c.take(n) || n > c.remaining() / sizeof(std::uint64_t)) return false;
  v.resize(static_cast<std::size_t>(n));
  return c.take(v.data(), v.size() * sizeof(std::uint64_t));
}

void put_string(std::string& buf, const std::string& s) {
  put(buf, static_cast<std::uint64_t>(s.size()));
  buf += s;
}

bool take_string(Cursor& c, std::string& s) {
  std::uint64_t n = 0;
  if (!c.take(n) || n > c.remaining()) return false;
  s.resize(static_cast<std::size_t>(n));
  return c.take(s.data(), s.size());
}

// vector<vector<bool>> with uniform inner size (the caching sets):
// rows, cols, then one byte per entry. Checkpoints are small and
// infrequent, so plain bytes beat bit-packing cleverness here.
void put_bool_matrix(std::string& buf,
                     const std::vector<std::vector<bool>>& m) {
  const std::uint64_t rows = m.size();
  const std::uint64_t cols = rows == 0 ? 0 : m.front().size();
  put(buf, rows);
  put(buf, cols);
  for (const auto& row : m) {
    for (bool b : row) put(buf, static_cast<std::uint8_t>(b ? 1 : 0));
  }
}

bool take_bool_matrix(Cursor& c, std::vector<std::vector<bool>>& m) {
  std::uint64_t rows = 0;
  std::uint64_t cols = 0;
  if (!c.take(rows) || !c.take(cols)) return false;
  if (rows != 0 && cols > c.remaining() / rows) return false;
  m.assign(static_cast<std::size_t>(rows),
           std::vector<bool>(static_cast<std::size_t>(cols), false));
  for (auto& row : m) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      std::uint8_t b = 0;
      if (!c.take(b)) return false;
      row[i] = b != 0;
    }
  }
  return true;
}

std::string serialize_checkpoint(const Checkpoint& ckpt) {
  std::string buf;
  buf += serialize_trace_config(ckpt.config);
  put(buf, ckpt.slot);
  put(buf, ckpt.trace_records);
  put(buf, ckpt.trace_offset);
  put(buf, ckpt.ingested);
  put(buf, ckpt.shed);
  put(buf, ckpt.ingest_retries);
  put(buf, ckpt.ingest_gave_up);

  const algorithms::OlGdState& a = ckpt.algo;
  put_doubles(buf, a.bandit_theta);
  put(buf, static_cast<std::uint64_t>(a.bandit_plays.size()));
  for (std::size_t p : a.bandit_plays) {
    put(buf, static_cast<std::uint64_t>(p));
  }
  put(buf, static_cast<std::uint64_t>(a.bandit_total_plays));
  put_string(buf, a.rng_stream);
  put(buf, static_cast<std::uint8_t>(a.lp_warm.valid ? 1 : 0));
  put(buf, a.lp_warm.rows);
  put(buf, a.lp_warm.cols);
  put_u64s(buf, a.lp_warm.basis);
  put(buf, static_cast<std::uint64_t>(a.solver_warm.warm_arcs.size()));
  for (const auto& arcs : a.solver_warm.warm_arcs) {
    put(buf, static_cast<std::uint64_t>(arcs.size()));
    put_bytes(buf, arcs.data(), arcs.size() * sizeof(std::uint32_t));
  }
  put_doubles(buf, a.solver_warm.station_price);
  put_doubles(buf, a.lag_warm.lambda);
  put(buf, a.lag_warm.step_scale);

  const sim::SlotEngineState& e = ckpt.engine;
  put(buf, static_cast<std::uint8_t>(e.has_decision ? 1 : 0));
  put(buf, static_cast<std::uint64_t>(e.decision.station_of_request.size()));
  for (std::size_t s : e.decision.station_of_request) {
    put(buf, static_cast<std::uint64_t>(s));
  }
  put_bool_matrix(buf, e.decision.cached);
  put_bool_matrix(buf, e.prev_cached);
  return buf;
}

bool parse_checkpoint(Cursor& c, Checkpoint& ckpt) {
  if (!parse_trace_config(c, ckpt.config)) return false;
  if (!(c.take(ckpt.slot) && c.take(ckpt.trace_records) &&
        c.take(ckpt.trace_offset) && c.take(ckpt.ingested) &&
        c.take(ckpt.shed) && c.take(ckpt.ingest_retries) &&
        c.take(ckpt.ingest_gave_up))) {
    return false;
  }

  algorithms::OlGdState& a = ckpt.algo;
  if (!take_doubles(c, a.bandit_theta)) return false;
  std::uint64_t n = 0;
  if (!c.take(n) || n > c.remaining() / sizeof(std::uint64_t)) return false;
  a.bandit_plays.resize(static_cast<std::size_t>(n));
  for (auto& p : a.bandit_plays) {
    std::uint64_t v = 0;
    if (!c.take(v)) return false;
    p = static_cast<std::size_t>(v);
  }
  std::uint64_t total = 0;
  if (!c.take(total)) return false;
  a.bandit_total_plays = static_cast<std::size_t>(total);
  if (!take_string(c, a.rng_stream)) return false;
  std::uint8_t valid = 0;
  if (!(c.take(valid) && c.take(a.lp_warm.rows) && c.take(a.lp_warm.cols))) {
    return false;
  }
  a.lp_warm.valid = valid != 0;
  if (!take_u64s(c, a.lp_warm.basis)) return false;
  if (!c.take(n) || n > c.remaining() / sizeof(std::uint64_t)) return false;
  a.solver_warm.warm_arcs.resize(static_cast<std::size_t>(n));
  for (auto& arcs : a.solver_warm.warm_arcs) {
    std::uint64_t m = 0;
    if (!c.take(m) || m > c.remaining() / sizeof(std::uint32_t)) return false;
    arcs.resize(static_cast<std::size_t>(m));
    if (!c.take(arcs.data(), arcs.size() * sizeof(std::uint32_t))) return false;
  }
  if (!take_doubles(c, a.solver_warm.station_price)) return false;
  if (!take_doubles(c, a.lag_warm.lambda)) return false;
  if (!c.take(a.lag_warm.step_scale)) return false;

  sim::SlotEngineState& e = ckpt.engine;
  std::uint8_t has = 0;
  if (!c.take(has)) return false;
  e.has_decision = has != 0;
  if (!c.take(n) || n > c.remaining() / sizeof(std::uint64_t)) return false;
  e.decision.station_of_request.resize(static_cast<std::size_t>(n));
  for (auto& s : e.decision.station_of_request) {
    std::uint64_t v = 0;
    if (!c.take(v)) return false;
    s = static_cast<std::size_t>(v);
  }
  if (!take_bool_matrix(c, e.decision.cached)) return false;
  if (!take_bool_matrix(c, e.prev_cached)) return false;
  return c.remaining() == 0;
}

}  // namespace

void write_checkpoint(const std::string& path, const Checkpoint& ckpt) {
  const std::string payload = serialize_checkpoint(ckpt);
  std::string buf;
  put(buf, kCheckpointMagic);
  put(buf, kCheckpointVersion);
  put(buf, static_cast<std::uint64_t>(payload.size()));
  buf += payload;
  put(buf, fnv1a(payload.data(), payload.size()));

  // Crash consistency: write the sibling tmp file, force it to stable
  // storage, then atomically rename over the previous checkpoint. Either
  // the old or the new file survives a crash at any instant.
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  MECSC_CHECK_MSG(f != nullptr, "cannot open checkpoint tmp file: " + tmp);
  const bool wrote = std::fwrite(buf.data(), 1, buf.size(), f) == buf.size() &&
                     std::fflush(f) == 0 && ::fsync(::fileno(f)) == 0;
  std::fclose(f);
  MECSC_CHECK_MSG(wrote, "checkpoint write failed: " + tmp);
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  MECSC_CHECK_MSG(!ec, "checkpoint rename failed: " + path);
}

Checkpoint read_checkpoint(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  MECSC_CHECK_MSG(in.good(), "cannot open checkpoint file: " + path);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  Cursor c(bytes.data(), bytes.size());
  std::uint32_t magic = 0;
  std::uint16_t version = 0;
  std::uint64_t size = 0;
  MECSC_CHECK_MSG(c.take(magic) && magic == kCheckpointMagic,
                  "not a mecsc checkpoint: " + path);
  MECSC_CHECK_MSG(c.take(version) && version == kCheckpointVersion,
                  "unsupported checkpoint version");
  MECSC_CHECK_MSG(c.take(size) && size == c.remaining() - sizeof(std::uint64_t),
                  "torn checkpoint: " + path);
  const char* payload = bytes.data() + (bytes.size() - c.remaining());
  Cursor body(payload, static_cast<std::size_t>(size));
  std::uint64_t checksum = 0;
  Cursor tail(payload + size, sizeof(std::uint64_t));
  MECSC_CHECK_MSG(tail.take(checksum) &&
                      fnv1a(payload, static_cast<std::size_t>(size)) == checksum,
                  "checkpoint checksum mismatch: " + path);
  Checkpoint ckpt;
  MECSC_CHECK_MSG(parse_checkpoint(body, ckpt),
                  "corrupt checkpoint body: " + path);
  return ckpt;
}

}  // namespace mecsc::serve
