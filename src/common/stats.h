#ifndef MECSC_COMMON_STATS_H
#define MECSC_COMMON_STATS_H

#include <cstddef>
#include <limits>
#include <string>
#include <vector>

namespace mecsc::common {

/// Numerically stable running statistics (Welford's algorithm).
///
/// Collects count / mean / variance / min / max of a stream of samples
/// without storing them. Used for per-slot delay accounting and for
/// aggregating results over the 80 topology replications the paper uses.
class RunningStats {
 public:
  void add(double x) noexcept;

  /// Merges another accumulator into this one (parallel Welford merge).
  void merge(const RunningStats& other) noexcept;

  std::size_t count() const noexcept { return n_; }
  bool empty() const noexcept { return n_ == 0; }
  double mean() const noexcept { return n_ > 0 ? mean_ : 0.0; }
  /// Population variance; 0 for fewer than 2 samples.
  double variance() const noexcept;
  /// Sample (n-1) variance; 0 for fewer than 2 samples.
  double sample_variance() const noexcept;
  double stddev() const noexcept;
  double min() const noexcept { return n_ > 0 ? min_ : 0.0; }
  double max() const noexcept { return n_ > 0 ? max_ : 0.0; }
  double sum() const noexcept { return n_ > 0 ? mean_ * static_cast<double>(n_) : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Fixed-bin histogram over [lo, hi); samples outside the range clamp to
/// the first/last bin. Used to characterise bursty demand distributions.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x) noexcept;
  std::size_t bin_count(std::size_t b) const { return counts_.at(b); }
  std::size_t bins() const noexcept { return counts_.size(); }
  std::size_t total() const noexcept { return total_; }
  double bin_lo(std::size_t b) const;
  double bin_hi(std::size_t b) const;
  /// Approximate quantile from bin midpoints; q in [0,1].
  double quantile(double q) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

/// Mean of a vector; 0 for empty input.
double mean_of(const std::vector<double>& v) noexcept;

/// Exact quantile of a copy of `v` (linear interpolation); q in [0,1].
double quantile_of(std::vector<double> v, double q);

}  // namespace mecsc::common

#endif  // MECSC_COMMON_STATS_H
