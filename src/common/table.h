#ifndef MECSC_COMMON_TABLE_H
#define MECSC_COMMON_TABLE_H

#include <string>
#include <vector>

namespace mecsc::common {

/// Simple aligned text table used by the benchmark harnesses to print the
/// rows/series of each reproduced figure, plus a CSV emitter so results
/// can be re-plotted.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends a row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  /// Convenience: formats doubles with the given precision.
  void add_row_values(const std::vector<double>& values, int precision = 3);

  std::size_t rows() const noexcept { return rows_.size(); }
  std::size_t cols() const noexcept { return header_.size(); }

  /// Renders an aligned, pipe-separated table.
  std::string to_string() const;

  /// Renders RFC-4180-ish CSV (values containing commas are quoted).
  std::string to_csv() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision (helper for bench output).
std::string fmt(double v, int precision = 3);

}  // namespace mecsc::common

#endif  // MECSC_COMMON_TABLE_H
