#ifndef MECSC_COMMON_ENV_H
#define MECSC_COMMON_ENV_H

// Strict environment-variable parsing shared by the bench harnesses
// (MECSC_TOPOLOGIES, MECSC_SLOTS, ...), the replication runner
// (MECSC_WORKERS), and the telemetry subsystem.

#include <cstdio>
#include <cstdlib>
#include <optional>

namespace mecsc::common {

/// Parses environment variable `name` as a base-10 std::size_t.
/// Returns std::nullopt when the variable is unset or empty. A value
/// with a non-numeric suffix ("10abc") or no digits at all is rejected
/// with a warning on stderr and also yields std::nullopt — a silently
/// misparsed knob is worse than the default. An explicit "0" parses as
/// 0; what zero means is the caller's call.
inline std::optional<std::size_t> env_size_strict(const char* name) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return std::nullopt;
  char* end = nullptr;
  unsigned long long parsed = std::strtoull(v, &end, 10);
  if (end == v || *end != '\0') {
    std::fprintf(stderr,
                 "mecsc: ignoring %s=\"%s\" — not a plain non-negative "
                 "integer\n",
                 name, v);
    return std::nullopt;
  }
  return static_cast<std::size_t>(parsed);
}

/// `env_size_strict` with a fallback for unset/empty/rejected values.
/// Note an explicit `0` is returned as 0, not mapped to the fallback.
inline std::size_t env_size_or(const char* name, std::size_t fallback) {
  return env_size_strict(name).value_or(fallback);
}

/// Parses environment variable `name` as a finite double (strtod
/// grammar, whole-string). Same strictness contract as env_size_strict:
/// unset/empty yields std::nullopt silently; a malformed or non-finite
/// value is rejected with a stderr warning.
inline std::optional<double> env_double_strict(const char* name) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return std::nullopt;
  char* end = nullptr;
  double parsed = std::strtod(v, &end);
  if (end == v || *end != '\0' || !(parsed == parsed) ||
      parsed > 1e308 || parsed < -1e308) {
    std::fprintf(stderr, "mecsc: ignoring %s=\"%s\" — not a finite number\n",
                 name, v);
    return std::nullopt;
  }
  return parsed;
}

/// `env_double_strict` with a fallback for unset/empty/rejected values.
inline double env_double_or(const char* name, double fallback) {
  return env_double_strict(name).value_or(fallback);
}

}  // namespace mecsc::common

#endif  // MECSC_COMMON_ENV_H
