#ifndef MECSC_COMMON_SIMD_H
#define MECSC_COMMON_SIMD_H

// SIMD dispatch policy shared by the vectorized kernels in nn/ and flow/
// (DESIGN.md "SIMD & batching").
//
// Three gates must all be open for a vector kernel to run:
//   1. compile time — the AVX2 kernels exist only on x86-64 GCC/Clang
//      builds and can be compiled out entirely with -DMECSC_FORCE_SCALAR
//      (the CI scalar-fallback leg);
//   2. run time, hardware — the CPU must report AVX2+FMA (kernels are
//      emitted with the target("avx2,fma") function attribute, so the
//      surrounding binary needs no -mavx2 and stays runnable on any
//      x86-64 machine);
//   3. run time, policy — MECSC_SIMD=off forces the scalar reference
//      path, which is bit-for-bit the pre-SIMD implementation.
//
// Every vectorized kernel keeps its scalar reference implementation
// callable (nn::scalar::*), and the dispatch is per-call on a cached
// flag, so flipping MECSC_SIMD never requires a rebuild.

namespace mecsc::common::simd {

// Compile-time availability of the AVX2 kernel translation units.
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__)) && \
    !defined(MECSC_FORCE_SCALAR)
#define MECSC_SIMD_AVX2 1
constexpr bool kCompiledAvx2 = true;
#else
constexpr bool kCompiledAvx2 = false;
#endif

/// CPU reports AVX2 (runtime cpuid; false on non-x86 builds).
bool cpu_has_avx2();
/// CPU reports FMA3.
bool cpu_has_fma();

/// True when the AVX2 kernels should run: compiled in, supported by the
/// CPU, and not disabled via MECSC_SIMD=off. Cached after the first call
/// (the environment is read once per process).
bool active();

/// Active dispatch mode as a short stable string: "avx2" or "scalar".
const char* mode_name();

/// Why the scalar path is active (for logs/JSON): "", "compiled-out",
/// "cpu", or "env" — empty when SIMD is active.
const char* scalar_reason();

}  // namespace mecsc::common::simd

#endif  // MECSC_COMMON_SIMD_H
