#ifndef MECSC_COMMON_ERROR_H
#define MECSC_COMMON_ERROR_H

#include <sstream>
#include <stdexcept>
#include <string>

namespace mecsc::common {

/// Base class for all library errors.
class Error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// A caller violated a documented precondition (bad argument, bad state).
class InvalidArgument : public Error {
 public:
  using Error::Error;
};

/// A model turned out to have no feasible solution (e.g. total demand
/// exceeds total capacity, or an LP is infeasible).
class Infeasible : public Error {
 public:
  using Error::Error;
};

/// A numerical routine failed to converge or detected unboundedness.
class NumericalError : public Error {
 public:
  using Error::Error;
};

namespace detail {
[[noreturn]] inline void throw_check_failure(const char* expr, const char* file,
                                             int line, const std::string& msg) {
  std::ostringstream os;
  os << "check failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw InvalidArgument(os.str());
}
}  // namespace detail

}  // namespace mecsc::common

/// Precondition check that throws InvalidArgument with location info.
#define MECSC_CHECK(expr)                                                     \
  do {                                                                        \
    if (!(expr))                                                              \
      ::mecsc::common::detail::throw_check_failure(#expr, __FILE__, __LINE__, \
                                                   "");                       \
  } while (false)

#define MECSC_CHECK_MSG(expr, msg)                                            \
  do {                                                                        \
    if (!(expr))                                                              \
      ::mecsc::common::detail::throw_check_failure(#expr, __FILE__, __LINE__, \
                                                   (msg));                    \
  } while (false)

#endif  // MECSC_COMMON_ERROR_H
