#ifndef MECSC_COMMON_STOPWATCH_H
#define MECSC_COMMON_STOPWATCH_H

#include <chrono>

namespace mecsc::common {

/// Wall-clock stopwatch used for the running-time panels (Fig. 3(b),
/// 4(b), 6(b)). Monotonic clock; restartable.
class Stopwatch {
 public:
  Stopwatch() : start_(clock::now()) {}

  void restart() { start_ = clock::now(); }

  double elapsed_seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  double elapsed_ms() const { return elapsed_seconds() * 1e3; }
  double elapsed_us() const { return elapsed_seconds() * 1e6; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace mecsc::common

#endif  // MECSC_COMMON_STOPWATCH_H
