#include "common/table.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "common/error.h"

namespace mecsc::common {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  MECSC_CHECK_MSG(!header_.empty(), "table needs at least one column");
}

void Table::add_row(std::vector<std::string> row) {
  MECSC_CHECK_MSG(row.size() == header_.size(), "row arity mismatch");
  rows_.push_back(std::move(row));
}

void Table::add_row_values(const std::vector<double>& values, int precision) {
  std::vector<std::string> row;
  row.reserve(values.size());
  for (double v : values) row.push_back(fmt(v, precision));
  add_row(std::move(row));
}

std::string Table::to_string() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      width[c] = std::max(width[c], r[c].size());
    }
  }
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& r) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      os << (c == 0 ? "| " : " | ") << std::setw(static_cast<int>(width[c]))
         << r[c];
    }
    os << " |\n";
  };
  emit(header_);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    os << (c == 0 ? "|" : "-|") << std::string(width[c] + 2, '-');
  }
  os << "-|\n";
  for (const auto& r : rows_) emit(r);
  return os.str();
}

std::string Table::to_csv() const {
  std::ostringstream os;
  auto quote = [](const std::string& s) {
    if (s.find(',') == std::string::npos) return s;
    return "\"" + s + "\"";
  };
  auto emit = [&](const std::vector<std::string>& r) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      if (c) os << ',';
      os << quote(r[c]);
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& r : rows_) emit(r);
  return os.str();
}

std::string fmt(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

}  // namespace mecsc::common
