#include "common/env_catalog.h"

#include <algorithm>
#include <cstdio>

namespace mecsc::common {

const std::vector<EnvVar>& env_catalog() {
  static const std::vector<EnvVar> catalog = {
      {"MECSC_AGGREGATE", "enum: off|auto|on", "off",
       "Demand-class aggregation of the per-slot solve (DESIGN.md §11); "
       "auto aggregates only at >= 1024 requests."},
      {"MECSC_CHECKPOINT_EVERY", "size_t", "0 (off)",
       "Durable decision-state checkpoint every N slots in mecsc_serve; "
       "requires a trace, restored by --resume (DESIGN.md §15)."},
      {"MECSC_FAULTS", "enum: off|churn", "off",
       "Fault-injection mode override for scenarios and benches "
       "(DESIGN.md §9)."},
      {"MECSC_GAN_STEPS", "size_t", "per bench (400)",
       "GAN predictor training steps in the OL_GAN benches."},
      {"MECSC_LAG_GAP", "double", "0.01",
       "Relative duality-gap target of the Lagrangian solver tier; a "
       "solve that misses it falls back to the exact flow path "
       "(DESIGN.md §16)."},
      {"MECSC_LAG_ITERS", "size_t", "200",
       "Subgradient-ascent iteration cap per Lagrangian solve "
       "(DESIGN.md §16)."},
      {"MECSC_PREDICT_BATCH", "size_t", "1024",
       "Max histories per fused GAN inference pass; results are bitwise "
       "independent of the value (DESIGN.md \"SIMD & batching\")."},
      {"MECSC_REQUESTS", "size_t", "per bench (100)",
       "Requests per topology replication in the bench harnesses."},
      {"MECSC_SERVE_QUEUE_CAP", "size_t", "65536",
       "Ingest-queue cells per shard in mecsc_serve (rounded up to a "
       "power of two); a full shard sheds load (DESIGN.md §14)."},
      {"MECSC_SERVE_RETRY_CAP", "size_t", "64",
       "Bounded submit retries (yield, then exponential backoff) before "
       "a full shard sheds the event (DESIGN.md §15)."},
      {"MECSC_SERVE_SHARDS", "size_t", "8",
       "Ingest-queue shards in mecsc_serve; events shard by the "
       "request's home station (DESIGN.md §14)."},
      {"MECSC_SERVE_SLOT_MS", "size_t", "100",
       "Wall-clock slot length of mecsc_serve in milliseconds; doubles "
       "as the decide-latency deadline (DESIGN.md §14)."},
      {"MECSC_SIMD", "enum: off|auto", "auto",
       "SIMD kernel dispatch: off forces the scalar reference path; auto "
       "uses AVX2 when compiled in and the CPU supports it (DESIGN.md "
       "\"SIMD & batching\")."},
      {"MECSC_SLOTS", "size_t", "per bench (100-400)",
       "Run-horizon time slots in the bench harnesses."},
      {"MECSC_SOLVER", "enum: flow|simplex|lagrangian|auto", "flow",
       "Per-slot LP solver tier (DESIGN.md §16); auto picks lagrangian "
       "at >= 4096 LP columns, flow below."},
      {"MECSC_STATIONS", "size_t", "per bench (100)",
       "Base stations in the bench harnesses."},
      {"MECSC_TELEMETRY", "enum: off|summary|full", "off",
       "Telemetry level: summary = counters/gauges, full = + histograms "
       "and spans."},
      {"MECSC_TELEMETRY_OUT", "path", "unset (stdout, JSONL)",
       "Telemetry export file; format from extension (.prom, .csv, else "
       "JSONL)."},
      {"MECSC_TOPOLOGIES", "size_t", "per bench (3-8)",
       "Topology replications each bench averages over (paper: 80)."},
      {"MECSC_TRACE_OUT", "path", "unset (no trace)",
       "Binary decision-trace output file of mecsc_serve; replayable "
       "bit-for-bit with --verify (DESIGN.md §14)."},
      {"MECSC_WORKERS", "size_t", "hardware concurrency",
       "Replication worker threads; results are bitwise independent of "
       "the value."},
  };
  return catalog;
}

std::string env_catalog_table() {
  const auto& vars = env_catalog();
  std::size_t name_w = 4, type_w = 4, def_w = 7;
  for (const EnvVar& v : vars) {
    name_w = std::max(name_w, std::string(v.name).size());
    type_w = std::max(type_w, std::string(v.type).size());
    def_w = std::max(def_w, std::string(v.default_value).size());
  }
  std::string out;
  char line[512];
  std::snprintf(line, sizeof(line), "  %-*s  %-*s  %-*s  %s\n",
                static_cast<int>(name_w), "name", static_cast<int>(type_w),
                "type", static_cast<int>(def_w), "default", "effect");
  out += line;
  for (const EnvVar& v : vars) {
    std::snprintf(line, sizeof(line), "  %-*s  %-*s  %-*s  %s\n",
                  static_cast<int>(name_w), v.name, static_cast<int>(type_w),
                  v.type, static_cast<int>(def_w), v.default_value, v.effect);
    out += line;
  }
  return out;
}

}  // namespace mecsc::common
