#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace mecsc::common {

void RunningStats::add(double x) noexcept {
  ++n_;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  double na = static_cast<double>(n_);
  double nb = static_cast<double>(other.n_);
  double delta = other.mean_ - mean_;
  double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_) : 0.0;
}

double RunningStats::sample_variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  if (!(lo < hi)) throw std::invalid_argument("Histogram: lo must be < hi");
  if (bins == 0) throw std::invalid_argument("Histogram: bins must be > 0");
}

void Histogram::add(double x) noexcept {
  double f = (x - lo_) / (hi_ - lo_);
  auto b = static_cast<std::ptrdiff_t>(f * static_cast<double>(counts_.size()));
  b = std::clamp<std::ptrdiff_t>(b, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(b)];
  ++total_;
}

double Histogram::bin_lo(std::size_t b) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(b) / static_cast<double>(counts_.size());
}

double Histogram::bin_hi(std::size_t b) const { return bin_lo(b + 1); }

double Histogram::quantile(double q) const {
  if (total_ == 0) return lo_;
  q = std::clamp(q, 0.0, 1.0);
  auto target = static_cast<std::size_t>(q * static_cast<double>(total_));
  std::size_t acc = 0;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    acc += counts_[b];
    if (acc > target) return 0.5 * (bin_lo(b) + bin_hi(b));
  }
  return hi_;
}

double mean_of(const std::vector<double>& v) noexcept {
  if (v.empty()) return 0.0;
  double s = 0.0;
  for (double x : v) s += x;
  return s / static_cast<double>(v.size());
}

double quantile_of(std::vector<double> v, double q) {
  if (v.empty()) throw std::invalid_argument("quantile_of: empty input");
  std::sort(v.begin(), v.end());
  q = std::clamp(q, 0.0, 1.0);
  double pos = q * static_cast<double>(v.size() - 1);
  auto i = static_cast<std::size_t>(pos);
  double frac = pos - static_cast<double>(i);
  if (i + 1 >= v.size()) return v.back();
  return v[i] * (1.0 - frac) + v[i + 1] * frac;
}

}  // namespace mecsc::common
