#ifndef MECSC_COMMON_ENV_CATALOG_H
#define MECSC_COMMON_ENV_CATALOG_H

#include <string>
#include <vector>

namespace mecsc::common {

/// One documented environment variable of the library / bench suite.
struct EnvVar {
  /// Variable name ("MECSC_...").
  const char* name;
  /// Value type as shown to users ("size_t", "enum", "path").
  const char* type;
  /// Default when unset (or where the default comes from).
  const char* default_value;
  /// One-line effect.
  const char* effect;
};

/// The single source of truth for every MECSC_* environment variable the
/// code reads. `examples/mecsc_cli --help` prints this table and the CI
/// drift guard (tools/check_env_docs.sh) fails when a variable read in
/// the sources is missing here or in README.md's reference table — so
/// code, CLI help and README cannot diverge silently.
const std::vector<EnvVar>& env_catalog();

/// The catalogue formatted as an aligned plain-text table (one header
/// line, one line per variable) for --help output.
std::string env_catalog_table();

}  // namespace mecsc::common

#endif  // MECSC_COMMON_ENV_CATALOG_H
