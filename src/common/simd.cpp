#include "common/simd.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace mecsc::common::simd {

namespace {

bool cpu_supports_avx2_fma() {
#if defined(MECSC_SIMD_AVX2)
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

enum class Why { kActive, kCompiledOut, kCpu, kEnv };

Why decide() {
  if (!kCompiledAvx2) return Why::kCompiledOut;
  if (!cpu_supports_avx2_fma()) return Why::kCpu;
  const char* v = std::getenv("MECSC_SIMD");
  if (v != nullptr && *v != '\0') {
    if (std::strcmp(v, "off") == 0) return Why::kEnv;
    if (std::strcmp(v, "auto") != 0) {
      std::fprintf(stderr,
                   "mecsc: ignoring MECSC_SIMD=\"%s\" — expected off|auto\n", v);
    }
  }
  return Why::kActive;
}

Why cached() {
  static const Why why = decide();
  return why;
}

}  // namespace

bool cpu_has_avx2() {
#if defined(MECSC_SIMD_AVX2)
  return __builtin_cpu_supports("avx2");
#else
  return false;
#endif
}

bool cpu_has_fma() {
#if defined(MECSC_SIMD_AVX2)
  return __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

bool active() { return cached() == Why::kActive; }

const char* mode_name() { return active() ? "avx2" : "scalar"; }

const char* scalar_reason() {
  switch (cached()) {
    case Why::kActive: return "";
    case Why::kCompiledOut: return "compiled-out";
    case Why::kCpu: return "cpu";
    case Why::kEnv: return "env";
  }
  return "";
}

}  // namespace mecsc::common::simd
