#include "common/rng.h"

#include <cmath>

namespace mecsc::common {

std::size_t Rng::weighted_index(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    if (w > 0.0) total += w;
  }
  if (total <= 0.0) return index(weights.size());
  double r = uniform(0.0, total);
  double acc = 0.0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    if (weights[i] <= 0.0) continue;
    acc += weights[i];
    if (r < acc) return i;
  }
  return weights.size() - 1;
}

}  // namespace mecsc::common
