#ifndef MECSC_COMMON_RNG_H
#define MECSC_COMMON_RNG_H

#include <cstdint>
#include <random>
#include <sstream>
#include <string>
#include <vector>

namespace mecsc::common {

/// Deterministic random number generator used by every stochastic
/// component in the library.
///
/// All simulator entities (topology generators, demand models, bandit
/// exploration, GAN initialisation) draw from an explicitly seeded Rng so
/// that every experiment in the paper reproduction is replayable from a
/// single root seed. Child generators are derived with `split()` so that
/// adding draws to one component never perturbs another.
class Rng {
 public:
  using engine_type = std::mt19937_64;

  explicit Rng(std::uint64_t seed) : engine_(seed), seed_(seed) {}

  /// Seed this generator was constructed with.
  std::uint64_t seed() const noexcept { return seed_; }

  /// Derives an independent child generator. Successive calls yield
  /// distinct streams; the parent's future output is unaffected by how
  /// much the child is used.
  Rng split() {
    // SplitMix64-style mixing of a fresh draw decorrelates child seeds.
    std::uint64_t z = engine_() + 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return Rng(z ^ (z >> 31));
  }

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  /// Uniform index in [0, n). Requires n > 0.
  std::size_t index(std::size_t n) {
    return static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(n) - 1));
  }

  /// Uniform real in [lo, hi).
  double uniform(double lo = 0.0, double hi = 1.0) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool bernoulli(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Normal draw.
  double normal(double mean = 0.0, double stddev = 1.0) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// Exponential draw with the given rate (lambda > 0).
  double exponential(double rate) {
    return std::exponential_distribution<double>(rate)(engine_);
  }

  /// Pareto draw with scale x_m > 0 and shape alpha > 0. Heavy-tailed;
  /// used by the bursty-demand models.
  double pareto(double x_m, double alpha) {
    double u = uniform(0.0, 1.0);
    // Guard against u == 0 which would blow up the inverse CDF.
    if (u < 1e-12) u = 1e-12;
    return x_m / std::pow(u, 1.0 / alpha);
  }

  /// Poisson draw.
  int poisson(double mean) {
    return std::poisson_distribution<int>(mean)(engine_);
  }

  /// Geometric draw (number of failures before first success).
  int geometric(double p) {
    return std::geometric_distribution<int>(p)(engine_);
  }

  /// Samples an index according to non-negative `weights`. Zero-sum weight
  /// vectors fall back to a uniform choice. Requires weights non-empty.
  std::size_t weighted_index(const std::vector<double>& weights);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::swap(v[i - 1], v[index(i)]);
    }
  }

  engine_type& engine() noexcept { return engine_; }

  /// Serialises the engine's exact stream position (std::mt19937_64's
  /// textual state) for checkpointing. restore_state() resumes the
  /// stream bit-for-bit where save_state() left it.
  std::string save_state() const {
    std::ostringstream os;
    os << engine_;
    return os.str();
  }

  /// Restores a stream position captured by save_state(). Returns false
  /// (leaving the engine untouched on failure paths where extraction
  /// already consumed state is acceptable) when the text does not parse.
  bool restore_state(const std::string& state) {
    std::istringstream is(state);
    is >> engine_;
    return !is.fail();
  }

 private:
  engine_type engine_;
  std::uint64_t seed_;
};

}  // namespace mecsc::common

#endif  // MECSC_COMMON_RNG_H
