#include "sim/scenario.h"

#include <algorithm>
#include <cstdlib>

#include "common/error.h"

namespace mecsc::sim {

Scenario::Scenario(const ScenarioParams& params) : params_(params) {
  MECSC_CHECK_MSG(params.horizon > 0, "horizon must be > 0");
  aggregate_mode_ = core::resolve_aggregate_mode(params.aggregate);
  solver_tier_ = core::resolve_solver_tier(params.solver);
  common::Rng root(params.seed);
  common::Rng topo_rng = root.split();
  common::Rng workload_rng = root.split();
  common::Rng problem_rng = root.split();
  common::Rng demand_rng = root.split();
  common::Rng delay_rng = root.split();
  common::Rng trace_rng = root.split();
  algo_seed_root_ = root.split().seed();
  // Drawn unconditionally (appending a split never perturbs the streams
  // above) so a faults-on run shares the exact topology / workload /
  // delay sample paths of its faults-off twin.
  const std::uint64_t fault_seed = root.split().seed();

  switch (params.net) {
    case ScenarioParams::NetKind::kGtItm: {
      net::GtItmParams gp;
      gp.num_stations = params.num_stations;
      topology_ = std::make_unique<net::Topology>(generate_gtitm_like(gp, topo_rng));
      break;
    }
    case ScenarioParams::NetKind::kAs1755: {
      net::As1755Params ap;
      ap.num_stations = params.num_stations;
      topology_ = std::make_unique<net::Topology>(generate_as1755_like(ap, topo_rng));
      break;
    }
  }

  workload::WorkloadParams wp = params.workload;
  const std::size_t total_horizon = params.history_horizon + params.horizon;
  wp.horizon = total_horizon;
  workload_ = workload::make_workload(*topology_, wp, workload_rng, params.bursty);

  // One combined realisation keeps demand processes' state consistent:
  // the first history_horizon slots become the historical trace, the
  // rest is the run-time ground truth.
  const std::size_t num_requests = workload_.requests.size();
  workload::DemandMatrix full = workload::realize_demands(
      workload_.requests, workload_.processes, total_horizon, demand_rng);
  demands_ = std::make_unique<workload::DemandMatrix>(num_requests, params.horizon);
  for (std::size_t l = 0; l < num_requests; ++l) {
    for (std::size_t t = 0; t < params.horizon; ++t) {
      demands_->set(l, t, full.at(l, params.history_horizon + t));
    }
  }
  if (params.history_horizon > 0) {
    workload::DemandMatrix hist(num_requests, params.history_horizon);
    for (std::size_t l = 0; l < num_requests; ++l) {
      for (std::size_t t = 0; t < params.history_horizon; ++t) {
        hist.set(l, t, full.at(l, t));
      }
    }
    trace_ = std::make_unique<workload::Trace>(workload::Trace::from_demands(
        workload_.requests, hist, wp.num_clusters, params.trace_sample_fraction,
        trace_rng));
  } else {
    // Degenerate one-slot trace from the first run slot.
    workload::DemandMatrix hist(num_requests, 1);
    for (std::size_t l = 0; l < num_requests; ++l) {
      hist.set(l, 0, demands_->at(l, 0));
    }
    trace_ = std::make_unique<workload::Trace>(workload::Trace::from_demands(
        workload_.requests, hist, wp.num_clusters, 1.0, trace_rng));
  }

  // Uphold the paper's §III.E feasibility assumption for every realised
  // slot: if the burstiest slot would not fit at the requested C_unit,
  // derate C_unit (deterministically, from the realised demands) so the
  // worst slot uses at most 90% of aggregate capacity and every single
  // request fits the largest station. The chosen value is exposed via
  // problem().options().c_unit_mhz.
  core::ProblemOptions popt = params.problem;
  {
    double worst_slot_units = 0.0;
    double worst_single = 0.0;
    for (std::size_t t = 0; t < params.horizon; ++t) {
      double total = 0.0;
      for (std::size_t l = 0; l < num_requests; ++l) {
        double d = demands_->at(l, t);
        total += d;
        worst_single = std::max(worst_single, d);
      }
      worst_slot_units = std::max(worst_slot_units, total);
    }
    double biggest_station = 0.0;
    for (const auto& bs : topology_->stations()) {
      biggest_station = std::max(biggest_station, bs.capacity_mhz);
    }
    double limit = popt.c_unit_mhz;
    if (worst_slot_units > 0.0) {
      limit = std::min(limit, 0.9 * topology_->total_capacity_mhz() / worst_slot_units);
    }
    if (worst_single > 0.0) {
      limit = std::min(limit, 0.9 * biggest_station / worst_single);
    }
    c_unit_derated_ = limit < popt.c_unit_mhz;
    popt.c_unit_mhz = std::min(popt.c_unit_mhz, limit);
  }

  problem_ = std::make_unique<core::CachingProblem>(
      topology_.get(), workload_.services, workload_.requests, popt, problem_rng);

  // Fault injection: materialise the plan and bake flash crowds +
  // admission-control shedding into the shared demand matrix now, so the
  // feasibility check below and every algorithm see the same post-fault
  // sample path.
  fault::FaultOptions fopt = params.fault;
  if (const char* env = std::getenv("MECSC_FAULTS");
      params.fault_env_override && env != nullptr && *env != '\0') {
    fopt.mode = fault::mode_from_env();
  }
  if (fopt.mode != fault::FaultMode::kOff) {
    fault_injector_ = std::make_unique<fault::FaultInjector>(
        *problem_,
        fault::FaultPlan::generate(*topology_, params.horizon, fopt, fault_seed));
    fault_injector_->apply_to_demands(*demands_);
  }

  net::NetworkDelayModel delay_model =
      net::make_delay_model(*topology_, params.delay_kind, delay_rng);
  d_min_ = delay_model.global_min();
  d_max_ = delay_model.global_max();
  theta_prior_ = 0.5 * (d_min_ + d_max_);

  // The baselines' stale historical measurement precedes the run.
  historical_estimates_ = delay_model.realize(delay_rng);

  std::vector<std::vector<double>> unit_delays;
  unit_delays.reserve(params.horizon);
  for (std::size_t t = 0; t < params.horizon; ++t) {
    unit_delays.push_back(delay_model.realize(delay_rng));
  }

  // Validate the paper's standing feasibility assumption on the heaviest
  // slot up front, so misconfigured experiments fail fast.
  std::size_t worst_t = 0;
  double worst = -1.0;
  for (std::size_t t = 0; t < params.horizon; ++t) {
    double s = 0.0;
    for (std::size_t l = 0; l < problem_->num_requests(); ++l) {
      s += demands_->at(l, t);
    }
    if (s > worst) {
      worst = s;
      worst_t = t;
    }
  }
  problem_->check_capacity_feasible(demands_->slot(worst_t));

  simulator_ = std::make_unique<Simulator>(*problem_, demands_.get(),
                                           std::move(unit_delays),
                                           params.track_regret);
  if (fault_injector_ != nullptr) {
    simulator_->set_fault_injector(fault_injector_.get());
  }
}

std::uint64_t Scenario::algorithm_seed(std::size_t index) const {
  common::Rng r(algo_seed_root_ + 0x9e3779b97f4a7c15ULL * (index + 1));
  return r.split().seed();
}

}  // namespace mecsc::sim
