#ifndef MECSC_SIM_SCENARIO_H
#define MECSC_SIM_SCENARIO_H

#include <memory>
#include <vector>

#include "core/aggregation.h"
#include "core/problem.h"
#include "core/solver_tier.h"
#include "fault/fault_injector.h"
#include "fault/fault_plan.h"
#include "net/delay_process.h"
#include "net/generators.h"
#include "sim/simulator.h"
#include "workload/trace.h"

namespace mecsc::sim {

/// Everything needed to reproduce one experimental point of §VI.
struct ScenarioParams {
  /// Network topology family (§VI uses both).
  enum class NetKind {
    kGtItm,   ///< GT-ITM-like transit-stub topology.
    kAs1755,  ///< AS-1755-like Rocketfuel ISP topology.
  };
  /// Topology family to generate.
  NetKind net = NetKind::kGtItm;
  /// Number of base stations (the paper's |BS|).
  std::size_t num_stations = 100;
  /// Run horizon in time slots (the paper's T).
  std::size_t horizon = 100;
  /// Bursty (unknown) demands (Figs. 6-7) vs constant given demands
  /// (Figs. 3-5).
  bool bursty = false;
  /// Per-station unit-delay process family.
  net::DelayModelKind delay_kind = net::DelayModelKind::kUniform;
  /// Request/service population parameters.
  workload::WorkloadParams workload;
  /// Problem-instance options (capacities, access latency, C_unit).
  core::ProblemOptions problem;
  /// Fraction of the historical trace kept as the predictors' training
  /// sample (the paper's small-sample regime).
  double trace_sample_fraction = 0.35;
  /// Length of the historical (pre-run) period the trace covers.
  std::size_t history_horizon = 96;
  /// Enable per-slot hindsight-optimum computation (slow; regret benches
  /// only).
  bool track_regret = false;
  /// Fault injection (DESIGN.md §9). Off by default; the MECSC_FAULTS
  /// environment variable ("off" | "churn"), when set and non-empty,
  /// overrides `fault.mode` so existing benches can be re-run under
  /// churn without a recompile. The fault plan draws from its own child
  /// seed, so enabling faults never shifts the topology / workload /
  /// delay sample paths.
  fault::FaultOptions fault;
  /// When false, MECSC_FAULTS is ignored and `fault.mode` alone decides
  /// whether an injector is built. Trace replay needs this: a trace
  /// recorded under churn carries the realised fault state per record,
  /// so its replay must build the faults-off problem instance no matter
  /// what the replaying process's environment says.
  bool fault_env_override = true;
  /// Demand-class aggregation (DESIGN.md §11). The default defers to the
  /// MECSC_AGGREGATE environment variable ("off" | "auto" | "on", off
  /// when unset); an explicit mode set here always wins over the
  /// environment. The scenario resolves the mode once at construction —
  /// read it back via Scenario::aggregate_mode() and pass it to
  /// algorithm options so every replication shares one decision.
  core::AggregateMode aggregate = core::AggregateMode::kEnv;
  /// Per-slot LP solver tier (DESIGN.md §16). The default defers to the
  /// MECSC_SOLVER environment variable ("flow" | "simplex" | "lagrangian"
  /// | "auto", flow when unset); an explicit tier set here always wins.
  /// Resolved once at construction — read it back via
  /// Scenario::solver_tier() and pass it to OlOptions::solver so every
  /// replication shares one decision.
  core::SolverTier solver = core::SolverTier::kEnv;
  /// Root seed every stream (topology, workload, delays, faults) derives
  /// from; same seed + params → bitwise-identical scenario.
  std::uint64_t seed = 1;
};

/// A fully materialised scenario: topology, workload, problem instance,
/// realised demands and delays for the run horizon, a small-sample
/// historical trace for predictor training, and a ready simulator.
///
/// Heap-held members keep the addresses the problem/simulator point at
/// stable; the struct itself is movable.
class Scenario {
 public:
  /// Materialises every component from `params` (throws
  /// common::InvalidArgument on degenerate inputs, e.g. zero horizon).
  explicit Scenario(const ScenarioParams& params);

  /// The parameters the scenario was built from.
  const ScenarioParams& params() const noexcept { return params_; }
  /// The generated station network.
  const net::Topology& topology() const noexcept { return *topology_; }
  /// The problem instance bound to this topology and workload.
  const core::CachingProblem& problem() const noexcept { return *problem_; }
  /// The generated services and requests.
  const workload::Workload& workload() const noexcept { return workload_; }
  /// Realised per-slot demands over the run horizon.
  const workload::DemandMatrix& demands() const noexcept { return *demands_; }
  /// Small-sample historical trace for predictor training.
  const workload::Trace& trace() const noexcept { return *trace_; }
  /// The ready-to-run simulator over this scenario.
  const Simulator& simulator() const noexcept { return *simulator_; }

  /// Mutable views for mobility experiments: the simulator's before-slot
  /// hook applies the slot's user states via
  /// CachingProblem::update_user_locations.
  Simulator& mutable_simulator() noexcept { return *simulator_; }
  core::CachingProblem& mutable_problem() noexcept { return *problem_; }

  /// Midpoint of the delay model's global [d_min, d_max] — the natural
  /// θ prior (the paper assumes both bounds known, Lemma 1).
  double theta_prior() const noexcept { return theta_prior_; }

  /// One stale past measurement of every station's delay process, drawn
  /// before the run horizon — the "historical information of processing
  /// latencies" the paper's Greedy_GD / Pri_GD baselines operate on.
  const std::vector<double>& historical_delay_estimates() const noexcept {
    return historical_estimates_;
  }
  /// Global lower bound of the per-unit delay processes.
  double d_min() const noexcept { return d_min_; }
  /// Global upper bound of the per-unit delay processes.
  double d_max() const noexcept { return d_max_; }

  /// True when C_unit was automatically lowered from the requested value
  /// so the burstiest realised slot keeps the paper's §III.E feasibility
  /// assumption (worst slot ≤ 90% of aggregate capacity; every request
  /// fits the largest station). The effective value is
  /// `problem().options().c_unit_mhz`.
  bool c_unit_derated() const noexcept { return c_unit_derated_; }

  /// The env-resolved aggregation mode (never kEnv): params.aggregate
  /// with MECSC_AGGREGATE applied when it was kEnv. Pass this into
  /// OlOptions::aggregate so algorithms, benches and replications all
  /// act on the single decision made at scenario construction.
  core::AggregateMode aggregate_mode() const noexcept { return aggregate_mode_; }

  /// The env-resolved solver tier (never kEnv; kAuto passes through and
  /// re-resolves per slot by column count): params.solver with
  /// MECSC_SOLVER applied when it was kEnv. Pass this into
  /// OlOptions::solver for the same single-decision contract as
  /// aggregate_mode().
  core::SolverTier solver_tier() const noexcept { return solver_tier_; }

  /// Fresh deterministic seed derived from the scenario seed (for
  /// algorithm instances).
  std::uint64_t algorithm_seed(std::size_t index) const;

  /// The attached fault injector, or null when faults are off. Its plan
  /// records the materialised outage/derate/censor/crowd schedule.
  const fault::FaultInjector* fault_injector() const noexcept {
    return fault_injector_.get();
  }

  /// Mutable injector access for live drivers (mecsc::serve attaches it
  /// to its slot engine, which calls begin_slot per slot).
  fault::FaultInjector* mutable_fault_injector() noexcept {
    return fault_injector_.get();
  }

 private:
  ScenarioParams params_;
  std::unique_ptr<net::Topology> topology_;
  workload::Workload workload_;
  std::unique_ptr<core::CachingProblem> problem_;
  std::unique_ptr<workload::DemandMatrix> demands_;
  std::unique_ptr<workload::Trace> trace_;
  std::unique_ptr<fault::FaultInjector> fault_injector_;
  std::unique_ptr<Simulator> simulator_;
  double theta_prior_ = 0.0;
  double d_min_ = 0.0;
  double d_max_ = 0.0;
  std::vector<double> historical_estimates_;
  bool c_unit_derated_ = false;
  core::AggregateMode aggregate_mode_ = core::AggregateMode::kOff;
  core::SolverTier solver_tier_ = core::SolverTier::kFlow;
  std::uint64_t algo_seed_root_ = 0;
};

}  // namespace mecsc::sim

#endif  // MECSC_SIM_SCENARIO_H
