#include "sim/simulator.h"

#include <algorithm>
#include <limits>
#include <sstream>

#include "common/error.h"
#include "obs/metrics.h"
#include "obs/span.h"

namespace mecsc::sim {

double RunResult::mean_delay_ms() const {
  if (slots.empty()) return 0.0;
  double s = 0.0;
  for (const auto& r : slots) s += r.avg_delay_ms;
  return s / static_cast<double>(slots.size());
}

double RunResult::mean_delay_incremental_ms() const {
  if (slots.empty()) return 0.0;
  double s = 0.0;
  for (const auto& r : slots) s += r.avg_delay_incremental_ms;
  return s / static_cast<double>(slots.size());
}

double RunResult::total_decision_time_ms() const {
  double s = 0.0;
  for (const auto& r : slots) s += r.decision_time_ms;
  return s;
}

double RunResult::mean_decision_time_ms() const {
  return slots.empty() ? 0.0
                       : total_decision_time_ms() / static_cast<double>(slots.size());
}

double RunResult::total_capacity_violation_mhz() const {
  double s = 0.0;
  for (const auto& r : slots) s += r.capacity_violation_mhz;
  return s;
}

double RunResult::tail_mean_delay_ms(std::size_t n) const {
  if (slots.empty()) return 0.0;
  n = std::min(n, slots.size());
  double s = 0.0;
  for (std::size_t i = slots.size() - n; i < slots.size(); ++i) {
    s += slots[i].avg_delay_ms;
  }
  return s / static_cast<double>(n);
}

Simulator::Simulator(const core::CachingProblem& problem,
                     const workload::DemandMatrix* demands,
                     std::vector<std::vector<double>> unit_delays,
                     bool track_regret)
    : problem_(&problem),
      demands_(demands),
      unit_delays_(std::move(unit_delays)),
      track_regret_(track_regret) {
  MECSC_CHECK_MSG(demands_ != nullptr, "null demand matrix");
  MECSC_CHECK_MSG(demands_->num_requests() == problem.num_requests(),
                  "demand matrix / problem size mismatch");
  MECSC_CHECK_MSG(!unit_delays_.empty(), "no realised delays");
  for (const auto& d : unit_delays_) {
    MECSC_CHECK_MSG(d.size() == problem.num_stations(),
                    "unit delay vector size mismatch");
  }
  horizon_ = std::min(demands_->horizon(), unit_delays_.size());
}

RunResult Simulator::run(algorithms::CachingAlgorithm& algorithm) const {
  RunResult result;
  result.algorithm = algorithm.name();
  result.slots.reserve(horizon_);

  std::optional<core::RegretTracker> regret;
  if (track_regret_) regret.emplace(*problem_);

  const bool telemetry = obs::enabled();
  std::vector<std::vector<bool>> prev_cached;  // empty at slot 0
  std::vector<double> eff_delays;              // fault-mode scratch
  std::vector<double> censored_delays;         // fault-mode scratch
  for (std::size_t t = 0; t < horizon_; ++t) {
    const fault::SlotFaultSummary* faults = nullptr;
    std::size_t evictions = 0;
    if (fault_injector_ != nullptr) {
      // Install the slot's effective capacities before the algorithm
      // decides, and evict every cached instance sitting on a down
      // station — its re-instantiation after recovery is then naturally
      // re-charged d_ins by the incremental accounting.
      faults = &fault_injector_->begin_slot(t);
      for (std::size_t i = 0; i < problem_->num_stations(); ++i) {
        if (fault_injector_->station_up(t, i)) continue;
        for (auto& row : prev_cached) {
          if (row[i]) {
            row[i] = false;
            ++evictions;
          }
        }
      }
      if (evictions > 0) {
        MECSC_COUNT("fault.evictions", static_cast<double>(evictions));
      }
      MECSC_GAUGE_SET("fault.active_outages",
                      static_cast<double>(faults->active_outages));
    }
    if (before_slot_) before_slot_(t);
    // Every slot's phases are timed into its span timeline; the record's
    // decision_time_ms is derived from the "algo.decide" span so the two
    // sources can never disagree.
    auto timeline = std::make_shared<obs::SlotTimeline>();
    core::Assignment decision;
    {
      obs::TimelineSpan span(timeline.get(), "algo.decide");
      decision = algorithm.decide(t);
    }

    std::vector<double> truth = demands_->slot(t);
    const std::vector<double>* delays = &unit_delays_[t];
    if (faults != nullptr) {
      // A request that still lands on a down station (the degradation
      // machinery makes this rare) is scored with the plan's outage
      // penalty on its unit delay.
      eff_delays = unit_delays_[t];
      const double penalty =
          fault_injector_->plan().options().outage_penalty_factor;
      for (std::size_t i = 0; i < eff_delays.size(); ++i) {
        if (!fault_injector_->station_up(t, i)) eff_delays[i] *= penalty;
      }
      delays = &eff_delays;
    }

    SlotRecord rec;
    {
      obs::TimelineSpan span(timeline.get(), "sim.score");
      rec.avg_delay_ms =
          core::realized_average_delay(*problem_, decision, truth, *delays);
      rec.avg_delay_incremental_ms = core::realized_average_delay_incremental(
          *problem_, decision, prev_cached, truth, *delays);
      rec.capacity_violation_mhz =
          core::capacity_violation(*problem_, decision, truth);
    }
    // Regret compares against the hindsight optimum of the same degraded
    // slot, so it is recorded before the shed penalty — shed requests
    // cost every algorithm identically and are not a learning failure.
    const double pre_penalty_delay = rec.avg_delay_ms;
    if (faults != nullptr) {
      const double nr = static_cast<double>(problem_->num_requests());
      rec.avg_delay_ms += faults->shed_penalty_ms / nr;
      rec.avg_delay_incremental_ms += faults->shed_penalty_ms / nr;
      rec.fault_active_outages = faults->active_outages;
      rec.fault_evictions = evictions;
      rec.fault_shed_requests = faults->shed_requests;
      rec.fault_censored_feedback = faults->censored;
      rec.fault_shed_penalty_ms = faults->shed_penalty_ms;
      if (faults->shed_requests > 0) {
        MECSC_COUNT("fault.shed_requests",
                    static_cast<double>(faults->shed_requests));
      }
    }
    rec.decision_time_ms = timeline->ms_of("algo.decide");
    rec.timeline = timeline;
    result.slots.push_back(rec);
    prev_cached = decision.cached;

    {
      obs::TimelineSpan span(timeline.get(), "sim.observe");
      if (regret) regret->record(pre_penalty_delay, truth, *delays);
      const std::vector<double>* observed = delays;
      if (faults != nullptr && faults->censored > 0) {
        // Censored bandit feedback: the lost d_i(t) reach the algorithm
        // as NaN and must be skipped, not averaged.
        censored_delays = *delays;
        for (std::size_t i = 0; i < censored_delays.size(); ++i) {
          if (fault_injector_->feedback_lost(t, i)) {
            censored_delays[i] = std::numeric_limits<double>::quiet_NaN();
          }
        }
        observed = &censored_delays;
        MECSC_COUNT("fault.censored_feedback",
                    static_cast<double>(faults->censored));
      }
      algorithm.observe(t, decision, truth, *observed);
    }

    if (telemetry) {
      obs::Registry& reg = obs::current();
      for (const auto& e : timeline->events()) {
        reg.histogram(std::string("span.") + e.name).observe(e.ms);
      }
      reg.counter("sim.slots").inc();
      if (obs::full_enabled()) {
        std::ostringstream ev;
        ev << "{\"type\":\"slot\",\"algo\":\"" << result.algorithm
           << "\",\"t\":" << t << ",\"avg_delay_ms\":" << rec.avg_delay_ms
           << ",\"decision_time_ms\":" << rec.decision_time_ms
           << ",\"capacity_violation_mhz\":" << rec.capacity_violation_mhz
           << ",\"phases\":{";
        bool first = true;
        for (const auto& e : timeline->events()) {
          if (!first) ev << ',';
          first = false;
          ev << '"' << e.name << "\":" << e.ms;
        }
        ev << "}}";
        reg.record_event(ev.str());
      }
    }
  }
  if (fault_injector_ != nullptr) fault_injector_->end_run();
  if (regret) result.cumulative_regret = regret->cumulative_series();
  return result;
}

}  // namespace mecsc::sim
