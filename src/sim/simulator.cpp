#include "sim/simulator.h"

#include <algorithm>

#include "common/error.h"

namespace mecsc::sim {

double RunResult::mean_delay_ms() const {
  if (slots.empty()) return 0.0;
  double s = 0.0;
  for (const auto& r : slots) s += r.avg_delay_ms;
  return s / static_cast<double>(slots.size());
}

double RunResult::mean_delay_incremental_ms() const {
  if (slots.empty()) return 0.0;
  double s = 0.0;
  for (const auto& r : slots) s += r.avg_delay_incremental_ms;
  return s / static_cast<double>(slots.size());
}

double RunResult::total_decision_time_ms() const {
  double s = 0.0;
  for (const auto& r : slots) s += r.decision_time_ms;
  return s;
}

double RunResult::mean_decision_time_ms() const {
  return slots.empty() ? 0.0
                       : total_decision_time_ms() / static_cast<double>(slots.size());
}

double RunResult::total_capacity_violation_mhz() const {
  double s = 0.0;
  for (const auto& r : slots) s += r.capacity_violation_mhz;
  return s;
}

double RunResult::tail_mean_delay_ms(std::size_t n) const {
  if (slots.empty()) return 0.0;
  n = std::min(n, slots.size());
  double s = 0.0;
  for (std::size_t i = slots.size() - n; i < slots.size(); ++i) {
    s += slots[i].avg_delay_ms;
  }
  return s / static_cast<double>(n);
}

Simulator::Simulator(const core::CachingProblem& problem,
                     const workload::DemandMatrix* demands,
                     std::vector<std::vector<double>> unit_delays,
                     bool track_regret)
    : problem_(&problem),
      demands_(demands),
      unit_delays_(std::move(unit_delays)),
      track_regret_(track_regret) {
  MECSC_CHECK_MSG(demands_ != nullptr, "null demand matrix");
  MECSC_CHECK_MSG(demands_->num_requests() == problem.num_requests(),
                  "demand matrix / problem size mismatch");
  MECSC_CHECK_MSG(!unit_delays_.empty(), "no realised delays");
  for (const auto& d : unit_delays_) {
    MECSC_CHECK_MSG(d.size() == problem.num_stations(),
                    "unit delay vector size mismatch");
  }
  horizon_ = std::min(demands_->horizon(), unit_delays_.size());
}

RunResult Simulator::run(algorithms::CachingAlgorithm& algorithm) const {
  RunResult result;
  result.algorithm = algorithm.name();
  result.slots.reserve(horizon_);

  SlotEngine engine(*problem_, track_regret_);
  if (fault_injector_ != nullptr) engine.set_fault_injector(fault_injector_);

  for (std::size_t t = 0; t < horizon_; ++t) {
    if (before_slot_) before_slot_(t);
    result.slots.push_back(
        engine.step(t, algorithm, demands_->slot(t), unit_delays_[t]));
  }
  engine.end_run();
  if (track_regret_) result.cumulative_regret = engine.cumulative_regret();
  return result;
}

}  // namespace mecsc::sim
