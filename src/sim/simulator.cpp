#include "sim/simulator.h"

#include <algorithm>
#include <sstream>

#include "common/error.h"
#include "obs/metrics.h"
#include "obs/span.h"

namespace mecsc::sim {

double RunResult::mean_delay_ms() const {
  if (slots.empty()) return 0.0;
  double s = 0.0;
  for (const auto& r : slots) s += r.avg_delay_ms;
  return s / static_cast<double>(slots.size());
}

double RunResult::mean_delay_incremental_ms() const {
  if (slots.empty()) return 0.0;
  double s = 0.0;
  for (const auto& r : slots) s += r.avg_delay_incremental_ms;
  return s / static_cast<double>(slots.size());
}

double RunResult::total_decision_time_ms() const {
  double s = 0.0;
  for (const auto& r : slots) s += r.decision_time_ms;
  return s;
}

double RunResult::mean_decision_time_ms() const {
  return slots.empty() ? 0.0
                       : total_decision_time_ms() / static_cast<double>(slots.size());
}

double RunResult::total_capacity_violation_mhz() const {
  double s = 0.0;
  for (const auto& r : slots) s += r.capacity_violation_mhz;
  return s;
}

double RunResult::tail_mean_delay_ms(std::size_t n) const {
  if (slots.empty()) return 0.0;
  n = std::min(n, slots.size());
  double s = 0.0;
  for (std::size_t i = slots.size() - n; i < slots.size(); ++i) {
    s += slots[i].avg_delay_ms;
  }
  return s / static_cast<double>(n);
}

Simulator::Simulator(const core::CachingProblem& problem,
                     const workload::DemandMatrix* demands,
                     std::vector<std::vector<double>> unit_delays,
                     bool track_regret)
    : problem_(&problem),
      demands_(demands),
      unit_delays_(std::move(unit_delays)),
      track_regret_(track_regret) {
  MECSC_CHECK_MSG(demands_ != nullptr, "null demand matrix");
  MECSC_CHECK_MSG(demands_->num_requests() == problem.num_requests(),
                  "demand matrix / problem size mismatch");
  MECSC_CHECK_MSG(!unit_delays_.empty(), "no realised delays");
  for (const auto& d : unit_delays_) {
    MECSC_CHECK_MSG(d.size() == problem.num_stations(),
                    "unit delay vector size mismatch");
  }
  horizon_ = std::min(demands_->horizon(), unit_delays_.size());
}

RunResult Simulator::run(algorithms::CachingAlgorithm& algorithm) const {
  RunResult result;
  result.algorithm = algorithm.name();
  result.slots.reserve(horizon_);

  std::optional<core::RegretTracker> regret;
  if (track_regret_) regret.emplace(*problem_);

  const bool telemetry = obs::enabled();
  std::vector<std::vector<bool>> prev_cached;  // empty at slot 0
  for (std::size_t t = 0; t < horizon_; ++t) {
    if (before_slot_) before_slot_(t);
    // Every slot's phases are timed into its span timeline; the record's
    // decision_time_ms is derived from the "algo.decide" span so the two
    // sources can never disagree.
    auto timeline = std::make_shared<obs::SlotTimeline>();
    core::Assignment decision;
    {
      obs::TimelineSpan span(timeline.get(), "algo.decide");
      decision = algorithm.decide(t);
    }

    std::vector<double> truth = demands_->slot(t);
    const std::vector<double>& delays = unit_delays_[t];

    SlotRecord rec;
    {
      obs::TimelineSpan span(timeline.get(), "sim.score");
      rec.avg_delay_ms =
          core::realized_average_delay(*problem_, decision, truth, delays);
      rec.avg_delay_incremental_ms = core::realized_average_delay_incremental(
          *problem_, decision, prev_cached, truth, delays);
      rec.capacity_violation_mhz =
          core::capacity_violation(*problem_, decision, truth);
    }
    rec.decision_time_ms = timeline->ms_of("algo.decide");
    rec.timeline = timeline;
    result.slots.push_back(rec);
    prev_cached = decision.cached;

    {
      obs::TimelineSpan span(timeline.get(), "sim.observe");
      if (regret) regret->record(rec.avg_delay_ms, truth, delays);
      algorithm.observe(t, decision, truth, delays);
    }

    if (telemetry) {
      obs::Registry& reg = obs::current();
      for (const auto& e : timeline->events()) {
        reg.histogram(std::string("span.") + e.name).observe(e.ms);
      }
      reg.counter("sim.slots").inc();
      if (obs::full_enabled()) {
        std::ostringstream ev;
        ev << "{\"type\":\"slot\",\"algo\":\"" << result.algorithm
           << "\",\"t\":" << t << ",\"avg_delay_ms\":" << rec.avg_delay_ms
           << ",\"decision_time_ms\":" << rec.decision_time_ms
           << ",\"capacity_violation_mhz\":" << rec.capacity_violation_mhz
           << ",\"phases\":{";
        bool first = true;
        for (const auto& e : timeline->events()) {
          if (!first) ev << ',';
          first = false;
          ev << '"' << e.name << "\":" << e.ms;
        }
        ev << "}}";
        reg.record_event(ev.str());
      }
    }
  }
  if (regret) result.cumulative_regret = regret->cumulative_series();
  return result;
}

}  // namespace mecsc::sim
