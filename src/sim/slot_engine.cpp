#include "sim/slot_engine.h"

#include <limits>
#include <sstream>

#include "common/error.h"
#include "obs/metrics.h"

namespace mecsc::sim {

SlotEngine::SlotEngine(const core::CachingProblem& problem, bool track_regret)
    : problem_(&problem) {
  if (track_regret) regret_.emplace(problem);
}

SlotRecord SlotEngine::step(std::size_t t,
                            algorithms::CachingAlgorithm& algorithm,
                            const std::vector<double>& true_demands,
                            const std::vector<double>& unit_delays) {
  MECSC_CHECK_MSG(true_demands.size() == problem_->num_requests(),
                  "demand snapshot size mismatch");
  MECSC_CHECK_MSG(unit_delays.size() == problem_->num_stations(),
                  "unit delay vector size mismatch");
  const bool telemetry = obs::enabled();
  const fault::SlotFaultSummary* faults = nullptr;
  std::size_t evictions = 0;
  if (fault_injector_ != nullptr) {
    // Install the slot's effective capacities before the algorithm
    // decides, and evict every cached instance sitting on a down
    // station — its re-instantiation after recovery is then naturally
    // re-charged d_ins by the incremental accounting.
    faults = &fault_injector_->begin_slot(t);
    for (std::size_t i = 0; i < problem_->num_stations(); ++i) {
      if (fault_injector_->station_up(t, i)) continue;
      for (auto& row : prev_cached_) {
        if (row[i]) {
          row[i] = false;
          ++evictions;
        }
      }
    }
    if (evictions > 0) {
      MECSC_COUNT("fault.evictions", static_cast<double>(evictions));
    }
    MECSC_GAUGE_SET("fault.active_outages",
                    static_cast<double>(faults->active_outages));
  }
  // Every slot's phases are timed into its span timeline; the record's
  // decision_time_ms is derived from the "algo.decide" span so the two
  // sources can never disagree.
  auto timeline = std::make_shared<obs::SlotTimeline>();
  {
    obs::TimelineSpan span(timeline.get(), "algo.decide");
    decision_ = algorithm.decide(t);
  }

  const std::vector<double>* delays = &unit_delays;
  if (faults != nullptr) {
    // A request that still lands on a down station (the degradation
    // machinery makes this rare) is scored with the plan's outage
    // penalty on its unit delay.
    eff_delays_ = unit_delays;
    const double penalty =
        fault_injector_->plan().options().outage_penalty_factor;
    for (std::size_t i = 0; i < eff_delays_.size(); ++i) {
      if (!fault_injector_->station_up(t, i)) eff_delays_[i] *= penalty;
    }
    delays = &eff_delays_;
  }

  SlotRecord rec;
  {
    obs::TimelineSpan span(timeline.get(), "sim.score");
    rec.avg_delay_ms = core::realized_average_delay(*problem_, decision_,
                                                    true_demands, *delays);
    rec.avg_delay_incremental_ms = core::realized_average_delay_incremental(
        *problem_, decision_, prev_cached_, true_demands, *delays);
    rec.capacity_violation_mhz =
        core::capacity_violation(*problem_, decision_, true_demands);
  }
  // Regret compares against the hindsight optimum of the same degraded
  // slot, so it is recorded before the shed penalty — shed requests
  // cost every algorithm identically and are not a learning failure.
  const double pre_penalty_delay = rec.avg_delay_ms;
  if (faults != nullptr) {
    const double nr = static_cast<double>(problem_->num_requests());
    rec.avg_delay_ms += faults->shed_penalty_ms / nr;
    rec.avg_delay_incremental_ms += faults->shed_penalty_ms / nr;
    rec.fault_active_outages = faults->active_outages;
    rec.fault_evictions = evictions;
    rec.fault_shed_requests = faults->shed_requests;
    rec.fault_censored_feedback = faults->censored;
    rec.fault_shed_penalty_ms = faults->shed_penalty_ms;
    if (faults->shed_requests > 0) {
      MECSC_COUNT("fault.shed_requests",
                  static_cast<double>(faults->shed_requests));
    }
  }
  rec.decision_time_ms = timeline->ms_of("algo.decide");
  rec.timeline = timeline;
  prev_cached_ = decision_.cached;

  {
    obs::TimelineSpan span(timeline.get(), "sim.observe");
    if (regret_) regret_->record(pre_penalty_delay, true_demands, *delays);
    const std::vector<double>* observed = delays;
    if (faults != nullptr && faults->censored > 0) {
      // Censored bandit feedback: the lost d_i(t) reach the algorithm
      // as NaN and must be skipped, not averaged.
      censored_delays_ = *delays;
      for (std::size_t i = 0; i < censored_delays_.size(); ++i) {
        if (fault_injector_->feedback_lost(t, i)) {
          censored_delays_[i] = std::numeric_limits<double>::quiet_NaN();
        }
      }
      observed = &censored_delays_;
      MECSC_COUNT("fault.censored_feedback",
                  static_cast<double>(faults->censored));
    }
    algorithm.observe(t, decision_, true_demands, *observed);
  }

  if (telemetry) {
    obs::Registry& reg = obs::current();
    for (const auto& e : timeline->events()) {
      reg.histogram(std::string("span.") + e.name).observe(e.ms);
    }
    reg.counter("sim.slots").inc();
    if (obs::full_enabled()) {
      std::ostringstream ev;
      ev << "{\"type\":\"slot\",\"algo\":\"" << algorithm.name()
         << "\",\"t\":" << t << ",\"avg_delay_ms\":" << rec.avg_delay_ms
         << ",\"decision_time_ms\":" << rec.decision_time_ms
         << ",\"capacity_violation_mhz\":" << rec.capacity_violation_mhz
         << ",\"phases\":{";
      bool first = true;
      for (const auto& e : timeline->events()) {
        if (!first) ev << ',';
        first = false;
        ev << '"' << e.name << "\":" << e.ms;
      }
      ev << "}}";
      reg.record_event(ev.str());
    }
  }
  return rec;
}

void SlotEngine::end_run() {
  if (fault_injector_ != nullptr) fault_injector_->end_run();
}

}  // namespace mecsc::sim
