#include "sim/slot_engine.h"

#include <limits>
#include <sstream>

#include "common/error.h"
#include "obs/metrics.h"

namespace mecsc::sim {

SlotEngine::SlotEngine(const core::CachingProblem& problem, bool track_regret)
    : problem_(&problem) {
  if (track_regret) regret_.emplace(problem);
}

SlotRecord SlotEngine::step(std::size_t t,
                            algorithms::CachingAlgorithm& algorithm,
                            const std::vector<double>& true_demands,
                            const std::vector<double>& unit_delays,
                            bool run_decide) {
  if (fault_injector_ == nullptr) {
    return step_core(t, algorithm, true_demands, unit_delays, nullptr,
                     run_decide);
  }
  // Install the slot's effective capacities before the algorithm
  // decides; the shared core then handles eviction, penalties, and
  // censoring off the plan's per-slot masks.
  const fault::SlotFaultSummary& summary = fault_injector_->begin_slot(t);
  const fault::SlotFaults& sf = fault_injector_->plan().slot(t);
  FaultView view;
  view.station_up = sf.station_up.data();
  view.feedback_lost = sf.feedback_lost.data();
  view.outage_penalty_factor =
      fault_injector_->plan().options().outage_penalty_factor;
  view.active_outages = summary.active_outages;
  view.censored = summary.censored;
  view.shed_requests = summary.shed_requests;
  view.shed_penalty_ms = summary.shed_penalty_ms;
  return step_core(t, algorithm, true_demands, unit_delays, &view, run_decide);
}

SlotRecord SlotEngine::step_recorded(std::size_t t,
                                     algorithms::CachingAlgorithm& algorithm,
                                     const std::vector<double>& true_demands,
                                     const std::vector<double>& unit_delays,
                                     const SlotFaultState& faults,
                                     bool run_decide) {
  MECSC_CHECK_MSG(faults.station_up.size() == problem_->num_stations() &&
                      faults.feedback_lost.size() == problem_->num_stations(),
                  "recorded fault mask size mismatch");
  FaultView view;
  view.station_up = reinterpret_cast<const char*>(faults.station_up.data());
  view.feedback_lost =
      reinterpret_cast<const char*>(faults.feedback_lost.data());
  view.outage_penalty_factor = faults.outage_penalty_factor;
  for (std::uint8_t up : faults.station_up) {
    if (up == 0) ++view.active_outages;
  }
  for (std::uint8_t lost : faults.feedback_lost) {
    if (lost != 0) ++view.censored;
  }
  view.shed_requests = faults.shed_requests;
  view.shed_penalty_ms = faults.shed_penalty_ms;
  return step_core(t, algorithm, true_demands, unit_delays, &view, run_decide);
}

SlotRecord SlotEngine::step_core(std::size_t t,
                                 algorithms::CachingAlgorithm& algorithm,
                                 const std::vector<double>& true_demands,
                                 const std::vector<double>& unit_delays,
                                 const FaultView* faults, bool run_decide) {
  MECSC_CHECK_MSG(true_demands.size() == problem_->num_requests(),
                  "demand snapshot size mismatch");
  MECSC_CHECK_MSG(unit_delays.size() == problem_->num_stations(),
                  "unit delay vector size mismatch");
  const bool telemetry = obs::enabled();
  std::size_t evictions = 0;
  if (faults != nullptr) {
    // Evict every cached instance sitting on a down station — its
    // re-instantiation after recovery is then naturally re-charged
    // d_ins by the incremental accounting.
    for (std::size_t i = 0; i < problem_->num_stations(); ++i) {
      if (faults->station_up[i] != 0) continue;
      for (auto& row : prev_cached_) {
        if (row[i]) {
          row[i] = false;
          ++evictions;
        }
      }
    }
    if (evictions > 0) {
      MECSC_COUNT("fault.evictions", static_cast<double>(evictions));
    }
    MECSC_GAUGE_SET("fault.active_outages",
                    static_cast<double>(faults->active_outages));
  }
  // Every slot's phases are timed into its span timeline; the record's
  // decision_time_ms is derived from the "algo.decide" span so the two
  // sources can never disagree. A re-commit slot records no decide span
  // and therefore a ~zero decision time.
  auto timeline = std::make_shared<obs::SlotTimeline>();
  if (run_decide) {
    obs::TimelineSpan span(timeline.get(), "algo.decide");
    decision_ = algorithm.decide(t);
  } else {
    MECSC_CHECK_MSG(has_decision_,
                    "re-commit requested before any decision exists");
    MECSC_COUNT("serve.recommits", 1.0);
  }
  has_decision_ = true;

  const std::vector<double>* delays = &unit_delays;
  if (faults != nullptr) {
    // A request that still lands on a down station (the degradation
    // machinery makes this rare) is scored with the plan's outage
    // penalty on its unit delay.
    eff_delays_ = unit_delays;
    for (std::size_t i = 0; i < eff_delays_.size(); ++i) {
      if (faults->station_up[i] == 0) {
        eff_delays_[i] *= faults->outage_penalty_factor;
      }
    }
    delays = &eff_delays_;
  }

  SlotRecord rec;
  {
    obs::TimelineSpan span(timeline.get(), "sim.score");
    rec.avg_delay_ms = core::realized_average_delay(*problem_, decision_,
                                                    true_demands, *delays);
    rec.avg_delay_incremental_ms = core::realized_average_delay_incremental(
        *problem_, decision_, prev_cached_, true_demands, *delays);
    rec.capacity_violation_mhz =
        core::capacity_violation(*problem_, decision_, true_demands);
  }
  // Regret compares against the hindsight optimum of the same degraded
  // slot, so it is recorded before the shed penalty — shed requests
  // cost every algorithm identically and are not a learning failure.
  const double pre_penalty_delay = rec.avg_delay_ms;
  if (faults != nullptr) {
    const double nr = static_cast<double>(problem_->num_requests());
    rec.avg_delay_ms += faults->shed_penalty_ms / nr;
    rec.avg_delay_incremental_ms += faults->shed_penalty_ms / nr;
    rec.fault_active_outages = faults->active_outages;
    rec.fault_evictions = evictions;
    rec.fault_shed_requests = faults->shed_requests;
    rec.fault_censored_feedback = faults->censored;
    rec.fault_shed_penalty_ms = faults->shed_penalty_ms;
    if (faults->shed_requests > 0) {
      MECSC_COUNT("fault.shed_requests",
                  static_cast<double>(faults->shed_requests));
    }
  }
  rec.decision_time_ms = timeline->ms_of("algo.decide");
  rec.timeline = timeline;
  prev_cached_ = decision_.cached;

  {
    obs::TimelineSpan span(timeline.get(), "sim.observe");
    if (regret_) regret_->record(pre_penalty_delay, true_demands, *delays);
    const std::vector<double>* observed = delays;
    if (faults != nullptr && faults->censored > 0) {
      // Censored bandit feedback: the lost d_i(t) reach the algorithm
      // as NaN and must be skipped, not averaged.
      censored_delays_ = *delays;
      for (std::size_t i = 0; i < censored_delays_.size(); ++i) {
        if (faults->feedback_lost[i] != 0) {
          censored_delays_[i] = std::numeric_limits<double>::quiet_NaN();
        }
      }
      observed = &censored_delays_;
      MECSC_COUNT("fault.censored_feedback",
                  static_cast<double>(faults->censored));
    }
    algorithm.observe(t, decision_, true_demands, *observed);
  }

  if (telemetry) {
    obs::Registry& reg = obs::current();
    for (const auto& e : timeline->events()) {
      reg.histogram(std::string("span.") + e.name).observe(e.ms);
    }
    reg.counter("sim.slots").inc();
    if (obs::full_enabled()) {
      std::ostringstream ev;
      ev << "{\"type\":\"slot\",\"algo\":\"" << algorithm.name()
         << "\",\"t\":" << t << ",\"avg_delay_ms\":" << rec.avg_delay_ms
         << ",\"decision_time_ms\":" << rec.decision_time_ms
         << ",\"capacity_violation_mhz\":" << rec.capacity_violation_mhz
         << ",\"phases\":{";
      bool first = true;
      for (const auto& e : timeline->events()) {
        if (!first) ev << ',';
        first = false;
        ev << '"' << e.name << "\":" << e.ms;
      }
      ev << "}}";
      reg.record_event(ev.str());
    }
  }
  return rec;
}

void SlotEngine::end_run() {
  if (fault_injector_ != nullptr) fault_injector_->end_run();
}

}  // namespace mecsc::sim
