#ifndef MECSC_SIM_REPLICATION_H
#define MECSC_SIM_REPLICATION_H

// Parallel topology-replication runner for the figure benches (DESIGN.md
// "Performance").
//
// Every bench averages over independent topology replications; each
// replication derives all of its randomness from its own seed (e.g.
// `p.seed = 1000 + rep`), so replications are embarrassingly parallel.
// The runner farms the replication bodies out to a worker pool but
// applies the merge step sequentially in replication order, which makes
// the accumulated statistics BITWISE IDENTICAL to a sequential run — the
// same RunningStats values in the same order — regardless of worker
// count or scheduling (tests/test_sim.cpp asserts this).
//
// Thread-safety contract: the body must be self-contained — it builds
// its own Scenario / algorithms / solver scratch from `rep` and returns
// a result by value (one solver workspace per worker falls out of this
// naturally). The merge callback runs on the calling thread only and may
// touch shared accumulators freely.

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <optional>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace mecsc::sim {

/// Worker count for replication fan-out: MECSC_WORKERS when set, else
/// hardware concurrency (min 1).
inline std::size_t replication_workers() {
  if (const char* v = std::getenv("MECSC_WORKERS"); v != nullptr && *v != '\0') {
    char* end = nullptr;
    unsigned long long parsed = std::strtoull(v, &end, 10);
    if (end != v && parsed > 0) return static_cast<std::size_t>(parsed);
  }
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

/// Runs `body(rep)` for rep in [0, count) across `replication_workers()`
/// threads, then calls `merge(rep, result)` on the calling thread in
/// ascending rep order. With one worker (or one replication) it
/// degenerates to the plain sequential loop. Exceptions thrown by a body
/// are rethrown here after the pool joins.
template <typename Body, typename Merge>
void run_replications(std::size_t count, Body&& body, Merge&& merge) {
  using Result = std::invoke_result_t<Body&, std::size_t>;
  static_assert(!std::is_void_v<Result>,
                "replication body must return its per-rep result by value");

  const std::size_t workers = std::min(count, replication_workers());
  if (workers <= 1) {
    for (std::size_t rep = 0; rep < count; ++rep) {
      Result r = body(rep);
      merge(rep, r);
    }
    return;
  }

  std::vector<std::optional<Result>> results(count);
  std::atomic<std::size_t> next{0};
  std::exception_ptr error;
  std::mutex error_mu;
  {
    std::vector<std::jthread> pool;
    pool.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) {
      pool.emplace_back([&]() {
        while (true) {
          std::size_t rep = next.fetch_add(1, std::memory_order_relaxed);
          if (rep >= count) return;
          try {
            results[rep].emplace(body(rep));
          } catch (...) {
            std::lock_guard<std::mutex> lock(error_mu);
            if (!error) error = std::current_exception();
            return;
          }
        }
      });
    }
  }  // jthreads join here
  if (error) std::rethrow_exception(error);

  for (std::size_t rep = 0; rep < count; ++rep) {
    merge(rep, *results[rep]);
  }
}

}  // namespace mecsc::sim

#endif  // MECSC_SIM_REPLICATION_H
