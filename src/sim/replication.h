#ifndef MECSC_SIM_REPLICATION_H
#define MECSC_SIM_REPLICATION_H

// Parallel topology-replication runner for the figure benches (DESIGN.md
// "Performance").
//
// Every bench averages over independent topology replications; each
// replication derives all of its randomness from its own seed (e.g.
// `p.seed = 1000 + rep`), so replications are embarrassingly parallel.
// The runner farms the replication bodies out to a worker pool but
// applies the merge step sequentially in replication order, which makes
// the accumulated statistics BITWISE IDENTICAL to a sequential run — the
// same RunningStats values in the same order — regardless of worker
// count or scheduling (tests/test_sim.cpp asserts this).
//
// Thread-safety contract: the body must be self-contained — it builds
// its own Scenario / algorithms / solver scratch from `rep` and returns
// a result by value (one solver workspace per worker falls out of this
// naturally). The merge callback runs on the calling thread only and may
// touch shared accumulators freely.

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <exception>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/env.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"

namespace mecsc::sim {

/// Worker count for replication fan-out: MECSC_WORKERS when set and
/// positive, else hardware concurrency (min 1).
inline std::size_t replication_workers() {
  if (auto parsed = common::env_size_strict("MECSC_WORKERS");
      parsed.has_value() && *parsed > 0) {
    return *parsed;
  }
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

/// Runs `body(rep)` for rep in [0, count) across `replication_workers()`
/// threads, then calls `merge(rep, result)` on the calling thread in
/// ascending rep order. With one worker (or one replication) it
/// degenerates to the plain sequential loop. Exceptions thrown by a body
/// are rethrown here after the pool joins.
///
/// Telemetry: when MECSC_TELEMETRY is on, each body records into its
/// own child obs::Registry (installed as the thread-current registry for
/// the body's duration), and the children are folded into the caller's
/// registry in ascending rep order right before the rep's merge
/// callback. Sequential and parallel runs therefore accumulate every
/// floating-point sum in the same order — the merged registry, like the
/// merged statistics, is bitwise independent of MECSC_WORKERS.
template <typename Body, typename Merge>
void run_replications(std::size_t count, Body&& body, Merge&& merge) {
  using Result = std::invoke_result_t<Body&, std::size_t>;
  static_assert(!std::is_void_v<Result>,
                "replication body must return its per-rep result by value");

  const bool telemetry = obs::enabled();
  std::vector<std::unique_ptr<obs::Registry>> registries(telemetry ? count : 0);
  auto run_body = [&](std::size_t rep) -> Result {
    if (!telemetry) return body(rep);
    registries[rep] = std::make_unique<obs::Registry>();
    obs::ScopedRegistry scope(registries[rep].get());
    return body(rep);
  };
  // Folding a rep's telemetry happens with the rep's user merge, on the
  // calling thread, in rep order — in both the sequential and the
  // parallel path below.
  obs::Registry* parent = telemetry ? &obs::current() : nullptr;
  auto merge_rep = [&](std::size_t rep, Result& r) {
    if (telemetry) parent->merge_from(*registries[rep]);
    merge(rep, r);
  };

  const std::size_t workers = std::min(count, replication_workers());
  if (workers <= 1) {
    for (std::size_t rep = 0; rep < count; ++rep) {
      Result r = run_body(rep);
      merge_rep(rep, r);
    }
    return;
  }

  std::vector<std::optional<Result>> results(count);
  std::atomic<std::size_t> next{0};
  std::exception_ptr error;
  std::mutex error_mu;
  {
    std::vector<std::jthread> pool;
    pool.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) {
      pool.emplace_back([&]() {
        while (true) {
          std::size_t rep = next.fetch_add(1, std::memory_order_relaxed);
          if (rep >= count) return;
          try {
            results[rep].emplace(run_body(rep));
          } catch (...) {
            std::lock_guard<std::mutex> lock(error_mu);
            if (!error) error = std::current_exception();
            return;
          }
        }
      });
    }
  }  // jthreads join here
  if (error) std::rethrow_exception(error);

  for (std::size_t rep = 0; rep < count; ++rep) {
    merge_rep(rep, *results[rep]);
  }
}

}  // namespace mecsc::sim

#endif  // MECSC_SIM_REPLICATION_H
