#ifndef MECSC_SIM_SLOT_ENGINE_H
#define MECSC_SIM_SLOT_ENGINE_H

#include <memory>
#include <optional>
#include <vector>

#include "algorithms/algorithm.h"
#include "core/assignment.h"
#include "core/problem.h"
#include "core/regret.h"
#include "fault/fault_injector.h"
#include "obs/span.h"

namespace mecsc::sim {

/// Metrics of one simulated slot.
struct SlotRecord {
  /// Realised Eq. 3 objective (mean per-request delay, ms).
  double avg_delay_ms = 0.0;
  /// Realised delay charging instantiation only for instances newly
  /// cached this slot (operational accounting; see
  /// realized_average_delay_incremental).
  double avg_delay_incremental_ms = 0.0;
  /// Wall-clock of the algorithm's decide() — derived from the
  /// timeline's "algo.decide" span, so the two can never disagree.
  double decision_time_ms = 0.0;
  /// Total MHz by which the decision exceeded station capacities.
  double capacity_violation_mhz = 0.0;
  /// Stations down this slot (zero when no fault injector is set).
  std::size_t fault_active_outages = 0;
  /// Cached instances lost to outages this slot.
  std::size_t fault_evictions = 0;
  /// Requests deferred by admission control this slot.
  std::size_t fault_shed_requests = 0;
  /// Stations whose d_i(t) feedback was censored this slot.
  std::size_t fault_censored_feedback = 0;
  /// Per-request shed penalty folded into avg_delay_ms this slot
  /// (pre-averaging total).
  double fault_shed_penalty_ms = 0.0;
  /// Span timeline of this slot's phases (algo.decide / sim.score /
  /// sim.observe) — the structured replacement for bolting further
  /// ad-hoc timing doubles onto this record. Always present after a
  /// Simulator::run or SlotEngine::step; null only for hand-built
  /// records (e.g. in tests).
  std::shared_ptr<const obs::SlotTimeline> timeline;
};

/// The per-slot decision protocol (paper §III), extracted from the batch
/// simulator so live drivers can reuse it verbatim: given slot t's true
/// demands and realised unit delays, run the algorithm's decide(), score
/// the decision ex post (Eq. 3 with realised values), apply the fault
/// plan's per-slot effects when an injector is attached, and reveal the
/// slot's ground truth to the algorithm.
///
/// One engine instance carries the cross-slot state of a run (previous
/// caching set for incremental accounting, fault eviction bookkeeping,
/// optional regret tracker). sim::Simulator::run drives one engine over a
/// pre-realised demand matrix; mecsc::serve drives one over live demand
/// snapshots closed by a wall-clock slot scheduler. Both paths execute
/// the identical operation sequence, which is what makes a recorded live
/// trace replayable through the batch simulator bit-for-bit.
class SlotEngine {
 public:
  /// Binds the engine to a problem instance (non-owning; must outlive
  /// the engine). `track_regret` enables the per-slot hindsight-optimum
  /// computation (slow; regret benches only).
  explicit SlotEngine(const core::CachingProblem& problem,
                      bool track_regret = false);

  /// Attaches a fault injector (non-owning; must outlive the engine).
  /// Per slot the engine then installs the plan's effective capacities
  /// before decide(), evicts cached instances from down stations, scores
  /// requests served at a down station with the plan's outage penalty,
  /// folds the admission-control shed penalty into the slot delay, and
  /// censors the algorithm's bandit feedback per the plan.
  void set_fault_injector(fault::FaultInjector* injector) {
    fault_injector_ = injector;
  }

  /// Runs the full slot protocol for slot `t`: decide → score → observe.
  /// Slots must be stepped in increasing order within one run.
  SlotRecord step(std::size_t t, algorithms::CachingAlgorithm& algorithm,
                  const std::vector<double>& true_demands,
                  const std::vector<double>& unit_delays);

  /// The integral decision of the latest step() (valid after the first).
  const core::Assignment& last_decision() const noexcept { return decision_; }

  /// Restores the problem's full static capacities (when a fault
  /// injector is attached). Call once after the run's last step.
  void end_run();

  /// Cumulative regret series recorded so far (empty unless
  /// track_regret was set).
  std::vector<double> cumulative_regret() const {
    return regret_ ? regret_->cumulative_series() : std::vector<double>{};
  }

 private:
  const core::CachingProblem* problem_;
  fault::FaultInjector* fault_injector_ = nullptr;
  std::optional<core::RegretTracker> regret_;
  core::Assignment decision_;
  std::vector<std::vector<bool>> prev_cached_;  // empty at slot 0
  std::vector<double> eff_delays_;              // fault-mode scratch
  std::vector<double> censored_delays_;         // fault-mode scratch
};

}  // namespace mecsc::sim

#endif  // MECSC_SIM_SLOT_ENGINE_H
