#ifndef MECSC_SIM_SLOT_ENGINE_H
#define MECSC_SIM_SLOT_ENGINE_H

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "algorithms/algorithm.h"
#include "core/assignment.h"
#include "core/problem.h"
#include "core/regret.h"
#include "fault/fault_injector.h"
#include "obs/span.h"

namespace mecsc::sim {

/// Metrics of one simulated slot.
struct SlotRecord {
  /// Realised Eq. 3 objective (mean per-request delay, ms).
  double avg_delay_ms = 0.0;
  /// Realised delay charging instantiation only for instances newly
  /// cached this slot (operational accounting; see
  /// realized_average_delay_incremental).
  double avg_delay_incremental_ms = 0.0;
  /// Wall-clock of the algorithm's decide() — derived from the
  /// timeline's "algo.decide" span, so the two can never disagree.
  double decision_time_ms = 0.0;
  /// Total MHz by which the decision exceeded station capacities.
  double capacity_violation_mhz = 0.0;
  /// Stations down this slot (zero when no fault injector is set).
  std::size_t fault_active_outages = 0;
  /// Cached instances lost to outages this slot.
  std::size_t fault_evictions = 0;
  /// Requests deferred by admission control this slot.
  std::size_t fault_shed_requests = 0;
  /// Stations whose d_i(t) feedback was censored this slot.
  std::size_t fault_censored_feedback = 0;
  /// Per-request shed penalty folded into avg_delay_ms this slot
  /// (pre-averaging total).
  double fault_shed_penalty_ms = 0.0;
  /// Span timeline of this slot's phases (algo.decide / sim.score /
  /// sim.observe) — the structured replacement for bolting further
  /// ad-hoc timing doubles onto this record. Always present after a
  /// Simulator::run or SlotEngine::step; null only for hand-built
  /// records (e.g. in tests).
  std::shared_ptr<const obs::SlotTimeline> timeline;
};

/// Realised fault state of one slot, decoupled from a live FaultPlan —
/// what a serve trace's fault block carries (trace_io's kSlotFlagFaults)
/// and what step_recorded() replays. One byte per station in the masks
/// (nonzero = up / censored); the shed fields are the fault subsystem's
/// admission-control accounting for the slot.
struct SlotFaultState {
  std::vector<std::uint8_t> station_up;     ///< Per station, nonzero = up.
  std::vector<std::uint8_t> feedback_lost;  ///< Per station, nonzero = censored.
  double outage_penalty_factor = 1.0;       ///< Delay multiplier at down stations.
  std::uint32_t shed_requests = 0;          ///< Admission-shed requests.
  double shed_penalty_ms = 0.0;             ///< Shed penalty (pre-averaging).
};

/// Cross-slot engine state a checkpoint captures: the latest committed
/// decision and the previous caching set the incremental accounting
/// compares against.
struct SlotEngineState {
  bool has_decision = false;                    ///< A step has committed.
  core::Assignment decision;                    ///< Latest committed decision.
  std::vector<std::vector<bool>> prev_cached;   ///< Previous caching set.
};

/// The per-slot decision protocol (paper §III), extracted from the batch
/// simulator so live drivers can reuse it verbatim: given slot t's true
/// demands and realised unit delays, run the algorithm's decide(), score
/// the decision ex post (Eq. 3 with realised values), apply the fault
/// plan's per-slot effects when an injector is attached, and reveal the
/// slot's ground truth to the algorithm.
///
/// One engine instance carries the cross-slot state of a run (previous
/// caching set for incremental accounting, fault eviction bookkeeping,
/// optional regret tracker). sim::Simulator::run drives one engine over a
/// pre-realised demand matrix; mecsc::serve drives one over live demand
/// snapshots closed by a wall-clock slot scheduler. Both paths execute
/// the identical operation sequence, which is what makes a recorded live
/// trace replayable through the batch simulator bit-for-bit.
class SlotEngine {
 public:
  /// Binds the engine to a problem instance (non-owning; must outlive
  /// the engine). `track_regret` enables the per-slot hindsight-optimum
  /// computation (slow; regret benches only).
  explicit SlotEngine(const core::CachingProblem& problem,
                      bool track_regret = false);

  /// Attaches a fault injector (non-owning; must outlive the engine).
  /// Per slot the engine then installs the plan's effective capacities
  /// before decide(), evicts cached instances from down stations, scores
  /// requests served at a down station with the plan's outage penalty,
  /// folds the admission-control shed penalty into the slot delay, and
  /// censors the algorithm's bandit feedback per the plan.
  void set_fault_injector(fault::FaultInjector* injector) {
    fault_injector_ = injector;
  }

  /// Runs the full slot protocol for slot `t`: decide → score → observe.
  /// Slots must be stepped in increasing order within one run. With
  /// `run_decide` false the engine skips the algorithm's decide() and
  /// re-commits the previous slot's placement verbatim (the watchdog's
  /// last resort; requires a prior decision), still scoring and
  /// observing the slot normally.
  SlotRecord step(std::size_t t, algorithms::CachingAlgorithm& algorithm,
                  const std::vector<double>& true_demands,
                  const std::vector<double>& unit_delays,
                  bool run_decide = true);

  /// step() against a *recorded* fault state instead of an attached
  /// injector — the replay side of fault-trace composition. The caller
  /// is responsible for installing `faults.effective_capacity` into the
  /// problem (core::CachingProblem::set_station_capacities) before the
  /// call, exactly like FaultInjector::begin_slot does on the live side;
  /// the engine handles eviction, outage penalties, shed folding, and
  /// feedback censoring from the recorded masks.
  SlotRecord step_recorded(std::size_t t,
                           algorithms::CachingAlgorithm& algorithm,
                           const std::vector<double>& true_demands,
                           const std::vector<double>& unit_delays,
                           const SlotFaultState& faults,
                           bool run_decide = true);

  /// The integral decision of the latest step() (valid after the first).
  const core::Assignment& last_decision() const noexcept { return decision_; }

  /// True once a decision exists (after the first step, or after
  /// import_state of a state that had one) — the precondition of a
  /// re-commit step.
  bool has_decision() const noexcept { return has_decision_; }

  /// Snapshots the engine's cross-slot state (checkpointing).
  SlotEngineState export_state() const {
    return SlotEngineState{has_decision_, decision_, prev_cached_};
  }

  /// Restores a snapshot taken by export_state().
  void import_state(const SlotEngineState& state) {
    has_decision_ = state.has_decision;
    decision_ = state.decision;
    prev_cached_ = state.prev_cached;
  }

  /// Restores the problem's full static capacities (when a fault
  /// injector is attached). Call once after the run's last step.
  void end_run();

  /// Cumulative regret series recorded so far (empty unless
  /// track_regret was set).
  std::vector<double> cumulative_regret() const {
    return regret_ ? regret_->cumulative_series() : std::vector<double>{};
  }

 private:
  /// Uniform view over live (injector) and recorded fault state, so the
  /// two step paths share one slot-protocol implementation. Null masks
  /// mean "no faults this slot".
  struct FaultView {
    const char* station_up = nullptr;     // per station, nonzero = up
    const char* feedback_lost = nullptr;  // per station, nonzero = lost
    double outage_penalty_factor = 1.0;
    std::size_t active_outages = 0;
    std::size_t censored = 0;
    std::size_t shed_requests = 0;
    double shed_penalty_ms = 0.0;
  };

  SlotRecord step_core(std::size_t t, algorithms::CachingAlgorithm& algorithm,
                       const std::vector<double>& true_demands,
                       const std::vector<double>& unit_delays,
                       const FaultView* faults, bool run_decide);

  const core::CachingProblem* problem_;
  fault::FaultInjector* fault_injector_ = nullptr;
  std::optional<core::RegretTracker> regret_;
  core::Assignment decision_;
  bool has_decision_ = false;
  std::vector<std::vector<bool>> prev_cached_;  // empty at slot 0
  std::vector<double> eff_delays_;              // fault-mode scratch
  std::vector<double> censored_delays_;         // fault-mode scratch
};

}  // namespace mecsc::sim

#endif  // MECSC_SIM_SLOT_ENGINE_H
