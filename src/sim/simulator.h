#ifndef MECSC_SIM_SIMULATOR_H
#define MECSC_SIM_SIMULATOR_H

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "algorithms/algorithm.h"
#include "core/problem.h"
#include "core/regret.h"
#include "fault/fault_injector.h"
#include "obs/span.h"
#include "sim/slot_engine.h"
#include "workload/demand_model.h"

namespace mecsc::sim {

/// Result of running one algorithm over the horizon.
struct RunResult {
  /// Name of the algorithm that produced this run.
  std::string algorithm;
  /// One record per simulated slot, in slot order.
  std::vector<SlotRecord> slots;
  /// Filled when regret tracking is enabled.
  std::vector<double> cumulative_regret;

  /// Mean of SlotRecord::avg_delay_ms over the horizon.
  double mean_delay_ms() const;
  /// Mean of SlotRecord::avg_delay_incremental_ms over the horizon.
  double mean_delay_incremental_ms() const;
  /// Sum of the per-slot decide() wall-clocks (ms).
  double total_decision_time_ms() const;
  /// Mean decide() wall-clock per slot (ms).
  double mean_decision_time_ms() const;
  /// Sum of the per-slot capacity violations (MHz).
  double total_capacity_violation_mhz() const;
  /// Mean delay over the last `n` slots (steady-state view).
  double tail_mean_delay_ms(std::size_t n) const;
};

/// Time-slotted driver (paper §III): per slot it asks the algorithm to
/// decide, realises the slot's true demands and unit delays, scores the
/// decision ex post (Eq. 3 with realised values), and reveals the slot's
/// ground truth to the algorithm.
///
/// The true demand matrix and the realised per-slot unit delays are
/// fixed at construction so every algorithm is compared on identical
/// sample paths.
class Simulator {
 public:
  /// unit_delays[t][i] = realised d_i(t). Horizon = min(demands horizon,
  /// unit_delays size).
  Simulator(const core::CachingProblem& problem,
            const workload::DemandMatrix* demands,
            std::vector<std::vector<double>> unit_delays,
            bool track_regret = false);

  /// Number of slots a run() simulates.
  std::size_t horizon() const noexcept { return horizon_; }

  /// Hook invoked before every slot's decide() — used by mobility
  /// experiments to apply the slot's user states
  /// (CachingProblem::update_user_locations). The same hook runs for
  /// every algorithm, keeping sample paths identical.
  void set_before_slot(std::function<void(std::size_t)> hook) {
    before_slot_ = std::move(hook);
  }

  /// Attaches a fault injector (non-owning; must outlive the simulator's
  /// runs). Per slot the simulator then installs the plan's effective
  /// capacities before decide(), evicts cached instances from down
  /// stations, scores requests served at a down station with the plan's
  /// outage penalty, folds the admission-control shed penalty into the
  /// slot delay, and censors the algorithm's bandit feedback per the
  /// plan. Everything the injector does is precomputed from its
  /// deterministic plan, so runs stay replayable across algorithms and
  /// worker counts.
  void set_fault_injector(fault::FaultInjector* injector) {
    fault_injector_ = injector;
  }

  /// Runs one algorithm over the full horizon. Each run drives a fresh
  /// SlotEngine over the pre-realised demand matrix, so repeated runs
  /// (and runs of different algorithms) are independent.
  RunResult run(algorithms::CachingAlgorithm& algorithm) const;

  /// Realised per-unit delays d_i(t) of slot t — the sample path live
  /// drivers (mecsc::serve) share with the batch runs of this scenario.
  const std::vector<double>& unit_delays(std::size_t t) const {
    return unit_delays_.at(t);
  }

 private:
  const core::CachingProblem* problem_;
  const workload::DemandMatrix* demands_;
  std::vector<std::vector<double>> unit_delays_;
  std::size_t horizon_;
  bool track_regret_;
  std::function<void(std::size_t)> before_slot_;
  fault::FaultInjector* fault_injector_ = nullptr;
};

}  // namespace mecsc::sim

#endif  // MECSC_SIM_SIMULATOR_H
