#ifndef MECSC_CORE_PROBLEM_H
#define MECSC_CORE_PROBLEM_H

#include <cstddef>
#include <vector>

#include "common/rng.h"
#include "net/topology.h"
#include "workload/request.h"
#include "workload/service.h"

namespace mecsc::core {

/// Tunables of a caching problem instance.
struct ProblemOptions {
  /// Computing resource (MHz) needed per unit of data per slot — the
  /// paper's C_unit. The default puts aggregate demand at a substantial
  /// fraction of aggregate capacity at the paper's default scales
  /// (100 requests on 100 stations), so the low-delay femtocells are
  /// genuinely scarce and the caching/assignment decision matters; the
  /// paper only assumes total capacity exceeds total demand (§III.E).
  double c_unit_mhz = 60.0;
  /// Whether a request served away from its home station also pays the
  /// shortest-path network latency between the two stations. The paper's
  /// formal objective (Eq. 3) omits this term, but its AS1755 experiment
  /// attributes the larger algorithm gap to bottleneck links, so the
  /// default includes it; set to false for the strict-Eq.(3) objective.
  bool include_access_latency = true;
  /// Spread of the per-station instantiation-delay factor: d_ins[i][k] =
  /// base_k * factor_i with factor_i uniform in [lo, hi]. Macro stations
  /// (beefier cloudlets) get the low end.
  double inst_factor_lo = 0.6;  ///< Low end of the factor spread (macro tier).
  double inst_factor_hi = 1.6;  ///< High end of the factor spread (femto tier).
  /// Charge the user -> home-station wireless hop (truncated-Shannon
  /// rate from the §VI.A radio parameters, bandwidth shared among the
  /// users homed at the station). The hop is identical for every
  /// candidate serving station, so it shifts delays without changing
  /// decisions.
  bool include_wireless_delay = true;
};

/// One dynamic-service-caching problem instance (paper §III.E): the MEC
/// network, the services, the requests, the per-(station, service)
/// instantiation delays, and the objective's cost coefficients.
///
/// The instance is immutable after creation except for two explicitly
/// mutable views of per-slot state: user locations (mobility,
/// update_user_locations) and effective station capacities (fault
/// injection, set_station_capacities). Everything else — demands,
/// realised delays, bandit estimates — lives outside.
class CachingProblem {
 public:
  /// Binds the instance to `topology` (non-owning; must outlive the
  /// problem) and draws the per-(station, service) instantiation delays
  /// from `rng`.
  CachingProblem(const net::Topology* topology,
                 std::vector<workload::Service> services,
                 std::vector<workload::Request> requests,
                 ProblemOptions options, common::Rng& rng);

  /// The MEC network the instance lives on.
  const net::Topology& topology() const noexcept { return *topology_; }
  /// The service catalogue (the paper's S).
  const std::vector<workload::Service>& services() const noexcept { return services_; }
  /// The request population (the paper's R).
  const std::vector<workload::Request>& requests() const noexcept { return requests_; }
  /// The options the instance was built with.
  const ProblemOptions& options() const noexcept { return options_; }

  /// |BS|, the number of base stations.
  std::size_t num_stations() const noexcept { return topology_->num_stations(); }
  /// |S|, the number of services.
  std::size_t num_services() const noexcept { return services_.size(); }
  /// |R|, the number of requests.
  std::size_t num_requests() const noexcept { return requests_.size(); }

  /// Instantiation delay d_ins[i][k] (ms) of caching service k at
  /// station i.
  double instantiation_delay_ms(std::size_t station, std::size_t service) const;

  /// Largest minus smallest instantiation delay (Lemma 1's Δ_ins).
  double instantiation_delay_spread() const;

  /// Network-access latency (ms) request l pays when served at station i
  /// (0 when `include_access_latency` is off or i is l's home).
  double access_latency_ms(std::size_t request, std::size_t station) const;

  /// Wireless transmission delay (ms) of moving `rho` data units from
  /// request l's user to its home station (0 when the wireless hop is
  /// disabled).
  double transmission_delay_ms(std::size_t request, double rho) const;

  /// Per-unit wireless transmission time of request l (ms per data
  /// unit) — the LP folds this into the x-coefficients.
  double tx_unit_ms(std::size_t request) const;

  /// Full delay of serving request l with demand rho at station i whose
  /// per-unit delay is `unit_delay`: rho * unit_delay + access latency
  /// + wireless hop. (Instantiation delay is accounted per cached
  /// (service, station) pair, not per request.)
  double request_delay_ms(std::size_t request, std::size_t station, double rho,
                          double unit_delay) const;

  /// Computing resource demand (MHz) of request l at demand rho.
  double resource_demand_mhz(double rho) const { return rho * options_.c_unit_mhz; }

  /// Verifies the paper's standing assumption that total capacity covers
  /// total demand for the given per-request demands; throws Infeasible
  /// otherwise.
  void check_capacity_feasible(const std::vector<double>& demands) const;

  /// Effective (fault-adjusted) capacity of station i for the current
  /// slot. Equals the topology's static capacity until a fault injector
  /// installs a derated view; solvers and baselines must read this, not
  /// topology().station(i).capacity_mhz, so degraded slots are honoured.
  double station_capacity_mhz(std::size_t station) const {
    return effective_capacity_[station];
  }

  /// Whether station i currently has any serving capacity (false during
  /// an injected outage).
  bool station_up(std::size_t station) const {
    return effective_capacity_[station] > 0.0;
  }

  /// Sum of the current effective capacities.
  double total_effective_capacity_mhz() const;

  /// Installs a per-slot effective-capacity view (fault injection:
  /// outages set a station to 0, derating scales it down). Sizes must
  /// match num_stations(); values must be in [0, static capacity].
  void set_station_capacities(const std::vector<double>& capacities);

  /// Restores the static topology capacities.
  void reset_station_capacities();

  /// Mobility support: replaces the requests' positions, clusters and
  /// home stations (service ids, ids and basic demands must be
  /// unchanged) and recomputes the wireless per-unit terms. Algorithms
  /// holding a reference to this problem observe the move on their next
  /// decide(); the simulator applies the slot's user states before each
  /// decision.
  void update_user_locations(const std::vector<workload::Request>& moved);

 private:
  void recompute_wireless_terms();

  const net::Topology* topology_;  // non-owning; outlives the problem
  std::vector<workload::Service> services_;
  std::vector<workload::Request> requests_;
  ProblemOptions options_;
  std::vector<double> inst_factor_;  // per station
  std::vector<double> tx_unit_ms_;   // per request, wireless ms per data unit
  std::vector<double> effective_capacity_;  // per station, fault-adjusted MHz
};

/// A fractional solution to the per-slot LP relaxation: x[l][i] in [0,1]
/// (assignment fractions), y[k][i] in [0,1] (caching fractions), and the
/// objective value (average per-request delay, ms).
struct FractionalSolution {
  std::vector<std::vector<double>> x;  ///< x[l][i]: fraction of request l at station i.
  std::vector<std::vector<double>> y;  ///< y[k][i]: cached fraction of service k at station i.
  double objective = 0.0;  ///< Eq. 3 value: average per-request delay (ms).
};

}  // namespace mecsc::core

#endif  // MECSC_CORE_PROBLEM_H
