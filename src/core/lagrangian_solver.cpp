#include "core/lagrangian_solver.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/env.h"
#include "common/error.h"
#include "obs/metrics.h"
#include "obs/span.h"

namespace mecsc::core {

namespace {

/// Feasibility slack: instances whose aggregate demand exceeds this
/// fraction of aggregate capacity are handed to the flow tier's degraded
/// path up front — the Lagrangian dual of an infeasible instance is
/// unbounded (λ → ∞) and would burn the whole iteration cap discovering
/// that.
constexpr double kFeasibleFraction = 0.999;
/// Dual-improvement patience: halve the Polyak step scale after this
/// many iterations without a better dual bound.
constexpr std::size_t kStalePatience = 10;
/// Bounds of the adaptive step scale.
constexpr double kMinStepScale = 1e-4;
constexpr double kMaxStepScale = 2.0;

}  // namespace

LagrangianOptions lagrangian_options_from_env() {
  LagrangianOptions o;
  o.max_iterations = common::env_size_or("MECSC_LAG_ITERS", o.max_iterations);
  if (o.max_iterations == 0) o.max_iterations = 1;
  double gap = common::env_double_or("MECSC_LAG_GAP", o.target_gap);
  if (gap > 0.0) o.target_gap = gap;
  return o;
}

void LagrangianSolver::import_warm_state(const LagrangianWarmState& state) const {
  const std::size_t ns = problem_->num_stations();
  const bool lambda_ok =
      state.lambda.empty() || state.lambda.size() == ns;
  bool finite_ok = true;
  for (double l : state.lambda) {
    if (!(l >= 0.0) || !std::isfinite(l)) {
      finite_ok = false;
      break;
    }
  }
  if (!lambda_ok || !finite_ok) {
    // Stale snapshot (topology change, corrupt prices): cold start
    // instead of pricing the wrong stations.
    MECSC_COUNT("lag.warm_state_rejected", 1.0);
    s_.lambda.clear();
    s_.step_scale = 1.0;
    return;
  }
  s_.lambda = state.lambda;
  s_.step_scale = std::clamp(state.step_scale, kMinStepScale, kMaxStepScale);
}

LagrangianOutcome LagrangianSolver::solve(const std::vector<double>& demands,
                                          const std::vector<double>& theta) const {
  MECSC_SPAN("lag.solve");
  MECSC_COUNT("lag.solves", 1.0);
  const CachingProblem& p = *problem_;
  const std::size_t nr = p.num_requests();
  const std::size_t ns = p.num_stations();
  const std::size_t nk = p.num_services();
  MECSC_CHECK_MSG(demands.size() == nr, "demand vector size mismatch");
  MECSC_CHECK_MSG(theta.size() == ns, "theta vector size mismatch");

  Scratch& s = s_;
  s.res.resize(nr);
  s.svc.resize(nr);
  s.home.resize(nr);
  s.service_demand.assign(nk, 0.0);
  double total_flow = 0.0;
  for (std::size_t l = 0; l < nr; ++l) {
    const auto& req = p.requests()[l];
    double res = p.resource_demand_mhz(demands[l]);
    s.res[l] = res;
    s.svc[l] = static_cast<std::uint32_t>(req.service_id);
    s.home[l] = static_cast<std::uint32_t>(req.home_station);
    s.service_demand[req.service_id] += res;
    total_flow += res;
  }

  s.base_cost.resize(nr * ns);
  for (std::size_t l = 0; l < nr; ++l) {
    const double dl = demands[l];
    const double txl = p.tx_unit_ms(l);
    double* row = &s.base_cost[l * ns];
    for (std::size_t i = 0; i < ns; ++i) {
      row[i] = dl * (theta[i] + txl) + p.access_latency_ms(l, i);
    }
  }

  return run(nr, total_flow, static_cast<double>(nr));
}

LagrangianOutcome LagrangianSolver::solve_classes(
    const DemandClassing& classing, const std::vector<double>& theta) const {
  MECSC_SPAN("lag.solve_classes");
  MECSC_COUNT("lag.class_solves", 1.0);
  const CachingProblem& p = *problem_;
  const std::size_t nc = classing.num_classes();
  const std::size_t ns = p.num_stations();
  const std::size_t nk = p.num_services();
  MECSC_CHECK_MSG(classing.num_requests() == p.num_requests(),
                  "classing was built for a different problem");
  MECSC_CHECK_MSG(theta.size() == ns, "theta vector size mismatch");

  Scratch& s = s_;
  s.res.resize(nc);
  s.svc.resize(nc);
  s.home.resize(nc);
  s.service_demand.assign(nk, 0.0);
  double total_flow = 0.0;
  const auto& classes = classing.classes();
  for (std::size_t c = 0; c < nc; ++c) {
    const DemandClass& cls = classes[c];
    double res = p.resource_demand_mhz(cls.rho_sum);
    s.res[c] = res;
    s.svc[c] = cls.service;
    s.home[c] = cls.home_station;
    s.service_demand[cls.service] += res;
    total_flow += res;
  }

  // Exact member-summed cost coefficients — identical to
  // FractionalSolver::solve_classes, so the tiers' objectives compare.
  s.base_cost.resize(nc * ns);
  const bool inc_access = p.options().include_access_latency;
  for (std::size_t c = 0; c < nc; ++c) {
    const DemandClass& cls = classes[c];
    const double cnt = static_cast<double>(cls.count);
    double* row = &s.base_cost[c * ns];
    for (std::size_t i = 0; i < ns; ++i) {
      const double access =
          inc_access ? p.topology().path_latency_ms(cls.home_station, i) : 0.0;
      row[i] = cls.rho_sum * theta[i] + cls.tx_rho_sum + cnt * access;
    }
  }

  return run(nc, total_flow, static_cast<double>(classing.num_requests()));
}

LagrangianOutcome LagrangianSolver::run(std::size_t n, double total_flow,
                                        double objective_divisor) const {
  const CachingProblem& p = *problem_;
  const std::size_t ns = p.num_stations();
  const std::size_t nk = p.num_services();
  Scratch& s = s_;
  LagrangianOutcome out;

  double total_cap = 0.0;
  for (std::size_t i = 0; i < ns; ++i) total_cap += p.station_capacity_mhz(i);
  if (total_flow > kFeasibleFraction * total_cap) {
    // Capacity-short (or within rounding of it): the dual is unbounded
    // and the flow tier's greedy-repair degraded path is the right tool.
    MECSC_COUNT("lag.infeasible_bailouts", 1.0);
    return out;
  }

  // Amortized cost ĉ_ei = base + d_ins[i][k]·res_e / max(demand_k, res_e)
  // — the flow tier's round-0 amortization, frozen for the whole ascent
  // (re-pricing would move the dual's target mid-climb). The reported
  // solution is re-scored with the true Eq. 3 cost below.
  s.cost.resize(n * ns);
  for (std::size_t e = 0; e < n; ++e) {
    const std::size_t k = s.svc[e];
    const double res = s.res[e];
    const double* brow = &s.base_cost[e * ns];
    double* crow = &s.cost[e * ns];
    if (res <= 0.0) {
      std::copy_n(brow, ns, crow);
      continue;
    }
    const double base = std::max(s.service_demand[k], res);
    for (std::size_t i = 0; i < ns; ++i) {
      crow[i] = brow[i] + p.instantiation_delay_ms(i, k) * res / base;
    }
  }

  if (s.lambda.size() != ns) {
    s.lambda.assign(ns, 0.0);
    s.step_scale = 1.0;
  }
  s.load.resize(ns);
  s.room.resize(ns);
  s.pick.resize(n);
  s.x.assign(n * ns, 0.0);

  double best_dual = -std::numeric_limits<double>::infinity();
  double best_primal = std::numeric_limits<double>::infinity();
  bool have_primal = false;
  std::size_t stale = 0;

  for (std::size_t iter = 0; iter < options_.max_iterations; ++iter) {
    out.iterations = iter + 1;
    // --- Decomposed subproblem: per-column argmin over stations -------
    // (embarrassingly parallel over columns; kept serial for bitwise
    // determinism across MECSC_WORKERS settings).
    std::fill(s.load.begin(), s.load.end(), 0.0);
    double dual = 0.0;
    for (std::size_t i = 0; i < ns; ++i) dual -= s.lambda[i] * p.station_capacity_mhz(i);
    for (std::size_t e = 0; e < n; ++e) {
      const double res = s.res[e];
      if (res <= 0.0) {
        s.pick[e] = 0;  // zero-demand columns are pinned during extraction
        continue;
      }
      const double* crow = &s.cost[e * ns];
      double best = std::numeric_limits<double>::infinity();
      std::uint32_t best_i = 0;
      for (std::size_t i = 0; i < ns; ++i) {
        // Down stations (zero effective capacity) never serve — the flow
        // tier excludes them, and admitting them here would only burn
        // iterations pricing them back out.
        if (!p.station_up(i)) continue;
        const double v = crow[i] + s.lambda[i] * res;
        if (v < best) {
          best = v;
          best_i = static_cast<std::uint32_t>(i);
        }
      }
      s.pick[e] = best_i;
      s.load[best_i] += res;
      dual += best;
    }
    if (dual > best_dual + 1e-12 * (1.0 + std::abs(dual))) {
      best_dual = dual;
      stale = 0;
    } else if (++stale >= kStalePatience) {
      s.step_scale = std::max(kMinStepScale, s.step_scale * 0.5);
      stale = 0;
    }

    // --- Primal repair: pour overload into residual room --------------
    // Start from the argmin assignment; stations over capacity shed
    // their surplus in ascending station order, columns leaving in the
    // order they were assigned, each fraction landing on the cheapest
    // (amortized cost + current price) stations with room. Always
    // succeeds: total_flow <= kFeasibleFraction·total_cap.
    double primal = 0.0;
    for (std::size_t i = 0; i < ns; ++i) {
      s.room[i] = p.station_capacity_mhz(i) - std::min(s.load[i], p.station_capacity_mhz(i));
    }
    std::fill(s.x.begin(), s.x.end(), 0.0);
    for (std::size_t e = 0; e < n; ++e) {
      const double res = s.res[e];
      if (res <= 0.0) continue;
      const std::size_t i = s.pick[e];
      const double cap = p.station_capacity_mhz(i);
      if (s.load[i] <= cap) {
        s.x[e * ns + i] = 1.0;
        primal += s.cost[e * ns + i];
        continue;
      }
      // Overloaded host: keep the column's pro-rata share of the
      // capacity, spill the rest. Pro-rata (rather than first-come)
      // keeps the repair independent of column order within a station.
      const double keep_frac = cap / s.load[i];
      double xkeep = keep_frac;
      s.x[e * ns + i] = xkeep;
      primal += xkeep * s.cost[e * ns + i];
      double spill = (1.0 - keep_frac) * res;  // MHz still to place
      while (spill > 1e-12) {
        // Cheapest station with room under the current prices.
        std::size_t best_j = ns;
        double best_c = std::numeric_limits<double>::infinity();
        const double* crow = &s.cost[e * ns];
        for (std::size_t j = 0; j < ns; ++j) {
          if (j == i || s.room[j] <= 1e-12) continue;
          const double v = crow[j] + s.lambda[j] * res;
          if (v < best_c) {
            best_c = v;
            best_j = j;
          }
        }
        if (best_j == ns) break;
        const double take = std::min(spill, s.room[best_j]);
        const double frac = take / res;
        s.room[best_j] -= take;
        s.x[e * ns + best_j] += frac;
        primal += frac * crow[best_j];
        spill -= take;
      }
      if (spill > 1e-12) {
        // Numerically out of room (feasibility slack guarantees this is
        // a rounding-error sliver): keep Σ_i x_ei = 1 by returning the
        // remainder to the pick station, scored honestly.
        const double frac = spill / res;
        s.x[e * ns + i] += frac;
        primal += frac * s.cost[e * ns + i];
      }
    }

    const bool improved = !have_primal || primal < best_primal - 1e-12 * (1.0 + std::abs(primal));
    if (improved) {
      best_primal = primal;
      s.x_best = s.x;
      have_primal = true;
    }

    // --- Gap check and subgradient step --------------------------------
    const double denom = std::max(std::abs(best_dual), 1e-9);
    out.gap = (best_primal - best_dual) / denom;
    out.dual_bound = best_dual;
    if (out.gap <= options_.target_gap) {
      out.converged = true;
      break;
    }
    double norm2 = 0.0;
    for (std::size_t i = 0; i < ns; ++i) {
      const double g = s.load[i] - p.station_capacity_mhz(i);
      norm2 += g * g;
    }
    if (norm2 <= 0.0) {
      // Subgradient vanished: λ is dual-optimal; if the gap still has
      // not closed the primal repair is the binding error — stop.
      out.converged = out.gap <= options_.target_gap;
      break;
    }
    const double step = s.step_scale * std::max(best_primal - dual, 1e-9) / norm2;
    for (std::size_t i = 0; i < ns; ++i) {
      const double g = s.load[i] - p.station_capacity_mhz(i);
      s.lambda[i] = std::max(0.0, s.lambda[i] + step * g);
    }
  }

  MECSC_GAUGE_SET("lag.gap", out.gap);
  MECSC_HISTOGRAM("lag.iterations", static_cast<double>(out.iterations));
  if (!out.converged || !have_primal) {
    out.converged = false;
    return out;
  }

  // --- Extract the best round as a FractionalSolution, scored with the
  // true (non-amortized) Eq. 3 objective exactly like the flow tier.
  FractionalSolution sol;
  sol.x.assign(n, std::vector<double>(ns, 0.0));
  sol.y.assign(nk, std::vector<double>(ns, 0.0));
  double xcost = 0.0;
  for (std::size_t e = 0; e < n; ++e) {
    const std::size_t k = s.svc[e];
    if (s.res[e] <= 0.0) {
      // Zero-demand column: pin to its cheapest up station (no capacity
      // use), matching the flow tier's treatment.
      const bool inc_access = p.options().include_access_latency;
      std::size_t best_i = 0;
      double best_cost = std::numeric_limits<double>::infinity();
      for (std::size_t i = 0; i < ns; ++i) {
        if (!p.station_up(i)) continue;
        double c = inc_access ? p.topology().path_latency_ms(s.home[e], i) : 0.0;
        if (c < best_cost) {
          best_cost = c;
          best_i = i;
        }
      }
      sol.x[e][best_i] = 1.0;
      sol.y[k][best_i] = std::max(sol.y[k][best_i], 1.0);
      xcost += s.base_cost[e * ns + best_i];
      continue;
    }
    const double* row = &s.x_best[e * ns];
    for (std::size_t i = 0; i < ns; ++i) {
      const double xei = row[i];
      if (xei <= 0.0) continue;
      sol.x[e][i] = xei;
      sol.y[k][i] = std::max(sol.y[k][i], xei);
      xcost += xei * s.base_cost[e * ns + i];
    }
  }
  double ycost = 0.0;
  for (std::size_t k = 0; k < nk; ++k) {
    for (std::size_t i = 0; i < ns; ++i) {
      const double yki = sol.y[k][i];
      if (yki > 0.0) ycost += yki * p.instantiation_delay_ms(i, k);
    }
  }
  sol.objective = (xcost + ycost) / objective_divisor;
  out.solution = std::move(sol);
  return out;
}

}  // namespace mecsc::core
