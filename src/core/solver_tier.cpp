#include "core/solver_tier.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace mecsc::core {

SolverTier resolve_solver_tier(SolverTier configured) {
  if (configured != SolverTier::kEnv) return configured;
  const char* v = std::getenv("MECSC_SOLVER");
  if (v == nullptr || *v == '\0') return SolverTier::kFlow;
  if (std::strcmp(v, "flow") == 0) return SolverTier::kFlow;
  if (std::strcmp(v, "simplex") == 0) return SolverTier::kSimplex;
  if (std::strcmp(v, "lagrangian") == 0) return SolverTier::kLagrangian;
  if (std::strcmp(v, "auto") == 0) return SolverTier::kAuto;
  std::fprintf(stderr,
               "mecsc: ignoring MECSC_SOLVER=\"%s\" — expected flow, simplex, "
               "lagrangian or auto\n",
               v);
  return SolverTier::kFlow;
}

const char* solver_tier_name(SolverTier tier) {
  switch (tier) {
    case SolverTier::kEnv:
      return "env";
    case SolverTier::kFlow:
      return "flow";
    case SolverTier::kSimplex:
      return "simplex";
    case SolverTier::kLagrangian:
      return "lagrangian";
    case SolverTier::kAuto:
      return "auto";
  }
  return "?";
}

}  // namespace mecsc::core
