#ifndef MECSC_CORE_LP_FORMULATION_H
#define MECSC_CORE_LP_FORMULATION_H

#include <vector>

#include "core/aggregation.h"
#include "core/problem.h"
#include "lp/model.h"
#include "lp/simplex.h"

namespace mecsc::core {

/// Status-annotated result of LpFormulation::try_solve. `solution` is
/// meaningful only when `status == lp::SolveStatus::kOptimal`.
struct LpSolveOutcome {
  lp::SolveStatus status = lp::SolveStatus::kIterationLimit;  ///< Simplex exit status.
  FractionalSolution solution;  ///< Valid only when status is kOptimal.
};

/// Builds and solves the paper's exact per-slot LP relaxation
/// (Eq. 3 s.t. constraints 4-6, relaxed per Eq. 8) with the dense
/// simplex. O(|R|·|BS|) variables and constraints, so this path is for
/// small/medium instances, tests, and the `bench_lp_vs_flow` ablation;
/// the scalable path is core::FractionalSolver.
class LpFormulation {
 public:
  /// demands: ρ_l(t) per request; theta: estimated (or true) per-unit
  /// delay per station.
  LpFormulation(const CachingProblem& problem, const std::vector<double>& demands,
                const std::vector<double>& theta);

  /// Aggregated formulation (DESIGN.md §11): one x column per demand
  /// class of `classing` instead of one per request, with the exact
  /// member-summed cost and capacity coefficients, so the model shrinks
  /// by the classing's compression ratio while the optimum (restricted
  /// to class-uniform solutions) keeps the per-request Eq. 3 objective.
  /// try_solve / solve then return a *class-level* FractionalSolution —
  /// de-aggregate with round_assignment_aggregated.
  LpFormulation(const CachingProblem& problem, const DemandClassing& classing,
                const std::vector<double>& theta);

  /// The materialised LP model (for inspection or external solvers).
  const lp::Model& model() const noexcept { return model_; }

  /// Column index of x_{row,i}; a row is a request (per-request ctor) or
  /// a demand class (aggregated ctor).
  std::size_t x_var(std::size_t row, std::size_t station) const;
  /// Column index of y_{k,i}.
  std::size_t y_var(std::size_t service, std::size_t station) const;

  /// Solves the LP and unpacks x/y. Throws Infeasible when the LP has no
  /// feasible point and NumericalError on unboundedness (numerical
  /// breakdown — the relaxation's feasible region is a polytope) or
  /// pivot-limit exhaustion.
  FractionalSolution solve(const lp::SimplexSolver& solver) const;

  /// Same, but reuses (and warm-starts from) the caller's workspace —
  /// the zero-allocation path for per-slot solves of same-sized models.
  FractionalSolution solve(const lp::SimplexSolver& solver,
                           lp::SimplexWorkspace& workspace) const;

  /// Exception-free variant: surfaces the simplex status instead of
  /// throwing, so callers with a fallback chain (OL_GD under fault
  /// injection) can retry with different solver options.
  LpSolveOutcome try_solve(const lp::SimplexSolver& solver,
                           lp::SimplexWorkspace& workspace) const;

 private:
  const CachingProblem& problem_;
  /// Rows of the x block: |R| (per-request ctor) or |classes|
  /// (aggregated ctor).
  std::size_t num_rows_;
  std::size_t num_stations_;
  std::size_t num_services_;
  lp::Model model_;
};

}  // namespace mecsc::core

#endif  // MECSC_CORE_LP_FORMULATION_H
