#ifndef MECSC_CORE_AGGREGATION_H
#define MECSC_CORE_AGGREGATION_H

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/problem.h"

namespace mecsc::core {

/// Demand-class aggregation switch (DESIGN.md §11). Per-request LP
/// columns scale linearly in |R|; grouping near-identical requests into
/// demand classes keeps the optimisation core's work proportional to the
/// number of *distinct* (service, home station, demand bucket) profiles
/// instead, which is what makes 100k-request slots tractable.
enum class AggregateMode {
  /// Resolve from the MECSC_AGGREGATE environment variable
  /// ("off" | "auto" | "on"); unset, empty or unparsable values mean
  /// kOff. This is the library default, so every bench and example
  /// honours the env switch without code changes.
  kEnv,
  /// Never aggregate: the per-request path, bit-for-bit identical to the
  /// pre-aggregation library.
  kOff,
  /// Aggregate only when the instance is large enough for the class
  /// machinery to pay for itself (AggregationOptions::auto_threshold).
  kAuto,
  /// Always formulate the per-slot LP over demand classes.
  kOn,
};

/// Maps kEnv to the MECSC_AGGREGATE environment variable (defaulting to
/// kOff); explicit modes pass through unchanged, so code-level settings
/// always win over the environment.
AggregateMode resolve_aggregate_mode(AggregateMode configured);

/// Tunables of the demand-class construction.
struct AggregationOptions {
  /// Geometric width of the unit-demand buckets: requests l, l' of one
  /// (service, home station) pair land in the same class when their
  /// demands differ by less than this factor, i.e. the bucket index is
  /// floor(log(ρ) / log(bucket_ratio)), computed platform-stably (the
  /// default 2.0 reads the IEEE-754 exponent via std::ilogb; other
  /// ratios use an epsilon-nudged log quotient) so demands sitting
  /// exactly on a bucket edge land in the same bucket on every
  /// libm/FMA configuration. Must be > 1. Smaller values mean
  /// more classes and a tighter de-aggregation; 2.0 keeps the realised
  /// delay within ~2% of the per-request path on the paper's workloads
  /// (bench_scale) while compressing dense instances by an order of
  /// magnitude (class cost coefficients stay exact sums regardless of
  /// the ratio — only within-class demand heterogeneity grows).
  double bucket_ratio = 2.0;
  /// kAuto aggregates only when the instance has at least this many
  /// requests; below it the per-request path is already fast and exact.
  std::size_t auto_threshold = 1024;
};

/// One demand class: the requests of one service, homed at one base
/// station, whose per-slot demands fall in one geometric bucket. The LP
/// column x_{class,i} carries the class's *summed* demand, so routing a
/// class is exactly as hard on station capacity as routing its members
/// individually.
struct DemandClass {
  /// Service id shared by every member (k in the paper's S_k).
  std::uint32_t service = 0;
  /// Home base station shared by every member — members therefore share
  /// the network-access latency to every candidate serving station.
  std::uint32_t home_station = 0;
  /// Geometric demand-bucket index (see AggregationOptions);
  /// kZeroDemandBucket for ρ = 0 members.
  std::int32_t bucket = 0;
  /// Σ_l ρ_l(t) over the members — the class's demand this slot.
  double rho_sum = 0.0;
  /// Σ_l ρ_l(t) · tx_unit_ms(l) over the members: the exact aggregate
  /// wireless-hop cost. Kept separately because the wireless per-unit
  /// term varies per member (user position) even within a class.
  double tx_rho_sum = 0.0;
  /// Number of member requests.
  std::uint32_t count = 0;

  /// Bucket index reserved for zero-demand members (they consume no
  /// capacity and are pinned, not routed).
  static constexpr std::int32_t kZeroDemandBucket = INT32_MIN;
};

/// The per-slot request → class partition (DESIGN.md §11).
///
/// Built once per slot from the slot's demand vector in O(|R|); class
/// order is first-appearance (request-index) order, so the partition —
/// and everything solved on top of it — is deterministic. The instance
/// owns reusable buffers: steady-state rebuilds allocate nothing beyond
/// hash-table churn.
///
/// De-aggregation invariants (tests/test_aggregation.cpp):
///  * a class-level fractional solution expanded uniformly to members
///    (x_li := x_{class(l),i}) preserves Σ_i x_li = 1 per request;
///  * the expansion loads every station with exactly the class flow, so
///    capacity feasibility of the class solution carries over;
///  * the Eq. 3 objective of the expansion equals the class objective
///    exactly (class cost coefficients are the member sums).
class DemandClassing {
 public:
  /// Rebuilds the partition for one slot. `demands` is the slot's ρ_l
  /// vector (one entry per request of `problem`).
  void build(const CachingProblem& problem, const std::vector<double>& demands,
             const AggregationOptions& options);

  /// Number of classes of the latest build (0 before the first build).
  std::size_t num_classes() const noexcept { return classes_.size(); }

  /// Number of requests the latest build partitioned.
  std::size_t num_requests() const noexcept { return class_of_.size(); }

  /// The classes, in first-appearance order.
  const std::vector<DemandClass>& classes() const noexcept { return classes_; }

  /// class_of_request()[l] = index into classes() of request l's class.
  const std::vector<std::uint32_t>& class_of_request() const noexcept {
    return class_of_;
  }

  /// Requests per class: |R| / max(1, #classes). The solver's speedup is
  /// roughly this factor (columns shrink by it).
  double compression_ratio() const noexcept {
    return classes_.empty()
               ? 1.0
               : static_cast<double>(class_of_.size()) /
                     static_cast<double>(classes_.size());
  }

 private:
  std::vector<DemandClass> classes_;
  std::vector<std::uint32_t> class_of_;
  /// Packed (service, home, bucket) key → class index; reused across
  /// builds.
  std::unordered_map<std::uint64_t, std::uint32_t> index_;
};

}  // namespace mecsc::core

#endif  // MECSC_CORE_AGGREGATION_H
