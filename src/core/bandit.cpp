#include "core/bandit.h"

#include <algorithm>

namespace mecsc::core {

BanditState::BanditState(std::size_t num_arms, double prior)
    : theta_(num_arms, prior), plays_(num_arms, 0) {
  MECSC_CHECK_MSG(num_arms > 0, "need at least one arm");
  MECSC_CHECK_MSG(prior >= 0.0, "prior delay must be non-negative");
}

BanditState::BanditState(std::vector<double> priors)
    : theta_(std::move(priors)), plays_(theta_.size(), 0) {
  MECSC_CHECK_MSG(!theta_.empty(), "need at least one arm");
  for (double p : theta_) MECSC_CHECK_MSG(p >= 0.0, "prior delay must be non-negative");
}

void BanditState::observe(std::size_t arm, double delay) {
  MECSC_CHECK(arm < theta_.size());
  MECSC_CHECK_MSG(delay >= 0.0, "observed delay must be non-negative");
  std::size_t m = ++plays_[arm];
  if (m == 1) {
    theta_[arm] = delay;  // drop the prior on first real observation
  } else {
    theta_[arm] += (delay - theta_[arm]) / static_cast<double>(m);
  }
  ++total_plays_;
}

double BanditState::theta(std::size_t arm) const {
  MECSC_CHECK(arm < theta_.size());
  return theta_[arm];
}

std::size_t BanditState::plays(std::size_t arm) const {
  MECSC_CHECK(arm < plays_.size());
  return plays_[arm];
}

std::vector<double> BanditState::thetas() const { return theta_; }

void BanditState::restore(const std::vector<double>& theta,
                          const std::vector<std::size_t>& plays,
                          std::size_t total_plays) {
  MECSC_CHECK_MSG(theta.size() == theta_.size() && plays.size() == plays_.size(),
                  "bandit restore arm count mismatch");
  theta_ = theta;
  plays_ = plays;
  total_plays_ = total_plays;
}

double BanditState::coverage() const {
  std::size_t played = 0;
  for (std::size_t m : plays_) {
    if (m > 0) ++played;
  }
  return static_cast<double>(played) / static_cast<double>(plays_.size());
}

double EpsilonSchedule::at(std::size_t t) const {
  switch (kind_) {
    case Kind::kFixed: return param_;
    case Kind::kDecay: return std::min(1.0, param_ / static_cast<double>(t + 1));
    case Kind::kZero: return 0.0;
  }
  return 0.0;
}

}  // namespace mecsc::core
