#ifndef MECSC_CORE_REGRET_H
#define MECSC_CORE_REGRET_H

#include <cstddef>
#include <vector>

#include "core/assignment.h"
#include "core/fractional_solver.h"
#include "core/problem.h"

namespace mecsc::core {

/// Closed forms of the paper's analysis (§IV.C).
namespace theory {

/// Lemma 1's gap σ between the optimal and the worst service caching:
/// max{ |R|·(d_max − γ·d_min + Δ_ins),  |R|·γ·(1 − e^{−2γ|R|²}) + Δ_ins }.
double lemma1_sigma(std::size_t num_requests, double d_max, double d_min,
                    double delta_ins, double gamma);

/// Theorem 1's regret bound σ·log((T−1)/(e^{1/c}+1)); returns 0 for
/// horizons too short for the bound's log to be positive.
double theorem1_bound(double sigma, std::size_t horizon, double c);

}  // namespace theory

/// Tracks the realised regret of an online run (Eq. 10): per slot, the
/// realised average delay of the algorithm's decision minus the best
/// average delay achievable in hindsight for that slot (computed with
/// the *true* d_i(t) by the fractional solver — a lower bound on the
/// integral optimum, so the reported regret is an upper estimate).
class RegretTracker {
 public:
  /// Binds to `problem` (non-owning; must outlive the tracker).
  explicit RegretTracker(const CachingProblem& problem);

  /// Records one slot. `realized_delay` is the algorithm's realised
  /// average delay; `demands` and `true_unit_delays` describe the slot's
  /// ground truth.
  void record(double realized_delay, const std::vector<double>& demands,
              const std::vector<double>& true_unit_delays);

  /// Number of slots recorded so far.
  std::size_t slots() const noexcept { return per_slot_regret_.size(); }
  /// Total regret accumulated so far.
  double cumulative_regret() const noexcept { return cumulative_; }
  /// Per-slot regret values in slot order.
  const std::vector<double>& per_slot_regret() const noexcept { return per_slot_regret_; }
  /// Per-slot hindsight-optimal average delays in slot order.
  const std::vector<double>& per_slot_optimum() const noexcept { return per_slot_optimum_; }

  /// Cumulative regret after each slot (prefix sums).
  std::vector<double> cumulative_series() const;

 private:
  const CachingProblem* problem_;
  FractionalSolver oracle_;
  std::vector<double> per_slot_regret_;
  std::vector<double> per_slot_optimum_;
  double cumulative_ = 0.0;
};

}  // namespace mecsc::core

#endif  // MECSC_CORE_REGRET_H
