#ifndef MECSC_CORE_ROUNDING_H
#define MECSC_CORE_ROUNDING_H

#include <vector>

#include "common/rng.h"
#include "core/aggregation.h"
#include "core/assignment.h"
#include "core/problem.h"

namespace mecsc::core {

/// Options of the ε-greedy randomized rounding of Algorithm 1.
struct RoundingOptions {
  /// Candidate threshold γ: BS_l^candi = {bs_i | x*_li >= γ} (Eq. 9).
  double gamma = 0.25;
  /// ε for this slot (the schedule lives with the caller).
  double epsilon = 0.25;
  /// Coin granularity. Algorithm 1's pseudocode draws one random number
  /// per slot (all requests explore together); drawing one per request
  /// explores a few arms every slot instead of all arms on rare slots
  /// and is the library default — `bench_ablation_epsilon` compares both.
  bool per_slot_coin = false;
};

/// Per-request candidate base stations (Eq. 9); a request whose
/// fractional row never reaches γ falls back to its argmax station, so
/// the set is never empty.
std::vector<std::vector<std::size_t>> candidate_sets(const FractionalSolution& frac,
                                                     double gamma);

/// ε-greedy randomized rounding (Algorithm 1, lines 5-9) with a
/// capacity-repair pass:
///  * exploit: assign request l to a candidate station with probability
///    proportional to x*_li;
///  * explore: assign to a uniformly random non-candidate station (any
///    station when every station is a candidate);
///  * repair: while some station is overloaded, move the overloaded
///    station's smallest-x* requests to the cheapest (per current θ)
///    station with room;
///  * improve: a 1-opt pass over the exploit-branch requests (moves
///    restricted to their candidate sets, instantiation sharing
///    accounted) removes the variance randomized rounding leaves behind.
///    Exploration picks are never touched — they are the bandit plays.
/// The result is capacity-feasible whenever the fractional solution was.
Assignment round_assignment(const CachingProblem& problem,
                            const FractionalSolution& frac,
                            const std::vector<double>& demands,
                            const std::vector<double>& theta,
                            const RoundingOptions& options, common::Rng& rng);

/// De-aggregating variant of round_assignment (DESIGN.md §11): takes a
/// *class-level* fractional solution (one x row per demand class of
/// `classing`, as produced by FractionalSolver::solve_classes or the
/// aggregated LpFormulation) and rounds every member request against its
/// class's row — i.e. the uniform expansion x_li := x_{class(l),i}.
///
/// Because each member samples independently from the class row, the
/// per-request assignment distribution is exactly what per-request
/// rounding of the expanded solution would produce: candidate sets,
/// ε-greedy exploration, the bandit's observe() feedback and the
/// realised Eq. 3 objective are all unchanged in expectation. Capacity
/// repair and the 1-opt pass run at per-request granularity, so the
/// final assignment satisfies the same per-request constraints as the
/// unaggregated path; requests the repair pass relocates are counted by
/// the `agg.spill_requests` telemetry counter.
Assignment round_assignment_aggregated(const CachingProblem& problem,
                                       const FractionalSolution& class_frac,
                                       const DemandClassing& classing,
                                       const std::vector<double>& demands,
                                       const std::vector<double>& theta,
                                       const RoundingOptions& options,
                                       common::Rng& rng);

}  // namespace mecsc::core

#endif  // MECSC_CORE_ROUNDING_H
