#ifndef MECSC_CORE_ASSIGNMENT_H
#define MECSC_CORE_ASSIGNMENT_H

#include <cstddef>
#include <vector>

#include "core/problem.h"

namespace mecsc::core {

/// An integral per-slot decision: where each request is served, plus the
/// implied caching set (y in the ILP).
struct Assignment {
  /// station_of_request[l] = station serving request l.
  std::vector<std::size_t> station_of_request;
  /// cached[k][i] = true iff an instance of service k is cached at
  /// station i (derived: some request of k is assigned to i).
  std::vector<std::vector<bool>> cached;
};

/// Derives the caching set from the request assignment.
std::vector<std::vector<bool>> derive_cached(const CachingProblem& problem,
                                             const std::vector<std::size_t>& station_of_request);

/// Average per-request delay (ms) of an assignment under realised
/// per-unit delays — the Eq. 3 objective evaluated ex post:
/// (1/|R|) (Σ_l ρ_l·d_{i(l)}·c_{i(l)} + access_{l,i(l)} + Σ_{cached (k,i)} d_ins[i][k]),
/// where c_i = max(1, load_i / C(bs_i)) is the station's congestion
/// factor. The paper's d_i(t) "depends on ... the congestion level of
/// bs_i" (§III.D); charging over-committed stations proportionally makes
/// under-provisioning from demand under-prediction costly instead of
/// free, which is the entire point of predicting bursts in time.
double realized_average_delay(const CachingProblem& problem, const Assignment& a,
                              const std::vector<double>& demands,
                              const std::vector<double>& unit_delays);

/// As `realized_average_delay`, but charges d_ins only for instances
/// *newly* cached this slot (absent from `prev_cached`). Eq. 3 charges
/// every cached instance every slot; in a running system a container is
/// instantiated once and reused while it stays cached, so this
/// accounting mode is the operational alternative the
/// `bench_ablation_instantiation` ablation compares. An empty
/// `prev_cached` means "nothing was cached" (slot 0).
double realized_average_delay_incremental(
    const CachingProblem& problem, const Assignment& a,
    const std::vector<std::vector<bool>>& prev_cached,
    const std::vector<double>& demands, const std::vector<double>& unit_delays);

/// Per-station resource loads (MHz) of an assignment.
std::vector<double> station_loads(const CachingProblem& problem, const Assignment& a,
                                  const std::vector<double>& demands);

/// Total capacity violation (MHz) across stations; 0 when feasible.
double capacity_violation(const CachingProblem& problem, const Assignment& a,
                          const std::vector<double>& demands);

}  // namespace mecsc::core

#endif  // MECSC_CORE_ASSIGNMENT_H
