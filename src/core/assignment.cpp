#include "core/assignment.h"

#include <algorithm>

#include "common/error.h"

namespace mecsc::core {

std::vector<std::vector<bool>> derive_cached(
    const CachingProblem& problem,
    const std::vector<std::size_t>& station_of_request) {
  MECSC_CHECK(station_of_request.size() == problem.num_requests());
  std::vector<std::vector<bool>> cached(
      problem.num_services(), std::vector<bool>(problem.num_stations(), false));
  for (std::size_t l = 0; l < station_of_request.size(); ++l) {
    std::size_t i = station_of_request[l];
    MECSC_CHECK(i < problem.num_stations());
    cached[problem.requests()[l].service_id][i] = true;
  }
  return cached;
}

double realized_average_delay(const CachingProblem& problem, const Assignment& a,
                              const std::vector<double>& demands,
                              const std::vector<double>& unit_delays) {
  const std::size_t nr = problem.num_requests();
  MECSC_CHECK(a.station_of_request.size() == nr);
  MECSC_CHECK(demands.size() == nr);
  MECSC_CHECK(unit_delays.size() == problem.num_stations());
  std::vector<double> load = station_loads(problem, a, demands);
  std::vector<double> congestion(load.size(), 1.0);
  for (std::size_t i = 0; i < load.size(); ++i) {
    double cap = problem.station_capacity_mhz(i);
    if (cap > 0.0 && load[i] > cap) congestion[i] = load[i] / cap;
  }
  double total = 0.0;
  for (std::size_t l = 0; l < nr; ++l) {
    std::size_t i = a.station_of_request[l];
    total += problem.request_delay_ms(l, i, demands[l],
                                      unit_delays[i] * congestion[i]);
  }
  for (std::size_t k = 0; k < a.cached.size(); ++k) {
    for (std::size_t i = 0; i < a.cached[k].size(); ++i) {
      if (a.cached[k][i]) total += problem.instantiation_delay_ms(i, k);
    }
  }
  return total / static_cast<double>(nr);
}

double realized_average_delay_incremental(
    const CachingProblem& problem, const Assignment& a,
    const std::vector<std::vector<bool>>& prev_cached,
    const std::vector<double>& demands, const std::vector<double>& unit_delays) {
  double full = realized_average_delay(problem, a, demands, unit_delays);
  if (prev_cached.empty()) return full;
  MECSC_CHECK(prev_cached.size() == a.cached.size());
  // Subtract the instantiation delays of instances that were already
  // cached in the previous slot.
  double reused = 0.0;
  for (std::size_t k = 0; k < a.cached.size(); ++k) {
    MECSC_CHECK(prev_cached[k].size() == a.cached[k].size());
    for (std::size_t i = 0; i < a.cached[k].size(); ++i) {
      if (a.cached[k][i] && prev_cached[k][i]) {
        reused += problem.instantiation_delay_ms(i, k);
      }
    }
  }
  return full - reused / static_cast<double>(problem.num_requests());
}

std::vector<double> station_loads(const CachingProblem& problem, const Assignment& a,
                                  const std::vector<double>& demands) {
  MECSC_CHECK(a.station_of_request.size() == problem.num_requests());
  MECSC_CHECK(demands.size() == problem.num_requests());
  std::vector<double> load(problem.num_stations(), 0.0);
  for (std::size_t l = 0; l < demands.size(); ++l) {
    load[a.station_of_request[l]] += problem.resource_demand_mhz(demands[l]);
  }
  return load;
}

double capacity_violation(const CachingProblem& problem, const Assignment& a,
                          const std::vector<double>& demands) {
  std::vector<double> load = station_loads(problem, a, demands);
  double violation = 0.0;
  for (std::size_t i = 0; i < load.size(); ++i) {
    violation += std::max(0.0, load[i] - problem.station_capacity_mhz(i));
  }
  return violation;
}

}  // namespace mecsc::core
