#include "core/problem.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.h"
#include "net/wireless.h"

namespace mecsc::core {

CachingProblem::CachingProblem(const net::Topology* topology,
                               std::vector<workload::Service> services,
                               std::vector<workload::Request> requests,
                               ProblemOptions options, common::Rng& rng)
    : topology_(topology),
      services_(std::move(services)),
      requests_(std::move(requests)),
      options_(options) {
  MECSC_CHECK_MSG(topology_ != nullptr, "null topology");
  MECSC_CHECK_MSG(!services_.empty(), "need at least one service");
  MECSC_CHECK_MSG(!requests_.empty(), "need at least one request");
  MECSC_CHECK_MSG(options_.c_unit_mhz > 0.0, "C_unit must be > 0");
  MECSC_CHECK_MSG(options_.inst_factor_lo > 0.0 &&
                      options_.inst_factor_lo <= options_.inst_factor_hi,
                  "bad instantiation factor range");
  for (const auto& r : requests_) {
    MECSC_CHECK_MSG(r.service_id < services_.size(), "request references unknown service");
    MECSC_CHECK_MSG(r.home_station < topology_->num_stations(),
                    "request home station out of range");
  }
  inst_factor_.reserve(topology_->num_stations());
  for (const auto& bs : topology_->stations()) {
    double lo = options_.inst_factor_lo;
    double hi = options_.inst_factor_hi;
    // Macro cloudlets instantiate fastest, femto slowest.
    switch (bs.tier) {
      case net::Tier::kMacro: hi = lo + 0.25 * (hi - lo); break;
      case net::Tier::kMicro: lo += 0.25 * (hi - lo); hi -= 0.25 * (hi - lo); break;
      case net::Tier::kFemto: lo += 0.5 * (hi - lo); break;
    }
    inst_factor_.push_back(rng.uniform(lo, hi));
  }

  reset_station_capacities();
  recompute_wireless_terms();
}

double CachingProblem::total_effective_capacity_mhz() const {
  double total = 0.0;
  for (double c : effective_capacity_) total += c;
  return total;
}

void CachingProblem::set_station_capacities(const std::vector<double>& capacities) {
  MECSC_CHECK_MSG(capacities.size() == topology_->num_stations(),
                  "capacity vector size mismatch");
  for (std::size_t i = 0; i < capacities.size(); ++i) {
    MECSC_CHECK_MSG(capacities[i] >= 0.0 &&
                        capacities[i] <= topology_->station(i).capacity_mhz + 1e-9,
                    "effective capacity outside [0, static capacity]");
  }
  effective_capacity_ = capacities;
}

void CachingProblem::reset_station_capacities() {
  effective_capacity_.resize(topology_->num_stations());
  for (std::size_t i = 0; i < effective_capacity_.size(); ++i) {
    effective_capacity_[i] = topology_->station(i).capacity_mhz;
  }
}

void CachingProblem::recompute_wireless_terms() {
  // Wireless hop: per-request ms-per-data-unit over the air to the home
  // station, with the home station's bandwidth shared evenly among the
  // users registered there.
  tx_unit_ms_.assign(requests_.size(), 0.0);
  if (!options_.include_wireless_delay) return;
  std::vector<std::size_t> homed(topology_->num_stations(), 0);
  for (const auto& r : requests_) ++homed[r.home_station];
  net::WirelessModel wireless;
  for (std::size_t l = 0; l < requests_.size(); ++l) {
    const auto& r = requests_[l];
    const auto& bs = topology_->station(r.home_station);
    double dx = r.x_m - bs.x_m;
    double dy = r.y_m - bs.y_m;
    double dist = std::sqrt(dx * dx + dy * dy);
    double share =
        1.0 / static_cast<double>(std::max<std::size_t>(homed[r.home_station], 1));
    tx_unit_ms_[l] = wireless.transmission_delay_ms(bs, dist, 1.0, share);
  }
}

void CachingProblem::update_user_locations(
    const std::vector<workload::Request>& moved) {
  MECSC_CHECK_MSG(moved.size() == requests_.size(),
                  "moved-user vector size mismatch");
  for (std::size_t l = 0; l < requests_.size(); ++l) {
    MECSC_CHECK_MSG(moved[l].id == requests_[l].id &&
                        moved[l].service_id == requests_[l].service_id,
                    "mobility must not change request identity");
    MECSC_CHECK_MSG(moved[l].home_station < topology_->num_stations(),
                    "moved home station out of range");
    requests_[l].x_m = moved[l].x_m;
    requests_[l].y_m = moved[l].y_m;
    requests_[l].home_station = moved[l].home_station;
    requests_[l].location_cluster = moved[l].location_cluster;
  }
  recompute_wireless_terms();
}

double CachingProblem::instantiation_delay_ms(std::size_t station,
                                              std::size_t service) const {
  MECSC_CHECK(station < inst_factor_.size() && service < services_.size());
  return services_[service].base_instantiation_ms * inst_factor_[station];
}

double CachingProblem::instantiation_delay_spread() const {
  double lo = std::numeric_limits<double>::infinity();
  double hi = 0.0;
  for (std::size_t i = 0; i < inst_factor_.size(); ++i) {
    for (std::size_t k = 0; k < services_.size(); ++k) {
      double d = instantiation_delay_ms(i, k);
      lo = std::min(lo, d);
      hi = std::max(hi, d);
    }
  }
  return hi - lo;
}

double CachingProblem::access_latency_ms(std::size_t request,
                                         std::size_t station) const {
  MECSC_CHECK(request < requests_.size() && station < topology_->num_stations());
  if (!options_.include_access_latency) return 0.0;
  return topology_->path_latency_ms(requests_[request].home_station, station);
}

double CachingProblem::transmission_delay_ms(std::size_t request, double rho) const {
  MECSC_CHECK(request < requests_.size());
  return rho * tx_unit_ms_[request];
}

double CachingProblem::tx_unit_ms(std::size_t request) const {
  MECSC_CHECK(request < requests_.size());
  return tx_unit_ms_[request];
}

double CachingProblem::request_delay_ms(std::size_t request, std::size_t station,
                                        double rho, double unit_delay) const {
  return rho * unit_delay + access_latency_ms(request, station) +
         transmission_delay_ms(request, rho);
}

void CachingProblem::check_capacity_feasible(const std::vector<double>& demands) const {
  MECSC_CHECK_MSG(demands.size() == requests_.size(), "demand vector size mismatch");
  double need = 0.0;
  for (double rho : demands) need += resource_demand_mhz(rho);
  double have = topology_->total_capacity_mhz();
  if (need > have) {
    throw common::Infeasible(
        "total demand " + std::to_string(need) + " MHz exceeds total capacity " +
        std::to_string(have) + " MHz");
  }
  // Every request must also fit in *some* single station.
  double biggest_station = 0.0;
  for (const auto& bs : topology_->stations()) {
    biggest_station = std::max(biggest_station, bs.capacity_mhz);
  }
  for (double rho : demands) {
    if (resource_demand_mhz(rho) > biggest_station) {
      throw common::Infeasible("a single request exceeds every station's capacity");
    }
  }
}

}  // namespace mecsc::core
