#ifndef MECSC_CORE_FRACTIONAL_SOLVER_H
#define MECSC_CORE_FRACTIONAL_SOLVER_H

#include <vector>

#include "core/problem.h"

namespace mecsc::core {

/// Scalable solver for the per-slot LP relaxation, used inside OL_GD on
/// every time slot (Algorithm 1 line 3-4 at network sizes where the
/// dense simplex would be too slow).
///
/// Reduction (DESIGN.md §5): dropping the coupling constraint (6) turns
/// the LP into a transportation problem — requests are sources with
/// supply ρ_l·C_unit, stations are sinks with capacity C(bs_i), and the
/// per-flow-unit cost on arc (l, i) is
///
///     (ρ_l·θ_i + access_li + amortized_inst_ik) / (ρ_l·C_unit)
///
/// where amortized_inst spreads d_ins[i][k] over the expected resource
/// demand of service k. Min-cost flow solves this exactly; y is
/// recovered as y_ki = max_{l: svc(l)=k} x_li and the reported objective
/// is re-evaluated with the true (non-amortized) Eq. 3 cost, so the only
/// approximation is in *where* flow is routed, not in how the solution
/// is scored. The `bench_lp_vs_flow` ablation and tests/test_core.cpp
/// quantify the gap against the exact simplex path (small: instantiation
/// delays are second-order versus ρ·θ).
class FractionalSolver {
 public:
  explicit FractionalSolver(const CachingProblem& problem) : problem_(&problem) {}

  /// Solves for one slot; throws Infeasible when demand cannot be fully
  /// routed. Zero-demand requests are pinned (x = 1) to their cheapest
  /// station since they consume no capacity.
  FractionalSolution solve(const std::vector<double>& demands,
                           const std::vector<double>& theta) const;

  /// Evaluates the exact Eq.-3 objective of a fractional solution
  /// (average per-request delay, ms) with y_ki = max_l x_li.
  double objective(const FractionalSolution& sol, const std::vector<double>& demands,
                   const std::vector<double>& theta) const;

 private:
  const CachingProblem* problem_;
};

}  // namespace mecsc::core

#endif  // MECSC_CORE_FRACTIONAL_SOLVER_H
