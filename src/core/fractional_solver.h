#ifndef MECSC_CORE_FRACTIONAL_SOLVER_H
#define MECSC_CORE_FRACTIONAL_SOLVER_H

#include <cstdint>
#include <vector>

#include "core/aggregation.h"
#include "core/problem.h"
#include "flow/min_cost_flow.h"

namespace mecsc::core {

/// Snapshot of a FractionalSolver's cross-solve warm state — the
/// previous solve's flow arcs (which seed the next solve's working set)
/// and the station dual prices its arc ranking consults. Checkpointing
/// this is what keeps the flow path's decisions bit-identical across a
/// crash/resume boundary.
struct FractionalWarmState {
  /// Previous solve's per-service flow arcs (next solve's working set).
  std::vector<std::vector<std::uint32_t>> warm_arcs;
  /// Station dual prices the arc ranking consults.
  std::vector<double> station_price;
};

/// Outcome annotations of a degraded-mode solve (solve_degraded /
/// solve_classes with a non-null report).
struct SolveReport {
  /// True when the flow solver could not route the full demand and the
  /// remainder was placed greedily (station capacities may then be
  /// exceeded; the reported objective still scores the true Eq. 3 cost).
  bool degraded = false;
  /// Resource demand (MHz) the flow solver failed to route.
  double unrouted_mhz = 0.0;
};

/// Scalable solver for the per-slot LP relaxation, used inside OL_GD on
/// every time slot (Algorithm 1 line 3-4 at network sizes where the
/// dense simplex would be too slow).
///
/// Reduction (DESIGN.md §5): dropping the coupling constraint (6) turns
/// the LP into a transportation problem — requests are sources with
/// supply ρ_l·C_unit, stations are sinks with capacity C(bs_i), and the
/// per-flow-unit cost on arc (l, i) is
///
///     (ρ_l·θ_i + access_li + amortized_inst_ik) / (ρ_l·C_unit)
///
/// where amortized_inst spreads d_ins[i][k] over the expected resource
/// demand of service k. Min-cost flow solves this exactly; y is
/// recovered as y_ki = max_{l: svc(l)=k} x_li and the reported objective
/// is re-evaluated with the true (non-amortized) Eq. 3 cost, so the only
/// approximation is in *where* flow is routed, not in how the solution
/// is scored. The `bench_lp_vs_flow` ablation and tests/test_core.cpp
/// quantify the gap against the exact simplex path (small: instantiation
/// delays are second-order versus ρ·θ).
///
/// Performance (DESIGN.md "Performance"): instead of the dense |R|×|BS|
/// bipartite graph, each solve runs on a pruned *working set* of arcs —
/// the k cheapest stations per request plus the stations that carried
/// the request's flow on the previous solve — and then certifies the
/// result against the full arc set with the flow solver's final dual
/// potentials (reduced cost >= 0 for every pruned-out arc). Violated
/// arcs are added and the network re-solved, so the answer is exactly
/// the full-network optimum; the working set merely shrinks each
/// Dijkstra pass by roughly |BS|/k. All scratch memory (the flow
/// network, cost matrices, working sets) is owned by the solver and
/// reused across solves, so steady-state per-slot solves allocate
/// nothing.
///
/// Scaling (DESIGN.md §11): the flow core is column-generic — a column
/// is either one request or one demand class (solve_classes). With
/// aggregation the identical machinery runs over |classes| columns
/// instead of |R|, which is what keeps 100k-request slots inside the
/// slot budget.
///
/// Thread safety: the reusable scratch state makes concurrent solve()
/// calls on one instance a data race. Give each worker its own solver
/// (they are cheap); `sim::ParallelReplicationRunner` replications each
/// construct their own algorithm instances and therefore their own
/// solvers.
class FractionalSolver {
 public:
  /// Binds the solver to `problem` (non-owning; must outlive the solver).
  explicit FractionalSolver(const CachingProblem& problem) : problem_(&problem) {}

  /// Solves for one slot; throws Infeasible when demand cannot be fully
  /// routed. Zero-demand requests are pinned (x = 1) to their cheapest
  /// station since they consume no capacity.
  FractionalSolution solve(const std::vector<double>& demands,
                           const std::vector<double>& theta) const;

  /// Degraded-mode variant of solve(): never throws on capacity
  /// shortfall. The routable part keeps the min-cost-flow optimum; each
  /// unrouted request fraction is then placed greedily on the cheapest
  /// up station with residual capacity (the roomiest up station when
  /// none has any), so Σ_i x_li = 1 still holds for every request.
  /// Bitwise identical to solve() whenever the instance is feasible.
  /// `report` (optional) records whether and how much degradation
  /// happened.
  FractionalSolution solve_degraded(const std::vector<double>& demands,
                                    const std::vector<double>& theta,
                                    SolveReport* report = nullptr) const;

  /// Aggregated counterpart of solve()/solve_degraded(): solves the
  /// transportation relaxation over the classing's demand classes —
  /// columns x_{class,i} with the class's summed resource demand and the
  /// exact member-summed cost coefficients — and returns a *class-level*
  /// fractional solution (one x row per class, in classing order; the
  /// objective is still the per-request Eq. 3 average). De-aggregate
  /// with round_assignment_aggregated, or expand x_li := x_{class(l),i}.
  /// With a null `report` a capacity shortfall throws Infeasible; with a
  /// non-null one the solve degrades gracefully exactly like
  /// solve_degraded ("solve_degraded accepts classes").
  FractionalSolution solve_classes(const DemandClassing& classing,
                                   const std::vector<double>& theta,
                                   SolveReport* report = nullptr) const;

  /// Evaluates the exact Eq.-3 objective of a fractional solution
  /// (average per-request delay, ms) with y_ki = max_l x_li.
  double objective(const FractionalSolution& sol, const std::vector<double>& demands,
                   const std::vector<double>& theta) const;

  /// Snapshots the cross-solve warm state (see FractionalWarmState).
  FractionalWarmState export_warm_state() const {
    return FractionalWarmState{s_.warm, s_.station_price};
  }

  /// Restores a snapshot taken by export_warm_state(). Dimension-checked:
  /// a snapshot whose station-price vector or arc station ids were sized
  /// for a different station count (stale checkpoint after a topology
  /// change, or a resume recipe whose byte-compare passed but whose
  /// aggregation resolution produced a different column universe) is
  /// rejected as a whole and the solver cold-starts instead of indexing
  /// stale arcs out of bounds. Column-count drift alone is fine — the
  /// per-slot class count varies by design and flow_solve resizes the
  /// warm set — it is the *station* dimension that the arc ids index.
  void import_warm_state(const FractionalWarmState& state) const;

 private:
  /// Request-path implementation: fills the per-column scratch from the
  /// per-request demands, then runs the shared flow core. Throws on
  /// shortfall when `report` is null, degrades gracefully when it is not.
  FractionalSolution solve_impl(const std::vector<double>& demands,
                                const std::vector<double>& theta,
                                SolveReport* report) const;

  /// Column-generic flow core shared by the request and class paths.
  /// Expects s_.res / s_.svc / s_.home / s_.base_cost / s_.service_demand
  /// prefilled for `n` columns; `objective_divisor` is the request count
  /// the Eq. 3 average divides by (= n on the request path).
  FractionalSolution flow_solve(std::size_t n, double total_flow,
                                double objective_divisor,
                                SolveReport* report) const;

  /// Reusable buffers; sized on first solve, reused afterwards. A
  /// "column" below is a request (solve/solve_degraded) or a demand
  /// class (solve_classes).
  struct Scratch {
    flow::MinCostFlow mcf{0};
    std::vector<double> res;             // per column, resource demand (MHz)
    std::vector<std::uint32_t> svc;      // per column, service id
    std::vector<std::uint32_t> home;     // per column, home station
    std::vector<double> service_demand;  // per service, expected demand
    std::vector<double> base_cost;       // n×ns, cost minus amortized part
    std::vector<double> inst_base;       // nk×ns amortization base
    std::vector<double> attracted;       // nk×ns realised per-instance demand
    std::vector<double> x;               // n×ns current round
    std::vector<double> y;               // nk×ns current round
    std::vector<double> x_best;          // n×ns best round so far
    std::vector<double> y_best;          // nk×ns
    std::vector<std::vector<std::uint32_t>> work;       // station ids per column
    std::vector<std::vector<std::size_t>> work_edge;    // edge id per working arc
    std::vector<std::size_t> sink_edge;  // per station, edge id of station→sink
    std::vector<double> station_price;   // per station, certificate dual
    std::vector<double> station_load;    // per station, degraded-mode load (MHz)
    std::vector<char> in_work;           // n×ns membership mask
    std::vector<std::pair<double, std::uint32_t>> cand;  // sort buffer
    std::vector<std::pair<std::uint32_t, std::uint32_t>> violations;
    std::vector<std::vector<std::uint32_t>> warm;  // previous solve's flow arcs
  };

  const CachingProblem* problem_;
  mutable Scratch s_;
};

}  // namespace mecsc::core

#endif  // MECSC_CORE_FRACTIONAL_SOLVER_H
