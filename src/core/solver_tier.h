#ifndef MECSC_CORE_SOLVER_TIER_H
#define MECSC_CORE_SOLVER_TIER_H

#include <cstddef>

namespace mecsc::core {

/// Per-slot LP solver tier (DESIGN.md §16). The per-slot placement LP is
/// a generalized assignment problem; three solvers of increasing scale
/// trade exactness for per-column cost:
///   * flow — the certified min-cost-flow transportation solve
///     (FractionalSolver): exact for its cost vector, the library
///     default and the quality anchor;
///   * simplex — the dense exact-LP tableau (LpFormulation +
///     lp::SimplexSolver): solves the coupled x/y LP, small instances
///     and ablations only;
///   * lagrangian — Lagrangian decomposition of the station capacity
///     constraints (LagrangianSolver): each demand class solves an
///     independent argmin over stations under dual prices λ, with
///     subgradient ascent on λ and a duality-gap stopping rule that
///     falls back to the exact flow path when the gap won't close.
enum class SolverTier {
  /// Resolve from the MECSC_SOLVER environment variable
  /// ("flow" | "simplex" | "lagrangian" | "auto"); unset, empty or
  /// unparsable values mean kFlow. The library default, so every bench
  /// and example honours the env switch without code changes.
  kEnv,
  /// The certified min-cost-flow transportation solve (exact, default).
  kFlow,
  /// The dense exact-LP simplex (small instances / ablations).
  kSimplex,
  /// Lagrangian decomposition with subgradient ascent and gap-based
  /// fallback to the flow tier.
  kLagrangian,
  /// Pick per slot by column count: lagrangian when the slot's LP has at
  /// least LagrangianOptions::auto_threshold columns (demand classes
  /// when aggregation is active, requests otherwise), flow below it.
  kAuto,
};

/// Maps kEnv to the MECSC_SOLVER environment variable (defaulting to
/// kFlow); explicit tiers pass through unchanged, so code-level settings
/// always win over the environment.
SolverTier resolve_solver_tier(SolverTier configured);

/// Human-readable tier name ("flow", "simplex", "lagrangian", "auto",
/// "env") — telemetry labels and bench tables.
const char* solver_tier_name(SolverTier tier);

}  // namespace mecsc::core

#endif  // MECSC_CORE_SOLVER_TIER_H
