#include "core/lp_formulation.h"

#include "common/error.h"

namespace mecsc::core {

LpFormulation::LpFormulation(const CachingProblem& problem,
                             const std::vector<double>& demands,
                             const std::vector<double>& theta)
    : problem_(problem),
      num_rows_(problem.num_requests()),
      num_stations_(problem.num_stations()),
      num_services_(problem.num_services()) {
  MECSC_CHECK_MSG(demands.size() == num_rows_, "demand vector size mismatch");
  MECSC_CHECK_MSG(theta.size() == num_stations_, "theta vector size mismatch");

  const double inv_r = 1.0 / static_cast<double>(num_rows_);

  // Variables: x_{li} first (request-major), then y_{ki} (service-major).
  // Objective = (1/|R|) (Σ x_li (ρ_l θ_i + access_li) + Σ y_ki d_ins_ik).
  for (std::size_t l = 0; l < num_rows_; ++l) {
    for (std::size_t i = 0; i < num_stations_; ++i) {
      double coef = demands[l] * (theta[i] + problem.tx_unit_ms(l)) +
                    problem.access_latency_ms(l, i);
      model_.add_variable(inv_r * coef,
                          "x_" + std::to_string(l) + "_" + std::to_string(i));
    }
  }
  for (std::size_t k = 0; k < num_services_; ++k) {
    for (std::size_t i = 0; i < num_stations_; ++i) {
      model_.add_variable(inv_r * problem.instantiation_delay_ms(i, k),
                          "y_" + std::to_string(k) + "_" + std::to_string(i));
    }
  }

  // Constraint (4): Σ_i x_li = 1 for every request.
  for (std::size_t l = 0; l < num_rows_; ++l) {
    lp::Constraint c;
    c.relation = lp::Relation::kEqual;
    c.rhs = 1.0;
    c.name = "assign_" + std::to_string(l);
    for (std::size_t i = 0; i < num_stations_; ++i) {
      c.terms.emplace_back(x_var(l, i), 1.0);
    }
    model_.add_constraint(std::move(c));
  }

  // Constraint (5): Σ_l x_li ρ_l C_unit <= C(bs_i).
  for (std::size_t i = 0; i < num_stations_; ++i) {
    lp::Constraint c;
    c.relation = lp::Relation::kLessEqual;
    c.rhs = problem.station_capacity_mhz(i);
    c.name = "cap_" + std::to_string(i);
    for (std::size_t l = 0; l < num_rows_; ++l) {
      c.terms.emplace_back(x_var(l, i), problem.resource_demand_mhz(demands[l]));
    }
    model_.add_constraint(std::move(c));
  }

  // Constraint (6): y_{k(l),i} >= x_li  <=>  x_li - y_ki <= 0.
  for (std::size_t l = 0; l < num_rows_; ++l) {
    std::size_t k = problem.requests()[l].service_id;
    for (std::size_t i = 0; i < num_stations_; ++i) {
      lp::Constraint c;
      c.relation = lp::Relation::kLessEqual;
      c.rhs = 0.0;
      c.terms.emplace_back(x_var(l, i), 1.0);
      c.terms.emplace_back(y_var(k, i), -1.0);
      model_.add_constraint(std::move(c));
    }
  }
}

LpFormulation::LpFormulation(const CachingProblem& problem,
                             const DemandClassing& classing,
                             const std::vector<double>& theta)
    : problem_(problem),
      num_rows_(classing.num_classes()),
      num_stations_(problem.num_stations()),
      num_services_(problem.num_services()) {
  MECSC_CHECK_MSG(classing.num_requests() == problem.num_requests(),
                  "classing was built for a different problem");
  MECSC_CHECK_MSG(theta.size() == num_stations_, "theta vector size mismatch");

  // The objective stays the per-request average: Σ over a class's
  // members of ρ_l θ_i + ρ_l tx_l + access_li equals
  // rho_sum·θ_i + tx_rho_sum + count·access (members share the home
  // station), so class columns carry exact member-summed coefficients.
  const double inv_r = 1.0 / static_cast<double>(problem.num_requests());
  const bool inc_access = problem.options().include_access_latency;
  const auto& classes = classing.classes();

  for (std::size_t c = 0; c < num_rows_; ++c) {
    const DemandClass& cls = classes[c];
    for (std::size_t i = 0; i < num_stations_; ++i) {
      const double access =
          inc_access ? problem.topology().path_latency_ms(cls.home_station, i)
                     : 0.0;
      double coef = cls.rho_sum * theta[i] + cls.tx_rho_sum +
                    static_cast<double>(cls.count) * access;
      model_.add_variable(inv_r * coef,
                          "x_" + std::to_string(c) + "_" + std::to_string(i));
    }
  }
  for (std::size_t k = 0; k < num_services_; ++k) {
    for (std::size_t i = 0; i < num_stations_; ++i) {
      model_.add_variable(inv_r * problem.instantiation_delay_ms(i, k),
                          "y_" + std::to_string(k) + "_" + std::to_string(i));
    }
  }

  // Constraint (4), aggregated: Σ_i x_ci = 1 per class; the uniform
  // expansion x_li := x_{class(l),i} then satisfies Σ_i x_li = 1 for
  // every member request.
  for (std::size_t c = 0; c < num_rows_; ++c) {
    lp::Constraint con;
    con.relation = lp::Relation::kEqual;
    con.rhs = 1.0;
    con.name = "assign_" + std::to_string(c);
    for (std::size_t i = 0; i < num_stations_; ++i) {
      con.terms.emplace_back(x_var(c, i), 1.0);
    }
    model_.add_constraint(std::move(con));
  }

  // Constraint (5), aggregated: a class loads a station with its summed
  // resource demand — exactly the load its members would place, so class
  // feasibility implies expanded per-request feasibility.
  for (std::size_t i = 0; i < num_stations_; ++i) {
    lp::Constraint con;
    con.relation = lp::Relation::kLessEqual;
    con.rhs = problem.station_capacity_mhz(i);
    con.name = "cap_" + std::to_string(i);
    for (std::size_t c = 0; c < num_rows_; ++c) {
      con.terms.emplace_back(x_var(c, i),
                             problem.resource_demand_mhz(classes[c].rho_sum));
    }
    model_.add_constraint(std::move(con));
  }

  // Constraint (6): y_{k(c),i} >= x_ci.
  for (std::size_t c = 0; c < num_rows_; ++c) {
    std::size_t k = classes[c].service;
    for (std::size_t i = 0; i < num_stations_; ++i) {
      lp::Constraint con;
      con.relation = lp::Relation::kLessEqual;
      con.rhs = 0.0;
      con.terms.emplace_back(x_var(c, i), 1.0);
      con.terms.emplace_back(y_var(k, i), -1.0);
      model_.add_constraint(std::move(con));
    }
  }
}

std::size_t LpFormulation::x_var(std::size_t request, std::size_t station) const {
  MECSC_CHECK(request < num_rows_ && station < num_stations_);
  return request * num_stations_ + station;
}

std::size_t LpFormulation::y_var(std::size_t service, std::size_t station) const {
  MECSC_CHECK(service < num_services_ && station < num_stations_);
  return num_rows_ * num_stations_ + service * num_stations_ + station;
}

FractionalSolution LpFormulation::solve(const lp::SimplexSolver& solver) const {
  lp::SimplexWorkspace workspace;
  return solve(solver, workspace);
}

FractionalSolution LpFormulation::solve(const lp::SimplexSolver& solver,
                                        lp::SimplexWorkspace& workspace) const {
  LpSolveOutcome out = try_solve(solver, workspace);
  switch (out.status) {
    case lp::SolveStatus::kOptimal:
      return std::move(out.solution);
    case lp::SolveStatus::kInfeasible:
      throw common::Infeasible("per-slot caching LP is infeasible");
    case lp::SolveStatus::kUnbounded:
      throw common::NumericalError(
          "per-slot caching LP reported unbounded — its feasible region is a "
          "polytope, so this indicates numerical breakdown");
    case lp::SolveStatus::kIterationLimit:
      throw common::NumericalError(
          "simplex hit its pivot limit before reaching optimality");
  }
  throw common::NumericalError("unknown simplex status");
}

LpSolveOutcome LpFormulation::try_solve(const lp::SimplexSolver& solver,
                                        lp::SimplexWorkspace& workspace) const {
  lp::Solution sol = solver.solve(model_, workspace);
  LpSolveOutcome out;
  out.status = sol.status;
  if (sol.status != lp::SolveStatus::kOptimal) return out;
  out.solution.objective = sol.objective;
  out.solution.x.assign(num_rows_, std::vector<double>(num_stations_, 0.0));
  out.solution.y.assign(num_services_, std::vector<double>(num_stations_, 0.0));
  for (std::size_t l = 0; l < num_rows_; ++l) {
    for (std::size_t i = 0; i < num_stations_; ++i) {
      out.solution.x[l][i] = sol.x[x_var(l, i)];
    }
  }
  for (std::size_t k = 0; k < num_services_; ++k) {
    for (std::size_t i = 0; i < num_stations_; ++i) {
      out.solution.y[k][i] = sol.x[y_var(k, i)];
    }
  }
  return out;
}

}  // namespace mecsc::core
