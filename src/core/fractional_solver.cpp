#include "core/fractional_solver.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.h"
#include "flow/min_cost_flow.h"

namespace mecsc::core {

FractionalSolution FractionalSolver::solve(const std::vector<double>& demands,
                                           const std::vector<double>& theta) const {
  const CachingProblem& p = *problem_;
  const std::size_t nr = p.num_requests();
  const std::size_t ns = p.num_stations();
  const std::size_t nk = p.num_services();
  MECSC_CHECK_MSG(demands.size() == nr, "demand vector size mismatch");
  MECSC_CHECK_MSG(theta.size() == ns, "theta vector size mismatch");

  // Expected resource demand per service (initial amortization base).
  std::vector<double> service_demand_mhz(nk, 0.0);
  double total_flow = 0.0;
  for (std::size_t l = 0; l < nr; ++l) {
    double res = p.resource_demand_mhz(demands[l]);
    service_demand_mhz[p.requests()[l].service_id] += res;
    total_flow += res;
  }

  // Successive approximation of the facility-location term: solve the
  // transportation LP with instantiation delay amortized per unit of
  // flow, then re-price each (service, station) instance by the demand
  // it actually attracted (a thin instance gets an honest, high per-unit
  // opening price next round), and keep the best solution under the true
  // Eq. 3 objective. Three rounds close most of the gap to the exact LP
  // (see tests/test_core.cpp and bench_lp_vs_flow).
  constexpr std::size_t kRounds = 3;
  // inst_base[k][i]: demand base used to amortize d_ins[i][k].
  std::vector<std::vector<double>> inst_base(nk, std::vector<double>(ns, 0.0));
  for (std::size_t k = 0; k < nk; ++k) {
    for (std::size_t i = 0; i < ns; ++i) inst_base[k][i] = service_demand_mhz[k];
  }

  // Full bipartite arc set. (Pruning each request to its cheapest
  // stations was tried and abandoned: under realistic congestion the
  // cheap stations saturate and demand must spill to arbitrary ones, so
  // a pruned network regularly fails to route; the dense-Dijkstra flow
  // solver makes the full graph fast enough.)
  std::vector<std::vector<std::size_t>> allowed(nr);
  for (std::size_t l = 0; l < nr; ++l) {
    allowed[l].resize(ns);
    for (std::size_t i = 0; i < ns; ++i) allowed[l][i] = i;
  }

  FractionalSolution best;
  double best_objective = std::numeric_limits<double>::infinity();

  for (std::size_t round = 0; round < kRounds; ++round) {
    // Node layout: 0 = source, 1..nr = requests, nr+1..nr+ns = stations,
    // nr+ns+1 = sink.
    const std::size_t src = 0;
    const std::size_t sink = nr + ns + 1;
    flow::MinCostFlow mcf(nr + ns + 2);

    // arc_id[l] maps positions in allowed[l] to edge ids.
    std::vector<std::vector<std::size_t>> arc_id(nr);
    for (std::size_t l = 0; l < nr; ++l) {
      double res = p.resource_demand_mhz(demands[l]);
      if (res <= 0.0) continue;  // handled after the flow solve
      mcf.add_edge(src, 1 + l, res, 0.0);
      arc_id[l].resize(allowed[l].size());
      std::size_t k = p.requests()[l].service_id;
      for (std::size_t j = 0; j < allowed[l].size(); ++j) {
        std::size_t i = allowed[l][j];
        // Amortize over whichever is larger: the base from the previous
        // round or this request alone (never price below "I open the
        // instance just for me").
        double base = std::max(inst_base[k][i], res);
        double amortized = p.instantiation_delay_ms(i, k) * res / base;
        double total_cost =
            demands[l] * (theta[i] + p.tx_unit_ms(l)) + p.access_latency_ms(l, i) +
            amortized;
        arc_id[l][j] = mcf.add_edge(1 + l, 1 + nr + i, res, total_cost / res);
      }
    }
    for (std::size_t i = 0; i < ns; ++i) {
      mcf.add_edge(1 + nr + i, sink, p.topology().station(i).capacity_mhz, 0.0);
    }

    flow::FlowResult fr = mcf.solve(src, sink, total_flow);
    if (fr.flow < total_flow - 1e-6 * std::max(1.0, total_flow)) {
      throw common::Infeasible(
          "flow solver could not route all demand: capacity short");
    }

    FractionalSolution sol;
    sol.x.assign(nr, std::vector<double>(ns, 0.0));
    sol.y.assign(nk, std::vector<double>(ns, 0.0));
    for (std::size_t l = 0; l < nr; ++l) {
      double res = p.resource_demand_mhz(demands[l]);
      if (res <= 0.0) {
        // Zero-demand request: pin to its cheapest station (no capacity
        // use, no instantiation pressure).
        std::size_t best_i = 0;
        double best_cost = std::numeric_limits<double>::infinity();
        for (std::size_t i = 0; i < ns; ++i) {
          double c = p.access_latency_ms(l, i);
          if (c < best_cost) {
            best_cost = c;
            best_i = i;
          }
        }
        sol.x[l][best_i] = 1.0;
        continue;
      }
      for (std::size_t j = 0; j < allowed[l].size(); ++j) {
        sol.x[l][allowed[l][j]] =
            std::clamp(mcf.edge_flow(arc_id[l][j]) / res, 0.0, 1.0);
      }
    }
    // Re-price from realised per-instance demand for the next round.
    std::vector<std::vector<double>> attracted(nk, std::vector<double>(ns, 0.0));
    for (std::size_t l = 0; l < nr; ++l) {
      std::size_t k = p.requests()[l].service_id;
      double res = p.resource_demand_mhz(demands[l]);
      for (std::size_t i = 0; i < ns; ++i) {
        if (sol.x[l][i] <= 0.0) continue;
        sol.y[k][i] = std::max(sol.y[k][i], sol.x[l][i]);
        attracted[k][i] += sol.x[l][i] * res;
      }
    }
    sol.objective = objective(sol, demands, theta);
    bool improved = best.x.empty() ||
                    sol.objective < best_objective - 1e-9 * (1.0 + sol.objective);
    if (improved) {
      best_objective = sol.objective;
      best = sol;
    } else if (round > 0) {
      break;  // re-pricing converged (or started oscillating): stop early
    }
    inst_base = std::move(attracted);
  }
  return best;
}

double FractionalSolver::objective(const FractionalSolution& sol,
                                   const std::vector<double>& demands,
                                   const std::vector<double>& theta) const {
  const CachingProblem& p = *problem_;
  const std::size_t nr = p.num_requests();
  const std::size_t ns = p.num_stations();
  MECSC_CHECK(sol.x.size() == nr && demands.size() == nr && theta.size() == ns);
  double total = 0.0;
  for (std::size_t l = 0; l < nr; ++l) {
    for (std::size_t i = 0; i < ns; ++i) {
      double xli = sol.x[l][i];
      if (xli <= 0.0) continue;
      total += xli * (demands[l] * (theta[i] + p.tx_unit_ms(l)) +
                      p.access_latency_ms(l, i));
    }
  }
  for (std::size_t k = 0; k < p.num_services(); ++k) {
    for (std::size_t i = 0; i < ns; ++i) {
      double yki = sol.y[k][i];
      if (yki <= 0.0) continue;
      total += yki * p.instantiation_delay_ms(i, k);
    }
  }
  return total / static_cast<double>(nr);
}

}  // namespace mecsc::core
